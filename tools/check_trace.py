#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by obs::TraceCollector.

Checks that the file is well-formed JSON in the trace-event "JSON
object format" (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
i.e. loadable by Perfetto / chrome://tracing:

  * top level is an object with a "traceEvents" list
  * every event has string "ph" and "name", integer "pid"/"tid"
  * complete ("X") events carry numeric "ts" and "dur" >= 0
  * instant ("i") events carry numeric "ts"
  * flow events ("s"/"t"/"f") carry numeric "ts" and a string "id",
    and every flow id forms a well-paired arc: exactly one "s" first,
    exactly one "f" last, any number of "t" steps between -- a lone
    begin or end renders as a dangling arrow in Perfetto
  * metadata ("M") thread_name records exist for every tid that emits
    events (the collector writes one per registered ring)

With --require NAME (repeatable), additionally asserts that at least
one non-metadata event with that exact name is present -- CI uses this
to prove e.g. that a recovery run actually produced recovery-phase
spans.  --require-span NAME is the same but only complete ("X")
events count, and --require-flow demands at least one complete flow
arc -- the postmortem-smoke job uses both to prove a SIGKILLed
server's flight recorder preserved connected request paths.

With --max-dur-us NAME:US (repeatable), every complete ("X") event
named NAME must last at most US microseconds -- CI bounds the "scrub"
spans this way, proving the online scrub walker stays an incremental
low-priority step rather than a stop-the-world sweep.

Exit status: 0 on success, 1 on any violation (with a message on
stderr).
"""

import argparse
import json
import sys


def fail(msg: str) -> None:
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one event with this name (repeatable)",
    )
    ap.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="require at least one complete (X) event with this "
             "name (repeatable)",
    )
    ap.add_argument(
        "--require-flow",
        action="store_true",
        help="require at least one complete s->...->f flow arc",
    )
    ap.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="minimum number of non-metadata events (default 1)",
    )
    ap.add_argument(
        "--max-dur-us",
        action="append",
        default=[],
        metavar="NAME:US",
        help="cap the duration of every complete event with this "
             "name (repeatable)",
    )
    args = ap.parse_args()

    dur_caps = {}
    for spec in args.max_dur_us:
        name, sep, us = spec.rpartition(":")
        if not sep or not name:
            fail(f"--max-dur-us wants NAME:US, got {spec!r}")
        try:
            dur_caps[name] = float(us)
        except ValueError:
            fail(f"--max-dur-us wants NAME:US, got {spec!r}")

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents list")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    named_tids = set()
    emitting_tids = set()
    seen_names = set()
    seen_span_names = set()
    flow_phases = {}  # flow id -> [ph, ...] in file order
    n_real = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event {i} is not an object")
        ph = e.get("ph")
        name = e.get("name")
        if not isinstance(ph, str) or not isinstance(name, str):
            fail(f"event {i} lacks string ph/name: {e}")
        if not isinstance(e.get("pid"), int) or not isinstance(
            e.get("tid"), int
        ):
            fail(f"event {i} lacks integer pid/tid: {e}")
        if ph == "M":
            if name == "thread_name":
                named_tids.add(e["tid"])
            continue
        n_real += 1
        emitting_tids.add(e["tid"])
        seen_names.add(name)
        if not isinstance(e.get("ts"), (int, float)):
            fail(f"event {i} ({name}) lacks numeric ts")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i} ({name}) lacks numeric dur >= 0")
            if name in dur_caps and dur > dur_caps[name]:
                fail(f"event {i} ({name}) lasted {dur}us, cap "
                     f"{dur_caps[name]}us")
            seen_span_names.add(name)
        elif ph in ("s", "t", "f"):
            fid = e.get("id")
            if not isinstance(fid, str) or not fid:
                fail(f"event {i} ({ph}) lacks a string flow id")
            flow_phases.setdefault(fid, []).append(ph)
        elif ph != "i":
            fail(f"event {i} has unexpected phase {ph!r}")

    unnamed = emitting_tids - named_tids
    if unnamed:
        fail(f"tids {sorted(unnamed)} emit events but have no "
             "thread_name metadata")
    for fid, phs in flow_phases.items():
        if phs[0] != "s" or phs[-1] != "f" or len(phs) < 2:
            fail(f"flow {fid} is not an s->...->f arc: {phs}")
        if phs.count("s") != 1 or phs.count("f") != 1:
            fail(f"flow {fid} has duplicate begin/end points: {phs}")
    if n_real < args.min_events:
        fail(f"only {n_real} events, expected >= {args.min_events}")
    if args.require_flow and not flow_phases:
        fail("no flow arcs present (--require-flow)")
    missing = [r for r in args.require if r not in seen_names]
    if missing:
        fail(f"required event names missing: {missing} "
             f"(present: {sorted(seen_names)})")
    missing = [r for r in args.require_span
               if r not in seen_span_names]
    if missing:
        fail(f"required span names missing: {missing} "
             f"(spans present: {sorted(seen_span_names)})")

    print(
        f"check_trace: OK: {args.trace}: {n_real} events on "
        f"{len(emitting_tids)} tracks, "
        f"{len(seen_names)} distinct names, "
        f"{len(flow_phases)} flow arcs"
    )


if __name__ == "__main__":
    main()
