#!/usr/bin/env python3
"""Protocol-level smoke load for a running lp::server, used by CI.

Speaks the binary wire protocol directly (little-endian u32 frame
length, then u8 op + u64 id + op payload) from plain Python, so the
server is exercised by an independent implementation rather than its
own client library.

What it does:

  1. PUTs --records keys, then GETs them back and checks the values.
  2. Scrapes METRICS, validating the Prometheus exposition shape.
  3. Runs another round of PUTs.
  4. Scrapes METRICS again and checks that every counter/bucket/sum
     series is monotonically nondecreasing across the two scrapes,
     that the per-shard lp_mutations delta equals the second-round op
     count, and that each histogram's +Inf bucket equals its _count.
  5. With --shutdown, sends SHUTDOWN and expects an Ok reply.

Media-fault options (the fault-inject-smoke CI job):

  --verify-extra checks, BEFORE issuing any new load, that the 128
  sentinel keys a previous smoke_load run left behind still read back
  with their deterministic values -- proof that a restart (possibly
  through media repair) lost no data.  --expect-repaired requires the
  lp_media_repaired_total counters to show at least one repair and
  zero unrepairable faults; --min-scrub-passes N requires the online
  scrub walker to have completed N full passes.

Transaction options (the txn-crash-smoke CI job):

  --txn-accounts N switches to bank-transfer mode (the standard
  PUT/GET rounds are skipped): N account keys live at a reserved
  base.  --txn-init seeds each account with balance 1000 inside TXN
  frames.  --txn-transfers M issues M random transfers, each a
  single TXN of two Add sub-ops (two's-complement debit + credit),
  retrying wait-die Aborted outcomes with jittered backoff; every
  8th transfer also carries a Get sub-op and validates the reads
  body shape.  --txn-verify-sum GETs every account and requires the
  balance sum (mod 2^64) to equal accounts * 1000 -- transfers
  conserve money, so any other sum means a half-applied
  transaction.  --txn-expect-kill makes a vanishing server DURING
  the transfer phase a success (exit 0): the harness is about to
  SIGKILL the server mid-commit and a later invocation with
  --txn-verify-sum proves atomicity across the crash.

The port is read from --port, or from the DATA_DIR/PORT file the
server publishes (--data-dir).

Exit status: 0 on success, 1 on any protocol or invariant violation.
"""

import argparse
import random
import socket
import struct
import sys
import time

OP_GET = 1
OP_PUT = 2
OP_DEL = 3
OP_STATS = 5
OP_SHUTDOWN = 6
OP_METRICS = 7
OP_TXN = 9

ST_OK = 0
ST_RETRY = 2
ST_ABORTED = 5

TXN_GET = 1
TXN_PUT = 2
TXN_DEL = 3
TXN_ADD = 4

# Account keys for bank-transfer mode; far above both the round-1
# keys (0..records) and the 1_000_000 sentinel range.
TXN_ACCOUNT_BASE = 2_000_000
TXN_INIT_BALANCE = 1000

_next_id = 0


def fail(msg: str) -> None:
    print(f"smoke_load: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


class ServerGone(Exception):
    """The server closed the connection (or the socket errored).

    Fatal everywhere except the --txn-expect-kill transfer phase,
    where the harness killing the server mid-commit is the point.
    """


def fresh_id() -> int:
    global _next_id
    _next_id += 1
    return _next_id


def send_frame(sock: socket.socket, payload: bytes) -> None:
    try:
        sock.sendall(struct.pack("<I", len(payload)) + payload)
    except OSError as e:
        raise ServerGone(f"send failed: {e}") from e


def recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except OSError as e:
            raise ServerGone(f"recv failed: {e}") from e
        if not chunk:
            raise ServerGone("server closed the connection mid-frame")
        buf += chunk
    return buf


def recv_response(sock: socket.socket):
    """Returns (status, id, value_or_None, body_bytes)."""
    (length,) = struct.unpack("<I", recv_exact(sock, 4))
    if length < 9 or length > 1 << 20:
        fail(f"bad response frame length {length}")
    payload = recv_exact(sock, length)
    status = payload[0]
    (rid,) = struct.unpack("<Q", payload[1:9])
    if length == 17 and status == ST_OK:
        (value,) = struct.unpack("<Q", payload[9:17])
        return status, rid, value, b""
    return status, rid, None, payload[9:]


def rpc(sock: socket.socket, payload: bytes):
    send_frame(sock, payload)
    return recv_response(sock)


def op_put(sock, key: int, value: int) -> None:
    rid = fresh_id()
    st, got, _, _ = rpc(
        sock, struct.pack("<BQQQ", OP_PUT, rid, key, value)
    )
    while st == ST_RETRY:  # backpressure: retry the same op
        time.sleep(0.005)
        st, got, _, _ = rpc(
            sock, struct.pack("<BQQQ", OP_PUT, rid, key, value)
        )
    if st != ST_OK or got != rid:
        fail(f"PUT({key}) -> status {st}, id {got} (want {rid})")


def op_get(sock, key: int) -> int:
    rid = fresh_id()
    st, got, value, _ = rpc(sock, struct.pack("<BQQ", OP_GET, rid, key))
    if st != ST_OK or got != rid or value is None:
        fail(f"GET({key}) -> status {st}, value {value}")
    return value


def op_txn(sock, subs):
    """Issue one TXN of (kind, key, value) sub-ops.

    Retries Retry (backpressure) transparently; returns
    (status, reads) where status is ST_OK or ST_ABORTED and reads
    is the decoded [(found, value), ...] body of a committed
    transaction (empty unless it had Get sub-ops).
    """
    rid = fresh_id()
    payload = struct.pack("<BQI", OP_TXN, rid, len(subs))
    for kind, key, value in subs:
        if kind in (TXN_PUT, TXN_ADD):
            payload += struct.pack("<BQQ", kind, key, value)
        else:
            payload += struct.pack("<BQ", kind, key)
    while True:
        st, got, _, body = rpc(sock, payload)
        if st == ST_RETRY:
            time.sleep(0.005)
            continue
        if got != rid:
            fail(f"TXN -> id {got}, want {rid}")
        if st == ST_ABORTED:
            return st, []
        if st != ST_OK:
            fail(f"TXN -> status {st}")
        n_gets = sum(1 for k, _, _ in subs if k == TXN_GET)
        if len(body) != 4 + 9 * n_gets:
            fail(f"TXN reads body is {len(body)} bytes, want "
                 f"{4 + 9 * n_gets} for {n_gets} gets")
        (count,) = struct.unpack_from("<I", body, 0)
        if count != n_gets:
            fail(f"TXN reads count {count}, want {n_gets}")
        reads = []
        for i in range(count):
            found, value = struct.unpack_from("<BQ", body, 4 + 9 * i)
            if found not in (0, 1):
                fail(f"TXN read #{i} has found byte {found}")
            reads.append((bool(found), value))
        return st, reads


def txn_init_accounts(sock, accounts: int) -> None:
    # Seed balances through the TXN path itself (Put sub-ops), a few
    # accounts per transaction, so init also exercises commit.
    k = 0
    while k < accounts:
        subs = [
            (TXN_PUT, TXN_ACCOUNT_BASE + j, TXN_INIT_BALANCE)
            for j in range(k, min(k + 8, accounts))
        ]
        st, _ = op_txn(sock, subs)
        if st != ST_OK:
            fail(f"init TXN for accounts {k}.. -> status {st}")
        k += len(subs)


def txn_run_transfers(sock, accounts: int, n: int,
                      expect_kill: bool) -> None:
    rng = random.Random(0x5EED)
    commits = aborts = 0
    try:
        for i in range(n):
            src = rng.randrange(accounts)
            dst = rng.randrange(accounts)
            while dst == src:
                dst = rng.randrange(accounts)
            amt = rng.randrange(1, 11)
            debit = (1 << 64) - amt  # two's-complement -amt
            subs = [
                (TXN_ADD, TXN_ACCOUNT_BASE + src, debit),
                (TXN_ADD, TXN_ACCOUNT_BASE + dst, amt),
            ]
            if i % 8 == 0:  # exercise the reads body too
                subs.insert(0, (TXN_GET, TXN_ACCOUNT_BASE + src, 0))
            while True:
                st, reads = op_txn(sock, subs)
                if st == ST_OK:
                    commits += 1
                    if i % 8 == 0 and not reads[0][0]:
                        fail(f"TXN get of account {src} found "
                             "nothing (init lost?)")
                    break
                aborts += 1  # wait-die loser: back off, retry
                time.sleep(rng.uniform(0.0, 0.002))
    except ServerGone as e:
        if not expect_kill:
            fail(f"server vanished during transfers: {e}")
        print(f"smoke_load: OK: server gone after {commits} commits,"
              f" {aborts} aborts -- expected (crash injection)")
        sys.exit(0)
    if expect_kill:
        fail(f"finished all {n} transfers but the server was never "
             "killed; raise --txn-transfers so the harness can catch "
             "it mid-commit")
    print(f"smoke_load: transfers: {commits} commits, "
          f"{aborts} wait-die aborts")


def txn_verify_sum(sock, accounts: int) -> None:
    total = 0
    for k in range(accounts):
        total = (total + op_get(sock, TXN_ACCOUNT_BASE + k)) \
            % (1 << 64)
    want = (accounts * TXN_INIT_BALANCE) % (1 << 64)
    if total != want:
        fail(f"balance sum {total} != {want}: a transfer was "
             "half-applied (atomicity violation)")
    print(f"smoke_load: OK: {accounts} balances sum to {want} "
          "(money conserved)")


def scrape(sock) -> dict:
    rid = fresh_id()
    st, got, _, body = rpc(sock, struct.pack("<BQ", OP_METRICS, rid))
    if st != ST_OK or got != rid or not body:
        fail(f"METRICS -> status {st}, {len(body)} body bytes")
    snap = {}
    for line in body.decode("utf-8").splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        # OpenMetrics exemplar suffix (` # {trace_id="..."} v`) rides
        # on histogram bucket lines; the sample value precedes it.
        if " # " in line:
            line = line.split(" # ", 1)[0].rstrip()
        key, _, val = line.rpartition(" ")
        if not key:
            fail(f"unparseable exposition line: {line!r}")
        try:
            snap[key] = float(val)
        except ValueError:
            fail(f"non-numeric sample in line: {line!r}")
    if not snap:
        fail("METRICS exposition contained no samples")
    return snap


GAUGES = ("lp_connections", "lp_queue_depth", "lp_committed_epoch")


def check_monotonic(s1: dict, s2: dict) -> None:
    for key, v1 in s1.items():
        if key.startswith(GAUGES):
            continue
        if key not in s2:
            fail(f"{key} vanished between scrapes")
        if s2[key] < v1:
            fail(f"{key} went backwards: {v1} -> {s2[key]}")


def shard_sum(snap: dict, name: str) -> float:
    return sum(
        v
        for k, v in snap.items()
        if k.startswith(name + "{shard=")
    )


def check_histograms(snap: dict) -> None:
    n_checked = 0
    for k, v in snap.items():
        if 'le="+Inf"' not in k:
            continue
        # lp_x_bucket{labels,le="+Inf"} must equal lp_x_count{labels}.
        base, _, labels = k.partition("{")
        labels = labels.rstrip("}")
        rest = ",".join(
            p for p in labels.split(",") if not p.startswith("le=")
        )
        ckey = base[: -len("_bucket")] + "_count" + (
            "{" + rest + "}" if rest else ""
        )
        if ckey not in snap:
            fail(f"histogram {base} has +Inf bucket but no _count")
        if v != snap[ckey]:
            fail(f"{k} = {v} but {ckey} = {snap[ckey]}")
        n_checked += 1
    if n_checked == 0:
        fail("no histogram series found in exposition")


def read_port(data_dir: str, timeout_s: float) -> int:
    deadline = time.time() + timeout_s
    path = f"{data_dir}/PORT"
    while time.time() < deadline:
        try:
            with open(path, "r", encoding="ascii") as f:
                text = f.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    fail(f"no port published at {path} within {timeout_s}s")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=0)
    ap.add_argument("--data-dir", default="./lpdb")
    ap.add_argument("--records", type=int, default=256)
    ap.add_argument("--seconds", type=float, default=3.0,
                    help="keep issuing load for this long (round 1)")
    ap.add_argument("--shutdown", action="store_true",
                    help="send SHUTDOWN after the checks")
    ap.add_argument("--verify-extra", action="store_true",
                    help="first verify the 128 sentinel keys a "
                         "previous run wrote (restart data check)")
    ap.add_argument("--expect-repaired", action="store_true",
                    help="require media_repaired >= 1 and "
                         "media_unrepairable == 0 in METRICS")
    ap.add_argument("--min-scrub-passes", type=int, default=0,
                    help="require this many completed scrub passes")
    ap.add_argument("--expect-kill", action="store_true",
                    help="treat the server dying during the PUT/GET "
                         "load as success (the postmortem-smoke "
                         "harness SIGKILLs it under this load)")
    ap.add_argument("--txn-accounts", type=int, default=0,
                    help="bank-transfer mode over this many accounts "
                         "(skips the standard PUT/GET rounds)")
    ap.add_argument("--txn-init", action="store_true",
                    help="seed every account with balance 1000")
    ap.add_argument("--txn-transfers", type=int, default=0,
                    help="issue this many random TXN transfers")
    ap.add_argument("--txn-verify-sum", action="store_true",
                    help="require the balance sum to still equal "
                         "accounts * 1000 (conservation)")
    ap.add_argument("--txn-expect-kill", action="store_true",
                    help="treat the server dying mid-transfer as "
                         "success (crash-injection harness)")
    args = ap.parse_args()

    port = args.port or read_port(args.data_dir, 30.0)
    sock = socket.create_connection((args.host, port), timeout=30.0)
    sock.settimeout(30.0)

    if args.txn_accounts > 0:
        if args.txn_init:
            txn_init_accounts(sock, args.txn_accounts)
        if args.txn_transfers > 0:
            txn_run_transfers(sock, args.txn_accounts,
                              args.txn_transfers,
                              args.txn_expect_kill)
        if args.txn_verify_sum:
            txn_verify_sum(sock, args.txn_accounts)
        snap = scrape(sock)
        if args.txn_transfers > 0 and \
                snap.get("lp_txn_commits", 0) < 1:
            fail("lp_txn_commits missing or zero after transfers")
        if args.shutdown:
            rid = fresh_id()
            st, got, _, _ = rpc(
                sock, struct.pack("<BQ", OP_SHUTDOWN, rid)
            )
            if st != ST_OK or got != rid:
                fail(f"SHUTDOWN -> status {st}")
        sock.close()
        return

    # Data survival across a restart: the previous run's round-2 keys
    # have deterministic values, so corruption that recovery failed to
    # repair (or repaired wrongly) shows up right here.
    if args.verify_extra:
        for k in range(128):
            got = op_get(sock, 1_000_000 + k)
            if got != k:
                fail(f"sentinel GET({1_000_000 + k}) = {got}, "
                     f"want {k} (data lost across restart)")

    # Round 1: load + verify readback, for at least --seconds.
    deadline = time.time() + args.seconds
    rounds = 0
    try:
        while rounds == 0 or time.time() < deadline:
            for k in range(args.records):
                op_put(sock, k, rounds * args.records + k * 7)
            rounds += 1
        for k in range(args.records):
            got = op_get(sock, k)
            want = (rounds - 1) * args.records + k * 7
            if got != want:
                fail(f"GET({k}) = {got}, want {want}")
    except ServerGone as e:
        if args.expect_kill:
            print(f"smoke_load: OK: server vanished under load as "
                  f"expected after {rounds} full rounds ({e})")
            return
        raise

    s1 = scrape(sock)
    check_histograms(s1)
    muts1 = shard_sum(s1, "lp_mutations")
    if muts1 < rounds * args.records:
        fail(f"lp_mutations {muts1} < ops issued "
             f"{rounds * args.records}")

    # Round 2: fixed op count, then delta checks.
    extra = 128
    for k in range(extra):
        op_put(sock, 1_000_000 + k, k)
    s2 = scrape(sock)
    check_monotonic(s1, s2)
    check_histograms(s2)
    muts2 = shard_sum(s2, "lp_mutations")
    if muts2 - muts1 != extra:
        fail(f"lp_mutations delta {muts2 - muts1}, want {extra}")

    if args.expect_repaired:
        repaired = shard_sum(s2, "lp_media_repaired_total")
        unrep = shard_sum(s2, "lp_media_unrepairable_total")
        quar = shard_sum(s2, "lp_quarantined")
        if repaired < 1:
            fail(f"lp_media_repaired_total = {repaired}, expected "
                 ">= 1 (injected fault was never detected)")
        if unrep != 0 or quar != 0:
            fail(f"unrepairable = {unrep}, quarantined = {quar}; "
                 "expected a clean repair")
    if args.min_scrub_passes > 0:
        passes = shard_sum(s2, "lp_scrub_passes")
        if passes < args.min_scrub_passes:
            fail(f"lp_scrub_passes = {passes}, expected >= "
                 f"{args.min_scrub_passes} (scrub walker stalled?)")

    if args.shutdown:
        rid = fresh_id()
        st, got, _, _ = rpc(
            sock, struct.pack("<BQ", OP_SHUTDOWN, rid)
        )
        if st != ST_OK or got != rid:
            fail(f"SHUTDOWN -> status {st}")
    sock.close()
    print(
        f"smoke_load: OK: {rounds * args.records + extra} mutations, "
        f"{args.records} readbacks, 2 scrapes "
        f"({len(s2)} series, monotonic)"
    )


if __name__ == "__main__":
    try:
        main()
    except ServerGone as e:
        fail(str(e))
