#!/usr/bin/env python3
"""Protocol-level smoke load for a running lp::server, used by CI.

Speaks the binary wire protocol directly (little-endian u32 frame
length, then u8 op + u64 id + op payload) from plain Python, so the
server is exercised by an independent implementation rather than its
own client library.

What it does:

  1. PUTs --records keys, then GETs them back and checks the values.
  2. Scrapes METRICS, validating the Prometheus exposition shape.
  3. Runs another round of PUTs.
  4. Scrapes METRICS again and checks that every counter/bucket/sum
     series is monotonically nondecreasing across the two scrapes,
     that the per-shard lp_mutations delta equals the second-round op
     count, and that each histogram's +Inf bucket equals its _count.
  5. With --shutdown, sends SHUTDOWN and expects an Ok reply.

Media-fault options (the fault-inject-smoke CI job):

  --verify-extra checks, BEFORE issuing any new load, that the 128
  sentinel keys a previous smoke_load run left behind still read back
  with their deterministic values -- proof that a restart (possibly
  through media repair) lost no data.  --expect-repaired requires the
  lp_media_repaired_total counters to show at least one repair and
  zero unrepairable faults; --min-scrub-passes N requires the online
  scrub walker to have completed N full passes.

The port is read from --port, or from the DATA_DIR/PORT file the
server publishes (--data-dir).

Exit status: 0 on success, 1 on any protocol or invariant violation.
"""

import argparse
import socket
import struct
import sys
import time

OP_GET = 1
OP_PUT = 2
OP_DEL = 3
OP_STATS = 5
OP_SHUTDOWN = 6
OP_METRICS = 7

ST_OK = 0
ST_RETRY = 2

_next_id = 0


def fail(msg: str) -> None:
    print(f"smoke_load: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def fresh_id() -> int:
    global _next_id
    _next_id += 1
    return _next_id


def send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(struct.pack("<I", len(payload)) + payload)


def recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            fail("server closed the connection mid-frame")
        buf += chunk
    return buf


def recv_response(sock: socket.socket):
    """Returns (status, id, value_or_None, body_bytes)."""
    (length,) = struct.unpack("<I", recv_exact(sock, 4))
    if length < 9 or length > 1 << 20:
        fail(f"bad response frame length {length}")
    payload = recv_exact(sock, length)
    status = payload[0]
    (rid,) = struct.unpack("<Q", payload[1:9])
    if length == 17 and status == ST_OK:
        (value,) = struct.unpack("<Q", payload[9:17])
        return status, rid, value, b""
    return status, rid, None, payload[9:]


def rpc(sock: socket.socket, payload: bytes):
    send_frame(sock, payload)
    return recv_response(sock)


def op_put(sock, key: int, value: int) -> None:
    rid = fresh_id()
    st, got, _, _ = rpc(
        sock, struct.pack("<BQQQ", OP_PUT, rid, key, value)
    )
    while st == ST_RETRY:  # backpressure: retry the same op
        time.sleep(0.005)
        st, got, _, _ = rpc(
            sock, struct.pack("<BQQQ", OP_PUT, rid, key, value)
        )
    if st != ST_OK or got != rid:
        fail(f"PUT({key}) -> status {st}, id {got} (want {rid})")


def op_get(sock, key: int) -> int:
    rid = fresh_id()
    st, got, value, _ = rpc(sock, struct.pack("<BQQ", OP_GET, rid, key))
    if st != ST_OK or got != rid or value is None:
        fail(f"GET({key}) -> status {st}, value {value}")
    return value


def scrape(sock) -> dict:
    rid = fresh_id()
    st, got, _, body = rpc(sock, struct.pack("<BQ", OP_METRICS, rid))
    if st != ST_OK or got != rid or not body:
        fail(f"METRICS -> status {st}, {len(body)} body bytes")
    snap = {}
    for line in body.decode("utf-8").splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, val = line.rpartition(" ")
        if not key:
            fail(f"unparseable exposition line: {line!r}")
        try:
            snap[key] = float(val)
        except ValueError:
            fail(f"non-numeric sample in line: {line!r}")
    if not snap:
        fail("METRICS exposition contained no samples")
    return snap


GAUGES = ("lp_connections", "lp_queue_depth", "lp_committed_epoch")


def check_monotonic(s1: dict, s2: dict) -> None:
    for key, v1 in s1.items():
        if key.startswith(GAUGES):
            continue
        if key not in s2:
            fail(f"{key} vanished between scrapes")
        if s2[key] < v1:
            fail(f"{key} went backwards: {v1} -> {s2[key]}")


def shard_sum(snap: dict, name: str) -> float:
    return sum(
        v
        for k, v in snap.items()
        if k.startswith(name + "{shard=")
    )


def check_histograms(snap: dict) -> None:
    n_checked = 0
    for k, v in snap.items():
        if 'le="+Inf"' not in k:
            continue
        # lp_x_bucket{labels,le="+Inf"} must equal lp_x_count{labels}.
        base, _, labels = k.partition("{")
        labels = labels.rstrip("}")
        rest = ",".join(
            p for p in labels.split(",") if not p.startswith("le=")
        )
        ckey = base[: -len("_bucket")] + "_count" + (
            "{" + rest + "}" if rest else ""
        )
        if ckey not in snap:
            fail(f"histogram {base} has +Inf bucket but no _count")
        if v != snap[ckey]:
            fail(f"{k} = {v} but {ckey} = {snap[ckey]}")
        n_checked += 1
    if n_checked == 0:
        fail("no histogram series found in exposition")


def read_port(data_dir: str, timeout_s: float) -> int:
    deadline = time.time() + timeout_s
    path = f"{data_dir}/PORT"
    while time.time() < deadline:
        try:
            with open(path, "r", encoding="ascii") as f:
                text = f.read().strip()
            if text:
                return int(text)
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    fail(f"no port published at {path} within {timeout_s}s")


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=0)
    ap.add_argument("--data-dir", default="./lpdb")
    ap.add_argument("--records", type=int, default=256)
    ap.add_argument("--seconds", type=float, default=3.0,
                    help="keep issuing load for this long (round 1)")
    ap.add_argument("--shutdown", action="store_true",
                    help="send SHUTDOWN after the checks")
    ap.add_argument("--verify-extra", action="store_true",
                    help="first verify the 128 sentinel keys a "
                         "previous run wrote (restart data check)")
    ap.add_argument("--expect-repaired", action="store_true",
                    help="require media_repaired >= 1 and "
                         "media_unrepairable == 0 in METRICS")
    ap.add_argument("--min-scrub-passes", type=int, default=0,
                    help="require this many completed scrub passes")
    args = ap.parse_args()

    port = args.port or read_port(args.data_dir, 30.0)
    sock = socket.create_connection((args.host, port), timeout=30.0)
    sock.settimeout(30.0)

    # Data survival across a restart: the previous run's round-2 keys
    # have deterministic values, so corruption that recovery failed to
    # repair (or repaired wrongly) shows up right here.
    if args.verify_extra:
        for k in range(128):
            got = op_get(sock, 1_000_000 + k)
            if got != k:
                fail(f"sentinel GET({1_000_000 + k}) = {got}, "
                     f"want {k} (data lost across restart)")

    # Round 1: load + verify readback, for at least --seconds.
    deadline = time.time() + args.seconds
    rounds = 0
    while rounds == 0 or time.time() < deadline:
        for k in range(args.records):
            op_put(sock, k, rounds * args.records + k * 7)
        rounds += 1
    for k in range(args.records):
        got = op_get(sock, k)
        want = (rounds - 1) * args.records + k * 7
        if got != want:
            fail(f"GET({k}) = {got}, want {want}")

    s1 = scrape(sock)
    check_histograms(s1)
    muts1 = shard_sum(s1, "lp_mutations")
    if muts1 < rounds * args.records:
        fail(f"lp_mutations {muts1} < ops issued "
             f"{rounds * args.records}")

    # Round 2: fixed op count, then delta checks.
    extra = 128
    for k in range(extra):
        op_put(sock, 1_000_000 + k, k)
    s2 = scrape(sock)
    check_monotonic(s1, s2)
    check_histograms(s2)
    muts2 = shard_sum(s2, "lp_mutations")
    if muts2 - muts1 != extra:
        fail(f"lp_mutations delta {muts2 - muts1}, want {extra}")

    if args.expect_repaired:
        repaired = shard_sum(s2, "lp_media_repaired_total")
        unrep = shard_sum(s2, "lp_media_unrepairable_total")
        quar = shard_sum(s2, "lp_quarantined")
        if repaired < 1:
            fail(f"lp_media_repaired_total = {repaired}, expected "
                 ">= 1 (injected fault was never detected)")
        if unrep != 0 or quar != 0:
            fail(f"unrepairable = {unrep}, quarantined = {quar}; "
                 "expected a clean repair")
    if args.min_scrub_passes > 0:
        passes = shard_sum(s2, "lp_scrub_passes")
        if passes < args.min_scrub_passes:
            fail(f"lp_scrub_passes = {passes}, expected >= "
                 f"{args.min_scrub_passes} (scrub walker stalled?)")

    if args.shutdown:
        rid = fresh_id()
        st, got, _, _ = rpc(
            sock, struct.pack("<BQ", OP_SHUTDOWN, rid)
        )
        if st != ST_OK or got != rid:
            fail(f"SHUTDOWN -> status {st}")
    sock.close()
    print(
        f"smoke_load: OK: {rounds * args.records + extra} mutations, "
        f"{args.records} readbacks, 2 scrapes "
        f"({len(s2)} series, monotonic)"
    )


if __name__ == "__main__":
    main()
