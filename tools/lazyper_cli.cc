/**
 * @file
 * lazyper_cli -- run any kernel x scheme x machine configuration from
 * the command line and print the measurements. The fastest way to
 * explore the design space without writing code.
 *
 * Examples:
 *   lazyper_cli --kernel tmm --scheme lp
 *   lazyper_cli --kernel gauss --scheme ep --n 128 --threads 4
 *   lazyper_cli --kernel fft --scheme lp --crash-at 50 --seed 7
 *   lazyper_cli --kernel tmm --scheme lp --l2-kb 64 \
 *               --checksum adler32 --cleaner-period 100000
 *
 * The `store` subcommand drives the persistent KV store instead of a
 * kernel (see docs/store_design.md):
 *   lazyper_cli store --backend lp --mix a --records 4096 --ops 16384
 *   lazyper_cli store --backend wal --mix b --uniform --json
 *   lazyper_cli store --backend lp --crash-at 2000
 *
 * The `serve` subcommand runs the lp::server network front-end over
 * file-backed shards (see docs/server_design.md):
 *   lazyper_cli serve --data-dir /tmp/lpdb --port 7070 --shards 4
 *   lazyper_cli serve --data-dir /tmp/lpdb --backend wal
 *
 * The `top` subcommand polls a live server's METRICS op and renders a
 * refreshing per-shard table (docs/observability.md):
 *   lazyper_cli top --data-dir /tmp/lpdb
 *   lazyper_cli top --port 7070 --interval-ms 500
 *
 * The `inject` subcommand flips bits in a shard's backing file to
 * exercise the media-fault tolerance layer (docs/repair_design.md):
 *   lazyper_cli inject --data-dir /tmp/lpdb --shard 0 --site superblock
 *   lazyper_cli inject --data-dir /tmp/lpdb --site journal --bytes 64
 *
 * The `postmortem` subcommand decodes the crash-persistent flight
 * recorder out of a dead server's shard files and writes the
 * surviving spans as Chrome trace JSON (docs/observability.md):
 *   lazyper_cli postmortem --data-dir /tmp/lpdb
 *   lazyper_cli postmortem --data-dir /tmp/lpdb --out crash.json
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "base/logging.hh"
#include "kernels/env.hh"
#include "kernels/harness.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "pmem/fault.hh"
#include "server/client.hh"
#include "server/server.hh"
#include "stats/json.hh"
#include "stats/table.hh"
#include "store/driver.hh"
#include "store/kv_store.hh"
#include "txn/prepare_log.hh"

using namespace lp;
using namespace lp::kernels;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --kernel tmm|cholesky|conv2d|gauss|fft|spmv\n"
        "  --scheme base|lp|ep|wal                  (default lp)\n"
        "  --n N             problem size            (default 128)\n"
        "  --bsize B         tile/band size          (default 16)\n"
        "  --threads T       worker threads          (default 8)\n"
        "  --iterations I    conv2d outer iterations (default 4)\n"
        "  --checksum parity|modular|adler32|combined|crc32\n"
        "  --seed S          input seed              (default 12345)\n"
        "  --l1-kb K         per-core L1 size        (default 16)\n"
        "  --l2-kb K         shared L2 size          (default 128)\n"
        "  --read-ns / --write-ns   NVMM latencies   (150 / 300)\n"
        "  --cleaner-period C       cycles, 0 = off  (default 0)\n"
        "  --crash-at P      crash at P%% of the LP store stream,\n"
        "                    recover, resume, verify (default off)\n"
        "  --json            emit the full stats snapshot as JSON\n"
        "or: %s store ...   (persistent KV store; see `%s store -h`)\n"
        "or: %s serve ...   (network front-end; see `%s serve -h`)\n"
        "or: %s top ...     (live server metrics; see `%s top -h`)\n"
        "or: %s inject ...  (media-fault injection; `%s inject -h`)\n"
        "or: %s postmortem ...  (crashed-server flight recorder dump;\n"
        "                        see `%s postmortem -h`)\n",
        argv0, argv0, argv0, argv0, argv0, argv0, argv0, argv0,
        argv0, argv0, argv0);
    std::exit(2);
}

KernelId
parseKernel(const std::string &s)
{
    if (s == "tmm")
        return KernelId::Tmm;
    if (s == "cholesky")
        return KernelId::Cholesky;
    if (s == "conv2d" || s == "2d-conv")
        return KernelId::Conv2d;
    if (s == "gauss")
        return KernelId::Gauss;
    if (s == "fft")
        return KernelId::Fft;
    if (s == "spmv")
        return KernelId::Spmv;
    fatal("unknown kernel: " + s);
}

Scheme
parseScheme(const std::string &s)
{
    if (s == "base")
        return Scheme::Base;
    if (s == "lp")
        return Scheme::Lp;
    if (s == "ep" || s == "eager")
        return Scheme::EagerRecompute;
    if (s == "wal")
        return Scheme::Wal;
    fatal("unknown scheme: " + s);
}

core::ChecksumKind
parseChecksum(const std::string &s)
{
    if (s == "parity")
        return core::ChecksumKind::Parity;
    if (s == "modular")
        return core::ChecksumKind::Modular;
    if (s == "adler32")
        return core::ChecksumKind::Adler32;
    if (s == "combined" || s == "modular+parity")
        return core::ChecksumKind::ModularParity;
    if (s == "crc32")
        return core::ChecksumKind::Crc32;
    fatal("unknown checksum kind: " + s);
}

[[noreturn]] void
storeUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s store [options]\n"
        "  --backend lp|eager|wal    persistency scheme  (default lp)\n"
        "  --records R     loaded key-space size         (default 4096)\n"
        "  --ops O         mix operations                (default 16384)\n"
        "  --mix a|b|c     YCSB mix                      (default a)\n"
        "  --uniform       uniform keys instead of zipfian\n"
        "  --theta T       zipfian skew                  (default 0.99)\n"
        "  --shards S / --batch-ops B / --fold-batches F / --capacity C\n"
        "  --checksum parity|modular|adler32|combined|crc32\n"
        "  --seed S                                      (default 42)\n"
        "  --crash-at N    crash after N persistent stores, recover,\n"
        "                  verify against the committed-batch replay\n"
        "  --crash-regions N   same, but after N region commits\n"
        "  --trace-out F   write a Chrome trace-event JSON (epoch\n"
        "                  commits, folds, recovery spans) to F\n"
        "  --json          emit the result as JSON\n",
        argv0);
    std::exit(2);
}

[[noreturn]] void
serveUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s serve [options]\n"
        "  --data-dir D    shard files + PORT file   (default ./lpdb)\n"
        "  --host H        listen address            (default 127.0.0.1)\n"
        "  --port P        TCP port, 0 = ephemeral   (default 0)\n"
        "  --shards S      worker threads = shards   (default 4)\n"
        "  --backend lp|eager|wal                    (default lp)\n"
        "  --capacity C    max live keys per shard   (default 16384)\n"
        "  --batch-ops B / --fold-batches F\n"
        "  --checksum parity|modular|adler32|combined|crc32\n"
        "  --flush-deadline-us U  partial-batch commit deadline "
        "(default 2000)\n"
        "  --max-inflight N   per-connection backpressure "
        "(default 256)\n"
        "  --max-conns N      connection cap         (default 256)\n"
        "  --trace-out F   write a Chrome trace-event JSON (epoch\n"
        "                  commits, folds, recovery, connection\n"
        "                  lifecycles, request flows) to F at shutdown\n"
        "  --flight-events N   per-shard crash-persistent flight\n"
        "                  recorder slots, 0 = off  (default 4096);\n"
        "                  decode after a crash with `postmortem`\n"
        "  --quiet\n"
        "Runs until SIGINT/SIGTERM or a SHUTDOWN op; on shutdown every\n"
        "shard is checkpointed (eager fold) before the process exits.\n",
        argv0);
    std::exit(2);
}

int
runServeCommand(int argc, char **argv)
{
    server::ServerConfig cfg;
    cfg.dataDir = "./lpdb";

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                serveUsage(argv[0]);
            return argv[++i];
        };
        if (arg == "--data-dir") {
            cfg.dataDir = next();
        } else if (arg == "--host") {
            cfg.host = next();
        } else if (arg == "--port") {
            cfg.port = std::atoi(next().c_str());
        } else if (arg == "--shards") {
            cfg.shards = std::atoi(next().c_str());
        } else if (arg == "--backend") {
            cfg.backend = store::parseBackend(next());
        } else if (arg == "--capacity") {
            cfg.capacityPerShard =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--batch-ops") {
            cfg.batchOps = std::atoi(next().c_str());
        } else if (arg == "--fold-batches") {
            cfg.foldBatches = std::atoi(next().c_str());
        } else if (arg == "--checksum") {
            cfg.checksum = parseChecksum(next());
        } else if (arg == "--flush-deadline-us") {
            cfg.flushDeadlineUs =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--max-inflight") {
            cfg.maxInflightPerConn =
                std::uint32_t(std::atoi(next().c_str()));
        } else if (arg == "--max-conns") {
            cfg.maxConns = std::atoi(next().c_str());
        } else if (arg == "--trace-out") {
            cfg.traceOut = next();
        } else if (arg == "--flight-events") {
            cfg.flightEvents =
                std::uint32_t(std::atoi(next().c_str()));
        } else if (arg == "--quiet") {
            cfg.quiet = true;
        } else {
            serveUsage(argv[0]);
        }
    }

    server::Server srv(cfg);
    srv.start();
    srv.installSignalHandlers();
    srv.join();
    return 0;
}

int
runStoreCommand(int argc, char **argv)
{
    using namespace lp::store;

    Backend backend = Backend::Lp;
    StoreConfig scfg;
    YcsbParams p;
    std::int64_t crash_at = -1;
    bool crash_regions = false;
    bool json = false;
    std::string traceOut;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                storeUsage(argv[0]);
            return argv[++i];
        };
        if (arg == "--backend") {
            backend = parseBackend(next());
        } else if (arg == "--records") {
            p.records = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--ops") {
            p.ops = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--mix") {
            p.mix = parseMix(next());
        } else if (arg == "--uniform") {
            p.zipfian = false;
        } else if (arg == "--theta") {
            p.theta = std::atof(next().c_str());
        } else if (arg == "--shards") {
            scfg.shards = std::atoi(next().c_str());
        } else if (arg == "--batch-ops") {
            scfg.batchOps = std::atoi(next().c_str());
        } else if (arg == "--fold-batches") {
            scfg.foldBatches = std::atoi(next().c_str());
        } else if (arg == "--capacity") {
            scfg.capacity = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--checksum") {
            scfg.checksum = parseChecksum(next());
        } else if (arg == "--seed") {
            p.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--crash-at") {
            crash_at = std::atoll(next().c_str());
            crash_regions = false;
        } else if (arg == "--crash-regions") {
            crash_at = std::atoll(next().c_str());
            crash_regions = true;
        } else if (arg == "--trace-out") {
            traceOut = next();
        } else if (arg == "--json") {
            json = true;
        } else {
            storeUsage(argv[0]);
        }
    }

    sim::MachineConfig mcfg;
    mcfg.numCores = 1;
    mcfg.l1 = {16 * 1024, 8, 2};
    mcfg.l2 = {128 * 1024, 8, 11};

    std::printf("store backend=%s records=%zu ops=%zu mix=%s %s "
                "shards=%d batch=%d fold=%d checksum=%s\n",
                backendName(backend).c_str(), p.records, p.ops,
                mixName(p.mix).c_str(),
                p.zipfian ? "zipfian" : "uniform", scfg.shards,
                scfg.batchOps, scfg.foldBatches,
                core::checksumKindName(scfg.checksum).c_str());

    std::unique_ptr<obs::TraceCollector> trace;
    if (!traceOut.empty())
        trace = std::make_unique<obs::TraceCollector>();
    const auto writeTrace = [&] {
        if (!trace)
            return;
        if (trace->writeChromeTrace(traceOut))
            inform("wrote trace " + traceOut);
        else
            warn("could not write trace file " + traceOut);
    };

    if (crash_at >= 0) {
        StoreCrashSpec spec;
        spec.records = p.records;
        spec.preOps = p.ops;
        spec.byRegions = crash_regions;
        spec.point = static_cast<std::uint64_t>(crash_at);
        spec.seed = p.seed;
        const auto out =
            runStoreWithCrash(backend, scfg, spec, mcfg, trace.get());
        std::printf(
            "crash after %lld %s: %s\n",
            static_cast<long long>(crash_at),
            crash_regions ? "region commits" : "persistent stores",
            out.crashed ? "fired" : "did not fire");
        std::printf("recovery: replayed=%llu entries=%llu "
                    "discarded=%llu wal-undone=%llu\n",
                    static_cast<unsigned long long>(
                        out.report.batchesReplayed),
                    static_cast<unsigned long long>(
                        out.report.entriesReplayed),
                    static_cast<unsigned long long>(
                        out.report.batchesDiscarded),
                    static_cast<unsigned long long>(
                        out.report.walUndone));
        const bool ok =
            out.committedStateVerified && out.finalStateVerified;
        std::printf("committed state: %s   final state: %s\n",
                    out.committedStateVerified ? "verified" : "WRONG",
                    out.finalStateVerified ? "verified" : "WRONG");
        writeTrace();
        return ok ? 0 : 1;
    }

    const auto out = runStoreYcsb(backend, scfg, p, mcfg, trace.get());
    writeTrace();
    if (json) {
        stats::JsonValue::Object obj = stats::toJson(out.stats);
        obj.emplace("backend", backendName(backend));
        obj.emplace("mix", mixName(p.mix));
        obj.emplace("zipfian", p.zipfian);
        obj.emplace("records", double(p.records));
        obj.emplace("ops", double(p.ops));
        obj.emplace("writes_per_mutation", out.writesPerMutation);
        obj.emplace("ops_per_sec", out.opsPerSec);
        obj.emplace("verified", out.verified);
        std::printf("%s\n", stats::JsonValue(obj).render().c_str());
        return out.verified ? 0 : 1;
    }
    std::printf("exec cycles:     %.0f\n", out.execCycles);
    std::printf("NVMM writes:     %llu\n",
                static_cast<unsigned long long>(out.nvmmWrites));
    std::printf("reads/mutations: %llu / %llu\n",
                static_cast<unsigned long long>(out.reads),
                static_cast<unsigned long long>(out.mutations));
    std::printf("writes/mutation: %.3f\n", out.writesPerMutation);
    std::printf("throughput:      %.3g ops/s (simulated)\n",
                out.opsPerSec);
    std::printf("verified:        %s\n", out.verified ? "yes" : "NO");
    return out.verified ? 0 : 1;
}

[[noreturn]] void
topUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s top [options]\n"
        "  --host H        server address          (default 127.0.0.1)\n"
        "  --port P        server port; when 0, read --data-dir/PORT\n"
        "  --data-dir D    directory with the PORT file (default ./lpdb)\n"
        "  --interval-ms M refresh period          (default 1000)\n"
        "  --count N       frames to render, 0 = until the server\n"
        "                  goes away               (default 0)\n"
        "  --no-clear      append frames instead of clearing the screen\n"
        "Scrapes the METRICS op each interval and shows per-shard op\n"
        "rates plus latency percentiles computed from the interval's\n"
        "histogram bucket deltas. The first frame shows totals since\n"
        "server start.\n",
        argv0);
    std::exit(2);
}

/**
 * Collect the `<name>_bucket{...}` series of one histogram from a
 * parsed exposition: le bound -> cumulative count. @p shard empty
 * selects the unlabelled series.
 */
std::map<double, double>
bucketSeries(const stats::Snapshot &snap, const std::string &name,
             const std::string &shard)
{
    const std::string prefix =
        shard.empty()
            ? name + "_bucket{le=\""
            : name + "_bucket{shard=\"" + shard + "\",le=\"";
    std::map<double, double> out;
    for (auto it = snap.lower_bound(prefix);
         it != snap.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
        const char *s = it->first.c_str() + prefix.size();
        const double le =
            std::strncmp(s, "+Inf", 4) == 0
                ? std::numeric_limits<double>::infinity()
                : std::strtod(s, nullptr);
        out[le] = it->second;
    }
    return out;
}

int
runTopCommand(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    std::string dataDir = "./lpdb";
    int port = 0;
    int intervalMs = 1000;
    int count = 0;
    bool noClear = false;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                topUsage(argv[0]);
            return argv[++i];
        };
        if (arg == "--host") {
            host = next();
        } else if (arg == "--port") {
            port = std::atoi(next().c_str());
        } else if (arg == "--data-dir") {
            dataDir = next();
        } else if (arg == "--interval-ms") {
            intervalMs = std::atoi(next().c_str());
        } else if (arg == "--count") {
            count = std::atoi(next().c_str());
        } else if (arg == "--no-clear") {
            noClear = true;
        } else {
            topUsage(argv[0]);
        }
    }

    if (port == 0) {
        port = server::waitForPortFile(dataDir, 2000);
        if (port == 0)
            fatal("no PORT file in " + dataDir +
                  "; pass --port or --data-dir");
    }
    server::Client cli;
    if (!cli.connectTo(host, port))
        fatal("cannot connect to " + host + ":" +
              std::to_string(port));

    const auto scalar = [](const stats::Snapshot &s,
                           const std::string &key) {
        const auto it = s.find(key);
        return it == s.end() ? 0.0 : it->second;
    };

    stats::Snapshot prev;
    for (int frame = 0; count == 0 || frame < count; ++frame) {
        if (frame > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(intervalMs));
        const auto resp = cli.metrics(5000);
        if (!resp || resp->status != server::Status::Ok) {
            std::fprintf(stderr, "lp top: server went away\n");
            return frame > 0 ? 0 : 1;
        }
        stats::Snapshot snap;
        if (!obs::parseExposition(resp->body, snap))
            fatal("unparseable METRICS exposition");

        // Interval deltas of the monotonic counters (and histogram
        // buckets); the first frame diffs against empty = totals.
        const stats::Snapshot d = stats::snapshotDelta(prev, snap);
        const double secs =
            frame == 0 ? 1.0 : double(intervalMs) / 1000.0;

        if (!noClear)
            std::printf("\033[H\033[2J");
        std::printf("lp top -- %s:%d   conns=%g accepted=%g "
                    "retries=%g errors=%g   (%s)\n",
                    host.c_str(), port,
                    scalar(snap, "lp_connections"),
                    scalar(snap, "lp_accepted"),
                    scalar(snap, "lp_retries"),
                    scalar(snap, "lp_errors"),
                    frame == 0 ? "totals since start"
                               : "per-second rates");
        // Transaction line only when the server exports the TXN
        // counters (same vintage discipline as the scan/repair
        // columns below; the gate keys on lp_txn_commits). The
        // counters are unlabelled totals -- a transaction spans
        // shards -- so they get a summary line, not per-shard
        // columns. Abort rate is per interval: aborts over decided
        // transactions, the wait-die pressure gauge.
        if (snap.find("lp_txn_commits") != snap.end()) {
            const double tc = scalar(d, "lp_txn_commits");
            const double ta = scalar(d, "lp_txn_aborts");
            const double decided = tc + ta;
            std::printf("txn: commit/s=%.0f abort/s=%.0f "
                        "abort-rate=%.1f%% commit p99=%.1fus\n",
                        tc / secs, ta / secs,
                        decided == 0.0 ? 0.0
                                       : 100.0 * ta / decided,
                        obs::quantileFromBuckets(
                            bucketSeries(d,
                                         "lp_txn_commit_lat_seconds",
                                         ""),
                            0.99) *
                            1e6);
        }
        // Datapath line only when the server exports the lp::net
        // gauges (same vintage discipline: an older server simply
        // lacks lp_conn_active). writev batch depth comes from the
        // unitless histogram's interval delta -- the live measure of
        // how well replies coalesce into gathered writes.
        if (snap.find("lp_conn_active") != snap.end()) {
            std::printf("net: active=%g outbuf=%gB eagain/s=%.0f "
                        "writev-batch p50=%.0f p99=%.0f\n",
                        scalar(snap, "lp_conn_active"),
                        scalar(snap, "lp_outbuf_bytes"),
                        scalar(d, "lp_eagain_total") / secs,
                        obs::quantileFromBuckets(
                            bucketSeries(d, "lp_writev_batch", ""),
                            0.5),
                        obs::quantileFromBuckets(
                            bucketSeries(d, "lp_writev_batch", ""),
                            0.99));
        }
        // Scan/index columns only when the server exports them:
        // against an older server without SCAN support the keys are
        // simply absent and the table keeps its classic shape (no
        // blank columns), so one `top` build monitors both vintages.
        const bool hasScans =
            snap.find("lp_scans{shard=\"0\"}") != snap.end();
        // Same vintage guard for the media-fault columns: an older
        // server never exports lp_media_repaired_total, so the
        // columns are skipped entirely rather than rendered blank.
        const bool hasMedia =
            snap.find("lp_media_repaired_total{shard=\"0\"}") !=
            snap.end();
        // Trace-drop column, gated the same way: an older server
        // never exports lp_trace_drops_total.
        const bool hasDrops =
            snap.find("lp_trace_drops_total{shard=\"0\"}") !=
            snap.end();
        std::vector<std::string> hdr = {
            "shard", "get/s", "mut/s", "epoch/s", "fold/s", "dlc/s",
            "qdepth", "epoch", "commit p99", "qwait p99",
            "cwait p99"};
        if (hasScans) {
            hdr.push_back("scan/s");
            hdr.push_back("scan p99");
            hdr.push_back("idx keys");
            hdr.push_back("idx KB");
        }
        if (hasMedia) {
            hdr.push_back("scrub/s");
            hdr.push_back("repair");
            hdr.push_back("unrep");
            hdr.push_back("quar");
        }
        if (hasDrops)
            hdr.push_back("drops");
        stats::Table t(hdr);
        const auto us = [](double seconds) {
            return stats::Table::num(seconds * 1e6, 1) + "us";
        };
        for (int sIdx = 0;; ++sIdx) {
            const std::string sh = std::to_string(sIdx);
            const std::string lab = "{shard=\"" + sh + "\"}";
            if (snap.find("lp_gets" + lab) == snap.end())
                break;
            std::vector<std::string> row = {
                sh,
                stats::Table::num(scalar(d, "lp_gets" + lab) / secs,
                                  0),
                stats::Table::num(
                    scalar(d, "lp_mutations" + lab) / secs, 0),
                stats::Table::num(
                    scalar(d, "lp_epochs_committed" + lab) / secs,
                    0),
                stats::Table::num(scalar(d, "lp_folds" + lab) / secs,
                                  0),
                stats::Table::num(
                    scalar(d, "lp_deadline_commits" + lab) / secs,
                    0),
                stats::Table::num(
                    scalar(snap, "lp_queue_depth" + lab), 0),
                stats::Table::num(
                    scalar(snap, "lp_committed_epoch" + lab), 0),
                us(obs::quantileFromBuckets(
                    bucketSeries(d, "lp_commit_lat_seconds", sh),
                    0.99)),
                us(obs::quantileFromBuckets(
                    bucketSeries(d, "lp_req_queue_seconds", sh),
                    0.99)),
                us(obs::quantileFromBuckets(
                    bucketSeries(d, "lp_req_commit_wait_seconds",
                                 sh),
                    0.99))};
            if (hasScans) {
                row.push_back(stats::Table::num(
                    scalar(d, "lp_scans" + lab) / secs, 0));
                row.push_back(us(obs::quantileFromBuckets(
                    bucketSeries(d, "lp_scan_lat_seconds", sh),
                    0.99)));
                row.push_back(stats::Table::num(
                    scalar(snap, "lp_index_entries" + lab), 0));
                row.push_back(stats::Table::num(
                    scalar(snap, "lp_index_bytes" + lab) / 1024.0,
                    1));
            }
            if (hasMedia) {
                // Repair counters are lifetime totals, not rates: a
                // single repaired region is the whole story, and it
                // must not fade out after one refresh interval.
                row.push_back(stats::Table::num(
                    scalar(d, "lp_scrub_regions" + lab) / secs, 0));
                row.push_back(stats::Table::num(
                    scalar(snap, "lp_media_repaired_total" + lab),
                    0));
                row.push_back(stats::Table::num(
                    scalar(snap,
                           "lp_media_unrepairable_total" + lab),
                    0));
                row.push_back(
                    scalar(snap, "lp_quarantined" + lab) > 0
                        ? "YES"
                        : "-");
            }
            if (hasDrops) {
                // Lifetime total, like the repair counters: a ring
                // that ever overflowed is worth knowing about long
                // after the burst that did it.
                row.push_back(stats::Table::num(
                    scalar(snap, "lp_trace_drops_total" + lab), 0));
            }
            t.addRow(std::move(row));
        }
        t.print();
        std::fflush(stdout);
        prev = std::move(snap);
    }
    return 0;
}

[[noreturn]] void
injectUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s inject [options]\n"
        "  --data-dir D    server data directory     (default ./lpdb)\n"
        "  --shard N       shard file to corrupt     (default 0)\n"
        "  --site superblock|superblock-replica|journal|digest|parity\n"
        "                  what to corrupt           (default superblock)\n"
        "  --offset O      byte offset within site   (default 0)\n"
        "  --bit B         bit 0-7 to flip           (default 3)\n"
        "  --bytes N       corrupt N bytes from offset instead of a\n"
        "                  single bit flip\n"
        "  --seed S        mask seed for --bytes     (default 1)\n"
        "  --backend lp|eager|wal  must match the server (default lp)\n"
        "  --capacity C / --batch-ops B / --fold-batches F /\n"
        "  --checksum K / --flight-events N / --prepare-slots S\n"
        "                  must match the serve flags (the layout is\n"
        "                  re-derived from the configuration)\n"
        "Flips bits in the mmap'd backing file of a shard -- simulated\n"
        "bit rot underneath the store. Works on a stopped store (the\n"
        "next restart's recovery must detect it) and on a live one\n"
        "(the shared page cache makes the flip visible to the serving\n"
        "process; its next scrub pass must catch it). Never repairs\n"
        "anything; see `top` or STATS for the repair counters.\n",
        argv0);
    std::exit(2);
}

int
runInjectCommand(int argc, char **argv)
{
    using namespace lp::store;

    std::string dataDir = "./lpdb";
    int shard = 0;
    std::string site = "superblock";
    std::size_t offset = 0;
    int bit = 3;
    std::size_t bytes = 0;
    std::uint64_t seed = 1;
    Backend backend = Backend::Lp;
    StoreConfig scfg;
    scfg.capacity = 16384;  // serve defaults; override to match
    scfg.shards = 1;        // one arena file per server shard
    std::uint32_t flightEvents = 4096;
    std::size_t prepareSlots = 128;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                injectUsage(argv[0]);
            return argv[++i];
        };
        if (arg == "--data-dir") {
            dataDir = next();
        } else if (arg == "--shard") {
            shard = std::atoi(next().c_str());
        } else if (arg == "--site") {
            site = next();
        } else if (arg == "--offset") {
            offset = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--bit") {
            bit = std::atoi(next().c_str());
        } else if (arg == "--bytes") {
            bytes = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--seed") {
            seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--backend") {
            backend = parseBackend(next());
        } else if (arg == "--capacity") {
            scfg.capacity = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--batch-ops") {
            scfg.batchOps = std::atoi(next().c_str());
        } else if (arg == "--fold-batches") {
            scfg.foldBatches = std::atoi(next().c_str());
        } else if (arg == "--checksum") {
            scfg.checksum = parseChecksum(next());
        } else if (arg == "--flight-events") {
            flightEvents = std::uint32_t(std::atoi(next().c_str()));
        } else if (arg == "--prepare-slots") {
            prepareSlots =
                std::strtoull(next().c_str(), nullptr, 10);
        } else {
            injectUsage(argv[0]);
        }
    }

    const std::string path =
        dataDir + "/shard-" + std::to_string(shard) + ".lpdb";
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0 || st.st_size == 0)
        fatal("no shard backing file at " + path +
              "; point --data-dir/--shard at an initialized store");

    // Re-attach the arena and re-derive the shard layout exactly the
    // way a restarting server does: same total size (flight ring +
    // store + prepare log -- a size mismatch fatal()s in the mmap),
    // same allocation order. The flight ring region is skipped with a
    // bare allocRaw rather than a FlightRing, whose constructor would
    // seal a new generation into a live server's recorder; KvStore
    // attach construction writes nothing, it only replays the
    // allocation sequence, so this is safe against both a stopped
    // file and a live server's mapping (MAP_SHARED over the same
    // pages).
    pmem::PersistentArena arena(
        (flightEvents > 0 ? obs::FlightRing::bytesFor(flightEvents)
                          : 0) +
            storeArenaBytes(scfg) + txn::prepareLogBytes(prepareSlots),
        path);
    if (flightEvents > 0)
        arena.allocRaw(obs::FlightRing::bytesFor(flightEvents));
    store::KvStore<kernels::NativeEnv> kv(arena, scfg, backend,
                                          /*attach=*/true);
    const FaultSurface fs = kv.faultSurface(0);

    const void *base = nullptr;
    std::size_t limit = 0;
    if (site == "superblock") {
        base = fs.metaPrimary;
        limit = sizeof(ShardMeta);
    } else if (site == "superblock-replica") {
        base = fs.metaReplica;
        limit = sizeof(ShardMeta);
    } else if (site == "journal") {
        base = fs.journal;
        limit = fs.sealedBytes ? fs.sealedBytes : fs.journalBytes;
    } else if (site == "digest") {
        base = fs.digests;
        limit = fs.digestBytes;
    } else if (site == "parity") {
        base = fs.parity;
        limit = fs.parityBytes;
    } else {
        injectUsage(argv[0]);
    }
    if (!base || limit == 0)
        fatal("site '" + site + "' does not exist on backend " +
              backendName(backend) + " (or the shard is empty)");
    if (offset >= limit || (bytes > 0 && offset + bytes > limit))
        fatal("offset/bytes past the end of site '" + site + "' (" +
              std::to_string(limit) + " bytes)");

    pmem::FaultInjector inj(arena);
    const auto *p = static_cast<const std::uint8_t *>(base) + offset;
    if (bytes > 0)
        inj.corruptRange(p, bytes, seed);
    else
        inj.flipBit(p, bit);
    arena.persistAll();

    std::printf("injected %llu fault byte%s into %s site=%s "
                "offset=%zu (file offset %llu)\n",
                static_cast<unsigned long long>(inj.flips()),
                inj.flips() == 1 ? "" : "s", path.c_str(),
                site.c_str(), offset,
                static_cast<unsigned long long>(arena.addrOf(p)));
    return 0;
}

[[noreturn]] void
postmortemUsage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s postmortem [DIR] [options]\n"
        "  DIR             crashed server's data directory\n"
        "  --data-dir D    same, as a flag (default ./lpdb)\n"
        "  --out F         Chrome trace JSON destination\n"
        "                  (default <data-dir>/postmortem.json)\n"
        "Decodes the crash-persistent flight recorder at the head of\n"
        "every shard-N.lpdb file (docs/observability.md): picks the\n"
        "newest checksum-clean seal, discards torn and stale slots,\n"
        "and writes the surviving spans -- request flow arcs included\n"
        "-- as Chrome trace-event JSON loadable in Perfetto. Reads\n"
        "the raw files only: no store configuration is needed and a\n"
        "live server is not disturbed. Run it BEFORE restarting a\n"
        "crashed server -- restart reseals the rings for the new\n"
        "incarnation.\n",
        argv0);
    std::exit(2);
}

int
runPostmortemCommand(int argc, char **argv)
{
    std::string dataDir = "./lpdb";
    std::string out;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                postmortemUsage(argv[0]);
            return argv[++i];
        };
        if (arg == "--data-dir") {
            dataDir = next();
        } else if (arg == "--out") {
            out = next();
        } else if (!arg.empty() && arg[0] != '-') {
            dataDir = arg; // positional: postmortem <dir>
        } else {
            postmortemUsage(argv[0]);
        }
    }
    if (out.empty())
        out = dataDir + "/postmortem.json";

    obs::TraceCollector trace;
    std::uint64_t totalEvents = 0, totalRejected = 0;
    int shardsFound = 0, shardsValid = 0;
    for (int s = 0;; ++s) {
        const std::string path =
            dataDir + "/shard-" + std::to_string(s) + ".lpdb";
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            break;
        struct stat st{};
        if (::fstat(fd, &st) != 0 ||
            st.st_size <= std::int64_t(blockBytes)) {
            ::close(fd);
            break;
        }
        const std::size_t len = std::size_t(st.st_size);
        void *map =
            ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (map == MAP_FAILED)
            fatal("cannot mmap " + path);
        ++shardsFound;
        // Placement contract (obs/flight.hh): the flight ring is the
        // shard arena's FIRST allocation, so its headers sit at the
        // arena base offset -- one block into the file.
        const auto *base = static_cast<const std::uint8_t *>(map);
        const obs::FlightRecovered rec = obs::FlightRing::recover(
            base + blockBytes, len - blockBytes);
        if (!rec.valid) {
            std::printf("shard %d: no valid flight seal in %s "
                        "(server ran with --flight-events 0, or the "
                        "region is damaged)\n",
                        s, path.c_str());
            ::munmap(map, len);
            continue;
        }
        ++shardsValid;
        char when[32] = "?";
        const std::time_t secs =
            std::time_t(rec.wallAnchorNs / 1000000000ULL);
        struct tm tmv{};
        if (::gmtime_r(&secs, &tmv) != nullptr)
            std::strftime(when, sizeof(when), "%Y-%m-%dT%H:%M:%SZ",
                          &tmv);
        std::printf("shard %d: gen=%llu sealed-events=%llu "
                    "recovered=%zu rejected=%llu sealed-at=%s\n",
                    s, static_cast<unsigned long long>(rec.gen),
                    static_cast<unsigned long long>(rec.sealedSeq),
                    rec.events.size(),
                    static_cast<unsigned long long>(rec.rejected),
                    when);
        obs::TraceRing *ring =
            trace.ring("shard-" + std::to_string(s) + "-flight",
                       rec.tid, rec.events.size() + 8);
        for (const obs::TraceEvent &e : rec.events)
            ring->push(e);
        totalEvents += rec.events.size();
        totalRejected += rec.rejected;
        ::munmap(map, len);
    }
    if (shardsFound == 0)
        fatal("no shard-*.lpdb files in " + dataDir);
    if (shardsValid == 0) {
        std::fprintf(
            stderr,
            "postmortem: no shard carried a valid flight seal\n");
        return 1;
    }
    if (!trace.writeChromeTrace(out))
        fatal("cannot write " + out);
    std::printf(
        "wrote %s (%llu events from %d/%d shards, %llu slots "
        "discarded as torn/stale)\n",
        out.c_str(), static_cast<unsigned long long>(totalEvents),
        shardsValid, shardsFound,
        static_cast<unsigned long long>(totalRejected));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::strcmp(argv[1], "store") == 0)
        return runStoreCommand(argc, argv);
    if (argc >= 2 && std::strcmp(argv[1], "serve") == 0)
        return runServeCommand(argc, argv);
    if (argc >= 2 && std::strcmp(argv[1], "top") == 0)
        return runTopCommand(argc, argv);
    if (argc >= 2 && std::strcmp(argv[1], "inject") == 0)
        return runInjectCommand(argc, argv);
    if (argc >= 2 && std::strcmp(argv[1], "postmortem") == 0)
        return runPostmortemCommand(argc, argv);

    KernelId kernel = KernelId::Tmm;
    Scheme scheme = Scheme::Lp;
    KernelParams params;
    sim::MachineConfig cfg;
    cfg.l1 = {16 * 1024, 8, 2};
    cfg.l2 = {128 * 1024, 8, 11};
    int crash_pct = -1;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--kernel") {
            kernel = parseKernel(next());
        } else if (arg == "--scheme") {
            scheme = parseScheme(next());
        } else if (arg == "--n") {
            params.n = std::atoi(next().c_str());
        } else if (arg == "--bsize") {
            params.bsize = std::atoi(next().c_str());
        } else if (arg == "--threads") {
            params.threads = std::atoi(next().c_str());
        } else if (arg == "--iterations") {
            params.iterations = std::atoi(next().c_str());
        } else if (arg == "--checksum") {
            params.checksum = parseChecksum(next());
        } else if (arg == "--seed") {
            params.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--l1-kb") {
            cfg.l1.sizeBytes = std::atoi(next().c_str()) * 1024;
        } else if (arg == "--l2-kb") {
            cfg.l2.sizeBytes = std::atoi(next().c_str()) * 1024;
        } else if (arg == "--read-ns") {
            cfg.nvmmReadNs = std::atof(next().c_str());
        } else if (arg == "--write-ns") {
            cfg.nvmmWriteNs = std::atof(next().c_str());
        } else if (arg == "--cleaner-period") {
            cfg.cleanerPeriodCycles =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--crash-at") {
            crash_pct = std::atoi(next().c_str());
        } else if (arg == "--json") {
            json = true;
        } else {
            usage(argv[0]);
        }
    }
    cfg.numCores = params.threads;

    std::printf("kernel=%s scheme=%s n=%d bsize=%d threads=%d "
                "checksum=%s L1=%uKB L2=%uKB NVMM=%g/%gns\n",
                kernelName(kernel).c_str(),
                schemeName(scheme).c_str(), params.n, params.bsize,
                params.threads,
                core::checksumKindName(params.checksum).c_str(),
                cfg.l1.sizeBytes / 1024, cfg.l2.sizeBytes / 1024,
                cfg.nvmmReadNs, cfg.nvmmWriteNs);

    if (crash_pct < 0) {
        const auto out = runScheme(kernel, scheme, params, cfg);
        if (json) {
            stats::JsonValue::Object obj = stats::toJson(out.stats);
            obj.emplace("kernel", kernelName(kernel));
            obj.emplace("scheme", schemeName(scheme));
            obj.emplace("verified", out.verified);
            std::printf("%s\n",
                        stats::JsonValue(obj).render().c_str());
            return out.verified ? 0 : 1;
        }
        std::printf("exec cycles:   %.0f\n", out.execCycles);
        std::printf("NVMM writes:   %.0f (evict %.0f, flush %.0f, "
                    "cleaner %.0f)\n",
                    out.nvmmWrites, out.stat("eviction_writes"),
                    out.stat("flush_writes"),
                    out.stat("cleaner_writes"));
        std::printf("NVMM reads:    %.0f\n", out.stat("nvmm_reads"));
        std::printf("flush instrs:  %.0f   fences: %.0f\n",
                    out.stat("flush_instrs"), out.stat("fences"));
        std::printf("L2 miss rate:  %.4f\n",
                    out.stat("l2_accesses") > 0
                        ? out.stat("l2_misses") /
                              out.stat("l2_accesses")
                        : 0.0);
        std::printf("verified:      %s (max abs err %.3e)\n",
                    out.verified ? "yes" : "NO", out.maxAbsError);
        return out.verified ? 0 : 1;
    }

    if (scheme != Scheme::Lp)
        fatal("--crash-at requires --scheme lp");
    const auto full = runScheme(kernel, Scheme::Lp, params, cfg);
    const auto total =
        static_cast<std::uint64_t>(full.stat("stores"));
    const auto out = runLpWithCrash(
        kernel, params, cfg,
        total * static_cast<std::uint64_t>(crash_pct) / 100);
    std::printf("crash injected at %d%% (%llu stores): %s\n",
                crash_pct,
                static_cast<unsigned long long>(
                    total * crash_pct / 100),
                out.crashed ? "fired" : "did not fire");
    std::printf("recovery: matched=%llu repaired=%llu checked=%llu "
                "resume-stage=%d\n",
                static_cast<unsigned long long>(out.recovery.matched),
                static_cast<unsigned long long>(
                    out.recovery.repaired),
                static_cast<unsigned long long>(out.recovery.checked),
                out.recovery.resumeStage);
    std::printf("recovery+resume cycles: %.0f\n", out.recoveryCycles);
    std::printf("verified: %s (max abs err %.3e)\n",
                out.verified ? "yes" : "NO", out.maxAbsError);
    return out.verified ? 0 : 1;
}
