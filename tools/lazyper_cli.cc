/**
 * @file
 * lazyper_cli -- run any kernel x scheme x machine configuration from
 * the command line and print the measurements. The fastest way to
 * explore the design space without writing code.
 *
 * Examples:
 *   lazyper_cli --kernel tmm --scheme lp
 *   lazyper_cli --kernel gauss --scheme ep --n 128 --threads 4
 *   lazyper_cli --kernel fft --scheme lp --crash-at 50 --seed 7
 *   lazyper_cli --kernel tmm --scheme lp --l2-kb 64 \
 *               --checksum adler32 --cleaner-period 100000
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/logging.hh"
#include "kernels/harness.hh"
#include "stats/json.hh"

using namespace lp;
using namespace lp::kernels;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --kernel tmm|cholesky|conv2d|gauss|fft|spmv\n"
        "  --scheme base|lp|ep|wal                  (default lp)\n"
        "  --n N             problem size            (default 128)\n"
        "  --bsize B         tile/band size          (default 16)\n"
        "  --threads T       worker threads          (default 8)\n"
        "  --iterations I    conv2d outer iterations (default 4)\n"
        "  --checksum parity|modular|adler32|combined|crc32\n"
        "  --seed S          input seed              (default 12345)\n"
        "  --l1-kb K         per-core L1 size        (default 16)\n"
        "  --l2-kb K         shared L2 size          (default 128)\n"
        "  --read-ns / --write-ns   NVMM latencies   (150 / 300)\n"
        "  --cleaner-period C       cycles, 0 = off  (default 0)\n"
        "  --crash-at P      crash at P%% of the LP store stream,\n"
        "                    recover, resume, verify (default off)\n"
        "  --json            emit the full stats snapshot as JSON\n",
        argv0);
    std::exit(2);
}

KernelId
parseKernel(const std::string &s)
{
    if (s == "tmm")
        return KernelId::Tmm;
    if (s == "cholesky")
        return KernelId::Cholesky;
    if (s == "conv2d" || s == "2d-conv")
        return KernelId::Conv2d;
    if (s == "gauss")
        return KernelId::Gauss;
    if (s == "fft")
        return KernelId::Fft;
    if (s == "spmv")
        return KernelId::Spmv;
    fatal("unknown kernel: " + s);
}

Scheme
parseScheme(const std::string &s)
{
    if (s == "base")
        return Scheme::Base;
    if (s == "lp")
        return Scheme::Lp;
    if (s == "ep" || s == "eager")
        return Scheme::EagerRecompute;
    if (s == "wal")
        return Scheme::Wal;
    fatal("unknown scheme: " + s);
}

core::ChecksumKind
parseChecksum(const std::string &s)
{
    if (s == "parity")
        return core::ChecksumKind::Parity;
    if (s == "modular")
        return core::ChecksumKind::Modular;
    if (s == "adler32")
        return core::ChecksumKind::Adler32;
    if (s == "combined" || s == "modular+parity")
        return core::ChecksumKind::ModularParity;
    if (s == "crc32")
        return core::ChecksumKind::Crc32;
    fatal("unknown checksum kind: " + s);
}

} // namespace

int
main(int argc, char **argv)
{
    KernelId kernel = KernelId::Tmm;
    Scheme scheme = Scheme::Lp;
    KernelParams params;
    sim::MachineConfig cfg;
    cfg.l1 = {16 * 1024, 8, 2};
    cfg.l2 = {128 * 1024, 8, 11};
    int crash_pct = -1;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--kernel") {
            kernel = parseKernel(next());
        } else if (arg == "--scheme") {
            scheme = parseScheme(next());
        } else if (arg == "--n") {
            params.n = std::atoi(next().c_str());
        } else if (arg == "--bsize") {
            params.bsize = std::atoi(next().c_str());
        } else if (arg == "--threads") {
            params.threads = std::atoi(next().c_str());
        } else if (arg == "--iterations") {
            params.iterations = std::atoi(next().c_str());
        } else if (arg == "--checksum") {
            params.checksum = parseChecksum(next());
        } else if (arg == "--seed") {
            params.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--l1-kb") {
            cfg.l1.sizeBytes = std::atoi(next().c_str()) * 1024;
        } else if (arg == "--l2-kb") {
            cfg.l2.sizeBytes = std::atoi(next().c_str()) * 1024;
        } else if (arg == "--read-ns") {
            cfg.nvmmReadNs = std::atof(next().c_str());
        } else if (arg == "--write-ns") {
            cfg.nvmmWriteNs = std::atof(next().c_str());
        } else if (arg == "--cleaner-period") {
            cfg.cleanerPeriodCycles =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--crash-at") {
            crash_pct = std::atoi(next().c_str());
        } else if (arg == "--json") {
            json = true;
        } else {
            usage(argv[0]);
        }
    }
    cfg.numCores = params.threads;

    std::printf("kernel=%s scheme=%s n=%d bsize=%d threads=%d "
                "checksum=%s L1=%uKB L2=%uKB NVMM=%g/%gns\n",
                kernelName(kernel).c_str(),
                schemeName(scheme).c_str(), params.n, params.bsize,
                params.threads,
                core::checksumKindName(params.checksum).c_str(),
                cfg.l1.sizeBytes / 1024, cfg.l2.sizeBytes / 1024,
                cfg.nvmmReadNs, cfg.nvmmWriteNs);

    if (crash_pct < 0) {
        const auto out = runScheme(kernel, scheme, params, cfg);
        if (json) {
            stats::JsonValue::Object obj = stats::toJson(out.stats);
            obj.emplace("kernel", kernelName(kernel));
            obj.emplace("scheme", schemeName(scheme));
            obj.emplace("verified", out.verified);
            std::printf("%s\n",
                        stats::JsonValue(obj).render().c_str());
            return out.verified ? 0 : 1;
        }
        std::printf("exec cycles:   %.0f\n", out.execCycles);
        std::printf("NVMM writes:   %.0f (evict %.0f, flush %.0f, "
                    "cleaner %.0f)\n",
                    out.nvmmWrites, out.stat("eviction_writes"),
                    out.stat("flush_writes"),
                    out.stat("cleaner_writes"));
        std::printf("NVMM reads:    %.0f\n", out.stat("nvmm_reads"));
        std::printf("flush instrs:  %.0f   fences: %.0f\n",
                    out.stat("flush_instrs"), out.stat("fences"));
        std::printf("L2 miss rate:  %.4f\n",
                    out.stat("l2_accesses") > 0
                        ? out.stat("l2_misses") /
                              out.stat("l2_accesses")
                        : 0.0);
        std::printf("verified:      %s (max abs err %.3e)\n",
                    out.verified ? "yes" : "NO", out.maxAbsError);
        return out.verified ? 0 : 1;
    }

    if (scheme != Scheme::Lp)
        fatal("--crash-at requires --scheme lp");
    const auto full = runScheme(kernel, Scheme::Lp, params, cfg);
    const auto total =
        static_cast<std::uint64_t>(full.stat("stores"));
    const auto out = runLpWithCrash(
        kernel, params, cfg,
        total * static_cast<std::uint64_t>(crash_pct) / 100);
    std::printf("crash injected at %d%% (%llu stores): %s\n",
                crash_pct,
                static_cast<unsigned long long>(
                    total * crash_pct / 100),
                out.crashed ? "fired" : "did not fire");
    std::printf("recovery: matched=%llu repaired=%llu checked=%llu "
                "resume-stage=%d\n",
                static_cast<unsigned long long>(out.recovery.matched),
                static_cast<unsigned long long>(
                    out.recovery.repaired),
                static_cast<unsigned long long>(out.recovery.checked),
                out.recovery.resumeStage);
    std::printf("recovery+resume cycles: %.0f\n", out.recoveryCycles);
    std::printf("verified: %s (max abs err %.3e)\n",
                out.verified ? "yes" : "NO", out.maxAbsError);
    return out.verified ? 0 : 1;
}
