file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_cache_checksum.dir/bench_fig15_cache_checksum.cc.o"
  "CMakeFiles/bench_fig15_cache_checksum.dir/bench_fig15_cache_checksum.cc.o.d"
  "bench_fig15_cache_checksum"
  "bench_fig15_cache_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_cache_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
