# Empty compiler generated dependencies file for bench_fig15_cache_checksum.
# This may be replaced when dependencies are built.
