# Empty compiler generated dependencies file for bench_cleaner_policies.
# This may be replaced when dependencies are built.
