file(REMOVE_RECURSE
  "CMakeFiles/bench_cleaner_policies.dir/bench_cleaner_policies.cc.o"
  "CMakeFiles/bench_cleaner_policies.dir/bench_cleaner_policies.cc.o.d"
  "bench_cleaner_policies"
  "bench_cleaner_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cleaner_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
