# Empty dependencies file for bench_checksum_accuracy.
# This may be replaced when dependencies are built.
