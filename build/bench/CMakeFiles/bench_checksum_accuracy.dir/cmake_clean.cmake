file(REMOVE_RECURSE
  "CMakeFiles/bench_checksum_accuracy.dir/bench_checksum_accuracy.cc.o"
  "CMakeFiles/bench_checksum_accuracy.dir/bench_checksum_accuracy.cc.o.d"
  "bench_checksum_accuracy"
  "bench_checksum_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checksum_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
