file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_hazards.dir/bench_table6_hazards.cc.o"
  "CMakeFiles/bench_table6_hazards.dir/bench_table6_hazards.cc.o.d"
  "bench_table6_hazards"
  "bench_table6_hazards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_hazards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
