file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_write_amp.dir/bench_fig13_write_amp.cc.o"
  "CMakeFiles/bench_fig13_write_amp.dir/bench_fig13_write_amp.cc.o.d"
  "bench_fig13_write_amp"
  "bench_fig13_write_amp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_write_amp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
