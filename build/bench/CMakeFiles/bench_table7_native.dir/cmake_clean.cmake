file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_native.dir/bench_table7_native.cc.o"
  "CMakeFiles/bench_table7_native.dir/bench_table7_native.cc.o.d"
  "bench_table7_native"
  "bench_table7_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
