# Empty compiler generated dependencies file for bench_table7_native.
# This may be replaced when dependencies are built.
