# Empty compiler generated dependencies file for bench_checksum_throughput.
# This may be replaced when dependencies are built.
