file(REMOVE_RECURSE
  "CMakeFiles/bench_checksum_throughput.dir/bench_checksum_throughput.cc.o"
  "CMakeFiles/bench_checksum_throughput.dir/bench_checksum_throughput.cc.o.d"
  "bench_checksum_throughput"
  "bench_checksum_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checksum_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
