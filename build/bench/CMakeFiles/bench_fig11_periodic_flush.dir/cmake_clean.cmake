file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_periodic_flush.dir/bench_fig11_periodic_flush.cc.o"
  "CMakeFiles/bench_fig11_periodic_flush.dir/bench_fig11_periodic_flush.cc.o.d"
  "bench_fig11_periodic_flush"
  "bench_fig11_periodic_flush.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_periodic_flush.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
