# Empty compiler generated dependencies file for bench_fig11_periodic_flush.
# This may be replaced when dependencies are built.
