file(REMOVE_RECURSE
  "CMakeFiles/bench_embedded_checksums.dir/bench_embedded_checksums.cc.o"
  "CMakeFiles/bench_embedded_checksums.dir/bench_embedded_checksums.cc.o.d"
  "bench_embedded_checksums"
  "bench_embedded_checksums.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embedded_checksums.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
