# Empty dependencies file for bench_embedded_checksums.
# This may be replaced when dependencies are built.
