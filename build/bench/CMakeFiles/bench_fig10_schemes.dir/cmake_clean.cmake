file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_schemes.dir/bench_fig10_schemes.cc.o"
  "CMakeFiles/bench_fig10_schemes.dir/bench_fig10_schemes.cc.o.d"
  "bench_fig10_schemes"
  "bench_fig10_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
