file(REMOVE_RECURSE
  "CMakeFiles/lazyper_cli.dir/lazyper_cli.cc.o"
  "CMakeFiles/lazyper_cli.dir/lazyper_cli.cc.o.d"
  "lazyper_cli"
  "lazyper_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazyper_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
