# Empty compiler generated dependencies file for lazyper_cli.
# This may be replaced when dependencies are built.
