file(REMOVE_RECURSE
  "CMakeFiles/test_pmem_ops.dir/test_pmem_ops.cc.o"
  "CMakeFiles/test_pmem_ops.dir/test_pmem_ops.cc.o.d"
  "test_pmem_ops"
  "test_pmem_ops.pdb"
  "test_pmem_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmem_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
