# Empty dependencies file for test_pmem_ops.
# This may be replaced when dependencies are built.
