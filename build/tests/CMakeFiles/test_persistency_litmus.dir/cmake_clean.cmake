file(REMOVE_RECURSE
  "CMakeFiles/test_persistency_litmus.dir/test_persistency_litmus.cc.o"
  "CMakeFiles/test_persistency_litmus.dir/test_persistency_litmus.cc.o.d"
  "test_persistency_litmus"
  "test_persistency_litmus.pdb"
  "test_persistency_litmus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_persistency_litmus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
