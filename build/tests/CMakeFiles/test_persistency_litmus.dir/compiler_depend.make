# Empty compiler generated dependencies file for test_persistency_litmus.
# This may be replaced when dependencies are built.
