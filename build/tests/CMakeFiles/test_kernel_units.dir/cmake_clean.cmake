file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_units.dir/test_kernel_units.cc.o"
  "CMakeFiles/test_kernel_units.dir/test_kernel_units.cc.o.d"
  "test_kernel_units"
  "test_kernel_units.pdb"
  "test_kernel_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
