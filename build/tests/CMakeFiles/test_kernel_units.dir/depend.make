# Empty dependencies file for test_kernel_units.
# This may be replaced when dependencies are built.
