file(REMOVE_RECURSE
  "CMakeFiles/test_keyed_table.dir/test_keyed_table.cc.o"
  "CMakeFiles/test_keyed_table.dir/test_keyed_table.cc.o.d"
  "test_keyed_table"
  "test_keyed_table.pdb"
  "test_keyed_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keyed_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
