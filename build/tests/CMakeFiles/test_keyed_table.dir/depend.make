# Empty dependencies file for test_keyed_table.
# This may be replaced when dependencies are built.
