file(REMOVE_RECURSE
  "CMakeFiles/test_recovery_driver.dir/test_recovery_driver.cc.o"
  "CMakeFiles/test_recovery_driver.dir/test_recovery_driver.cc.o.d"
  "test_recovery_driver"
  "test_recovery_driver.pdb"
  "test_recovery_driver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recovery_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
