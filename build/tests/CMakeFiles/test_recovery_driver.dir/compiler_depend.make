# Empty compiler generated dependencies file for test_recovery_driver.
# This may be replaced when dependencies are built.
