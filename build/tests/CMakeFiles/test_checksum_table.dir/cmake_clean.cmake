file(REMOVE_RECURSE
  "CMakeFiles/test_checksum_table.dir/test_checksum_table.cc.o"
  "CMakeFiles/test_checksum_table.dir/test_checksum_table.cc.o.d"
  "test_checksum_table"
  "test_checksum_table.pdb"
  "test_checksum_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_checksum_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
