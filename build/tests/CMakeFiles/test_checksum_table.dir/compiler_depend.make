# Empty compiler generated dependencies file for test_checksum_table.
# This may be replaced when dependencies are built.
