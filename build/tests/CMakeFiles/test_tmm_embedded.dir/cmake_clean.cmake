file(REMOVE_RECURSE
  "CMakeFiles/test_tmm_embedded.dir/test_tmm_embedded.cc.o"
  "CMakeFiles/test_tmm_embedded.dir/test_tmm_embedded.cc.o.d"
  "test_tmm_embedded"
  "test_tmm_embedded.pdb"
  "test_tmm_embedded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tmm_embedded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
