file(REMOVE_RECURSE
  "CMakeFiles/test_eager_recompute.dir/test_eager_recompute.cc.o"
  "CMakeFiles/test_eager_recompute.dir/test_eager_recompute.cc.o.d"
  "test_eager_recompute"
  "test_eager_recompute.pdb"
  "test_eager_recompute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eager_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
