# Empty compiler generated dependencies file for test_eager_recompute.
# This may be replaced when dependencies are built.
