file(REMOVE_RECURSE
  "CMakeFiles/test_tmm_window.dir/test_tmm_window.cc.o"
  "CMakeFiles/test_tmm_window.dir/test_tmm_window.cc.o.d"
  "test_tmm_window"
  "test_tmm_window.pdb"
  "test_tmm_window[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tmm_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
