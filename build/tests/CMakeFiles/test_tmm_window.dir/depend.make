# Empty dependencies file for test_tmm_window.
# This may be replaced when dependencies are built.
