file(REMOVE_RECURSE
  "CMakeFiles/tmm_crash_recovery.dir/tmm_crash_recovery.cc.o"
  "CMakeFiles/tmm_crash_recovery.dir/tmm_crash_recovery.cc.o.d"
  "tmm_crash_recovery"
  "tmm_crash_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmm_crash_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
