# Empty compiler generated dependencies file for tmm_crash_recovery.
# This may be replaced when dependencies are built.
