
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/cholesky.cc" "src/CMakeFiles/lp_kernels.dir/kernels/cholesky.cc.o" "gcc" "src/CMakeFiles/lp_kernels.dir/kernels/cholesky.cc.o.d"
  "/root/repo/src/kernels/conv2d.cc" "src/CMakeFiles/lp_kernels.dir/kernels/conv2d.cc.o" "gcc" "src/CMakeFiles/lp_kernels.dir/kernels/conv2d.cc.o.d"
  "/root/repo/src/kernels/fft.cc" "src/CMakeFiles/lp_kernels.dir/kernels/fft.cc.o" "gcc" "src/CMakeFiles/lp_kernels.dir/kernels/fft.cc.o.d"
  "/root/repo/src/kernels/gauss.cc" "src/CMakeFiles/lp_kernels.dir/kernels/gauss.cc.o" "gcc" "src/CMakeFiles/lp_kernels.dir/kernels/gauss.cc.o.d"
  "/root/repo/src/kernels/harness.cc" "src/CMakeFiles/lp_kernels.dir/kernels/harness.cc.o" "gcc" "src/CMakeFiles/lp_kernels.dir/kernels/harness.cc.o.d"
  "/root/repo/src/kernels/spmv.cc" "src/CMakeFiles/lp_kernels.dir/kernels/spmv.cc.o" "gcc" "src/CMakeFiles/lp_kernels.dir/kernels/spmv.cc.o.d"
  "/root/repo/src/kernels/tmm.cc" "src/CMakeFiles/lp_kernels.dir/kernels/tmm.cc.o" "gcc" "src/CMakeFiles/lp_kernels.dir/kernels/tmm.cc.o.d"
  "/root/repo/src/kernels/tmm_embedded.cc" "src/CMakeFiles/lp_kernels.dir/kernels/tmm_embedded.cc.o" "gcc" "src/CMakeFiles/lp_kernels.dir/kernels/tmm_embedded.cc.o.d"
  "/root/repo/src/kernels/workload.cc" "src/CMakeFiles/lp_kernels.dir/kernels/workload.cc.o" "gcc" "src/CMakeFiles/lp_kernels.dir/kernels/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lp_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
