# Empty compiler generated dependencies file for lp_kernels.
# This may be replaced when dependencies are built.
