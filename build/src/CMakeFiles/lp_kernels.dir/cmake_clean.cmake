file(REMOVE_RECURSE
  "CMakeFiles/lp_kernels.dir/kernels/cholesky.cc.o"
  "CMakeFiles/lp_kernels.dir/kernels/cholesky.cc.o.d"
  "CMakeFiles/lp_kernels.dir/kernels/conv2d.cc.o"
  "CMakeFiles/lp_kernels.dir/kernels/conv2d.cc.o.d"
  "CMakeFiles/lp_kernels.dir/kernels/fft.cc.o"
  "CMakeFiles/lp_kernels.dir/kernels/fft.cc.o.d"
  "CMakeFiles/lp_kernels.dir/kernels/gauss.cc.o"
  "CMakeFiles/lp_kernels.dir/kernels/gauss.cc.o.d"
  "CMakeFiles/lp_kernels.dir/kernels/harness.cc.o"
  "CMakeFiles/lp_kernels.dir/kernels/harness.cc.o.d"
  "CMakeFiles/lp_kernels.dir/kernels/spmv.cc.o"
  "CMakeFiles/lp_kernels.dir/kernels/spmv.cc.o.d"
  "CMakeFiles/lp_kernels.dir/kernels/tmm.cc.o"
  "CMakeFiles/lp_kernels.dir/kernels/tmm.cc.o.d"
  "CMakeFiles/lp_kernels.dir/kernels/tmm_embedded.cc.o"
  "CMakeFiles/lp_kernels.dir/kernels/tmm_embedded.cc.o.d"
  "CMakeFiles/lp_kernels.dir/kernels/workload.cc.o"
  "CMakeFiles/lp_kernels.dir/kernels/workload.cc.o.d"
  "liblp_kernels.a"
  "liblp_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
