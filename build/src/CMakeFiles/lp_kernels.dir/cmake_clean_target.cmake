file(REMOVE_RECURSE
  "liblp_kernels.a"
)
