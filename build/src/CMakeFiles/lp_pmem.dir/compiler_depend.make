# Empty compiler generated dependencies file for lp_pmem.
# This may be replaced when dependencies are built.
