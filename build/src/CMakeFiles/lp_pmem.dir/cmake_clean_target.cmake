file(REMOVE_RECURSE
  "liblp_pmem.a"
)
