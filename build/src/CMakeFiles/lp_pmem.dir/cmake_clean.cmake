file(REMOVE_RECURSE
  "CMakeFiles/lp_pmem.dir/pmem/arena.cc.o"
  "CMakeFiles/lp_pmem.dir/pmem/arena.cc.o.d"
  "liblp_pmem.a"
  "liblp_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
