file(REMOVE_RECURSE
  "CMakeFiles/lp_stats.dir/stats/json.cc.o"
  "CMakeFiles/lp_stats.dir/stats/json.cc.o.d"
  "CMakeFiles/lp_stats.dir/stats/table.cc.o"
  "CMakeFiles/lp_stats.dir/stats/table.cc.o.d"
  "liblp_stats.a"
  "liblp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
