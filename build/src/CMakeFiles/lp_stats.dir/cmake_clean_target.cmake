file(REMOVE_RECURSE
  "liblp_stats.a"
)
