# Empty dependencies file for lp_stats.
# This may be replaced when dependencies are built.
