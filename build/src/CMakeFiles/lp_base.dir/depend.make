# Empty dependencies file for lp_base.
# This may be replaced when dependencies are built.
