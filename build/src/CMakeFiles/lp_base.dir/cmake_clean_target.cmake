file(REMOVE_RECURSE
  "liblp_base.a"
)
