file(REMOVE_RECURSE
  "CMakeFiles/lp_base.dir/base/logging.cc.o"
  "CMakeFiles/lp_base.dir/base/logging.cc.o.d"
  "liblp_base.a"
  "liblp_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
