
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cc" "src/CMakeFiles/lp_sim.dir/sim/cache.cc.o" "gcc" "src/CMakeFiles/lp_sim.dir/sim/cache.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/lp_sim.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/lp_sim.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/lp_sim.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/lp_sim.dir/sim/scheduler.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/lp_sim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/lp_sim.dir/sim/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lp_base.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
