file(REMOVE_RECURSE
  "liblp_sim.a"
)
