# Empty compiler generated dependencies file for lp_sim.
# This may be replaced when dependencies are built.
