file(REMOVE_RECURSE
  "CMakeFiles/lp_sim.dir/sim/cache.cc.o"
  "CMakeFiles/lp_sim.dir/sim/cache.cc.o.d"
  "CMakeFiles/lp_sim.dir/sim/machine.cc.o"
  "CMakeFiles/lp_sim.dir/sim/machine.cc.o.d"
  "CMakeFiles/lp_sim.dir/sim/scheduler.cc.o"
  "CMakeFiles/lp_sim.dir/sim/scheduler.cc.o.d"
  "CMakeFiles/lp_sim.dir/sim/trace.cc.o"
  "CMakeFiles/lp_sim.dir/sim/trace.cc.o.d"
  "liblp_sim.a"
  "liblp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
