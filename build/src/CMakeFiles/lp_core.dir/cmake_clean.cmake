file(REMOVE_RECURSE
  "CMakeFiles/lp_core.dir/lp/checksum.cc.o"
  "CMakeFiles/lp_core.dir/lp/checksum.cc.o.d"
  "CMakeFiles/lp_core.dir/lp/checksum_table.cc.o"
  "CMakeFiles/lp_core.dir/lp/checksum_table.cc.o.d"
  "CMakeFiles/lp_core.dir/lp/keyed_table.cc.o"
  "CMakeFiles/lp_core.dir/lp/keyed_table.cc.o.d"
  "CMakeFiles/lp_core.dir/lp/recovery.cc.o"
  "CMakeFiles/lp_core.dir/lp/recovery.cc.o.d"
  "liblp_core.a"
  "liblp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
