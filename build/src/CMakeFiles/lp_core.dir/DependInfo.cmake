
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/checksum.cc" "src/CMakeFiles/lp_core.dir/lp/checksum.cc.o" "gcc" "src/CMakeFiles/lp_core.dir/lp/checksum.cc.o.d"
  "/root/repo/src/lp/checksum_table.cc" "src/CMakeFiles/lp_core.dir/lp/checksum_table.cc.o" "gcc" "src/CMakeFiles/lp_core.dir/lp/checksum_table.cc.o.d"
  "/root/repo/src/lp/keyed_table.cc" "src/CMakeFiles/lp_core.dir/lp/keyed_table.cc.o" "gcc" "src/CMakeFiles/lp_core.dir/lp/keyed_table.cc.o.d"
  "/root/repo/src/lp/recovery.cc" "src/CMakeFiles/lp_core.dir/lp/recovery.cc.o" "gcc" "src/CMakeFiles/lp_core.dir/lp/recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lp_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lp_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
