/**
 * @file
 * Unit tests for the persistent arena: allocation, address
 * translation, persist/crash semantics.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "pmem/arena.hh"

namespace lp::pmem
{
namespace
{

TEST(Arena, AllocationIsBlockAligned)
{
    PersistentArena a(1 << 16);
    double *x = a.alloc<double>(3);
    double *y = a.alloc<double>(1);
    EXPECT_EQ(a.addrOf(x) % blockBytes, 0u);
    EXPECT_EQ(a.addrOf(y) % blockBytes, 0u);
    // Distinct allocations never share a block.
    EXPECT_GE(a.addrOf(y) - a.addrOf(x), static_cast<Addr>(blockBytes));
}

TEST(Arena, HostAlignmentMatchesSimAlignment)
{
    PersistentArena a(1 << 16);
    double *x = a.alloc<double>(8);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(x) % blockBytes,
              a.addrOf(x) % blockBytes);
}

TEST(Arena, AddressZeroNeverAllocated)
{
    PersistentArena a(1 << 12);
    void *p = a.allocRaw(8);
    EXPECT_GE(a.addrOf(p), static_cast<Addr>(blockBytes));
}

TEST(Arena, RoundTripTranslation)
{
    PersistentArena a(1 << 12);
    double *x = a.alloc<double>(4);
    const Addr addr = a.addrOf(x);
    EXPECT_EQ(a.ptr<double>(addr), x);
}

TEST(Arena, PersistBlockCopiesOneBlock)
{
    PersistentArena a(1 << 12);
    double *x = a.alloc<double>(16);  // two blocks
    x[0] = 1.5;
    x[8] = 2.5;  // second block
    a.persistBlock(blockAlign(a.addrOf(&x[0])));
    EXPECT_DOUBLE_EQ(a.peekDurable(&x[0]), 1.5);
    EXPECT_DOUBLE_EQ(a.peekDurable(&x[8]), 0.0);  // not persisted
    EXPECT_EQ(a.persistedBlocks(), 1u);
}

TEST(Arena, CrashRestoreRevertsUnpersistedWrites)
{
    PersistentArena a(1 << 12);
    double *x = a.alloc<double>(16);
    x[0] = 1.0;
    x[8] = 2.0;
    a.persistBlock(blockAlign(a.addrOf(&x[0])));
    // Block 2 (x[8]) never persisted.
    a.crashRestore();
    EXPECT_DOUBLE_EQ(x[0], 1.0);   // survived
    EXPECT_DOUBLE_EQ(x[8], 0.0);   // lost
}

TEST(Arena, PersistAllMakesEverythingDurable)
{
    PersistentArena a(1 << 12);
    double *x = a.alloc<double>(32);
    for (int i = 0; i < 32; ++i)
        x[i] = i * 0.5;
    a.persistAll();
    a.crashRestore();
    for (int i = 0; i < 32; ++i)
        EXPECT_DOUBLE_EQ(x[i], i * 0.5);
}

TEST(Arena, RepeatedPersistUpdatesShadow)
{
    PersistentArena a(1 << 12);
    double *x = a.alloc<double>(1);
    const Addr blk = blockAlign(a.addrOf(x));
    *x = 1.0;
    a.persistBlock(blk);
    *x = 2.0;
    a.persistBlock(blk);
    *x = 3.0;  // not persisted
    a.crashRestore();
    EXPECT_DOUBLE_EQ(*x, 2.0);
}

TEST(Arena, BytesAllocatedGrows)
{
    PersistentArena a(1 << 12);
    EXPECT_EQ(a.bytesAllocated(), 0u);
    a.allocRaw(100);
    const std::size_t after_first = a.bytesAllocated();
    EXPECT_GE(after_first, 100u);
    a.allocRaw(1);
    EXPECT_GT(a.bytesAllocated(), after_first);
}

TEST(ArenaDeathTest, ExhaustionIsFatal)
{
    PersistentArena a(1 << 10);
    EXPECT_EXIT(a.allocRaw(1 << 20), ::testing::ExitedWithCode(1),
                "exhausted");
}

} // namespace
} // namespace lp::pmem
