/**
 * @file
 * Unit and property tests for the checksum accumulators
 * (Section III-D): determinism, sensitivity, order properties, the
 * sentinel guarantee, and relative cost ordering.
 */

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "base/rng.hh"
#include "lp/checksum.hh"

namespace lp::core
{
namespace
{

const ChecksumKind allKinds[] = {
    ChecksumKind::Parity,
    ChecksumKind::Modular,
    ChecksumKind::Adler32,
    ChecksumKind::ModularParity,
    ChecksumKind::Crc32,
};

TEST(Checksum, KindNames)
{
    EXPECT_EQ(checksumKindName(ChecksumKind::Parity), "parity");
    EXPECT_EQ(checksumKindName(ChecksumKind::Modular), "modular");
    EXPECT_EQ(checksumKindName(ChecksumKind::Adler32), "adler32");
    EXPECT_EQ(checksumKindName(ChecksumKind::ModularParity),
              "modular+parity");
    EXPECT_EQ(checksumKindName(ChecksumKind::Crc32), "crc32");
}

TEST(Checksum, EmptyDigestIsStableAndNotSentinel)
{
    for (ChecksumKind k : allKinds) {
        ChecksumAcc a(k);
        ChecksumAcc b(k);
        EXPECT_EQ(a.value(), b.value());
        EXPECT_NE(a.value(), invalidDigest);
    }
}

TEST(Checksum, DeterministicOverSameSequence)
{
    Rng rng(5);
    std::vector<double> vals;
    for (int i = 0; i < 256; ++i)
        vals.push_back(rng.uniform(-10, 10));
    for (ChecksumKind k : allKinds) {
        ChecksumAcc a(k);
        ChecksumAcc b(k);
        for (double v : vals) {
            a.add(v);
            b.add(v);
        }
        EXPECT_EQ(a.value(), b.value());
    }
}

TEST(Checksum, ResetRestartsAccumulation)
{
    for (ChecksumKind k : allKinds) {
        ChecksumAcc a(k);
        a.add(1.0);
        a.add(2.0);
        const std::uint64_t before = a.value();
        a.reset();
        a.add(1.0);
        a.add(2.0);
        EXPECT_EQ(a.value(), before);
    }
}

TEST(Checksum, SingleValueChangeChangesDigest)
{
    Rng rng(17);
    std::vector<double> vals;
    for (int i = 0; i < 64; ++i)
        vals.push_back(rng.uniform(0, 1));
    for (ChecksumKind k : allKinds) {
        ChecksumAcc ref(k);
        for (double v : vals)
            ref.add(v);
        // Perturb each position in turn; digest must change.
        for (std::size_t pos = 0; pos < vals.size(); ++pos) {
            ChecksumAcc alt(k);
            for (std::size_t i = 0; i < vals.size(); ++i)
                alt.add(i == pos ? vals[i] + 0.125 : vals[i]);
            EXPECT_NE(alt.value(), ref.value())
                << checksumKindName(k) << " missed a change at "
                << pos;
        }
    }
}

TEST(Checksum, ParityAndModularAreOrderInsensitive)
{
    for (ChecksumKind k :
         {ChecksumKind::Parity, ChecksumKind::Modular,
          ChecksumKind::ModularParity}) {
        ChecksumAcc fwd(k);
        ChecksumAcc rev(k);
        for (int i = 0; i < 32; ++i)
            fwd.add(i * 1.25);
        for (int i = 31; i >= 0; --i)
            rev.add(i * 1.25);
        EXPECT_EQ(fwd.value(), rev.value()) << checksumKindName(k);
    }
}

TEST(Checksum, Adler32IsOrderSensitive)
{
    ChecksumAcc fwd(ChecksumKind::Adler32);
    ChecksumAcc rev(ChecksumKind::Adler32);
    for (int i = 0; i < 32; ++i)
        fwd.add(i * 1.25);
    for (int i = 31; i >= 0; --i)
        rev.add(i * 1.25);
    EXPECT_NE(fwd.value(), rev.value());
}

TEST(Checksum, Adler32MatchesKnownVector)
{
    // Adler-32 of the bytes of the word 0x0000000000000001:
    // a = 1 + 1 = 2, b = sum over 8 bytes.
    ChecksumAcc a(ChecksumKind::Adler32);
    a.addWord(1);
    // bytes: 01 00 00 00 00 00 00 00
    // a: 2 after first byte then stays 2; b accumulates a each byte:
    // b = 2 + 2*7 = 16.
    EXPECT_EQ(a.value(), (16ull << 16) | 2ull);
}

TEST(Checksum, Crc32MatchesZlibVectors)
{
    // Reference values computed with zlib.crc32 over the
    // little-endian byte representation of the words.
    ChecksumAcc a(ChecksumKind::Crc32);
    a.addWord(0x0123456789abcdefull);
    EXPECT_EQ(a.value(), 0x443be247ull);

    ChecksumAcc b(ChecksumKind::Crc32);
    b.addWord(1);
    b.addWord(2);
    EXPECT_EQ(b.value(), 0xf6ddb9ull);
}

TEST(Checksum, Crc32IsOrderSensitive)
{
    ChecksumAcc fwd(ChecksumKind::Crc32);
    ChecksumAcc rev(ChecksumKind::Crc32);
    fwd.addWord(1);
    fwd.addWord(2);
    rev.addWord(2);
    rev.addWord(1);
    EXPECT_NE(fwd.value(), rev.value());
}

TEST(Checksum, ParityMatchesXorFold)
{
    ChecksumAcc a(ChecksumKind::Parity);
    a.addWord(0x123456789abcdef0ull);
    a.addWord(0x0fedcba987654321ull);
    const std::uint64_t x = 0x123456789abcdef0ull ^
                            0x0fedcba987654321ull;
    const std::uint32_t fold = static_cast<std::uint32_t>(x) ^
                               static_cast<std::uint32_t>(x >> 32);
    EXPECT_EQ(a.value(), fold);
}

TEST(Checksum, NeverProducesSentinel)
{
    // Direct probe: an input crafted to produce all-ones in the
    // combined kind gets remapped.
    ChecksumAcc c(ChecksumKind::ModularParity);
    // One word with fold32 = 0xffffffff: parity = modular = ffffffff.
    c.addWord(0x00000000ffffffffull);
    EXPECT_NE(c.value(), invalidDigest);
    EXPECT_EQ(c.value(), invalidDigest - 1);

    Rng rng(23);
    for (ChecksumKind k : allKinds) {
        ChecksumAcc a(k);
        for (int i = 0; i < 1000; ++i) {
            a.addWord(rng.next64());
            ASSERT_NE(a.value(), invalidDigest);
        }
    }
}

TEST(Checksum, UpdateCostOrdering)
{
    // Figure 15(b): parity cheapest, Adler-32 most expensive.
    EXPECT_LT(ChecksumAcc::updateCost(ChecksumKind::Parity),
              ChecksumAcc::updateCost(ChecksumKind::Modular) + 2);
    EXPECT_LT(ChecksumAcc::updateCost(ChecksumKind::Modular),
              ChecksumAcc::updateCost(ChecksumKind::ModularParity));
    EXPECT_LT(ChecksumAcc::updateCost(ChecksumKind::ModularParity),
              ChecksumAcc::updateCost(ChecksumKind::Adler32));
}

/**
 * Error-injection accuracy property (the Section III-D experiment in
 * miniature): flip random bits in random positions of a protected
 * sequence and count undetected changes. Modular and Adler must
 * detect every injected error here; parity must detect all
 * single-word errors too (it only misses correlated multi-word
 * errors).
 */
class ChecksumAccuracy
    : public ::testing::TestWithParam<ChecksumKind>
{
};

TEST_P(ChecksumAccuracy, DetectsSingleWordCorruption)
{
    const ChecksumKind kind = GetParam();
    Rng rng(99);
    std::vector<std::uint64_t> words(128);
    for (auto &w : words)
        w = rng.next64();

    ChecksumAcc ref(kind);
    for (auto w : words)
        ref.addWord(w);

    int undetected = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        const std::size_t pos = rng.below(words.size());
        const std::uint64_t flip = 1ull << rng.below(64);
        ChecksumAcc alt(kind);
        for (std::size_t i = 0; i < words.size(); ++i)
            alt.addWord(i == pos ? words[i] ^ flip : words[i]);
        if (alt.value() == ref.value())
            ++undetected;
    }
    EXPECT_EQ(undetected, 0);
}

TEST_P(ChecksumAccuracy, DetectsLostWriteCorruption)
{
    // The LP failure mode: a value reverts to its previous (stale)
    // contents because the cache block never persisted.
    const ChecksumKind kind = GetParam();
    Rng rng(123);
    std::vector<double> fresh(256);
    std::vector<double> stale(256);
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        fresh[i] = rng.uniform(-1, 1);
        stale[i] = rng.uniform(-1, 1);
    }
    ChecksumAcc ref(kind);
    for (double vv : fresh)
        ref.add(vv);

    int undetected = 0;
    for (int trial = 0; trial < 1000; ++trial) {
        // Revert a random aligned run of 8 values (one cache block).
        const std::size_t blk = rng.below(fresh.size() / 8) * 8;
        ChecksumAcc alt(kind);
        for (std::size_t i = 0; i < fresh.size(); ++i) {
            const bool reverted = i >= blk && i < blk + 8;
            alt.add(reverted ? stale[i] : fresh[i]);
        }
        if (alt.value() == ref.value())
            ++undetected;
    }
    EXPECT_EQ(undetected, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ChecksumAccuracy,
    ::testing::Values(ChecksumKind::Parity, ChecksumKind::Modular,
                      ChecksumKind::Adler32,
                      ChecksumKind::ModularParity,
                      ChecksumKind::Crc32),
    [](const ::testing::TestParamInfo<ChecksumKind> &info) {
        switch (info.param) {
          case ChecksumKind::Parity:        return "parity";
          case ChecksumKind::Modular:       return "modular";
          case ChecksumKind::Adler32:       return "adler32";
          case ChecksumKind::ModularParity: return "combined";
          case ChecksumKind::Crc32:         return "crc32";
        }
        return "unknown";
    });

} // namespace
} // namespace lp::core
