/**
 * @file
 * Corruption matrix for the media-fault tolerance layer (lp::repair):
 * every (fault site x backend) cell runs the end-to-end story --
 * workload, clean shutdown, targeted bit flips, then recovery or an
 * online scrub pass -- and asserts the contract:
 *
 *  - single-region faults with a surviving redundant copy (parity,
 *    digest replica, superblock twin) are detected AND repaired with
 *    zero data loss;
 *  - provably-lost data (both superblock copies, two regions of one
 *    parity group, a sealed epoch past parity coverage) quarantines
 *    the shard: detected, counted unrepairable, and the surviving
 *    state still matches a golden replay -- never silent wrong data,
 *    never a crash.
 *
 * Geometry (1 shard, 8-op batches, 100 pre-ops): 12 full batches plus
 * one partial, 2712 sealed journal bytes = 42 parity-covered 64B
 * regions plus a 24-byte covered-by-digest-only tail, so every LP
 * fault site exists. foldBatches is large enough that no fold runs
 * before the injection -- the journal still carries the full stream.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "store/driver.hh"

namespace lp::store
{
namespace
{

StoreConfig
matrixConfig()
{
    StoreConfig cfg;
    cfg.capacity = 1024;
    cfg.shards = 1;
    cfg.batchOps = 8;
    cfg.foldBatches = 64;  // never reached: injection sees epoch 1
    return cfg;
}

/** Sites whose effective fault keeps a usable redundant copy. */
bool
expectRepaired(Backend b, FaultSite site)
{
    if (b != Backend::Lp) {
        // The non-LP mapping (driver.cc) sends these onto the dead
        // superblock pair; everything else lands on a single copy.
        return site != FaultSite::JournalMultiRegion &&
               site != FaultSite::SuperblockBoth;
    }
    switch (site) {
      case FaultSite::JournalPayload:    // parity reconstructs
      case FaultSite::ChecksumSlot:      // replica digest carries it
      case FaultSite::ParityPage:        // scrub recomputes parity
      case FaultSite::SuperblockPrimary: // twin carries it
      case FaultSite::SuperblockReplica:
        return true;
      case FaultSite::JournalTail:        // past parity coverage
      case FaultSite::JournalMultiRegion: // XOR undoes one, not two
      case FaultSite::SuperblockBoth:     // no fold base left
        return false;
    }
    return false;
}

using Cell = std::tuple<Backend, FaultSite>;

class MediaFaultMatrix : public ::testing::TestWithParam<Cell>
{
};

TEST_P(MediaFaultMatrix, DetectsAndRepairsOrQuarantines)
{
    const auto [backend, site] = GetParam();

    StoreFaultSpec spec;
    spec.records = 256;
    spec.preOps = 100;
    spec.postOps = 256;
    spec.delFraction = 0.15;
    spec.seed = 11;
    spec.site = site;

    const StoreFaultOutcome out = runStoreWithFault(
        backend, matrixConfig(), spec, sim::MachineConfig{});
    const std::string cell =
        std::string(backendName(backend)) + " site " +
        std::to_string(int(site)) + " (effective " +
        std::to_string(int(out.effectiveSite)) + ")";

    ASSERT_TRUE(out.injected)
        << cell << ": fault site did not exist -- geometry broken";

    if (expectRepaired(backend, site)) {
        EXPECT_GE(out.mediaRepaired, 1u)
            << cell << ": corruption was never detected";
        EXPECT_EQ(out.mediaUnrepairable, 0u) << cell;
        EXPECT_FALSE(out.quarantined) << cell;
        EXPECT_TRUE(out.stateVerified)
            << cell << ": repaired state lost data";
        EXPECT_TRUE(out.finalStateVerified)
            << cell << ": store wrong after post-repair workload";
    } else {
        EXPECT_GE(out.mediaUnrepairable, 1u)
            << cell << ": lost data was not detected";
        EXPECT_TRUE(out.quarantined)
            << cell << ": unrepairable fault did not quarantine";
        // Quarantined is still honest: what survives equals the
        // golden replay of exactly the committed-and-validated
        // prefix. Silent wrong data here is the one forbidden state.
        EXPECT_TRUE(out.stateVerified)
            << cell << ": quarantined shard serves wrong data";
        EXPECT_TRUE(out.finalStateVerified) << cell;
    }
    EXPECT_TRUE(out.scanStateVerified)
        << cell << ": scan disagreed with point-GET state";
}

const FaultSite kSites[] = {
    FaultSite::JournalPayload,    FaultSite::JournalTail,
    FaultSite::JournalMultiRegion, FaultSite::ChecksumSlot,
    FaultSite::ParityPage,        FaultSite::SuperblockPrimary,
    FaultSite::SuperblockReplica, FaultSite::SuperblockBoth,
};

const char *
siteName(FaultSite s)
{
    switch (s) {
      case FaultSite::JournalPayload:     return "JournalPayload";
      case FaultSite::JournalTail:        return "JournalTail";
      case FaultSite::JournalMultiRegion: return "JournalMultiRegion";
      case FaultSite::ChecksumSlot:       return "ChecksumSlot";
      case FaultSite::ParityPage:         return "ParityPage";
      case FaultSite::SuperblockPrimary:  return "SuperblockPrimary";
      case FaultSite::SuperblockReplica:  return "SuperblockReplica";
      case FaultSite::SuperblockBoth:     return "SuperblockBoth";
    }
    return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, MediaFaultMatrix,
    ::testing::Combine(::testing::Values(Backend::Lp,
                                         Backend::EagerPerOp,
                                         Backend::Wal),
                       ::testing::ValuesIn(kSites)),
    [](const auto &info) {
        return backendName(std::get<0>(info.param)) +
               std::string("_") + siteName(std::get<1>(info.param));
    });

} // namespace
} // namespace lp::store
