/**
 * @file
 * Tests for trace record/replay: a replayed trace must reproduce the
 * recorded run's statistics exactly; traces round-trip through
 * files; replay into different configurations is the supported
 * design-space workflow.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "kernels/env.hh"
#include "kernels/harness.hh"
#include "kernels/tmm.hh"
#include "pmem/arena.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"

namespace lp::sim
{
namespace
{

using kernels::KernelParams;
using kernels::SimContext;
using kernels::TmmWorkload;
using kernels::Scheme;

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.l1 = {4 * 1024, 4, 2};
    cfg.l2 = {16 * 1024, 4, 11};
    return cfg;
}

KernelParams
smallParams()
{
    KernelParams p;
    p.n = 32;
    p.bsize = 8;
    p.threads = 4;
    return p;
}

/** Record a tmm+LP run; returns the trace and the run's snapshot. */
TraceBuffer
recordRun(stats::Snapshot &snap_out)
{
    SimContext ctx(smallConfig(),
                   kernels::arenaBytesFor(kernels::KernelId::Tmm,
                                          smallParams()));
    TraceBuffer trace;
    ctx.machine.setTraceRecorder(&trace);
    TmmWorkload w(smallParams(), ctx);
    w.run(Scheme::Lp);
    snap_out = ctx.machine.snapshot();
    return trace;
}

TEST(Trace, RecordsEveryOperation)
{
    stats::Snapshot snap;
    const TraceBuffer trace = recordRun(snap);
    EXPECT_GT(trace.size(), 1000u);
    // Loads + stores + ticks dominate; fences are zero under LP.
    std::size_t reads = 0;
    std::size_t writes = 0;
    std::size_t fences = 0;
    for (const auto &r : trace.entries()) {
        reads += r.op == TraceOp::Read;
        writes += r.op == TraceOp::Write;
        fences += r.op == TraceOp::Fence;
    }
    EXPECT_EQ(static_cast<double>(reads), snap.at("loads"));
    EXPECT_EQ(static_cast<double>(writes), snap.at("stores"));
    EXPECT_EQ(fences, 0u);
}

TEST(Trace, ReplayReproducesStatsExactly)
{
    stats::Snapshot recorded;
    const TraceBuffer trace = recordRun(recorded);

    Machine replay_machine(smallConfig(), nullptr);
    trace.replayInto(replay_machine);
    const auto replayed = replay_machine.snapshot();

    // Every counter, including cycle-exact execution time, matches.
    EXPECT_EQ(recorded, replayed);
}

TEST(Trace, ReplayIntoDifferentCacheChangesOnlyCacheStats)
{
    stats::Snapshot recorded;
    const TraceBuffer trace = recordRun(recorded);

    MachineConfig big = smallConfig();
    big.l2 = {256 * 1024, 8, 11};
    Machine m(big, nullptr);
    trace.replayInto(m);
    const auto replayed = m.snapshot();

    // Same instruction stream...
    EXPECT_EQ(replayed.at("loads"), recorded.at("loads"));
    EXPECT_EQ(replayed.at("stores"), recorded.at("stores"));
    EXPECT_EQ(replayed.at("compute_ops"), recorded.at("compute_ops"));
    // ...but a bigger L2 misses less and writes less.
    EXPECT_LT(replayed.at("l2_misses"), recorded.at("l2_misses"));
    EXPECT_LE(replayed.at("nvmm_writes"), recorded.at("nvmm_writes"));
}

TEST(Trace, FileRoundTrip)
{
    stats::Snapshot snap;
    const TraceBuffer trace = recordRun(snap);
    const std::string path = "/tmp/lazyper_trace_test.bin";
    trace.save(path);
    const TraceBuffer loaded = TraceBuffer::load(path);
    ASSERT_EQ(loaded.size(), trace.size());

    Machine m(smallConfig(), nullptr);
    loaded.replayInto(m);
    EXPECT_EQ(m.snapshot(), snap);
    std::remove(path.c_str());
}

TEST(Trace, ManualRecordingApi)
{
    TraceBuffer t;
    t.read(0, 128, 8);
    t.write(1, 256, 8);
    t.flush(0, 128);
    t.clwb(1, 256);
    t.fence(0);
    t.tick(2, 100);
    ASSERT_EQ(t.size(), 6u);
    EXPECT_EQ(t.entries()[0].op, TraceOp::Read);
    EXPECT_EQ(t.entries()[1].core, 1);
    EXPECT_EQ(t.entries()[5].arg, 100u);
    t.clear();
    EXPECT_TRUE(t.empty());
}

TEST(Trace, ReplayDrivesDurability)
{
    // A replayed write + flush persists in the replay machine's own
    // backend.
    pmem::PersistentArena arena(1 << 16);
    Machine m(smallConfig(), &arena);
    double *d = arena.alloc<double>(1);
    *d = 5.0;  // volatile view set up front (replay is value-blind)

    TraceBuffer t;
    t.write(0, arena.addrOf(d), 8);
    t.flush(0, arena.addrOf(d));
    t.fence(0);
    t.replayInto(m);
    EXPECT_DOUBLE_EQ(arena.peekDurable(d), 5.0);
}

TEST(TraceDeathTest, LoadRejectsGarbageFile)
{
    const std::string path = "/tmp/lazyper_not_a_trace.bin";
    FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("definitely not a trace", f);
    std::fclose(f);
    EXPECT_EXIT((void)TraceBuffer::load(path),
                ::testing::ExitedWithCode(1), "not a lazyper trace");
    std::remove(path.c_str());
}

} // namespace
} // namespace lp::sim
