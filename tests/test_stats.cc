/**
 * @file
 * Unit tests for the statistics primitives and the table printer.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"
#include "stats/table.hh"

namespace lp::stats
{
namespace
{

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    c++;
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Maximum, TracksMax)
{
    Maximum m;
    EXPECT_EQ(m.value(), 0u);
    m.sample(3);
    m.sample(1);
    m.sample(9);
    m.sample(4);
    EXPECT_EQ(m.value(), 9u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(SnapshotDelta, DiffsAndNewKeysAgainstZero)
{
    Snapshot before{{"a", 10.0}, {"b", 5.0}};
    Snapshot after{{"a", 12.0}, {"b", 5.0}, {"c", 3.0}};
    const Snapshot d = snapshotDelta(before, after);
    EXPECT_DOUBLE_EQ(d.at("a"), 2.0);
    EXPECT_DOUBLE_EQ(d.at("b"), 0.0);
    EXPECT_DOUBLE_EQ(d.at("c"), 3.0);  // new key diffs against zero
}

TEST(SnapshotDelta, SkipsCountersThatWentBackwards)
{
    // A counter lower than before means the source was reset between
    // snapshots (server restart); any "delta" would be nonsense, and
    // the unsigned version of this bug printed 2^64-ish values.
    Snapshot before{{"reset", 100.0}, {"alive", 7.0}};
    Snapshot after{{"reset", 2.0}, {"alive", 9.0}};
    const Snapshot d = snapshotDelta(before, after);
    EXPECT_EQ(d.count("reset"), 0u);
    EXPECT_DOUBLE_EQ(d.at("alive"), 2.0);
}

TEST(SnapshotDelta, KeysOnlyInBeforeAreDropped)
{
    Snapshot before{{"gone", 4.0}};
    Snapshot after{};
    EXPECT_TRUE(snapshotDelta(before, after).empty());
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::ratio(1.5, 1), "1.5x");
    EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
}

TEST(Table, RendersAlignedRows)
{
    Table t({"scheme", "time"});
    t.addRow({"base", "1.00"});
    t.addRow({"tmm+LP", "1.002"});
    const std::string s = t.render();
    EXPECT_NE(s.find("scheme"), std::string::npos);
    EXPECT_NE(s.find("tmm+LP"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, ShortRowsArePadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"only"});
    const std::string s = t.render();
    EXPECT_NE(s.find("only"), std::string::npos);
}

} // namespace
} // namespace lp::stats
