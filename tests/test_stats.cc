/**
 * @file
 * Unit tests for the statistics primitives and the table printer.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"
#include "stats/table.hh"

namespace lp::stats
{
namespace
{

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    c++;
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Maximum, TracksMax)
{
    Maximum m;
    EXPECT_EQ(m.value(), 0u);
    m.sample(3);
    m.sample(1);
    m.sample(9);
    m.sample(4);
    EXPECT_EQ(m.value(), 9u);
}

TEST(Average, MeanOfSamples)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::ratio(1.5, 1), "1.5x");
    EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
}

TEST(Table, RendersAlignedRows)
{
    Table t({"scheme", "time"});
    t.addRow({"base", "1.00"});
    t.addRow({"tmm+LP", "1.002"});
    const std::string s = t.render();
    EXPECT_NE(s.find("scheme"), std::string::npos);
    EXPECT_NE(s.find("tmm+LP"), std::string::npos);
    // Header separator present.
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, ShortRowsArePadded)
{
    Table t({"a", "b", "c"});
    t.addRow({"only"});
    const std::string s = t.render();
    EXPECT_NE(s.find("only"), std::string::npos);
}

} // namespace
} // namespace lp::stats
