/**
 * @file
 * Tests for the LpRegion runtime: lazy vs. eager commits, digest
 * computation through the simulated environment, crash visibility.
 */

#include <gtest/gtest.h>

#include "kernels/env.hh"
#include "lp/checksum_table.hh"
#include "lp/runtime.hh"
#include "pmem/arena.hh"
#include "sim/machine.hh"

namespace lp::core
{
namespace
{

using kernels::NativeEnv;
using kernels::SimEnv;

struct Fixture
{
    Fixture()
        : arena(1 << 20), machine(config(), &arena),
          table(arena, 16)
    {
        arena.persistAll();
    }

    static sim::MachineConfig
    config()
    {
        sim::MachineConfig cfg;
        cfg.numCores = 1;
        cfg.l1 = {1024, 2, 2};
        cfg.l2 = {4096, 4, 11};
        return cfg;
    }

    pmem::PersistentArena arena;
    sim::Machine machine;
    ChecksumTable table;
};

TEST(LpRegion, DigestMatchesPlainAccumulator)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    LpRegion region(f.table, ChecksumKind::Modular);
    region.reset(env);
    region.update(env, 1.5);
    region.update(env, -2.25);

    ChecksumAcc plain(ChecksumKind::Modular);
    plain.add(1.5);
    plain.add(-2.25);
    EXPECT_EQ(region.digest(), plain.value());
}

TEST(LpRegion, LazyCommitWritesEntryButDoesNotPersist)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    LpRegion region(f.table, ChecksumKind::Modular);
    region.reset(env);
    region.update(env, 3.0);
    region.commit(env, 5);
    EXPECT_EQ(f.table.stored(5), region.digest());
    // Not durable yet: a crash reverts it to the sentinel.
    f.machine.loseVolatileState();
    f.arena.crashRestore();
    EXPECT_TRUE(f.table.neverCommitted(5));
}

TEST(LpRegion, EagerCommitSurvivesCrash)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    LpRegion region(f.table, ChecksumKind::Modular);
    region.reset(env);
    region.update(env, 4.0);
    region.commitEager(env, 2);
    const std::uint64_t digest = region.digest();
    f.machine.loseVolatileState();
    f.arena.crashRestore();
    EXPECT_EQ(f.table.stored(2), digest);
}

TEST(LpRegion, LazyCommitPersistsViaNaturalEviction)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    LpRegion region(f.table, ChecksumKind::Modular);
    region.reset(env);
    region.update(env, 8.0);
    region.commit(env, 0);
    const std::uint64_t digest = region.digest();
    // Stream a large footprint to evict the table entry's block.
    double *junk = f.arena.alloc<double>(8192);
    for (int i = 0; i < 8192; i += 8)
        env.ld(&junk[i]);
    f.machine.loseVolatileState();
    f.arena.crashRestore();
    EXPECT_EQ(f.table.stored(0), digest);
}

TEST(LpRegion, ResetBetweenRegionsIsolatesDigests)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    LpRegion region(f.table, ChecksumKind::Modular);
    region.reset(env);
    region.update(env, 1.0);
    region.commit(env, 0);
    region.reset(env);
    region.update(env, 1.0);
    region.commit(env, 1);
    // Same content per region -> same digest.
    EXPECT_EQ(f.table.stored(0), f.table.stored(1));

    region.reset(env);
    region.update(env, 2.0);
    region.commit(env, 3);
    EXPECT_NE(f.table.stored(3), f.table.stored(0));
}

TEST(LpRegion, UpdateChargesComputeTime)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    LpRegion cheap(f.table, ChecksumKind::Parity);
    LpRegion costly(f.table, ChecksumKind::Adler32);

    const Cycles t0 = f.machine.coreCycles(0);
    cheap.reset(env);
    for (int i = 0; i < 1000; ++i)
        cheap.update(env, i);
    const Cycles parity_cost = f.machine.coreCycles(0) - t0;

    const Cycles t1 = f.machine.coreCycles(0);
    costly.reset(env);
    for (int i = 0; i < 1000; ++i)
        costly.update(env, i);
    const Cycles adler_cost = f.machine.coreCycles(0) - t1;

    EXPECT_GT(adler_cost, 2 * parity_cost);
}

TEST(LpRegion, WorksWithNativeEnv)
{
    pmem::PersistentArena arena(1 << 16);
    ChecksumTable table(arena, 4);
    NativeEnv env;
    LpRegion region(table, ChecksumKind::ModularParity);
    region.reset(env);
    region.update(env, 6.5);
    region.updateWord(env, 77);
    region.commit(env, 1);
    EXPECT_EQ(table.stored(1), region.digest());
}

TEST(LpRegion, RegionCommitTriggersCrashHook)
{
    Fixture f;
    pmem::CrashController crash;
    crash.armAfterRegions(2);
    SimEnv env(f.machine, f.arena, 0, &crash);
    LpRegion region(f.table, ChecksumKind::Modular);

    region.reset(env);
    region.commit(env, 0);  // first commit: no crash
    region.reset(env);
    EXPECT_THROW(region.commit(env, 1), pmem::CrashException);
    EXPECT_FALSE(crash.armed());
}

} // namespace
} // namespace lp::core
