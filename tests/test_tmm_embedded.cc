/**
 * @file
 * Tests for the embedded checksum organization (Figure 7(a)):
 * correctness without failure, crash/recovery sweep, sentinel
 * initialization, and the space accounting.
 */

#include <gtest/gtest.h>

#include "kernels/harness.hh"
#include "kernels/tmm_embedded.hh"

namespace lp::kernels
{
namespace
{

sim::MachineConfig
testMachine()
{
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    cfg.l1 = {8 * 1024, 4, 2};
    cfg.l2 = {64 * 1024, 8, 11};
    return cfg;
}

KernelParams
smallParams()
{
    KernelParams p;
    p.n = 32;
    p.bsize = 8;
    p.threads = 4;
    return p;
}

TEST(TmmEmbedded, FailureFreeRunVerifies)
{
    const auto out = runTmmEmbedded(smallParams(), testMachine());
    EXPECT_TRUE(out.verified) << out.maxAbsError;
    EXPECT_FALSE(out.crashed);
    EXPECT_GT(out.execCycles, 0.0);
}

TEST(TmmEmbedded, SpaceAccountingMatchesLayout)
{
    const auto p = smallParams();
    const auto out = runTmmEmbedded(p, testMachine());
    const std::size_t stages = p.n / p.bsize;
    EXPECT_EQ(out.embeddedBytes,
              static_cast<std::size_t>(p.n) * stages *
                  sizeof(double));
}

TEST(TmmEmbedded, AddsNoFlushesInNormalExecution)
{
    // Embedded LP is still lazy: compare writes against the base
    // scheme on the same machine scale.
    const auto p = smallParams();
    const auto cfg = testMachine();
    const auto base = runScheme(KernelId::Tmm, Scheme::Base, p, cfg);
    const auto emb = runTmmEmbedded(p, cfg);
    // Within a few percent of base writes (different stride changes
    // eviction patterns slightly).
    EXPECT_LT(emb.nvmmWrites, base.nvmmWrites * 1.15 + 64.0);
}

class EmbeddedCrashSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(EmbeddedCrashSweep, RecoversToGolden)
{
    const auto p = smallParams();
    const auto cfg = testMachine();
    // Total stores from a full embedded run's scale: use the
    // standalone-table LP run as the yardstick (same store count for
    // data; embedded adds one digest store per region).
    const auto full = runScheme(KernelId::Tmm, Scheme::Lp, p, cfg);
    const auto total =
        static_cast<std::uint64_t>(full.stat("stores"));
    const std::uint64_t point =
        1 + (total - 2) * static_cast<std::uint64_t>(GetParam()) / 5;
    const auto out = runTmmEmbedded(p, cfg, point);
    EXPECT_TRUE(out.crashed);
    EXPECT_TRUE(out.verified)
        << "crash point " << point << " err " << out.maxAbsError;
    EXPECT_EQ(out.bandsMatched + out.bandsRebuilt, p.n / p.bsize);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EmbeddedCrashSweep,
                         ::testing::Range(0, 6));

TEST(TmmEmbedded, ChecksumKindsAllWork)
{
    for (core::ChecksumKind kind :
         {core::ChecksumKind::Parity, core::ChecksumKind::Modular,
          core::ChecksumKind::Adler32,
          core::ChecksumKind::ModularParity}) {
        KernelParams p = smallParams();
        p.checksum = kind;
        const auto out = runTmmEmbedded(p, testMachine(), 3000);
        EXPECT_TRUE(out.verified)
            << core::checksumKindName(kind);
    }
}

} // namespace
} // namespace lp::kernels
