/**
 * @file
 * Datapath tests for lp::net and the server's non-blocking I/O: the
 * FrameCursor buffer contract, byte-dribbled requests (every opcode
 * split across many tiny reads, including inside the u32 length
 * field), and partial-write resumption (shrunk socket buffers, a
 * pipelined burst of maximum-size SCAN replies, and a client that
 * refuses to read until everything is queued -- forcing the server
 * through EAGAIN, EPOLLOUT re-arm, and outbuf backpressure).
 *
 * The server runs in-process (no fork): these tests exercise the
 * steady-state datapath, not crash recovery.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame_cursor.hh"
#include "server/client.hh"
#include "server/protocol.hh"
#include "server/server.hh"

using namespace lp;
using namespace lp::server;

namespace
{

TEST(FrameCursor, AppendConsumeWindow)
{
    net::FrameCursor c;
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.size(), 0u);

    const std::uint8_t a[] = {1, 2, 3, 4};
    const std::uint8_t b[] = {5, 6};
    c.append(a, sizeof(a));
    c.append(b, sizeof(b));
    ASSERT_EQ(c.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(c.data()[i], std::uint8_t(i + 1));

    c.consume(4);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c.data()[0], 5);
    EXPECT_EQ(c.data()[1], 6);

    // Appending after a partial consume extends the same window.
    const std::uint8_t d[] = {7};
    c.append(d, 1);
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c.data()[2], 7);

    c.consume(3);
    EXPECT_TRUE(c.empty());
}

TEST(FrameCursor, WritePtrCommitMatchesAppend)
{
    net::FrameCursor c;
    std::uint8_t *w = c.writePtr(8);
    for (std::uint8_t i = 0; i < 8; ++i)
        w[i] = i;
    c.commit(5);  // a read(2) may return less than requested
    ASSERT_EQ(c.size(), 5u);
    for (std::uint8_t i = 0; i < 5; ++i)
        EXPECT_EQ(c.data()[i], i);

    // writePtr after a short commit continues where commit left off.
    w = c.writePtr(3);
    w[0] = 50;
    c.commit(1);
    ASSERT_EQ(c.size(), 6u);
    EXPECT_EQ(c.data()[5], 50);
}

TEST(FrameCursor, CompactsInsteadOfGrowingInSteadyState)
{
    net::FrameCursor c;
    // Prime to the minimum capacity.
    std::vector<std::uint8_t> chunk(1024, 0xab);
    c.append(chunk.data(), chunk.size());
    const std::size_t cap = c.capacity();
    ASSERT_GE(cap, 1024u);

    // Steady state: consume most of a window, append more than the
    // tail space so reserve() must compact -- capacity never grows.
    for (int round = 0; round < 64; ++round) {
        c.consume(c.size() - 16);  // keep an undecoded suffix
        c.append(chunk.data(), chunk.size());
        EXPECT_EQ(c.capacity(), cap) << "round " << round;
        ASSERT_EQ(c.size(), 16u + chunk.size());
    }

    // The preserved suffix survives every compaction intact.
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(c.data()[i], 0xab);
}

TEST(FrameCursor, ClearKeepsCapacity)
{
    net::FrameCursor c;
    std::vector<std::uint8_t> chunk(9000, 7);
    c.append(chunk.data(), chunk.size());
    const std::size_t cap = c.capacity();
    c.clear();
    EXPECT_TRUE(c.empty());
    EXPECT_EQ(c.capacity(), cap);
    c.append(chunk.data(), 10);
    EXPECT_EQ(c.size(), 10u);
    EXPECT_EQ(c.capacity(), cap);
}

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/lpserver-net-test-XXXXXX";
    const char *d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    return d ? d : "";
}

/** In-process server + temp dir, torn down with the fixture. */
class ServerNet : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = makeTempDir();
        ASSERT_FALSE(dir_.empty());
        cfg_.dataDir = dir_;
        cfg_.shards = 4;
        cfg_.quiet = true;
        srv_ = std::make_unique<Server>(cfg_);
        srv_->start();
    }

    void
    TearDown() override
    {
        if (srv_)
            srv_->stop();
        srv_.reset();
        if (!dir_.empty())
            std::filesystem::remove_all(dir_);
    }

    /**
     * Raw blocking socket to the server. @p rcvbufBytes, when
     * nonzero, shrinks SO_RCVBUF BEFORE connect (the window scale is
     * negotiated at SYN time) so the server's writes hit a tiny
     * in-flight ceiling.
     */
    int
    rawConnect(int rcvbufBytes = 0)
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        if (rcvbufBytes > 0)
            ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbufBytes,
                         sizeof(rcvbufBytes));
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(std::uint16_t(srv_->port()));
        ::inet_pton(AF_INET, cfg_.host.c_str(), &addr.sin_addr);
        EXPECT_EQ(::connect(fd,
                            reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0)
            << std::strerror(errno);
        return fd;
    }

    std::string dir_;
    ServerConfig cfg_;
    std::unique_ptr<Server> srv_;
};

/** Send every byte of @p frame in its own write(2). */
void
sendDribble(int fd, const std::vector<std::uint8_t> &frame)
{
    for (std::size_t i = 0; i < frame.size(); ++i) {
        ASSERT_EQ(::send(fd, frame.data() + i, 1, 0), 1);
        // Pause inside the length field and around the opcode so the
        // server provably sees sub-header reads, then every few bytes
        // so larger bodies split too (TCP_NODELAY pushes each byte).
        if (i < 6 || i % 7 == 0)
            std::this_thread::sleep_for(
                std::chrono::microseconds(500));
    }
}

/** Blocking-read one response frame through a FrameCursor. */
std::optional<Response>
recvFrame(int fd, net::FrameCursor &in)
{
    for (;;) {
        Response resp;
        std::size_t used = 0;
        const Decode d =
            decodeResponse(in.data(), in.size(), used, resp);
        if (d == Decode::Ok) {
            in.consume(used);
            return resp;
        }
        if (d == Decode::Malformed)
            return std::nullopt;
        const ssize_t n = ::read(fd, in.writePtr(64 * 1024), 64 * 1024);
        if (n <= 0)
            return std::nullopt;
        in.commit(std::size_t(n));
    }
}

std::vector<std::uint8_t>
enc(const Request &r)
{
    std::vector<std::uint8_t> out;
    encodeRequest(r, out);
    return out;
}

/**
 * Every opcode, one byte per write: the server's FrameCursor must
 * reassemble frames split at arbitrary points -- including inside
 * the u32 length prefix -- and answer each correctly.
 */
TEST_F(ServerNet, DribbledRequestsEveryOpcode)
{
    const int fd = rawConnect();
    net::FrameCursor in;
    std::uint64_t id = 0;

    const auto roundTrip =
        [&](const Request &q) -> std::optional<Response> {
        sendDribble(fd, enc(q));
        return recvFrame(fd, in);
    };

    // PUT a few keys the later ops can see.
    for (std::uint64_t k = 1; k <= 8; ++k) {
        Request q;
        q.op = Op::Put;
        q.id = ++id;
        q.key = k;
        q.value = k * 100;
        const auto r = roundTrip(q);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->status, Status::Ok);
        EXPECT_EQ(r->id, q.id);
    }

    {
        Request q;
        q.op = Op::Get;
        q.id = ++id;
        q.key = 3;
        const auto r = roundTrip(q);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->status, Status::Ok);
        ASSERT_TRUE(r->hasValue);
        EXPECT_EQ(r->value, 300u);
    }
    {
        Request q;
        q.op = Op::Del;
        q.id = ++id;
        q.key = 4;
        const auto r = roundTrip(q);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->status, Status::Ok);

        Request g;
        g.op = Op::Get;
        g.id = ++id;
        g.key = 4;
        const auto r2 = roundTrip(g);
        ASSERT_TRUE(r2.has_value());
        EXPECT_EQ(r2->status, Status::NotFound);
    }
    {
        Request q;
        q.op = Op::Batch;
        q.id = ++id;
        for (std::uint64_t k = 20; k < 40; ++k)
            q.batch.push_back(BatchOp{true, k, k + 1});
        const auto r = roundTrip(q);
        ASSERT_TRUE(r.has_value());
        EXPECT_EQ(r->status, Status::Ok);
    }
    {
        Request q;
        q.op = Op::Scan;
        q.id = ++id;
        q.key = 20;
        q.limit = 10;
        const auto r = roundTrip(q);
        ASSERT_TRUE(r.has_value());
        ASSERT_EQ(r->status, Status::Ok);
        std::vector<ScanRecord> recs;
        ASSERT_TRUE(decodeScanBody(r->body, recs));
        ASSERT_EQ(recs.size(), 10u);
        for (std::size_t i = 0; i < recs.size(); ++i) {
            EXPECT_EQ(recs[i].key, 20 + i);
            if (i > 0) {
                EXPECT_GT(recs[i].key, recs[i - 1].key);
            }
        }
    }
    {
        Request q;
        q.op = Op::Txn;
        q.id = ++id;
        q.txn.push_back({TxnOp::Kind::Put, 50, 500});
        q.txn.push_back({TxnOp::Kind::Add, 20, 9});
        q.txn.push_back({TxnOp::Kind::Get, 3, 0});
        const auto r = roundTrip(q);
        ASSERT_TRUE(r.has_value());
        ASSERT_EQ(r->status, Status::Ok);
        std::vector<TxnRead> reads;
        ASSERT_TRUE(decodeTxnReadsBody(r->body, reads));
        ASSERT_EQ(reads.size(), 1u);
        EXPECT_TRUE(reads[0].found);
        EXPECT_EQ(reads[0].value, 300u);
    }
    {
        Request q;
        q.op = Op::Metrics;
        q.id = ++id;
        const auto r = roundTrip(q);
        ASSERT_TRUE(r.has_value());
        ASSERT_EQ(r->status, Status::Ok);
        // The datapath gauges/counters this PR added must be present.
        EXPECT_NE(r->body.find("lp_conn_active"), std::string::npos);
        EXPECT_NE(r->body.find("lp_outbuf_bytes"), std::string::npos);
        EXPECT_NE(r->body.find("lp_eagain_total"), std::string::npos);
        EXPECT_NE(r->body.find("lp_writev_batch"), std::string::npos);
    }

    ::close(fd);
}

/**
 * Interleaved pipelining under dribble: queue several requests'
 * bytes in one buffer, send THAT byte-by-byte, and check every
 * reply arrives (matched by id -- shards may reorder).
 */
TEST_F(ServerNet, DribbledPipelinedBurst)
{
    const int fd = rawConnect();
    net::FrameCursor in;

    std::vector<std::uint8_t> wire;
    std::vector<std::uint64_t> ids;
    for (std::uint64_t i = 0; i < 24; ++i) {
        Request q;
        q.id = 1000 + i;
        if (i % 3 == 0) {
            q.op = Op::Put;
            q.key = 200 + i;
            q.value = i;
        } else {
            q.op = Op::Get;
            q.key = 200 + (i - i % 3);  // PUT of this round-of-3
        }
        encodeRequest(q, wire);
        ids.push_back(q.id);
    }
    sendDribble(fd, wire);

    std::unordered_map<std::uint64_t, Response> got;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const auto r = recvFrame(fd, in);
        ASSERT_TRUE(r.has_value()) << "reply " << i;
        EXPECT_TRUE(got.emplace(r->id, *r).second)
            << "duplicate id " << r->id;
    }
    for (const std::uint64_t id : ids)
        ASSERT_TRUE(got.count(id)) << "missing reply " << id;
    // GETs pipelined after their PUT on one connection see its value
    // (same shard => same worker queue => ordered).
    for (std::uint64_t i = 0; i < 24; ++i) {
        const Response &r = got[1000 + i];
        if (i % 3 == 0) {
            EXPECT_EQ(r.status, Status::Ok);
        } else {
            ASSERT_EQ(r.status, Status::Ok) << "GET " << i;
            ASSERT_TRUE(r.hasValue);
            EXPECT_EQ(r.value, (i - i % 3));
        }
    }
    ::close(fd);
}

/**
 * Partial-write resumption: a tiny client receive window, a burst of
 * maximum-size SCAN replies queued before the client reads a single
 * byte. The server's first writev can only land a few kilobytes; the
 * rest must survive EAGAIN, EPOLLOUT re-arm, and (past
 * outbufLimitBytes) read-side backpressure, then drain completely
 * once the client starts reading.
 */
TEST_F(ServerNet, PartialWriteLargeScanBurst)
{
    // ~2k records => SCAN(limit=2048) replies of ~32 KiB each.
    constexpr std::uint64_t kRecords = 2048;
    constexpr int kScans = 96;  // ~3 MiB of queued replies

    {
        Client loader;
        ASSERT_TRUE(loader.connectTo(cfg_.host, srv_->port()));
        for (std::uint64_t at = 0; at < kRecords; at += 256) {
            Request q;
            q.op = Op::Batch;
            q.id = loader.nextId();
            for (std::uint64_t k = at;
                 k < at + 256 && k < kRecords; ++k)
                q.batch.push_back(BatchOp{true, k + 1, k});
            ASSERT_TRUE(loader.sendRequest(q));
            const auto r = loader.recvResponse(30000);
            ASSERT_TRUE(r.has_value());
            ASSERT_EQ(r->status, Status::Ok);
        }
        loader.close();
    }

    const int fd = rawConnect(4096);  // tiny SO_RCVBUF, pre-connect

    // Queue every SCAN before reading anything.
    std::vector<std::uint8_t> wire;
    for (int i = 0; i < kScans; ++i) {
        Request q;
        q.op = Op::Scan;
        q.id = std::uint64_t(5000 + i);
        q.key = 1;
        q.limit = std::uint32_t(kRecords);
        encodeRequest(q, wire);
    }
    ssize_t sent = 0;
    while (sent < ssize_t(wire.size())) {
        const ssize_t n = ::send(fd, wire.data() + sent,
                                 wire.size() - std::size_t(sent), 0);
        ASSERT_GT(n, 0);
        sent += n;
    }
    // Let the server fill the socket and hit its outbuf ceiling
    // before the first read -- otherwise the test degenerates into
    // lockstep request/response.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    net::FrameCursor in;
    std::unordered_map<std::uint64_t, bool> got;
    for (int i = 0; i < kScans; ++i) {
        const auto r = recvFrame(fd, in);
        ASSERT_TRUE(r.has_value()) << "reply " << i;
        ASSERT_EQ(r->status, Status::Ok) << "reply " << i;
        EXPECT_TRUE(got.emplace(r->id, true).second);
        std::vector<ScanRecord> recs;
        ASSERT_TRUE(decodeScanBody(r->body, recs)) << "reply " << i;
        ASSERT_EQ(recs.size(), std::size_t(kRecords));
        for (std::size_t j = 1; j < recs.size(); ++j)
            ASSERT_GT(recs[j].key, recs[j - 1].key);
    }
    ::close(fd);

    // The stressed connection's buffered bytes must not leak into
    // the gauge once it is gone; eagain_total should have counted at
    // least one short write under a 3 MiB burst into a 4 KiB window.
    Client probe;
    ASSERT_TRUE(probe.connectTo(cfg_.host, srv_->port()));
    const auto m = probe.metrics();
    ASSERT_TRUE(m.has_value());
    ASSERT_EQ(m->status, Status::Ok);
    const std::string &text = m->body;
    EXPECT_NE(text.find("lp_eagain_total"), std::string::npos);
    const std::size_t at = text.find("lp_outbuf_bytes ");
    ASSERT_NE(at, std::string::npos);
    EXPECT_EQ(std::atoll(text.c_str() + at +
                         std::strlen("lp_outbuf_bytes ")),
              0);
    probe.close();
}

/**
 * connectTo's timeout also arms the read deadline (SO_RCVTIMEO): a
 * peer that accepts and then goes silent cannot wedge a blocking
 * recvResponse(-1) forever.
 */
TEST(ClientConnect, ReadTimeoutOnSilentPeer)
{
    const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 4), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(lfd,
                            reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    const int port = ntohs(addr.sin_port);

    Client c;
    ASSERT_TRUE(c.connectTo("127.0.0.1", port, 300));
    Request q;
    q.op = Op::Get;
    q.id = 1;
    q.key = 1;
    ASSERT_TRUE(c.sendRequest(q));

    const auto t0 = std::chrono::steady_clock::now();
    const auto r = c.recvResponse(-1);  // deadline is the socket's
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_FALSE(r.has_value());
    EXPECT_GE(elapsed, 200);
    EXPECT_LT(elapsed, 5000);

    c.close();
    ::close(lfd);
}

/** A closed port refuses immediately -- no hang until the timeout. */
TEST(ClientConnect, ClosedPortFailsFast)
{
    // Bind-then-close reserves a port that is now certainly closed.
    const int tfd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(tfd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(tfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(tfd,
                            reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    const int port = ntohs(addr.sin_port);
    ::close(tfd);

    Client c;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(c.connectTo("127.0.0.1", port, 2000));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(elapsed, 1500);
}

} // namespace
