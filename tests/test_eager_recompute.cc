/**
 * @file
 * Tests for the EagerRecompute building blocks: per-thread progress
 * markers (false-sharing-free, durable) and the two-fence region
 * commit.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "ep/eager_recompute.hh"
#include "kernels/env.hh"
#include "pmem/arena.hh"
#include "sim/machine.hh"

namespace lp::ep
{
namespace
{

using kernels::SimEnv;

struct Fixture
{
    Fixture()
        : arena(1 << 20), machine(config(), &arena),
          markers(arena, 4)
    {
        data = arena.alloc<double>(128);
        arena.persistAll();
    }

    static sim::MachineConfig
    config()
    {
        sim::MachineConfig cfg;
        cfg.numCores = 4;
        cfg.l1 = {1024, 2, 2};
        cfg.l2 = {4096, 4, 11};
        return cfg;
    }

    pmem::PersistentArena arena;
    sim::Machine machine;
    ProgressMarkers markers;
    double *data;
};

TEST(ProgressMarkers, StartAtNone)
{
    Fixture f;
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(f.markers.value(t), ProgressMarkers::none);
}

TEST(ProgressMarkers, SlotsAreBlockSeparated)
{
    Fixture f;
    for (int t = 1; t < 4; ++t) {
        const auto gap =
            reinterpret_cast<std::uintptr_t>(f.markers.slot(t)) -
            reinterpret_cast<std::uintptr_t>(f.markers.slot(t - 1));
        EXPECT_GE(gap, static_cast<std::uintptr_t>(blockBytes));
    }
}

TEST(EagerCommit, RegionIsDurableAfterCommit)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    for (int i = 0; i < 16; ++i)
        env.st(&f.data[i], 2.0 * i);

    std::vector<std::pair<const void *, std::size_t>> ranges;
    ranges.emplace_back(f.data, 16 * sizeof(double));
    eagerCommitRegion(env, ranges, f.markers, 0, 41);

    f.machine.loseVolatileState();
    f.arena.crashRestore();
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(f.data[i], 2.0 * i);
    EXPECT_EQ(f.markers.value(0), 41u);
}

TEST(EagerCommit, MarkerOrderedAfterData)
{
    // Crash *between* the data fence and the marker persist cannot
    // leave a marker claiming unpersisted data: the marker is stored
    // and flushed strictly after the data fence. Simulate by
    // crashing mid-commit: run the data part only, crash, and check
    // the marker still reads the previous value.
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    for (int i = 0; i < 8; ++i)
        env.st(&f.data[i], 1.0);
    std::vector<std::pair<const void *, std::size_t>> ranges;
    ranges.emplace_back(f.data, 8 * sizeof(double));
    // Data part, manually.
    for (const auto &[p, bytes] : ranges)
        flushRange(env, p, bytes);
    env.sfence();
    // Crash before the marker store.
    f.machine.loseVolatileState();
    f.arena.crashRestore();
    EXPECT_EQ(f.markers.value(0), ProgressMarkers::none);
    EXPECT_DOUBLE_EQ(f.data[0], 1.0);  // data did persist
}

TEST(EagerCommit, TwoFencesPerRegion)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    env.st(&f.data[0], 3.0);
    std::vector<std::pair<const void *, std::size_t>> ranges;
    ranges.emplace_back(f.data, sizeof(double));
    const auto fences = f.machine.machineStats().fences.value();
    eagerCommitRegion(env, ranges, f.markers, 0, 7);
    EXPECT_EQ(f.machine.machineStats().fences.value(), fences + 2);
}

TEST(EagerCommit, MonotonicMarkersPerThread)
{
    Fixture f;
    for (int t = 0; t < 4; ++t) {
        SimEnv env(f.machine, f.arena, t);
        std::vector<std::pair<const void *, std::size_t>> ranges;
        ranges.emplace_back(&f.data[t * 8], 8 * sizeof(double));
        for (std::uint64_t r = 0; r < 3; ++r) {
            env.st(&f.data[t * 8], static_cast<double>(r));
            eagerCommitRegion(env, ranges, f.markers, t, r);
            EXPECT_EQ(f.markers.value(t), r);
        }
    }
}

} // namespace
} // namespace lp::ep
