/**
 * @file
 * Unit and property tests for lp::store::KvStore: map semantics and
 * read-your-writes on every backend, golden-map equivalence after a
 * checkpoint, the SimEnv/NativeEnv identical-code guarantee, clean
 * recovery after a checkpoint, recovery idempotence (including a
 * crash injected *during* recovery), the YCSB generators, and the
 * table occupancy guard.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "kernels/env.hh"
#include "kernels/workload.hh"
#include "store/driver.hh"
#include "store/kv_store.hh"
#include "store/ycsb.hh"

namespace lp::store
{
namespace
{

sim::MachineConfig
smallMachine()
{
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    cfg.l1 = {8 * 1024, 4, 2};
    cfg.l2 = {32 * 1024, 8, 11};  // small: force real evictions
    return cfg;
}

StoreConfig
smallConfig()
{
    StoreConfig cfg;
    cfg.capacity = 1024;
    cfg.shards = 2;
    cfg.batchOps = 8;
    cfg.foldBatches = 8;
    return cfg;
}

const Backend kBackends[] = {Backend::Lp, Backend::EagerPerOp,
                             Backend::Wal};

class StoreBackends : public ::testing::TestWithParam<Backend>
{
};

TEST_P(StoreBackends, PutGetDelSemantics)
{
    const StoreConfig scfg = smallConfig();
    kernels::SimContext ctx(smallMachine(), storeArenaBytes(scfg));
    KvStore<kernels::SimEnv> store(ctx.arena, scfg, GetParam());
    ctx.arena.persistAll();
    kernels::SimEnv env(ctx.machine, ctx.arena, 0);

    EXPECT_EQ(store.get(env, 42), std::nullopt);
    store.put(env, 42, 1);
    store.put(env, 99, 2);
    // Read-your-writes before any batch commits.
    EXPECT_EQ(store.get(env, 42), std::optional<std::uint64_t>(1));
    store.put(env, 42, 3);  // overwrite
    EXPECT_EQ(store.get(env, 42), std::optional<std::uint64_t>(3));
    store.del(env, 99);
    EXPECT_EQ(store.get(env, 99), std::nullopt);
    store.del(env, 12345);  // deleting an absent key is a no-op

    store.checkpoint(env);
    EXPECT_EQ(store.get(env, 42), std::optional<std::uint64_t>(3));
    EXPECT_EQ(store.get(env, 99), std::nullopt);
    EXPECT_EQ(store.liveKeys(), 1u);
}

TEST_P(StoreBackends, SnapshotMatchesGoldenAfterCheckpoint)
{
    const StoreConfig scfg = smallConfig();
    kernels::SimContext ctx(smallMachine(), storeArenaBytes(scfg));
    KvStore<kernels::SimEnv> store(ctx.arena, scfg, GetParam());
    ctx.arena.persistAll();
    kernels::SimEnv env(ctx.machine, ctx.arena, 0);

    std::map<std::uint64_t, std::uint64_t> golden;
    Rng rng(99);
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t key = keyOfRecord(rng.below(400), 5);
        if (rng.chance(0.25)) {
            store.del(env, key);
            golden.erase(key);
        } else {
            store.put(env, key, i);
            golden[key] = i;
        }
    }
    store.checkpoint(env);
    EXPECT_EQ(store.snapshot(), golden);
    for (const auto &[k, v] : golden)
        EXPECT_EQ(store.get(env, k), std::optional<std::uint64_t>(v));
}

/**
 * The identical templated code must run under NativeEnv and produce
 * the same logical map as the simulated run.
 */
TEST_P(StoreBackends, NativeEnvRunsIdenticalCode)
{
    const StoreConfig scfg = smallConfig();

    kernels::SimContext ctx(smallMachine(), storeArenaBytes(scfg));
    KvStore<kernels::SimEnv> simStore(ctx.arena, scfg, GetParam());
    ctx.arena.persistAll();
    kernels::SimEnv simEnv(ctx.machine, ctx.arena, 0);

    pmem::PersistentArena nativeArena(storeArenaBytes(scfg));
    KvStore<kernels::NativeEnv> natStore(nativeArena, scfg, GetParam());
    nativeArena.persistAll();
    kernels::NativeEnv natEnv;

    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t key = keyOfRecord(rng.below(300), 11);
        if (rng.chance(0.2)) {
            simStore.del(simEnv, key);
            natStore.del(natEnv, key);
        } else {
            simStore.put(simEnv, key, i);
            natStore.put(natEnv, key, i);
        }
    }
    simStore.checkpoint(simEnv);
    natStore.checkpoint(natEnv);
    EXPECT_EQ(simStore.snapshot(), natStore.snapshot());
}

TEST_P(StoreBackends, NativeDriverVerifies)
{
    YcsbParams p;
    p.records = 512;
    p.ops = 2048;
    const auto out = runStoreNative(GetParam(), smallConfig(), p);
    EXPECT_TRUE(out.verified);
    EXPECT_EQ(out.reads + out.mutations, p.ops);
}

/**
 * After a checkpoint every committed op is durable: a crash right
 * after it must recover to the identical map with nothing to replay.
 */
TEST_P(StoreBackends, RecoverAfterCheckpointFindsNothing)
{
    const StoreConfig scfg = smallConfig();
    kernels::SimContext ctx(smallMachine(), storeArenaBytes(scfg));
    KvStore<kernels::SimEnv> store(ctx.arena, scfg, GetParam());
    ctx.arena.persistAll();
    kernels::SimEnv env(ctx.machine, ctx.arena, 0);

    Rng rng(3);
    for (int i = 0; i < 1500; ++i)
        store.put(env, keyOfRecord(rng.below(200), 1), i);
    store.checkpoint(env);
    const auto before = store.snapshot();

    ctx.machine.loseVolatileState();
    ctx.arena.crashRestore();
    const RecoveryReport rep = store.recover(env);
    EXPECT_EQ(rep.batchesReplayed, 0u);
    EXPECT_EQ(rep.entriesReplayed, 0u);
    EXPECT_FALSE(rep.walUndone);
    EXPECT_EQ(store.snapshot(), before);

    // And the recovered store keeps working.
    store.put(env, keyOfRecord(0, 1), 0xabc);
    store.checkpoint(env);
    EXPECT_EQ(store.get(env, keyOfRecord(0, 1)),
              std::optional<std::uint64_t>(0xabc));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StoreBackends,
                         ::testing::ValuesIn(kBackends),
                         [](const auto &info) {
                             return backendName(info.param);
                         });

/**
 * Recovery must be idempotent: running it again on the repaired image
 * finds nothing further and changes nothing.
 */
TEST(StoreRecovery, RecoverTwiceIsIdempotent)
{
    const StoreConfig scfg = smallConfig();
    kernels::SimContext ctx(smallMachine(), storeArenaBytes(scfg));
    KvStore<kernels::SimEnv> store(ctx.arena, scfg, Backend::Lp);
    ctx.arena.persistAll();
    kernels::SimEnv env(ctx.machine, ctx.arena, 0,
                        &ctx.crash);

    ctx.crash.armAfterStores(2500);
    Rng rng(17);
    bool crashed = false;
    try {
        for (int i = 0; i < 4000; ++i)
            store.put(env, keyOfRecord(rng.below(300), 2), i);
        store.checkpoint(env);
        ctx.crash.disarm();
    } catch (const pmem::CrashException &) {
        crashed = true;
        ctx.crash.disarm();
        ctx.sched.clear();
        ctx.machine.loseVolatileState();
        ctx.arena.crashRestore();
    }
    ASSERT_TRUE(crashed);

    const RecoveryReport first = store.recover(env);
    const auto afterFirst = store.snapshot();

    // Recovery repaired with Eager Persistency, so a second crash
    // restore keeps its work; running recovery again is a no-op.
    ctx.machine.loseVolatileState();
    ctx.arena.crashRestore();
    const RecoveryReport second = store.recover(env);
    EXPECT_EQ(second.batchesReplayed, 0u);
    EXPECT_EQ(second.entriesReplayed, 0u);
    EXPECT_EQ(second.committedEpochs, first.committedEpochs);
    EXPECT_EQ(store.snapshot(), afterFirst);
}

/**
 * A crash *during* recovery must be recoverable by simply running
 * recovery again (Section III-E: recovery uses Eager Persistency and
 * replay converges thanks to the single-copy probe invariant).
 */
TEST(StoreRecovery, CrashDuringRecoveryIsRecoverable)
{
    const StoreConfig scfg = smallConfig();
    kernels::SimContext ctx(smallMachine(), storeArenaBytes(scfg));
    KvStore<kernels::SimEnv> store(ctx.arena, scfg, Backend::Lp);
    ctx.arena.persistAll();
    kernels::SimEnv env(ctx.machine, ctx.arena, 0, &ctx.crash);

    // Deterministic op stream, recorded with predicted epochs so the
    // golden cut at any watermark is reproducible.
    struct OpRec
    {
        int shard;
        std::uint64_t epoch;
        std::uint64_t key;
        std::uint64_t value;
    };
    std::vector<OpRec> issued;
    std::vector<std::uint64_t> shardMuts(scfg.shards, 0);
    Rng rng(23);

    ctx.crash.armAfterStores(3000);
    bool crashed = false;
    try {
        for (int i = 0; i < 4000; ++i) {
            const std::uint64_t key = keyOfRecord(rng.below(300), 4);
            const int sh = store.shardOf(key);
            const std::uint64_t epoch =
                shardMuts[sh] / std::uint64_t(scfg.batchOps) + 1;
            ++shardMuts[sh];
            issued.push_back(
                OpRec{sh, epoch, key, std::uint64_t(i)});
            store.put(env, key, std::uint64_t(i));
        }
        store.checkpoint(env);
        ctx.crash.disarm();
    } catch (const pmem::CrashException &) {
        crashed = true;
        ctx.crash.disarm();
        ctx.sched.clear();
        ctx.machine.loseVolatileState();
        ctx.arena.crashRestore();
    }
    ASSERT_TRUE(crashed);

    // Crash again partway through recovery itself.
    ctx.crash.armAfterStores(40);
    bool recoveryCrashed = false;
    try {
        store.recover(env);
        ctx.crash.disarm();
    } catch (const pmem::CrashException &) {
        recoveryCrashed = true;
        ctx.crash.disarm();
        ctx.sched.clear();
        ctx.machine.loseVolatileState();
        ctx.arena.crashRestore();
    }

    const RecoveryReport rep = store.recover(env);
    (void)recoveryCrashed;  // may or may not fire; both must verify

    std::map<std::uint64_t, std::uint64_t> golden;
    for (const OpRec &r : issued)
        if (r.epoch <= rep.committedEpochs[r.shard])
            golden[r.key] = r.value;
    EXPECT_EQ(store.snapshot(), golden);
}

TEST(StoreYcsb, KeyOfRecordIsInjective)
{
    std::unordered_map<std::uint64_t, std::size_t> seen;
    for (std::size_t id = 0; id < 10000; ++id) {
        const std::uint64_t k = keyOfRecord(id, 42);
        EXPECT_LE(k, maxUserKey);
        const auto [it, fresh] = seen.emplace(k, id);
        EXPECT_TRUE(fresh) << "collision between " << it->second
                           << " and " << id;
    }
}

TEST(StoreYcsb, ZipfianIsBoundedAndSkewed)
{
    ZipfianGen zipf(1000, 0.99);
    Rng rng(5);
    std::vector<std::uint64_t> counts(1000, 0);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t v = zipf.next(rng);
        ASSERT_LT(v, 1000u);
        ++counts[v];
    }
    // Rank 0 must dwarf the uniform expectation (50 per item).
    EXPECT_GT(counts[0], 2000u);
}

TEST(StoreYcsb, MixReadFractions)
{
    EXPECT_DOUBLE_EQ(readFraction(YcsbMix::A), 0.5);
    EXPECT_DOUBLE_EQ(readFraction(YcsbMix::B), 0.95);
    EXPECT_DOUBLE_EQ(readFraction(YcsbMix::C), 1.0);
    EXPECT_EQ(parseMix("a"), YcsbMix::A);
    EXPECT_EQ(parseMix("B"), YcsbMix::B);
}

TEST(StoreConfigTest, ParseBackendRoundTrips)
{
    for (Backend b : kBackends)
        EXPECT_EQ(parseBackend(backendName(b)), b);
}

TEST(StoreDeathTest, OverCapacityIsFatal)
{
    StoreConfig scfg;
    scfg.capacity = 8;  // floor-clamped to 64 slots; limit 7/8 = 56
    scfg.shards = 1;
    ASSERT_DEATH(
        {
            pmem::PersistentArena arena(storeArenaBytes(scfg));
            KvStore<kernels::NativeEnv> store(arena, scfg,
                                              Backend::EagerPerOp);
            arena.persistAll();
            kernels::NativeEnv env;
            for (std::uint64_t k = 1; k <= 60; ++k)
                store.put(env, k * 1000, k);
        },
        "load-factor");
}

} // namespace
} // namespace lp::store
