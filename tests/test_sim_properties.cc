/**
 * @file
 * Simulator sanity properties, checked as parameterized sweeps:
 * monotonicity in NVMM latency, cache-size effects, scheme ordering
 * invariants, and determinism. These pin down relations every
 * experiment implicitly relies on.
 */

#include <gtest/gtest.h>

#include "kernels/harness.hh"
#include "pmem/arena.hh"

namespace lp::kernels
{
namespace
{

sim::MachineConfig
machineWith(unsigned l2_kb, double read_ns, double write_ns)
{
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    cfg.l1 = {4 * 1024, 4, 2};
    cfg.l2 = {l2_kb * 1024, 8, 11};
    cfg.nvmmReadNs = read_ns;
    cfg.nvmmWriteNs = write_ns;
    return cfg;
}

KernelParams
tmm32()
{
    KernelParams p;
    p.n = 32;
    p.bsize = 8;
    p.threads = 4;
    return p;
}

TEST(SimProperties, ExecTimeMonotonicInNvmmReadLatency)
{
    double prev = 0.0;
    for (double ns : {60.0, 100.0, 150.0, 300.0}) {
        const auto out = runScheme(KernelId::Tmm, Scheme::Base,
                                   tmm32(),
                                   machineWith(16, ns, 2 * ns));
        EXPECT_GE(out.execCycles, prev) << ns;
        prev = out.execCycles;
    }
}

TEST(SimProperties, WriteCountInvariantToNvmmLatencySingleThread)
{
    // With one thread the access stream is latency-independent, so
    // latency changes timing but never which blocks get written.
    // (Multi-threaded runs legitimately differ slightly: per-core
    // latency shifts the min-clock interleaving and thus shared-L2
    // contents.)
    KernelParams p = tmm32();
    p.threads = 1;
    const auto slow = runScheme(KernelId::Tmm, Scheme::Base, p,
                                machineWith(16, 300, 600));
    const auto fast = runScheme(KernelId::Tmm, Scheme::Base, p,
                                machineWith(16, 60, 150));
    EXPECT_DOUBLE_EQ(slow.nvmmWrites, fast.nvmmWrites);
    EXPECT_DOUBLE_EQ(slow.stat("l2_misses"), fast.stat("l2_misses"));
}

TEST(SimProperties, BiggerL2NeverMissesMore)
{
    double prev_misses = -1.0;
    for (unsigned kb : {8u, 16u, 32u, 64u, 128u}) {
        const auto out = runScheme(KernelId::Tmm, Scheme::Base,
                                   tmm32(),
                                   machineWith(kb, 150, 300));
        if (prev_misses >= 0.0)
            EXPECT_LE(out.stat("l2_misses"), prev_misses) << kb;
        prev_misses = out.stat("l2_misses");
    }
}

TEST(SimProperties, BiggerL2NeverWritesMoreUnderLazySchemes)
{
    for (Scheme scheme : {Scheme::Base, Scheme::Lp}) {
        double prev = -1.0;
        for (unsigned kb : {8u, 32u, 128u}) {
            const auto out = runScheme(KernelId::Tmm, scheme, tmm32(),
                                       machineWith(kb, 150, 300));
            if (prev >= 0.0)
                EXPECT_LE(out.nvmmWrites, prev)
                    << schemeName(scheme) << " " << kb;
            prev = out.nvmmWrites;
        }
    }
}

TEST(SimProperties, LpNeverBeatsBaseOnInstructionCount)
{
    // LP adds checksum work; its compute-op count must exceed base.
    const auto base = runScheme(KernelId::Tmm, Scheme::Base, tmm32(),
                                machineWith(16, 150, 300));
    const auto lp = runScheme(KernelId::Tmm, Scheme::Lp, tmm32(),
                              machineWith(16, 150, 300));
    EXPECT_GT(lp.stat("compute_ops"), base.stat("compute_ops"));
    EXPECT_GT(lp.stat("stores"), base.stat("stores"));
}

TEST(SimProperties, SchemeFlushFenceContract)
{
    const auto cfg = machineWith(16, 150, 300);
    const auto base = runScheme(KernelId::Tmm, Scheme::Base, tmm32(),
                                cfg);
    const auto lp = runScheme(KernelId::Tmm, Scheme::Lp, tmm32(),
                              cfg);
    const auto ep = runScheme(KernelId::Tmm, Scheme::EagerRecompute,
                              tmm32(), cfg);
    const auto wal = runScheme(KernelId::Tmm, Scheme::Wal, tmm32(),
                               cfg);
    EXPECT_EQ(base.stat("flush_instrs"), 0.0);
    EXPECT_EQ(lp.stat("flush_instrs"), 0.0);
    EXPECT_GT(ep.stat("flush_instrs"), 0.0);
    // WAL flushes log + data: strictly more flushes than EP, and
    // exactly 4 fences per region vs EP's 2.
    EXPECT_GT(wal.stat("flush_instrs"), ep.stat("flush_instrs"));
    EXPECT_DOUBLE_EQ(wal.stat("fences"), 2.0 * ep.stat("fences"));
}

TEST(SimProperties, CleanerOnlyAddsWrites)
{
    sim::MachineConfig with = machineWith(64, 150, 300);
    with.cleanerPeriodCycles = 5000;
    const auto clean = runScheme(KernelId::Tmm, Scheme::Lp, tmm32(),
                                 with);
    const auto lazy = runScheme(KernelId::Tmm, Scheme::Lp, tmm32(),
                                machineWith(64, 150, 300));
    EXPECT_GE(clean.nvmmWrites, lazy.nvmmWrites);
    EXPECT_GE(clean.stat("cleaner_writes"), 1.0);
    EXPECT_TRUE(clean.verified);
}

TEST(SimProperties, DecayCleanerWritesNoMoreThanFullSweep)
{
    sim::MachineConfig sweep = machineWith(64, 150, 300);
    sweep.cleanerPeriodCycles = 5000;
    sim::MachineConfig decay = sweep;
    decay.cleanerDecayCycles = 50000;
    const auto full = runScheme(KernelId::Tmm, Scheme::Lp, tmm32(),
                                sweep);
    const auto aged = runScheme(KernelId::Tmm, Scheme::Lp, tmm32(),
                                decay);
    EXPECT_LE(aged.stat("cleaner_writes"),
              full.stat("cleaner_writes"));
    EXPECT_TRUE(aged.verified);
}

TEST(SimProperties, ThreadCountPreservesWorkCounts)
{
    KernelParams p1 = tmm32();
    p1.threads = 1;
    KernelParams p4 = tmm32();
    p4.threads = 4;
    const auto one = runScheme(KernelId::Tmm, Scheme::Lp, p1,
                               machineWith(32, 150, 300));
    const auto four = runScheme(KernelId::Tmm, Scheme::Lp, p4,
                                machineWith(32, 150, 300));
    EXPECT_DOUBLE_EQ(one.stat("stores"), four.stat("stores"));
    EXPECT_DOUBLE_EQ(one.stat("compute_ops"),
                     four.stat("compute_ops"));
}

TEST(SimProperties, WearTrackingCountsPerBlockWrites)
{
    // The wear summary must reconcile with the write counter, and
    // eager flushing of one hot block must show as a hot spot.
    pmem::PersistentArena arena(1 << 16);
    sim::Machine m(machineWith(16, 150, 300), &arena);
    double *hot = arena.alloc<double>(1);
    double *cold = arena.alloc<double>(8);
    for (int i = 0; i < 10; ++i) {
        *hot = i;
        m.write(0, arena.addrOf(hot), 8);
        m.clflushopt(0, arena.addrOf(hot));
        m.sfence(0);
    }
    m.write(0, arena.addrOf(cold), 8);
    m.clflushopt(0, arena.addrOf(cold));
    m.sfence(0);

    const auto wear = m.wearSummary();
    EXPECT_EQ(wear.blocksWritten, 2u);
    EXPECT_EQ(wear.totalWrites, 11u);
    EXPECT_EQ(wear.maxBlockWrites, 10u);
    EXPECT_GT(wear.hotSpotFactor, 1.5);
    EXPECT_EQ(wear.totalWrites,
              m.machineStats().nvmmWrites.value());
}

TEST(SimProperties, LazySchemesWearMoreEvenlyThanWal)
{
    // WAL rewrites its log and status blocks every transaction: its
    // wear hot spot must exceed LP's.
    const auto cfg = machineWith(16, 150, 300);
    const auto lp = runScheme(KernelId::Tmm, Scheme::Lp, tmm32(),
                              cfg);
    const auto wal = runScheme(KernelId::Tmm, Scheme::Wal, tmm32(),
                               cfg);
    EXPECT_GT(wal.stat("wear_max_block_writes"),
              lp.stat("wear_max_block_writes"));
    EXPECT_GT(wal.stat("wear_hot_spot_factor"),
              lp.stat("wear_hot_spot_factor"));
}

class LatencySweepAllKernels
    : public ::testing::TestWithParam<KernelId>
{
};

TEST_P(LatencySweepAllKernels, LpOverheadBoundedAcrossLatencies)
{
    // The Figure 14(a) claim as a property: LP's relative overhead
    // stays modest at every NVMM latency point.
    const KernelId id = GetParam();
    KernelParams p;
    p.threads = 4;
    if (id == KernelId::Fft) {
        p.n = 128;
    } else {
        p.n = 32;
        p.bsize = 8;
    }
    for (double ns : {60.0, 150.0}) {
        const auto cfg = machineWith(16, ns, 2 * ns);
        const auto base = runScheme(id, Scheme::Base, p, cfg);
        const auto lp = runScheme(id, Scheme::Lp, p, cfg);
        EXPECT_LT(lp.execCycles / base.execCycles, 1.25)
            << kernelName(id) << " @ " << ns << "ns";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, LatencySweepAllKernels,
    ::testing::Values(KernelId::Tmm, KernelId::Cholesky,
                      KernelId::Conv2d, KernelId::Gauss,
                      KernelId::Fft, KernelId::Spmv),
    [](const ::testing::TestParamInfo<KernelId> &info) {
        std::string n = kernelName(info.param);
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

} // namespace
} // namespace lp::kernels
