/**
 * @file
 * Cross-product crash/recovery property sweep: every kernel under
 * every checksum kind and several thread counts must recover a
 * mid-run power failure to the golden result. This is the widest
 * correctness net in the suite -- it exercises the interaction of
 * region traversal order (Adler-32 is order-sensitive), per-kernel
 * recovery procedures, and the scheduler's thread interleaving.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "kernels/harness.hh"

namespace lp::kernels
{
namespace
{

sim::MachineConfig
machineFor(int threads)
{
    sim::MachineConfig cfg;
    cfg.numCores = threads;
    cfg.l1 = {8 * 1024, 4, 2};
    cfg.l2 = {32 * 1024, 8, 11};  // small: force real evictions
    return cfg;
}

KernelParams
paramsFor(KernelId id, int threads, core::ChecksumKind kind)
{
    KernelParams p;
    p.threads = threads;
    p.checksum = kind;
    switch (id) {
      case KernelId::Fft:
        p.n = 128;
        break;
      default:
        p.n = 32;
        p.bsize = 8;
        break;
    }
    return p;
}

using Combo = std::tuple<KernelId, core::ChecksumKind, int>;

class CrashMatrix : public ::testing::TestWithParam<Combo>
{
};

TEST_P(CrashMatrix, MidRunCrashRecovers)
{
    auto [kernel, kind, threads] = GetParam();
    const auto cfg = machineFor(threads);
    const auto p = paramsFor(kernel, threads, kind);

    const auto full = runScheme(kernel, Scheme::Lp, p, cfg);
    ASSERT_TRUE(full.verified);
    const auto total =
        static_cast<std::uint64_t>(full.stat("stores"));

    const auto out = runLpWithCrash(kernel, p, cfg, total / 2);
    EXPECT_TRUE(out.crashed);
    EXPECT_TRUE(out.verified)
        << kernelName(kernel) << "/"
        << core::checksumKindName(kind) << "/" << threads
        << " threads: err " << out.maxAbsError;
}

std::string
comboName(const ::testing::TestParamInfo<Combo> &info)
{
    auto [kernel, kind, threads] = info.param;
    std::string n = kernelName(kernel) + "_" +
                    core::checksumKindName(kind) + "_t" +
                    std::to_string(threads);
    for (auto &ch : n)
        if (ch == '-' || ch == '+')
            ch = '_';
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    KindSweep, CrashMatrix,
    ::testing::Combine(
        ::testing::Values(KernelId::Tmm, KernelId::Cholesky,
                          KernelId::Conv2d, KernelId::Gauss,
                          KernelId::Fft),
        ::testing::Values(core::ChecksumKind::Parity,
                          core::ChecksumKind::Modular,
                          core::ChecksumKind::Adler32,
                          core::ChecksumKind::ModularParity),
        ::testing::Values(4)),
    comboName);

INSTANTIATE_TEST_SUITE_P(
    ThreadSweep, CrashMatrix,
    ::testing::Combine(
        ::testing::Values(KernelId::Tmm, KernelId::Cholesky,
                          KernelId::Conv2d, KernelId::Gauss,
                          KernelId::Fft),
        ::testing::Values(core::ChecksumKind::Modular),
        ::testing::Values(1, 2, 3)),
    comboName);

} // namespace
} // namespace lp::kernels
