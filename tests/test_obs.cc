/**
 * @file
 * Unit tests for the lp::obs observability primitives: the log-linear
 * latency histogram (record/merge/percentile error bound, overflow
 * bucket, allocation-free record path), the SPSC trace ring
 * (wraparound drop accounting, concurrent producer/drainer), the
 * Chrome trace-event writer, and the Prometheus exposition
 * builder/parser round trip.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

// ---------------------------------------------------------------------
// Counting global allocator: the spec for the histogram/trace record
// paths is "no allocation"; these overrides let tests assert that
// directly instead of trusting the implementation comments.
// ---------------------------------------------------------------------

namespace
{
std::atomic<std::size_t> g_allocCount{0};
}

// GCC pattern-matches free() inside replacement deletes against the
// replacement new and reports a mismatch it can't actually see into.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace lp::obs
{
namespace
{

/** Deterministic 64-bit mix (splitmix64) for reproducible samples. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

TEST(Histogram, ExactInLinearRegion)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 64; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 64u);
    for (std::uint64_t v = 0; v < 64; ++v)
        EXPECT_EQ(h.bucketCount(std::size_t(v)), 1u);
    // Midpoint reconstruction in the linear region is v + 0.5.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.5);
}

TEST(Histogram, BucketBoundsTileTheRange)
{
    // Every bucket's range must start exactly where the previous one
    // ended, the last bucket must end at maxTrackable()+1, and a value
    // recorded at a bucket's lower edge must land in that bucket.
    for (std::size_t i = 1; i < Histogram::kBuckets; ++i) {
        ASSERT_EQ(Histogram::bucketLower(i),
                  Histogram::bucketLower(i - 1) +
                      Histogram::bucketWidth(i - 1))
            << "gap/overlap at bucket " << i;
    }
    const std::size_t last = Histogram::kBuckets - 1;
    EXPECT_EQ(Histogram::bucketLower(last) + Histogram::bucketWidth(last),
              Histogram::maxTrackable() + 1);
    for (std::size_t i = 0; i < Histogram::kBuckets; i += 37) {
        Histogram h;
        h.record(Histogram::bucketLower(i));
        EXPECT_EQ(h.bucketCount(i), 1u) << "bucket " << i;
    }
}

TEST(Histogram, PercentileWithinRelativeErrorBound)
{
    // Property test: log-uniform samples over [2^7, 2^41); every
    // reported percentile must reconstruct the exact nearest-rank
    // sample within the documented 2.5% relative error budget (the
    // octave layout's worst case is 1/64 = 1.5625%). Samples stay
    // above the linear region, where "relative" error is the claim;
    // sub-64ns values are exact-bucketed instead.
    Histogram h;
    std::vector<std::uint64_t> samples;
    const std::size_t n = 20000;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t r = mix64(i);
        const int bits = 7 + int(r % 34);
        const std::uint64_t v =
            (std::uint64_t(1) << bits) | (mix64(r) >> (64 - bits));
        samples.push_back(v);
        h.record(v);
    }
    std::sort(samples.begin(), samples.end());
    for (const double p :
         {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999}) {
        // Same nearest-rank formula percentile() uses.
        std::uint64_t target =
            static_cast<std::uint64_t>(p * double(n) + 0.5);
        target =
            std::max<std::uint64_t>(1, std::min<std::uint64_t>(target, n));
        const double exact = double(samples[target - 1]);
        const double est = h.percentile(p);
        EXPECT_LE(std::abs(est - exact) / exact, 0.025)
            << "p=" << p << " exact=" << exact << " est=" << est;
    }
}

TEST(Histogram, MergeEqualsRecordingEverythingInOne)
{
    Histogram a, b, all;
    for (std::size_t i = 0; i < 5000; ++i) {
        const std::uint64_t v = mix64(i) % (1u << 20);
        (i % 2 ? a : b).record(v);
        all.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.sum(), all.sum());
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i)
        ASSERT_EQ(a.bucketCount(i), all.bucketCount(i)) << "bucket " << i;
    EXPECT_DOUBLE_EQ(a.percentile(0.99), all.percentile(0.99));
}

TEST(Histogram, OverflowBucket)
{
    Histogram h;
    h.record(Histogram::maxTrackable());     // still tracked
    h.record(Histogram::maxTrackable() + 1); // overflow
    h.record(~std::uint64_t(0));             // overflow
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.overflow(), 2u);
    // A percentile that lands in the overflow saturates at the
    // trackable maximum rather than inventing a value.
    EXPECT_DOUBLE_EQ(h.percentile(0.999),
                     double(Histogram::maxTrackable()));
}

TEST(Histogram, RecordPathDoesNotAllocate)
{
    Histogram h;
    const std::size_t before = g_allocCount.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < 10000; ++i)
        h.record(i * 1337);
    {
        ScopedTimer t(h);
    }
    {
        ScopedTimer t(static_cast<Histogram *>(nullptr));
    }
    const std::size_t after = g_allocCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
    EXPECT_EQ(h.count(), 10001u);
}

TEST(TraceRing, CapacityRoundsUpAndWraparoundCountsDrops)
{
    TraceRing ring(10); // rounds up to 16
    EXPECT_EQ(ring.capacity(), 16u);
    for (std::uint64_t i = 0; i < 20; ++i)
        ring.push(TraceEvent{"e", 0, i, 0, i});
    EXPECT_EQ(ring.dropped(), 4u);
    TraceEvent e;
    std::uint64_t popped = 0;
    while (ring.pop(e)) {
        EXPECT_EQ(e.arg, popped); // oldest events survive, in order
        ++popped;
    }
    EXPECT_EQ(popped, 16u);
    // Space freed by the drain is usable again.
    EXPECT_TRUE(ring.push(TraceEvent{"e", 0, 99, 0, 99}));
    EXPECT_EQ(ring.dropped(), 4u);
}

TEST(TraceRing, PushPathDoesNotAllocate)
{
    TraceRing ring(64);
    const std::size_t before = g_allocCount.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        TraceEvent e;
        ring.pop(e);
        ring.push(TraceEvent{"hot", 1, i, 2, i});
        traceInstant(&ring, "instant", i);
        Span span(&ring, "span", i);
    }
    const std::size_t after = g_allocCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
}

TEST(TraceRing, ConcurrentProducerDrainerConservesEvents)
{
    TraceRing ring(128);
    constexpr std::uint64_t kPushes = 200000;
    std::atomic<bool> done{false};
    std::uint64_t drained = 0;
    std::uint64_t lastArg = 0;
    bool ordered = true;

    std::thread consumer([&] {
        TraceEvent e;
        for (;;) {
            if (ring.pop(e)) {
                ++drained;
                if (e.arg <= lastArg)
                    ordered = false; // FIFO must never reorder
                lastArg = e.arg;
            } else if (done.load(std::memory_order_acquire)) {
                while (ring.pop(e)) {
                    ++drained;
                    if (e.arg <= lastArg)
                        ordered = false;
                    lastArg = e.arg;
                }
                break;
            }
        }
    });
    for (std::uint64_t i = 1; i <= kPushes; ++i)
        ring.push(TraceEvent{"p", 0, i, 0, i});
    done.store(true, std::memory_order_release);
    consumer.join();

    EXPECT_TRUE(ordered);
    EXPECT_EQ(drained + ring.dropped(), kPushes);
    EXPECT_GT(drained, 0u);
}

TEST(TraceCollector, WritesChromeTraceJson)
{
    TraceCollector tc;
    TraceRing *r0 = tc.ring("shard-0", 0, 64);
    TraceRing *r1 = tc.ring("acceptor", 1000, 64);
    // Explicit durations: a Span around trivial work can legally
    // round to 0ns and degrade to an instant event.
    r0->push(TraceEvent{"epoch_commit", r0->tid(), nowNs(), 5000, 7});
    traceInstant(r1, "crash", 42);

    char path[] = "/tmp/lp-obs-trace-XXXXXX";
    const int fd = mkstemp(path);
    ASSERT_GE(fd, 0);
    ::close(fd);
    ASSERT_TRUE(tc.writeChromeTrace(path));

    std::FILE *f = std::fopen(path, "r");
    ASSERT_NE(f, nullptr);
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    std::remove(path);

    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("thread_name"), std::string::npos);
    EXPECT_NE(text.find("shard-0"), std::string::npos);
    EXPECT_NE(text.find("acceptor"), std::string::npos);
    EXPECT_NE(text.find("\"epoch_commit\""), std::string::npos);
    EXPECT_NE(text.find("\"crash\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"dropped_shard-0\": 0"), std::string::npos);
    EXPECT_EQ(tc.totalDropped(), 0u);
}

/** Pull the `le` series of one `_bucket` metric out of a snapshot. */
std::map<double, double>
bucketSeries(const stats::Snapshot &snap, const std::string &prefix)
{
    std::map<double, double> out;
    for (const auto &[key, v] : snap) {
        if (key.compare(0, prefix.size(), prefix) != 0)
            continue;
        const std::string le =
            key.substr(prefix.size(),
                       key.size() - prefix.size() - 2); // strip `"}`
        out[le == "+Inf" ? std::numeric_limits<double>::infinity()
                         : std::strtod(le.c_str(), nullptr)] = v;
    }
    return out;
}

TEST(Metrics, HistogramExpositionInvariants)
{
    Histogram h;
    for (std::uint64_t i = 0; i < 1000; ++i)
        h.record(100 + (mix64(i) % 100000));
    MetricsText mt;
    mt.histogramNs("lp_commit_lat_seconds", "shard=\"0\"", h);
    const std::string &text = mt.str();
    EXPECT_NE(text.find("# TYPE lp_commit_lat_seconds histogram"),
              std::string::npos);

    stats::Snapshot snap;
    ASSERT_TRUE(parseExposition(text, snap));
    // +Inf bucket == _count == what we recorded.
    EXPECT_DOUBLE_EQ(
        snap.at(
            "lp_commit_lat_seconds_bucket{shard=\"0\",le=\"+Inf\"}"),
        1000.0);
    EXPECT_DOUBLE_EQ(snap.at("lp_commit_lat_seconds_count{shard=\"0\"}"),
                     1000.0);
    // Cumulative buckets are nondecreasing in le order (numeric
    // order -- the snapshot's string order interleaves exponents).
    const auto buckets = bucketSeries(
        snap, "lp_commit_lat_seconds_bucket{shard=\"0\",le=\"");
    ASSERT_GE(buckets.size(), 2u);
    double prev = 0.0;
    for (const auto &[le, cum] : buckets) {
        EXPECT_GE(cum, prev) << "le=" << le;
        prev = cum;
    }
    EXPECT_DOUBLE_EQ(prev, 1000.0);
    // The sum is in seconds: the recorded ns total scaled by 1e-9.
    EXPECT_NEAR(snap.at("lp_commit_lat_seconds_sum{shard=\"0\"}"),
                double(h.sum()) / 1e9, 1e-12 * double(h.sum()));
    // The bucket series reproduces the histogram's own percentile
    // within one octave (le bounds are powers of two in seconds).
    const double q99 = quantileFromBuckets(buckets, 0.99);
    const double direct = h.percentile(0.99) / 1e9;
    EXPECT_GE(q99, direct / 2.0);
    EXPECT_LE(q99, direct * 2.0);
}

TEST(Metrics, CountersGaugesRoundTripAndTypeOnce)
{
    MetricsText mt;
    mt.counter("lp_gets", "shard=\"0\"", 5);
    mt.counter("lp_gets", "shard=\"1\"", 7);
    mt.gauge("lp_queue_depth", "", 3);
    const std::string &text = mt.str();
    // One # TYPE line per metric name, not per sample.
    EXPECT_EQ(text.find("# TYPE lp_gets counter"),
              text.rfind("# TYPE lp_gets counter"));

    stats::Snapshot snap;
    ASSERT_TRUE(parseExposition(text, snap));
    EXPECT_DOUBLE_EQ(snap.at("lp_gets{shard=\"0\"}"), 5.0);
    EXPECT_DOUBLE_EQ(snap.at("lp_gets{shard=\"1\"}"), 7.0);
    EXPECT_DOUBLE_EQ(snap.at("lp_queue_depth"), 3.0);
}

TEST(Metrics, ParseRejectsMalformedLinesButKeepsGoing)
{
    stats::Snapshot snap;
    EXPECT_FALSE(parseExposition("ok 1\nnot-a-sample\nalso 2\n", snap));
    EXPECT_DOUBLE_EQ(snap.at("ok"), 1.0);
    EXPECT_DOUBLE_EQ(snap.at("also"), 2.0);
    EXPECT_FALSE(parseExposition("name notanumber\n", snap));
}

TEST(Histogram, ExemplarOctaveMappingAndMerge)
{
    // Slot 0 is the whole linear-region bucket; octave w maps to
    // slot w - kSubBits - 1; overflow owns the last slot.
    EXPECT_EQ(Histogram::exemplarIndexOf(0), 0u);
    EXPECT_EQ(Histogram::exemplarIndexOf(63), 0u);
    EXPECT_EQ(Histogram::exemplarIndexOf(64), 1u);
    EXPECT_EQ(Histogram::exemplarIndexOf(127), 1u);
    EXPECT_EQ(Histogram::exemplarIndexOf(128), 2u);
    EXPECT_EQ(Histogram::exemplarIndexOf(Histogram::maxTrackable()),
              std::size_t(Histogram::kMaxBit) + 1 -
                  Histogram::kSubBits - 1);
    EXPECT_EQ(Histogram::exemplarIndexOf(Histogram::maxTrackable() + 1),
              Histogram::kExemplars - 1);

    Histogram h;
    EXPECT_EQ(h.exemplar(0), 0u); // zero = none yet
    h.record(1000);
    h.recordExemplar(1000, 0x1111);
    h.recordExemplar(1000, 0x2222); // freshest wins
    EXPECT_EQ(h.exemplar(Histogram::exemplarIndexOf(1000)), 0x2222u);
    EXPECT_EQ(h.exemplar(Histogram::kExemplars), 0u); // OOB is safe

    // merge() adopts the other side's exemplars but never erases a
    // slot the other side left empty.
    Histogram a, b;
    a.recordExemplar(100, 0xaaaa);
    b.recordExemplar(5000, 0xbbbb);
    a.merge(b);
    EXPECT_EQ(a.exemplar(Histogram::exemplarIndexOf(100)), 0xaaaau);
    EXPECT_EQ(a.exemplar(Histogram::exemplarIndexOf(5000)), 0xbbbbu);
}

TEST(Histogram, ExemplarNeverTearsUnderConcurrentScrape)
{
    // The exemplar is a single atomic word precisely so a scrape
    // racing the writer reads one of the stored ids, never a splice
    // of two. Hammer one slot with two distinguishable ids and
    // assert every concurrent read is one of them.
    Histogram h;
    constexpr std::uint64_t idA = 0x1111111111111111ull;
    constexpr std::uint64_t idB = 0x2222222222222222ull;
    const std::size_t slot = Histogram::exemplarIndexOf(1000);
    std::atomic<bool> stop{false};
    std::atomic<bool> torn{false};
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::uint64_t v = h.exemplar(slot);
            if (v != 0 && v != idA && v != idB)
                torn.store(true, std::memory_order_relaxed);
        }
    });
    for (int i = 0; i < 200000; ++i)
        h.recordExemplar(1000, (i & 1) ? idA : idB);
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    EXPECT_FALSE(torn.load());
}

TEST(Histogram, ExemplarPathDoesNotAllocate)
{
    Histogram h;
    const std::size_t before =
        g_allocCount.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < 10000; ++i) {
        h.recordExemplar(i * 777, i | 1);
        (void)h.exemplar(Histogram::exemplarIndexOf(i * 777));
    }
    const std::size_t after =
        g_allocCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before);
}

TEST(Metrics, HistogramExpositionCarriesExemplars)
{
    // v=1000ns lives in octave [512, 1024): bound le=1.024e-06 s,
    // reconstructed exemplar value = octave midpoint 768ns.
    Histogram h;
    h.record(1000);
    h.recordExemplar(1000, 0xabcdef0123456789ull);
    MetricsText mt;
    mt.histogramNs("lp_x_seconds", "shard=\"0\"", h);
    const std::string &text = mt.str();
    EXPECT_NE(
        text.find("# {trace_id=\"abcdef0123456789\"} 7.68e-07"),
        std::string::npos);
    // Buckets with no exemplar carry no suffix: exactly one
    // exemplar'd line (1000 < 2^10 stops the finite series, and the
    // +Inf slot is empty).
    std::size_t n = 0;
    for (std::size_t at = text.find(" # {");
         at != std::string::npos; at = text.find(" # {", at + 1))
        ++n;
    EXPECT_EQ(n, 1u);
    // The suffix is cosmetic to the parser: values still round-trip.
    stats::Snapshot snap;
    ASSERT_TRUE(parseExposition(text, snap));
    EXPECT_DOUBLE_EQ(
        snap.at("lp_x_seconds_bucket{shard=\"0\",le=\"1.024e-06\"}"),
        1.0);
    EXPECT_DOUBLE_EQ(
        snap.at("lp_x_seconds_bucket{shard=\"0\",le=\"+Inf\"}"), 1.0);
}

TEST(Metrics, OverflowedHistogramQuantileSaturates)
{
    // Regression: a histogram dominated by overflow samples used to
    // end its finite bucket series at whatever octave the tracked
    // samples stopped at, so quantileFromBuckets clamped a p99.9
    // that really lives in the overflow to that small bound (~128ns
    // here). The exposition now closes the finite series at the
    // 2^(kMaxBit+1) bound, matching Histogram::percentile's
    // saturate-at-trackable-max behavior.
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.record(100);
    for (int i = 0; i < 90; ++i)
        h.record(Histogram::maxTrackable() + 1);
    h.recordExemplar(Histogram::maxTrackable() + 1, 0xfeedu);

    MetricsText mt;
    mt.histogramNs("lp_x_seconds", "shard=\"0\"", h);
    stats::Snapshot snap;
    ASSERT_TRUE(parseExposition(mt.str(), snap));
    const auto buckets =
        bucketSeries(snap, "lp_x_seconds_bucket{shard=\"0\",le=\"");
    ASSERT_GE(buckets.size(), 3u); // 1.28e-07, 2^48 * 1e-9, +Inf
    const double satBound =
        double(std::uint64_t(1) << (Histogram::kMaxBit + 1)) * 1e-9;
    // %.10g in the le label rounds the bound's low digits away.
    EXPECT_NEAR(quantileFromBuckets(buckets, 0.999), satBound,
                1e-9 * satBound);
    // The overflow's exemplar rides the +Inf bucket at the trackable
    // max, not on any finite bound.
    EXPECT_NE(mt.str().find("le=\"+Inf\"} 100 # {trace_id=\""
                            "000000000000feed\"}"),
              std::string::npos);
    // And the direct percentile agrees with the scraped one to
    // within the double rounding of the bound.
    EXPECT_NEAR(h.percentile(0.999) / 1e9, satBound, 1e-6 * satBound);
}

TEST(TraceCollector, EmitsFlowArcsForSharedFlowIds)
{
    TraceCollector tc;
    TraceRing *r0 = tc.ring("shard-0", 0, 64);
    TraceRing *r1 = tc.ring("acceptor", 1000, 64);
    // Three spans of request 0x4d hop acceptor -> shard -> acceptor;
    // request 0x63 has a single span and must emit no arc at all (a
    // lone "s" renders as a dangling arrow).
    r1->push(TraceEvent{"parse", 1000, 1000, 100, 1, 0x4d});
    r0->push(TraceEvent{"queue", 0, 2000, 100, 1, 0x4d});
    r1->push(TraceEvent{"ack", 1000, 3000, 100, 1, 0x4d});
    r0->push(TraceEvent{"queue", 0, 4000, 100, 2, 0x63});

    char path[] = "/tmp/lp-obs-flow-XXXXXX";
    const int fd = mkstemp(path);
    ASSERT_GE(fd, 0);
    ::close(fd);
    ASSERT_TRUE(tc.writeChromeTrace(path));
    std::FILE *f = std::fopen(path, "r");
    ASSERT_NE(f, nullptr);
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);
    std::remove(path);

    const auto countOf = [&](const std::string &needle) {
        std::size_t n = 0;
        for (std::size_t at = text.find(needle);
             at != std::string::npos; at = text.find(needle, at + 1))
            ++n;
        return n;
    };
    // One s -> t -> f arc for 0x4d, binding-point "e" on the finish.
    EXPECT_EQ(countOf("\"id\":\"0x4d\""), 3u);
    EXPECT_EQ(countOf("\"ph\":\"s\""), 1u);
    EXPECT_EQ(countOf("\"ph\":\"t\""), 1u);
    EXPECT_EQ(countOf("\"ph\":\"f\""), 1u);
    EXPECT_EQ(countOf("\"bp\":\"e\""), 1u);
    EXPECT_EQ(countOf("\"cat\":\"req\""), 3u);
    EXPECT_EQ(countOf("\"id\":\"0x63\""), 0u);
}

TEST(TraceRing, SinkSeesEveryPushEvenWhenFull)
{
    // The sink tee runs BEFORE the full-check, so a crash-persistent
    // copy attached to the ring keeps wrapping after the volatile
    // ring has started dropping.
    struct CountingSink final : TraceSink
    {
        std::uint64_t seen = 0;
        std::uint64_t lastArg = 0;
        void
        record(const TraceEvent &e) override
        {
            ++seen;
            lastArg = e.arg;
        }
    } sink;
    TraceRing ring(8);
    ring.attachSink(&sink);
    const std::size_t before =
        g_allocCount.load(std::memory_order_relaxed);
    for (std::uint64_t i = 1; i <= 40; ++i)
        ring.push(TraceEvent{"e", 0, i, 0, i});
    const std::size_t after =
        g_allocCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before); // teed push path stays allocation-free
    EXPECT_EQ(sink.seen, 40u);
    EXPECT_EQ(sink.lastArg, 40u);
    EXPECT_EQ(ring.dropped(), 32u);
}

TEST(Metrics, QuantileFromBuckets)
{
    // 100 samples: 50 at <=0.001, 40 more at <=0.01, 10 in +Inf.
    std::map<double, double> b;
    b[0.001] = 50;
    b[0.01] = 90;
    b[std::numeric_limits<double>::infinity()] = 100;
    EXPECT_DOUBLE_EQ(quantileFromBuckets(b, 0.50), 0.001);
    EXPECT_DOUBLE_EQ(quantileFromBuckets(b, 0.90), 0.01);
    // Quantiles past the last finite bound clamp to it.
    EXPECT_DOUBLE_EQ(quantileFromBuckets(b, 0.99), 0.01);
    EXPECT_DOUBLE_EQ(quantileFromBuckets({}, 0.5), 0.0);
}

} // namespace
} // namespace lp::obs
