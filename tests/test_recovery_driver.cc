/**
 * @file
 * Tests for the generic recovery driver's two resume policies, using
 * synthetic stage/region fixtures.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "lp/recovery.hh"

namespace lp::core
{
namespace
{

/** A synthetic world: matches[stage][region] drives the driver. */
struct World
{
    explicit World(std::vector<std::vector<bool>> m)
        : matchGrid(std::move(m))
    {
    }

    RecoveryCallbacks
    callbacks()
    {
        RecoveryCallbacks cb;
        cb.numStages = static_cast<int>(matchGrid.size());
        cb.regionsInStage = [this](int s) {
            return static_cast<int>(matchGrid[s].size());
        };
        cb.matches = [this](int s, int r) { return matchGrid[s][r]; };
        cb.repair = [this](int s, int r) {
            repaired.emplace_back(s, r);
            matchGrid[s][r] = true;
        };
        return cb;
    }

    std::vector<std::vector<bool>> matchGrid;
    std::vector<std::pair<int, int>> repaired;
};

TEST(RecoveryDriver, ValidateAllUpToNothingMatched)
{
    World w({{false, false}, {false, false}});
    auto res = recover(w.callbacks(),
                       ResumePolicy::ValidateAllUpTo);
    EXPECT_EQ(res.resumeStage, 0);
    EXPECT_TRUE(w.repaired.empty());
}

TEST(RecoveryDriver, ValidateAllUpToRepairsBelowHighWaterMark)
{
    // Stage 1 has one match -> HWM = 1; everything not matching in
    // stages 0..1 is repaired; resume at 2.
    World w({{true, false, true},
             {false, true, false},
             {false, false, false}});
    auto res = recover(w.callbacks(),
                       ResumePolicy::ValidateAllUpTo);
    EXPECT_EQ(res.resumeStage, 2);
    const std::vector<std::pair<int, int>> expect = {
        {0, 1}, {1, 0}, {1, 2}};
    EXPECT_EQ(w.repaired, expect);
    EXPECT_EQ(res.repaired, 3u);
    EXPECT_EQ(res.matched, 3u);
}

TEST(RecoveryDriver, ValidateAllUpToFullyMatchedResumesAtEnd)
{
    World w({{true}, {true}, {true}});
    auto res = recover(w.callbacks(),
                       ResumePolicy::ValidateAllUpTo);
    EXPECT_EQ(res.resumeStage, 3);
    EXPECT_TRUE(w.repaired.empty());
}

TEST(RecoveryDriver, ValidateAllUpToRepairsInRegionOrder)
{
    // Intra-stage ordering matters (Cholesky's diagonal first).
    World w({{false, false, false, true}});
    auto res = recover(w.callbacks(),
                       ResumePolicy::ValidateAllUpTo);
    EXPECT_EQ(res.resumeStage, 1);
    ASSERT_EQ(w.repaired.size(), 3u);
    EXPECT_LT(w.repaired[0].second, w.repaired[1].second);
    EXPECT_LT(w.repaired[1].second, w.repaired[2].second);
}

TEST(RecoveryDriver, NewestFullStagePicksNewestCompleteStage)
{
    World w({{true, true},
             {true, true},
             {true, false},
             {false, false}});
    auto res = recover(w.callbacks(),
                       ResumePolicy::NewestFullStage);
    EXPECT_EQ(res.resumeStage, 2);
    EXPECT_TRUE(w.repaired.empty());  // policy never repairs
}

TEST(RecoveryDriver, NewestFullStageNothingComplete)
{
    World w({{false}, {true, false}});
    auto res = recover(w.callbacks(),
                       ResumePolicy::NewestFullStage);
    EXPECT_EQ(res.resumeStage, 0);
}

TEST(RecoveryDriver, NewestFullStageAllComplete)
{
    World w({{true}, {true}});
    auto res = recover(w.callbacks(),
                       ResumePolicy::NewestFullStage);
    EXPECT_EQ(res.resumeStage, 2);
}

TEST(RecoveryDriver, ZeroStagesIsANoOp)
{
    World w({});
    auto res1 = recover(w.callbacks(),
                        ResumePolicy::ValidateAllUpTo);
    EXPECT_EQ(res1.resumeStage, 0);
    auto res2 = recover(w.callbacks(),
                        ResumePolicy::NewestFullStage);
    EXPECT_EQ(res2.resumeStage, 0);
}

TEST(RecoveryDriver, VariableRegionCounts)
{
    // Triangular structure like Cholesky: later stages have fewer
    // regions.
    World w({{true, true, true}, {true, false}, {false}});
    auto res = recover(w.callbacks(),
                       ResumePolicy::ValidateAllUpTo);
    EXPECT_EQ(res.resumeStage, 2);
    const std::vector<std::pair<int, int>> expect = {{1, 1}};
    EXPECT_EQ(w.repaired, expect);
}

} // namespace
} // namespace lp::core
