/**
 * @file
 * Crash/recovery property tests -- the heart of the reproduction.
 *
 * For every kernel, inject a power failure at many points in the
 * store stream, restore the durable image, run the kernel's recovery,
 * resume, and require the final persistent result to equal the golden
 * host result. Also covers repeated crashes (including crashes during
 * recovery itself) and the EagerRecompute recovery for TMM.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "kernels/harness.hh"
#include "kernels/tmm.hh"
#include "kernels/workload.hh"
#include "pmem/crash.hh"

namespace lp::kernels
{
namespace
{

sim::MachineConfig
testMachine(int cores = 4)
{
    sim::MachineConfig cfg;
    cfg.numCores = cores;
    cfg.l1 = {8 * 1024, 4, 2};
    cfg.l2 = {64 * 1024, 8, 11};
    return cfg;
}

KernelParams
smallParams(KernelId id)
{
    KernelParams p;
    p.threads = 4;
    switch (id) {
      case KernelId::Fft:
        p.n = 256;
        break;
      default:
        p.n = 32;
        p.bsize = 8;
        break;
    }
    return p;
}

/** Total stores a full LP run performs (to place crash points). */
std::uint64_t
storesInLpRun(KernelId id)
{
    const auto out = runScheme(id, Scheme::Lp, smallParams(id),
                               testMachine());
    return static_cast<std::uint64_t>(out.stat("stores"));
}

class CrashSweep
    : public ::testing::TestWithParam<std::tuple<KernelId, int>>
{
};

TEST_P(CrashSweep, RecoversToGoldenResult)
{
    auto [kernel, slice] = GetParam();
    const std::uint64_t total = storesInLpRun(kernel);
    ASSERT_GT(total, 16u);
    // Crash points spread across the run: early, mid, late.
    const std::uint64_t point =
        1 + (total - 2) * static_cast<std::uint64_t>(slice) / 7;
    const auto out = runLpWithCrash(kernel, smallParams(kernel),
                                    testMachine(), point);
    EXPECT_TRUE(out.crashed) << "crash point " << point << " of "
                             << total;
    EXPECT_TRUE(out.verified)
        << kernelName(kernel) << " crash after " << point
        << " stores: max abs error " << out.maxAbsError;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, CrashSweep,
    ::testing::Combine(
        ::testing::Values(KernelId::Tmm, KernelId::Cholesky,
                          KernelId::Conv2d, KernelId::Gauss,
                          KernelId::Fft),
        ::testing::Range(0, 8)),
    [](const ::testing::TestParamInfo<std::tuple<KernelId, int>>
           &info) {
        std::string n =
            kernelName(std::get<0>(info.param)) + "_slice" +
            std::to_string(std::get<1>(info.param));
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(CrashRecovery, RandomCrashPointsTmm)
{
    const std::uint64_t total = storesInLpRun(KernelId::Tmm);
    Rng rng(2024);
    for (int trial = 0; trial < 12; ++trial) {
        const std::uint64_t point = 1 + rng.below(total - 1);
        const auto out = runLpWithCrash(
            KernelId::Tmm, smallParams(KernelId::Tmm), testMachine(),
            point);
        ASSERT_TRUE(out.verified)
            << "trial " << trial << " point " << point;
    }
}

TEST(CrashRecovery, CrashImmediatelyAtFirstStore)
{
    const auto out = runLpWithCrash(
        KernelId::Tmm, smallParams(KernelId::Tmm), testMachine(), 1);
    EXPECT_TRUE(out.crashed);
    EXPECT_TRUE(out.verified);
    // Nothing useful persisted: recovery resumes from stage 0.
    EXPECT_EQ(out.recovery.resumeStage, 0);
}

TEST(CrashRecovery, CrashBudgetBeyondRunMeansNoCrash)
{
    const auto out = runLpWithCrash(KernelId::Tmm,
                                    smallParams(KernelId::Tmm),
                                    testMachine(), UINT64_MAX);
    EXPECT_FALSE(out.crashed);
    EXPECT_TRUE(out.verified);
}

TEST(CrashRecovery, RepeatedCrashesStillConverge)
{
    const std::uint64_t total = storesInLpRun(KernelId::Tmm);
    // Three crashes: mid-run, then during recovery/resume, then late.
    const std::vector<std::uint64_t> points = {
        total / 2, total / 8, total / 3};
    const auto out = runLpWithCrashes(
        KernelId::Tmm, smallParams(KernelId::Tmm), testMachine(),
        points);
    EXPECT_EQ(out.crashes, 3);
    EXPECT_TRUE(out.verified) << "max abs error " << out.maxAbsError;
}

TEST(CrashRecovery, RepeatedCrashesAllKernels)
{
    for (KernelId id : {KernelId::Cholesky, KernelId::Conv2d,
                        KernelId::Gauss, KernelId::Fft}) {
        const std::uint64_t total = storesInLpRun(id);
        const std::vector<std::uint64_t> points = {total / 2,
                                                   total / 5};
        const auto out = runLpWithCrashes(id, smallParams(id),
                                          testMachine(), points);
        EXPECT_EQ(out.crashes, 2) << kernelName(id);
        EXPECT_TRUE(out.verified)
            << kernelName(id) << " err " << out.maxAbsError;
    }
}

TEST(CrashRecovery, LateCrashResumesNearTheEnd)
{
    // A crash in the last tenth of the run must not recompute
    // everything *when the cache is small enough that earlier
    // results drained to NVMM*: recovery should find matched
    // regions. (With a cache larger than the working set, nothing
    // evicts and LP legitimately redoes everything.)
    sim::MachineConfig cfg = testMachine();
    cfg.l1 = {1024, 2, 2};
    cfg.l2 = {4096, 4, 11};
    std::uint64_t total;
    {
        const auto full = runScheme(KernelId::Tmm, Scheme::Lp,
                                    smallParams(KernelId::Tmm), cfg);
        total = static_cast<std::uint64_t>(full.stat("stores"));
    }
    const auto out = runLpWithCrash(KernelId::Tmm,
                                    smallParams(KernelId::Tmm), cfg,
                                    total - total / 10);
    EXPECT_TRUE(out.crashed);
    EXPECT_TRUE(out.verified);
    EXPECT_GT(out.recovery.matched, 0u);
    // Note: resumeStage is the *minimum* over bands and may be 0: the
    // band that was mid-region at the crash holds a mixed durable
    // state matching no digest and legitimately restarts from
    // scratch, while the matched bands resume near the end.
}

TEST(CrashRecovery, EagerRecomputeRecoveryTmm)
{
    const KernelParams p = smallParams(KernelId::Tmm);
    const auto cfg = testMachine();
    // Count stores in a full EagerRecompute run first.
    std::uint64_t total;
    {
        SimContext ctx(cfg, arenaBytesFor(KernelId::Tmm, p));
        TmmWorkload w(p, ctx);
        w.run(Scheme::EagerRecompute);
        total = ctx.machine.machineStats().stores.value();
    }
    for (int slice = 1; slice <= 5; ++slice) {
        SimContext ctx(cfg, arenaBytesFor(KernelId::Tmm, p));
        TmmWorkload w(p, ctx);
        ctx.crash.armAfterStores(total * slice / 6);
        bool crashed = false;
        try {
            w.run(Scheme::EagerRecompute);
        } catch (const pmem::CrashException &) {
            crashed = true;
            ctx.crash.disarm();
            ctx.sched.clear();
            ctx.machine.loseVolatileState();
            ctx.arena.crashRestore();
            w.recoverEagerAndResume();
        }
        EXPECT_TRUE(crashed) << "slice " << slice;
        EXPECT_TRUE(w.verify())
            << "slice " << slice << " err " << w.maxAbsError();
    }
}

TEST(CrashRecovery, RecoveryCausesNoDataLossUnderSmallCache)
{
    // A tiny cache means most data persisted before the crash.
    sim::MachineConfig cfg = testMachine();
    cfg.l1 = {1024, 2, 2};
    cfg.l2 = {4096, 4, 11};
    const auto out = runLpWithCrash(KernelId::Tmm,
                                    smallParams(KernelId::Tmm), cfg,
                                    5000);
    EXPECT_TRUE(out.verified);
}

TEST(CrashRecovery, CleanerShrinksRecoveryWork)
{
    // With a frequent cleaner, more regions are durable at the crash,
    // so recovery validates more and repairs/replays less.
    const KernelParams p = smallParams(KernelId::Tmm);
    const std::uint64_t total = storesInLpRun(KernelId::Tmm);

    sim::MachineConfig lazy_cfg = testMachine();
    const auto lazy = runLpWithCrash(KernelId::Tmm, p, lazy_cfg,
                                     total / 2);

    sim::MachineConfig clean_cfg = testMachine();
    clean_cfg.cleanerPeriodCycles = 2000;
    const auto cleaned = runLpWithCrash(KernelId::Tmm, p, clean_cfg,
                                        total / 2);

    EXPECT_TRUE(lazy.verified);
    EXPECT_TRUE(cleaned.verified);
    EXPECT_GE(cleaned.recovery.resumeStage,
              lazy.recovery.resumeStage);
}

} // namespace
} // namespace lp::kernels
