/**
 * @file
 * Tests for the min-clock region scheduler: ordering, interleaving,
 * barriers, and crash cleanup.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hh"
#include "sim/scheduler.hh"

namespace lp::sim
{
namespace
{

MachineConfig
cfg4()
{
    MachineConfig cfg;
    cfg.numCores = 4;
    cfg.l1 = {1024, 2, 2};
    cfg.l2 = {4096, 4, 11};
    return cfg;
}

TEST(Scheduler, RunsAllItems)
{
    Machine m(cfg4(), nullptr);
    RegionScheduler sched(m, 4);
    int count = 0;
    for (int t = 0; t < 4; ++t)
        for (int i = 0; i < 5; ++i)
            sched.add(t, [&count] { ++count; });
    EXPECT_EQ(sched.pending(), 20u);
    sched.run();
    EXPECT_EQ(count, 20);
    EXPECT_EQ(sched.pending(), 0u);
}

TEST(Scheduler, PerThreadOrderPreserved)
{
    Machine m(cfg4(), nullptr);
    RegionScheduler sched(m, 2);
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        sched.add(0, [&order, i] { order.push_back(i); });
    sched.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Scheduler, PicksThreadWithSmallestClock)
{
    Machine m(cfg4(), nullptr);
    RegionScheduler sched(m, 2);
    std::vector<int> trace;
    // Thread 0's first item is expensive; thread 1's items are cheap,
    // so both of thread 1's items should run before thread 0's second.
    sched.add(0, [&] { trace.push_back(0); m.tick(0, 10000); });
    sched.add(0, [&] { trace.push_back(1); });
    sched.add(1, [&] { trace.push_back(10); m.tick(1, 4); });
    sched.add(1, [&] { trace.push_back(11); m.tick(1, 4); });
    sched.run();
    EXPECT_EQ(trace, (std::vector<int>{0, 10, 11, 1}));
}

TEST(Scheduler, BarrierSynchronizesClocks)
{
    Machine m(cfg4(), nullptr);
    RegionScheduler sched(m, 2);
    sched.add(0, [&] { m.tick(0, 40000); });
    sched.add(1, [&] { m.tick(1, 4); });
    sched.barrier();
    EXPECT_EQ(m.coreCycles(0), m.coreCycles(1));
    EXPECT_EQ(m.coreCycles(0), 10000u);
}

TEST(Scheduler, ClearDropsPendingItems)
{
    Machine m(cfg4(), nullptr);
    RegionScheduler sched(m, 2);
    int count = 0;
    sched.add(0, [&] { ++count; });
    sched.add(1, [&] { ++count; });
    sched.clear();
    sched.run();
    EXPECT_EQ(count, 0);
}

TEST(Scheduler, ExceptionLeavesRemainingItemsQueued)
{
    Machine m(cfg4(), nullptr);
    RegionScheduler sched(m, 1);
    sched.add(0, [] { throw std::runtime_error("boom"); });
    sched.add(0, [] {});
    EXPECT_THROW(sched.run(), std::runtime_error);
    EXPECT_EQ(sched.pending(), 1u);
    sched.clear();
    EXPECT_EQ(sched.pending(), 0u);
}

TEST(SchedulerDeathTest, TooManyThreadsPanics)
{
    Machine m(cfg4(), nullptr);
    EXPECT_DEATH(RegionScheduler(m, 5), "more threads than cores");
}

} // namespace
} // namespace lp::sim
