/**
 * @file
 * Integration tests for lp::server: a real server process serving a
 * real TCP workload, killed with SIGKILL mid-stream, restarted, and
 * held to its acknowledgement contract -- every mutation the server
 * acknowledged must be visible after recovery.
 *
 * What "survived" means under pipelining: a key's recovered value
 * must equal the state after its LAST ACKNOWLEDGED operation, or any
 * LATER state from operations that were issued but not yet
 * acknowledged (the server may legitimately have committed those
 * too; per-shard epochs commit in order, so only suffix states are
 * possible). Each connection owns a disjoint key range, so per-key
 * operation order is exactly that connection's issue order.
 *
 * The server runs in a fork()ed child (no exec: the child builds the
 * Server in-process and never returns to gtest), publishing its
 * ephemeral port through the dataDir/PORT file. Everything is
 * bounded by timeouts so a hung server fails rather than wedges CI.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <optional>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hh"
#include "server/client.hh"
#include "server/server.hh"
#include "stats/stats.hh"
#include "store/layout.hh"

using namespace lp;
using namespace lp::server;

namespace
{

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/lpserver-test-XXXXXX";
    const char *d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    return d ? d : "";
}

/**
 * Run a server in a forked child. The child never returns: it serves
 * until killed (SIGKILL from the test) or asked to shut down
 * (SHUTDOWN op / SIGTERM), then exits 0.
 */
pid_t
spawnServer(const ServerConfig &cfg)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    {
        Server srv(cfg);
        srv.start();
        srv.installSignalHandlers();
        srv.join();
    }
    std::_Exit(0);
}

/** Wait for the PORT file, then connect; asserts on failure. */
void
connectToServer(Client &c, const std::string &dataDir)
{
    const int port = waitForPortFile(dataDir, 30000);
    ASSERT_GT(port, 0) << "server did not publish a port";
    ASSERT_TRUE(c.connectTo("127.0.0.1", port));
}

/**
 * Per-key value history: states[0] is "absent"; states[j] is the
 * value (nullopt = deleted) after the j-th issued operation. `acked`
 * is the highest state index whose operation was acknowledged.
 */
struct KeyHistory
{
    std::vector<std::optional<std::uint64_t>> states{std::nullopt};
    std::size_t acked = 0;
};

struct LoadState
{
    std::unordered_map<std::uint64_t, KeyHistory> hist;

    /** request id -> the (key, state index) pairs it acknowledges. */
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<std::uint64_t,
                                             std::size_t>>>
        inflight;

    std::uint64_t acks = 0;
};

void
recordOp(LoadState &ls, std::uint64_t id, std::uint64_t key,
         std::optional<std::uint64_t> value)
{
    KeyHistory &h = ls.hist[key];
    h.states.push_back(value);
    ls.inflight[id].emplace_back(key, h.states.size() - 1);
}

/** Apply one received response to the tracker. */
void
onResponse(LoadState &ls, const Response &r)
{
    auto it = ls.inflight.find(r.id);
    if (it == ls.inflight.end())
        return;
    if (r.status == Status::Ok) {
        // Acknowledged: acked mutations must survive any crash. A
        // Retry reply means the op was REJECTED (never executed), so
        // its states simply never materialize server-side; suffix
        // matching over absolute values tolerates those gaps.
        for (const auto &[key, idx] : it->second) {
            KeyHistory &h = ls.hist[key];
            h.acked = std::max(h.acked, idx);
        }
        ++ls.acks;
    }
    ls.inflight.erase(it);
}

/** Pull replies until in-flight drops below @p target (bounded). */
void
drainTo(Client &c, LoadState &ls, std::size_t target, int timeoutMs)
{
    while (ls.inflight.size() > target) {
        const auto r = c.recvResponse(timeoutMs);
        if (!r)
            return;
        onResponse(ls, *r);
    }
}

/**
 * Issue one pseudo-random operation (put / del / occasional batch)
 * on a key in [lo, hi]. Values are globally unique so a recovered
 * value pins exactly one history state.
 */
void
issueOp(Client &c, LoadState &ls, std::mt19937_64 &rng,
        std::uint64_t lo, std::uint64_t hi, std::uint64_t &valueSeq)
{
    const auto pick = [&] { return lo + rng() % (hi - lo + 1); };
    const int kind = int(rng() % 10);
    if (kind < 7) {  // put
        Request r;
        r.op = Op::Put;
        r.id = c.nextId();
        r.key = pick();
        r.value = ++valueSeq;
        recordOp(ls, r.id, r.key, r.value);
        ASSERT_TRUE(c.sendRequest(r));
    } else if (kind < 9) {  // del
        Request r;
        r.op = Op::Del;
        r.id = c.nextId();
        r.key = pick();
        recordOp(ls, r.id, r.key, std::nullopt);
        ASSERT_TRUE(c.sendRequest(r));
    } else {  // batch of puts+dels
        Request r;
        r.op = Op::Batch;
        r.id = c.nextId();
        const std::size_t n = 2 + rng() % 6;
        for (std::size_t i = 0; i < n; ++i) {
            const bool isPut = rng() % 4 != 0;
            BatchOp b;
            b.isPut = isPut;
            b.key = pick();
            b.value = isPut ? ++valueSeq : 0;
            r.batch.push_back(b);
            recordOp(ls, r.id, b.key,
                     isPut ? std::optional<std::uint64_t>(b.value)
                           : std::nullopt);
        }
        ASSERT_TRUE(c.sendRequest(r));
    }
}

/** Block until at least @p minAcks acknowledgements arrived. */
void
waitForAcks(Client &c, LoadState &ls, std::uint64_t minAcks)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (ls.acks < minAcks &&
           std::chrono::steady_clock::now() < deadline) {
        const auto r = c.recvResponse(500);
        if (r)
            onResponse(ls, *r);
    }
    ASSERT_GE(ls.acks, minAcks) << "server stopped acknowledging";
}

/**
 * Check one connection's key range against the recovered store:
 * every key must read back as some suffix state of its history.
 */
void
verifyRecovered(Client &c, const LoadState &ls, const char *tag)
{
    for (const auto &[key, h] : ls.hist) {
        const auto resp = c.get(key, 20000);
        ASSERT_TRUE(resp.has_value()) << tag << " get(" << key << ")";
        ASSERT_TRUE(resp->status == Status::Ok ||
                    resp->status == Status::NotFound);
        std::optional<std::uint64_t> obs;
        if (resp->hasValue)
            obs = resp->value;
        bool match = false;
        for (std::size_t j = h.acked; j < h.states.size() && !match;
             ++j)
            match = h.states[j] == obs;
        EXPECT_TRUE(match)
            << tag << ": key " << key << " recovered to "
            << (obs ? std::to_string(*obs) : "absent")
            << " which is no state at or after its last "
            << "acknowledged operation (acked index " << h.acked
            << " of " << h.states.size() - 1 << ")";
    }
}

class ServerCrash : public ::testing::TestWithParam<store::Backend>
{
};

} // namespace

TEST_P(ServerCrash, AckedMutationsSurviveSigkill)
{
    const std::string dir = makeTempDir();
    ASSERT_FALSE(dir.empty());

    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 2;
    cfg.backend = GetParam();
    cfg.batchOps = 8;     // small batches: many epochs commit
    cfg.foldBatches = 4;  // frequent folds exercise the journal reset
    cfg.quiet = true;

    // --- incarnation 1: mixed workload, SIGKILL mid-stream ---------
    const pid_t pid1 = spawnServer(cfg);
    ASSERT_GT(pid1, 0);
    Client c1, c2;
    connectToServer(c1, dir);
    ASSERT_TRUE(c2.connectTo("127.0.0.1",
                             waitForPortFile(dir, 1000)));

    // Disjoint key ranges per connection keep per-key issue order
    // well-defined under two concurrent pipelines.
    LoadState ls1, ls2;
    std::mt19937_64 rng1(11), rng2(22);
    std::uint64_t seq1 = 0, seq2 = 1u << 20;
    for (int i = 0; i < 1200; ++i) {
        issueOp(c1, ls1, rng1, 1, 100, seq1);
        issueOp(c2, ls2, rng2, 101, 200, seq2);
        // Stay under the server's in-flight budget (default 256).
        if (ls1.inflight.size() > 128)
            drainTo(c1, ls1, 64, 2000);
        if (ls2.inflight.size() > 128)
            drainTo(c2, ls2, 64, 2000);
    }
    waitForAcks(c1, ls1, 400);
    waitForAcks(c2, ls2, 400);

    // A final unread burst guarantees genuinely in-flight operations
    // at the moment of death.
    for (int i = 0; i < 60; ++i) {
        issueOp(c1, ls1, rng1, 1, 100, seq1);
        issueOp(c2, ls2, rng2, 101, 200, seq2);
    }
    ASSERT_EQ(::kill(pid1, SIGKILL), 0);
    int st = 0;
    ASSERT_EQ(::waitpid(pid1, &st, 0), pid1);
    ASSERT_TRUE(WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL);

    // Replies the server sent before dying still count as acks.
    for (;;) {
        const auto r = c1.recvResponse(200);
        if (!r)
            break;
        onResponse(ls1, *r);
    }
    for (;;) {
        const auto r = c2.recvResponse(200);
        if (!r)
            break;
        onResponse(ls2, *r);
    }
    c1.close();
    c2.close();

    // --- incarnation 2: recover, verify the ack contract -----------
    std::filesystem::remove(dir + "/PORT");  // don't read a stale port
    const pid_t pid2 = spawnServer(cfg);
    ASSERT_GT(pid2, 0);
    Client c3;
    connectToServer(c3, dir);
    verifyRecovered(c3, ls1, "conn1");
    verifyRecovered(c3, ls2, "conn2");

    // The recovered server must accept new work...
    const auto pr = c3.put(55, 424242, 20000);
    ASSERT_TRUE(pr && pr->status == Status::Ok);
    const auto sr = c3.stats(20000);
    ASSERT_TRUE(sr && sr->status == Status::Ok);
    EXPECT_NE(sr->body.find("\"backend\""), std::string::npos);
    // This incarnation recovered from an image, and says so: the
    // per-shard recovery counters ride along in the stats report.
    EXPECT_NE(sr->body.find("\"recovery_attached\":1"),
              std::string::npos);
    EXPECT_NE(sr->body.find("\"batches_replayed\""),
              std::string::npos);

    // ...and shut down gracefully on the SHUTDOWN op.
    const auto down = c3.shutdownServer(20000);
    ASSERT_TRUE(down && down->status == Status::Ok);
    c3.close();
    ASSERT_EQ(::waitpid(pid2, &st, 0), pid2);
    EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0)
        << "graceful shutdown should exit 0";

    // --- incarnation 3: the graceful checkpoint also persisted -----
    std::filesystem::remove(dir + "/PORT");
    const pid_t pid3 = spawnServer(cfg);
    ASSERT_GT(pid3, 0);
    Client c4;
    connectToServer(c4, dir);
    const auto gr = c4.get(55, 20000);
    ASSERT_TRUE(gr.has_value());
    EXPECT_EQ(gr->status, Status::Ok);
    EXPECT_EQ(gr->value, 424242u);
    const auto down3 = c4.shutdownServer(20000);
    ASSERT_TRUE(down3 && down3->status == Status::Ok);
    c4.close();
    ASSERT_EQ(::waitpid(pid3, &st, 0), pid3);
    EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);

    std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ServerCrash,
    ::testing::Values(store::Backend::Lp, store::Backend::Wal),
    [](const ::testing::TestParamInfo<store::Backend> &info) {
        return store::backendName(info.param);
    });

TEST_P(ServerCrash, ScanIdenticalAfterSigkillRecovery)
{
    const std::string dir = makeTempDir();
    ASSERT_FALSE(dir.empty());

    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 2;
    cfg.backend = GetParam();
    cfg.batchOps = 8;
    cfg.foldBatches = 4;
    cfg.quiet = true;

    // --- incarnation 1: acked writes, a pre-crash SCAN, then an
    // unacked burst on a disjoint higher key range, then SIGKILL ----
    const pid_t pid1 = spawnServer(cfg);
    ASSERT_GT(pid1, 0);
    Client c1;
    connectToServer(c1, dir);

    for (std::uint64_t k = 1000; k < 1100; ++k) {
        const auto r = c1.put(k, k * 7, 20000);
        ASSERT_TRUE(r && r->status == Status::Ok) << "put " << k;
    }
    const auto before = c1.scan(1000, 100, 20000);
    ASSERT_TRUE(before.has_value());
    ASSERT_EQ(before->size(), 100u);

    // In-flight at the moment of death; keys strictly above the
    // acked range, so the 100 smallest keys >= 1000 stay the same
    // whether or not any of these committed.
    for (std::uint64_t i = 0; i < 80; ++i) {
        Request r;
        r.op = Op::Put;
        r.id = c1.nextId();
        r.key = 5000 + i;
        r.value = i;
        ASSERT_TRUE(c1.sendRequest(r));
    }
    ASSERT_EQ(::kill(pid1, SIGKILL), 0);
    int st = 0;
    ASSERT_EQ(::waitpid(pid1, &st, 0), pid1);
    ASSERT_TRUE(WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL);
    c1.close();

    // --- incarnation 2: the rebuilt index must reproduce the
    // pre-crash SCAN exactly, and agree with point GETs ------------
    std::filesystem::remove(dir + "/PORT");
    const pid_t pid2 = spawnServer(cfg);
    ASSERT_GT(pid2, 0);
    Client c2;
    connectToServer(c2, dir);

    const auto after = c2.scan(1000, 100, 20000);
    ASSERT_TRUE(after.has_value());
    ASSERT_EQ(after->size(), before->size());
    for (std::size_t i = 0; i < before->size(); ++i) {
        EXPECT_EQ((*after)[i].key, (*before)[i].key) << "slot " << i;
        EXPECT_EQ((*after)[i].value, (*before)[i].value)
            << "slot " << i;
    }
    for (const ScanRecord &rec : *after) {
        const auto g = c2.get(rec.key, 20000);
        ASSERT_TRUE(g && g->status == Status::Ok);
        EXPECT_EQ(g->value, rec.value)
            << "scan and point GET disagree on key " << rec.key;
    }

    const auto down = c2.shutdownServer(20000);
    ASSERT_TRUE(down && down->status == Status::Ok);
    c2.close();
    ASSERT_EQ(::waitpid(pid2, &st, 0), pid2);
    EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
    std::filesystem::remove_all(dir);
}

TEST(ServerBasic, InProcessOpsAndStats)
{
    const std::string dir = makeTempDir();
    ASSERT_FALSE(dir.empty());
    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 2;
    cfg.quiet = true;
    Server srv(cfg);
    srv.start();

    Client c;
    ASSERT_TRUE(c.connectTo("127.0.0.1", srv.port()));
    const auto miss = c.get(9, 10000);
    ASSERT_TRUE(miss.has_value());
    EXPECT_EQ(miss->status, Status::NotFound);

    const auto put = c.put(9, 1234, 10000);
    ASSERT_TRUE(put && put->status == Status::Ok);
    const auto hit = c.get(9, 10000);
    ASSERT_TRUE(hit && hit->status == Status::Ok);
    EXPECT_TRUE(hit->hasValue);
    EXPECT_EQ(hit->value, 1234u);

    const auto del = c.del(9, 10000);
    ASSERT_TRUE(del && del->status == Status::Ok);
    const auto gone = c.get(9, 10000);
    ASSERT_TRUE(gone && gone->status == Status::NotFound);

    // Keys in the reserved sentinel range are rejected, not applied.
    const auto bad = c.put(~0ull, 1, 10000);
    ASSERT_TRUE(bad.has_value());
    EXPECT_EQ(bad->status, Status::Err);

    // A cross-shard batch gets exactly one reply once every sub-op's
    // epoch has committed.
    Request b;
    b.op = Op::Batch;
    b.id = c.nextId();
    for (std::uint64_t k = 20; k < 40; ++k)
        b.batch.push_back(BatchOp{true, k, k * 10});
    ASSERT_TRUE(c.sendRequest(b));
    const auto br = c.recvResponse(10000);
    ASSERT_TRUE(br.has_value());
    EXPECT_EQ(br->id, b.id);
    EXPECT_EQ(br->status, Status::Ok);
    const auto bk = c.get(33, 10000);
    ASSERT_TRUE(bk && bk->status == Status::Ok);
    EXPECT_EQ(bk->value, 330u);

    const auto sr = c.stats(10000);
    ASSERT_TRUE(sr && sr->status == Status::Ok);
    EXPECT_NE(sr->body.find("\"mutations\""), std::string::npos);
    EXPECT_NE(sr->body.find("\"shard\""), std::string::npos);

    c.close();
    srv.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServerBasic, ScanMergesShardsEndToEnd)
{
    const std::string dir = makeTempDir();
    ASSERT_FALSE(dir.empty());
    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 3;  // scans must gather across all workers
    cfg.quiet = true;
    Server srv(cfg);
    srv.start();

    Client c;
    ASSERT_TRUE(c.connectTo("127.0.0.1", srv.port()));
    for (std::uint64_t k = 10; k <= 60; k += 5) {
        const auto r = c.put(k, k * 100, 10000);
        ASSERT_TRUE(r && r->status == Status::Ok);
    }

    // Full range: every key, ascending, values intact.
    const auto all = c.scan(0, 100, 10000);
    ASSERT_TRUE(all.has_value());
    ASSERT_EQ(all->size(), 11u);
    for (std::size_t i = 0; i < all->size(); ++i) {
        EXPECT_EQ((*all)[i].key, 10 + 5 * i);
        EXPECT_EQ((*all)[i].value, (10 + 5 * i) * 100);
    }

    // Mid-range start + limit truncation.
    const auto mid = c.scan(26, 3, 10000);
    ASSERT_TRUE(mid.has_value());
    ASSERT_EQ(mid->size(), 3u);
    EXPECT_EQ((*mid)[0].key, 30u);
    EXPECT_EQ((*mid)[1].key, 35u);
    EXPECT_EQ((*mid)[2].key, 40u);

    // Start past every key: Ok with an empty record set.
    const auto past = c.scan(store::maxUserKey, 5, 10000);
    ASSERT_TRUE(past.has_value());
    EXPECT_TRUE(past->empty());

    // The scan counters and index gauges ride the stats report.
    const auto sr = c.stats(10000);
    ASSERT_TRUE(sr && sr->status == Status::Ok);
    EXPECT_NE(sr->body.find("\"scans\""), std::string::npos);
    EXPECT_NE(sr->body.find("\"index_entries\""), std::string::npos);
    EXPECT_NE(sr->body.find("\"index_bytes\""), std::string::npos);
    EXPECT_NE(sr->body.find("\"scan_lat_ns_p99\""), std::string::npos);
    EXPECT_NE(sr->body.find("\"scan_len_p50\""), std::string::npos);

    c.close();
    srv.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServerBasic, BackpressureRepliesRetry)
{
    const std::string dir = makeTempDir();
    ASSERT_FALSE(dir.empty());
    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 1;
    cfg.quiet = true;
    cfg.maxInflightPerConn = 4;
    cfg.flushDeadlineUs = 200000;  // acks stall until the deadline
    Server srv(cfg);
    srv.start();

    Client c;
    ASSERT_TRUE(c.connectTo("127.0.0.1", srv.port()));
    const int total = 12;
    for (int i = 0; i < total; ++i) {
        Request r;
        r.op = Op::Put;
        r.id = std::uint64_t(1000 + i);
        r.key = std::uint64_t(i);
        r.value = std::uint64_t(i);
        ASSERT_TRUE(c.sendRequest(r));
    }
    int ok = 0, retry = 0;
    for (int i = 0; i < total; ++i) {
        const auto r = c.recvResponse(10000);
        ASSERT_TRUE(r.has_value());
        if (r->status == Status::Ok)
            ++ok;
        else if (r->status == Status::Retry)
            ++retry;
    }
    // The in-flight budget is 4, acks can't beat the 200ms deadline,
    // so at least total-4 requests must have been pushed back.
    EXPECT_GE(retry, total - 4);
    EXPECT_EQ(ok, total - retry);

    c.close();
    srv.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServerBasic, MetricsScrapeUnderLoad)
{
    const std::string dir = makeTempDir();
    ASSERT_FALSE(dir.empty());
    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 2;
    cfg.quiet = true;
    Server srv(cfg);
    srv.start();

    Client c;
    ASSERT_TRUE(c.connectTo("127.0.0.1", srv.port()));

    // Known op mix, every op acked before the scrape, so the counters
    // are exact: 100 mutations, 50 reads.
    for (std::uint64_t k = 0; k < 100; ++k) {
        const auto r = c.put(k, k * 3, 10000);
        ASSERT_TRUE(r && r->status == Status::Ok);
    }
    for (std::uint64_t k = 0; k < 50; ++k) {
        const auto r = c.get(k, 10000);
        ASSERT_TRUE(r && r->status == Status::Ok);
    }

    const auto scrape = [&](stats::Snapshot &snap) {
        const auto r = c.metrics(10000);
        ASSERT_TRUE(r.has_value());
        ASSERT_EQ(r->status, Status::Ok);
        ASSERT_FALSE(r->body.empty());
        EXPECT_TRUE(obs::parseExposition(r->body, snap))
            << "exposition did not parse:\n"
            << r->body;
    };

    stats::Snapshot s1;
    scrape(s1);

    const auto shardSum = [](const stats::Snapshot &snap,
                             const std::string &name) {
        double sum = 0.0;
        for (int shard = 0;; ++shard) {
            const auto it = snap.find(name + "{shard=\"" +
                                      std::to_string(shard) + "\"}");
            if (it == snap.end())
                return sum;
            sum += it->second;
        }
    };
    EXPECT_DOUBLE_EQ(shardSum(s1, "lp_mutations"), 100.0);
    EXPECT_DOUBLE_EQ(shardSum(s1, "lp_gets"), 50.0);
    EXPECT_GE(s1.at("lp_connections"), 1.0);

    // Histogram integrity: every mutation waited for its commit, so
    // the commit-wait histograms across shards account for exactly
    // the 100 acks, and each +Inf bucket equals its _count.
    double waitCount = 0.0;
    for (int shard = 0; shard < cfg.shards; ++shard) {
        const std::string lab =
            "{shard=\"" + std::to_string(shard) + "\"}";
        const std::string inf = "lp_req_commit_wait_seconds_bucket"
                                "{shard=\"" +
                                std::to_string(shard) +
                                "\",le=\"+Inf\"}";
        const double cnt =
            s1.at("lp_req_commit_wait_seconds_count" + lab);
        EXPECT_DOUBLE_EQ(s1.at(inf), cnt) << "shard " << shard;
        waitCount += cnt;
    }
    EXPECT_DOUBLE_EQ(waitCount, 100.0);

    // More load, then a second scrape: every counter-like series
    // (everything except the point-in-time gauges) must be monotonic,
    // and the mutation delta must equal the ops issued in between.
    for (std::uint64_t k = 0; k < 40; ++k) {
        const auto r = c.put(200 + k, k, 10000);
        ASSERT_TRUE(r && r->status == Status::Ok);
    }
    stats::Snapshot s2;
    scrape(s2);
    for (const auto &[key, v1] : s1) {
        if (key.find("lp_connections") == 0 ||
            key.find("lp_queue_depth") == 0 ||
            key.find("lp_committed_epoch") == 0)
            continue;
        const auto it = s2.find(key);
        ASSERT_NE(it, s2.end()) << key << " vanished between scrapes";
        EXPECT_GE(it->second, v1) << key << " went backwards";
    }
    EXPECT_DOUBLE_EQ(shardSum(s2, "lp_mutations"), 140.0);

    c.close();
    srv.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServerBasic, MalformedFrameClosesConnection)
{
    const std::string dir = makeTempDir();
    ASSERT_FALSE(dir.empty());
    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 1;
    cfg.quiet = true;
    Server srv(cfg);
    srv.start();

    // The Client refuses to encode junk, so drive the malformed
    // paths with a plain socket: the server must close the offending
    // connection (we observe EOF), never crash or over-read.
    const auto rawProbe = [&](const std::vector<std::uint8_t> &bytes) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(std::uint16_t(srv.port()));
        ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr),
                  1);
        ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
                  ssize_t(bytes.size()));
        char buf[16];
        struct pollfd pf = {fd, POLLIN, 0};
        ASSERT_GT(::poll(&pf, 1, 10000), 0) << "server never closed";
        EXPECT_EQ(::read(fd, buf, sizeof(buf)), 0) << "expected EOF";
        ::close(fd);
    };

    // Oversized length field.
    rawProbe({0xff, 0xff, 0xff, 0x7f, 0x01, 0x00, 0x00, 0x00});
    // Unknown opcode inside a well-formed frame.
    {
        Request probe;
        probe.op = Op::Stats;
        probe.id = 1;
        std::vector<std::uint8_t> frame;
        encodeRequest(probe, frame);
        frame[4] = 0xee;
        rawProbe(frame);
    }
    // Length/opcode mismatch: GET framed with a PUT-sized payload.
    {
        Request probe;
        probe.op = Op::Put;
        probe.id = 2;
        probe.key = 3;
        probe.value = 4;
        std::vector<std::uint8_t> frame;
        encodeRequest(probe, frame);
        frame[4] = std::uint8_t(Op::Get);
        rawProbe(frame);
    }

    // SCAN with a zero limit inside an otherwise well-formed frame.
    {
        Request probe;
        probe.op = Op::Scan;
        probe.id = 3;
        probe.key = 1;
        probe.limit = 1;
        std::vector<std::uint8_t> frame;
        encodeRequest(probe, frame);
        for (int i = 0; i < 4; ++i)  // limit field at offset 21
            frame[std::size_t(21 + i)] = 0;
        rawProbe(frame);
    }
    // SCAN with a limit past the response cap.
    {
        Request probe;
        probe.op = Op::Scan;
        probe.id = 4;
        probe.key = 1;
        probe.limit = 1;
        std::vector<std::uint8_t> frame;
        encodeRequest(probe, frame);
        const auto big = std::uint32_t(maxScanRecords + 1);
        for (int i = 0; i < 4; ++i)
            frame[std::size_t(21 + i)] = std::uint8_t(big >> (8 * i));
        rawProbe(frame);
    }
    // SCAN truncated to a GET-sized frame (start_key cut short).
    {
        Request probe;
        probe.op = Op::Get;
        probe.id = 5;
        probe.key = 6;
        std::vector<std::uint8_t> frame;
        encodeRequest(probe, frame);
        frame[4] = std::uint8_t(Op::Scan);  // 17-byte SCAN: malformed
        rawProbe(frame);
    }

    // And the server is still healthy for other clients.
    Client again;
    ASSERT_TRUE(again.connectTo("127.0.0.1", srv.port()));
    const auto sr = again.stats(10000);
    ASSERT_TRUE(sr && sr->status == Status::Ok);
    again.close();

    srv.stop();
    std::filesystem::remove_all(dir);
}
