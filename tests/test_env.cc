/**
 * @file
 * Tests for the memory environments: SimEnv routes traffic through
 * the machine and fires crash hooks; NativeEnv is a transparent
 * no-op wrapper.
 */

#include <gtest/gtest.h>

#include "kernels/env.hh"
#include "pmem/arena.hh"
#include "pmem/crash.hh"
#include "sim/machine.hh"

namespace lp::kernels
{
namespace
{

struct Fixture
{
    Fixture()
        : arena(1 << 20), machine(config(), &arena)
    {
        data = arena.alloc<double>(64);
        words = arena.alloc<std::uint64_t>(64);
    }

    static sim::MachineConfig
    config()
    {
        sim::MachineConfig cfg;
        cfg.numCores = 2;
        cfg.l1 = {1024, 2, 2};
        cfg.l2 = {4096, 4, 11};
        return cfg;
    }

    pmem::PersistentArena arena;
    sim::Machine machine;
    double *data;
    std::uint64_t *words;
};

TEST(SimEnv, LoadReturnsStoredValueAndCountsTraffic)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    env.st(&f.data[0], 2.75);
    EXPECT_DOUBLE_EQ(env.ld(&f.data[0]), 2.75);
    EXPECT_EQ(f.machine.machineStats().stores.value(), 1u);
    EXPECT_EQ(f.machine.machineStats().loads.value(), 1u);
}

TEST(SimEnv, TypedAccessesWork)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    env.st(&f.words[3], std::uint64_t{0xabcdefull});
    EXPECT_EQ(env.ld(&f.words[3]), 0xabcdefull);
}

TEST(SimEnv, CoreRoutingUsesTheRightClock)
{
    Fixture f;
    SimEnv env0(f.machine, f.arena, 0);
    SimEnv env1(f.machine, f.arena, 1);
    env0.tick(4000);
    EXPECT_GT(f.machine.coreCycles(0), f.machine.coreCycles(1));
    env1.tick(8000);
    EXPECT_GT(f.machine.coreCycles(1), f.machine.coreCycles(0));
    EXPECT_EQ(env0.core(), 0);
    EXPECT_EQ(env1.core(), 1);
}

TEST(SimEnv, StoreFiresCrashHook)
{
    Fixture f;
    pmem::CrashController crash;
    SimEnv env(f.machine, f.arena, 0, &crash);
    crash.armAfterStores(3);
    env.st(&f.data[0], 1.0);
    env.st(&f.data[1], 2.0);
    EXPECT_THROW(env.st(&f.data[2], 3.0), pmem::CrashException);
    // The volatile write itself happened before the throw.
    EXPECT_DOUBLE_EQ(f.data[2], 3.0);
}

TEST(SimEnv, LoadsDoNotFireCrashHook)
{
    Fixture f;
    pmem::CrashController crash;
    SimEnv env(f.machine, f.arena, 0, &crash);
    crash.armAfterStores(1);
    for (int i = 0; i < 16; ++i)
        env.ld(&f.data[i]);
    EXPECT_TRUE(crash.armed());
}

TEST(SimEnv, FlushAndFenceDelegateToMachine)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    env.st(&f.data[0], 5.0);
    env.clflushopt(&f.data[0]);
    env.sfence();
    EXPECT_EQ(f.machine.machineStats().flushInstrs.value(), 1u);
    EXPECT_EQ(f.machine.machineStats().fences.value(), 1u);
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[0]), 5.0);

    env.st(&f.data[1], 6.0);
    env.clwb(&f.data[1]);
    env.sfence();
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[1]), 6.0);
}

TEST(NativeEnv, IsTransparent)
{
    NativeEnv env;
    double x = 0.0;
    env.st(&x, 9.5);
    EXPECT_DOUBLE_EQ(env.ld(&x), 9.5);
    EXPECT_DOUBLE_EQ(x, 9.5);
    // All hooks compile and do nothing.
    env.tick(1000);
    env.clflushopt(&x);
    env.clwb(&x);
    env.sfence();
    env.onRegionCommit();
    EXPECT_EQ(env.core(), 0);
    static_assert(!NativeEnv::simulated);
    static_assert(kernels::SimEnv::simulated);
}

} // namespace
} // namespace lp::kernels
