/**
 * @file
 * Tests for windowed tmm measurement (the paper's Section V-C
 * methodology): warm-up exclusion, stats-epoch accounting, and
 * bounds checking.
 */

#include <gtest/gtest.h>

#include "kernels/harness.hh"
#include "kernels/tmm.hh"

namespace lp::kernels
{
namespace
{

sim::MachineConfig
testMachine()
{
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    cfg.l1 = {4 * 1024, 4, 2};
    cfg.l2 = {16 * 1024, 4, 11};
    return cfg;
}

KernelParams
tmm32()
{
    KernelParams p;
    p.n = 32;
    p.bsize = 8;
    p.threads = 4;
    return p;
}

TEST(TmmWindow, WindowCountsOnlyWindowStores)
{
    // A full run has S stages; a 1-stage window must report ~1/S of
    // the full run's stores (exactly 1/S: every stage stores the
    // whole c matrix plus its digests).
    const auto full = runScheme(KernelId::Tmm, Scheme::Lp, tmm32(),
                                testMachine());
    const auto window = runTmmWindow(Scheme::Lp, tmm32(),
                                     testMachine(), 1, 1);
    const int stages = 32 / 8;
    EXPECT_DOUBLE_EQ(window.stat("stores"),
                     full.stat("stores") / stages);
}

TEST(TmmWindow, ExecCyclesAreWindowOnly)
{
    const auto two = runTmmWindow(Scheme::Base, tmm32(),
                                  testMachine(), 0, 2);
    const auto one_warm = runTmmWindow(Scheme::Base, tmm32(),
                                       testMachine(), 1, 1);
    // A warmed 1-stage window is cheaper than a cold 2-stage run and
    // also cheaper than its own warm-up (caches are hot).
    EXPECT_LT(one_warm.execCycles, two.execCycles);
    EXPECT_GT(one_warm.execCycles, 0.0);
}

TEST(TmmWindow, WarmupReducesMissRate)
{
    // Use a cache that holds the whole working set so the warm-up's
    // effect is unambiguous (with a thrashing cache, warm and cold
    // windows miss alike).
    sim::MachineConfig cfg = testMachine();
    cfg.l2 = {64 * 1024, 8, 11};
    const auto cold = runTmmWindow(Scheme::Base, tmm32(), cfg, 0, 1);
    const auto warm = runTmmWindow(Scheme::Base, tmm32(), cfg, 2, 1);
    EXPECT_LT(warm.stat("l2_misses"), cold.stat("l2_misses"));
}

TEST(TmmWindow, AllSchemesSupportWindowing)
{
    for (Scheme s : {Scheme::Base, Scheme::Lp,
                     Scheme::EagerRecompute, Scheme::Wal}) {
        const auto out = runTmmWindow(s, tmm32(), testMachine(), 1,
                                      2);
        EXPECT_GT(out.execCycles, 0.0) << schemeName(s);
        EXPECT_GT(out.stat("stores"), 0.0) << schemeName(s);
    }
}

TEST(TmmWindowDeathTest, OversizedWindowPanics)
{
    SimContext ctx(testMachine(),
                   arenaBytesFor(KernelId::Tmm, tmm32()));
    TmmWorkload w(tmm32(), ctx);
    EXPECT_DEATH(w.runWindow(Scheme::Base, 3, 3),
                 "window exceeds");
}

} // namespace
} // namespace lp::kernels
