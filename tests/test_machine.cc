/**
 * @file
 * Unit tests for the simulated machine: hit/miss timing, writeback
 * and durability plumbing, flush/fence semantics, MESI-lite
 * coherence, volatility-duration tracking, and crash behaviour.
 */

#include <gtest/gtest.h>

#include "pmem/arena.hh"
#include "sim/machine.hh"

namespace lp::sim
{
namespace
{

MachineConfig
tinyConfig()
{
    MachineConfig cfg;
    cfg.numCores = 2;
    cfg.l1 = {1024, 2, 2};       // 8 sets x 2 ways
    cfg.l2 = {4096, 4, 11};      // 16 sets x 4 ways
    return cfg;
}

struct Fixture
{
    Fixture()
        : arena(1 << 20), m(tinyConfig(), &arena)
    {
        data = arena.alloc<double>(4096);
    }

    Addr addr(int i) const { return arena.addrOf(&data[i]); }

    pmem::PersistentArena arena;
    Machine m;
    double *data;
};

TEST(Machine, ColdReadCostsL1L2AndNvmm)
{
    Fixture f;
    const Cycles before = f.m.coreCycles(0);
    f.m.read(0, f.addr(0), 8);
    const Cycles cost = f.m.coreCycles(0) - before;
    const MachineConfig cfg = tinyConfig();
    EXPECT_EQ(cost, cfg.l1.latency + cfg.l2.latency +
                    cfg.nvmmReadCycles());
    EXPECT_EQ(f.m.machineStats().nvmmReads.value(), 1u);
    EXPECT_EQ(f.m.machineStats().l1Misses.value(), 1u);
    EXPECT_EQ(f.m.machineStats().l2Misses.value(), 1u);
}

TEST(Machine, WarmReadCostsL1Only)
{
    Fixture f;
    f.m.read(0, f.addr(0), 8);
    const Cycles before = f.m.coreCycles(0);
    f.m.read(0, f.addr(0), 8);
    EXPECT_EQ(f.m.coreCycles(0) - before, tinyConfig().l1.latency);
    EXPECT_EQ(f.m.machineStats().l1Misses.value(), 1u);
}

TEST(Machine, StreamReadDoesNotInstall)
{
    Fixture f;
    const MachineConfig cfg = tinyConfig();

    // Cold streaming read: full miss cost, but nothing installed --
    // a later allocating read of the same block misses again.
    const Cycles before = f.m.coreCycles(0);
    f.m.readStream(0, f.addr(0), 8);
    EXPECT_EQ(f.m.coreCycles(0) - before,
              cfg.l1.latency + cfg.l2.latency + cfg.nvmmReadCycles());
    EXPECT_EQ(f.m.machineStats().streamLoads.value(), 1u);
    EXPECT_EQ(f.m.machineStats().nvmmReads.value(), 1u);
    f.m.read(0, f.addr(0), 8);
    EXPECT_EQ(f.m.machineStats().l2Misses.value(), 2u);
    EXPECT_EQ(f.m.machineStats().nvmmReads.value(), 2u);
}

TEST(Machine, StreamReadCoalescesInFillBuffer)
{
    Fixture f;
    // The block's remaining words ride the first word's NVMM read.
    f.m.readStream(0, f.addr(0), 8);
    const Cycles before = f.m.coreCycles(0);
    f.m.readStream(0, f.addr(1), 8);
    EXPECT_EQ(f.m.coreCycles(0) - before, tinyConfig().l1.latency);
    EXPECT_EQ(f.m.machineStats().nvmmReads.value(), 1u);
}

TEST(Machine, StreamReadHitsCachedCopy)
{
    Fixture f;
    // A cache-dirty line must satisfy the streaming read (fingerprints
    // cover the eventual durable content), at L1-hit cost.
    f.m.write(0, f.addr(0), 8);
    const auto readsAfterFill = f.m.machineStats().nvmmReads.value();
    const Cycles before = f.m.coreCycles(0);
    f.m.readStream(0, f.addr(0), 8);
    EXPECT_EQ(f.m.coreCycles(0) - before, tinyConfig().l1.latency);
    EXPECT_EQ(f.m.machineStats().nvmmReads.value(), readsAfterFill);
    EXPECT_EQ(f.m.totalDirtyLines(), 1u);
}

TEST(Machine, StraddlingAccessTouchesBothBlocks)
{
    Fixture f;
    // 8 bytes starting 4 bytes before a block boundary.
    f.m.read(0, f.addr(8) - 4, 8);
    EXPECT_EQ(f.m.machineStats().l1Accesses.value(), 2u);
}

TEST(Machine, StoreMakesLineDirtyAndEvictionPersists)
{
    Fixture f;
    f.data[0] = 42.0;
    f.m.write(0, f.addr(0), 8);
    EXPECT_EQ(f.m.totalDirtyLines(), 1u);
    EXPECT_EQ(f.m.machineStats().nvmmWrites.value(), 0u);
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[0]), 0.0);

    // Touch enough distinct blocks to evict block 0 from the L2
    // (L2 = 64 lines; walk far more).
    for (int i = 8; i < 8 * 200; i += 8)
        f.m.read(0, f.addr(i), 8);

    EXPECT_GE(f.m.machineStats().evictionWrites.value(), 1u);
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[0]), 42.0);
}

TEST(Machine, ClflushoptPersistsAndInvalidates)
{
    Fixture f;
    f.data[0] = 7.0;
    f.m.write(0, f.addr(0), 8);
    f.m.clflushopt(0, f.addr(0));
    f.m.sfence(0);
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[0]), 7.0);
    EXPECT_EQ(f.m.machineStats().flushWrites.value(), 1u);
    EXPECT_EQ(f.m.totalDirtyLines(), 0u);
    // Line was invalidated: the next read misses in the L1.
    const auto misses_before = f.m.machineStats().l1Misses.value();
    f.m.read(0, f.addr(0), 8);
    EXPECT_EQ(f.m.machineStats().l1Misses.value(), misses_before + 1);
}

TEST(Machine, ClwbPersistsButKeepsLine)
{
    Fixture f;
    f.data[0] = 9.0;
    f.m.write(0, f.addr(0), 8);
    f.m.clwb(0, f.addr(0));
    f.m.sfence(0);
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[0]), 9.0);
    // Line still resident: next read hits.
    const auto misses_before = f.m.machineStats().l1Misses.value();
    f.m.read(0, f.addr(0), 8);
    EXPECT_EQ(f.m.machineStats().l1Misses.value(), misses_before);
}

TEST(Machine, FlushOfCleanLineWritesNothing)
{
    Fixture f;
    f.m.read(0, f.addr(0), 8);
    f.m.clflushopt(0, f.addr(0));
    f.m.sfence(0);
    EXPECT_EQ(f.m.machineStats().nvmmWrites.value(), 0u);
    EXPECT_EQ(f.m.machineStats().cleanFlushes.value(), 1u);
}

TEST(Machine, SfenceStallsForOutstandingFlushes)
{
    Fixture f;
    f.data[0] = 1.0;
    f.m.write(0, f.addr(0), 8);
    const Cycles before = f.m.coreCycles(0);
    f.m.clflushopt(0, f.addr(0));
    f.m.sfence(0);
    // The fence must wait roughly an NVMM write latency.
    EXPECT_GE(f.m.coreCycles(0) - before,
              tinyConfig().nvmmWriteCycles());
    EXPECT_GE(f.m.machineStats().fenceStallCycles.value(), 1u);
}

TEST(Machine, SfenceWithNoFlushesIsCheap)
{
    Fixture f;
    const Cycles before = f.m.coreCycles(0);
    f.m.sfence(0);
    EXPECT_LE(f.m.coreCycles(0) - before, 2u);
}

TEST(Machine, BackToBackFlushesOverlap)
{
    // clflushopt is weakly ordered: N flushes + 1 fence must cost far
    // less than N * (flush + fence).
    Fixture f;
    const int n = 16;
    for (int i = 0; i < n; ++i) {
        f.data[8 * i] = i;
        f.m.write(0, f.addr(8 * i), 8);
    }
    const Cycles start = f.m.coreCycles(0);
    for (int i = 0; i < n; ++i)
        f.m.clflushopt(0, f.addr(8 * i));
    f.m.sfence(0);
    const Cycles overlapped = f.m.coreCycles(0) - start;

    // Serialized bound: n * (write latency), roughly.
    const Cycles serialized =
        static_cast<Cycles>(n) * tinyConfig().nvmmWriteCycles();
    EXPECT_LT(overlapped, serialized / 2);
}

TEST(Machine, TickAccountsIssueWidth)
{
    Fixture f;
    const Cycles before = f.m.coreCycles(0);
    f.m.tick(0, 8);  // issue width 4 -> 2 cycles
    EXPECT_EQ(f.m.coreCycles(0) - before, 2u);
    EXPECT_EQ(f.m.machineStats().computeOps.value(), 8u);
}

TEST(Machine, CoherenceInvalidatesRemoteSharer)
{
    Fixture f;
    f.m.read(0, f.addr(0), 8);
    f.m.read(1, f.addr(0), 8);  // both L1s share the line
    f.data[0] = 5.0;
    f.m.write(0, f.addr(0), 8); // upgrade: invalidate core 1
    EXPECT_GE(f.m.machineStats().invalidationsSent.value(), 1u);
    // Core 1 must now miss.
    const auto misses = f.m.machineStats().l1Misses.value();
    f.m.read(1, f.addr(0), 8);
    EXPECT_EQ(f.m.machineStats().l1Misses.value(), misses + 1);
}

TEST(Machine, CoherenceSuppliesDirtyDataCacheToCache)
{
    Fixture f;
    f.data[0] = 3.0;
    f.m.write(0, f.addr(0), 8);  // core 0 holds it Modified
    f.m.read(1, f.addr(0), 8);   // core 1 reads: C2C transfer
    EXPECT_EQ(f.m.machineStats().cacheToCache.value(), 1u);
    // No NVMM write was needed for the transfer.
    EXPECT_EQ(f.m.machineStats().nvmmWrites.value(), 0u);
    // The dirtiness lives on in the L2: a crash would lose it, but a
    // drain persists it.
    f.m.drainDirty();
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[0]), 3.0);
}

TEST(Machine, WriteToRemoteDirtyLineTakesOwnership)
{
    Fixture f;
    f.data[0] = 1.0;
    f.m.write(0, f.addr(0), 8);
    f.data[0] = 2.0;
    f.m.write(1, f.addr(0), 8);  // core 1 takes ownership
    f.m.drainDirty();
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[0]), 2.0);
}

TEST(Machine, CrashLosesDirtyCachedData)
{
    Fixture f;
    f.data[0] = 10.0;
    f.m.write(0, f.addr(0), 8);
    f.m.loseVolatileState();
    f.arena.crashRestore();
    EXPECT_DOUBLE_EQ(f.data[0], 0.0);  // never persisted
    EXPECT_EQ(f.m.totalDirtyLines(), 0u);
}

TEST(Machine, CrashKeepsFlushedData)
{
    Fixture f;
    f.data[0] = 11.0;
    f.m.write(0, f.addr(0), 8);
    f.m.clflushopt(0, f.addr(0));
    // No fence: clflushopt hands the line to the ADR domain at issue,
    // so it survives anyway (the fence only orders visibility).
    f.m.loseVolatileState();
    f.arena.crashRestore();
    EXPECT_DOUBLE_EQ(f.data[0], 11.0);
}

TEST(Machine, DrainPersistsEverythingAndCleansLines)
{
    Fixture f;
    for (int i = 0; i < 64; ++i) {
        f.data[i] = i;
        f.m.write(0, f.addr(i), 8);
    }
    f.m.drainDirty();
    EXPECT_EQ(f.m.totalDirtyLines(), 0u);
    for (int i = 0; i < 64; ++i)
        EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[i]), i);
    // Lines stay resident (drain writes back without evicting).
    const auto misses = f.m.machineStats().l1Misses.value();
    f.m.read(0, f.addr(0), 8);
    EXPECT_EQ(f.m.machineStats().l1Misses.value(), misses);
}

TEST(Machine, VolatilityDurationTracked)
{
    Fixture f;
    f.data[0] = 1.0;
    f.m.write(0, f.addr(0), 8);
    f.m.tick(0, 4000);  // let time pass
    f.m.clflushopt(0, f.addr(0));
    f.m.sfence(0);
    EXPECT_GE(f.m.machineStats().maxVdur.value(), 1000u);
    EXPECT_EQ(f.m.machineStats().avgVdur.count(), 1u);
}

TEST(Machine, SyncAllCoresActsAsBarrier)
{
    Fixture f;
    f.m.tick(0, 4000);
    EXPECT_LT(f.m.coreCycles(1), f.m.coreCycles(0));
    f.m.syncAllCores();
    EXPECT_EQ(f.m.coreCycles(1), f.m.coreCycles(0));
    EXPECT_EQ(f.m.execCycles(), f.m.coreCycles(0));
}

TEST(Machine, SnapshotContainsCoreCounters)
{
    Fixture f;
    f.m.read(0, f.addr(0), 8);
    auto snap = f.m.snapshot();
    EXPECT_EQ(snap.at("loads"), 1.0);
    EXPECT_EQ(snap.at("nvmm_reads"), 1.0);
    EXPECT_GT(snap.at("exec_cycles"), 0.0);
}

TEST(Machine, ResetStatsZeroesCountersButKeepsCaches)
{
    Fixture f;
    f.m.read(0, f.addr(0), 8);
    f.m.resetStats();
    EXPECT_EQ(f.m.machineStats().loads.value(), 0u);
    // Cache contents survived: the re-read hits.
    f.m.read(0, f.addr(0), 8);
    EXPECT_EQ(f.m.machineStats().l1Misses.value(), 0u);
}

TEST(Machine, InclusionL2EvictionBackInvalidatesL1)
{
    Fixture f;
    f.data[0] = 1.0;
    f.m.write(0, f.addr(0), 8);
    // Keep block 0 hot in the L1 (hits do not refresh L2 LRU) while
    // streaming a large footprint: the L2 eventually evicts block 0
    // while the L1 still holds it, forcing a back-invalidation.
    for (int i = 8; i < 8 * 400; i += 8) {
        f.m.read(0, f.addr(0), 8);
        f.m.read(0, f.addr(i), 8);
    }
    EXPECT_GE(f.m.machineStats().backInvalidations.value(), 1u);
    // The dirty data was not lost: it reached NVMM on eviction.
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[0]), 1.0);
}

} // namespace
} // namespace lp::sim
