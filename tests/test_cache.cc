/**
 * @file
 * Unit tests for the set-associative cache: placement, LRU
 * replacement, invalidation, and sweep helpers.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace lp::sim
{
namespace
{

CacheGeometry
smallGeom()
{
    // 2 sets x 2 ways x 64B = 256B.
    return CacheGeometry{256, 2, 1};
}

TEST(CacheGeometry, SetCount)
{
    EXPECT_EQ(smallGeom().numSets(), 2u);
    EXPECT_EQ((CacheGeometry{64 * 1024, 8, 2}).numSets(), 128u);
}

TEST(Cache, MissThenHit)
{
    Cache c(smallGeom());
    EXPECT_EQ(c.find(0), nullptr);
    Line &victim = c.victimFor(0);
    EXPECT_FALSE(victim.valid());
    c.install(victim, 0, LineState::Exclusive);
    Line *l = c.find(0);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->blockAddr, 0u);
    EXPECT_TRUE(l->valid());
    EXPECT_FALSE(l->dirty());
}

TEST(Cache, DirtyTracking)
{
    Cache c(smallGeom());
    Line &w = c.victimFor(64);
    c.install(w, 64, LineState::Modified);
    EXPECT_TRUE(c.find(64)->dirty());
    EXPECT_EQ(c.dirtyLines(), 1u);
    EXPECT_EQ(c.residentLines(), 1u);
}

TEST(Cache, SetMapping)
{
    // With 2 sets, blocks 0 and 128 map to set 0; 64 and 192 to set 1.
    Cache c(smallGeom());
    c.install(c.victimFor(0), 0, LineState::Shared);
    c.install(c.victimFor(128), 128, LineState::Shared);
    c.install(c.victimFor(64), 64, LineState::Shared);
    // Set 0 is now full (ways = 2); a third block there must evict.
    Line &v = c.victimFor(256);
    EXPECT_TRUE(v.valid());
    EXPECT_TRUE(v.blockAddr == 0 || v.blockAddr == 128);
}

TEST(Cache, LruVictimIsLeastRecentlyTouched)
{
    Cache c(smallGeom());
    Line &w0 = c.victimFor(0);
    c.install(w0, 0, LineState::Shared);
    Line &w1 = c.victimFor(128);
    c.install(w1, 128, LineState::Shared);
    // Touch block 0 so 128 becomes LRU.
    c.touch(*c.find(0));
    Line &v = c.victimFor(256);
    EXPECT_EQ(v.blockAddr, 128u);
}

TEST(Cache, InvalidWaysPreferredAsVictims)
{
    Cache c(smallGeom());
    c.install(c.victimFor(0), 0, LineState::Shared);
    Line &v = c.victimFor(128);
    EXPECT_FALSE(v.valid());  // second way is free
}

TEST(Cache, Invalidate)
{
    Cache c(smallGeom());
    c.install(c.victimFor(0), 0, LineState::Modified);
    c.invalidate(0);
    EXPECT_EQ(c.find(0), nullptr);
    EXPECT_EQ(c.residentLines(), 0u);
    // Invalidating an absent block is a no-op.
    c.invalidate(64);
}

TEST(Cache, ForEachValidVisitsAllValid)
{
    Cache c(smallGeom());
    c.install(c.victimFor(0), 0, LineState::Shared);
    c.install(c.victimFor(64), 64, LineState::Modified);
    int count = 0;
    c.forEachValid([&](Line &) { ++count; });
    EXPECT_EQ(count, 2);
}

TEST(Cache, ResetDropsEverything)
{
    Cache c(smallGeom());
    c.install(c.victimFor(0), 0, LineState::Modified);
    c.install(c.victimFor(64), 64, LineState::Shared);
    c.reset();
    EXPECT_EQ(c.residentLines(), 0u);
    EXPECT_EQ(c.find(0), nullptr);
    EXPECT_EQ(c.find(64), nullptr);
}

TEST(Cache, CapacityHolds)
{
    // Fill a 64-line cache completely; all lines resident.
    Cache c(CacheGeometry{64 * blockBytes, 4, 1});
    for (Addr b = 0; b < 64; ++b) {
        Line &w = c.victimFor(b * blockBytes);
        EXPECT_FALSE(w.valid());
        c.install(w, b * blockBytes, LineState::Shared);
    }
    EXPECT_EQ(c.residentLines(), 64u);
}

} // namespace
} // namespace lp::sim
