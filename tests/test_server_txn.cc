/**
 * @file
 * End-to-end transaction tests against a live lp::server: commit and
 * read semantics over the wire on every backend, deterministic
 * wait-die abort surfacing (Status::Aborted), the 4-reader/2-writer
 * isolation stress -- a multi-shard SCAN's k-way merge must never
 * observe a partial transaction, so every scan of the account table
 * sees the exact invariant balance total -- and post-restart checks:
 * committed transactions survive, the stats document reports them,
 * and the reopened server keeps serving transactions.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hh"
#include "server/server.hh"

using namespace lp;
using namespace lp::server;

namespace
{

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/lpserver-txn-XXXXXX";
    const char *d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    return d ? d : "";
}

void
connectToServer(Client &c, const std::string &dataDir)
{
    const int port = waitForPortFile(dataDir, 30000);
    ASSERT_GT(port, 0) << "server did not publish a port";
    ASSERT_TRUE(c.connectTo("127.0.0.1", port));
}

TxnOp
top(TxnOp::Kind k, std::uint64_t key, std::uint64_t value = 0)
{
    TxnOp o;
    o.kind = k;
    o.key = key;
    o.value = value;
    return o;
}

const store::Backend kBackends[] = {store::Backend::Lp,
                                    store::Backend::EagerPerOp,
                                    store::Backend::Wal};

class ServerTxnBackends
    : public ::testing::TestWithParam<store::Backend>
{
};

/**
 * Wire-level semantics on every backend: read-your-writes inside the
 * transaction, Add resolution, cross-shard atomicity, and values
 * visible to plain GETs afterwards.
 */
TEST_P(ServerTxnBackends, CommitsAndReadsOverTheWire)
{
    const std::string dir = makeTempDir();
    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 4;
    cfg.backend = GetParam();
    cfg.quiet = true;
    Server srv(cfg);
    srv.start();

    Client c;
    connectToServer(c, dir);

    // Keys 1..8 land on several shards (routeShard hashes), so this
    // exercises both commit paths across the backends.
    auto res = c.txn({top(TxnOp::Kind::Get, 1),
                      top(TxnOp::Kind::Put, 1, 10),
                      top(TxnOp::Kind::Get, 1),
                      top(TxnOp::Kind::Add, 2, 5),
                      top(TxnOp::Kind::Put, 3, 30),
                      top(TxnOp::Kind::Del, 3),
                      top(TxnOp::Kind::Get, 3)});
    ASSERT_TRUE(res.has_value());
    ASSERT_EQ(res->status, Status::Ok);
    ASSERT_EQ(res->reads.size(), 3u);
    EXPECT_FALSE(res->reads[0].found);  // pre-state
    EXPECT_TRUE(res->reads[1].found);   // own write
    EXPECT_EQ(res->reads[1].value, 10u);
    EXPECT_FALSE(res->reads[2].found);  // own delete

    const auto g1 = c.get(1);
    ASSERT_TRUE(g1 && g1->status == Status::Ok);
    EXPECT_EQ(g1->value, 10u);
    const auto g2 = c.get(2);
    ASSERT_TRUE(g2 && g2->status == Status::Ok);
    EXPECT_EQ(g2->value, 5u);
    const auto g3 = c.get(3);
    ASSERT_TRUE(g3 && g3->status == Status::NotFound);

    // Read-only transaction: consistent snapshot of both keys.
    auto ro = c.txn({top(TxnOp::Kind::Get, 1),
                     top(TxnOp::Kind::Get, 2)});
    ASSERT_TRUE(ro && ro->status == Status::Ok);
    ASSERT_EQ(ro->reads.size(), 2u);
    EXPECT_EQ(ro->reads[0].value, 10u);
    EXPECT_EQ(ro->reads[1].value, 5u);

    srv.stop();
}

TEST_P(ServerTxnBackends, OutOfRangeKeyIsRejected)
{
    const std::string dir = makeTempDir();
    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 2;
    cfg.backend = GetParam();
    cfg.quiet = true;
    Server srv(cfg);
    srv.start();

    Client c;
    connectToServer(c, dir);
    auto res = c.txn({top(TxnOp::Kind::Put, ~std::uint64_t(0), 1)});
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->status, Status::Err);
    srv.stop();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ServerTxnBackends,
                         ::testing::ValuesIn(kBackends),
                         [](const auto &info) {
                             return store::backendName(info.param);
                         });

/**
 * Deterministic wait-die abort: a fast-path transaction holds its
 * write locks until its epoch commits, which a huge flush deadline
 * pins far in the future; a second (younger) transaction on the same
 * key must die with Status::Aborted, and a backoff client must count
 * the abort and eventually commit once the first ack releases.
 */
TEST(ServerTxnAbort, YoungerTxnDiesAndBackoffRecovers)
{
    const std::string dir = makeTempDir();
    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 1;
    cfg.backend = store::Backend::Lp;
    cfg.batchOps = 64;
    cfg.flushDeadlineUs = 1500000;  // locks held ~1.5s
    cfg.quiet = true;
    Server srv(cfg);
    srv.start();

    Client holder, contender;
    connectToServer(holder, dir);
    connectToServer(contender, dir);

    // The holder's txn stages one write and then waits for its epoch;
    // send without receiving so the lock window stays open.
    Request r;
    r.op = Op::Txn;
    r.id = 1;
    r.txn = {top(TxnOp::Kind::Put, 42, 7)};
    ASSERT_TRUE(holder.sendRequest(r));
    std::this_thread::sleep_for(std::chrono::milliseconds(200));

    // Younger txn on the same key: wait-die says die.
    auto aborted = contender.txn({top(TxnOp::Kind::Add, 42, 1)});
    ASSERT_TRUE(aborted.has_value());
    EXPECT_EQ(aborted->status, Status::Aborted);

    // Backoff path: first attempt aborts again (still inside the
    // window), later ones land after the deadline flush releases.
    RetryPolicy policy;
    policy.maxAttempts = 40;
    policy.baseDelayUs = 50000;
    policy.capDelayUs = 200000;
    auto res = contender.txnBackoff({top(TxnOp::Kind::Add, 42, 1)},
                                    policy, 5000);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->status, Status::Ok);
    EXPECT_GE(contender.retryCounters().aborts, 1u);

    const auto held = holder.recvResponse(10000);
    ASSERT_TRUE(held.has_value());
    EXPECT_EQ(held->status, Status::Ok);

    const auto g = contender.get(42);
    ASSERT_TRUE(g && g->status == Status::Ok);
    EXPECT_EQ(g->value, 8u);  // 7 put + 1 add
    srv.stop();
}

/**
 * The isolation stress plus post-restart checks (one server lifetime
 * feeding the next): 2 writer threads shuffle balance between 64
 * accounts with cross-shard transfer transactions while 4 reader
 * threads continuously SCAN the whole table. Shards partition the key
 * space, so a SCAN is a fan-out + k-way merge across every worker; if
 * it ever observed half a transfer, the scanned total would drift off
 * the invariant. Afterwards the server restarts from the same dataDir
 * and the balances -- and new transactions -- must still be intact.
 */
TEST(ServerTxnIsolation, ScansNeverSeePartialTransfers)
{
    const std::string dir = makeTempDir();
    ServerConfig cfg;
    cfg.dataDir = dir;
    cfg.shards = 4;
    cfg.backend = store::Backend::Lp;
    cfg.quiet = true;

    constexpr std::uint64_t kAccounts = 64;
    constexpr std::uint64_t kInitial = 1000;
    constexpr std::uint64_t kTotal = kAccounts * kInitial;
    constexpr int kTransfersPerWriter = 150;

    {
        Server srv(cfg);
        srv.start();

        {
            Client init;
            connectToServer(init, dir);
            for (std::uint64_t k = 1; k <= kAccounts; ++k) {
                const auto p = init.putBackoff(k, kInitial);
                ASSERT_TRUE(p && p->status == Status::Ok);
            }
        }

        std::atomic<bool> writersDone{false};
        std::atomic<int> scanViolations{0};
        std::atomic<std::uint64_t> scansRun{0};
        std::atomic<bool> failed{false};

        std::vector<std::thread> readers;
        for (int t = 0; t < 4; ++t) {
            readers.emplace_back([&, t] {
                Client c;
                const int port = waitForPortFile(dir, 30000);
                if (port <= 0 || !c.connectTo("127.0.0.1", port)) {
                    failed.store(true);
                    return;
                }
                while (!writersDone.load(std::memory_order_acquire)) {
                    const auto recs = c.scan(0, kAccounts + 8, 10000);
                    if (!recs) {
                        failed.store(true);
                        return;
                    }
                    std::uint64_t sum = 0;
                    for (const auto &rec : *recs)
                        sum += rec.value;
                    if (recs->size() != kAccounts || sum != kTotal)
                        scanViolations.fetch_add(1);
                    scansRun.fetch_add(1);
                    (void)t;
                }
            });
        }

        std::vector<std::thread> writers;
        for (int t = 0; t < 2; ++t) {
            writers.emplace_back([&, t] {
                Client c;
                const int port = waitForPortFile(dir, 30000);
                if (port <= 0 || !c.connectTo("127.0.0.1", port)) {
                    failed.store(true);
                    return;
                }
                RetryPolicy policy;
                policy.maxAttempts = 64;
                std::uint64_t seed = 0x9e37 + std::uint64_t(t);
                for (int i = 0; i < kTransfersPerWriter; ++i) {
                    seed = seed * 6364136223846793005ull + 1442695ull;
                    const std::uint64_t a = 1 + (seed >> 33) % kAccounts;
                    std::uint64_t b = 1 + (seed >> 13) % kAccounts;
                    if (b == a)
                        b = 1 + b % kAccounts;
                    const std::uint64_t amt = 1 + (seed >> 50) % 7;
                    // Transfer: atomic or not at all. Retry until it
                    // commits so the expected total stays exact.
                    for (;;) {
                        const auto res = c.txnBackoff(
                            {top(TxnOp::Kind::Add, a,
                                 std::uint64_t(0) - amt),
                             top(TxnOp::Kind::Add, b, amt)},
                            policy, 10000);
                        if (res && res->status == Status::Ok)
                            break;
                        if (!res) {  // connection lost: test over
                            failed.store(true);
                            return;
                        }
                    }
                }
            });
        }

        for (auto &th : writers)
            th.join();
        writersDone.store(true, std::memory_order_release);
        for (auto &th : readers)
            th.join();

        ASSERT_FALSE(failed.load()) << "a client lost its connection";
        EXPECT_EQ(scanViolations.load(), 0)
            << "a SCAN observed a partial transaction";
        EXPECT_GT(scansRun.load(), 0u);

        // Final ground truth through point GETs.
        Client c;
        connectToServer(c, dir);
        std::uint64_t sum = 0;
        for (std::uint64_t k = 1; k <= kAccounts; ++k) {
            const auto g = c.get(k);
            ASSERT_TRUE(g && g->status == Status::Ok);
            sum += g->value;
        }
        EXPECT_EQ(sum, kTotal) << "transfers minted/destroyed money";

        // The stats document reports transaction traffic.
        const auto st = c.stats();
        ASSERT_TRUE(st && st->status == Status::Ok);
        EXPECT_NE(st->body.find("\"txn_commits\""), std::string::npos);

        srv.stop();
    }

    // Restart from the same dataDir: committed transfers survive a
    // graceful shutdown (checkpoint + markClean), recovery reports no
    // in-flight transactions, and the server keeps serving them.
    {
        Server srv(cfg);
        srv.start();
        EXPECT_EQ(srv.recovery().txnRolledForward, 0u);
        EXPECT_EQ(srv.recovery().txnRolledBack, 0u);

        Client c;
        connectToServer(c, dir);
        std::uint64_t sum = 0;
        for (std::uint64_t k = 1; k <= kAccounts; ++k) {
            const auto g = c.get(k);
            ASSERT_TRUE(g && g->status == Status::Ok);
            sum += g->value;
        }
        EXPECT_EQ(sum, kTotal) << "restart lost committed transfers";

        const auto res = c.txn({top(TxnOp::Kind::Add, 1,
                                    std::uint64_t(0) - 5),
                                top(TxnOp::Kind::Add, 2, 5),
                                top(TxnOp::Kind::Get, 1)});
        ASSERT_TRUE(res && res->status == Status::Ok);
        srv.stop();
    }
}

} // namespace
