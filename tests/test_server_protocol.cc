/**
 * @file
 * Wire-protocol codec tests for lp::server (server/protocol.hh):
 * encoder/decoder round-trips, incremental (truncated-prefix)
 * decoding, and the malformed-input contract -- oversized lengths,
 * unknown opcodes, length/opcode mismatches, inconsistent BATCH
 * shapes, and random garbage must yield Decode::Malformed (or
 * NeedMore for honest prefixes), never a crash or an over-read.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "server/client.hh"
#include "server/protocol.hh"

using namespace lp::server;

namespace
{

std::vector<std::uint8_t>
enc(const Request &r)
{
    std::vector<std::uint8_t> out;
    encodeRequest(r, out);
    return out;
}

std::vector<std::uint8_t>
enc(const Response &r)
{
    std::vector<std::uint8_t> out;
    encodeResponse(r, out);
    return out;
}

/** Overwrite the little-endian u32 length field of a frame. */
void
setLen(std::vector<std::uint8_t> &f, std::uint32_t len)
{
    for (int i = 0; i < 4; ++i)
        f[std::size_t(i)] = std::uint8_t(len >> (8 * i));
}

} // namespace

TEST(ServerProtocol, RequestRoundTrips)
{
    Request cases[4];
    cases[0].op = Op::Get;
    cases[0].id = 7;
    cases[0].key = 123;
    cases[1].op = Op::Put;
    cases[1].id = ~0ull;
    cases[1].key = 0;
    cases[1].value = 0xdeadbeefcafef00dull;
    cases[2].op = Op::Del;
    cases[2].id = 1;
    cases[2].key = ~0ull;  // sentinel-range keys are a SERVER-side
                           // (Status::Err) concern, not a codec one
    cases[3].op = Op::Stats;
    cases[3].id = 42;

    for (const Request &in : cases) {
        const auto buf = enc(in);
        Request out;
        std::size_t used = 0;
        ASSERT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
                  Decode::Ok);
        EXPECT_EQ(used, buf.size());
        EXPECT_EQ(out.op, in.op);
        EXPECT_EQ(out.id, in.id);
        if (in.op == Op::Get || in.op == Op::Del ||
            in.op == Op::Put) {
            EXPECT_EQ(out.key, in.key);
        }
        if (in.op == Op::Put) {
            EXPECT_EQ(out.value, in.value);
        }
    }
}

TEST(ServerProtocol, BatchRoundTrip)
{
    Request in;
    in.op = Op::Batch;
    in.id = 99;
    for (std::uint64_t i = 0; i < 37; ++i)
        in.batch.push_back(BatchOp{i % 3 != 0, i * 11, i * 1000});

    const auto buf = enc(in);
    Request out;
    std::size_t used = 0;
    ASSERT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
              Decode::Ok);
    EXPECT_EQ(used, buf.size());
    ASSERT_EQ(out.batch.size(), in.batch.size());
    for (std::size_t i = 0; i < in.batch.size(); ++i) {
        EXPECT_EQ(out.batch[i].isPut, in.batch[i].isPut);
        EXPECT_EQ(out.batch[i].key, in.batch[i].key);
        if (in.batch[i].isPut) {
            EXPECT_EQ(out.batch[i].value, in.batch[i].value);
        }
    }
}

TEST(ServerProtocol, ResponseRoundTrips)
{
    Response ok;
    ok.status = Status::Ok;
    ok.id = 5;
    ok.hasValue = true;
    ok.value = 777;

    Response miss;
    miss.status = Status::NotFound;
    miss.id = 6;

    Response stats;
    stats.status = Status::Ok;
    stats.id = 8;
    stats.body = "{\"gets\":12,\"text\":\"\\\"quoted\\\"\"}";

    Response retry;
    retry.status = Status::Retry;
    retry.id = 9;

    Response fault;
    fault.status = Status::Fault;  // quarantined shard, read-only
    fault.id = 10;

    for (const Response &in : {ok, miss, stats, retry, fault}) {
        const auto buf = enc(in);
        Response out;
        std::size_t used = 0;
        ASSERT_EQ(decodeResponse(buf.data(), buf.size(), used, out),
                  Decode::Ok);
        EXPECT_EQ(used, buf.size());
        EXPECT_EQ(out.status, in.status);
        EXPECT_EQ(out.id, in.id);
        EXPECT_EQ(out.hasValue, in.hasValue);
        if (in.hasValue) {
            EXPECT_EQ(out.value, in.value);
        }
        EXPECT_EQ(out.body, in.body);
    }
}

TEST(ServerProtocol, PipelinedFramesDecodeInOrder)
{
    std::vector<std::uint8_t> stream;
    for (std::uint64_t i = 0; i < 10; ++i) {
        Request r;
        r.op = i % 2 ? Op::Put : Op::Get;
        r.id = i;
        r.key = i * 3;
        r.value = i * 7;
        encodeRequest(r, stream);
    }
    std::size_t at = 0;
    for (std::uint64_t i = 0; i < 10; ++i) {
        Request out;
        std::size_t used = 0;
        ASSERT_EQ(decodeRequest(stream.data() + at, stream.size() - at,
                                used, out),
                  Decode::Ok);
        EXPECT_EQ(out.id, i);
        at += used;
    }
    EXPECT_EQ(at, stream.size());
}

TEST(ServerProtocol, EveryTruncationIsNeedMore)
{
    // An honest prefix of a valid frame must never be Malformed (the
    // connection would be wrongly killed) and never Ok (the frame is
    // incomplete): exactly NeedMore, for every split point.
    Request r;
    r.op = Op::Batch;
    r.id = 3;
    r.batch = {BatchOp{true, 1, 2}, BatchOp{false, 3, 0}};
    const auto buf = enc(r);
    for (std::size_t n = 0; n < buf.size(); ++n) {
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), n, used, out),
                  Decode::NeedMore)
            << "prefix length " << n;
    }
}

TEST(ServerProtocol, OversizedLengthIsMalformed)
{
    auto buf = enc([] {
        Request r;
        r.op = Op::Get;
        r.id = 1;
        r.key = 2;
        return r;
    }());
    setLen(buf, std::uint32_t(maxFrameBytes + 1));
    Request out;
    std::size_t used = 0;
    // Malformed immediately -- the decoder must not wait for 1MiB+ of
    // bytes that will never arrive.
    EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
              Decode::Malformed);

    setLen(buf, 0);  // shorter than the mandatory op+id preamble
    EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
              Decode::Malformed);
}

TEST(ServerProtocol, LengthOpcodeMismatchIsMalformed)
{
    auto buf = enc([] {
        Request r;
        r.op = Op::Put;
        r.id = 1;
        r.key = 2;
        r.value = 3;
        return r;
    }());
    buf[4] = std::uint8_t(Op::Get);  // GET frames must be 17, not 25
    Request out;
    std::size_t used = 0;
    EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
              Decode::Malformed);

    buf[4] = 0;  // Header/unknown opcode
    EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
              Decode::Malformed);
    buf[4] = 200;
    EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
              Decode::Malformed);
}

TEST(ServerProtocol, BatchShapeViolationsAreMalformed)
{
    Request r;
    r.op = Op::Batch;
    r.id = 1;
    r.batch = {BatchOp{true, 10, 20}, BatchOp{false, 30, 0}};
    const auto good = enc(r);

    {
        auto buf = good;
        buf[13] = 100;  // count says 100, body holds 2
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
                  Decode::Malformed);
    }
    {
        auto buf = good;
        buf[13] = 1;  // count says 1: trailing bytes after the ops
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
                  Decode::Malformed);
    }
    {
        auto buf = good;
        buf[17] = std::uint8_t(Op::Stats);  // bad sub-opcode
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
                  Decode::Malformed);
    }
    {
        // count > maxBatchOps with a length field large enough to be
        // plausible: rejected by the count cap, not by reading ops.
        std::vector<std::uint8_t> buf(4 + 13 + 17, 0);
        setLen(buf, 13 + 17);
        buf[4] = std::uint8_t(Op::Batch);
        const std::uint32_t big = std::uint32_t(maxBatchOps + 1);
        for (int i = 0; i < 4; ++i)
            buf[std::size_t(13 + i)] = std::uint8_t(big >> (8 * i));
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
                  Decode::Malformed);
    }
}

TEST(ServerProtocol, ScanRoundTripsAndTruncationsAreNeedMore)
{
    Request in;
    in.op = Op::Scan;
    in.id = 31;
    in.key = 0xfeedfacec0ffee00ull;  // start_key
    in.limit = 77;

    const auto buf = enc(in);
    ASSERT_EQ(buf.size(), 4u + 21u);  // len + (op,id,start,limit)
    Request out;
    std::size_t used = 0;
    ASSERT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
              Decode::Ok);
    EXPECT_EQ(used, buf.size());
    EXPECT_EQ(out.op, Op::Scan);
    EXPECT_EQ(out.id, in.id);
    EXPECT_EQ(out.key, in.key);
    EXPECT_EQ(out.limit, in.limit);

    // Every honest prefix (a "truncated start_key" among them) is
    // NeedMore -- never Malformed, never Ok.
    for (std::size_t n = 0; n < buf.size(); ++n) {
        Request t;
        used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), n, used, t),
                  Decode::NeedMore)
            << "prefix length " << n;
    }
}

TEST(ServerProtocol, ScanLimitViolationsAreMalformed)
{
    Request r;
    r.op = Op::Scan;
    r.id = 1;
    r.key = 5;
    r.limit = 1;
    const auto good = enc(r);

    {
        auto buf = good;
        for (int i = 0; i < 4; ++i)  // limit = 0
            buf[std::size_t(21 + i)] = 0;
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
                  Decode::Malformed);
    }
    {
        // limit just past the response cap -- the decoder rejects it
        // up front instead of letting the server truncate silently.
        auto buf = good;
        const auto big = std::uint32_t(maxScanRecords + 1);
        for (int i = 0; i < 4; ++i)
            buf[std::size_t(21 + i)] = std::uint8_t(big >> (8 * i));
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
                  Decode::Malformed);
    }
    {
        auto buf = good;  // huge limit (all ones)
        for (int i = 0; i < 4; ++i)
            buf[std::size_t(21 + i)] = 0xff;
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
                  Decode::Malformed);
    }
    {
        auto buf = good;  // wrong length for SCAN (GET's 17)
        setLen(buf, 17);
        buf.resize(4 + 17);
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
                  Decode::Malformed);
    }
    {
        // Exactly the cap is legal.
        Request capped = r;
        capped.limit = std::uint32_t(maxScanRecords);
        const auto buf = enc(capped);
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
                  Decode::Ok);
        EXPECT_EQ(out.limit, maxScanRecords);
    }
}

TEST(ServerProtocol, ScanBodyCodecRoundTripsAndRejectsCorruption)
{
    std::vector<ScanRecord> in;
    for (std::uint64_t i = 0; i < 37; ++i)
        in.push_back(ScanRecord{i * 101, ~i});

    const std::string body = encodeScanBody(in);
    EXPECT_EQ(body.size(), 4 + 16 * in.size());
    std::vector<ScanRecord> out;
    ASSERT_TRUE(decodeScanBody(body, out));
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(out[i].key, in[i].key);
        EXPECT_EQ(out[i].value, in[i].value);
    }

    // Empty result is a valid body.
    ASSERT_TRUE(decodeScanBody(encodeScanBody({}), out));
    EXPECT_TRUE(out.empty());

    // Corruptions: truncated header, count/size mismatch (both
    // directions), trailing garbage, count beyond the cap.
    EXPECT_FALSE(decodeScanBody("", out));
    EXPECT_FALSE(decodeScanBody(body.substr(0, 3), out));
    EXPECT_FALSE(decodeScanBody(body.substr(0, body.size() - 1), out));
    EXPECT_FALSE(decodeScanBody(body + "x", out));
    {
        std::string big = body;
        big[0] = char(0xff);  // count claims 0xff...25
        big[1] = char(0xff);
        EXPECT_FALSE(decodeScanBody(big, out));
    }
}

TEST(ServerProtocol, UnknownResponseStatusIsMalformed)
{
    Response r;
    r.status = Status::Ok;
    r.id = 4;
    auto buf = enc(r);
    buf[4] = 17;
    Response out;
    std::size_t used = 0;
    EXPECT_EQ(decodeResponse(buf.data(), buf.size(), used, out),
              Decode::Malformed);

    // Status::Aborted (5) is the last known status: exactly 5
    // decodes, 6 is Malformed -- an old client against a new server
    // fails loudly rather than misreading an abort reply.
    buf[4] = 4;
    ASSERT_EQ(decodeResponse(buf.data(), buf.size(), used, out),
              Decode::Ok);
    EXPECT_EQ(out.status, Status::Fault);
    buf[4] = 5;
    ASSERT_EQ(decodeResponse(buf.data(), buf.size(), used, out),
              Decode::Ok);
    EXPECT_EQ(out.status, Status::Aborted);
    buf[4] = 6;
    EXPECT_EQ(decodeResponse(buf.data(), buf.size(), used, out),
              Decode::Malformed);
}

TEST(ServerProtocol, GarbageNeverCrashesOrOverReads)
{
    // Random buffers, decoded behind an exact-size heap slice so any
    // over-read trips ASan when the sanitizer leg runs. Every outcome
    // must be a clean verdict; Ok must consume within bounds.
    std::mt19937_64 rng(20260806);
    for (int trial = 0; trial < 2000; ++trial) {
        const std::size_t n = std::size_t(rng() % 96);
        std::vector<std::uint8_t> raw(n);
        for (auto &b : raw)
            b = std::uint8_t(rng());
        // Bias some trials toward near-valid frames.
        if (n >= 5 && trial % 3 == 0) {
            setLen(raw, std::uint32_t(rng() % 40));
            raw[4] = std::uint8_t(rng() % 10);  // incl. Op::Txn
        }
        auto slice = std::make_unique<std::uint8_t[]>(n ? n : 1);
        if (n > 0)
            std::memcpy(slice.get(), raw.data(), n);

        Request rq;
        std::size_t used = 0;
        if (decodeRequest(slice.get(), n, used, rq) == Decode::Ok) {
            EXPECT_LE(used, n);
        }
        Response rs;
        used = 0;
        if (decodeResponse(slice.get(), n, used, rs) == Decode::Ok) {
            EXPECT_LE(used, n);
        }
    }
}

TEST(ServerProtocol, StatusNames)
{
    EXPECT_EQ(statusName(Status::Ok), "ok");
    EXPECT_EQ(statusName(Status::NotFound), "not-found");
    EXPECT_EQ(statusName(Status::Retry), "retry");
    EXPECT_EQ(statusName(Status::Err), "err");
    EXPECT_EQ(statusName(Status::Fault), "fault");
    EXPECT_EQ(statusName(Status::Aborted), "aborted");
}

TEST(ServerProtocol, RetryBackoffIsBoundedAndJittered)
{
    // The Retry backoff helper (server/client.hh): every delay stays
    // within [0, capDelayUs] no matter how many attempts, the
    // sequence is deterministic for a given state word, and distinct
    // state words decorrelate (full jitter, not lockstep).
    RetryPolicy p;
    p.maxAttempts = 8;
    p.baseDelayUs = 100;
    p.capDelayUs = 50000;

    std::uint64_t s1 = 1, s1again = 1, s2 = 2;
    bool anyDiffer = false;
    for (int attempt = 0; attempt < 64; ++attempt) {
        const std::uint64_t d1 = retryDelayUs(p, attempt, s1);
        const std::uint64_t d1b = retryDelayUs(p, attempt, s1again);
        const std::uint64_t d2 = retryDelayUs(p, attempt, s2);
        EXPECT_LE(d1, p.capDelayUs) << "attempt " << attempt;
        // Early attempts are bounded by the (doubling) base, so a
        // retry storm starts gentle: attempt 0 sleeps at most base.
        if (attempt == 0) {
            EXPECT_LE(d1, p.baseDelayUs);
        }
        EXPECT_EQ(d1, d1b) << "non-deterministic at " << attempt;
        anyDiffer = anyDiffer || d1 != d2;
    }
    EXPECT_TRUE(anyDiffer) << "two clients backed off in lockstep";

    // Degenerate policy: zero delays never divide by zero.
    RetryPolicy zero;
    zero.baseDelayUs = 0;
    zero.capDelayUs = 0;
    std::uint64_t s = 7;
    EXPECT_EQ(retryDelayUs(zero, 3, s), 0u);
}

TEST(ServerProtocol, TxnRequestRoundTripsAllSubOps)
{
    Request in;
    in.op = Op::Txn;
    in.id = 0x1122334455667788ull;
    in.txn.push_back({TxnOp::Kind::Get, 10, 0});
    in.txn.push_back({TxnOp::Kind::Put, 11, 0xdeadbeefull});
    in.txn.push_back({TxnOp::Kind::Del, 12, 0});
    in.txn.push_back({TxnOp::Kind::Add, 13, ~0ull});  // wrapping -1
    in.txn.push_back({TxnOp::Kind::Get, 10, 0});      // dup key is a
                                                      // codec no-op

    const auto buf = enc(in);
    // Frame: u32 len + u8 op + u64 id + u32 n + ops, where GET/DEL
    // entries are 9 bytes and PUT/ADD entries are 17.
    EXPECT_EQ(buf.size(), 4u + 1 + 8 + 4 + 3 * 9 + 2 * 17);

    Request out;
    std::size_t used = 0;
    ASSERT_EQ(decodeRequest(buf.data(), buf.size(), used, out),
              Decode::Ok);
    EXPECT_EQ(used, buf.size());
    EXPECT_EQ(out.op, Op::Txn);
    EXPECT_EQ(out.id, in.id);
    ASSERT_EQ(out.txn.size(), in.txn.size());
    for (std::size_t i = 0; i < in.txn.size(); ++i) {
        EXPECT_EQ(out.txn[i].kind, in.txn[i].kind) << "op " << i;
        EXPECT_EQ(out.txn[i].key, in.txn[i].key) << "op " << i;
        if (in.txn[i].kind == TxnOp::Kind::Put ||
            in.txn[i].kind == TxnOp::Kind::Add) {
            EXPECT_EQ(out.txn[i].value, in.txn[i].value) << "op " << i;
        }
    }

    // Exactly the op-count cap is legal.
    Request capped;
    capped.op = Op::Txn;
    capped.id = 3;
    for (std::size_t i = 0; i < maxTxnOps; ++i)
        capped.txn.push_back({TxnOp::Kind::Add, i, i});
    const auto cbuf = enc(capped);
    ASSERT_EQ(decodeRequest(cbuf.data(), cbuf.size(), used, out),
              Decode::Ok);
    EXPECT_EQ(out.txn.size(), maxTxnOps);
}

TEST(ServerProtocol, TxnEveryTruncationIsNeedMore)
{
    Request in;
    in.op = Op::Txn;
    in.id = 9;
    in.txn.push_back({TxnOp::Kind::Put, 1, 2});
    in.txn.push_back({TxnOp::Kind::Get, 3, 0});
    in.txn.push_back({TxnOp::Kind::Add, 4, 5});
    const auto buf = enc(in);

    // Every proper prefix is an honest partial read, never Malformed:
    // the length field promises more bytes and the decoder must wait
    // for them before judging the interior shape.
    for (std::size_t n = 0; n < buf.size(); ++n) {
        Request out;
        std::size_t used = 0;
        EXPECT_EQ(decodeRequest(buf.data(), n, used, out),
                  Decode::NeedMore)
            << "prefix " << n;
    }
}

TEST(ServerProtocol, TxnShapeViolationsAreMalformed)
{
    Request in;
    in.op = Op::Txn;
    in.id = 5;
    in.txn.push_back({TxnOp::Kind::Put, 1, 2});
    in.txn.push_back({TxnOp::Kind::Get, 3, 0});
    const auto good = enc(in);
    Request out;
    std::size_t used = 0;
    ASSERT_EQ(decodeRequest(good.data(), good.size(), used, out),
              Decode::Ok);

    // The op-count field lives at byte offset 13 (after len, op, id).
    const std::size_t countOff = 13;

    {
        // Count claims one more op than the body holds.
        auto bad = good;
        bad[countOff] = 3;
        EXPECT_EQ(decodeRequest(bad.data(), bad.size(), used, out),
                  Decode::Malformed);
    }
    {
        // Count claims fewer ops than the body holds (trailing bytes
        // inside the frame).
        auto bad = good;
        bad[countOff] = 1;
        EXPECT_EQ(decodeRequest(bad.data(), bad.size(), used, out),
                  Decode::Malformed);
    }
    {
        // A zero-op transaction is meaningless; reject it outright
        // rather than inventing an empty commit.
        auto bad = good;
        bad[countOff] = 0;
        EXPECT_EQ(decodeRequest(bad.data(), bad.size(), used, out),
                  Decode::Malformed);
    }
    {
        // Count beyond the cap is rejected from the count field alone
        // -- even though this frame's length could never hold it.
        auto bad = good;
        bad[countOff] = std::uint8_t(maxTxnOps + 1);
        EXPECT_EQ(decodeRequest(bad.data(), bad.size(), used, out),
                  Decode::Malformed);
    }
    {
        // Unknown sub-op kind byte (first op's kind is at offset 17).
        auto bad = good;
        bad[17] = 0;
        EXPECT_EQ(decodeRequest(bad.data(), bad.size(), used, out),
                  Decode::Malformed);
        bad[17] = 5;
        EXPECT_EQ(decodeRequest(bad.data(), bad.size(), used, out),
                  Decode::Malformed);
    }
    {
        // Trailing garbage covered by the length field.
        auto bad = good;
        bad.push_back(0xab);
        setLen(bad, std::uint32_t(bad.size() - 4));
        EXPECT_EQ(decodeRequest(bad.data(), bad.size(), used, out),
                  Decode::Malformed);
    }
    {
        // Length too short to even hold the count field.
        auto bad = good;
        setLen(bad, 1 + 8 + 2);
        EXPECT_EQ(decodeRequest(bad.data(), bad.size(), used, out),
                  Decode::Malformed);
    }
}

TEST(ServerProtocol, TxnReadsBodyCodecRoundTripsAndRejectsCorruption)
{
    std::vector<TxnRead> in;
    for (std::uint64_t i = 0; i < 7; ++i)
        in.push_back(TxnRead{i % 2 == 0, i * 1000003});

    const std::string body = encodeTxnReadsBody(in);
    EXPECT_EQ(body.size(), 4 + 9 * in.size());
    std::vector<TxnRead> out;
    ASSERT_TRUE(decodeTxnReadsBody(body, out));
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(out[i].found, in[i].found);
        if (in[i].found) {
            EXPECT_EQ(out[i].value, in[i].value);
        }
    }

    // A read-only-free transaction has an empty (but present,
    // 4-byte) body; it can never be 8 bytes, so it never collides
    // with the GET value frame shape.
    const std::string empty = encodeTxnReadsBody({});
    EXPECT_EQ(empty.size(), 4u);
    ASSERT_TRUE(decodeTxnReadsBody(empty, out));
    EXPECT_TRUE(out.empty());

    // Corruptions mirror the SCAN body contract: truncated header,
    // count/size mismatch, trailing garbage, dirty found byte, count
    // beyond the cap.
    EXPECT_FALSE(decodeTxnReadsBody("", out));
    EXPECT_FALSE(decodeTxnReadsBody(body.substr(0, 3), out));
    EXPECT_FALSE(
        decodeTxnReadsBody(body.substr(0, body.size() - 1), out));
    EXPECT_FALSE(decodeTxnReadsBody(body + "x", out));
    {
        std::string dirty = body;
        dirty[4] = 2;  // found must be exactly 0 or 1
        EXPECT_FALSE(decodeTxnReadsBody(dirty, out));
    }
    {
        std::string big = body;
        big[0] = char(maxTxnOps + 1);
        big[1] = 0;
        EXPECT_FALSE(decodeTxnReadsBody(big, out));
    }
}
