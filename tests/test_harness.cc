/**
 * @file
 * Tests for the experiment harness: measurement plumbing, scheme
 * comparisons at harness level, and crash-series bookkeeping.
 */

#include <gtest/gtest.h>

#include "kernels/harness.hh"

namespace lp::kernels
{
namespace
{

sim::MachineConfig
testMachine()
{
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    cfg.l1 = {8 * 1024, 4, 2};
    cfg.l2 = {64 * 1024, 8, 11};
    return cfg;
}

KernelParams
tinyTmm()
{
    KernelParams p;
    p.n = 32;
    p.bsize = 8;
    p.threads = 4;
    return p;
}

TEST(Harness, RunSchemeReportsStats)
{
    const auto out = runScheme(KernelId::Tmm, Scheme::Base, tinyTmm(),
                               testMachine());
    EXPECT_TRUE(out.verified);
    EXPECT_GT(out.execCycles, 0.0);
    EXPECT_GT(out.stat("loads"), 0.0);
    EXPECT_GT(out.stat("stores"), 0.0);
    EXPECT_EQ(out.stat("nonexistent_counter"), 0.0);
    EXPECT_DOUBLE_EQ(out.nvmmWrites, out.stat("nvmm_writes"));
}

TEST(Harness, DeterministicAcrossRuns)
{
    const auto a = runScheme(KernelId::Tmm, Scheme::Lp, tinyTmm(),
                             testMachine());
    const auto b = runScheme(KernelId::Tmm, Scheme::Lp, tinyTmm(),
                             testMachine());
    EXPECT_DOUBLE_EQ(a.execCycles, b.execCycles);
    EXPECT_DOUBLE_EQ(a.nvmmWrites, b.nvmmWrites);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(Harness, SeedChangesData)
{
    KernelParams p1 = tinyTmm();
    KernelParams p2 = tinyTmm();
    p2.seed = 999;
    const auto a = runScheme(KernelId::Tmm, Scheme::Base, p1,
                             testMachine());
    const auto b = runScheme(KernelId::Tmm, Scheme::Base, p2,
                             testMachine());
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
}

TEST(Harness, LpOverheadIsSmallFractionOfBase)
{
    // The paper's central claim in miniature: LP execution time is
    // within a few percent of base.
    const auto base = runScheme(KernelId::Tmm, Scheme::Base,
                                tinyTmm(), testMachine());
    const auto lp = runScheme(KernelId::Tmm, Scheme::Lp, tinyTmm(),
                              testMachine());
    EXPECT_LT(lp.execCycles / base.execCycles, 1.15);
    EXPECT_LT(lp.nvmmWrites / std::max(base.nvmmWrites, 1.0), 1.30);
}

TEST(Harness, CrashOutcomeCountsRecoveryCycles)
{
    const auto out = runLpWithCrash(KernelId::Tmm, tinyTmm(),
                                    testMachine(), 2000);
    EXPECT_TRUE(out.crashed);
    EXPECT_GT(out.recoveryCycles, 0.0);
}

TEST(Harness, EmptyCrashSeriesJustRuns)
{
    const auto out = runLpWithCrashes(KernelId::Tmm, tinyTmm(),
                                      testMachine(), {});
    EXPECT_FALSE(out.crashed);
    EXPECT_EQ(out.crashes, 0);
    EXPECT_TRUE(out.verified);
}

} // namespace
} // namespace lp::kernels
