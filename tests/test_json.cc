/**
 * @file
 * Tests for the JSON stats emitter: escaping, number formats,
 * nesting, and snapshot conversion.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/json.hh"

namespace lp::stats
{
namespace
{

TEST(Json, Numbers)
{
    EXPECT_EQ(JsonValue(0.0).render(), "0");
    EXPECT_EQ(JsonValue(42).render(), "42");
    EXPECT_EQ(JsonValue(-7).render(), "-7");
    EXPECT_EQ(JsonValue(1.5).render(), "1.5");
    EXPECT_EQ(JsonValue(std::uint64_t{123456789}).render(),
              "123456789");
    // Non-finite values degrade to null, never invalid JSON.
    EXPECT_EQ(JsonValue(std::nan("")).render(), "null");
}

TEST(Json, Strings)
{
    EXPECT_EQ(JsonValue("plain").render(), "\"plain\"");
    EXPECT_EQ(JsonValue("a\"b").render(), "\"a\\\"b\"");
    EXPECT_EQ(JsonValue("back\\slash").render(),
              "\"back\\\\slash\"");
    EXPECT_EQ(JsonValue("line\nbreak").render(),
              "\"line\\nbreak\"");
    EXPECT_EQ(JsonValue(std::string(1, '\x01')).render(),
              "\"\\u0001\"");
}

TEST(Json, Booleans)
{
    EXPECT_EQ(JsonValue(true).render(), "1");
    EXPECT_EQ(JsonValue(false).render(), "0");
}

TEST(Json, Objects)
{
    JsonValue::Object inner;
    inner.emplace("x", JsonValue(1));
    JsonValue::Object outer;
    outer.emplace("name", JsonValue("tmm"));
    outer.emplace("stats", JsonValue(inner));
    EXPECT_EQ(JsonValue(outer).render(),
              "{\"name\":\"tmm\",\"stats\":{\"x\":1}}");
}

TEST(Json, EmptyObject)
{
    EXPECT_EQ(JsonValue(JsonValue::Object{}).render(), "{}");
}

TEST(Json, SnapshotRoundTrip)
{
    Snapshot snap;
    snap["nvmm_writes"] = 1234;
    snap["exec_cycles"] = 5.5e6;
    const auto obj = toJson(snap);
    const std::string s = JsonValue(obj).render();
    EXPECT_NE(s.find("\"nvmm_writes\":1234"), std::string::npos);
    EXPECT_NE(s.find("\"exec_cycles\":5500000"), std::string::npos);
}

} // namespace
} // namespace lp::stats
