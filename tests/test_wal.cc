/**
 * @file
 * Tests for write-ahead-logging durable transactions (Figure 2):
 * commit durability, abort/undo after a crash at every protocol step.
 */

#include <gtest/gtest.h>

#include "ep/wal.hh"
#include "kernels/env.hh"
#include "pmem/arena.hh"
#include "sim/machine.hh"

namespace lp::ep
{
namespace
{

using kernels::SimEnv;

struct Fixture
{
    Fixture()
        : arena(1 << 20), machine(config(), &arena),
          log(arena, 64)
    {
        data = arena.alloc<double>(64);
        for (int i = 0; i < 64; ++i)
            data[i] = i;
        arena.persistAll();
    }

    static sim::MachineConfig
    config()
    {
        sim::MachineConfig cfg;
        cfg.numCores = 1;
        cfg.l1 = {1024, 2, 2};
        cfg.l2 = {4096, 4, 11};
        return cfg;
    }

    SimEnv
    env()
    {
        return SimEnv(machine, arena, 0);
    }

    void
    crash()
    {
        machine.loseVolatileState();
        arena.crashRestore();
    }

    pmem::PersistentArena arena;
    sim::Machine machine;
    WalArea log;
    double *data;
};

TEST(Wal, CommittedTransactionIsDurable)
{
    Fixture f;
    auto env = f.env();
    WalTx<SimEnv> tx(env, f.log);
    tx.logWord(&f.data[0]);
    tx.logWord(&f.data[1]);
    tx.seal();
    env.st(&f.data[0], 100.0);
    env.st(&f.data[1], 101.0);
    tx.commit();

    f.crash();
    EXPECT_DOUBLE_EQ(f.data[0], 100.0);
    EXPECT_DOUBLE_EQ(f.data[1], 101.0);
    EXPECT_FALSE(f.log.interrupted());
}

TEST(Wal, CrashBeforeSealLeavesOldData)
{
    Fixture f;
    auto env = f.env();
    WalTx<SimEnv> tx(env, f.log);
    tx.logWord(&f.data[0]);
    // Crash before seal: no data was modified yet, status is idle.
    f.crash();
    EXPECT_FALSE(f.log.interrupted());
    EXPECT_DOUBLE_EQ(f.data[0], 0.0);
}

TEST(Wal, CrashAfterSealUndoRestoresPreImages)
{
    Fixture f;
    auto env = f.env();
    WalTx<SimEnv> tx(env, f.log);
    // data[0] and data[8] live in different cache blocks, so the
    // flush below persists only the first.
    tx.logWord(&f.data[0]);
    tx.logWord(&f.data[8]);
    tx.seal();
    env.st(&f.data[0], 100.0);
    env.st(&f.data[8], 101.0);
    // Force part of the mutated data durable to create a
    // half-updated durable image, then crash without committing.
    env.clflushopt(&f.data[0]);
    env.sfence();
    f.crash();

    ASSERT_TRUE(f.log.interrupted());
    EXPECT_DOUBLE_EQ(f.data[0], 100.0);  // persisted early
    EXPECT_DOUBLE_EQ(f.data[8], 8.0);    // reverted naturally

    auto env2 = f.env();
    EXPECT_TRUE(applyUndo(env2, f.log));
    EXPECT_DOUBLE_EQ(f.data[0], 0.0);    // undone
    EXPECT_DOUBLE_EQ(f.data[8], 8.0);
    EXPECT_FALSE(f.log.interrupted());

    // The undo itself is durable.
    f.crash();
    EXPECT_DOUBLE_EQ(f.data[0], 0.0);
    EXPECT_FALSE(f.log.interrupted());
}

TEST(Wal, ApplyUndoOnIdleLogIsNoOp)
{
    Fixture f;
    auto env = f.env();
    EXPECT_FALSE(applyUndo(env, f.log));
}

TEST(Wal, TransactionReuseResetsCount)
{
    Fixture f;
    auto env = f.env();
    {
        WalTx<SimEnv> tx(env, f.log);
        tx.logWord(&f.data[0]);
        tx.seal();
        env.st(&f.data[0], 5.0);
        tx.commit();
    }
    {
        WalTx<SimEnv> tx(env, f.log);
        tx.logWord(&f.data[1]);
        tx.seal();
        env.st(&f.data[1], 6.0);
        tx.commit();
    }
    EXPECT_EQ(*f.log.count(), 1u);
    f.crash();
    EXPECT_DOUBLE_EQ(f.data[0], 5.0);
    EXPECT_DOUBLE_EQ(f.data[1], 6.0);
}

TEST(Wal, FourFencesPerTransaction)
{
    Fixture f;
    auto env = f.env();
    const auto fences_before =
        f.machine.machineStats().fences.value();
    WalTx<SimEnv> tx(env, f.log);
    tx.logWord(&f.data[0]);
    tx.seal();
    env.st(&f.data[0], 9.0);
    tx.commit();
    EXPECT_EQ(f.machine.machineStats().fences.value(),
              fences_before + 4);
}

TEST(WalDeathTest, OverflowPanics)
{
    Fixture f;
    auto env = f.env();
    WalTx<SimEnv> tx(env, f.log);
    for (int i = 0; i < 64; ++i)
        tx.logWord(&f.data[i]);
    EXPECT_DEATH(tx.logWord(&f.data[0]), "overflow");
}

} // namespace
} // namespace lp::ep
