/**
 * @file
 * Crash-semantics tests for obs::FlightRing, the crash-persistent
 * flight recorder (docs/observability.md): record/seal/recover round
 * trips, wraparound across a seal, torn-slot and unsealed-tail
 * discard, the generation handshake across incarnations, the
 * shard-file placement contract `postmortem` depends on, and a real
 * fork + SIGKILL mid-write run recovered from the raw backing file --
 * the same failure envelope the server's recovery tests use.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "obs/flight.hh"
#include "obs/trace.hh"
#include "pmem/arena.hh"

namespace lp::obs
{
namespace
{

/** Heap arena big enough for one ring of @p events plus slack. */
std::size_t
arenaBytes(std::uint32_t events)
{
    return FlightRing::bytesFor(events) + 4096;
}

TEST(FlightRing, RecordSealRecoverRoundTrip)
{
    pmem::PersistentArena arena(arenaBytes(64));
    FlightRing flight(arena, 64, 3);
    for (std::uint64_t i = 0; i < 10; ++i)
        flight.record(TraceEvent{"epoch_commit", 3, 1000 + i, 50, i,
                                 i | 1});
    flight.seal();

    const auto rec = FlightRing::recover(
        static_cast<const std::uint8_t *>(flight.raw()),
        FlightRing::bytesFor(64));
    ASSERT_TRUE(rec.valid);
    EXPECT_EQ(rec.sealedSeq, 10u);
    EXPECT_EQ(rec.tid, 3u);
    EXPECT_EQ(rec.rejected, 0u);
    ASSERT_EQ(rec.events.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_STREQ(rec.events[i].name, "epoch_commit");
        EXPECT_EQ(rec.events[i].tsNs, 1000 + i);
        EXPECT_EQ(rec.events[i].durNs, 50u);
        EXPECT_EQ(rec.events[i].arg, i);
        EXPECT_EQ(rec.events[i].flowId, i | 1);
    }
}

TEST(FlightRing, UnknownNameCrossesAsUnknown)
{
    pmem::PersistentArena arena(arenaBytes(8));
    FlightRing flight(arena, 8, 0);
    flight.record(TraceEvent{"not-a-known-span", 0, 1, 2, 3, 0});
    flight.seal();
    const auto rec = FlightRing::recover(
        static_cast<const std::uint8_t *>(flight.raw()),
        FlightRing::bytesFor(8));
    ASSERT_TRUE(rec.valid);
    ASSERT_EQ(rec.events.size(), 1u);
    EXPECT_STREQ(rec.events[0].name, "?");
}

TEST(FlightRing, UnsealedTailIsDiscarded)
{
    pmem::PersistentArena arena(arenaBytes(64));
    FlightRing flight(arena, 64, 0);
    for (std::uint64_t i = 0; i < 6; ++i)
        flight.record(TraceEvent{"queue", 0, i, 1, i, 0});
    flight.seal();
    // Recorded but never sealed: the watermark still says 6.
    for (std::uint64_t i = 6; i < 11; ++i)
        flight.record(TraceEvent{"queue", 0, i, 1, i, 0});

    const auto rec = FlightRing::recover(
        static_cast<const std::uint8_t *>(flight.raw()),
        FlightRing::bytesFor(64));
    ASSERT_TRUE(rec.valid);
    EXPECT_EQ(rec.sealedSeq, 6u);
    EXPECT_EQ(rec.events.size(), 6u);
}

TEST(FlightRing, WraparoundAcrossSealKeepsNewestWindow)
{
    // Capacity 8; 20 sealed events: only the last 8 are recoverable.
    pmem::PersistentArena arena(arenaBytes(8));
    FlightRing flight(arena, 8, 0);
    for (std::uint64_t i = 0; i < 20; ++i)
        flight.record(TraceEvent{"queue", 0, i, 1, i, 0});
    flight.seal();

    const std::uint8_t *raw =
        static_cast<const std::uint8_t *>(flight.raw());
    {
        const auto rec =
            FlightRing::recover(raw, FlightRing::bytesFor(8));
        ASSERT_TRUE(rec.valid);
        EXPECT_EQ(rec.sealedSeq, 20u);
        EXPECT_EQ(rec.rejected, 0u);
        ASSERT_EQ(rec.events.size(), 8u);
        for (std::size_t i = 0; i < 8; ++i)
            EXPECT_EQ(rec.events[i].arg, 12 + i);
    }
    // Post-seal records overwrite the oldest sealed slots. Their
    // embedded seqs no longer match the sealed window, so recovery
    // counts them out instead of splicing new data into old spans.
    for (std::uint64_t i = 20; i < 23; ++i)
        flight.record(TraceEvent{"queue", 0, i, 1, i, 0});
    {
        const auto rec =
            FlightRing::recover(raw, FlightRing::bytesFor(8));
        ASSERT_TRUE(rec.valid);
        EXPECT_EQ(rec.sealedSeq, 20u);
        EXPECT_EQ(rec.rejected, 3u);
        ASSERT_EQ(rec.events.size(), 5u);
        for (std::size_t i = 0; i < 5; ++i)
            EXPECT_EQ(rec.events[i].arg, 15 + i);
    }
}

TEST(FlightRing, TornSlotFailsItsChecksumOnly)
{
    pmem::PersistentArena arena(arenaBytes(16));
    FlightRing flight(arena, 16, 0);
    for (std::uint64_t i = 0; i < 10; ++i)
        flight.record(TraceEvent{"queue", 0, i, 1, i, 0});
    flight.seal();

    // Tear one byte of slot 4's payload in a copy of the image (the
    // live ring stays pristine).
    std::vector<std::uint8_t> image(FlightRing::bytesFor(16));
    std::memcpy(image.data(), flight.raw(), image.size());
    image[2 * sizeof(FlightSlot) + 4 * sizeof(FlightSlot) + 8] ^= 0x40;

    const auto rec =
        FlightRing::recover(image.data(), image.size());
    ASSERT_TRUE(rec.valid);
    EXPECT_EQ(rec.rejected, 1u);
    ASSERT_EQ(rec.events.size(), 9u);
    for (const TraceEvent &e : rec.events)
        EXPECT_NE(e.arg, 4u);
}

TEST(FlightRing, GarbageIsNotARing)
{
    std::vector<std::uint8_t> junk(4096, 0xa5);
    EXPECT_FALSE(FlightRing::recover(junk.data(), junk.size()).valid);
    EXPECT_FALSE(FlightRing::recover(nullptr, 0).valid);
    // A valid header whose capacity overruns the readable region
    // must be rejected, not read past the end.
    pmem::PersistentArena arena(arenaBytes(64));
    FlightRing flight(arena, 64, 0);
    flight.record(TraceEvent{"queue", 0, 1, 1, 1, 0});
    flight.seal();
    EXPECT_FALSE(
        FlightRing::recover(
            static_cast<const std::uint8_t *>(flight.raw()),
            3 * sizeof(FlightSlot))
            .valid);
}

TEST(FlightRing, RestartAdoptsAndSupersedesThePriorGeneration)
{
    char path[] = "/tmp/lp-flight-gen-XXXXXX";
    const int fd = mkstemp(path);
    ASSERT_GE(fd, 0);
    ::close(fd);
    ::unlink(path); // arena recreates it
    std::uint64_t firstGen = 0;
    {
        pmem::PersistentArena arena(arenaBytes(16), path);
        FlightRing flight(arena, 16, 0);
        for (std::uint64_t i = 0; i < 5; ++i)
            flight.record(TraceEvent{"queue", 0, i, 1, i, 0});
        flight.seal();
        const auto rec = FlightRing::recover(
            static_cast<const std::uint8_t *>(flight.raw()),
            FlightRing::bytesFor(16));
        ASSERT_TRUE(rec.valid);
        firstGen = rec.gen;
        EXPECT_EQ(rec.events.size(), 5u);
    }
    {
        // The next incarnation claims the ring with an empty seal at
        // a later generation: its recovery view starts clean (this is
        // why postmortem must run BEFORE a restart).
        pmem::PersistentArena arena(arenaBytes(16), path);
        FlightRing flight(arena, 16, 0);
        const auto rec = FlightRing::recover(
            static_cast<const std::uint8_t *>(flight.raw()),
            FlightRing::bytesFor(16));
        ASSERT_TRUE(rec.valid);
        EXPECT_GT(rec.gen, firstGen);
        EXPECT_EQ(rec.sealedSeq, 0u);
        EXPECT_TRUE(rec.events.empty());
    }
    ::unlink(path);
}

TEST(FlightRing, FirstAllocationLandsAtTheArenaBaseOffset)
{
    // The placement contract `lazyper_cli postmortem` depends on:
    // allocated first, the ring's headers sit exactly one block into
    // the backing file.
    pmem::PersistentArena arena(arenaBytes(16));
    FlightRing flight(arena, 16, 0);
    EXPECT_EQ(arena.addrOf(flight.raw()), Addr(blockBytes));
}

TEST(FlightRing, TeesFromATraceRingBeyondItsCapacity)
{
    // The volatile ring fills and drops; the flight copy keeps
    // wrapping, so the persistent view always holds the newest
    // window rather than the oldest.
    pmem::PersistentArena arena(arenaBytes(64));
    FlightRing flight(arena, 64, 0);
    TraceRing ring(8);
    ring.attachSink(&flight);
    for (std::uint64_t i = 0; i < 40; ++i)
        traceInstant(&ring, "deadline_commit", i);
    flight.seal();
    EXPECT_EQ(ring.dropped(), 32u);
    EXPECT_EQ(flight.recorded(), 40u);
    const auto rec = FlightRing::recover(
        static_cast<const std::uint8_t *>(flight.raw()),
        FlightRing::bytesFor(64));
    ASSERT_TRUE(rec.valid);
    EXPECT_EQ(rec.events.size(), 40u);
}

TEST(FlightRing, SigkillMidWriteRecoversTheSealedPrefix)
{
    char path[] = "/tmp/lp-flight-kill-XXXXXX";
    const int tfd = mkstemp(path);
    ASSERT_GE(tfd, 0);
    ::close(tfd);
    ::unlink(path);

    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: record, seal at 100, keep recording, then die the
        // hard way mid-stream. No cleanup runs; the page cache keeps
        // every plain store.
        pmem::PersistentArena arena(arenaBytes(256), path);
        FlightRing flight(arena, 256, 7);
        for (std::uint64_t i = 0; i < 100; ++i)
            flight.record(
                TraceEvent{"commit_wait", 7, i, 10, i, i | 1});
        flight.seal();
        for (std::uint64_t i = 100;; ++i) {
            flight.record(
                TraceEvent{"commit_wait", 7, i, 10, i, i | 1});
            if (i == 150)
                ::kill(::getpid(), SIGKILL);
        }
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Decode the raw file exactly the way postmortem does.
    const int fd = ::open(path, O_RDONLY);
    ASSERT_GE(fd, 0);
    struct stat st{};
    ASSERT_EQ(::fstat(fd, &st), 0);
    void *map = ::mmap(nullptr, std::size_t(st.st_size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
    ::close(fd);
    ASSERT_NE(map, MAP_FAILED);
    const auto rec = FlightRing::recover(
        static_cast<const std::uint8_t *>(map) + blockBytes,
        std::size_t(st.st_size) - blockBytes);
    ASSERT_TRUE(rec.valid);
    EXPECT_EQ(rec.sealedSeq, 100u);
    EXPECT_EQ(rec.tid, 7u);
    EXPECT_EQ(rec.rejected, 0u);
    ASSERT_EQ(rec.events.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) {
        EXPECT_STREQ(rec.events[i].name, "commit_wait");
        EXPECT_EQ(rec.events[i].arg, i);
    }
    ::munmap(map, std::size_t(st.st_size));
    ::unlink(path);
}

} // namespace
} // namespace lp::obs
