/**
 * @file
 * Crash matrix for the KV store: every backend is crashed after N
 * persistent stores AND after N region commits, for a sweep of N that
 * lands inside batch appends, digest commits, folds, WAL transactions
 * and (at small N, where little or nothing has drained to NVMM yet)
 * torn-slot and torn-journal states. After each crash the store must
 * recover to exactly the golden replay of its committed batches, and
 * after recovery it must keep serving a further workload correctly.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "store/driver.hh"

namespace lp::store
{
namespace
{

sim::MachineConfig
smallMachine()
{
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    cfg.l1 = {8 * 1024, 4, 2};
    cfg.l2 = {32 * 1024, 8, 11};  // small: real evictions, torn lines
    return cfg;
}

StoreConfig
smallConfig()
{
    StoreConfig cfg;
    cfg.capacity = 1024;
    cfg.shards = 2;
    cfg.batchOps = 8;
    cfg.foldBatches = 8;  // fold every 64 mutations per shard
    return cfg;
}

using Combo = std::tuple<Backend, bool, std::uint64_t>;

class StoreCrashMatrix : public ::testing::TestWithParam<Combo>
{
};

TEST_P(StoreCrashMatrix, RecoversToCommittedPrefix)
{
    const auto [backend, byRegions, point] = GetParam();

    StoreCrashSpec spec;
    spec.records = 256;
    spec.preOps = 1600;
    spec.postOps = 400;
    spec.delFraction = 0.2;
    spec.byRegions = byRegions;
    spec.point = point;
    spec.seed = 7 + point;

    const StoreCrashOutcome out =
        runStoreWithCrash(backend, smallConfig(), spec, smallMachine());
    EXPECT_TRUE(out.committedStateVerified)
        << backendName(backend) << " crash point " << point
        << (byRegions ? " regions" : " stores")
        << ": recovered state != committed-batch replay";
    EXPECT_TRUE(out.finalStateVerified)
        << backendName(backend) << " crash point " << point
        << (byRegions ? " regions" : " stores")
        << ": store wrong after post-recovery workload";
    EXPECT_TRUE(out.scanStateVerified)
        << backendName(backend) << " crash point " << point
        << (byRegions ? " regions" : " stores")
        << ": full-range scan through the rebuilt index disagreed "
           "with point-GET recovery (torn epoch visible to SCAN?)";
}

// Store-count crash points: early ones hit half-written slots and
// journal lines that never drained; late ones land inside folds and
// replay windows. 1600 mutations make roughly 5k-6k persistent
// stores on the lazy backend, so the largest points also cover "crash
// during the final checkpoint".
const std::uint64_t kStorePoints[] = {1,   2,   3,    5,    9,
                                      17,  33,  65,   129,  257,
                                      700, 1500, 2900, 4400};

// Region-commit crash points: 1600 mutations over 2 shards commit
// ~200 batches on the batched backends (the eager backend counts
// every op as a region, so the same points land mid-stream there).
const std::uint64_t kRegionPoints[] = {1,  2,  3,  5,   9,
                                       20, 45, 90, 140, 190};

INSTANTIATE_TEST_SUITE_P(
    AfterNStores, StoreCrashMatrix,
    ::testing::Combine(::testing::Values(Backend::Lp,
                                         Backend::EagerPerOp,
                                         Backend::Wal),
                       ::testing::Values(false),
                       ::testing::ValuesIn(kStorePoints)),
    [](const auto &info) {
        return backendName(std::get<0>(info.param)) + "_stores_" +
               std::to_string(std::get<2>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    AfterNRegions, StoreCrashMatrix,
    ::testing::Combine(::testing::Values(Backend::Lp,
                                         Backend::EagerPerOp,
                                         Backend::Wal),
                       ::testing::Values(true),
                       ::testing::ValuesIn(kRegionPoints)),
    [](const auto &info) {
        return backendName(std::get<0>(info.param)) + "_regions_" +
               std::to_string(std::get<2>(info.param));
    });

/**
 * Torn-write sweep: the crash additionally XOR-corrupts the last N
 * bytes of shard 0's sealed journal prefix -- a partial-page device
 * write dying with the machine, not a clean truncation. Recovery
 * must either parity-repair the torn region (when the XOR group
 * still has one clean reconstruction) or cleanly discard the
 * affected epochs; runStoreWithCrash verifies the result against
 * the golden replay of exactly what recovery reported committed, so
 * serving a torn batch fails the test either way.
 */
using TornCombo = std::tuple<std::uint64_t, std::size_t>;

class StoreTornWriteMatrix : public ::testing::TestWithParam<TornCombo>
{
};

TEST_P(StoreTornWriteMatrix, TornJournalRepairsOrDiscards)
{
    const auto [point, tornBytes] = GetParam();

    StoreCrashSpec spec;
    spec.records = 256;
    spec.preOps = 1600;
    spec.postOps = 400;
    spec.delFraction = 0.2;
    spec.byRegions = true;  // tear right after an epoch commit
    spec.point = point;
    spec.seed = 31 + point;
    spec.tornBytes = tornBytes;

    const StoreCrashOutcome out = runStoreWithCrash(
        Backend::Lp, smallConfig(), spec, smallMachine());
    EXPECT_TRUE(out.committedStateVerified)
        << "torn " << tornBytes << "B at region point " << point
        << ": recovered state != committed-batch replay "
           "(torn epoch served?)";
    EXPECT_TRUE(out.scanStateVerified)
        << "torn " << tornBytes << "B at region point " << point
        << ": scan observed a torn epoch";
    EXPECT_TRUE(out.finalStateVerified)
        << "torn " << tornBytes << "B at region point " << point
        << ": store wrong after post-recovery workload";
}

// Tear sizes: sub-region (parity can fully reconstruct one dirty
// region), exactly one region, and multi-region tears that force
// epoch discard when two regions of a parity group rot together.
const std::size_t kTornBytes[] = {8, 64, 96, 200};
const std::uint64_t kTornPoints[] = {2, 9, 45, 140};

INSTANTIATE_TEST_SUITE_P(
    TornWrites, StoreTornWriteMatrix,
    ::testing::Combine(::testing::ValuesIn(kTornPoints),
                       ::testing::ValuesIn(kTornBytes)),
    [](const auto &info) {
        return "lp_regions_" + std::to_string(std::get<0>(info.param)) +
               "_torn_" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace lp::store
