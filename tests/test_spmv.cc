/**
 * @file
 * Tests for the SpMV extension kernel: correctness under every
 * scheme, keyed-table usage, irregular-region load balance, and
 * crash recovery.
 */

#include <gtest/gtest.h>

#include "kernels/harness.hh"
#include "kernels/spmv.hh"

namespace lp::kernels
{
namespace
{

sim::MachineConfig
testMachine(int cores = 4)
{
    sim::MachineConfig cfg;
    cfg.numCores = cores;
    cfg.l1 = {8 * 1024, 4, 2};
    cfg.l2 = {32 * 1024, 8, 11};
    return cfg;
}

KernelParams
smallParams()
{
    KernelParams p;
    p.n = 128;
    p.bsize = 16;
    p.threads = 4;
    p.iterations = 5;
    return p;
}

TEST(Spmv, BaseProducesGoldenResult)
{
    const auto out = runScheme(KernelId::Spmv, Scheme::Base,
                               smallParams(), testMachine());
    EXPECT_TRUE(out.verified) << out.maxAbsError;
}

TEST(Spmv, LpProducesGoldenResultWithNoFlushes)
{
    const auto out = runScheme(KernelId::Spmv, Scheme::Lp,
                               smallParams(), testMachine());
    EXPECT_TRUE(out.verified) << out.maxAbsError;
    EXPECT_EQ(out.stat("flush_instrs"), 0.0);
    EXPECT_EQ(out.stat("fences"), 0.0);
}

TEST(Spmv, EagerRecomputeProducesGoldenResult)
{
    const auto out = runScheme(KernelId::Spmv, Scheme::EagerRecompute,
                               smallParams(), testMachine());
    EXPECT_TRUE(out.verified) << out.maxAbsError;
    EXPECT_GT(out.stat("fences"), 0.0);
}

TEST(Spmv, SingleIterationWorks)
{
    KernelParams p = smallParams();
    p.iterations = 1;
    const auto out = runScheme(KernelId::Spmv, Scheme::Lp, p,
                               testMachine());
    EXPECT_TRUE(out.verified);
}

TEST(Spmv, RegionKeysAreUnique)
{
    std::set<std::uint64_t> keys;
    for (int s = 0; s < 64; ++s)
        for (int band = 0; band < 256; ++band)
            keys.insert(SpmvWorkload::regionKey(s, band));
    EXPECT_EQ(keys.size(), 64u * 256u);
}

TEST(Spmv, KeyedTableHoldsOneSlotPerRegion)
{
    const auto p = smallParams();
    SimContext ctx(testMachine(),
                   arenaBytesFor(KernelId::Spmv, p));
    SpmvWorkload w(p, ctx);
    w.run(Scheme::Lp);
    EXPECT_EQ(w.table().occupancy(), w.numRegions());
}

class SpmvCrashSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SpmvCrashSweep, RecoversToGolden)
{
    const auto p = smallParams();
    const auto cfg = testMachine();
    const auto full = runScheme(KernelId::Spmv, Scheme::Lp, p, cfg);
    const auto total =
        static_cast<std::uint64_t>(full.stat("stores"));
    const std::uint64_t point =
        1 + (total - 2) * static_cast<std::uint64_t>(GetParam()) / 7;
    const auto out = runLpWithCrash(KernelId::Spmv, p, cfg, point);
    EXPECT_TRUE(out.crashed);
    EXPECT_TRUE(out.verified)
        << "crash point " << point << " err " << out.maxAbsError;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpmvCrashSweep,
                         ::testing::Range(0, 8));

TEST(Spmv, RepeatedCrashesConverge)
{
    const auto p = smallParams();
    const auto cfg = testMachine();
    const auto full = runScheme(KernelId::Spmv, Scheme::Lp, p, cfg);
    const auto total =
        static_cast<std::uint64_t>(full.stat("stores"));
    const auto out = runLpWithCrashes(KernelId::Spmv, p, cfg,
                                      {total / 2, total / 6});
    EXPECT_EQ(out.crashes, 2);
    EXPECT_TRUE(out.verified);
}

TEST(Spmv, ChecksumKindsAllRecover)
{
    for (core::ChecksumKind kind :
         {core::ChecksumKind::Parity, core::ChecksumKind::Adler32}) {
        KernelParams p = smallParams();
        p.checksum = kind;
        const auto cfg = testMachine();
        const auto full = runScheme(KernelId::Spmv, Scheme::Lp, p,
                                    cfg);
        const auto total =
            static_cast<std::uint64_t>(full.stat("stores"));
        const auto out = runLpWithCrash(KernelId::Spmv, p, cfg,
                                        total / 2);
        EXPECT_TRUE(out.verified)
            << core::checksumKindName(kind);
    }
}

} // namespace
} // namespace lp::kernels
