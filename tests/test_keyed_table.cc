/**
 * @file
 * Tests for the keyed (collision-handling) checksum table: claiming,
 * probing, collision separation, idempotence, durability, and the
 * full-table failure mode.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/rng.hh"
#include "lp/keyed_table.hh"
#include "pmem/arena.hh"

namespace lp::core
{
namespace
{

TEST(KeyedTable, RoundsSizeToPowerOfTwo)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 100);
    EXPECT_EQ(t.size(), 128u);
    KeyedChecksumTable t2(arena, 0);
    EXPECT_EQ(t2.size(), 2u);
}

TEST(KeyedTable, ClaimIsIdempotent)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 16);
    const auto s1 = t.claimSlot(42);
    const auto s2 = t.claimSlot(42);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(t.occupancy(), 1u);
}

TEST(KeyedTable, DistinctKeysGetDistinctSlots)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 64);
    std::set<std::size_t> slots;
    for (std::uint64_t k = 1; k <= 40; ++k)
        slots.insert(t.claimSlot(k));
    EXPECT_EQ(slots.size(), 40u);
    EXPECT_EQ(t.occupancy(), 40u);
}

TEST(KeyedTable, FindBeforeClaimIsNpos)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 16);
    EXPECT_EQ(t.findSlot(7), KeyedChecksumTable::npos);
    t.claimSlot(7);
    EXPECT_NE(t.findSlot(7), KeyedChecksumTable::npos);
}

TEST(KeyedTable, CollidingKeysProbeApart)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 8);
    // With only 8 buckets, dense keys must collide; all must still
    // resolve to unique slots with intact digests.
    for (std::uint64_t k = 0; k < 7; ++k) {
        const auto s = t.claimSlot(k * 1000);
        *t.digestPtr(s) = k;
    }
    for (std::uint64_t k = 0; k < 7; ++k) {
        const auto s = t.findSlot(k * 1000);
        ASSERT_NE(s, KeyedChecksumTable::npos);
        EXPECT_EQ(t.storedDigest(s), k);
        EXPECT_EQ(t.storedKey(s), k * 1000);
    }
}

TEST(KeyedTable, MatchesChecksDigest)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 16);
    const auto s = t.claimSlot(5);
    *t.digestPtr(s) = 0x1234;
    EXPECT_TRUE(t.matches(5, 0x1234));
    EXPECT_FALSE(t.matches(5, 0x9999));
    EXPECT_FALSE(t.matches(6, 0x1234));  // never claimed
}

TEST(KeyedTable, UnpersistedClaimRevertsOnCrash)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 16);
    arena.persistAll();  // empty table durable
    const auto s = t.claimSlot(9);
    *t.digestPtr(s) = 77;
    arena.crashRestore();
    // The claim never persisted: recovery sees "never committed".
    EXPECT_EQ(t.findSlot(9), KeyedChecksumTable::npos);
}

TEST(KeyedTable, PersistedSlotSurvivesCrash)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 16);
    arena.persistAll();
    const auto s = t.claimSlot(9);
    *t.digestPtr(s) = 77;
    // Key and digest share a block (16B slot, 64B block aligned
    // pairs): persist the slot's block.
    arena.persistBlock(blockAlign(arena.addrOf(t.keyPtr(s))));
    arena.crashRestore();
    ASSERT_EQ(t.findSlot(9), s);
    EXPECT_TRUE(t.matches(9, 77));
}

TEST(KeyedTable, RandomizedClaimFindAgree)
{
    pmem::PersistentArena arena(1 << 20);
    KeyedChecksumTable t(arena, 1024);
    Rng rng(55);
    std::set<std::uint64_t> keys;
    while (keys.size() < 600)
        keys.insert(rng.next64() >> 1);  // avoid emptyKey
    for (auto k : keys)
        *t.digestPtr(t.claimSlot(k)) = k ^ 0xabc;
    for (auto k : keys)
        EXPECT_TRUE(t.matches(k, k ^ 0xabc));
    EXPECT_EQ(t.occupancy(), 600u);
}

TEST(KeyedTableDeathTest, OverLoadFactorIsFatal)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 8);  // 8 slots, claim limit 7/8 = 7
    for (std::uint64_t k = 1; k <= 7; ++k)
        t.claimSlot(k);
    // The 8th distinct key would fill the table completely; the
    // load-factor guard refuses with a sizing hint instead of letting
    // probe chains degrade toward a full-table infinite probe.
    EXPECT_EXIT(t.claimSlot(99), ::testing::ExitedWithCode(1),
                "load-factor");
}

TEST(KeyedTable, GuardResyncsAfterCrashRestore)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 8);
    arena.persistAll();  // empty table durable
    for (std::uint64_t k = 1; k <= 7; ++k)
        t.claimSlot(k);
    // None of the claims persisted; after the crash the table is
    // empty again and the volatile claim counter must not make the
    // guard fire spuriously.
    arena.crashRestore();
    for (std::uint64_t k = 10; k <= 16; ++k)
        t.claimSlot(k);
    EXPECT_EQ(t.occupancy(), 7u);
}

TEST(KeyedTableDeathTest, ReservedKeyPanics)
{
    pmem::PersistentArena arena(1 << 16);
    KeyedChecksumTable t(arena, 4);
    EXPECT_DEATH(t.claimSlot(KeyedChecksumTable::emptyKey),
                 "reserved");
}

} // namespace
} // namespace lp::core
