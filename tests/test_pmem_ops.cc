/**
 * @file
 * Tests for the Eager Persistency range helpers: every block
 * overlapping a range must be flushed, regardless of alignment.
 */

#include <gtest/gtest.h>

#include "ep/pmem_ops.hh"
#include "kernels/env.hh"
#include "pmem/arena.hh"
#include "sim/machine.hh"

namespace lp::ep
{
namespace
{

using kernels::SimEnv;

struct Fixture
{
    Fixture()
        : arena(1 << 20), machine(config(), &arena)
    {
        data = arena.alloc<double>(256);
    }

    static sim::MachineConfig
    config()
    {
        sim::MachineConfig cfg;
        cfg.numCores = 1;
        cfg.l1 = {2048, 4, 2};
        cfg.l2 = {8192, 4, 11};
        return cfg;
    }

    /** Dirty a run of doubles through the cache. */
    void
    dirty(SimEnv &env, int first, int count)
    {
        for (int i = first; i < first + count; ++i)
            env.st(&data[i], 1.0 + i);
    }

    pmem::PersistentArena arena;
    sim::Machine machine;
    double *data;
};

TEST(PmemOps, FlushRangeCoversAllBlocks)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    f.dirty(env, 0, 64);  // 8 blocks
    flushRange(env, f.data, 64 * sizeof(double));
    env.sfence();
    EXPECT_EQ(f.machine.machineStats().flushWrites.value(), 8u);
    for (int i = 0; i < 64; ++i)
        EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[i]), 1.0 + i);
}

TEST(PmemOps, UnalignedRangeStillCoversEveryBlock)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    // Dirty doubles 3..20: blocks 0, 1, 2 (data is block-aligned).
    f.dirty(env, 3, 18);
    flushRange(env, &f.data[3], 18 * sizeof(double));
    env.sfence();
    EXPECT_EQ(f.machine.totalDirtyLines(), 0u);
    for (int i = 3; i < 21; ++i)
        EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[i]), 1.0 + i);
}

TEST(PmemOps, SingleByteRangeFlushesOneBlock)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    f.dirty(env, 0, 1);
    flushRange(env, f.data, 1);
    env.sfence();
    EXPECT_EQ(f.machine.machineStats().flushInstrs.value(), 1u);
}

TEST(PmemOps, ZeroLengthRangeFlushesItsBlock)
{
    // A zero-byte range still names one block (defensive contract).
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    flushRange(env, f.data, 0);
    EXPECT_EQ(f.machine.machineStats().flushInstrs.value(), 1u);
}

TEST(PmemOps, PersistRangeIsDurableOnReturn)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    f.dirty(env, 0, 16);
    persistRange(env, f.data, 16 * sizeof(double));
    // No separate fence: persistRange includes it.
    f.machine.loseVolatileState();
    f.arena.crashRestore();
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(f.data[i], 1.0 + i);
}

TEST(PmemOps, PersistObjectPersistsExactlyTheObject)
{
    Fixture f;
    SimEnv env(f.machine, f.arena, 0);
    f.dirty(env, 0, 16);  // blocks 0 and 1 dirty
    persistObject(env, &f.data[0]);
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[0]), 1.0);
    // Block 1 (doubles 8..15) was not flushed.
    EXPECT_DOUBLE_EQ(f.arena.peekDurable(&f.data[8]), 0.0);
}

} // namespace
} // namespace lp::ep
