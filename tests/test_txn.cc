/**
 * @file
 * Unit and crash-matrix tests for lp::txn: the wait-die lock table's
 * invariants (timestamp-ordered grants, die-on-release, in-place
 * upgrades), TxnKv transaction semantics on every backend
 * (read-your-writes, Add resolution, cross-shard golden equivalence,
 * durability-gated slot frees), and the commit-protocol crash matrix:
 * the embedded facade is killed at every named protocol step on every
 * backend, recovered, and compared against the golden model -- steps
 * before the decision append must roll back, steps at or after it
 * must roll forward, and the bank-transfer sum invariant must hold
 * either way.
 */

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "base/rng.hh"
#include "kernels/env.hh"
#include "kernels/workload.hh"
#include "store/kv_store.hh"
#include "txn/lock_table.hh"
#include "txn/txn_kv.hh"

namespace lp::txn
{
namespace
{

// ---------------------------------------------------------------- //
// LockTable units
// ---------------------------------------------------------------- //

TEST(LockTable, ReadersShareWriterExcludes)
{
    LockTable lt;
    EXPECT_EQ(lt.acquire(1, 7, LockMode::Read), Acquire::Granted);
    EXPECT_EQ(lt.acquire(2, 7, LockMode::Read), Acquire::Granted);
    EXPECT_FALSE(lt.writeLocked(7));
    // A write request against two readers: t3 is younger than both
    // holders, so wait-die kills it.
    EXPECT_EQ(lt.acquire(3, 7, LockMode::Write), Acquire::Die);
    LockTable::Events ev;
    lt.release(1, 7, ev);
    lt.release(2, 7, ev);
    EXPECT_TRUE(ev.granted.empty());
    EXPECT_TRUE(ev.died.empty());
    EXPECT_EQ(lt.lockedKeys(), 0u);
}

TEST(LockTable, WaitDieDirection)
{
    LockTable lt;
    ASSERT_EQ(lt.acquire(5, 9, LockMode::Write), Acquire::Granted);
    EXPECT_TRUE(lt.writeLocked(9));
    EXPECT_TRUE(lt.holdsWrite(5, 9));
    // Older requester waits; younger requester dies.
    EXPECT_EQ(lt.acquire(2, 9, LockMode::Write), Acquire::Waiting);
    EXPECT_EQ(lt.acquire(8, 9, LockMode::Write), Acquire::Die);
    // Re-acquire by the holder is a no-op.
    EXPECT_EQ(lt.acquire(5, 9, LockMode::Write), Acquire::Granted);
    LockTable::Events ev;
    lt.release(5, 9, ev);
    ASSERT_EQ(ev.granted.size(), 1u);
    EXPECT_EQ(ev.granted[0], 2u);
    EXPECT_TRUE(lt.holdsWrite(2, 9));
}

/**
 * Grants go out in timestamp order (oldest first), NOT FIFO, and the
 * grant round kills any waiter left younger than a new holder --
 * granting FIFO would put an older waiter behind a younger holder,
 * recreating exactly the deadlock edge wait-die forbids.
 */
TEST(LockTable, GrantsOldestFirstAndKillsTheYoung)
{
    LockTable lt;
    ASSERT_EQ(lt.acquire(5, 3, LockMode::Write), Acquire::Granted);
    // Enqueue younger-first so FIFO order and timestamp order differ.
    EXPECT_EQ(lt.acquire(3, 3, LockMode::Write), Acquire::Waiting);
    EXPECT_EQ(lt.acquire(1, 3, LockMode::Write), Acquire::Waiting);
    LockTable::Events ev;
    lt.release(5, 3, ev);
    ASSERT_EQ(ev.granted.size(), 1u);
    EXPECT_EQ(ev.granted[0], 1u);  // oldest, despite arriving last
    ASSERT_EQ(ev.died.size(), 1u);
    EXPECT_EQ(ev.died[0], 3u);     // younger than new holder 1
    EXPECT_TRUE(lt.holdsWrite(1, 3));
}

TEST(LockTable, SoleReaderUpgradesInPlace)
{
    LockTable lt;
    ASSERT_EQ(lt.acquire(4, 11, LockMode::Read), Acquire::Granted);
    EXPECT_EQ(lt.acquire(4, 11, LockMode::Write), Acquire::Granted);
    EXPECT_TRUE(lt.holdsWrite(4, 11));
}

TEST(LockTable, ContendedUpgradeWaitsThenUpgrades)
{
    LockTable lt;
    ASSERT_EQ(lt.acquire(1, 11, LockMode::Read), Acquire::Granted);
    ASSERT_EQ(lt.acquire(2, 11, LockMode::Read), Acquire::Granted);
    // t1's upgrade waits on reader t2 (t1 is older); t2's own upgrade
    // attempt dies (younger than reader t1).
    EXPECT_EQ(lt.acquire(1, 11, LockMode::Write), Acquire::Waiting);
    EXPECT_EQ(lt.acquire(2, 11, LockMode::Write), Acquire::Die);
    LockTable::Events ev;
    lt.release(2, 11, ev);
    ASSERT_EQ(ev.granted.size(), 1u);
    EXPECT_EQ(ev.granted[0], 1u);
    EXPECT_TRUE(lt.holdsWrite(1, 11));
}

TEST(LockTable, RangeAndPointPredicates)
{
    LockTable lt;
    ASSERT_EQ(lt.acquire(1, 100, LockMode::Write), Acquire::Granted);
    ASSERT_EQ(lt.acquire(2, 500, LockMode::Read), Acquire::Granted);
    EXPECT_TRUE(lt.writeLocked(100));
    EXPECT_FALSE(lt.writeLocked(500));  // read locks don't block
    EXPECT_TRUE(lt.anyWriteLockedAtOrAbove(0));
    EXPECT_TRUE(lt.anyWriteLockedAtOrAbove(100));
    EXPECT_FALSE(lt.anyWriteLockedAtOrAbove(101));
    LockTable::Events ev;
    lt.releaseAll(1, {100}, ev);
    EXPECT_FALSE(lt.anyWriteLockedAtOrAbove(0));
}

// ---------------------------------------------------------------- //
// TxnKv semantics
// ---------------------------------------------------------------- //

sim::MachineConfig
smallMachine()
{
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    cfg.l1 = {8 * 1024, 4, 2};
    cfg.l2 = {32 * 1024, 8, 11};  // small: force real evictions
    return cfg;
}

TxnKv<kernels::SimEnv>::Config
smallConfig()
{
    TxnKv<kernels::SimEnv>::Config cfg;
    cfg.store.capacity = 1024;
    cfg.store.shards = 2;
    cfg.store.batchOps = 8;
    cfg.store.foldBatches = 8;
    cfg.prepareSlots = 8;
    cfg.decisionEntries = 256;
    return cfg;
}

using SimTxnKv = TxnKv<kernels::SimEnv>;
using TOp = SimTxnKv::Op;

TOp
op(TOp::Kind k, std::uint64_t key, std::uint64_t value = 0)
{
    TOp o;
    o.kind = k;
    o.key = key;
    o.value = value;
    return o;
}

struct SimFixture
{
    kernels::SimContext ctx;
    SimTxnKv txn;
    kernels::SimEnv env;

    SimFixture(const SimTxnKv::Config &cfg, store::Backend backend)
        : ctx(smallMachine(), SimTxnKv::arenaBytes(cfg)),
          txn(ctx.arena, cfg, backend),
          env(ctx.machine, ctx.arena, 0, &ctx.crash)
    {
        ctx.arena.persistAll();
    }
};

const store::Backend kBackends[] = {store::Backend::Lp,
                                    store::Backend::EagerPerOp,
                                    store::Backend::Wal};

class TxnBackends : public ::testing::TestWithParam<store::Backend>
{
};

TEST_P(TxnBackends, ReadYourWritesAndOverlayResolution)
{
    SimFixture f(smallConfig(), GetParam());
    auto r = f.txn.run(f.env, {
        op(TOp::Kind::Get, 10),            // pre-state: absent
        op(TOp::Kind::Put, 10, 7),
        op(TOp::Kind::Get, 10),            // own write visible
        op(TOp::Kind::Add, 10, 5),         // 7 + 5
        op(TOp::Kind::Get, 10),
        op(TOp::Kind::Add, 11, std::uint64_t(0) - 3),  // absent = 0
        op(TOp::Kind::Del, 10),
        op(TOp::Kind::Get, 10),            // own delete visible
    });
    ASSERT_TRUE(r.committed);
    ASSERT_EQ(r.reads.size(), 4u);
    EXPECT_EQ(r.reads[0], std::make_pair(false, std::uint64_t(0)));
    EXPECT_EQ(r.reads[1], std::make_pair(true, std::uint64_t(7)));
    EXPECT_EQ(r.reads[2], std::make_pair(true, std::uint64_t(12)));
    EXPECT_EQ(r.reads[3], std::make_pair(false, std::uint64_t(0)));
    EXPECT_EQ(f.txn.kv().get(f.env, 10), std::nullopt);
    EXPECT_EQ(f.txn.kv().get(f.env, 11),
              std::optional<std::uint64_t>(std::uint64_t(0) - 3));
}

/**
 * Random multi-key transactions (both commit paths) against a golden
 * map applied atomically: the store must equal the golden map on
 * every backend, and the two paths must never mix within a txn.
 */
TEST_P(TxnBackends, RandomTxnsMatchGoldenModel)
{
    SimFixture f(smallConfig(), GetParam());
    std::map<std::uint64_t, std::uint64_t> golden;
    Rng rng(41);
    for (int t = 0; t < 120; ++t) {
        std::vector<TOp> ops;
        const int n = 1 + int(rng.below(5));
        for (int i = 0; i < n; ++i) {
            const std::uint64_t key = 1 + rng.below(60);
            const auto roll = rng.below(4);
            if (roll == 0)
                ops.push_back(op(TOp::Kind::Get, key));
            else if (roll == 1)
                ops.push_back(op(TOp::Kind::Del, key));
            else if (roll == 2)
                ops.push_back(op(TOp::Kind::Put, key, rng.below(1000)));
            else
                ops.push_back(op(TOp::Kind::Add, key, rng.below(9)));
        }
        const bool forceGeneral = rng.chance(0.5);
        ASSERT_TRUE(f.txn.run(f.env, ops, {}, forceGeneral).committed);
        // Golden: the same overlay semantics, applied atomically.
        for (const auto &o : ops) {
            switch (o.kind) {
              case TOp::Kind::Get:
                break;
              case TOp::Kind::Put:
                golden[o.key] = o.value;
                break;
              case TOp::Kind::Del:
                golden.erase(o.key);
                break;
              case TOp::Kind::Add: {
                const auto it = golden.find(o.key);
                const std::uint64_t base =
                    it == golden.end() ? 0 : it->second;
                golden[o.key] = base + o.value;
                break;
              }
            }
        }
    }
    f.txn.checkpoint(f.env);
    EXPECT_EQ(f.txn.kv().snapshot(), golden);
}

TEST_P(TxnBackends, SlotFreesGateOnDurability)
{
    SimFixture f(smallConfig(), GetParam());
    ASSERT_TRUE(f.txn.run(f.env,
                          {op(TOp::Kind::Put, 1, 10),
                           op(TOp::Kind::Put, 2, 20)},
                          {}, /*forceGeneral=*/true)
                    .committed);
    // The applied slot waits for its marker epoch to become durable.
    // LP and WAL staged the applies into a still-open batch epoch, so
    // the free is pending until a checkpoint seals it; the eager
    // backend persisted each apply in place, so its slots freed the
    // moment the transaction completed.
    if (GetParam() == store::Backend::EagerPerOp) {
        EXPECT_EQ(f.txn.pendingSlotFrees(), 0u);
    } else {
        EXPECT_GT(f.txn.pendingSlotFrees(), 0u);
    }
    f.txn.checkpoint(f.env);
    EXPECT_EQ(f.txn.pendingSlotFrees(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, TxnBackends,
                         ::testing::ValuesIn(kBackends),
                         [](const auto &info) {
                             return store::backendName(info.param);
                         });

// ---------------------------------------------------------------- //
// Commit-protocol crash matrix
// ---------------------------------------------------------------- //

using Step = SimTxnKv::Step;

const char *
stepName(Step s)
{
    switch (s) {
      case Step::PrePrepare:   return "PrePrepare";
      case Step::MidPrepare:   return "MidPrepare";
      case Step::PostPrepare:  return "PostPrepare";
      case Step::PostDecision: return "PostDecision";
      case Step::MidApply:     return "MidApply";
      case Step::PreMarker:    return "PreMarker";
      case Step::PostMarker:   return "PostMarker";
    }
    return "?";
}

using CrashCombo = std::tuple<store::Backend, Step>;

class TxnCrashMatrix : public ::testing::TestWithParam<CrashCombo>
{
};

/**
 * A bank transfer is killed at one named protocol step; after
 * recovery the store must equal the golden model WITHOUT the
 * transaction when the crash landed before the decision append, and
 * WITH it when it landed at or after (the append is the commit
 * point). The total balance is invariant either way.
 */
TEST_P(TxnCrashMatrix, RecoversToTheDecisionRule)
{
    const auto [backend, step] = GetParam();
    SimFixture f(smallConfig(), backend);

    // Seed accounts across both shards, all durable, plus golden.
    std::map<std::uint64_t, std::uint64_t> golden;
    for (std::uint64_t k = 1; k <= 8; ++k) {
        ASSERT_TRUE(
            f.txn.run(f.env, {op(TOp::Kind::Put, k, 100)}).committed);
        golden[k] = 100;
    }
    f.txn.checkpoint(f.env);

    // Two keys on different shards so the transfer is cross-shard.
    const std::uint64_t src = 1;
    std::uint64_t dst = 2;
    while (f.txn.kv().shardOf(dst) == f.txn.kv().shardOf(src))
        ++dst;
    ASSERT_LE(dst, 8u);

    bool crashed = false;
    try {
        f.txn.run(f.env,
                  {op(TOp::Kind::Add, src, std::uint64_t(0) - 25),
                   op(TOp::Kind::Add, dst, 25)},
                  [&](Step s) {
                      if (s == step)
                          throw pmem::CrashException{};
                  },
                  /*forceGeneral=*/true);
    } catch (const pmem::CrashException &) {
        crashed = true;
        f.ctx.crash.disarm();
        f.ctx.sched.clear();
        f.ctx.machine.loseVolatileState();
        f.ctx.arena.crashRestore();
    }
    ASSERT_TRUE(crashed) << stepName(step) << " hook never fired";

    const TxnRecoveryReport rep = f.txn.recover(f.env);
    const bool decided = step >= Step::PostDecision;
    if (decided) {
        golden[src] -= 25;
        golden[dst] += 25;
        EXPECT_GE(rep.rolledForward + rep.skipped, 1u)
            << stepName(step);
        EXPECT_EQ(rep.rolledBack, 0u) << stepName(step);
    } else if (step != Step::PrePrepare) {
        // At least one vote was published and no decision landed.
        EXPECT_GE(rep.rolledBack, 1u) << stepName(step);
        // The transfer itself must not roll forward -- the snapshot
        // check below pins that. The counter may still be nonzero
        // for the eager backend: slot frees are lazy stores, so the
        // crash resurrects the seeds' already-freed slots, and
        // eager's epoch numbering restarts at zero on recovery,
        // putting those stale markers above the watermark. Their
        // write-sets are resolved values, so the re-apply is
        // idempotent by construction.
        if (backend != store::Backend::EagerPerOp) {
            EXPECT_EQ(rep.rolledForward, 0u) << stepName(step);
        }
    }
    EXPECT_EQ(f.txn.kv().snapshot(), golden)
        << store::backendName(backend) << " @ " << stepName(step)
        << ": half a transaction survived";
    std::uint64_t sum = 0;
    for (const auto &[k, v] : f.txn.kv().snapshot())
        sum += v;
    EXPECT_EQ(sum, 800u) << "transfer minted or destroyed money";

    // The recovered instance keeps serving transactions.
    ASSERT_TRUE(f.txn.run(f.env,
                          {op(TOp::Kind::Add, src, 1),
                           op(TOp::Kind::Add, dst, std::uint64_t(0) - 1)},
                          {}, true)
                    .committed);
    golden[src] += 1;
    golden[dst] -= 1;
    f.txn.checkpoint(f.env);
    EXPECT_EQ(f.txn.kv().snapshot(), golden);
}

const Step kSteps[] = {Step::PrePrepare,  Step::MidPrepare,
                       Step::PostPrepare, Step::PostDecision,
                       Step::MidApply,    Step::PreMarker,
                       Step::PostMarker};

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAllSteps, TxnCrashMatrix,
    ::testing::Combine(::testing::ValuesIn(kBackends),
                       ::testing::ValuesIn(kSteps)),
    [](const auto &info) {
        return store::backendName(std::get<0>(info.param)) +
               std::string("_") + stepName(std::get<1>(info.param));
    });

/**
 * Crash landing inside the eager fold (checkpoint) AFTER decided
 * transactions: the fold tears, but every decision is durable, so
 * recovery must reconstruct the exact committed state.
 */
TEST(TxnCrashMidFold, DecidedTxnsSurviveATornCheckpoint)
{
    SimFixture f(smallConfig(), store::Backend::Lp);
    std::map<std::uint64_t, std::uint64_t> golden;
    for (std::uint64_t k = 1; k <= 8; ++k) {
        ASSERT_TRUE(
            f.txn.run(f.env, {op(TOp::Kind::Put, k, 50)}).committed);
        golden[k] = 50;
    }
    for (int t = 0; t < 6; ++t) {
        const std::uint64_t a = 1 + std::uint64_t(t % 8);
        const std::uint64_t b = 1 + std::uint64_t((t + 3) % 8);
        ASSERT_TRUE(
            f.txn.run(f.env,
                      {op(TOp::Kind::Add, a, std::uint64_t(0) - 5),
                       op(TOp::Kind::Add, b, 5)},
                      {}, true)
                .committed);
        golden[a] -= 5;
        golden[b] += 5;
    }

    f.ctx.crash.armAfterStores(40);  // lands inside the fold
    bool crashed = false;
    try {
        f.txn.checkpoint(f.env);
    } catch (const pmem::CrashException &) {
        crashed = true;
        f.ctx.crash.disarm();
        f.ctx.sched.clear();
        f.ctx.machine.loseVolatileState();
        f.ctx.arena.crashRestore();
    }
    ASSERT_TRUE(crashed) << "checkpoint finished before the trigger";

    f.txn.recover(f.env);
    EXPECT_EQ(f.txn.kv().snapshot(), golden)
        << "mid-fold crash lost a decided transaction";
    std::uint64_t sum = 0;
    for (const auto &[k, v] : f.txn.kv().snapshot())
        sum += v;
    EXPECT_EQ(sum, 400u);
}

} // namespace
} // namespace lp::txn
