/**
 * @file
 * Tests for the periodic cache cleaner (the paper's Section VI-A
 * hardware support): dirty blocks are written back in the background,
 * bounding how long data stays volatile, at the cost of extra NVMM
 * writes.
 */

#include <gtest/gtest.h>

#include "pmem/arena.hh"
#include "sim/machine.hh"

namespace lp::sim
{
namespace
{

MachineConfig
cleanerConfig(Cycles period)
{
    MachineConfig cfg;
    cfg.numCores = 1;
    cfg.l1 = {1024, 2, 2};
    cfg.l2 = {4096, 4, 11};
    cfg.cleanerPeriodCycles = period;
    return cfg;
}

TEST(Cleaner, DisabledByDefault)
{
    pmem::PersistentArena arena(1 << 20);
    Machine m(MachineConfig{}, &arena);
    double *d = arena.alloc<double>(8);
    *d = 1.0;
    m.write(0, arena.addrOf(d), 8);
    m.tick(0, 1u << 22);
    EXPECT_EQ(m.machineStats().cleanerWrites.value(), 0u);
}

TEST(Cleaner, PeriodicallyPersistsDirtyBlocks)
{
    pmem::PersistentArena arena(1 << 20);
    Machine m(cleanerConfig(1000), &arena);
    double *d = arena.alloc<double>(8);
    *d = 2.5;
    m.write(0, arena.addrOf(d), 8);
    EXPECT_DOUBLE_EQ(arena.peekDurable(d), 0.0);
    m.tick(0, 8000);  // 2000 cycles >> period
    EXPECT_GE(m.machineStats().cleanerWrites.value(), 1u);
    EXPECT_DOUBLE_EQ(arena.peekDurable(d), 2.5);
    // The line stays resident and clean.
    EXPECT_EQ(m.totalDirtyLines(), 0u);
    const auto misses = m.machineStats().l1Misses.value();
    m.read(0, arena.addrOf(d), 8);
    EXPECT_EQ(m.machineStats().l1Misses.value(), misses);
}

TEST(Cleaner, BoundsVolatilityDuration)
{
    pmem::PersistentArena arena(1 << 20);
    Machine m(cleanerConfig(500), &arena);
    double *d = arena.alloc<double>(64);
    for (int i = 0; i < 32; ++i) {
        d[i] = i;
        m.write(0, arena.addrOf(&d[i]), 8);
        m.tick(0, 400);  // 100 cycles between stores
    }
    m.tick(0, 4000);
    // Every dirty block was cleaned within ~one period of becoming
    // dirty (plus the inter-store gap and access latencies).
    EXPECT_LE(m.machineStats().maxVdur.value(), 1500u);
    EXPECT_EQ(m.totalDirtyLines(), 0u);
}

TEST(Cleaner, ShorterPeriodMoreWrites)
{
    auto writes_with_period = [](Cycles period) {
        pmem::PersistentArena arena(1 << 20);
        Machine m(cleanerConfig(period), &arena);
        double *d = arena.alloc<double>(8);
        // Repeatedly re-dirty one block over a long interval.
        for (int i = 0; i < 200; ++i) {
            d[0] = i;
            m.write(0, arena.addrOf(d), 8);
            m.tick(0, 2000);
        }
        return m.machineStats().cleanerWrites.value();
    };
    const auto frequent = writes_with_period(600);
    const auto rare = writes_with_period(20000);
    EXPECT_GT(frequent, 2 * rare);
}

TEST(Cleaner, CleanedBlockCanBeRedirtied)
{
    pmem::PersistentArena arena(1 << 20);
    Machine m(cleanerConfig(500), &arena);
    double *d = arena.alloc<double>(8);
    *d = 1.0;
    m.write(0, arena.addrOf(d), 8);
    m.tick(0, 4000);
    EXPECT_DOUBLE_EQ(arena.peekDurable(d), 1.0);
    *d = 2.0;
    m.write(0, arena.addrOf(d), 8);
    m.tick(0, 4000);
    EXPECT_DOUBLE_EQ(arena.peekDurable(d), 2.0);
    EXPECT_GE(m.machineStats().cleanerWrites.value(), 2u);
}

} // namespace
} // namespace lp::sim
