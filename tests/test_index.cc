/**
 * @file
 * Tests for lp::index::OrderedIndex and its KvStore integration:
 * ordered-set semantics against std::set under a randomized op
 * stream, lowerBound/first cursor behavior, erase/limbo/reclaim
 * memory accounting, the single-writer/multi-reader contract under
 * a thread stress (the ThreadSanitizer target), and end-to-end
 * KvStore::scan on every backend -- cross-shard merge order,
 * staged-delete visibility, and scan/snapshot agreement.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "index/ordered_index.hh"
#include "kernels/env.hh"
#include "store/kv_store.hh"

namespace lp
{
namespace
{

using index::OrderedIndex;
using index::OrderedIndexNode;

/** Collect every key by walking the bottom level. */
std::vector<std::uint64_t>
allKeys(const OrderedIndex &idx)
{
    std::vector<std::uint64_t> out;
    for (auto c = idx.first(); c.valid(); c.advance())
        out.push_back(c.key());
    return out;
}

TEST(OrderedIndex, MatchesStdSetUnderRandomOps)
{
    OrderedIndex idx;
    std::set<std::uint64_t> model;
    std::mt19937_64 rng(20260807);

    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rng() % 4096;
        if (rng() % 3 == 0) {
            idx.erase(key);
            model.erase(key);
        } else {
            idx.insert(key);
            model.insert(key);
        }
        ASSERT_EQ(idx.entries(), model.size());
    }

    const auto keys = allKeys(idx);
    ASSERT_EQ(keys.size(), model.size());
    auto it = model.begin();
    for (const std::uint64_t k : keys) {
        EXPECT_EQ(k, *it);
        ++it;
    }
    for (std::uint64_t k = 0; k < 4096; k += 17)
        EXPECT_EQ(idx.contains(k), model.count(k) == 1) << k;
}

TEST(OrderedIndex, LowerBoundSemantics)
{
    OrderedIndex idx;
    for (const std::uint64_t k : {10u, 20u, 30u, 40u})
        idx.insert(k);

    ASSERT_TRUE(idx.first().valid());
    EXPECT_EQ(idx.first().key(), 10u);

    EXPECT_EQ(idx.lowerBound(0).key(), 10u);    // before everything
    EXPECT_EQ(idx.lowerBound(10).key(), 10u);   // exact hit
    EXPECT_EQ(idx.lowerBound(11).key(), 20u);   // between keys
    EXPECT_EQ(idx.lowerBound(40).key(), 40u);   // last key
    EXPECT_FALSE(idx.lowerBound(41).valid());   // past the end

    auto c = idx.lowerBound(15);
    std::vector<std::uint64_t> walked;
    for (; c.valid(); c.advance())
        walked.push_back(c.key());
    EXPECT_EQ(walked, (std::vector<std::uint64_t>{20, 30, 40}));
}

TEST(OrderedIndex, DuplicateInsertAndAbsentEraseAreNoops)
{
    OrderedIndex idx;
    idx.insert(7);
    const std::uint64_t bytes = idx.residentBytes();
    idx.insert(7);
    EXPECT_EQ(idx.entries(), 1u);
    EXPECT_EQ(idx.residentBytes(), bytes);  // no second node allocated

    idx.erase(123456);  // absent
    EXPECT_EQ(idx.entries(), 1u);
    EXPECT_EQ(idx.limboNodes(), 0u);
}

TEST(OrderedIndex, EraseLimboReclaimAccounting)
{
    OrderedIndex idx;
    const std::uint64_t headBytes = idx.residentBytes();
    EXPECT_EQ(headBytes, sizeof(OrderedIndexNode));

    for (std::uint64_t k = 0; k < 100; ++k)
        idx.insert(k);
    const std::uint64_t fullBytes = idx.residentBytes();
    EXPECT_EQ(fullBytes, headBytes + 100 * sizeof(OrderedIndexNode));

    // Erase unlinks but keeps the node resident until reclaim().
    for (std::uint64_t k = 0; k < 100; k += 2)
        idx.erase(k);
    EXPECT_EQ(idx.entries(), 50u);
    EXPECT_EQ(idx.limboNodes(), 50u);
    EXPECT_EQ(idx.residentBytes(), fullBytes);

    idx.reclaim();
    EXPECT_EQ(idx.limboNodes(), 0u);
    EXPECT_EQ(idx.residentBytes(),
              headBytes + 50 * sizeof(OrderedIndexNode));

    idx.clear();
    EXPECT_EQ(idx.entries(), 0u);
    EXPECT_EQ(idx.residentBytes(), headBytes);
    EXPECT_FALSE(idx.first().valid());

    // The index must stay usable after clear().
    idx.insert(5);
    EXPECT_TRUE(idx.contains(5));
}

/**
 * The TSan target: one writer inserting and erasing while reader
 * threads traverse. Readers assert strictly ascending keys on every
 * walk -- a torn publish or a reader-visible free would show up here
 * (and as a data-race report under -fsanitize=thread). reclaim() only
 * runs after the readers have joined, per the quiesce contract.
 */
TEST(OrderedIndex, ConcurrentReadersSeeOrderedKeys)
{
    OrderedIndex idx;
    for (std::uint64_t k = 0; k < 512; k += 2)
        idx.insert(k * 8);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> violations{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&idx, &stop, &violations, t] {
            std::mt19937_64 rng(std::uint64_t(t) + 1);
            while (!stop.load(std::memory_order_relaxed)) {
                auto c = idx.lowerBound(rng() % 5000);
                std::uint64_t prev = 0;
                bool started = false;
                for (int steps = 0; c.valid() && steps < 64;
                     ++steps, c.advance()) {
                    const std::uint64_t k = c.key();
                    if (started && k <= prev)
                        violations.fetch_add(1);
                    prev = k;
                    started = true;
                }
            }
        });
    }

    std::mt19937_64 rng(99);
    for (int i = 0; i < 60000; ++i) {
        const std::uint64_t key = (rng() % 512) * 8;
        if (rng() % 2 == 0)
            idx.insert(key);
        else
            idx.erase(key);
    }
    stop.store(true);
    for (auto &r : readers)
        r.join();
    idx.reclaim();  // quiesced: all readers joined

    EXPECT_EQ(violations.load(), 0u);
    const auto keys = allKeys(idx);
    for (std::size_t i = 1; i < keys.size(); ++i)
        ASSERT_LT(keys[i - 1], keys[i]);
}

} // namespace
} // namespace lp

namespace lp::store
{
namespace
{

const Backend kBackends[] = {Backend::Lp, Backend::EagerPerOp,
                             Backend::Wal};

class ScanBackends : public ::testing::TestWithParam<Backend>
{
};

StoreConfig
scanConfig()
{
    StoreConfig cfg;
    cfg.capacity = 2048;
    cfg.shards = 4;  // scans must merge across all of them
    cfg.batchOps = 8;
    cfg.foldBatches = 4;
    return cfg;
}

TEST_P(ScanBackends, ScanMergesShardsInKeyOrder)
{
    const StoreConfig scfg = scanConfig();
    pmem::PersistentArena arena(storeArenaBytes(scfg));
    KvStore<kernels::NativeEnv> store(arena, scfg, GetParam());
    arena.persistAll();
    kernels::NativeEnv env;

    std::map<std::uint64_t, std::uint64_t> golden;
    std::mt19937_64 rng(7);
    for (int i = 0; i < 600; ++i) {
        const std::uint64_t k = rng() % 100000;
        store.put(env, k, k + 1);
        golden[k] = k + 1;
    }

    // Full scan (limit beyond size) equals the golden map in order.
    const auto full = store.scan(env, 0, golden.size() + 8);
    ASSERT_EQ(full.size(), golden.size());
    auto it = golden.begin();
    for (const auto &[k, v] : full) {
        EXPECT_EQ(k, it->first);
        EXPECT_EQ(v, it->second);
        ++it;
    }

    // Bounded scans from arbitrary starts: correct slice of golden.
    for (const std::uint64_t start : {0ull, 5000ull, 99999ull}) {
        const auto out = store.scan(env, start, 10);
        auto g = golden.lower_bound(start);
        for (const auto &[k, v] : out) {
            ASSERT_NE(g, golden.end());
            EXPECT_EQ(k, g->first);
            EXPECT_EQ(v, g->second);
            ++g;
        }
        const std::size_t left =
            std::size_t(std::distance(golden.lower_bound(start),
                                      golden.end()));
        EXPECT_EQ(out.size(), std::min<std::size_t>(10, left));
    }

    // Start past every key: legal, empty.
    EXPECT_TRUE(store.scan(env, maxUserKey, 5).empty());
}

TEST_P(ScanBackends, ScanSeesStagedMutationsLikeGet)
{
    const StoreConfig scfg = scanConfig();
    pmem::PersistentArena arena(storeArenaBytes(scfg));
    KvStore<kernels::NativeEnv> store(arena, scfg, GetParam());
    arena.persistAll();
    kernels::NativeEnv env;

    for (std::uint64_t k = 100; k < 110; ++k)
        store.put(env, k, k);
    store.checkpoint(env);

    // Staged, not yet folded: a scan must still see the new value
    // and must not see the deleted key -- exactly like get().
    store.put(env, 105, 9999);
    store.del(env, 107);

    const auto out = store.scan(env, 100, 100);
    std::map<std::uint64_t, std::uint64_t> seen(out.begin(), out.end());
    EXPECT_EQ(seen.at(105), 9999u);
    EXPECT_EQ(seen.count(107), 0u);
    EXPECT_EQ(out.size(), 9u);
    for (const auto &[k, v] : out)
        EXPECT_EQ(store.get(env, k), std::optional<std::uint64_t>(v));
}

TEST_P(ScanBackends, RecoveryRebuildAgreesWithPointGets)
{
    const StoreConfig scfg = scanConfig();
    pmem::PersistentArena arena(storeArenaBytes(scfg));
    KvStore<kernels::NativeEnv> store(arena, scfg, GetParam());
    arena.persistAll();
    kernels::NativeEnv env;

    std::mt19937_64 rng(13);
    for (int i = 0; i < 400; ++i)
        store.put(env, rng() % 50000, std::uint64_t(i));
    for (int i = 0; i < 50; ++i)
        store.del(env, rng() % 50000);
    store.checkpoint(env);
    const auto before = store.scan(env, 0, 4096);

    // recover() clears and rebuilds every shard's index from the
    // durable table; the rebuilt scan must match byte for byte.
    store.recover(env);
    const auto after = store.scan(env, 0, 4096);
    EXPECT_EQ(before, after);

    std::uint64_t entries = 0;
    for (int s = 0; s < scfg.shards; ++s) {
        entries += store.indexEntries(s);
        EXPECT_GT(store.indexBytes(s), 0u);
    }
    EXPECT_EQ(entries, after.size());
    for (const auto &[k, v] : after)
        EXPECT_EQ(store.get(env, k), std::optional<std::uint64_t>(v));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ScanBackends,
                         ::testing::ValuesIn(kBackends),
                         [](const auto &info) {
                             return backendName(info.param);
                         });

} // namespace
} // namespace lp::store
