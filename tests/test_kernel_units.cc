/**
 * @file
 * Kernel-internal unit tests: individual region bodies, checksum
 * traversal consistency (a region's committed digest must equal the
 * recovery-side recomputation on the same data), and index/bounds
 * helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/rng.hh"
#include "kernels/cholesky.hh"
#include "kernels/conv2d.hh"
#include "kernels/env.hh"
#include "kernels/fft.hh"
#include "kernels/gauss.hh"
#include "kernels/tmm.hh"
#include "lp/checksum_table.hh"
#include "pmem/arena.hh"

namespace lp::kernels
{
namespace
{

struct Fixture
{
    Fixture()
        : arena(8u << 20), machine(config(), &arena)
    {
    }

    static sim::MachineConfig
    config()
    {
        sim::MachineConfig cfg;
        cfg.numCores = 1;
        cfg.l1 = {4096, 4, 2};
        cfg.l2 = {16384, 4, 11};
        return cfg;
    }

    SimEnv
    env()
    {
        return SimEnv(machine, arena, 0);
    }

    pmem::PersistentArena arena;
    sim::Machine machine;
};

TEST(TmmUnits, RegionDigestMatchesBandRecomputation)
{
    // The digest a region commits must equal what recovery
    // recomputes from the band afterwards -- for every checksum kind
    // (Adler-32 is order-sensitive, so this checks traversal order).
    Fixture f;
    const int n = 16;
    const int b = 8;
    double *a = f.arena.alloc<double>(n * n);
    double *bb = f.arena.alloc<double>(n * n);
    double *c = f.arena.alloc<double>(n * n);
    Rng rng(3);
    for (int i = 0; i < n * n; ++i) {
        a[i] = rng.uniform(0, 1);
        bb[i] = rng.uniform(0, 1);
        c[i] = 0.0;
    }
    const TmmView v{a, bb, c, n, b};
    core::ChecksumTable table(f.arena, 8);

    for (core::ChecksumKind kind :
         {core::ChecksumKind::Parity, core::ChecksumKind::Modular,
          core::ChecksumKind::Adler32,
          core::ChecksumKind::ModularParity}) {
        auto env = f.env();
        core::LpRegion region(table, kind);
        tmmRegionLp(env, v, /*kk=*/0, /*ii=*/8, region, 1);
        EXPECT_EQ(table.stored(1),
                  tmmBandChecksum(env, v, 8, kind))
            << core::checksumKindName(kind);
    }
}

TEST(TmmUnits, BaseAndLpRegionComputeTheSameValues)
{
    Fixture f;
    const int n = 16;
    const int b = 8;
    double *a = f.arena.alloc<double>(n * n);
    double *bb = f.arena.alloc<double>(n * n);
    double *c1 = f.arena.alloc<double>(n * n);
    double *c2 = f.arena.alloc<double>(n * n);
    Rng rng(4);
    for (int i = 0; i < n * n; ++i) {
        a[i] = rng.uniform(0, 1);
        bb[i] = rng.uniform(0, 1);
        c1[i] = c2[i] = 0.0;
    }
    core::ChecksumTable table(f.arena, 8);
    auto env = f.env();
    const TmmView v1{a, bb, c1, n, b};
    const TmmView v2{a, bb, c2, n, b};
    tmmRegionBase(env, v1, 0, 0);
    core::LpRegion region(table, core::ChecksumKind::Modular);
    tmmRegionLp(env, v2, 0, 0, region, 0);
    for (int i = 0; i < n * n; ++i)
        EXPECT_DOUBLE_EQ(c1[i], c2[i]) << i;
}

TEST(CholUnits, DiagonalBlockFactorsCorrectly)
{
    // One diagonal block on a small SPD matrix equals the host
    // Cholesky of that block.
    Fixture f;
    const int n = 8;
    const int b = 8;
    double *a = f.arena.alloc<double>(n * n);
    double *l = f.arena.alloc<double>(n * n);
    Rng rng(5);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j <= i; ++j) {
            const double x = rng.uniform(0, 1);
            a[i * n + j] = a[j * n + i] = x;
        }
        a[i * n + i] += n;
    }
    std::fill(l, l + n * n, 0.0);
    const CholView v{a, l, n, b};
    auto env = f.env();
    cholBlock(env, v, 0, 0, nullptr, false);

    // L * L^T must reconstruct A (lower part).
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j <= i; ++j) {
            double sum = 0.0;
            for (int t = 0; t < n; ++t)
                sum += l[i * n + t] * l[j * n + t];
            EXPECT_NEAR(sum, a[i * n + j], 1e-9);
        }
    }
}

TEST(CholUnits, RegionDigestMatchesBlockRecomputation)
{
    Fixture f;
    const int n = 16;
    const int b = 8;
    double *a = f.arena.alloc<double>(n * n);
    double *l = f.arena.alloc<double>(n * n);
    Rng rng(6);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j <= i; ++j) {
            const double x = rng.uniform(0, 1);
            a[i * n + j] = a[j * n + i] = x;
        }
        a[i * n + i] += n;
    }
    std::fill(l, l + n * n, 0.0);
    const CholView v{a, l, n, b};
    core::ChecksumTable table(f.arena, 4);
    auto env = f.env();

    // Stage 0: diagonal then panel; each digest must revalidate.
    core::LpRegion diag(table, core::ChecksumKind::Adler32);
    diag.reset(env);
    cholBlock(env, v, 0, 0, &diag, false);
    diag.commit(env, 0);
    EXPECT_EQ(table.stored(0),
              cholBlockChecksum(env, v, 0, 0,
                                core::ChecksumKind::Adler32));

    core::LpRegion panel(table, core::ChecksumKind::Adler32);
    panel.reset(env);
    cholBlock(env, v, 0, 1, &panel, false);
    panel.commit(env, 1);
    EXPECT_EQ(table.stored(1),
              cholBlockChecksum(env, v, 0, 1,
                                core::ChecksumKind::Adler32));
}

TEST(GaussUnits, BandDigestMatchesRecomputation)
{
    Fixture f;
    const int n = 16;
    double *a = f.arena.alloc<double>(n * n);
    double *m = f.arena.alloc<double>(n * n);
    Rng rng(7);
    for (int i = 0; i < n * n; ++i)
        a[i] = rng.uniform(-1, 1);
    for (int i = 0; i < n; ++i)
        a[i * n + i] += n;
    std::copy(a, a + n * n, m);
    const GaussView v{a, m, n, 8};
    core::ChecksumTable table(f.arena, 4);
    auto env = f.env();

    core::LpRegion region(table, core::ChecksumKind::Adler32);
    region.reset(env);
    gaussBandBody(env, v, /*k=*/2, /*row0=*/0, /*row1=*/8, &region);
    region.commit(env, 0);
    EXPECT_EQ(table.stored(0),
              gaussBandChecksum(env, v, 2, 0, 8,
                                core::ChecksumKind::Adler32));
}

TEST(GaussUnits, RowChecksumCoversWholeRow)
{
    Fixture f;
    const int n = 8;
    double *a = f.arena.alloc<double>(n * n);
    double *m = f.arena.alloc<double>(n * n);
    for (int i = 0; i < n * n; ++i)
        m[i] = i;
    const GaussView v{a, m, n, 4};
    auto env = f.env();
    const auto before =
        gaussRowChecksum(env, v, 2, core::ChecksumKind::Modular);
    m[2 * n + 7] += 1.0;  // perturb the last column
    EXPECT_NE(gaussRowChecksum(env, v, 2,
                               core::ChecksumKind::Modular),
              before);
}

TEST(FftUnits, ChunkDigestMatchesRecomputation)
{
    Fixture f;
    const int n = 64;
    double *ire = f.arena.alloc<double>(n);
    double *iim = f.arena.alloc<double>(n);
    double *are = f.arena.alloc<double>(n);
    double *aim = f.arena.alloc<double>(n);
    double *bre = f.arena.alloc<double>(n);
    double *bim = f.arena.alloc<double>(n);
    Rng rng(8);
    for (int i = 0; i < n; ++i) {
        ire[i] = rng.uniform(-1, 1);
        iim[i] = rng.uniform(-1, 1);
    }
    const FftView v{ire, iim, are, aim, bre, bim, n};
    core::ChecksumTable table(f.arena, 4);
    auto env = f.env();

    core::LpRegion region(table, core::ChecksumKind::Adler32);
    region.reset(env);
    fftChunk(env, v, /*k=*/0, 5, 23, &region);
    region.commit(env, 0);
    EXPECT_EQ(table.stored(0),
              fftChunkChecksum(env, v, 0, 5, 23,
                               core::ChecksumKind::Adler32));
}

TEST(FftUnits, StagesChainThroughBuffers)
{
    FftView v{};
    v.n = 16;
    double in[1], a[1], b[1];
    v.inRe = v.inIm = in;
    v.aRe = v.aIm = a;
    v.bRe = v.bIm = b;
    // Structural identities: stage 0 reads the immutable input; each
    // later stage reads the previous stage's destination.
    EXPECT_EQ(fftSrcRe(v, 0), v.inRe);
    for (int k = 1; k < 4; ++k)
        EXPECT_EQ(fftSrcRe(v, k), fftDstRe(v, k - 1));
    EXPECT_NE(fftDstRe(v, 0), fftDstRe(v, 1));
    EXPECT_EQ(fftDstRe(v, 0), fftDstRe(v, 2));
}

TEST(ConvUnits, PingPongMapping)
{
    Conv2dView v{};
    double in[1], a[1], b[1];
    v.input = in;
    v.bufA = a;
    v.bufB = b;
    EXPECT_EQ(conv2dSrc(v, 0), in);
    EXPECT_EQ(conv2dDst(v, 0), a);
    EXPECT_EQ(conv2dSrc(v, 1), a);
    EXPECT_EQ(conv2dDst(v, 1), b);
    EXPECT_EQ(conv2dSrc(v, 2), b);
    EXPECT_EQ(conv2dDst(v, 2), a);
}

TEST(ConvUnits, BandDigestMatchesRecomputation)
{
    Fixture f;
    const int n = 16;
    double *in = f.arena.alloc<double>(n * n);
    double *w = f.arena.alloc<double>(9);
    double *a = f.arena.alloc<double>(n * n);
    double *b = f.arena.alloc<double>(n * n);
    Rng rng(9);
    for (int i = 0; i < n * n; ++i)
        in[i] = rng.uniform(-1, 1);
    for (int i = 0; i < 9; ++i)
        w[i] = rng.uniform(0, 0.3);
    const Conv2dView v{in, w, a, b, n, 8};
    core::ChecksumTable table(f.arena, 4);
    auto env = f.env();

    core::LpRegion region(table, core::ChecksumKind::Adler32);
    conv2dBandLp(env, v, /*s=*/0, 0, 8, region, 0);
    EXPECT_EQ(table.stored(0),
              conv2dBandChecksum(env, v, 0, 0, 8,
                                 core::ChecksumKind::Adler32));
}

TEST(ConvUnits, ZeroPaddingAtEdges)
{
    // A uniform input under a normalized stencil keeps interior
    // values but attenuates the border (padding contributes zeros).
    Fixture f;
    const int n = 8;
    double *in = f.arena.alloc<double>(n * n);
    double *w = f.arena.alloc<double>(9);
    double *a = f.arena.alloc<double>(n * n);
    double *b = f.arena.alloc<double>(n * n);
    for (int i = 0; i < n * n; ++i)
        in[i] = 1.0;
    for (int i = 0; i < 9; ++i)
        w[i] = 1.0 / 9.0;
    const Conv2dView v{in, w, a, b, n, n};
    auto env = f.env();
    conv2dBandBase(env, v, 0, 0, n);
    EXPECT_NEAR(a[3 * n + 3], 1.0, 1e-12);          // interior
    EXPECT_NEAR(a[0], 4.0 / 9.0, 1e-12);            // corner
    EXPECT_NEAR(a[0 * n + 3], 6.0 / 9.0, 1e-12);    // edge
}

} // namespace
} // namespace lp::kernels
