/**
 * @file
 * Persistency-semantics litmus tests: small, pointed scenarios
 * pinning down what the machine guarantees about durability order
 * (Section II-A's PMEM rules and the ADR platform assumption). These
 * are the contracts every scheme in the library is built on.
 */

#include <gtest/gtest.h>

#include "kernels/env.hh"
#include "pmem/arena.hh"
#include "sim/machine.hh"

namespace lp::sim
{
namespace
{

using kernels::SimEnv;

struct Litmus
{
    Litmus()
        : arena(1 << 20), m(config(), &arena)
    {
        x = arena.alloc<double>(8);   // one full block
        y = arena.alloc<double>(1);   // different block than x
        z = arena.alloc<double>(1);
        arena.persistAll();
    }

    static MachineConfig
    config()
    {
        MachineConfig cfg;
        cfg.numCores = 2;
        cfg.l1 = {1024, 2, 2};
        cfg.l2 = {4096, 4, 11};
        return cfg;
    }

    SimEnv
    env(CoreId c = 0)
    {
        return SimEnv(m, arena, c);
    }

    void
    crash()
    {
        m.loseVolatileState();
        arena.crashRestore();
    }

    pmem::PersistentArena arena;
    Machine m;
    double *x;
    double *y;
    double *z;
};

TEST(Litmus, StoreAloneIsNotDurable)
{
    // ST x -- crash: x reverts. The foundational LP observation.
    Litmus l;
    auto e = l.env();
    e.st(l.x, 1.0);
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 0.0);
}

TEST(Litmus, StoreFlushIsDurableEvenWithoutFence)
{
    // ST x; CLFLUSHOPT x -- crash: durable. Under ADR the flush
    // hands the line to the persistence domain at issue; the fence
    // only orders *later* stores, it is not what makes x durable.
    Litmus l;
    auto e = l.env();
    e.st(l.x, 1.0);
    e.clflushopt(l.x);
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 1.0);
}

TEST(Litmus, FlushCoversWholeBlockNotJustTheStore)
{
    // Two stores to different words of one block, one flush of the
    // first word: both become durable (flush granularity is the
    // block -- the coalescing EP forfeits and LP exploits).
    Litmus l;
    auto e = l.env();
    e.st(&l.x[0], 1.0);
    e.st(&l.x[5], 2.0);
    e.clflushopt(&l.x[0]);
    e.sfence();
    l.crash();
    EXPECT_DOUBLE_EQ(l.x[0], 1.0);
    EXPECT_DOUBLE_EQ(l.x[5], 2.0);
}

TEST(Litmus, UnflushedNeighborBlockIsIndependent)
{
    // ST x; ST y; CLFLUSHOPT x; crash: x durable, y not. Durability
    // is per cache block, never transitive.
    Litmus l;
    auto e = l.env();
    e.st(l.x, 1.0);
    e.st(l.y, 2.0);
    e.clflushopt(l.x);
    e.sfence();
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 1.0);
    EXPECT_DOUBLE_EQ(*l.y, 0.0);
}

TEST(Litmus, EpochOrdering)
{
    // ST x; FLUSH x; SFENCE; ST y -- the paper's durable-barrier
    // pattern: y can never be durable while x is not ("epoch"
    // ordering). We verify the strong half: after the fence, x is
    // durable even though y is lost.
    Litmus l;
    auto e = l.env();
    e.st(l.x, 1.0);
    e.clflushopt(l.x);
    e.sfence();
    e.st(l.y, 2.0);
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 1.0);
    EXPECT_DOUBLE_EQ(*l.y, 0.0);
}

TEST(Litmus, NaturalEvictionIsAValidPersistPath)
{
    // The LP premise: no flush at all -- capacity pressure alone
    // eventually persists a dirty block.
    Litmus l;
    auto e = l.env();
    e.st(l.x, 7.0);
    double *filler = l.arena.alloc<double>(8 * 400);
    for (int i = 0; i < 8 * 400; i += 8)
        e.ld(&filler[i]);
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 7.0);
}

TEST(Litmus, RewriteAfterFlushRevertsToFlushedValue)
{
    // ST x=1; FLUSH; SFENCE; ST x=2 -- crash: x holds 1 (the flushed
    // version), not 0 and not 2.
    Litmus l;
    auto e = l.env();
    e.st(l.x, 1.0);
    e.clflushopt(l.x);
    e.sfence();
    e.st(l.x, 2.0);
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 1.0);
}

TEST(Litmus, ClwbKeepsWorkingSetWarm)
{
    // clwb persists like clflushopt but the next load still hits.
    Litmus l;
    auto e = l.env();
    e.st(l.x, 3.0);
    e.clwb(l.x);
    e.sfence();
    const auto misses = l.m.machineStats().l1Misses.value();
    EXPECT_DOUBLE_EQ(e.ld(l.x), 3.0);
    EXPECT_EQ(l.m.machineStats().l1Misses.value(), misses);
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 3.0);
}

TEST(Litmus, RemoteDirtyLineFlushedByAnotherCore)
{
    // Core 0 dirties x; core 1 flushes it: durable. clflushopt
    // operates on the coherence domain, not one core's cache.
    Litmus l;
    auto e0 = l.env(0);
    auto e1 = l.env(1);
    e0.st(l.x, 4.0);
    e1.clflushopt(l.x);
    e1.sfence();
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 4.0);
}

TEST(Litmus, CacheToCacheTransferDoesNotPersist)
{
    // Core 0 dirties x; core 1 reads it (C2C supply). Sharing is not
    // persistence: a crash still loses x.
    Litmus l;
    auto e0 = l.env(0);
    auto e1 = l.env(1);
    e0.st(l.x, 5.0);
    EXPECT_DOUBLE_EQ(e1.ld(l.x), 5.0);
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 0.0);
}

TEST(Litmus, DrainMakesEverythingDurableInPlace)
{
    Litmus l;
    auto e = l.env();
    e.st(l.x, 1.0);
    e.st(l.y, 2.0);
    e.st(l.z, 3.0);
    l.m.drainDirty();
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 1.0);
    EXPECT_DOUBLE_EQ(*l.y, 2.0);
    EXPECT_DOUBLE_EQ(*l.z, 3.0);
}

TEST(Litmus, CrashIsRepeatable)
{
    // Crashing twice without intervening writes is a no-op the
    // second time (restore is idempotent).
    Litmus l;
    auto e = l.env();
    e.st(l.x, 1.0);
    e.clflushopt(l.x);
    e.sfence();
    l.crash();
    l.crash();
    EXPECT_DOUBLE_EQ(*l.x, 1.0);
}

} // namespace
} // namespace lp::sim
