/**
 * @file
 * Unit tests for the standalone checksum table (Figure 7(b)).
 */

#include <gtest/gtest.h>

#include "lp/checksum_table.hh"
#include "pmem/arena.hh"

namespace lp::core
{
namespace
{

TEST(ChecksumTable, InitializedToSentinel)
{
    pmem::PersistentArena arena(1 << 16);
    ChecksumTable t(arena, 64);
    EXPECT_EQ(t.size(), 64u);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t.stored(i), invalidDigest);
        EXPECT_TRUE(t.neverCommitted(i));
    }
}

TEST(ChecksumTable, StoreAndRead)
{
    pmem::PersistentArena arena(1 << 16);
    ChecksumTable t(arena, 8);
    *t.entry(3) = 0xdeadbeefull;
    EXPECT_EQ(t.stored(3), 0xdeadbeefull);
    EXPECT_FALSE(t.neverCommitted(3));
    EXPECT_TRUE(t.neverCommitted(2));
}

TEST(ChecksumTable, EntriesLiveInTheArena)
{
    pmem::PersistentArena arena(1 << 16);
    ChecksumTable t(arena, 8);
    // The entry pointer translates to a valid arena address.
    const Addr a = arena.addrOf(t.entry(0));
    EXPECT_GE(a, static_cast<Addr>(blockBytes));
    EXPECT_EQ(arena.ptr<std::uint64_t>(a), t.entry(0));
}

TEST(ChecksumTable, SurvivesCrashOnlyWhenPersisted)
{
    pmem::PersistentArena arena(1 << 16);
    ChecksumTable t(arena, 16);
    arena.persistAll();  // sentinel image durable

    *t.entry(0) = 111;
    arena.persistBlock(blockAlign(arena.addrOf(t.entry(0))));
    *t.entry(15) = 222;  // same or different block; not persisted if
                         // in a different block than entry 0
    arena.crashRestore();
    EXPECT_EQ(t.stored(0), 111u);
    // Entry 15 lives 120 bytes after entry 0 -> a different block.
    EXPECT_EQ(t.stored(15), invalidDigest);
}

TEST(ChecksumTable, ClearResetsEverything)
{
    pmem::PersistentArena arena(1 << 16);
    ChecksumTable t(arena, 8);
    *t.entry(1) = 7;
    t.clear();
    EXPECT_TRUE(t.neverCommitted(1));
}

TEST(ChecksumTable, SpaceOverheadIsSmall)
{
    // The paper reports ~1% space overhead for TMM: table
    // (N/b)^2 entries vs. 3 N^2 matrix doubles.
    const std::size_t n = 1024;
    const std::size_t b = 16;
    pmem::PersistentArena arena(1 << 20);
    ChecksumTable t(arena, (n / b) * (n / b));
    const double table_bytes = static_cast<double>(t.bytes());
    const double data_bytes =
        3.0 * static_cast<double>(n) * n * sizeof(double);
    EXPECT_LT(table_bytes / data_bytes, 0.01);
}

TEST(ChecksumTableDeathTest, OutOfRangeIndexPanics)
{
    pmem::PersistentArena arena(1 << 16);
    ChecksumTable t(arena, 4);
    EXPECT_DEATH((void)t.stored(4), "out of range");
}

} // namespace
} // namespace lp::core
