/**
 * @file
 * Kernel correctness tests: every kernel x scheme must reproduce the
 * golden host result; the FFT is additionally checked against a naive
 * DFT; write/flush behaviour must match the scheme's contract.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "base/rng.hh"
#include "kernels/fft.hh"
#include "kernels/harness.hh"
#include "kernels/workload.hh"

namespace lp::kernels
{
namespace
{

sim::MachineConfig
testMachine(int cores = 4)
{
    sim::MachineConfig cfg;
    cfg.numCores = cores;
    cfg.l1 = {8 * 1024, 4, 2};
    cfg.l2 = {64 * 1024, 8, 11};
    return cfg;
}

KernelParams
smallParams(KernelId id)
{
    KernelParams p;
    p.threads = 4;
    switch (id) {
      case KernelId::Fft:
        p.n = 256;
        break;
      case KernelId::Gauss:
        p.n = 32;
        p.bsize = 8;
        break;
      default:
        p.n = 32;
        p.bsize = 8;
        break;
    }
    return p;
}

struct Case
{
    KernelId kernel;
    Scheme scheme;
};

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string n = kernelName(info.param.kernel) + "_" +
                    schemeName(info.param.scheme);
    for (auto &ch : n)
        if (ch == '-' || ch == '+')
            ch = '_';
    return n;
}

class KernelScheme : public ::testing::TestWithParam<Case>
{
};

TEST_P(KernelScheme, ProducesGoldenResult)
{
    const Case c = GetParam();
    const auto out = runScheme(c.kernel, c.scheme,
                               smallParams(c.kernel), testMachine());
    EXPECT_TRUE(out.verified)
        << "max abs error " << out.maxAbsError;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelScheme,
    ::testing::Values(
        Case{KernelId::Tmm, Scheme::Base},
        Case{KernelId::Tmm, Scheme::Lp},
        Case{KernelId::Tmm, Scheme::EagerRecompute},
        Case{KernelId::Tmm, Scheme::Wal},
        Case{KernelId::Cholesky, Scheme::Base},
        Case{KernelId::Cholesky, Scheme::Lp},
        Case{KernelId::Cholesky, Scheme::EagerRecompute},
        Case{KernelId::Conv2d, Scheme::Base},
        Case{KernelId::Conv2d, Scheme::Lp},
        Case{KernelId::Conv2d, Scheme::EagerRecompute},
        Case{KernelId::Gauss, Scheme::Base},
        Case{KernelId::Gauss, Scheme::Lp},
        Case{KernelId::Gauss, Scheme::EagerRecompute},
        Case{KernelId::Fft, Scheme::Base},
        Case{KernelId::Fft, Scheme::Lp},
        Case{KernelId::Fft, Scheme::EagerRecompute}),
    caseName);

/** All LP variants also verify under every checksum kind. */
class KernelChecksumKind
    : public ::testing::TestWithParam<
          std::tuple<KernelId, core::ChecksumKind>>
{
};

TEST_P(KernelChecksumKind, LpVerifiesUnderEveryChecksum)
{
    auto [kernel, kind] = GetParam();
    KernelParams p = smallParams(kernel);
    p.checksum = kind;
    const auto out = runScheme(kernel, Scheme::Lp, p, testMachine());
    EXPECT_TRUE(out.verified);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KernelChecksumKind,
    ::testing::Combine(
        ::testing::Values(KernelId::Tmm, KernelId::Cholesky,
                          KernelId::Conv2d, KernelId::Gauss,
                          KernelId::Fft),
        ::testing::Values(core::ChecksumKind::Parity,
                          core::ChecksumKind::Modular,
                          core::ChecksumKind::Adler32,
                          core::ChecksumKind::ModularParity)));

TEST(KernelBehaviour, LpAddsNoFlushesOrFences)
{
    const auto out = runScheme(KernelId::Tmm, Scheme::Lp,
                               smallParams(KernelId::Tmm),
                               testMachine());
    EXPECT_EQ(out.stat("flush_instrs"), 0.0);
    EXPECT_EQ(out.stat("fences"), 0.0);
}

TEST(KernelBehaviour, EagerRecomputeFlushesAndFences)
{
    const auto out = runScheme(KernelId::Tmm, Scheme::EagerRecompute,
                               smallParams(KernelId::Tmm),
                               testMachine());
    EXPECT_GT(out.stat("flush_instrs"), 0.0);
    EXPECT_GT(out.stat("fences"), 0.0);
}

TEST(KernelBehaviour, WalIsSlowerAndWriteHeavierThanEager)
{
    const auto p = smallParams(KernelId::Tmm);
    const auto cfg = testMachine();
    const auto ep = runScheme(KernelId::Tmm, Scheme::EagerRecompute,
                              p, cfg);
    const auto wal = runScheme(KernelId::Tmm, Scheme::Wal, p, cfg);
    EXPECT_GT(wal.execCycles, ep.execCycles);
    EXPECT_GT(wal.nvmmWrites, ep.nvmmWrites);
}

TEST(KernelBehaviour, LpIsCheaperThanEagerRecompute)
{
    const auto p = smallParams(KernelId::Tmm);
    const auto cfg = testMachine();
    const auto lp = runScheme(KernelId::Tmm, Scheme::Lp, p, cfg);
    const auto ep = runScheme(KernelId::Tmm, Scheme::EagerRecompute,
                              p, cfg);
    EXPECT_LT(lp.execCycles, ep.execCycles);
    EXPECT_LT(lp.nvmmWrites, ep.nvmmWrites);
}

TEST(KernelBehaviour, SingleThreadMatchesMultiThreadResult)
{
    KernelParams p1 = smallParams(KernelId::Tmm);
    p1.threads = 1;
    const auto single = runScheme(KernelId::Tmm, Scheme::Lp, p1,
                                  testMachine());
    EXPECT_TRUE(single.verified);

    KernelParams p4 = smallParams(KernelId::Tmm);
    p4.threads = 4;
    const auto multi = runScheme(KernelId::Tmm, Scheme::Lp, p4,
                                 testMachine());
    EXPECT_TRUE(multi.verified);
    // More threads must not run longer (regions are independent).
    EXPECT_LE(multi.execCycles, single.execCycles);
}

TEST(Fft, MatchesNaiveDftOnSmallInput)
{
    const int n = 32;
    Rng rng(3);
    std::vector<double> re(n), im(n);
    for (int i = 0; i < n; ++i) {
        re[i] = rng.uniform(-1, 1);
        im[i] = rng.uniform(-1, 1);
    }
    std::vector<double> out_re, out_im;
    fftGolden(re, im, out_re, out_im);

    for (int k = 0; k < n; ++k) {
        std::complex<double> acc(0, 0);
        for (int j = 0; j < n; ++j) {
            const double ang = -2.0 * M_PI * k * j / n;
            acc += std::complex<double>(re[j], im[j]) *
                   std::complex<double>(std::cos(ang), std::sin(ang));
        }
        EXPECT_NEAR(out_re[k], acc.real(), 1e-9) << "k=" << k;
        EXPECT_NEAR(out_im[k], acc.imag(), 1e-9) << "k=" << k;
    }
}

TEST(Fft, LinearityProperty)
{
    const int n = 64;
    Rng rng(5);
    std::vector<double> x_re(n), x_im(n), y_re(n), y_im(n);
    std::vector<double> s_re(n), s_im(n);
    for (int i = 0; i < n; ++i) {
        x_re[i] = rng.uniform(-1, 1);
        x_im[i] = rng.uniform(-1, 1);
        y_re[i] = rng.uniform(-1, 1);
        y_im[i] = rng.uniform(-1, 1);
        s_re[i] = x_re[i] + y_re[i];
        s_im[i] = x_im[i] + y_im[i];
    }
    std::vector<double> fx_re, fx_im, fy_re, fy_im, fs_re, fs_im;
    fftGolden(x_re, x_im, fx_re, fx_im);
    fftGolden(y_re, y_im, fy_re, fy_im);
    fftGolden(s_re, s_im, fs_re, fs_im);
    for (int i = 0; i < n; ++i) {
        EXPECT_NEAR(fs_re[i], fx_re[i] + fy_re[i], 1e-9);
        EXPECT_NEAR(fs_im[i], fx_im[i] + fy_im[i], 1e-9);
    }
}

TEST(Fft, ImpulseGivesFlatSpectrum)
{
    const int n = 16;
    std::vector<double> re(n, 0.0), im(n, 0.0);
    re[0] = 1.0;
    std::vector<double> out_re, out_im;
    fftGolden(re, im, out_re, out_im);
    for (int k = 0; k < n; ++k) {
        EXPECT_NEAR(out_re[k], 1.0, 1e-12);
        EXPECT_NEAR(out_im[k], 0.0, 1e-12);
    }
}

TEST(Kernels, RegionCountsAreConsistent)
{
    for (KernelId id : {KernelId::Tmm, KernelId::Cholesky,
                        KernelId::Conv2d, KernelId::Gauss,
                        KernelId::Fft}) {
        const KernelParams p = smallParams(id);
        SimContext ctx(testMachine(), arenaBytesFor(id, p));
        auto w = makeWorkload(id, p, ctx);
        EXPECT_GT(w->numRegions(), 0u) << w->name();
    }
}

TEST(Kernels, FreshWorkloadIsUnverified)
{
    // Before running, outputs are zero and must not match golden.
    const KernelParams p = smallParams(KernelId::Tmm);
    SimContext ctx(testMachine(), arenaBytesFor(KernelId::Tmm, p));
    auto w = makeWorkload(KernelId::Tmm, p, ctx);
    EXPECT_FALSE(w->verify());
}

} // namespace
} // namespace lp::kernels
