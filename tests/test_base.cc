/**
 * @file
 * Unit tests for base utilities: address arithmetic, integer math,
 * and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/intmath.hh"
#include "base/rng.hh"
#include "base/types.hh"

namespace lp
{
namespace
{

TEST(Types, BlockAlignment)
{
    EXPECT_EQ(blockAlign(0), 0u);
    EXPECT_EQ(blockAlign(63), 0u);
    EXPECT_EQ(blockAlign(64), 64u);
    EXPECT_EQ(blockAlign(65), 64u);
    EXPECT_EQ(blockAlign(127), 64u);
    EXPECT_EQ(blockAlign(0xffffffffffffffffull),
              0xffffffffffffffc0ull);
}

TEST(Types, BlockNumberAndOffset)
{
    EXPECT_EQ(blockNumber(0), 0u);
    EXPECT_EQ(blockNumber(64), 1u);
    EXPECT_EQ(blockNumber(130), 2u);
    EXPECT_EQ(blockOffset(130), 2u);
    EXPECT_EQ(blockOffset(64), 0u);
}

TEST(IntMath, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1025), 10u);
}

TEST(IntMath, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 8), 0u);
    EXPECT_EQ(ceilDiv(1, 8), 1u);
    EXPECT_EQ(ceilDiv(8, 8), 1u);
    EXPECT_EQ(ceilDiv(9, 8), 2u);
}

TEST(IntMath, Align)
{
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next64() == b.next64());
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
    for (int i = 0; i < 10000; ++i) {
        const double v = r.uniform(-3.0, 5.0);
        EXPECT_GE(v, -3.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, BelowBound)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = r.below(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    // All residues should appear in 1000 draws.
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

} // namespace
} // namespace lp
