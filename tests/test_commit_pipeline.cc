/**
 * @file
 * Unit tests for lp::engine::CommitPipeline: epoch sequencing, the
 * underfilled-batch flush, fold-period accounting, and the
 * deadline-bounded recoverable-ack schedule. The pipeline never
 * reads a clock itself, so the deadline tests drive it with
 * synthetic time points.
 */

#include <chrono>

#include <gtest/gtest.h>

#include "engine/commit_pipeline.hh"
#include "engine/stat_names.hh"

using lp::engine::CommitPipeline;
using lp::engine::CommitPolicy;

namespace
{

CommitPolicy
policyOf(int batchOps, int foldBatches, int deadlineUs = 2000)
{
    CommitPolicy p;
    p.batchOps = batchOps;
    p.foldBatches = foldBatches;
    p.flushDeadline = std::chrono::microseconds(deadlineUs);
    return p;
}

TEST(CommitPipeline, OpenEpochIsAlwaysLastCommittedPlusOne)
{
    CommitPipeline pl(policyOf(4, 8));
    EXPECT_FALSE(pl.epochOpen());
    EXPECT_EQ(pl.lastCommitted(), 0u);

    EXPECT_EQ(pl.beginEpoch(), 1u);
    EXPECT_TRUE(pl.epochOpen());
    EXPECT_EQ(pl.openEpoch(), 1u);

    for (int i = 0; i < 4; ++i)
        pl.stageOp();
    EXPECT_TRUE(pl.commitEpoch());
    EXPECT_EQ(pl.lastCommitted(), 1u);
    EXPECT_EQ(pl.beginEpoch(), 2u);
}

TEST(CommitPipeline, StageOpSignalsFullBatchExactlyAtBatchOps)
{
    CommitPipeline pl(policyOf(3, 8));
    pl.beginEpoch();
    EXPECT_FALSE(pl.stageOp());
    EXPECT_FALSE(pl.stageOp());
    EXPECT_TRUE(pl.stageOp());  // third op fills the batch
    EXPECT_EQ(pl.stagedOps(), 3);
}

TEST(CommitPipeline, UnderfilledBatchStillCommits)
{
    CommitPipeline pl(policyOf(32, 8));
    pl.beginEpoch();
    pl.stageOp();  // 1 of 32
    EXPECT_TRUE(pl.commitEpoch());
    EXPECT_EQ(pl.lastCommitted(), 1u);
    EXPECT_EQ(pl.stagedOps(), 0);
    EXPECT_FALSE(pl.epochOpen());

    // With nothing open, commitEpoch is a no-op and says so.
    EXPECT_FALSE(pl.commitEpoch());
    EXPECT_EQ(pl.lastCommitted(), 1u);
}

TEST(CommitPipeline, FoldDueAfterExactlyFoldBatchesCommits)
{
    CommitPipeline pl(policyOf(1, 3));
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(pl.foldDue());
        pl.beginEpoch();
        pl.stageOp();
        pl.commitEpoch();
    }
    EXPECT_TRUE(pl.foldDue());
    EXPECT_EQ(pl.committedSinceFold(), 3);

    pl.noteFold();
    EXPECT_FALSE(pl.foldDue());
    EXPECT_EQ(pl.committedSinceFold(), 0);
    EXPECT_EQ(pl.foldedEpoch(), 3u);
    EXPECT_EQ(pl.counters().folds, 1u);
}

TEST(CommitPipeline, FoldPeriodScalesWithPolicy)
{
    // Doubling foldBatches halves the fold count over the same run.
    for (const int foldBatches : {2, 4}) {
        CommitPipeline pl(policyOf(1, foldBatches));
        int folds = 0;
        for (int i = 0; i < 8; ++i) {
            pl.beginEpoch();
            pl.stageOp();
            pl.commitEpoch();
            if (pl.foldDue()) {
                pl.noteFold();
                ++folds;
            }
        }
        EXPECT_EQ(folds, 8 / foldBatches);
    }
}

TEST(CommitPipeline, SyncDurableAdvancesWatermarkWithoutAFold)
{
    CommitPipeline pl(policyOf(1, 2));
    pl.beginEpoch();
    pl.stageOp();
    pl.commitEpoch();
    pl.syncDurable();
    EXPECT_EQ(pl.foldedEpoch(), 1u);
    EXPECT_FALSE(pl.foldDue());
    EXPECT_EQ(pl.counters().folds, 0u);
}

TEST(CommitPipeline, EagerStylePolicyMakesEveryOpAnEpoch)
{
    // The eager backend runs batchOps = 1: the epoch number doubles
    // as a per-shard op sequence number.
    CommitPipeline pl(policyOf(1, 64));
    for (std::uint64_t i = 1; i <= 5; ++i) {
        EXPECT_EQ(pl.beginEpoch(), i);
        EXPECT_TRUE(pl.stageOp());
        pl.commitEpoch();
        pl.syncDurable();
        EXPECT_EQ(pl.lastCommitted(), i);
    }
    EXPECT_EQ(pl.counters().epochsCommitted, 5u);
    EXPECT_EQ(pl.counters().opsStaged, 5u);
}

TEST(CommitPipeline, DeadlineBoundsTheOldestPendingAck)
{
    using Clock = CommitPipeline::Clock;
    CommitPipeline pl(policyOf(32, 8, 2000));
    const Clock::time_point t0{};

    EXPECT_FALSE(pl.commitDue(t0));  // nothing pending

    pl.notePending(1, t0);
    pl.notePending(1, t0 + std::chrono::microseconds(500));
    EXPECT_EQ(pl.pendingCount(), 2u);
    EXPECT_EQ(pl.ackDeadline(),
              t0 + std::chrono::microseconds(2000));

    EXPECT_FALSE(pl.commitDue(t0 + std::chrono::microseconds(1999)));
    EXPECT_TRUE(pl.commitDue(t0 + std::chrono::microseconds(2000)));

    pl.noteDeadlineCommit();
    EXPECT_EQ(pl.counters().deadlineCommits, 1u);
}

TEST(CommitPipeline, ReleaseUpToPopsOnlyCommittedEpochs)
{
    using Clock = CommitPipeline::Clock;
    CommitPipeline pl(policyOf(2, 8));
    const Clock::time_point t0{};
    pl.notePending(1, t0);
    pl.notePending(1, t0);
    pl.notePending(2, t0);
    pl.notePending(3, t0);

    EXPECT_EQ(pl.releaseUpTo(0), 0u);
    EXPECT_EQ(pl.releaseUpTo(1), 2u);
    EXPECT_EQ(pl.pendingCount(), 2u);
    // The next deadline now belongs to epoch 2's ack.
    EXPECT_TRUE(pl.hasPending());
    EXPECT_EQ(pl.releaseUpTo(3), 2u);
    EXPECT_FALSE(pl.hasPending());
    EXPECT_EQ(pl.counters().acksReleased, 4u);
}

TEST(CommitPipeline, RebaseResetsOntoTheRecoveredWatermark)
{
    using Clock = CommitPipeline::Clock;
    CommitPipeline pl(policyOf(2, 2));
    pl.beginEpoch();
    pl.stageOp();
    pl.notePending(1, Clock::time_point{});

    pl.rebase(7);
    EXPECT_FALSE(pl.epochOpen());
    EXPECT_EQ(pl.stagedOps(), 0);
    EXPECT_EQ(pl.lastCommitted(), 7u);
    EXPECT_EQ(pl.foldedEpoch(), 7u);
    EXPECT_EQ(pl.committedSinceFold(), 0);
    EXPECT_FALSE(pl.hasPending());
    EXPECT_EQ(pl.beginEpoch(), 8u);
}

TEST(CommitPipeline, CanonicalStatNamesAreStable)
{
    // The canonical spellings are an external contract: bench JSON
    // and the server stats report key on them.
    namespace sn = lp::engine::statname;
    EXPECT_STREQ(sn::opsStaged, "ops_staged");
    EXPECT_STREQ(sn::epochsCommitted, "epochs_committed");
    EXPECT_STREQ(sn::folds, "folds");
    EXPECT_STREQ(sn::deadlineCommits, "deadline_commits");
    EXPECT_STREQ(sn::acksReleased, "acks_released");
    EXPECT_STREQ(sn::committedEpoch, "committed_epoch");
}

} // namespace
