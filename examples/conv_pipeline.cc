/**
 * @file
 * Domain example: a persistent iterated-stencil pipeline.
 *
 * Models a long-running scientific job -- repeated 2D smoothing
 * passes over a field -- that wants its progress to survive power
 * loss without paying eager-flush costs. Each pass ping-pongs
 * between two persistent buffers; row bands are LP regions. The
 * example compares the three schemes' cost on the simulated NVMM
 * machine, then demonstrates that a crash between passes loses at
 * most the non-durable tail of one pass.
 *
 * Build & run:  ./build/examples/conv_pipeline
 */

#include <cstdio>

#include "kernels/harness.hh"

using namespace lp;
using namespace lp::kernels;

int
main()
{
    sim::MachineConfig cfg;
    cfg.numCores = 8;
    cfg.l1 = {16 * 1024, 8, 2};
    cfg.l2 = {128 * 1024, 8, 11};

    KernelParams params;
    params.n = 192;
    params.bsize = 16;
    params.threads = 8;
    params.iterations = 6;  // six smoothing passes

    std::printf("persistent stencil pipeline: %dx%d field, %d "
                "passes, %d threads\n\n",
                params.n, params.n, params.iterations,
                params.threads);

    // Cost of failure safety, per scheme.
    const auto base = runScheme(KernelId::Conv2d, Scheme::Base,
                                params, cfg);
    const auto lp = runScheme(KernelId::Conv2d, Scheme::Lp, params,
                              cfg);
    const auto ep = runScheme(KernelId::Conv2d, Scheme::EagerRecompute,
                              params, cfg);
    std::printf("scheme   exec Mcycles   NVMM writes   flushes  "
                "fences\n");
    auto row = [](const char *name, const RunOutcome &o) {
        std::printf("%-8s %12.2f %13.0f %9.0f %7.0f\n", name,
                    o.execCycles / 1e6, o.nvmmWrites,
                    o.stat("flush_instrs"), o.stat("fences"));
    };
    row("base", base);
    row("LP", lp);
    row("EP", ep);
    std::printf("\nLP costs %+.1f%% time and %+.1f%% writes vs "
                "base; EP costs %+.1f%% / %+.1f%%\n",
                100.0 * (lp.execCycles / base.execCycles - 1.0),
                100.0 * (lp.nvmmWrites / base.nvmmWrites - 1.0),
                100.0 * (ep.execCycles / base.execCycles - 1.0),
                100.0 * (ep.nvmmWrites / base.nvmmWrites - 1.0));

    // Crash resilience: fail at several points of the pipeline.
    const auto total = static_cast<std::uint64_t>(lp.stat("stores"));
    std::printf("\ncrash/recover/resume at various points:\n");
    for (int pct : {10, 40, 70, 95}) {
        const auto out = runLpWithCrash(
            KernelId::Conv2d, params, cfg,
            total * static_cast<std::uint64_t>(pct) / 100);
        std::printf("  crash at %2d%%: resumed at pass %d/%d, "
                    "verified=%s\n",
                    pct, out.recovery.resumeStage, params.iterations,
                    out.verified ? "yes" : "NO");
        if (!out.verified)
            return 1;
    }
    std::printf("\nall runs converged to the golden result.\n");
    return 0;
}
