/**
 * @file
 * Quickstart: the paper's Figure 1 kernel, end to end.
 *
 * The original loop computes C[i] = foo(A[i], B[i]) and
 * D[i] = bar(A[i], B[i]). We make it failure-safe with Lazy
 * Persistency: each iteration block is an LP region protected by a
 * checksum; no cache-line flushes, no fences, no logging. We then
 * inject a power failure, restore the durable image, detect the
 * damaged regions by checksum mismatch, and repair them with the
 * Eager Persistency recovery code of Figure 1's right column.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "ep/pmem_ops.hh"
#include "kernels/env.hh"
#include "lp/checksum_table.hh"
#include "lp/runtime.hh"
#include "pmem/arena.hh"
#include "pmem/crash.hh"
#include "sim/machine.hh"

using namespace lp;
using kernels::SimEnv;

namespace
{

double
foo(double a, double b)
{
    return 3.0 * a + b;
}

double
bar(double a, double b)
{
    return a * b - 1.0;
}

constexpr int n = 4096;
constexpr int region_size = 64;  // iterations per LP region
constexpr int num_regions = n / region_size;

/** One LP region: iterations [r*region_size, (r+1)*region_size). */
void
runRegion(SimEnv &env, core::ChecksumTable &table, const double *a,
          const double *b, double *c, double *d, int r)
{
    core::LpRegion region(table, core::ChecksumKind::Modular);
    region.reset(env);
    for (int i = r * region_size; i < (r + 1) * region_size; ++i) {
        const double ci = foo(env.ld(&a[i]), env.ld(&b[i]));
        const double di = bar(env.ld(&a[i]), env.ld(&b[i]));
        env.tick(8);
        env.st(&c[i], ci);
        env.st(&d[i], di);
        region.update(env, ci);
        region.update(env, di);
    }
    region.commit(env, r);  // a plain store -- lazy!
}

/** Recompute a region's checksum from the current (durable) data. */
std::uint64_t
regionDigest(SimEnv &env, const double *c, const double *d, int r)
{
    core::ChecksumAcc acc(core::ChecksumKind::Modular);
    for (int i = r * region_size; i < (r + 1) * region_size; ++i) {
        acc.add(env.ld(&c[i]));
        acc.add(env.ld(&d[i]));
    }
    return acc.value();
}

} // namespace

int
main()
{
    // A machine with one core and a small cache, wired to a
    // persistent arena (the simulated NVMM).
    sim::MachineConfig cfg;
    cfg.numCores = 1;
    cfg.l1 = {4 * 1024, 4, 2};
    cfg.l2 = {16 * 1024, 8, 11};
    pmem::PersistentArena arena(4u << 20);
    sim::Machine machine(cfg, &arena);
    pmem::CrashController crash;

    double *a = arena.alloc<double>(n);
    double *b = arena.alloc<double>(n);
    double *c = arena.alloc<double>(n);
    double *d = arena.alloc<double>(n);
    core::ChecksumTable table(arena, num_regions);
    for (int i = 0; i < n; ++i) {
        a[i] = 0.25 * i;
        b[i] = 1.0 / (i + 1);
    }
    arena.persistAll();  // inputs start durable

    // --- normal execution, with a power failure in the middle -----
    SimEnv env(machine, arena, 0, &crash);
    crash.armAfterStores(2 * n / 2 + 17);  // mid-run, mid-region
    int completed = 0;
    try {
        for (int r = 0; r < num_regions; ++r) {
            runRegion(env, table, a, b, c, d, r);
            ++completed;
        }
    } catch (const pmem::CrashException &) {
        std::printf("power failure injected after region %d "
                    "started\n", completed);
    }

    const auto flushes_normal = machine.machineStats()
                                    .flushInstrs.value();
    const auto fences_normal = machine.machineStats().fences.value();

    // --- crash: caches lost, NVMM contents survive -----------------
    machine.loseVolatileState();
    arena.crashRestore();

    // --- recovery: detect damage by checksum, repair eagerly -------
    SimEnv renv(machine, arena, 0);
    int intact = 0;
    int repaired = 0;
    for (int r = 0; r < num_regions; ++r) {
        const bool ok = !table.neverCommitted(r) &&
                        table.stored(r) == regionDigest(renv, c, d, r);
        if (ok) {
            ++intact;
            continue;
        }
        // Figure 1's recovery: recompute with Eager Persistency so a
        // crash during recovery cannot lose progress.
        core::LpRegion region(table, core::ChecksumKind::Modular);
        region.reset(renv);
        for (int i = r * region_size; i < (r + 1) * region_size;
             ++i) {
            const double ci = foo(renv.ld(&a[i]), renv.ld(&b[i]));
            const double di = bar(renv.ld(&a[i]), renv.ld(&b[i]));
            renv.st(&c[i], ci);
            renv.st(&d[i], di);
            region.update(renv, ci);
            region.update(renv, di);
        }
        ep::flushRange(renv, &c[r * region_size],
                       region_size * sizeof(double));
        ep::flushRange(renv, &d[r * region_size],
                       region_size * sizeof(double));
        renv.sfence();
        region.commitEager(renv, r);
        ++repaired;
    }
    std::printf("recovery: %d regions intact, %d repaired\n", intact,
                repaired);

    // --- verify -----------------------------------------------------
    int bad = 0;
    for (int i = 0; i < n; ++i) {
        if (c[i] != foo(a[i], b[i]) || d[i] != bar(a[i], b[i]))
            ++bad;
    }
    std::printf("verification: %d incorrect elements (expect 0)\n",
                bad);
    std::printf("normal execution used %llu flushes and %llu fences "
                "(lazy persistency!)\n",
                static_cast<unsigned long long>(flushes_normal),
                static_cast<unsigned long long>(fences_normal));
    return bad == 0 ? 0 : 1;
}
