/**
 * @file
 * How to LP-ify *your own* loop nest with the public API.
 *
 * The kernel here is one the library does not ship: a persistent
 * histogram + prefix-sum over a large input (the core of a counting
 * sort or a database group-by). It shows the three things a user
 * must supply (Section III of the paper):
 *
 *   1. a region structure whose regions are associative
 *      (per-thread partial histograms merge by addition);
 *   2. a checksum call per protected store;
 *   3. recovery code per region (here: regions are idempotent given
 *      the durable input, so recovery = recompute, the Section III-E
 *      special case).
 *
 * Build & run:  ./build/examples/custom_kernel
 */

#include <cstdio>
#include <cstdint>

#include "base/rng.hh"
#include "ep/pmem_ops.hh"
#include "kernels/env.hh"
#include "lp/checksum_table.hh"
#include "lp/runtime.hh"
#include "pmem/arena.hh"
#include "pmem/crash.hh"
#include "sim/machine.hh"
#include "sim/scheduler.hh"

using namespace lp;
using kernels::SimEnv;

namespace
{

constexpr int num_items = 1 << 16;
constexpr int num_buckets = 256;
constexpr int num_threads = 4;

struct App
{
    const std::uint64_t *items;   // durable input
    std::uint64_t *partial;       // per-thread histograms (regions)
    std::uint64_t *histogram;     // merged result
    core::ChecksumTable *table;
};

/**
 * Region t: thread t's partial histogram over its slice of the
 * input. Associative with every other region (merge is addition)
 * and idempotent given the durable input.
 */
void
histogramRegion(SimEnv &env, const App &app, int t, bool eager)
{
    core::LpRegion region(*app.table, core::ChecksumKind::Modular);
    region.reset(env);
    std::uint64_t *mine = app.partial +
                          static_cast<std::size_t>(t) * num_buckets;
    for (int b = 0; b < num_buckets; ++b)
        env.st(&mine[b], std::uint64_t{0});
    const int per = num_items / num_threads;
    for (int i = t * per; i < (t + 1) * per; ++i) {
        const std::uint64_t v = env.ld(&app.items[i]);
        const int b = static_cast<int>(v % num_buckets);
        env.st(&mine[b], mine[b] + 1);
        env.tick(4);
    }
    // Checksum the region's final values, in a fixed order.
    for (int b = 0; b < num_buckets; ++b)
        region.updateWord(env, env.ld(&mine[b]));
    if (eager) {
        ep::flushRange(env, mine,
                       num_buckets * sizeof(std::uint64_t));
        env.sfence();
        region.commitEager(env, t);
    } else {
        region.commit(env, t);
    }
}

/** The merge region (runs after a barrier; key = num_threads). */
void
mergeRegion(SimEnv &env, const App &app, bool eager)
{
    core::LpRegion region(*app.table, core::ChecksumKind::Modular);
    region.reset(env);
    for (int b = 0; b < num_buckets; ++b) {
        std::uint64_t sum = 0;
        for (int t = 0; t < num_threads; ++t) {
            sum += env.ld(&app.partial[
                static_cast<std::size_t>(t) * num_buckets + b]);
        }
        env.st(&app.histogram[b], sum);
        region.updateWord(env, sum);
        env.tick(2 * num_threads);
    }
    if (eager) {
        ep::flushRange(env, app.histogram,
                       num_buckets * sizeof(std::uint64_t));
        env.sfence();
        region.commitEager(env, num_threads);
    } else {
        region.commit(env, num_threads);
    }
}

/** Recompute a region's digest from the current durable data. */
std::uint64_t
digestOf(SimEnv &env, const App &app, int key)
{
    core::ChecksumAcc acc(core::ChecksumKind::Modular);
    if (key < num_threads) {
        const std::uint64_t *mine =
            app.partial + static_cast<std::size_t>(key) * num_buckets;
        for (int b = 0; b < num_buckets; ++b)
            acc.addWord(env.ld(&mine[b]));
    } else {
        for (int b = 0; b < num_buckets; ++b)
            acc.addWord(env.ld(&app.histogram[b]));
    }
    return acc.value();
}

} // namespace

int
main()
{
    sim::MachineConfig cfg;
    cfg.numCores = num_threads;
    cfg.l1 = {8 * 1024, 4, 2};
    cfg.l2 = {64 * 1024, 8, 11};
    pmem::PersistentArena arena(8u << 20);
    sim::Machine machine(cfg, &arena);
    pmem::CrashController crash;
    sim::RegionScheduler sched(machine, num_threads);

    auto *items = arena.alloc<std::uint64_t>(num_items);
    auto *partial = arena.alloc<std::uint64_t>(
        static_cast<std::size_t>(num_threads) * num_buckets);
    auto *histogram = arena.alloc<std::uint64_t>(num_buckets);
    core::ChecksumTable table(arena, num_threads + 1);

    Rng rng(42);
    for (int i = 0; i < num_items; ++i)
        items[i] = rng.next64();
    arena.persistAll();

    App app{items, partial, histogram, &table};

    // --- normal run with an injected crash --------------------------
    auto schedule_all = [&] {
        for (int t = 0; t < num_threads; ++t) {
            sched.add(t, [&, t] {
                SimEnv env(machine, arena, t, &crash);
                histogramRegion(env, app, t, false);
            });
        }
    };
    crash.armAfterStores(num_items / 2);
    bool crashed = false;
    try {
        schedule_all();
        sched.barrier();
        SimEnv env(machine, arena, 0, &crash);
        mergeRegion(env, app, false);
    } catch (const pmem::CrashException &) {
        crashed = true;
        sched.clear();
        machine.loseVolatileState();
        arena.crashRestore();
    }
    std::printf("crash injected: %s\n", crashed ? "yes" : "no");

    // --- recovery: validate each region; recompute the broken ones -
    if (crashed) {
        SimEnv env(machine, arena, 0);
        int repaired = 0;
        for (int t = 0; t < num_threads; ++t) {
            const bool ok = !table.neverCommitted(t) &&
                            table.stored(t) == digestOf(env, app, t);
            if (!ok) {
                histogramRegion(env, app, t, /*eager=*/true);
                ++repaired;
            }
        }
        // The merge depends on every partial region, so validate it
        // last and recompute it if stale.
        const bool merge_ok =
            repaired == 0 && !table.neverCommitted(num_threads) &&
            table.stored(num_threads) ==
                digestOf(env, app, num_threads);
        if (!merge_ok)
            mergeRegion(env, app, /*eager=*/true);
        std::printf("recovery: %d partial histograms recomputed, "
                    "merge %s\n",
                    repaired, merge_ok ? "intact" : "recomputed");
    }

    // --- verify against a plain host computation --------------------
    std::uint64_t expect[num_buckets] = {};
    for (int i = 0; i < num_items; ++i)
        ++expect[items[i] % num_buckets];
    int bad = 0;
    for (int b = 0; b < num_buckets; ++b)
        if (histogram[b] != expect[b])
            ++bad;
    std::printf("verification: %d incorrect buckets (expect 0)\n",
                bad);
    return bad == 0 ? 0 : 1;
}
