/**
 * @file
 * Full tiled-matrix-multiplication crash/recovery walkthrough -- the
 * paper's Section IV scenario, driven through the library's workload
 * and harness layers.
 *
 * Runs tmm+LP on the simulated 8-core NVMM machine, injects a power
 * failure halfway through the store stream, recovers with the
 * per-band Figure 9 procedure, resumes, and verifies the persistent
 * result against a golden host computation. Then repeats the whole
 * exercise with *three* consecutive failures (including one during
 * the recovery's own resumed execution) to show forward progress.
 *
 * Build & run:  ./build/examples/tmm_crash_recovery
 */

#include <cstdio>

#include "kernels/harness.hh"

using namespace lp;
using namespace lp::kernels;

int
main()
{
    sim::MachineConfig cfg;
    cfg.numCores = 8;
    cfg.l1 = {16 * 1024, 8, 2};
    cfg.l2 = {128 * 1024, 8, 11};

    KernelParams params;
    params.n = 128;
    params.bsize = 16;
    params.threads = 8;

    // How many persistent stores does a full run make?
    const auto full = runScheme(KernelId::Tmm, Scheme::Lp, params,
                                cfg);
    const auto total =
        static_cast<std::uint64_t>(full.stat("stores"));
    std::printf("full tmm+LP run: %llu stores, %.1f Mcycles, "
                "verified=%s\n",
                static_cast<unsigned long long>(total),
                full.execCycles / 1e6, full.verified ? "yes" : "NO");

    // --- one crash at 50% ------------------------------------------
    const auto one = runLpWithCrash(KernelId::Tmm, params, cfg,
                                    total / 2);
    std::printf("\ncrash at 50%% of the store stream:\n");
    std::printf("  regions matched by checksum: %llu\n",
                static_cast<unsigned long long>(one.recovery.matched));
    std::printf("  bands repaired (zeroed and recomputed): %llu\n",
                static_cast<unsigned long long>(
                    one.recovery.repaired));
    std::printf("  earliest resumed kk stage: %d of %d\n",
                one.recovery.resumeStage, params.n / params.bsize);
    std::printf("  recovery + resume: %.1f Mcycles\n",
                one.recoveryCycles / 1e6);
    std::printf("  result verified: %s (max abs err %.2e)\n",
                one.verified ? "yes" : "NO", one.maxAbsError);

    // --- three consecutive failures --------------------------------
    const auto many = runLpWithCrashes(
        KernelId::Tmm, params, cfg,
        {total / 2, total / 10, total / 4});
    std::printf("\nthree consecutive power failures (one hits the "
                "recovery itself):\n");
    std::printf("  crashes fired: %d\n", many.crashes);
    std::printf("  result verified: %s (max abs err %.2e)\n",
                many.verified ? "yes" : "NO", many.maxAbsError);

    return (one.verified && many.verified) ? 0 : 1;
}
