#include "engine/commit_pipeline.hh"

#include "base/logging.hh"

namespace lp::engine
{

CommitPipeline::CommitPipeline(const CommitPolicy &policy)
    : policy_(policy)
{
    LP_ASSERT(policy.batchOps >= 1, "need at least one op per epoch");
    LP_ASSERT(policy.foldBatches >= 1,
              "need at least one epoch per fold");
}

std::uint64_t
CommitPipeline::beginEpoch()
{
    LP_ASSERT(!open_, "epoch already open");
    open_ = true;
    stagedOps_ = 0;
    return lastCommitted_ + 1;
}

std::uint64_t
CommitPipeline::openEpoch() const
{
    LP_ASSERT(open_, "no open epoch");
    return lastCommitted_ + 1;
}

bool
CommitPipeline::stageOp()
{
    LP_ASSERT(open_, "stageOp without an open epoch");
    ++stagedOps_;
    ++counters_.opsStaged;
    return stagedOps_ >= policy_.batchOps;
}

bool
CommitPipeline::commitEpoch()
{
    if (!open_)
        return false;
    ++lastCommitted_;
    open_ = false;
    stagedOps_ = 0;
    openTraceId_ = 0;
    ++committedSinceFold_;
    ++counters_.epochsCommitted;
    return true;
}

bool
CommitPipeline::foldDue() const
{
    return committedSinceFold_ >= policy_.foldBatches;
}

void
CommitPipeline::noteFold()
{
    LP_ASSERT(!open_, "fold with an open epoch");
    foldedEpoch_ = lastCommitted_;
    committedSinceFold_ = 0;
    ++counters_.folds;
}

void
CommitPipeline::syncDurable()
{
    LP_ASSERT(!open_, "durable sync with an open epoch");
    foldedEpoch_ = lastCommitted_;
    committedSinceFold_ = 0;
}

void
CommitPipeline::rebase(std::uint64_t committed)
{
    open_ = false;
    stagedOps_ = 0;
    openTraceId_ = 0;
    committedSinceFold_ = 0;
    lastCommitted_ = committed;
    foldedEpoch_ = committed;
    pending_.clear();
}

void
CommitPipeline::notePending(std::uint64_t epoch, Clock::time_point at)
{
    LP_ASSERT(pending_.empty() || pending_.back().epoch <= epoch,
              "pending acks must arrive in epoch order");
    pending_.push_back(PendingAck{epoch, at});
}

CommitPipeline::Clock::time_point
CommitPipeline::ackDeadline() const
{
    LP_ASSERT(hasPending(), "no pending ack to bound");
    return pending_.front().at + policy_.flushDeadline;
}

bool
CommitPipeline::commitDue(Clock::time_point now) const
{
    return hasPending() && now >= ackDeadline();
}

void
CommitPipeline::noteDeadlineCommit()
{
    ++counters_.deadlineCommits;
}

std::size_t
CommitPipeline::releaseUpTo(std::uint64_t committed)
{
    std::size_t n = 0;
    while (!pending_.empty() && pending_.front().epoch <= committed) {
        pending_.pop_front();
        ++n;
    }
    counters_.acksReleased += n;
    return n;
}

} // namespace lp::engine
