/**
 * @file
 * lp::engine::CommitPipeline -- epoch/group-commit scheduling shared
 * by every consumer of the Lazy Persistency discipline.
 *
 * One pipeline instance sequences the epochs of ONE shard: batch
 * accumulation (stage until batchOps ops), commit bookkeeping (the
 * open epoch is always lastCommitted + 1), fold-period accounting
 * (an eager checkpoint is due every foldBatches committed epochs),
 * flush-deadline scheduling for services that must not hold
 * acknowledgements hostage to future traffic, and per-epoch stats
 * under the canonical names of engine/stat_names.hh.
 *
 * The pipeline is pure volatile bookkeeping: it never touches
 * persistent memory and never looks at a clock. The persistency
 * backend (store/backend_*.hh) performs the actual journal/table
 * writes and tells the pipeline what happened; callers that need
 * deadline behavior pass their own time points in. That split keeps
 * the scheduling logic deterministic and unit-testable (no sleeps)
 * and lets the instrumented simulator and the native server share it
 * unchanged.
 *
 * Threading: a pipeline belongs to its shard's single writer (the
 * env.hh single-writer-per-shard contract); nothing here is
 * synchronized.
 */

#ifndef LP_ENGINE_COMMIT_PIPELINE_HH
#define LP_ENGINE_COMMIT_PIPELINE_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>

namespace lp::obs
{
struct ShardObs;
} // namespace lp::obs

namespace lp::engine
{

/** Batching/commit-scheduling parameters of one shard. */
struct CommitPolicy
{
    /** Ops per epoch; the epoch commits when it holds this many. */
    int batchOps = 32;

    /** Fold (eager checkpoint) every this many committed epochs. */
    int foldBatches = 64;

    /**
     * Commit an underfilled epoch once its oldest pending
     * acknowledgement has waited this long (services only; callers
     * without ack scheduling never consult it).
     */
    std::chrono::microseconds flushDeadline{2000};
};

/** Monotonic counters, keyed by engine/stat_names.hh when emitted. */
struct PipelineCounters
{
    std::uint64_t opsStaged = 0;
    std::uint64_t epochsCommitted = 0;
    std::uint64_t folds = 0;
    std::uint64_t deadlineCommits = 0;
    std::uint64_t acksReleased = 0;
};

/**
 * Epoch sequencing + fold accounting + deadline-bounded ack release
 * for one shard. Invariant throughout: the open epoch (when one is
 * open) is exactly lastCommitted() + 1, and foldedEpoch() trails
 * lastCommitted() by at most foldBatches epochs.
 */
class CommitPipeline
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit CommitPipeline(const CommitPolicy &policy);

    const CommitPolicy &policy() const { return policy_; }

    /// @name Epoch sequencing
    /// @{

    bool epochOpen() const { return open_; }

    /** Open the next epoch (lastCommitted + 1) and return it. */
    std::uint64_t beginEpoch();

    /** The open epoch's number; requires epochOpen(). */
    std::uint64_t openEpoch() const;

    /**
     * Account one staged op; returns true when the open epoch has
     * reached batchOps and must commit. Requires epochOpen().
     */
    bool stageOp();

    /** Ops staged into the open epoch (0 when none is open). */
    int stagedOps() const { return stagedOps_; }

    /**
     * Close the open epoch as committed; false if none was open.
     * After a true return, foldDue() says whether the fold period
     * elapsed.
     */
    bool commitEpoch();

    /** True when committed epochs since the last fold >= foldBatches. */
    bool foldDue() const;

    /** An eager checkpoint ran: advance the durable watermark. */
    void noteFold();

    /**
     * Commit made everything durable in place (WAL transaction, eager
     * per-op flush): advance the watermark without counting a fold.
     */
    void syncDurable();

    /**
     * Rebase onto a recovered/attached image: epoch @p committed is
     * durable, nothing is open or pending.
     */
    void rebase(std::uint64_t committed);

    std::uint64_t lastCommitted() const { return lastCommitted_; }
    std::uint64_t foldedEpoch() const { return foldedEpoch_; }
    int committedSinceFold() const { return committedSinceFold_; }
    /// @}

    /// @name Recoverable-ack scheduling (flush-deadline-bounded)
    /// @{

    /** An ack for @p epoch entered service at @p at. */
    void notePending(std::uint64_t epoch, Clock::time_point at);

    bool hasPending() const { return !pending_.empty(); }
    std::size_t pendingCount() const { return pending_.size(); }

    /**
     * When the oldest pending ack's deadline expires; requires
     * hasPending(). Sleep until here, then commitDue() fires.
     */
    Clock::time_point ackDeadline() const;

    /** True when the oldest pending ack has outwaited the deadline. */
    bool commitDue(Clock::time_point now) const;

    /** The caller committed because commitDue() fired. */
    void noteDeadlineCommit();

    /**
     * Pop every pending ack with epoch <= @p committed and return how
     * many were released.
     */
    std::size_t releaseUpTo(std::uint64_t committed);
    /// @}

    const PipelineCounters &counters() const { return counters_; }

    /// @name Observability
    /// @{

    /**
     * Attach this shard's observability bundle (obs/shard_obs.hh).
     * The pipeline only carries the pointer: the shard owner records
     * into the histograms, and the persistency backends reach the
     * bundle through the pipeline they already hold. @p o must
     * outlive the pipeline (or be detached by attaching nullptr).
     */
    void attachObs(obs::ShardObs *o) { obs_ = o; }

    /** The attached bundle, or nullptr when observability is off. */
    obs::ShardObs *obs() const { return obs_; }

    /**
     * Remember the trace id of the latest request staged into the
     * open epoch. The backend's epoch-commit span uses it as the
     * flow id, so one request's arc in the trace connects through
     * the group commit that made it durable. Volatile bookkeeping
     * only, like everything else here.
     */
    void noteTrace(std::uint64_t traceId)
    {
        if (traceId)
            openTraceId_ = traceId;
    }

    /** Latest trace id staged into the open epoch; 0 = none. */
    std::uint64_t openTraceId() const { return openTraceId_; }
    /// @}

  private:
    struct PendingAck
    {
        std::uint64_t epoch;
        Clock::time_point at;
    };

    CommitPolicy policy_;
    bool open_ = false;
    int stagedOps_ = 0;
    int committedSinceFold_ = 0;
    std::uint64_t lastCommitted_ = 0;
    std::uint64_t foldedEpoch_ = 0;
    std::uint64_t openTraceId_ = 0;
    std::deque<PendingAck> pending_;
    PipelineCounters counters_;
    obs::ShardObs *obs_ = nullptr;
};

} // namespace lp::engine

#endif // LP_ENGINE_COMMIT_PIPELINE_HH
