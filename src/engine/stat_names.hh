/**
 * @file
 * Canonical stat key names for epoch/commit accounting.
 *
 * The store shards, the server's per-worker mirrors, and both JSON
 * benches report the same pipeline counters; before the engine layer
 * existed each site invented its own spelling ("folds" here,
 * "fold_count" there). Every emitter now names counters through these
 * constants so the JSON artifacts stay greppable and diffable across
 * subsystems.
 */

#ifndef LP_ENGINE_STAT_NAMES_HH
#define LP_ENGINE_STAT_NAMES_HH

namespace lp::engine::statname
{

/** Mutations staged into open epochs. */
inline constexpr const char *opsStaged = "ops_staged";

/** Epochs (batches) closed and committed. */
inline constexpr const char *epochsCommitted = "epochs_committed";

/** Eager checkpoints (LP journal folds) performed. */
inline constexpr const char *folds = "folds";

/** Commits forced by the flush deadline, not a full batch. */
inline constexpr const char *deadlineCommits = "deadline_commits";

/** Acknowledgements released by epoch commit. */
inline constexpr const char *acksReleased = "acks_released";

/** Last committed epoch (volatile watermark). */
inline constexpr const char *committedEpoch = "committed_epoch";

/** Operations queued but not yet processed (server workers). */
inline constexpr const char *queueDepth = "queue_depth";

/** Read operations served. */
inline constexpr const char *gets = "gets";

/** Mutations (put/del) applied. */
inline constexpr const char *mutations = "mutations";

/** Range scans served (SCAN protocol op / KvStore::scan). */
inline constexpr const char *scans = "scans";

/** Transactions committed (TXN protocol op, both commit paths). */
inline constexpr const char *txnCommits = "txn_commits";

/** Transactions aborted (wait-die losses surfaced to clients). */
inline constexpr const char *txnAborts = "txn_aborts";

/** Live keys in the shard's ordered index (gauge). */
inline constexpr const char *indexEntries = "index_entries";

/** Resident bytes of the shard's ordered index, limbo included. */
inline constexpr const char *indexBytes = "index_bytes";

/// @name Latency histogram base keys (obs::Histogram, nanoseconds).
/// Emitters append percentile suffixes ("_p50".."_p999") in JSON and
/// rewrite the "_ns" tail to "_seconds" for Prometheus exposition.
/// @{

/** Backend stage(): one mutation staged into the open epoch. */
inline constexpr const char *stageLatNs = "stage_lat_ns";

/** Backend commitEpoch(): sealing one epoch. */
inline constexpr const char *commitLatNs = "commit_lat_ns";

/** Backend fold / eager checkpoint duration. */
inline constexpr const char *foldLatNs = "fold_lat_ns";

/** Backend recover(): one shard's recovery replay. */
inline constexpr const char *recoverLatNs = "recover_lat_ns";

/** Server: decoding one request frame off the socket. */
inline constexpr const char *reqParseNs = "req_parse_ns";

/** Server: request sat in a worker queue before processing. */
inline constexpr const char *reqQueueNs = "req_queue_ns";

/** Server: mutation processed until its epoch committed (ack release). */
inline constexpr const char *reqCommitWaitNs = "req_commit_wait_ns";

/** Server: reply posted by a worker until encoded for the socket. */
inline constexpr const char *reqAckNs = "req_ack_ns";

/** TXN accepted until its commit reply (durable) was posted. */
inline constexpr const char *txnCommitLatNs = "txn_commit_lat_ns";

/** TXN accepted until its abort reply was posted. */
inline constexpr const char *txnAbortLatNs = "txn_abort_lat_ns";

/** KvStore::scan(): whole-scan latency (index walk + value reads). */
inline constexpr const char *scanLatNs = "scan_lat_ns";

/**
 * Records returned per scan. Same histogram machinery as the latency
 * keys (count/percentile suffixes), but the samples are record
 * counts, not nanoseconds -- hence no "_ns" tail.
 */
inline constexpr const char *scanLen = "scan_len";
/// @}

/// @name Per-shard recovery counters (store::RecoveryReport).
/// @{

/** Journal batches replayed during recovery. */
inline constexpr const char *batchesReplayed = "batches_replayed";

/** Individual entries re-applied during recovery. */
inline constexpr const char *entriesReplayed = "entries_replayed";

/** Batches discarded for checksum mismatch / torn writes. */
inline constexpr const char *batchesDiscarded = "batches_discarded";

/** WAL transactions rolled back during recovery. */
inline constexpr const char *walUndone = "wal_undone";

/** 1 when the shard attached to an existing image, else 0. */
inline constexpr const char *recoveryAttached = "recovery_attached";
/// @}

/// @name Media-fault counters (store::MediaCounters, lp::repair).
/// Prometheus exposition spells the first two with a "_total" tail
/// (lp_media_repaired_total / lp_media_unrepairable_total), the
/// conventional counter suffix operators alert on.
/// @{

/** Corrupted structures detected and repaired (parity/replica). */
inline constexpr const char *mediaRepaired = "media_repaired";

/** Proven corruptions with no redundant copy left (quarantine). */
inline constexpr const char *mediaUnrepairable = "media_unrepairable";

/** Journal regions examined by the online scrubber. */
inline constexpr const char *scrubRegions = "scrub_regions";

/** Completed full scrub passes over a shard's covered prefix. */
inline constexpr const char *scrubPasses = "scrub_passes";

/** 1 when the shard is quarantined read-only, else 0 (gauge). */
inline constexpr const char *quarantined = "quarantined";

/** KvStore::scrubStep(): one bounded online-scrub step. */
inline constexpr const char *scrubLatNs = "scrub_lat_ns";
/// @}

/// @name Connection-datapath counters (lp::net, server acceptor).
/// @{

/** Open client connections on the acceptor's event loop (gauge). */
inline constexpr const char *connActive = "conn_active";

/** Bytes queued in per-connection outbufs, unsent (gauge). */
inline constexpr const char *outbufBytes = "outbuf_bytes";

/**
 * iovecs per gathered writev(2) call. Histogram machinery like
 * scan_len: the samples are counts, not nanoseconds.
 */
inline constexpr const char *writevBatch = "writev_batch";

/** read/writev calls that hit EAGAIN (socket saturation). */
inline constexpr const char *eagainTotal = "eagain_total";
/// @}

/// @name Tracing-datapath counters (lp::obs).
/// @{

/**
 * Trace events dropped because a thread's volatile ring filled
 * before the collector drained it. Spelled with the "_total"
 * counter suffix directly: the key only ever appears in Prometheus
 * exposition (there is no JSON mirror to keep suffix-free).
 */
inline constexpr const char *traceDrops = "trace_drops_total";
/// @}

} // namespace lp::engine::statname

#endif // LP_ENGINE_STAT_NAMES_HH
