/**
 * @file
 * Canonical stat key names for epoch/commit accounting.
 *
 * The store shards, the server's per-worker mirrors, and both JSON
 * benches report the same pipeline counters; before the engine layer
 * existed each site invented its own spelling ("folds" here,
 * "fold_count" there). Every emitter now names counters through these
 * constants so the JSON artifacts stay greppable and diffable across
 * subsystems.
 */

#ifndef LP_ENGINE_STAT_NAMES_HH
#define LP_ENGINE_STAT_NAMES_HH

namespace lp::engine::statname
{

/** Mutations staged into open epochs. */
inline constexpr const char *opsStaged = "ops_staged";

/** Epochs (batches) closed and committed. */
inline constexpr const char *epochsCommitted = "epochs_committed";

/** Eager checkpoints (LP journal folds) performed. */
inline constexpr const char *folds = "folds";

/** Commits forced by the flush deadline, not a full batch. */
inline constexpr const char *deadlineCommits = "deadline_commits";

/** Acknowledgements released by epoch commit. */
inline constexpr const char *acksReleased = "acks_released";

/** Last committed epoch (volatile watermark). */
inline constexpr const char *committedEpoch = "committed_epoch";

/** Operations queued but not yet processed (server workers). */
inline constexpr const char *queueDepth = "queue_depth";

/** Read operations served. */
inline constexpr const char *gets = "gets";

/** Mutations (put/del) applied. */
inline constexpr const char *mutations = "mutations";

} // namespace lp::engine::statname

#endif // LP_ENGINE_STAT_NAMES_HH
