#include "server/client.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace lp::server
{

std::uint64_t
retryDelayUs(const RetryPolicy &p, int attempt,
             std::uint64_t &rngState)
{
    // xorshift64*: tiny, stateless beyond the caller's word, and
    // plenty for jitter (this is decorrelation, not cryptography).
    std::uint64_t x = rngState ? rngState : 0x9e3779b97f4a7c15ull;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rngState = x;
    const std::uint64_t rnd = x * 0x2545f4914f6cdd1dull;
    std::uint64_t ceil = p.baseDelayUs;
    for (int i = 0; i < attempt && ceil < p.capDelayUs; ++i)
        ceil <<= 1;
    if (ceil > p.capDelayUs)
        ceil = p.capDelayUs;
    return ceil == 0 ? 0 : rnd % (ceil + 1);  // full jitter [0, ceil]
}

Client::~Client()
{
    close();
}

bool
Client::connectTo(const std::string &host, int port, int timeoutMs)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        return false;
    }
    if (timeoutMs <= 0) {
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            close();
            return false;
        }
        const int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        return true;
    }

    // Bounded handshake: connect non-blocking, poll for writability,
    // then read the verdict out of SO_ERROR (the connect(2) idiom --
    // POLLOUT alone also fires on refusal).
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS) {
            close();
            return false;
        }
        pollfd pf{fd_, POLLOUT, 0};
        int pr;
        do {
            pr = ::poll(&pf, 1, timeoutMs);
        } while (pr < 0 && errno == EINTR);
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        if (pr <= 0 ||
            ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) !=
                0 ||
            soerr != 0) {
            close();
            return false;
        }
    }
    if (::fcntl(fd_, F_SETFL, flags) != 0) {  // back to blocking
        close();
        return false;
    }

    // Default I/O bound: a wedged server turns reads/writes into
    // clean failures instead of hangs, even with timeoutMs = -1 at
    // the recvResponse() layer.
    timeval tv{};
    tv.tv_sec = timeoutMs / 1000;
    tv.tv_usec = long(timeoutMs % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    // poll(2) ignores SO_RCVTIMEO, so recvResponse() must apply the
    // same bound itself when called with timeoutMs = -1.
    readTimeoutMs_ = timeoutMs;
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    readTimeoutMs_ = -1;
    in_.clear();
}

bool
Client::sendRequest(const Request &r)
{
    if (fd_ < 0)
        return false;
    std::vector<std::uint8_t> buf;
    encodeRequest(r, buf);
    std::size_t at = 0;
    while (at < buf.size()) {
        const ssize_t n = ::write(fd_, buf.data() + at,
                                  buf.size() - at);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            close();
            return false;
        }
        at += std::size_t(n);
    }
    return true;
}

std::optional<Response>
Client::recvResponse(int timeoutMs)
{
    if (fd_ < 0)
        return std::nullopt;
    if (timeoutMs < 0)
        timeoutMs = readTimeoutMs_;  // connectTo's read deadline
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeoutMs < 0 ? 0 : timeoutMs);
    for (;;) {
        // Try to decode from what we already have.
        Response resp;
        std::size_t used = 0;
        const Decode d =
            decodeResponse(in_.data(), in_.size(), used, resp);
        if (d == Decode::Ok) {
            in_.consume(used);
            return resp;
        }
        if (d == Decode::Malformed) {
            close();
            return std::nullopt;
        }

        // Need more bytes.
        int waitMs = -1;
        if (timeoutMs >= 0) {
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0)
                return std::nullopt;
            waitMs = int(left);
        }
        pollfd pf{fd_, POLLIN, 0};
        const int pr = ::poll(&pf, 1, waitMs);
        if (pr == 0)
            return std::nullopt;  // timeout
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            close();
            return std::nullopt;
        }
        const ssize_t n =
            ::read(fd_, in_.writePtr(64 * 1024), 64 * 1024);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 &&
                (errno == EAGAIN || errno == EWOULDBLOCK))
                return std::nullopt;  // SO_RCVTIMEO elapsed
            close();  // EOF (server closed us) or hard error
            return std::nullopt;
        }
        in_.commit(std::size_t(n));
    }
}

std::optional<Response>
Client::roundTrip(const Request &r, int timeoutMs)
{
    if (!sendRequest(r))
        return std::nullopt;
    return recvResponse(timeoutMs);
}

std::optional<Response>
Client::get(std::uint64_t key, int timeoutMs)
{
    Request r;
    r.op = Op::Get;
    r.id = nextId();
    r.key = key;
    return roundTrip(r, timeoutMs);
}

std::optional<Response>
Client::put(std::uint64_t key, std::uint64_t value, int timeoutMs)
{
    Request r;
    r.op = Op::Put;
    r.id = nextId();
    r.key = key;
    r.value = value;
    return roundTrip(r, timeoutMs);
}

std::optional<Response>
Client::del(std::uint64_t key, int timeoutMs)
{
    Request r;
    r.op = Op::Del;
    r.id = nextId();
    r.key = key;
    return roundTrip(r, timeoutMs);
}

std::optional<Response>
Client::retryLoop(Request r, const RetryPolicy &policy, int timeoutMs)
{
    for (int attempt = 0;; ++attempt) {
        r.id = nextId();
        ++counters_.attempts;
        auto resp = roundTrip(r, timeoutMs);
        if (!resp || resp->status != Status::Retry ||
            attempt + 1 >= policy.maxAttempts)
            return resp;
        ++counters_.retries;
        const std::uint64_t delay =
            retryDelayUs(policy, attempt, rng_);
        counters_.backoffUs += delay;
        std::this_thread::sleep_for(
            std::chrono::microseconds(delay));
    }
}

std::optional<Response>
Client::putBackoff(std::uint64_t key, std::uint64_t value,
                   const RetryPolicy &policy, int timeoutMs)
{
    Request r;
    r.op = Op::Put;
    r.key = key;
    r.value = value;
    return retryLoop(std::move(r), policy, timeoutMs);
}

std::optional<Response>
Client::delBackoff(std::uint64_t key, const RetryPolicy &policy,
                   int timeoutMs)
{
    Request r;
    r.op = Op::Del;
    r.key = key;
    return retryLoop(std::move(r), policy, timeoutMs);
}

std::optional<Response>
Client::stats(int timeoutMs)
{
    Request r;
    r.op = Op::Stats;
    r.id = nextId();
    return roundTrip(r, timeoutMs);
}

std::optional<Response>
Client::metrics(int timeoutMs)
{
    Request r;
    r.op = Op::Metrics;
    r.id = nextId();
    return roundTrip(r, timeoutMs);
}

std::optional<std::vector<ScanRecord>>
Client::scan(std::uint64_t start, std::uint32_t limit, int timeoutMs)
{
    Request r;
    r.op = Op::Scan;
    r.id = nextId();
    r.key = start;
    r.limit = limit;
    const auto resp = roundTrip(r, timeoutMs);
    if (!resp || resp->status != Status::Ok)
        return std::nullopt;
    std::vector<ScanRecord> records;
    if (!decodeScanBody(resp->body, records)) {
        close();
        return std::nullopt;
    }
    return records;
}

std::optional<Client::TxnResult>
Client::txn(const std::vector<TxnOp> &ops, int timeoutMs)
{
    Request r;
    r.op = Op::Txn;
    r.id = nextId();
    r.txn = ops;
    const auto resp = roundTrip(r, timeoutMs);
    if (!resp)
        return std::nullopt;
    TxnResult out;
    out.status = resp->status;
    if (resp->status == Status::Ok &&
        !decodeTxnReadsBody(resp->body, out.reads)) {
        close();
        return std::nullopt;
    }
    return out;
}

std::optional<Client::TxnResult>
Client::txnBackoff(const std::vector<TxnOp> &ops,
                   const RetryPolicy &policy, int timeoutMs)
{
    for (int attempt = 0;; ++attempt) {
        ++counters_.attempts;
        auto res = txn(ops, timeoutMs);
        if (!res || (res->status != Status::Retry &&
                     res->status != Status::Aborted) ||
            attempt + 1 >= policy.maxAttempts)
            return res;
        if (res->status == Status::Aborted)
            ++counters_.aborts;
        else
            ++counters_.retries;
        const std::uint64_t delay =
            retryDelayUs(policy, attempt, rng_);
        counters_.backoffUs += delay;
        std::this_thread::sleep_for(
            std::chrono::microseconds(delay));
    }
}

std::optional<Response>
Client::shutdownServer(int timeoutMs)
{
    Request r;
    r.op = Op::Shutdown;
    r.id = nextId();
    return roundTrip(r, timeoutMs);
}

int
waitForPortFile(const std::string &dataDir, int timeoutMs)
{
    const std::string path = dataDir + "/PORT";
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeoutMs);
    for (;;) {
        if (FILE *f = std::fopen(path.c_str(), "r")) {
            int port = 0;
            const int got = std::fscanf(f, "%d", &port);
            std::fclose(f);
            if (got == 1 && port > 0)
                return port;
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

} // namespace lp::server
