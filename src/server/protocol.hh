/**
 * @file
 * Wire protocol of lp::server -- a small length-prefixed binary
 * framing over TCP, designed for pipelining (every request carries a
 * client-chosen 64-bit id that its response echoes, so responses may
 * be matched out of order).
 *
 * Frame layout (all integers little-endian):
 *
 *   u32 len        payload bytes following this field (not counting
 *                  the 4 length bytes themselves)
 *   u8  op/status  first payload byte
 *   u64 id         request id, echoed verbatim in the response
 *   ...            op-specific payload (see below)
 *
 * Requests:
 *   GET      op=1  u64 key                          (len 17)
 *   PUT      op=2  u64 key, u64 value               (len 25)
 *   DEL      op=3  u64 key                          (len 17)
 *   BATCH    op=4  u32 n, then n x {u8 sub, u64 key[, u64 value]}
 *                  where sub is 2 (put, with value) or 3 (del)
 *   STATS    op=5  --                               (len 9)
 *   SHUTDOWN op=6  --                               (len 9)
 *   METRICS  op=7  --                               (len 9)
 *   SCAN     op=8  u64 start_key, u32 limit         (len 21)
 *                  limit must be in [1, maxScanRecords]; anything
 *                  else is Malformed at decode time
 *   TXN      op=9  u32 n, then n x {u8 sub, u64 key[, u64 value]}
 *                  where sub is 1 (get), 2 (put, with value),
 *                  3 (del) or 4 (add, with a u64 two's-complement
 *                  delta). n must be in [1, maxTxnOps]. All ops
 *                  commit atomically across shards or none do.
 *
 * Responses:
 *   status=0 Ok        GET carries u64 value; STATS carries a JSON
 *                      text body; METRICS carries a Prometheus text
 *                      exposition body; SCAN carries a binary body of
 *                      u32 count then count x {u64 key, u64 value}
 *                      records in ascending key order (decode with
 *                      decodeScanBody); a committed TXN carries a
 *                      binary body of u32 nGets then nGets x
 *                      {u8 found, u64 value}, one per get sub-op in
 *                      request order (decode with
 *                      decodeTxnReadsBody); PUT/DEL/BATCH/SHUTDOWN
 *                      carry nothing
 *   status=1 NotFound  GET miss (no value)
 *   status=2 Retry     connection over its in-flight budget; resend
 *                      later (backpressure, not an error)
 *   status=3 Err       semantically invalid (e.g. a key in the
 *                      reserved sentinel range)
 *   status=4 Fault     the key's shard hit unrepairable media
 *                      corruption and is quarantined read-only:
 *                      mutations (PUT/DEL/BATCH/TXN) are refused, GET
 *                      and SCAN still work. Not retryable -- an
 *                      operator must replace the backing media (see
 *                      docs/recovery_cookbook.md, corruption triage)
 *   status=5 Aborted   the TXN lost a wait-die conflict and committed
 *                      nothing; retryable (the retry gets a fresh,
 *                      younger timestamp -- back off with jitter)
 *
 * The canonical opcode/status table (one row per op, with frame
 * sizes and status applicability) lives in docs/server_design.md;
 * extend it first when adding an opcode.
 *
 * Robustness rules: a frame whose length field exceeds maxFrameBytes,
 * whose opcode/status is unknown, whose length disagrees with its
 * opcode, or whose BATCH count is oversized or inconsistent is
 * Malformed -- the peer must close the connection. Truncated input is
 * NeedMore: keep the bytes and wait. Decoders never read past the
 * supplied buffer.
 */

#ifndef LP_SERVER_PROTOCOL_HH
#define LP_SERVER_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lp::server
{

/** Request opcodes. */
enum class Op : std::uint8_t
{
    Get = 1,
    Put = 2,
    Del = 3,
    Batch = 4,
    Stats = 5,
    Shutdown = 6,
    Metrics = 7,
    Scan = 8,
    Txn = 9,
};

/** Response status codes. */
enum class Status : std::uint8_t
{
    Ok = 0,
    NotFound = 1,
    Retry = 2,
    Err = 3,
    Fault = 4,    ///< shard quarantined read-only (media fault)
    Aborted = 5,  ///< TXN lost a wait-die conflict; retry with backoff
};

/** Largest accepted payload (the u32 after the length field). */
inline constexpr std::size_t maxFrameBytes = 1u << 20;

/** Largest accepted BATCH op count. */
inline constexpr std::size_t maxBatchOps = 4096;

/**
 * Largest accepted SCAN limit (and largest record count a SCAN
 * response body may carry). 4096 records = 64KiB of body, well under
 * maxFrameBytes; a larger range is paged by re-issuing from the last
 * key returned.
 */
inline constexpr std::size_t maxScanRecords = 4096;

/**
 * Largest accepted TXN op count. Matches txn::maxTxnWriteOps so any
 * wire transaction's write-set fits one PREPARE slot per shard; a
 * bigger multi-key update should be split (only single transactions
 * get cross-shard atomicity anyway).
 */
inline constexpr std::size_t maxTxnOps = 32;

/** One mutation inside a BATCH request. */
struct BatchOp
{
    bool isPut;
    std::uint64_t key;
    std::uint64_t value;  ///< meaningful only when isPut
};

/** One key/value record inside a SCAN response body. */
struct ScanRecord
{
    std::uint64_t key;
    std::uint64_t value;
};

/** One sub-op inside a TXN request. */
struct TxnOp
{
    enum class Kind : std::uint8_t
    {
        Get = 1,
        Put = 2,
        Del = 3,
        Add = 4,  ///< atomic delta (wrapping u64; absent key reads 0)
    };
    Kind kind = Kind::Get;
    std::uint64_t key = 0;
    std::uint64_t value = 0;  ///< Put: value; Add: delta; else unused
};

/** One get result inside a committed TXN response body. */
struct TxnRead
{
    bool found = false;
    std::uint64_t value = 0;
};

/** A decoded request. */
struct Request
{
    Op op = Op::Get;
    std::uint64_t id = 0;
    std::uint64_t key = 0;       ///< GET/PUT/DEL key; SCAN start_key
    std::uint64_t value = 0;
    std::uint32_t limit = 0;     ///< SCAN only
    std::vector<BatchOp> batch;  ///< BATCH only
    std::vector<TxnOp> txn;      ///< TXN only
};

/** A decoded response. */
struct Response
{
    Status status = Status::Ok;
    std::uint64_t id = 0;
    bool hasValue = false;       ///< GET hit: value is meaningful
    std::uint64_t value = 0;
    std::string body;            ///< STATS: JSON; METRICS: exposition
};

/** Outcome of one decode attempt over a byte window. */
enum class Decode
{
    Ok,        ///< one frame decoded; @p consumed bytes were used
    NeedMore,  ///< the window holds only a frame prefix; read more
    Malformed, ///< protocol violation; close the connection
};

/** Append the encoded frame for @p r to @p out. */
void encodeRequest(const Request &r, std::vector<std::uint8_t> &out);

/** Append the encoded frame for @p r to @p out. */
void encodeResponse(const Response &r, std::vector<std::uint8_t> &out);

/**
 * Try to decode one request frame from [@p buf, @p buf + @p n).
 * On Ok, @p out is filled and @p consumed is the frame's total size.
 */
Decode decodeRequest(const std::uint8_t *buf, std::size_t n,
                     std::size_t &consumed, Request &out);

/** Response-side decoder, same contract as decodeRequest. */
Decode decodeResponse(const std::uint8_t *buf, std::size_t n,
                      std::size_t &consumed, Response &out);

/** Render @p records as a SCAN response body (u32 count + records). */
std::string encodeScanBody(const std::vector<ScanRecord> &records);

/**
 * Parse a SCAN response body into @p out. Strict: false (and @p out
 * cleared) unless the count field is within maxScanRecords and the
 * body is exactly 4 + 16 * count bytes. A false return means the
 * peer violated the protocol; treat it like Decode::Malformed.
 */
bool decodeScanBody(const std::string &body,
                    std::vector<ScanRecord> &out);

/**
 * Render get results as a TXN response body (u32 count + count x
 * {u8 found, u64 value}). Always 4 + 9 * count bytes -- never 8, so
 * a TXN Ok frame can never collide with the len==17 GET-value frame.
 */
std::string encodeTxnReadsBody(const std::vector<TxnRead> &reads);

/**
 * Parse a TXN response body into @p out. Strict, like
 * decodeScanBody: count within maxTxnOps, found a clean 0/1, exact
 * size; false means the peer violated the protocol.
 */
bool decodeTxnReadsBody(const std::string &body,
                        std::vector<TxnRead> &out);

/** Human-readable status name (diagnostics). */
std::string statusName(Status s);

} // namespace lp::server

#endif // LP_SERVER_PROTOCOL_HH
