/**
 * @file
 * Observability rendering: the STATS-op JSON snapshot and the
 * METRICS-op Prometheus exposition. Reads only stat mirrors,
 * cross-thread-safe store atomics, and single-writer histograms
 * (the acceptor renders on its own thread; Server::statsJson()
 * callers accept the benign snapshot skew).
 */

#include "server/server_impl.hh"

#include "engine/stat_names.hh"
#include "obs/metrics.hh"
#include "stats/json.hh"

namespace lp::server
{

std::string
Server::Impl::statsJsonNow() const
{
    using stats::JsonValue;
    JsonValue::Object o;
    o["backend"] = store::backendName(cfg.backend);
    o["shards"] = std::uint64_t(cfg.shards);
    o["connections"] = statConns.load(std::memory_order_relaxed);
    o["accepted"] = statAccepted.load(std::memory_order_relaxed);
    o["retries"] = statRetries.load(std::memory_order_relaxed);
    o["errors"] = statErrs.load(std::memory_order_relaxed);
    o["faults"] = statFaults.load(std::memory_order_relaxed);
    namespace sn = engine::statname;
    // Latency keys carry the canonical "_ns" base plus percentile
    // suffixes; values are nanoseconds (bucket midpoints).
    const auto addLat = [](JsonValue::Object &dst, const char *base,
                           const obs::Histogram &h) {
        const obs::Histogram::Summary m = h.summary();
        const std::string b(base);
        dst[b + "_count"] = m.count;
        dst[b + "_p50"] = m.p50Ns;
        dst[b + "_p90"] = m.p90Ns;
        dst[b + "_p99"] = m.p99Ns;
        dst[b + "_p999"] = m.p999Ns;
    };
    // Connection-datapath stats (lp::net): the gauge pair mirrors
    // what the acceptor's event loop sees right now.
    o[sn::connActive] = statConns.load(std::memory_order_relaxed);
    o[sn::outbufBytes] =
        netStats.outbufBytes.load(std::memory_order_relaxed);
    o[sn::eagainTotal] =
        netStats.eagainTotal.load(std::memory_order_relaxed);
    addLat(o, sn::writevBatch, netStats.writevBatch);
    std::uint64_t gets = 0, muts = 0, acks = 0, scans = 0;
    std::uint64_t epochs = 0, folds = 0, deadlines = 0;
    std::uint64_t mediaRepaired = 0, mediaUnrepairable = 0;
    // Txn commits/aborts split across owners: fast path on the
    // shard worker, general path on the acceptor (coordinator).
    std::uint64_t txnC =
        statTxnCommits.load(std::memory_order_relaxed);
    std::uint64_t txnA =
        statTxnAborts.load(std::memory_order_relaxed);
    obs::Histogram txnCommitAll, txnAbortAll;
    txnCommitAll.merge(txnCommitNs);
    txnAbortAll.merge(txnAbortNs);
    JsonValue::Object shards;
    for (const auto &wp : workers) {
        const auto &w = *wp;
        JsonValue::Object s;
        const std::uint64_t g =
            w.statGets.load(std::memory_order_relaxed);
        const std::uint64_t m =
            w.statMuts.load(std::memory_order_relaxed);
        const std::uint64_t sc =
            w.statScans.load(std::memory_order_relaxed);
        const std::uint64_t a =
            w.statAcks.load(std::memory_order_relaxed);
        const std::uint64_t e =
            w.statEpochs.load(std::memory_order_relaxed);
        const std::uint64_t f =
            w.statFolds.load(std::memory_order_relaxed);
        const std::uint64_t d =
            w.statDeadlineCommits.load(std::memory_order_relaxed);
        const std::uint64_t tc =
            w.statTxnCommits.load(std::memory_order_relaxed);
        const std::uint64_t ta =
            w.statTxnAborts.load(std::memory_order_relaxed);
        s[sn::gets] = g;
        s[sn::mutations] = m;
        s[sn::scans] = sc;
        s[sn::txnCommits] = tc;
        s[sn::txnAborts] = ta;
        s[sn::acksReleased] = a;
        s[sn::epochsCommitted] = e;
        s[sn::folds] = f;
        s[sn::deadlineCommits] = d;
        s[sn::committedEpoch] =
            w.statCommittedEpoch.load(std::memory_order_relaxed);
        s[sn::queueDepth] =
            w.statQueueDepth.load(std::memory_order_relaxed);
        // Recovery counters: written once by the worker before
        // the readiness latch, so the acceptor's reads are
        // ordered-after by start()'s latch acquire.
        s[sn::recoveryAttached] =
            std::uint64_t(w.attached ? 1 : 0);
        s[sn::batchesReplayed] = w.report.batchesReplayed;
        s[sn::entriesReplayed] = w.report.entriesReplayed;
        s[sn::batchesDiscarded] = w.report.batchesDiscarded;
        s[sn::walUndone] =
            std::uint64_t(w.report.walUndone ? 1 : 0);
        // Media-fault counters: the store's own atomics, safe to
        // read cross-thread like the histogram mirrors.
        const store::MediaCounters &mc = w.kv->mediaCounters(0);
        const std::uint64_t mr =
            mc.repaired.load(std::memory_order_relaxed);
        const std::uint64_t mu =
            mc.unrepairable.load(std::memory_order_relaxed);
        s[sn::mediaRepaired] = mr;
        s[sn::mediaUnrepairable] = mu;
        s[sn::scrubRegions] =
            mc.scrubRegions.load(std::memory_order_relaxed);
        s[sn::scrubPasses] =
            mc.scrubPasses.load(std::memory_order_relaxed);
        s[sn::quarantined] =
            std::uint64_t(w.kv->quarantined(0) ? 1 : 0);
        mediaRepaired += mr;
        mediaUnrepairable += mu;
        // Ordered-index gauges: the worker's kv atomics, safe to
        // read cross-thread like the histogram mirrors.
        s[sn::indexEntries] = w.kv->indexEntries(0);
        s[sn::indexBytes] = w.kv->indexBytes(0);
        const obs::ShardObs &ob = w.kv->shardObs(0);
        addLat(s, sn::stageLatNs, ob.stageNs);
        addLat(s, sn::commitLatNs, ob.commitNs);
        addLat(s, sn::foldLatNs, ob.foldNs);
        addLat(s, sn::recoverLatNs, ob.recoverNs);
        addLat(s, sn::scanLatNs, ob.scanNs);
        addLat(s, sn::scanLen, ob.scanLen);
        addLat(s, sn::scrubLatNs, ob.scrubNs);
        addLat(s, sn::reqQueueNs, w.queueNs);
        addLat(s, sn::reqCommitWaitNs, w.commitWaitNs);
        shards[std::to_string(w.index)] = std::move(s);
        gets += g;
        muts += m;
        scans += sc;
        txnC += tc;
        txnA += ta;
        acks += a;
        epochs += e;
        folds += f;
        deadlines += d;
        txnCommitAll.merge(w.txnCommitNs);
        txnAbortAll.merge(w.txnAbortNs);
    }
    o[sn::gets] = gets;
    o[sn::mutations] = muts;
    o[sn::scans] = scans;
    o[sn::acksReleased] = acks;
    o[sn::epochsCommitted] = epochs;
    o[sn::folds] = folds;
    o[sn::deadlineCommits] = deadlines;
    o[sn::mediaRepaired] = mediaRepaired;
    o[sn::mediaUnrepairable] = mediaUnrepairable;
    o[sn::txnCommits] = txnC;
    o[sn::txnAborts] = txnA;
    addLat(o, sn::reqParseNs, parseNs);
    addLat(o, sn::reqAckNs, ackNs);
    addLat(o, sn::txnCommitLatNs, txnCommitAll);
    addLat(o, sn::txnAbortLatNs, txnAbortAll);
    o["shard"] = std::move(shards);
    return JsonValue(std::move(o)).render();
}

/**
 * The METRICS-op body: Prometheus text exposition of the same
 * counters plus full latency histogram bucket series, labelled
 * shard="i". Latency metric names rewrite the canonical "_ns"
 * tail to "_seconds" (Prometheus base units).
 */
std::string
Server::Impl::metricsTextNow() const
{
    namespace sn = engine::statname;
    const auto rel = [](const std::atomic<std::uint64_t> &a) {
        return double(a.load(std::memory_order_relaxed));
    };
    const auto promName = [](const char *base) {
        std::string n = std::string("lp_") + base;
        if (n.size() >= 3 && n.compare(n.size() - 3, 3, "_ns") == 0)
            n.replace(n.size() - 3, 3, "_seconds");
        return n;
    };
    obs::MetricsText mt;
    mt.gauge("lp_connections", "", rel(statConns));
    mt.counter("lp_accepted", "", rel(statAccepted));
    mt.counter("lp_retries", "", rel(statRetries));
    mt.counter("lp_errors", "", rel(statErrs));
    mt.counter("lp_faults", "", rel(statFaults));
    mt.counter("lp_malformed", "", rel(statMalformed));
    // Connection-datapath stats (lp::net). lp_conn_active doubles
    // as the vintage gate for the `top` net line, like
    // lp_txn_commits does for the txn line.
    mt.gauge(promName(sn::connActive), "", rel(statConns));
    mt.gauge(promName(sn::outbufBytes), "",
             rel(netStats.outbufBytes));
    mt.counter(promName(sn::eagainTotal), "",
               rel(netStats.eagainTotal));
    mt.histogramRaw(promName(sn::writevBatch), "",
                    netStats.writevBatch);
    for (const auto &wp : workers) {
        const auto &w = *wp;
        const std::string lab =
            "shard=\"" + std::to_string(w.index) + "\"";
        mt.counter(promName(sn::gets), lab, rel(w.statGets));
        mt.counter(promName(sn::mutations), lab, rel(w.statMuts));
        mt.counter(promName(sn::scans), lab, rel(w.statScans));
        mt.counter(promName(sn::txnCommits), lab,
                   rel(w.statTxnCommits));
        mt.counter(promName(sn::txnAborts), lab,
                   rel(w.statTxnAborts));
        mt.gauge(promName(sn::indexEntries), lab,
                 double(w.kv->indexEntries(0)));
        mt.gauge(promName(sn::indexBytes), lab,
                 double(w.kv->indexBytes(0)));
        mt.counter(promName(sn::acksReleased), lab,
                   rel(w.statAcks));
        mt.counter(promName(sn::epochsCommitted), lab,
                   rel(w.statEpochs));
        mt.counter(promName(sn::folds), lab, rel(w.statFolds));
        mt.counter(promName(sn::deadlineCommits), lab,
                   rel(w.statDeadlineCommits));
        mt.gauge(promName(sn::committedEpoch), lab,
                 rel(w.statCommittedEpoch));
        mt.gauge(promName(sn::queueDepth), lab,
                 rel(w.statQueueDepth));
        mt.counter(promName(sn::recoveryAttached), lab,
                   w.attached ? 1.0 : 0.0);
        mt.counter(promName(sn::batchesReplayed), lab,
                   double(w.report.batchesReplayed));
        mt.counter(promName(sn::entriesReplayed), lab,
                   double(w.report.entriesReplayed));
        mt.counter(promName(sn::batchesDiscarded), lab,
                   double(w.report.batchesDiscarded));
        mt.counter(promName(sn::walUndone), lab,
                   w.report.walUndone ? 1.0 : 0.0);
        const store::MediaCounters &mc = w.kv->mediaCounters(0);
        const auto mcrel = [](const std::atomic<std::uint64_t> &a) {
            return double(a.load(std::memory_order_relaxed));
        };
        mt.counter("lp_media_repaired_total", lab,
                   mcrel(mc.repaired));
        mt.counter("lp_media_unrepairable_total", lab,
                   mcrel(mc.unrepairable));
        mt.counter(promName(sn::scrubRegions), lab,
                   mcrel(mc.scrubRegions));
        mt.counter(promName(sn::scrubPasses), lab,
                   mcrel(mc.scrubPasses));
        mt.gauge(promName(sn::quarantined), lab,
                 w.kv->quarantined(0) ? 1.0 : 0.0);
        const obs::ShardObs &ob = w.kv->shardObs(0);
        mt.histogramNs(promName(sn::stageLatNs), lab, ob.stageNs);
        mt.histogramNs(promName(sn::commitLatNs), lab,
                       ob.commitNs);
        mt.histogramNs(promName(sn::foldLatNs), lab, ob.foldNs);
        mt.histogramNs(promName(sn::recoverLatNs), lab,
                       ob.recoverNs);
        mt.histogramNs(promName(sn::scanLatNs), lab, ob.scanNs);
        mt.histogramNs(promName(sn::scrubLatNs), lab, ob.scrubNs);
        mt.histogramNs(promName(sn::reqQueueNs), lab, w.queueNs);
        mt.histogramNs(promName(sn::reqCommitWaitNs), lab,
                       w.commitWaitNs);
        // Events the shard's trace ring refused because it was full.
        // The flight recorder tees BEFORE the full-check, so drops
        // mean lost Chrome-trace detail, not lost flight coverage.
        // Doubles as the vintage gate for lazyper_cli top's `drops`
        // column (shard="0" is always present when this vintage
        // serves METRICS).
        if (w.ring)
            mt.counter(promName(sn::traceDrops), lab,
                       double(w.ring->dropped()));
    }
    if (acceptRing)
        mt.counter(promName(sn::traceDrops), "thread=\"acceptor\"",
                   double(acceptRing->dropped()));
    mt.histogramNs(promName(sn::reqParseNs), "", parseNs);
    mt.histogramNs(promName(sn::reqAckNs), "", ackNs);
    // Unlabelled totals: both commit paths summed. Scrapers (and
    // lazyper_cli top's vintage gate) key on lp_txn_commits.
    std::uint64_t txnC =
        statTxnCommits.load(std::memory_order_relaxed);
    std::uint64_t txnA =
        statTxnAborts.load(std::memory_order_relaxed);
    obs::Histogram txnCommitAll, txnAbortAll;
    txnCommitAll.merge(txnCommitNs);
    txnAbortAll.merge(txnAbortNs);
    for (const auto &wp : workers) {
        txnC += wp->statTxnCommits.load(std::memory_order_relaxed);
        txnA += wp->statTxnAborts.load(std::memory_order_relaxed);
        txnCommitAll.merge(wp->txnCommitNs);
        txnAbortAll.merge(wp->txnAbortNs);
    }
    mt.counter(promName(sn::txnCommits), "", double(txnC));
    mt.counter(promName(sn::txnAborts), "", double(txnA));
    mt.histogramNs(promName(sn::txnCommitLatNs), "", txnCommitAll);
    mt.histogramNs(promName(sn::txnAbortLatNs), "", txnAbortAll);
    return mt.str();
}

} // namespace lp::server
