/**
 * @file
 * Cross-shard transaction machinery (docs/txn_design.md): the
 * acceptor-side coordinator (routeTxn, vote collection, the
 * decision append) and the worker-side participant (lock
 * acquisition, prepare, fast-path commit).
 */

#include "server/server_impl.hh"

#include <sys/stat.h>

#include <algorithm>
#include <map>
#include <optional>

#include "base/logging.hh"

namespace lp::server
{

void
Server::Impl::postTxnEvent(TxnEvent ev)
{
    bool wasEmpty;
    {
        std::lock_guard<std::mutex> g(txnMu);
        wasEmpty = txnEvents.empty();
        txnEvents.push_back(std::move(ev));
    }
    // Empty->nonempty edge only, like postReply: one wake drains all.
    if (wasEmpty)
        wakeFd.signal();
}

/**
 * Service the fallout of a lock release: resume parked parts the
 * release granted, abort the ones it killed (whose own releases
 * can grant/kill further waiters -- hence the worklist), then
 * retry deferred work.
 */
void
Server::Impl::serviceLockEvents(Worker &w, txn::LockTable::Events ev)
{
    while (!ev.granted.empty() || !ev.died.empty()) {
        txn::LockTable::Events next;
        for (const auto id : ev.died)
            abortParked(w, id, next);
        for (const auto id : ev.granted)
            resumeParked(w, id, next);
        ev = std::move(next);
    }
    retryDeferred(w);
}

void
Server::Impl::resumeParked(Worker &w, txn::TxnId id,
                           txn::LockTable::Events &ev)
{
    const auto it = w.parked.find(id);
    if (it == w.parked.end())
        return;
    const Worker::ParkedTxn pk = std::move(it->second);
    w.parked.erase(it);
    // The awaited key (index pk.next) was just granted to us;
    // continue the plan past it.
    if (acquireTxnLocks(w, pk.ctx, pk.part, pk.next + 1, ev))
        prepareTxnPart(w, pk.ctx, pk.part);
}

void
Server::Impl::abortParked(Worker &w, txn::TxnId id,
                          txn::LockTable::Events &ev)
{
    const auto it = w.parked.find(id);
    if (it == w.parked.end())
        return;
    const Worker::ParkedTxn pk = std::move(it->second);
    w.parked.erase(it);
    const TxnCtx::Part &part = pk.ctx->parts[pk.part];
    // Keys before the awaited index are held; drop them. (The
    // lock table already removed the killed waiter entry.)
    w.lockTable.releaseAll(
        id,
        {part.lockKeys.begin(),
         part.lockKeys.begin() + std::ptrdiff_t(pk.next)},
        ev);
    abortTxnPart(w, pk.ctx, pk.part, false);
}

/**
 * Drive @p partIdx's lock plan from index @p next. True once
 * every lock is held; false when the part parked (resumed by a
 * later grant) or died (already aborted here).
 */
bool
Server::Impl::acquireTxnLocks(Worker &w,
                              const std::shared_ptr<TxnCtx> &ctx,
                              std::size_t partIdx, std::size_t next,
                              txn::LockTable::Events &ev)
{
    const TxnCtx::Part &part = ctx->parts[partIdx];
    for (; next < part.lockKeys.size(); ++next) {
        const auto got =
            w.lockTable.acquire(ctx->txnid, part.lockKeys[next],
                                part.lockModes[next]);
        if (got == txn::Acquire::Granted)
            continue;
        if (got == txn::Acquire::Waiting) {
            w.parked[ctx->txnid] =
                Worker::ParkedTxn{ctx, partIdx, next};
            return false;
        }
        // Wait-die says die: drop what we hold and abort.
        w.lockTable.releaseAll(
            ctx->txnid,
            {part.lockKeys.begin(),
             part.lockKeys.begin() + std::ptrdiff_t(next)},
            ev);
        abortTxnPart(w, ctx, partIdx, false);
        return false;
    }
    return true;
}

/** This part is out (locks already dropped): reply directly on
 *  the fast path, else vote Aborted to the coordinator. */
void
Server::Impl::abortTxnPart(Worker &w,
                           const std::shared_ptr<TxnCtx> &ctx,
                           std::size_t partIdx, bool faulted)
{
    if (faulted)
        ctx->faulted.store(true, std::memory_order_release);
    if (ctx->fastPath) {
        w.statTxnAborts.fetch_add(1, std::memory_order_relaxed);
        w.txnAbortNs.record(obs::nowNs() - ctx->tStartNs);
        postReply(ctx->connId,
                  statusReply(faulted ? Status::Fault
                                      : Status::Aborted,
                              ctx->reqId));
        return;
    }
    ctx->abortedParts.fetch_add(1, std::memory_order_relaxed);
    postTxnEvent(TxnEvent{TxnEvent::Kind::Aborted, partIdx, ctx});
}

/**
 * Locks held: resolve this part's ops in wire order against an
 * overlay (read-your-writes; Add deltas become concrete values;
 * last write per key wins, first-write order), fill the
 * transaction's read slots, then run the single-shard fast path
 * or publish the PREPARE vote.
 */
void
Server::Impl::prepareTxnPart(Worker &w,
                             const std::shared_ptr<TxnCtx> &ctx,
                             std::size_t partIdx)
{
    TxnCtx::Part &part = ctx->parts[partIdx];

    // Quarantine backstop on the owning thread (the acceptor's
    // precheck can race with a scrub discovering corruption).
    if (part.hasWrites && w.kv->quarantined(0)) {
        txn::LockTable::Events ev;
        w.lockTable.releaseAll(ctx->txnid, part.lockKeys, ev);
        abortTxnPart(w, ctx, partIdx, true);
        serviceLockEvents(w, std::move(ev));
        return;
    }

    std::unordered_map<std::uint64_t,
                       std::optional<std::uint64_t>>
        overlay;
    std::vector<std::uint64_t> writeOrder;
    const auto current =
        [&](std::uint64_t key) -> std::optional<std::uint64_t> {
        const auto it = overlay.find(key);
        if (it != overlay.end())
            return it->second;
        return w.kv->get(w.env, key);
    };
    const auto noteWrite = [&](std::uint64_t key) {
        if (overlay.find(key) == overlay.end())
            writeOrder.push_back(key);
    };
    for (const auto opIdx : part.ops) {
        const TxnOp &op = ctx->ops[opIdx];
        switch (op.kind) {
          case TxnOp::Kind::Get: {
            const auto v = current(op.key);
            ctx->reads[std::size_t(ctx->readSlot[opIdx])] =
                TxnRead{v.has_value(), v.value_or(0)};
            break;
          }
          case TxnOp::Kind::Put:
            noteWrite(op.key);
            overlay[op.key] = op.value;
            break;
          case TxnOp::Kind::Del:
            noteWrite(op.key);
            overlay[op.key] = std::nullopt;
            break;
          case TxnOp::Kind::Add: {
            const auto v = current(op.key);
            noteWrite(op.key);
            overlay[op.key] = v.value_or(0) + op.value;
            break;
          }
        }
    }
    part.writes.clear();
    for (const auto key : writeOrder) {
        const auto &val = overlay[key];
        part.writes.push_back(txn::WriteOp{key, val.value_or(0),
                                           !val.has_value()});
    }

    if (ctx->fastPath) {
        commitTxnFast(w, ctx, part);
        return;
    }

    if (!part.writes.empty()) {
        std::size_t slot = w.plog->alloc(w.env);
        if (slot == txn::PrepareLog<kernels::NativeEnv>::npos) {
            // Pressure valve: a checkpoint makes every gated
            // free eligible; then retry once.
            w.kv->checkpoint(w.env);
            sweepSlotFrees(w);
            slot = w.plog->alloc(w.env);
        }
        if (slot == txn::PrepareLog<kernels::NativeEnv>::npos) {
            txn::LockTable::Events ev;
            w.lockTable.releaseAll(ctx->txnid, part.lockKeys, ev);
            abortTxnPart(w, ctx, partIdx, false);
            serviceLockEvents(w, std::move(ev));
            return;
        }
        w.plog->publish(w.env, slot, ctx->txnid,
                        part.writes.data(), part.writes.size());
        part.slot = slot;
        ++w.unappliedTxns;
    }
    part.prepared = true;
    postTxnEvent(TxnEvent{TxnEvent::Kind::Prepared, partIdx, ctx});
}

/**
 * Single-shard fast path: stage the whole write-set as one epoch
 * -- the backend's epoch atomicity (LP discards unsealed batches,
 * WAL rolls back incomplete ones) is then the transaction
 * atomicity, with no prepare slot, no decision record, and no
 * eager protocol flush. This is where LP's commit-latency win
 * over WAL must survive. The reply and the lock release both
 * wait for the epoch commit (releaseAck).
 */
void
Server::Impl::commitTxnFast(Worker &w,
                            const std::shared_ptr<TxnCtx> &ctx,
                            TxnCtx::Part &part)
{
    std::string body = encodeTxnReadsBody(ctx->reads);
    if (part.writes.empty()) {
        // Read-only: nothing to persist, reply straight away.
        txn::LockTable::Events ev;
        w.lockTable.releaseAll(ctx->txnid, part.lockKeys, ev);
        Response r;
        r.status = Status::Ok;
        r.id = ctx->reqId;
        r.body = std::move(body);
        postReply(ctx->connId, std::move(r));
        w.statTxnCommits.fetch_add(1, std::memory_order_relaxed);
        w.txnCommitNs.record(obs::nowNs() - ctx->tStartNs);
        serviceLockEvents(w, std::move(ev));
        return;
    }
    // Pre-flush so the write-set cannot straddle an epoch seal
    // (stage() auto-commits WITH the filling op included, so
    // staged + writes <= batchOps keeps us in one epoch).
    engine::CommitPipeline &pl = w.kv->pipeline(0);
    if (pl.stagedOps() > 0 &&
        pl.stagedOps() + part.writes.size() >
            std::size_t(cfg.batchOps))
        w.kv->commitBatches(w.env);
    std::uint64_t epoch = 0;
    for (const auto &wr : part.writes) {
        epoch = wr.del ? w.kv->del(w.env, wr.key)
                       : w.kv->put(w.env, wr.key, wr.value);
        w.statMuts.fetch_add(1, std::memory_order_relaxed);
    }
    Worker::Pending p;
    p.connId = ctx->connId;
    p.reqId = ctx->reqId;
    p.epoch = epoch;
    p.tStagedNs = obs::nowNs();
    p.txn = ctx;
    p.txnBody = std::move(body);
    w.pending.push_back(std::move(p));
    w.kv->pipeline(0).notePending(epoch, Clock::now());
}

/**
 * Coordinator entry: validate, pick the path, split the wire ops
 * into per-shard parts with their lock plans, and fan out.
 */
void
Server::Impl::routeTxn(Conn &c, Request &req)
{
    for (const TxnOp &t : req.txn) {
        if (t.key > store::maxUserKey) {
            statErrs.fetch_add(1, std::memory_order_relaxed);
            localReply(c, statusReply(Status::Err, req.id));
            return;
        }
    }
    // Quarantine precheck. Unlike BATCH (per-op Fault votes)
    // the worker-side backstop aborts the WHOLE transaction,
    // so this mirror read just refuses early.
    for (const TxnOp &t : req.txn) {
        if (t.kind != TxnOp::Kind::Get &&
            workers[std::size_t(routeShard(t.key, cfg.shards))]
                ->kv->quarantined(0)) {
            statFaults.fetch_add(1, std::memory_order_relaxed);
            localReply(c, statusReply(Status::Fault, req.id));
            return;
        }
    }
    if (c.inflight >= cfg.maxInflightPerConn) {
        statRetries.fetch_add(1, std::memory_order_relaxed);
        localReply(c, statusReply(Status::Retry, req.id));
        return;
    }
    ++c.inflight;
    auto ctx = std::make_shared<TxnCtx>();
    ctx->txnid = nextTxnId++;
    ctx->connId = c.id;
    ctx->reqId = req.id;
    ctx->traceId = obs::traceIdOf(c.id, req.id);
    ctx->tStartNs = obs::nowNs();
    ctx->ops = std::move(req.txn);
    ctx->readSlot.assign(ctx->ops.size(), -1);
    // Split ops by shard into parts (wire order preserved
    // within a part) and count writes for the path choice.
    std::unordered_map<int, std::size_t> partOf;
    std::size_t nWrites = 0;
    for (std::size_t i = 0; i < ctx->ops.size(); ++i) {
        const TxnOp &t = ctx->ops[i];
        const int shard = routeShard(t.key, cfg.shards);
        const auto [pit, fresh] =
            partOf.try_emplace(shard, ctx->parts.size());
        if (fresh) {
            ctx->parts.emplace_back();
            ctx->parts.back().shard = shard;
        }
        TxnCtx::Part &part = ctx->parts[pit->second];
        part.ops.push_back(std::uint32_t(i));
        if (t.kind == TxnOp::Kind::Get) {
            ctx->readSlot[i] = int(ctx->reads.size());
            ctx->reads.emplace_back();
        } else {
            part.hasWrites = true;
            ++nWrites;
        }
    }
    // Lock plan per part: keys sorted ascending, mode = max
    // over the part's ops on that key (ordered map dedups).
    for (auto &part : ctx->parts) {
        std::map<std::uint64_t, txn::LockMode> modes;
        for (const auto opIdx : part.ops) {
            const TxnOp &t = ctx->ops[opIdx];
            txn::LockMode &m = modes[t.key];
            if (t.kind != TxnOp::Kind::Get)
                m = txn::LockMode::Write;
        }
        for (const auto &[key, mode] : modes) {
            part.lockKeys.push_back(key);
            part.lockModes.push_back(mode);
        }
    }
    // Fast path: single shard, and the write-set fits one
    // epoch of a batching backend (eager persists per op, so
    // it can never make a multi-write set crash-atomic
    // without the prepare/decision protocol).
    ctx->fastPath =
        ctx->parts.size() == 1 &&
        (nWrites == 0 ||
         (cfg.backend != store::Backend::EagerPerOp &&
          nWrites <= std::size_t(cfg.batchOps)));
    ctx->votesLeft.store(int(ctx->parts.size()),
                         std::memory_order_relaxed);
    const std::uint64_t tEnq = obs::nowNs();
    for (std::size_t i = 0; i < ctx->parts.size(); ++i) {
        OpItem it;
        it.kind = OpItem::Kind::Txn;
        it.connId = c.id;
        it.reqId = req.id;
        it.tEnqNs = tEnq;
        it.traceId = ctx->traceId;
        it.txn = ctx;
        it.part = i;
        enqueue(ctx->parts[i].shard, std::move(it));
    }
}

/** Collect participant votes; the last vote decides the txn. */
void
Server::Impl::drainTxnEvents()
{
    std::vector<TxnEvent> local;
    {
        std::lock_guard<std::mutex> g(txnMu);
        local.swap(txnEvents);
    }
    for (TxnEvent &ev : local) {
        if (ev.ctx->votesLeft.fetch_sub(
                1, std::memory_order_acq_rel) != 1)
            continue;
        finishTxn(ev.ctx);
    }
}

/**
 * Every participant voted (general path only; the fast path never
 * posts events). Unanimous PREPARE commits; any Aborted vote
 * aborts. Either way every part gets a follow-up op -- read-only
 * parts included, since they hold locks to release.
 */
void
Server::Impl::finishTxn(const std::shared_ptr<TxnCtx> &ctx)
{
    const std::uint64_t tEnq = obs::nowNs();
    if (ctx->abortedParts.load(std::memory_order_acquire) > 0) {
        for (std::size_t i = 0; i < ctx->parts.size(); ++i) {
            if (!ctx->parts[i].prepared)
                continue;
            OpItem it;
            it.kind = OpItem::Kind::TxnAbort;
            it.tEnqNs = tEnq;
            it.traceId = ctx->traceId;
            it.txn = ctx;
            it.part = i;
            enqueue(ctx->parts[i].shard, std::move(it));
        }
        const bool faulted =
            ctx->faulted.load(std::memory_order_acquire);
        if (faulted)
            statFaults.fetch_add(1, std::memory_order_relaxed);
        statTxnAborts.fetch_add(1, std::memory_order_relaxed);
        txnAbortNs.record(obs::nowNs() - ctx->tStartNs);
        postReply(ctx->connId,
                  statusReply(faulted ? Status::Fault
                                      : Status::Aborted,
                              ctx->reqId));
        return;
    }
    bool anyWrites = false;
    for (const auto &part : ctx->parts)
        if (!part.writes.empty())
            anyWrites = true;
    // The decision append (store + flush + fence) IS the commit:
    // with every vote durable, the record makes the outcome
    // recoverable, so the client reply goes out now and the
    // applies stay lazy.
    if (anyWrites)
        dlog->append(txnEnv, ctx->txnid);
    Response r;
    r.status = Status::Ok;
    r.id = ctx->reqId;
    r.body = encodeTxnReadsBody(ctx->reads);
    postReply(ctx->connId, std::move(r));
    statTxnCommits.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t commitDt = obs::nowNs() - ctx->tStartNs;
    txnCommitNs.record(commitDt);
    // Coordinator-side span covering route->decision; the flow id
    // connects it to the per-shard prepare/apply queue spans.
    obs::traceSpanFrom(acceptRing, "txn_commit", ctx->tStartNs,
                       ctx->txnid, ctx->traceId);
    txnCommitNs.recordExemplar(commitDt, ctx->traceId);
    for (std::size_t i = 0; i < ctx->parts.size(); ++i) {
        OpItem it;
        it.kind = OpItem::Kind::TxnApply;
        it.tEnqNs = tEnq;
        it.traceId = ctx->traceId;
        it.txn = ctx;
        it.part = i;
        enqueue(ctx->parts[i].shard, std::move(it));
    }
}

/**
 * Map (or create) the coordinator's decision log and scan it.
 * Runs on the start() thread before the acceptor spawns; the
 * thread-creation fence publishes dlog to the acceptor, and the
 * readiness latch orders the scan before any worker's TxnRecover.
 */
void
Server::Impl::openTxnLog()
{
    const std::string path = cfg.dataDir + "/txnlog.lpdb";
    struct stat st{};
    const bool attach =
        ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
    txnArena = std::make_unique<pmem::PersistentArena>(
        txn::decisionLogBytes(cfg.txnDecisionEntries), path);
    dlog = std::make_unique<txn::DecisionLog<kernels::NativeEnv>>(
        *txnArena, cfg.txnDecisionEntries, attach);
    if (!attach)
        txnArena->persistAll();
    dlogMaxTxnId = dlog->scan(txnEnv);
}

} // namespace lp::server
