/**
 * @file
 * lp::server -- a sharded multi-threaded TCP front-end over the
 * lp::store key-value store (native build, NativeEnv).
 *
 * Architecture (docs/server_design.md has the full story):
 *
 *  - One acceptor thread owns the listen socket, a net::EventLoop
 *    (edge-triggered epoll), and every connection's datapath state
 *    machine (net::Connection: buffered non-blocking reads, gathered
 *    writev replies, outbuf backpressure). It decodes protocol
 *    frames (server/protocol.hh) and routes each operation by key
 *    hash to a worker. docs/net_design.md covers the datapath.
 *
 *  - N shared-nothing worker threads. Each worker exclusively owns
 *    one single-shard KvStore<NativeEnv> over its own file-backed
 *    PersistentArena (dataDir/shard-<i>.lpdb), honoring the
 *    single-writer-per-shard contract of src/kernels/env.hh. Workers
 *    coalesce mutations into the store's LP batches and commit on
 *    batch-full or when the oldest unacknowledged mutation exceeds
 *    the flush deadline.
 *
 *  - Acknowledgement = recoverability. A mutation's reply is held
 *    until its batch's epoch commits (LP/WAL); the eager backend
 *    replies per-op since each op persists in place. The SIGKILL
 *    integration test holds the server to exactly this promise.
 *
 *  - Backpressure: at most maxInflightPerConn operations may be
 *    outstanding per connection; excess requests get Status::Retry.
 *
 * Startup runs shard recovery (journal replay / WAL undo) on each
 * worker's own thread BEFORE the port is bound, so no request can
 * observe pre-recovery state. The bound port (ephemeral when
 * cfg.port == 0) is published to dataDir/PORT via atomic rename.
 * Graceful shutdown (SIGTERM/SIGINT via installSignalHandlers(), the
 * SHUTDOWN op, or stop()) stops accepting, drains worker queues,
 * checkpoints every shard (eager fold), flushes pending replies, and
 * closes.
 */

#ifndef LP_SERVER_SERVER_HH
#define LP_SERVER_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "lp/checksum.hh"
#include "store/layout.hh"

namespace lp::server
{

/** Tunables of one server instance. */
struct ServerConfig
{
    std::string host = "127.0.0.1";

    /** TCP port; 0 picks an ephemeral port (read it via port()). */
    int port = 0;

    /** Directory for shard backing files and the PORT file. */
    std::string dataDir = ".";

    /** Worker threads = store shards (each worker owns one). */
    int shards = 4;

    store::Backend backend = store::Backend::Lp;

    /** Max live keys per shard (each shard is its own KvStore). */
    std::size_t capacityPerShard = 1 << 14;

    /** Mutations per LP batch / WAL transaction (per shard). */
    int batchOps = 32;

    /** LP: eager fold period, in committed batches (per shard). */
    int foldBatches = 64;

    core::ChecksumKind checksum = core::ChecksumKind::Modular;

    /**
     * Commit an underfilled batch once its oldest unacknowledged
     * mutation has waited this long, bounding ack latency for slow
     * or lone clients.
     */
    std::uint64_t flushDeadlineUs = 2000;

    /** Backpressure: outstanding ops allowed per connection. */
    std::uint32_t maxInflightPerConn = 256;

    /**
     * PREPARE slots per shard = cross-shard transactions a shard may
     * have in flight (prepared or awaiting their durability-gated
     * slot free). Exhaustion checkpoints the shard as a pressure
     * valve before refusing with Retry.
     */
    std::size_t txnPrepareSlots = 128;

    /** COMMIT records in the coordinator ring (dataDir/txnlog.lpdb). */
    std::size_t txnDecisionEntries = 4096;

    /** Connection cap; further accepts are closed immediately. */
    int maxConns = 256;

    /**
     * Backpressure high watermark on a connection's unsent reply
     * bytes: at or above it the acceptor stops reading (and hence
     * decoding) that connection until the outbuf drains below half
     * this limit, so a slow reader cannot balloon server memory.
     */
    std::size_t outbufLimitBytes = 1 << 20;

    /**
     * Online-scrub throttle: a worker runs one bounded scrub step
     * (scrubRegions journal regions) at most once per this many
     * milliseconds, and only off the request path -- when its queue
     * drained empty that round. 0 disables scrubbing.
     */
    std::uint64_t scrubIntervalMs = 100;

    /** Regions validated per scrub step (the step's work bound). */
    std::size_t scrubRegions = 32;

    /** Suppress the startup/shutdown log lines. */
    bool quiet = false;

    /**
     * When non-empty, collect trace spans (epoch commits, folds,
     * recovery, deadline commits, connection lifecycles) and write a
     * Chrome trace-event JSON file here during shutdown.
     */
    std::string traceOut;

    /** Trace ring capacity per traced thread (events; power of 2). */
    std::size_t traceRingCapacity = 1 << 14;

    /**
     * Crash-persistent flight recorder: events per shard ring,
     * rounded up to a power of two (obs::FlightRing). Each worker
     * carves its ring out of the FRONT of its shard arena and tees
     * every trace span into it with LP-style plain stores, sealing a
     * watermark as epochs commit; `lazyper_cli postmortem <dataDir>`
     * decodes the rings from the raw shard files after a crash.
     * 0 disables (and shrinks the arena accordingly).
     */
    std::uint32_t flightEvents = 4096;
};

/** Aggregate of what startup recovery found across all shards. */
struct ServerRecovery
{
    /** Shards that re-attached an existing backing file. */
    int shardsAttached = 0;

    std::uint64_t batchesReplayed = 0;
    std::uint64_t entriesReplayed = 0;
    std::uint64_t batchesDiscarded = 0;

    /** WAL backend: shards that rolled back an armed transaction. */
    int walUndone = 0;

    /** Media faults repaired during recovery (parity/replica). */
    std::uint64_t mediaRepaired = 0;

    /** Proven-unrepairable faults; such shards start quarantined. */
    std::uint64_t mediaUnrepairable = 0;

    /// @name Cross-shard transaction recovery (docs/txn_design.md).
    /// @{

    /** Committed-but-unapplied transactions re-applied per shard. */
    std::uint64_t txnRolledForward = 0;

    /** Prepared-but-undecided (or torn) votes discarded. */
    std::uint64_t txnRolledBack = 0;

    /** Committed transactions whose applies already survived. */
    std::uint64_t txnSkipped = 0;
    /// @}
};

/**
 * The server. start() recovers + binds + spawns threads and returns;
 * join() blocks until the server has shut down (signal, SHUTDOWN op,
 * or requestStop()). stop() = requestStop() + join(). The destructor
 * stops a still-running server.
 */
class Server
{
  public:
    explicit Server(ServerConfig cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Recover all shards, bind, listen, and start serving. */
    void start();

    /**
     * Ask the server to shut down gracefully. Async-signal-safe
     * (a single eventfd write); returns immediately.
     */
    void requestStop();

    /** Block until the server has fully shut down and drained. */
    void join();

    /** requestStop() + join(). */
    void stop();

    /** The bound TCP port (valid after start()). */
    int port() const;

    /** What startup recovery found (valid after start()). */
    const ServerRecovery &recovery() const;

    /**
     * Route SIGINT/SIGTERM to requestStop(). Install after start();
     * affects process-wide signal disposition.
     */
    void installSignalHandlers();

    /** The STATS-op JSON document (callable from any thread). */
    std::string statsJson() const;

    /**
     * The METRICS-op Prometheus text exposition (callable from any
     * thread): counters, gauges, recovery counters, and latency
     * histogram buckets, labelled per shard.
     */
    std::string metricsText() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace lp::server

#endif // LP_SERVER_SERVER_HH
