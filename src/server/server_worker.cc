/**
 * @file
 * The shared-nothing shard worker: store open/recovery, the
 * dequeue-dispatch-commit-release round, strict-FIFO deferral, and
 * the ack pipeline glue. One thread per shard; see server_impl.hh
 * for the ownership contract.
 */

#include "server/server_impl.hh"

#include <sys/stat.h>

#include <algorithm>

#include "base/logging.hh"

namespace lp::server
{

/**
 * Open (or re-attach) this worker's single-shard store. Runs on
 * the worker's own thread so the debug owner binding and all
 * recovery table writes happen on the thread that will serve the
 * shard.
 */
void
Server::Impl::openStore(Worker &w)
{
    store::StoreConfig scfg;
    scfg.capacity = cfg.capacityPerShard;
    scfg.shards = 1;
    scfg.batchOps = cfg.batchOps;
    scfg.foldBatches = cfg.foldBatches;
    scfg.checksum = cfg.checksum;
    scfg.flushDeadlineUs = cfg.flushDeadlineUs;
    const std::string path = shardPath(w.index);
    struct stat st{};
    const bool attach = ::stat(path.c_str(), &st) == 0 &&
                        st.st_size > 0;
    // Arena budget: the flight-recorder ring FIRST (so postmortem
    // finds it at the arena base offset in the raw file -- the
    // obs::FlightRing placement contract), then the store image,
    // then this shard's PREPARE table, allocated in that order on
    // every open (the arena attach contract).
    const std::size_t flightBytes =
        cfg.flightEvents > 0
            ? obs::FlightRing::bytesFor(cfg.flightEvents)
            : 0;
    w.arena = std::make_unique<pmem::PersistentArena>(
        flightBytes + store::storeArenaBytes(scfg) +
            txn::prepareLogBytes(cfg.txnPrepareSlots),
        path);
    if (cfg.flightEvents > 0)
        w.flight = std::make_unique<obs::FlightRing>(
            *w.arena, cfg.flightEvents, std::uint32_t(w.index));
    w.kv = std::make_unique<store::KvStore<kernels::NativeEnv>>(
        *w.arena, scfg, cfg.backend, attach);
    w.plog = std::make_unique<txn::PrepareLog<kernels::NativeEnv>>(
        *w.arena, cfg.txnPrepareSlots, attach);
    // Attach the trace ring before recovery so the replay's
    // "recover_shard" span lands in the collector -- and tee it
    // into the flight recorder, which persists every span this
    // worker emits (the volatile ring stops at capacity; the
    // flight copy keeps wrapping).
    if (w.ring) {
        w.kv->attachTraceRing(0, w.ring);
        if (w.flight)
            w.ring->attachSink(w.flight.get());
    }
    if (attach) {
        w.report = w.kv->recover(w.env);
        w.attached = true;
    } else {
        w.arena->persistAll();
    }
    w.statCommittedEpoch.store(w.kv->committedEpoch(0),
                               std::memory_order_relaxed);
    w.lastScrub = Clock::now();
    if (w.kv->quarantined(0)) {
        w.quarantineLogged = true;
        warn("lp::server shard " + std::to_string(w.index) +
             " has unrepairable media corruption; serving "
             "read-only (mutations get Fault)");
    }
}

/** Acknowledge one released mutation (direct op or BATCH part). */
void
Server::Impl::releaseAck(Worker &w, Worker::Pending &p)
{
    // Commit-wait span + exemplar: staged -> its epoch committed.
    // Every branch below records commitWaitNs; doing it here once
    // keeps the histogram, the exemplar, and the trace span over
    // the identical interval.
    const std::uint64_t waitDt = obs::nowNs() - p.tStagedNs;
    if (p.connId != 0 || p.txn) {
        obs::traceSpanFrom(w.ring, "commit_wait", p.tStagedNs,
                           p.epoch, p.traceId);
        if (p.traceId)
            w.commitWaitNs.recordExemplar(waitDt, p.traceId);
    }
    if (p.txn) {
        // Fast-path TXN: the epoch carrying the whole write-set
        // committed, so the transaction is durable -- reply, then
        // release the locks (held until now so no later
        // transaction could commit against values a crash might
        // still have discarded with the unsealed batch).
        w.commitWaitNs.record(waitDt);
        Response r;
        r.status = Status::Ok;
        r.id = p.reqId;
        r.body = std::move(p.txnBody);
        postReply(p.connId, std::move(r));
        w.statTxnCommits.fetch_add(1, std::memory_order_relaxed);
        w.txnCommitNs.record(obs::nowNs() - p.txn->tStartNs);
        txn::LockTable::Events ev;
        w.lockTable.releaseAll(
            p.txn->txnid, p.txn->parts[0].lockKeys, ev);
        serviceLockEvents(w, std::move(ev));
        return;
    }
    if (p.connId == 0)
        return;  // internal apply of a committed TXN: no reply
    w.commitWaitNs.record(waitDt);
    if (p.batch) {
        if (p.batch->remaining.fetch_sub(
                1, std::memory_order_acq_rel) != 1)
            return;  // not the last sub-op yet
        Response r;
        r.status = p.batch->faulted.load(std::memory_order_acquire)
                       ? Status::Fault
                       : Status::Ok;
        r.id = p.batch->reqId;
        postReply(p.batch->connId, std::move(r));
        return;
    }
    Response r;
    r.status = Status::Ok;
    r.id = p.reqId;
    postReply(p.connId, std::move(r));
}

/**
 * Release every pending ack whose epoch has committed, and
 * refresh this worker's stat mirrors from the shard pipeline's
 * counters (the single source of truth for epoch accounting).
 */
void
Server::Impl::releaseCommitted(Worker &w)
{
    engine::CommitPipeline &pl = w.kv->pipeline(0);
    const std::uint64_t ce = w.kv->committedEpoch(0);
    const std::uint64_t prevCe =
        w.statCommittedEpoch.load(std::memory_order_relaxed);
    const std::size_t n = pl.releaseUpTo(ce);
    for (std::size_t i = 0; i < n; ++i) {
        LP_ASSERT(!w.pending.empty() &&
                      w.pending.front().epoch <= ce,
                  "reply queue out of sync with pipeline acks");
        releaseAck(w, w.pending.front());
        w.pending.pop_front();
    }
    sweepSlotFrees(w);
    const engine::PipelineCounters &c = pl.counters();
    w.statAcks.store(c.acksReleased, std::memory_order_relaxed);
    w.statEpochs.store(c.epochsCommitted,
                       std::memory_order_relaxed);
    w.statFolds.store(c.folds, std::memory_order_relaxed);
    w.statDeadlineCommits.store(c.deadlineCommits,
                                std::memory_order_relaxed);
    w.statCommittedEpoch.store(ce, std::memory_order_relaxed);
    // Seal the flight recorder on the epoch-commit cadence: the
    // watermark publish is one header write, and riding commits
    // means everything up to the last committed epoch's spans is
    // recoverable by postmortem after a SIGKILL.
    if (w.flight && ce != prevCe)
        w.flight->seal();
}

/** Free applied slots whose marker epoch the shard has made
 *  durable (the lazy-free gate of txn/prepare_log.hh). The gate
 *  is the pipeline's volatile durable watermark: it matches the
 *  superblock's for LP/WAL but, unlike it, also advances for the
 *  eager backend, whose in-place per-op persists never fold. */
void
Server::Impl::sweepSlotFrees(Worker &w)
{
    if (w.slotFrees.empty())
        return;
    const std::uint64_t durable = w.kv->pipeline(0).foldedEpoch();
    std::erase_if(w.slotFrees, [&](const Worker::SlotFree &f) {
        if (durable < f.epoch)
            return false;
        w.plog->free(w.env, f.slot);
        return true;
    });
}

/// Can this kind join Worker::deferred? Single-key Gets bypass
/// (a point read tears nothing: prepared writes are invisible
/// until apply), as do the TxnApply/TxnAbort decision fan-outs
/// that drain the queue.
bool
Server::Impl::deferrable(OpItem::Kind k)
{
    return k == OpItem::Kind::Scan || k == OpItem::Kind::Put ||
           k == OpItem::Kind::Del || k == OpItem::Kind::Txn;
}

/**
 * Must @p op wait for a lock-state change before running? Only
 * meaningful when nothing older is queued ahead of it (strict
 * FIFO handles that part).
 */
bool
Server::Impl::deferNow(Worker &w, const OpItem &op) const
{
    switch (op.kind) {
      case OpItem::Kind::Scan:
        // A granted write lock may cover a prepared-but-
        // unapplied transaction write; a sub-scan passing
        // through it could hand the k-way merge a half-applied
        // transaction.
        return w.unappliedTxns > 0 &&
               w.lockTable.anyWriteLockedAtOrAbove(op.key);
      case OpItem::Kind::Put:
      case OpItem::Kind::Del:
        // A plain store between a transaction's resolve and its
        // apply would be clobbered by the apply (lost update).
        return w.unappliedTxns > 0 &&
               w.lockTable.writeLocked(op.key);
      default:
        // Txn parts always run once they reach the front: lock
        // acquisition itself resolves conflicts (grant, park,
        // or wait-die abort).
        return false;
    }
}

/// Run @p op now unless strict FIFO or its own defer condition
/// says it must queue (see Worker::deferred).
void
Server::Impl::dispatchOp(Worker &w, OpItem &op)
{
    if (deferrable(op.kind) &&
        (!w.deferred.empty() || deferNow(w, op))) {
        op.tEnqNs = obs::nowNs();
        w.deferred.push_back(std::move(op));
        return;
    }
    processOp(w, op);
}

/**
 * After a lock-state change, drain deferred work from the
 * front, stopping at the first item that must still wait --
 * never past it, or a later scan/part would observe a cut
 * inconsistent with its siblings on other shards.
 */
void
Server::Impl::retryDeferred(Worker &w)
{
    while (!w.deferred.empty() &&
           !deferNow(w, w.deferred.front())) {
        OpItem op = std::move(w.deferred.front());
        w.deferred.pop_front();
        processOp(w, op);
    }
}

void
Server::Impl::processOp(Worker &w, OpItem &op)
{
    const std::uint64_t queueDt = obs::nowNs() - op.tEnqNs;
    w.queueNs.record(queueDt);
    if (op.traceId) {
        obs::traceSpanFrom(w.ring, "queue", op.tEnqNs, op.reqId,
                           op.traceId);
        w.queueNs.recordExemplar(queueDt, op.traceId);
    }
    switch (op.kind) {
      case OpItem::Kind::Get: {
        const auto v = w.kv->get(w.env, op.key);
        w.statGets.fetch_add(1, std::memory_order_relaxed);
        Response r;
        r.status = v ? Status::Ok : Status::NotFound;
        r.id = op.reqId;
        r.hasValue = v.has_value();
        r.value = v.value_or(0);
        postReply(op.connId, std::move(r));
        return;
      }
      case OpItem::Kind::Scan: {
        // Defer conditions were checked by dispatchOp /
        // retryDeferred; by the time a sub-scan runs here, no
        // prepared-but-unapplied transaction write can be under
        // its range.
        // Sub-scan of this worker's shard. KvStore::scan records
        // the per-shard scan latency/length histograms itself
        // (single-shard store: shard 0 is exactly this shard).
        const auto recs = w.kv->scan(w.env, op.key,
                                     std::size_t(op.value));
        w.statScans.fetch_add(1, std::memory_order_relaxed);
        ScanCtx &ctx = *op.scan;
        auto &slot = ctx.parts[std::size_t(w.index)];
        slot.reserve(recs.size());
        for (const auto &[k, v] : recs)
            slot.push_back(ScanRecord{k, v});
        if (ctx.remaining.fetch_sub(
                1, std::memory_order_acq_rel) != 1)
            return;  // other shards still scanning
        // Last sub-scan: k-way merge the sorted partials (shards
        // partition the key space, so popping the minimum head
        // yields global order) and post the single reply.
        std::vector<ScanRecord> merged;
        merged.reserve(ctx.limit);
        std::vector<std::size_t> at(ctx.parts.size(), 0);
        while (merged.size() < ctx.limit) {
            int best = -1;
            for (std::size_t s = 0; s < ctx.parts.size(); ++s) {
                if (at[s] >= ctx.parts[s].size())
                    continue;
                if (best < 0 ||
                    ctx.parts[s][at[s]].key <
                        ctx.parts[std::size_t(best)]
                                 [at[std::size_t(best)]].key)
                    best = int(s);
            }
            if (best < 0)
                break;
            merged.push_back(
                ctx.parts[std::size_t(best)]
                         [at[std::size_t(best)]++]);
        }
        Response r;
        r.status = Status::Ok;
        r.id = ctx.reqId;
        r.body = encodeScanBody(merged);
        postReply(ctx.connId, std::move(r));
        return;
      }
      case OpItem::Kind::Put:
      case OpItem::Kind::Del: {
        // Worker-side quarantine backstop: the acceptor's
        // fast-path check can race with a scrub discovering
        // corruption, so the authoritative refusal lives here,
        // on the thread that owns the shard.
        if (w.kv->quarantined(0)) {
            if (op.batch) {
                op.batch->faulted.store(
                    true, std::memory_order_release);
                if (op.batch->remaining.fetch_sub(
                        1, std::memory_order_acq_rel) == 1)
                    postReply(op.batch->connId,
                              statusReply(Status::Fault,
                                          op.batch->reqId));
                return;
            }
            postReply(op.connId,
                      statusReply(Status::Fault, op.reqId));
            return;
        }
        const std::uint64_t epoch =
            op.kind == OpItem::Kind::Put
                ? w.kv->put(w.env, op.key, op.value, op.traceId)
                : w.kv->del(w.env, op.key, op.traceId);
        w.statMuts.fetch_add(1, std::memory_order_relaxed);
        // Every mutation waits for its epoch to commit; the
        // following releaseCommitted() releases it the same round
        // for backends that commit per op (eager, and WAL when the
        // op filled its batch).
        w.pending.push_back(Worker::Pending{
            op.connId, op.reqId, epoch, obs::nowNs(), op.traceId,
            op.batch});
        w.kv->pipeline(0).notePending(epoch, Clock::now());
        return;
      }
      case OpItem::Kind::Txn: {
        txn::LockTable::Events ev;
        if (acquireTxnLocks(w, op.txn, op.part, 0, ev))
            prepareTxnPart(w, op.txn, op.part);
        serviceLockEvents(w, std::move(ev));
        return;
      }
      case OpItem::Kind::TxnApply: {
        // Coordinator decided commit: apply this part's write-set
        // lazily (the decision record makes it recoverable), then
        // persist the applied marker BEFORE releasing the locks --
        // once unlocked keys are externally visible, a crash must
        // roll forward, never re-run a half-superseded apply.
        TxnCtx::Part &part = op.txn->parts[op.part];
        std::uint64_t epoch = 0;
        for (const auto &wr : part.writes) {
            epoch = wr.del ? w.kv->del(w.env, wr.key)
                           : w.kv->put(w.env, wr.key, wr.value);
            w.statMuts.fetch_add(1, std::memory_order_relaxed);
            w.pending.push_back(Worker::Pending{
                0, 0, epoch, obs::nowNs(), op.txn->traceId,
                nullptr});
            w.kv->pipeline(0).notePending(epoch, Clock::now());
        }
        if (!part.writes.empty()) {
            w.plog->markApplied(w.env, part.slot, epoch);
            w.slotFrees.push_back(
                Worker::SlotFree{part.slot, epoch});
            --w.unappliedTxns;
        }
        txn::LockTable::Events ev;
        w.lockTable.releaseAll(op.txn->txnid, part.lockKeys, ev);
        serviceLockEvents(w, std::move(ev));
        return;
      }
      case OpItem::Kind::TxnAbort: {
        // Coordinator decided abort and this part had prepared:
        // freeing the undecided vote IS the roll-back. The free
        // is lazy on purpose -- if it tears, recovery still sees
        // prepared-with-no-decision and rolls back again.
        TxnCtx::Part &part = op.txn->parts[op.part];
        if (!part.writes.empty()) {
            w.plog->free(w.env, part.slot);
            --w.unappliedTxns;
        }
        txn::LockTable::Events ev;
        w.lockTable.releaseAll(op.txn->txnid, part.lockKeys, ev);
        serviceLockEvents(w, std::move(ev));
        return;
      }
      case OpItem::Kind::TxnRecover: {
        // Startup phase 2 (after every shard's own recovery and
        // the coordinator's decision-log scan): replay this
        // shard's prepare table against the decision index.
        const std::vector<txn::PrepareLog<kernels::NativeEnv> *>
            pls{w.plog.get()};
        const std::vector<std::uint64_t> marks{
            w.kv->committedEpoch(0)};
        w.txnReport = txn::recoverTxns(w.env, *w.kv, pls, marks,
                                       dlog->index());
        {
            std::lock_guard<std::mutex> g(readyMu);
            ++txnReadyCount;
        }
        readyCv.notify_all();
        return;
      }
    }
}

void
Server::Impl::workerMain(Worker &w)
{
    openStore(w);
    {
        std::lock_guard<std::mutex> g(readyMu);
        ++readyCount;
    }
    readyCv.notify_all();

    std::vector<OpItem> local;
    for (;;) {
        bool stopping = false;
        local.clear();
        {
            std::unique_lock<std::mutex> lk(w.mu);
            const auto woken = [&] {
                return w.stopFlag || !w.q.empty();
            };
            if (w.q.empty() && !w.stopFlag) {
                engine::CommitPipeline &pl = w.kv->pipeline(0);
                if (pl.hasPending())
                    w.cv.wait_until(lk, pl.ackDeadline(), woken);
                else if (cfg.scrubIntervalMs > 0)
                    // Wake for the next scrub step even with no
                    // traffic: an idle server still patrols.
                    w.cv.wait_until(
                        lk,
                        w.lastScrub + std::chrono::milliseconds(
                                          cfg.scrubIntervalMs),
                        woken);
                else
                    w.cv.wait(lk, woken);
            }
            while (!w.q.empty() && local.size() < 128) {
                local.push_back(std::move(w.q.front()));
                w.q.pop_front();
            }
            stopping = w.stopFlag && w.q.empty();
            w.statQueueDepth.store(w.q.size(),
                                   std::memory_order_relaxed);
        }

        for (OpItem &op : local)
            dispatchOp(w, op);

        // Deadline flush: commit an underfilled batch rather than
        // keep its acks hostage to future traffic. The pipeline
        // owns the deadline bookkeeping (engine/commit_pipeline.hh).
        {
            engine::CommitPipeline &pl = w.kv->pipeline(0);
            const bool due = pl.commitDue(Clock::now());
            if (pl.hasPending() && (stopping || due)) {
                if (due) {
                    pl.noteDeadlineCommit();
                    obs::traceInstant(w.ring, "deadline_commit",
                                      pl.lastCommitted() + 1);
                }
                w.kv->commitBatches(w.env);
            }
        }
        releaseCommitted(w);

        // Online scrub: strictly off the request path (only on
        // rounds whose queue drained empty) and rate-limited, so
        // foreground latency never pays for media patrol.
        if (!stopping && local.empty() &&
            cfg.scrubIntervalMs > 0) {
            const auto now = Clock::now();
            if (now - w.lastScrub >=
                std::chrono::milliseconds(cfg.scrubIntervalMs)) {
                w.kv->scrubStep(w.env, 0, cfg.scrubRegions);
                w.lastScrub = now;
                if (!w.quarantineLogged && w.kv->quarantined(0)) {
                    w.quarantineLogged = true;
                    warn("lp::server shard " +
                         std::to_string(w.index) +
                         " quarantined by scrub: unrepairable "
                         "media corruption; serving read-only");
                }
            }
        }

        if (stopping) {
            // Parked, deferred, and prepared-but-undecided
            // transaction work dies with the connections -- to a
            // client an unacked request lost at shutdown is
            // indistinguishable from one lost in flight. Prepared
            // slots stay durable; the next startup's decision
            // replay rolls them back (or forward).
            w.parked.clear();
            w.deferred.clear();
            // Graceful drain: everything committed and folded, so
            // a restart recovers instantly. The clean-shutdown
            // mark switches the next recovery into strict mode,
            // where a validation failure is a media fault (repair
            // or quarantine) rather than a crash tear. A
            // quarantined shard keeps its pre-fault superblock
            // untouched so the restart re-detects the quarantine.
            if (!w.kv->quarantined(0))
                w.kv->checkpoint(w.env);
            w.kv->markClean(w.env);
            w.arena->persistAll();
            releaseCommitted(w);
            // Final flight watermark: the drain marker plus every
            // span the epoch-cadence seal had not covered yet.
            if (w.flight) {
                obs::traceInstant(w.ring, "drain",
                                  w.kv->committedEpoch(0));
                w.flight->seal();
            }
            LP_ASSERT(w.pending.empty(),
                      "worker drained with unreleased acks");
            break;
        }
    }
    workersExited.fetch_add(1, std::memory_order_release);
    wakeFd.signal();  // let the acceptor notice the exit
}

void
Server::Impl::enqueue(int shard, OpItem &&op)
{
    Worker &w = *workers[shard];
    bool wasEmpty;
    {
        std::lock_guard<std::mutex> g(w.mu);
        wasEmpty = w.q.empty();
        w.q.push_back(std::move(op));
    }
    // Notify only on the empty->nonempty edge: the worker checks the
    // queue under the same mutex before sleeping, so a push onto a
    // non-empty queue is already covered by an earlier notify (or by
    // the worker being awake).
    if (wasEmpty)
        w.cv.notify_one();
}

} // namespace lp::server
