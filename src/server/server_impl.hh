/**
 * @file
 * Internal definition of Server::Impl, shared by the server's
 * translation units:
 *
 *   server.cc        -- lifecycle + the acceptor datapath (accept,
 *                       frame decode, reply flush) on lp::net
 *   server_worker.cc -- the shared-nothing shard worker loop
 *   server_txn.cc    -- the transaction coordinator + participant
 *   server_stats.cc  -- STATS JSON and METRICS exposition rendering
 *
 * Not installed, not part of the public API: include server/server.hh
 * from outside.
 */

#ifndef LP_SERVER_SERVER_IMPL_HH
#define LP_SERVER_SERVER_IMPL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/commit_pipeline.hh"
#include "kernels/env.hh"
#include "net/connection.hh"
#include "net/event_loop.hh"
#include "obs/flight.hh"
#include "obs/histogram.hh"
#include "obs/trace.hh"
#include "pmem/arena.hh"
#include "server/protocol.hh"
#include "server/server.hh"
#include "store/kv_store.hh"
#include "txn/decision_log.hh"
#include "txn/lock_table.hh"
#include "txn/prepare_log.hh"
#include "txn/recovery.hh"

namespace lp::server
{

using Clock = std::chrono::steady_clock;

/**
 * Server-level key router: store::shardOfKey, the exact function
 * KvStore routes with, so the distribution matches the store's own
 * sharding. Each worker's store is configured with shards = 1, so
 * inside a worker every key maps to the single shard that worker
 * owns.
 */
inline int
routeShard(std::uint64_t key, int shards)
{
    return store::shardOfKey(key, shards);
}

/** A payload-less response (Ok/NotFound/Retry/Err ack). */
inline Response
statusReply(Status s, std::uint64_t id)
{
    Response r;
    r.status = s;
    r.id = id;
    return r;
}

/**
 * One BATCH request in flight: its sub-ops scatter across workers;
 * the worker that releases the last acknowledgement emits the single
 * reply.
 */
struct BatchCtx
{
    BatchCtx(std::uint32_t n, std::uint64_t conn, std::uint64_t req,
             std::uint64_t trace)
        : remaining(n), connId(conn), reqId(req), traceId(trace)
    {
    }

    std::atomic<std::uint32_t> remaining;
    std::uint64_t connId;
    std::uint64_t reqId;
    std::uint64_t traceId;  ///< request flow id (obs::traceIdOf)

    /**
     * Set by any worker that refused its sub-ops because its shard is
     * quarantined; the final reply then reports Fault. The release
     * half of the remaining fetch_sub publishes it to the replier.
     */
    std::atomic<bool> faulted{false};
};

/**
 * One SCAN request in flight: the acceptor fans one sub-scan out to
 * every worker (each worker owns one shard of the key space), each
 * worker fills only its own partial-result slot, and the last one to
 * finish merges the sorted partials and posts the single reply. The
 * release half of the fetch_sub publishes each worker's slot to the
 * merging worker's acquire.
 */
struct ScanCtx
{
    ScanCtx(int shards, std::uint64_t conn, std::uint64_t req,
            std::uint32_t lim, std::uint64_t trace)
        : remaining(shards), connId(conn), reqId(req), limit(lim),
          traceId(trace), parts(std::size_t(shards))
    {
    }

    std::atomic<int> remaining;
    std::uint64_t connId;
    std::uint64_t reqId;
    std::uint32_t limit;
    std::uint64_t traceId;  ///< request flow id (obs::traceIdOf)
    std::vector<std::vector<ScanRecord>> parts;  ///< slot per shard
};

/**
 * One TXN request in flight. The acceptor is the coordinator: it
 * splits the wire ops into one Part per participant shard and fans a
 * Txn item out to each owning worker. Workers lock, resolve, and
 * vote (a TxnEvent back to the acceptor); once every part has voted
 * the acceptor either appends the COMMIT record -- the transaction's
 * linearization and durability point -- and fans out TxnApply, or
 * tells the prepared parts to roll back (TxnAbort).
 *
 * Field ownership: the acceptor writes the routing plan before
 * fan-out; each worker writes only its own Part and the read slots
 * its gets own. Every handoff rides a mutex (worker queues, the
 * TxnEvent queue), so no field needs to be atomic except the vote
 * counter and the abort flags, which workers race on.
 */
struct TxnCtx
{
    std::uint64_t txnid = 0;
    std::uint64_t connId = 0;
    std::uint64_t reqId = 0;
    std::uint64_t tStartNs = 0;
    std::uint64_t traceId = 0;  ///< request flow id (obs::traceIdOf)
    bool fastPath = false;  ///< single shard, batching backend

    std::vector<TxnOp> ops;     ///< wire order
    std::vector<int> readSlot;  ///< per op: index into reads, or -1
    std::vector<TxnRead> reads; ///< one slot per get sub-op

    /** One participant shard's slice of the transaction. */
    struct Part
    {
        int shard = 0;
        std::vector<std::uint32_t> ops;  ///< indices into ctx.ops
        bool hasWrites = false;

        /** Lock plan: distinct keys ascending, write if any mutation. */
        std::vector<std::uint64_t> lockKeys;
        std::vector<txn::LockMode> lockModes;

        // Filled by the owning worker:
        bool prepared = false;
        std::size_t slot = 0;  ///< PREPARE slot (writes non-empty only)
        std::vector<txn::WriteOp> writes;  ///< resolved write-set
    };
    std::vector<Part> parts;

    std::atomic<int> votesLeft{0};
    std::atomic<int> abortedParts{0};
    std::atomic<bool> faulted{false};  ///< abort cause was quarantine
};

/** One participant's vote, traveling worker -> acceptor. */
struct TxnEvent
{
    enum class Kind : std::uint8_t { Prepared, Aborted };

    Kind kind;
    std::size_t part;  ///< index into ctx->parts
    std::shared_ptr<TxnCtx> ctx;
};

/** One operation handed from the acceptor to a worker. */
struct OpItem
{
    enum class Kind : std::uint8_t
    {
        Get,
        Put,
        Del,
        Scan,
        Txn,        ///< lock + resolve + vote one participant part
        TxnApply,   ///< decision = commit: apply the part's write-set
        TxnAbort,   ///< decision = abort: free the vote, drop locks
        TxnRecover, ///< startup: replay the txn decision rules
    };

    Kind kind;
    std::uint64_t connId = 0;
    std::uint64_t reqId = 0;
    std::uint64_t key = 0;    ///< SCAN: start_key
    std::uint64_t value = 0;  ///< SCAN: limit
    std::uint64_t tEnqNs = 0;  ///< enqueue time (queue-wait latency)
    std::uint64_t traceId = 0; ///< request flow id (obs::traceIdOf)
    std::shared_ptr<BatchCtx> batch;  ///< set for BATCH sub-ops
    std::shared_ptr<ScanCtx> scan;    ///< set for SCAN sub-scans
    std::shared_ptr<TxnCtx> txn;      ///< set for Txn* items
    std::size_t part = 0;             ///< Txn*: index into txn->parts
};

/** One response traveling worker -> acceptor. */
struct ReplyMsg
{
    std::uint64_t connId;
    std::uint64_t tPostNs = 0;  ///< post time (ack-path latency)
    Response resp;
};

/**
 * Per-connection acceptor-side state: the net::Connection datapath
 * state machine plus the request-routing bookkeeping layered on it.
 */
struct Conn
{
    Conn(int fd, net::DatapathStats *stats) : nc(fd, stats) {}

    net::Connection nc;
    std::uint64_t id = 0;
    std::uint64_t tOpenNs = 0;   ///< accept time (lifecycle span)
    std::uint32_t inflight = 0;  ///< worker-routed ops outstanding
    bool wantWrite = false;      ///< EPOLLOUT currently armed

    /**
     * Backpressure: set when the outbuf passed cfg.outbufLimitBytes
     * -- decoding (and reading) stops so a slow reader cannot balloon
     * server memory. Cleared by flushDatapath() below the low
     * watermark; the clearer must re-run readable(), because the
     * edge-triggered loop will never re-report bytes that already
     * arrived.
     */
    bool readPaused = false;
};

/** epoll user-data sentinels; connection ids start above these. */
constexpr std::uint64_t udListen = 0;
constexpr std::uint64_t udWake = 1;
constexpr std::uint64_t udStop = 2;
constexpr std::uint64_t firstConnId = 16;

struct Server::Impl
{
    explicit Impl(ServerConfig c)
        : cfg(std::move(c)),
          loop(std::size_t(cfg.maxConns) + 16)
    {
    }
    ~Impl();

    ServerConfig cfg;
    ServerRecovery recov;

    /// @name One shared-nothing worker per shard
    /// @{

    struct Worker
    {
        int index = 0;
        Impl *srv = nullptr;
        std::thread th;

        // Queue: acceptor -> worker (rule 2 of the env.hh contract:
        // ownership handoff synchronizes through this mutex).
        std::mutex mu;
        std::condition_variable cv;
        std::deque<OpItem> q;
        bool stopFlag = false;

        // Stats mirrors the acceptor may read (contract rule 3);
        // the pipeline-derived ones are refreshed from the shard's
        // CommitPipeline counters after every worker round.
        std::atomic<std::uint64_t> statGets{0};
        std::atomic<std::uint64_t> statMuts{0};
        std::atomic<std::uint64_t> statScans{0};
        std::atomic<std::uint64_t> statAcks{0};
        std::atomic<std::uint64_t> statCommittedEpoch{0};
        std::atomic<std::uint64_t> statQueueDepth{0};
        std::atomic<std::uint64_t> statEpochs{0};
        std::atomic<std::uint64_t> statFolds{0};
        std::atomic<std::uint64_t> statDeadlineCommits{0};
        std::atomic<std::uint64_t> statTxnCommits{0};  ///< fast path
        std::atomic<std::uint64_t> statTxnAborts{0};   ///< fast path

        // Request-lifecycle histograms, recorded by this worker;
        // the acceptor reads them for STATS/METRICS under the
        // obs::Histogram single-writer/any-reader contract (the
        // store-side stage/commit/fold/recover histograms live in
        // kv->shardObs(0)).
        obs::Histogram queueNs;       ///< enqueue -> worker dequeue
        obs::Histogram commitWaitNs;  ///< staged -> ack released
        obs::Histogram txnCommitNs;   ///< fast-path TXN accept -> ack
        obs::Histogram txnAbortNs;    ///< fast-path TXN accept -> abort

        /** This worker's trace ring; null when tracing is off. */
        obs::TraceRing *ring = nullptr;

        /**
         * Crash-persistent flight recorder, carved out of the FRONT
         * of this worker's shard arena (offset 64 -- the postmortem
         * placement contract) and teed from `ring`; null when
         * cfg.flightEvents == 0. Sealed as the shard's committed
         * epoch advances and on graceful drain.
         */
        std::unique_ptr<obs::FlightRing> flight;

        // Online-scrub throttle state (worker thread only).
        Clock::time_point lastScrub{};
        bool quarantineLogged = false;

        // Everything below is touched only by the worker thread.
        kernels::NativeEnv env;
        std::unique_ptr<pmem::PersistentArena> arena;
        std::unique_ptr<store::KvStore<kernels::NativeEnv>> kv;
        store::RecoveryReport report;
        bool attached = false;

        // Cross-shard transaction state (docs/txn_design.md). All of
        // it is worker-thread-only except txnReport, which start()
        // reads after the txn-recovery latch.
        std::unique_ptr<txn::PrepareLog<kernels::NativeEnv>> plog;
        txn::LockTable lockTable;
        txn::TxnRecoveryReport txnReport;

        /**
         * General-path parts on this shard between PREPARE and their
         * apply/abort. While non-zero, scans over write-locked ranges
         * and plain mutations of write-locked keys defer: the part's
         * write-set is resolved but not yet visible, so reading
         * around it would half-observe the transaction and writing
         * under it would be clobbered by the apply.
         */
        int unappliedTxns = 0;

        /** A part parked on a lock-table Waiting verdict. */
        struct ParkedTxn
        {
            std::shared_ptr<TxnCtx> ctx;
            std::size_t part = 0;
            std::size_t next = 0;  ///< lockKeys index being awaited
        };
        std::unordered_map<txn::TxnId, ParkedTxn> parked;

        /**
         * Deferred work, in strict arrival order. The acceptor
         * enqueues every multi-shard operation (scan pieces,
         * transaction parts) to all shards from one program point,
         * so per-shard arrival order is a consistent cut of the
         * global order; cross-shard atomicity of scans rests
         * entirely on every shard preserving it. Hence one FIFO,
         * not per-kind lists: when the item at the front must wait
         * (a scan blocked by a prepared-but-unapplied part's
         * locks), everything behind it waits too. Letting ANY
         * later item overtake re-creates the torn read -- e.g. a
         * part overtaking a deferred scan prepares/applies inside
         * the scan's cut on this shard only, and a scan overtaking
         * a queued part runs pre-part here while its sibling
         * sub-scan on a shard where the same transaction already
         * prepared defers and runs post-apply. Decision fan-outs
         * (TxnApply/TxnAbort) bypass the queue: they are the
         * drain, and their transactions are strictly older than
         * everything queued here.
         */
        std::deque<OpItem> deferred;

        /**
         * Applied PREPARE slots awaiting their durability gate: a
         * slot may be freed only once the shard's durable epoch
         * covers the marker epoch, because the free store is itself
         * lazy (see txn/prepare_log.hh).
         */
        struct SlotFree
        {
            std::size_t slot = 0;
            std::uint64_t epoch = 0;
        };
        std::vector<SlotFree> slotFrees;

        /**
         * Reply payloads awaiting epoch commit. Runs in lockstep
         * with the shard CommitPipeline's pending-ack queue, which
         * owns the epochs and deadlines; this deque only carries
         * what the pipeline doesn't know (who to reply to).
         */
        struct Pending
        {
            std::uint64_t connId;  ///< 0: internal apply, no reply
            std::uint64_t reqId;
            std::uint64_t epoch;
            std::uint64_t tStagedNs;  ///< commit-wait latency start
            std::uint64_t traceId = 0;  ///< request flow id
            std::shared_ptr<BatchCtx> batch;
            std::shared_ptr<TxnCtx> txn;  ///< fast-path commit reply
            std::string txnBody;          ///< encoded reads (with txn)
        };
        std::deque<Pending> pending;
    };

    std::vector<std::unique_ptr<Worker>> workers;
    std::atomic<int> workersExited{0};

    // Startup latch: workers recover before the port binds. The
    // second counter latches the txn-recovery phase, which needs the
    // decision index and therefore runs after the first latch.
    std::mutex readyMu;
    std::condition_variable readyCv;
    int readyCount = 0;
    int txnReadyCount = 0;
    /// @}

    /// @name Acceptor state
    /// @{
    net::EventLoop loop;  ///< ready batch sized from cfg.maxConns
    net::WakeFd wakeFd;   ///< workers ring this when replies queue
    net::WakeFd stopFd;   ///< requestStop()/signals ring this
    int listenFd = -1;
    int port_ = 0;
    std::thread acceptorTh;
    bool started = false;
    bool shutdownInformed = false;  ///< join() may run twice
    bool wantShutdown_ = false;     ///< acceptor thread only
    std::atomic<bool> finished{false};

    std::mutex replyMu;
    std::vector<ReplyMsg> replies;

    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>>
        conns;  // acceptor-only
    std::uint64_t nextConnId = firstConnId;

    /** Per-fill read budget: one fire-hosing connection yields after
     *  this many bytes so a ready batch shares the loop fairly. */
    static constexpr std::size_t kReadBudget = 256 * 1024;

    /// Datapath counters shared by every connection (acceptor
    /// writes; STATS/METRICS snapshot cross-thread).
    net::DatapathStats netStats;

    std::atomic<std::uint64_t> statConns{0};
    std::atomic<std::uint64_t> statAccepted{0};
    std::atomic<std::uint64_t> statRetries{0};
    std::atomic<std::uint64_t> statErrs{0};
    std::atomic<std::uint64_t> statFaults{0};
    std::atomic<std::uint64_t> statMalformed{0};
    std::atomic<std::uint64_t> statTxnCommits{0};  ///< general path
    std::atomic<std::uint64_t> statTxnAborts{0};   ///< general path

    // Acceptor-recorded request-lifecycle histograms (single writer:
    // the acceptor thread; STATS/METRICS render on the same thread).
    obs::Histogram parseNs;  ///< bytes on the wire -> decoded request
    obs::Histogram ackNs;    ///< worker posted reply -> encoded
    obs::Histogram txnCommitNs;  ///< general path: accept -> decision
    obs::Histogram txnAbortNs;   ///< general path: accept -> abort

    /// @name Transaction coordinator (docs/txn_design.md)
    /// The acceptor assigns ids, collects votes, and owns the
    /// persistent decision ring (dataDir/txnlog.lpdb). Workers post
    /// their votes through txnMu and read the decision index only
    /// during the startup recovery phase (ordered by the worker-queue
    /// handoff).
    /// @{
    std::mutex txnMu;
    std::vector<TxnEvent> txnEvents;

    kernels::NativeEnv txnEnv;
    std::unique_ptr<pmem::PersistentArena> txnArena;
    std::unique_ptr<txn::DecisionLog<kernels::NativeEnv>> dlog;
    std::uint64_t dlogMaxTxnId = 0;  ///< largest id the ring recalls
    std::uint64_t nextTxnId = 1;     ///< acceptor-thread only
    /// @}

    // Tracing (cfg.traceOut non-empty): the collector owns every
    // ring; workers and the acceptor hold borrowed pointers.
    std::unique_ptr<obs::TraceCollector> trace;
    obs::TraceRing *acceptRing = nullptr;
    /// @}

    std::string
    shardPath(int i) const
    {
        return cfg.dataDir + "/shard-" + std::to_string(i) + ".lpdb";
    }

    // server_worker.cc -- the shard worker loop.
    void openStore(Worker &w);
    void releaseAck(Worker &w, Worker::Pending &p);
    void releaseCommitted(Worker &w);
    void sweepSlotFrees(Worker &w);
    static bool deferrable(OpItem::Kind k);
    bool deferNow(Worker &w, const OpItem &op) const;
    void dispatchOp(Worker &w, OpItem &op);
    void retryDeferred(Worker &w);
    void processOp(Worker &w, OpItem &op);
    void workerMain(Worker &w);
    void enqueue(int shard, OpItem &&op);

    // server_txn.cc -- coordinator + participant txn machinery.
    void postTxnEvent(TxnEvent ev);
    void serviceLockEvents(Worker &w, txn::LockTable::Events ev);
    void resumeParked(Worker &w, txn::TxnId id,
                      txn::LockTable::Events &ev);
    void abortParked(Worker &w, txn::TxnId id,
                     txn::LockTable::Events &ev);
    bool acquireTxnLocks(Worker &w,
                         const std::shared_ptr<TxnCtx> &ctx,
                         std::size_t partIdx, std::size_t next,
                         txn::LockTable::Events &ev);
    void abortTxnPart(Worker &w, const std::shared_ptr<TxnCtx> &ctx,
                      std::size_t partIdx, bool faulted);
    void prepareTxnPart(Worker &w,
                        const std::shared_ptr<TxnCtx> &ctx,
                        std::size_t partIdx);
    void commitTxnFast(Worker &w, const std::shared_ptr<TxnCtx> &ctx,
                       TxnCtx::Part &part);
    void routeTxn(Conn &c, Request &req);
    void drainTxnEvents();
    void finishTxn(const std::shared_ptr<TxnCtx> &ctx);
    void openTxnLog();

    // server_stats.cc -- observability rendering.
    std::string statsJsonNow() const;
    std::string metricsTextNow() const;

    // server.cc -- lifecycle + acceptor datapath.
    void postReply(std::uint64_t connId, Response r);
    void closeConn(std::uint64_t id);
    bool flushDatapath(Conn &c);
    void localReply(Conn &c, Response r);
    void handleRequest(Conn &c, Request &req);
    void readable(std::uint64_t connId);
    void writable(std::uint64_t connId);
    void acceptPending();
    void drainReplies();
    void acceptorMain();
    void shutdownSequence();
    void writePortFile();
    void start();
    void join();
};

} // namespace lp::server

#endif // LP_SERVER_SERVER_IMPL_HH
