/**
 * @file
 * A small blocking client for lp::server, used by the CLI, the
 * integration tests, and the load generator. One Client owns one TCP
 * connection. Two usage styles:
 *
 *  - Synchronous helpers (get/put/del/stats/shutdownServer): send one
 *    request and wait for its reply. Simple, one op in flight.
 *
 *  - Pipelined: sendRequest() any number of frames, then recvResponse()
 *    them back (matching by the echoed id), which is how the load
 *    generator keeps a window of operations in flight.
 *
 * Not thread-safe; one thread per Client.
 */

#ifndef LP_SERVER_CLIENT_HH
#define LP_SERVER_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame_cursor.hh"
#include "server/protocol.hh"

namespace lp::server
{

/**
 * Bounded exponential backoff with full jitter for Status::Retry
 * backpressure replies. Attempt k may sleep any duration in
 * [0, min(capDelayUs, baseDelayUs * 2^k)] -- full jitter decorrelates
 * a herd of clients that all got Retry at the same instant. After
 * maxAttempts the last Retry response is returned to the caller.
 * Status::Fault is never retried: it means a quarantined shard
 * (operator action required), not transient load.
 */
struct RetryPolicy
{
    int maxAttempts = 8;
    std::uint64_t baseDelayUs = 100;
    std::uint64_t capDelayUs = 50000;
};

/**
 * Outcome counters of backoff-retried requests. Every Client keeps
 * one (retryCounters()); the pipelined load generator aggregates its
 * own into the bench JSON. attempts counts wire round trips, so
 * attempts - retries - aborts is the number of first-try outcomes.
 */
struct RetryCounters
{
    std::uint64_t attempts = 0;   ///< requests actually sent
    std::uint64_t retries = 0;    ///< re-sends after Status::Retry
    std::uint64_t aborts = 0;     ///< re-sends after Status::Aborted
    std::uint64_t backoffUs = 0;  ///< total jittered sleep

    void
    merge(const RetryCounters &o)
    {
        attempts += o.attempts;
        retries += o.retries;
        aborts += o.aborts;
        backoffUs += o.backoffUs;
    }
};

/**
 * Full-jitter backoff delay for 0-based attempt @p attempt, advancing
 * the caller's xorshift state @p rngState (seed it non-zero, e.g. per
 * thread). Shared by the Client backoff helpers and the pipelined
 * load generator, which schedules its own re-sends.
 */
std::uint64_t retryDelayUs(const RetryPolicy &p, int attempt,
                           std::uint64_t &rngState);

class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Connect to @p host:@p port, waiting up to @p timeoutMs for the
     * TCP handshake (non-blocking connect + poll, so an unresponsive
     * host cannot hang the caller for the kernel's SYN-retry
     * minutes). The same timeout is installed as the socket's
     * default send/receive timeout (SO_SNDTIMEO/SO_RCVTIMEO), which
     * bounds sendRequest() and every blocking read even when the
     * caller passes timeoutMs = -1 to recvResponse(). Pass
     * @p timeoutMs <= 0 for the old unbounded behavior. Returns
     * false on failure or timeout.
     */
    bool connectTo(const std::string &host, int port,
                   int timeoutMs = 10000);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** A fresh request id (per-connection monotonic). */
    std::uint64_t nextId() { return ++lastId_; }

    /**
     * Encode and send one request. Returns false if the connection
     * broke (the peer closed it, e.g. after a malformed frame).
     */
    bool sendRequest(const Request &r);

    /**
     * Receive the next response frame, waiting up to @p timeoutMs
     * (-1 = forever). Returns nullopt on timeout, disconnect, or a
     * malformed reply.
     */
    std::optional<Response> recvResponse(int timeoutMs = -1);

    /// @name Synchronous one-shot helpers (nullopt = transport error)
    /// @{
    std::optional<Response> get(std::uint64_t key, int timeoutMs = -1);
    std::optional<Response> put(std::uint64_t key, std::uint64_t value,
                                int timeoutMs = -1);
    std::optional<Response> del(std::uint64_t key, int timeoutMs = -1);
    std::optional<Response> stats(int timeoutMs = -1);
    std::optional<Response> metrics(int timeoutMs = -1);
    std::optional<Response> shutdownServer(int timeoutMs = -1);

    /**
     * SCAN: up to @p limit records with key >= @p start, ascending.
     * nullopt on transport error, a non-Ok status (e.g. Retry under
     * backpressure), or a malformed body -- the last also closes the
     * connection, matching the malformed-frame contract.
     */
    std::optional<std::vector<ScanRecord>> scan(std::uint64_t start,
                                                std::uint32_t limit,
                                                int timeoutMs = -1);
    /// @}

    /** What a TXN round trip produced (when the transport held up). */
    struct TxnResult
    {
        Status status = Status::Ok;
        /** One entry per get sub-op, request order; only on Ok. */
        std::vector<TxnRead> reads;
    };

    /**
     * TXN: commit @p ops atomically across shards. nullopt on
     * transport error or a malformed reads body (which also closes
     * the connection); otherwise the status is returned as-is --
     * Aborted and Retry are the caller's to handle, or use
     * txnBackoff.
     */
    std::optional<TxnResult> txn(const std::vector<TxnOp> &ops,
                                 int timeoutMs = -1);

    /**
     * TXN with backoff: retries both Status::Retry (backpressure)
     * and Status::Aborted (wait-die conflict; the retry gets a fresh
     * timestamp) per @p policy. Anything else returns at once.
     */
    std::optional<TxnResult> txnBackoff(const std::vector<TxnOp> &ops,
                                        const RetryPolicy &policy = {},
                                        int timeoutMs = -1);

    /** Lifetime backoff/abort counters of this connection. */
    const RetryCounters &retryCounters() const { return counters_; }

    /// @name Backoff variants: retry Status::Retry per @p policy
    /// (sleeping between attempts) instead of bouncing it straight
    /// back. Any other status -- including Fault -- returns at once.
    /// @{
    std::optional<Response> putBackoff(std::uint64_t key,
                                       std::uint64_t value,
                                       const RetryPolicy &policy = {},
                                       int timeoutMs = -1);
    std::optional<Response> delBackoff(std::uint64_t key,
                                       const RetryPolicy &policy = {},
                                       int timeoutMs = -1);
    /// @}

  private:
    std::optional<Response> roundTrip(const Request &r, int timeoutMs);
    std::optional<Response> retryLoop(Request r,
                                      const RetryPolicy &policy,
                                      int timeoutMs);

    int fd_ = -1;
    int readTimeoutMs_ = -1;  ///< connectTo deadline; -1 = unbounded
    RetryCounters counters_;
    std::uint64_t lastId_ = 0;
    std::uint64_t rng_ = 0x9e3779b97f4a7c15ull;  ///< backoff jitter
    net::FrameCursor in_;  ///< buffered unparsed response bytes
};

/**
 * Read dataDir/PORT (written atomically by the server once it is
 * listening), polling up to @p timeoutMs. Returns 0 on timeout.
 */
int waitForPortFile(const std::string &dataDir, int timeoutMs);

} // namespace lp::server

#endif // LP_SERVER_CLIENT_HH
