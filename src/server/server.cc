#include "server/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/logging.hh"
#include "engine/commit_pipeline.hh"
#include "engine/stat_names.hh"
#include "kernels/env.hh"
#include "obs/histogram.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "pmem/arena.hh"
#include "server/protocol.hh"
#include "stats/json.hh"
#include "store/kv_store.hh"
#include "txn/decision_log.hh"
#include "txn/lock_table.hh"
#include "txn/prepare_log.hh"
#include "txn/recovery.hh"

namespace lp::server
{

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * Server-level key router: store::shardOfKey, the exact function
 * KvStore routes with, so the distribution matches the store's own
 * sharding. Each worker's store is configured with shards = 1, so
 * inside a worker every key maps to the single shard that worker
 * owns.
 */
int
routeShard(std::uint64_t key, int shards)
{
    return store::shardOfKey(key, shards);
}

/**
 * One BATCH request in flight: its sub-ops scatter across workers;
 * the worker that releases the last acknowledgement emits the single
 * reply.
 */
struct BatchCtx
{
    BatchCtx(std::uint32_t n, std::uint64_t conn, std::uint64_t req)
        : remaining(n), connId(conn), reqId(req)
    {
    }

    std::atomic<std::uint32_t> remaining;
    std::uint64_t connId;
    std::uint64_t reqId;

    /**
     * Set by any worker that refused its sub-ops because its shard is
     * quarantined; the final reply then reports Fault. The release
     * half of the remaining fetch_sub publishes it to the replier.
     */
    std::atomic<bool> faulted{false};
};

/**
 * One SCAN request in flight: the acceptor fans one sub-scan out to
 * every worker (each worker owns one shard of the key space), each
 * worker fills only its own partial-result slot, and the last one to
 * finish merges the sorted partials and posts the single reply. The
 * release half of the fetch_sub publishes each worker's slot to the
 * merging worker's acquire.
 */
struct ScanCtx
{
    ScanCtx(int shards, std::uint64_t conn, std::uint64_t req,
            std::uint32_t lim)
        : remaining(shards), connId(conn), reqId(req), limit(lim),
          parts(std::size_t(shards))
    {
    }

    std::atomic<int> remaining;
    std::uint64_t connId;
    std::uint64_t reqId;
    std::uint32_t limit;
    std::vector<std::vector<ScanRecord>> parts;  ///< slot per shard
};

/**
 * One TXN request in flight. The acceptor is the coordinator: it
 * splits the wire ops into one Part per participant shard and fans a
 * Txn item out to each owning worker. Workers lock, resolve, and
 * vote (a TxnEvent back to the acceptor); once every part has voted
 * the acceptor either appends the COMMIT record -- the transaction's
 * linearization and durability point -- and fans out TxnApply, or
 * tells the prepared parts to roll back (TxnAbort).
 *
 * Field ownership: the acceptor writes the routing plan before
 * fan-out; each worker writes only its own Part and the read slots
 * its gets own. Every handoff rides a mutex (worker queues, the
 * TxnEvent queue), so no field needs to be atomic except the vote
 * counter and the abort flags, which workers race on.
 */
struct TxnCtx
{
    std::uint64_t txnid = 0;
    std::uint64_t connId = 0;
    std::uint64_t reqId = 0;
    std::uint64_t tStartNs = 0;
    bool fastPath = false;  ///< single shard, batching backend

    std::vector<TxnOp> ops;     ///< wire order
    std::vector<int> readSlot;  ///< per op: index into reads, or -1
    std::vector<TxnRead> reads; ///< one slot per get sub-op

    /** One participant shard's slice of the transaction. */
    struct Part
    {
        int shard = 0;
        std::vector<std::uint32_t> ops;  ///< indices into ctx.ops
        bool hasWrites = false;

        /** Lock plan: distinct keys ascending, write if any mutation. */
        std::vector<std::uint64_t> lockKeys;
        std::vector<txn::LockMode> lockModes;

        // Filled by the owning worker:
        bool prepared = false;
        std::size_t slot = 0;  ///< PREPARE slot (writes non-empty only)
        std::vector<txn::WriteOp> writes;  ///< resolved write-set
    };
    std::vector<Part> parts;

    std::atomic<int> votesLeft{0};
    std::atomic<int> abortedParts{0};
    std::atomic<bool> faulted{false};  ///< abort cause was quarantine
};

/** One participant's vote, traveling worker -> acceptor. */
struct TxnEvent
{
    enum class Kind : std::uint8_t { Prepared, Aborted };

    Kind kind;
    std::size_t part;  ///< index into ctx->parts
    std::shared_ptr<TxnCtx> ctx;
};

/** One operation handed from the acceptor to a worker. */
struct OpItem
{
    enum class Kind : std::uint8_t
    {
        Get,
        Put,
        Del,
        Scan,
        Txn,        ///< lock + resolve + vote one participant part
        TxnApply,   ///< decision = commit: apply the part's write-set
        TxnAbort,   ///< decision = abort: free the vote, drop locks
        TxnRecover, ///< startup: replay the txn decision rules
    };

    Kind kind;
    std::uint64_t connId = 0;
    std::uint64_t reqId = 0;
    std::uint64_t key = 0;    ///< SCAN: start_key
    std::uint64_t value = 0;  ///< SCAN: limit
    std::uint64_t tEnqNs = 0;  ///< enqueue time (queue-wait latency)
    std::shared_ptr<BatchCtx> batch;  ///< set for BATCH sub-ops
    std::shared_ptr<ScanCtx> scan;    ///< set for SCAN sub-scans
    std::shared_ptr<TxnCtx> txn;      ///< set for Txn* items
    std::size_t part = 0;             ///< Txn*: index into txn->parts
};

/** One response traveling worker -> acceptor. */
struct ReplyMsg
{
    std::uint64_t connId;
    std::uint64_t tPostNs = 0;  ///< post time (ack-path latency)
    Response resp;
};

/** Per-connection acceptor-side state. */
struct Conn
{
    int fd = -1;
    std::uint64_t id = 0;
    std::uint64_t tOpenNs = 0;     ///< accept time (lifecycle span)
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t outAt = 0;         ///< bytes of out already written
    std::uint32_t inflight = 0;    ///< worker-routed ops outstanding
    bool wantWrite = false;        ///< EPOLLOUT currently armed
};

/** epoll user-data sentinels; connection ids start above these. */
constexpr std::uint64_t udListen = 0;
constexpr std::uint64_t udWake = 1;
constexpr std::uint64_t udStop = 2;
constexpr std::uint64_t firstConnId = 16;

void
setNonBlocking(int fd)
{
    const int fl = ::fcntl(fd, F_GETFL, 0);
    LP_ASSERT(fl >= 0 && ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) == 0,
              "fcntl(O_NONBLOCK) failed");
}

void
eventfdSignal(int fd)
{
    const std::uint64_t one = 1;
    // A full eventfd counter still wakes the reader; ignore EAGAIN.
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

void
eventfdDrain(int fd)
{
    std::uint64_t v;
    while (::read(fd, &v, sizeof(v)) > 0) {
    }
}

/** A payload-less response (Ok/NotFound/Retry/Err ack). */
Response
statusReply(Status s, std::uint64_t id)
{
    Response r;
    r.status = s;
    r.id = id;
    return r;
}

std::atomic<int> signalStopFd{-1};

void
onStopSignal(int)
{
    const int fd = signalStopFd.load(std::memory_order_relaxed);
    if (fd >= 0)
        eventfdSignal(fd);  // the only async-signal-safe work we do
}

} // namespace

struct Server::Impl
{
    explicit Impl(ServerConfig c) : cfg(std::move(c)) {}

    ServerConfig cfg;
    ServerRecovery recov;

    /// @name One shared-nothing worker per shard
    /// @{

    struct Worker
    {
        int index = 0;
        Impl *srv = nullptr;
        std::thread th;

        // Queue: acceptor -> worker (rule 2 of the env.hh contract:
        // ownership handoff synchronizes through this mutex).
        std::mutex mu;
        std::condition_variable cv;
        std::deque<OpItem> q;
        bool stopFlag = false;

        // Stats mirrors the acceptor may read (contract rule 3);
        // the pipeline-derived ones are refreshed from the shard's
        // CommitPipeline counters after every worker round.
        std::atomic<std::uint64_t> statGets{0};
        std::atomic<std::uint64_t> statMuts{0};
        std::atomic<std::uint64_t> statScans{0};
        std::atomic<std::uint64_t> statAcks{0};
        std::atomic<std::uint64_t> statCommittedEpoch{0};
        std::atomic<std::uint64_t> statQueueDepth{0};
        std::atomic<std::uint64_t> statEpochs{0};
        std::atomic<std::uint64_t> statFolds{0};
        std::atomic<std::uint64_t> statDeadlineCommits{0};
        std::atomic<std::uint64_t> statTxnCommits{0};  ///< fast path
        std::atomic<std::uint64_t> statTxnAborts{0};   ///< fast path

        // Request-lifecycle histograms, recorded by this worker;
        // the acceptor reads them for STATS/METRICS under the
        // obs::Histogram single-writer/any-reader contract (the
        // store-side stage/commit/fold/recover histograms live in
        // kv->shardObs(0)).
        obs::Histogram queueNs;       ///< enqueue -> worker dequeue
        obs::Histogram commitWaitNs;  ///< staged -> ack released
        obs::Histogram txnCommitNs;   ///< fast-path TXN accept -> ack
        obs::Histogram txnAbortNs;    ///< fast-path TXN accept -> abort

        /** This worker's trace ring; null when tracing is off. */
        obs::TraceRing *ring = nullptr;

        // Online-scrub throttle state (worker thread only).
        Clock::time_point lastScrub{};
        bool quarantineLogged = false;

        // Everything below is touched only by the worker thread.
        kernels::NativeEnv env;
        std::unique_ptr<pmem::PersistentArena> arena;
        std::unique_ptr<store::KvStore<kernels::NativeEnv>> kv;
        store::RecoveryReport report;
        bool attached = false;

        // Cross-shard transaction state (docs/txn_design.md). All of
        // it is worker-thread-only except txnReport, which start()
        // reads after the txn-recovery latch.
        std::unique_ptr<txn::PrepareLog<kernels::NativeEnv>> plog;
        txn::LockTable lockTable;
        txn::TxnRecoveryReport txnReport;

        /**
         * General-path parts on this shard between PREPARE and their
         * apply/abort. While non-zero, scans over write-locked ranges
         * and plain mutations of write-locked keys defer: the part's
         * write-set is resolved but not yet visible, so reading
         * around it would half-observe the transaction and writing
         * under it would be clobbered by the apply.
         */
        int unappliedTxns = 0;

        /** A part parked on a lock-table Waiting verdict. */
        struct ParkedTxn
        {
            std::shared_ptr<TxnCtx> ctx;
            std::size_t part = 0;
            std::size_t next = 0;  ///< lockKeys index being awaited
        };
        std::unordered_map<txn::TxnId, ParkedTxn> parked;

        /**
         * Deferred work, in strict arrival order. The acceptor
         * enqueues every multi-shard operation (scan pieces,
         * transaction parts) to all shards from one program point,
         * so per-shard arrival order is a consistent cut of the
         * global order; cross-shard atomicity of scans rests
         * entirely on every shard preserving it. Hence one FIFO,
         * not per-kind lists: when the item at the front must wait
         * (a scan blocked by a prepared-but-unapplied part's
         * locks), everything behind it waits too. Letting ANY
         * later item overtake re-creates the torn read -- e.g. a
         * part overtaking a deferred scan prepares/applies inside
         * the scan's cut on this shard only, and a scan overtaking
         * a queued part runs pre-part here while its sibling
         * sub-scan on a shard where the same transaction already
         * prepared defers and runs post-apply. Decision fan-outs
         * (TxnApply/TxnAbort) bypass the queue: they are the
         * drain, and their transactions are strictly older than
         * everything queued here.
         */
        std::deque<OpItem> deferred;

        /**
         * Applied PREPARE slots awaiting their durability gate: a
         * slot may be freed only once the shard's durable epoch
         * covers the marker epoch, because the free store is itself
         * lazy (see txn/prepare_log.hh).
         */
        struct SlotFree
        {
            std::size_t slot = 0;
            std::uint64_t epoch = 0;
        };
        std::vector<SlotFree> slotFrees;

        /**
         * Reply payloads awaiting epoch commit. Runs in lockstep
         * with the shard CommitPipeline's pending-ack queue, which
         * owns the epochs and deadlines; this deque only carries
         * what the pipeline doesn't know (who to reply to).
         */
        struct Pending
        {
            std::uint64_t connId;  ///< 0: internal apply, no reply
            std::uint64_t reqId;
            std::uint64_t epoch;
            std::uint64_t tStagedNs;  ///< commit-wait latency start
            std::shared_ptr<BatchCtx> batch;
            std::shared_ptr<TxnCtx> txn;  ///< fast-path commit reply
            std::string txnBody;          ///< encoded reads (with txn)
        };
        std::deque<Pending> pending;
    };

    std::vector<std::unique_ptr<Worker>> workers;
    std::atomic<int> workersExited{0};

    // Startup latch: workers recover before the port binds. The
    // second counter latches the txn-recovery phase, which needs the
    // decision index and therefore runs after the first latch.
    std::mutex readyMu;
    std::condition_variable readyCv;
    int readyCount = 0;
    int txnReadyCount = 0;
    /// @}

    /// @name Acceptor state
    /// @{
    int listenFd = -1;
    int epfd = -1;
    int wakeFd = -1;  ///< workers ring this when replies are queued
    int stopFd = -1;  ///< requestStop()/signals ring this
    int port_ = 0;
    std::thread acceptorTh;
    bool started = false;
    bool shutdownInformed = false;  ///< join() may run twice
    std::atomic<bool> finished{false};

    std::mutex replyMu;
    std::vector<ReplyMsg> replies;

    std::unordered_map<std::uint64_t, Conn> conns;  // acceptor-only
    std::uint64_t nextConnId = firstConnId;

    std::atomic<std::uint64_t> statConns{0};
    std::atomic<std::uint64_t> statAccepted{0};
    std::atomic<std::uint64_t> statRetries{0};
    std::atomic<std::uint64_t> statErrs{0};
    std::atomic<std::uint64_t> statFaults{0};
    std::atomic<std::uint64_t> statMalformed{0};
    std::atomic<std::uint64_t> statTxnCommits{0};  ///< general path
    std::atomic<std::uint64_t> statTxnAborts{0};   ///< general path

    // Acceptor-recorded request-lifecycle histograms (single writer:
    // the acceptor thread; STATS/METRICS render on the same thread).
    obs::Histogram parseNs;  ///< bytes on the wire -> decoded request
    obs::Histogram ackNs;    ///< worker posted reply -> encoded
    obs::Histogram txnCommitNs;  ///< general path: accept -> decision
    obs::Histogram txnAbortNs;   ///< general path: accept -> abort

    /// @name Transaction coordinator (docs/txn_design.md)
    /// The acceptor assigns ids, collects votes, and owns the
    /// persistent decision ring (dataDir/txnlog.lpdb). Workers post
    /// their votes through txnMu and read the decision index only
    /// during the startup recovery phase (ordered by the worker-queue
    /// handoff).
    /// @{
    std::mutex txnMu;
    std::vector<TxnEvent> txnEvents;

    kernels::NativeEnv txnEnv;
    std::unique_ptr<pmem::PersistentArena> txnArena;
    std::unique_ptr<txn::DecisionLog<kernels::NativeEnv>> dlog;
    std::uint64_t dlogMaxTxnId = 0;  ///< largest id the ring recalls
    std::uint64_t nextTxnId = 1;     ///< acceptor-thread only
    /// @}

    // Tracing (cfg.traceOut non-empty): the collector owns every
    // ring; workers and the acceptor hold borrowed pointers.
    std::unique_ptr<obs::TraceCollector> trace;
    obs::TraceRing *acceptRing = nullptr;
    /// @}

    /// @name Worker side
    /// @{

    std::string
    shardPath(int i) const
    {
        return cfg.dataDir + "/shard-" + std::to_string(i) + ".lpdb";
    }

    /**
     * Open (or re-attach) this worker's single-shard store. Runs on
     * the worker's own thread so the debug owner binding and all
     * recovery table writes happen on the thread that will serve the
     * shard.
     */
    void
    openStore(Worker &w)
    {
        store::StoreConfig scfg;
        scfg.capacity = cfg.capacityPerShard;
        scfg.shards = 1;
        scfg.batchOps = cfg.batchOps;
        scfg.foldBatches = cfg.foldBatches;
        scfg.checksum = cfg.checksum;
        scfg.flushDeadlineUs = cfg.flushDeadlineUs;
        const std::string path = shardPath(w.index);
        struct stat st{};
        const bool attach = ::stat(path.c_str(), &st) == 0 &&
                            st.st_size > 0;
        // Arena budget: the store image plus this shard's PREPARE
        // table, allocated in that order on every open (the arena
        // attach contract).
        w.arena = std::make_unique<pmem::PersistentArena>(
            store::storeArenaBytes(scfg) +
                txn::prepareLogBytes(cfg.txnPrepareSlots),
            path);
        w.kv = std::make_unique<store::KvStore<kernels::NativeEnv>>(
            *w.arena, scfg, cfg.backend, attach);
        w.plog =
            std::make_unique<txn::PrepareLog<kernels::NativeEnv>>(
                *w.arena, cfg.txnPrepareSlots, attach);
        // Attach the trace ring before recovery so the replay's
        // "recover_shard" span lands in the collector.
        if (w.ring)
            w.kv->attachTraceRing(0, w.ring);
        if (attach) {
            w.report = w.kv->recover(w.env);
            w.attached = true;
        } else {
            w.arena->persistAll();
        }
        w.statCommittedEpoch.store(w.kv->committedEpoch(0),
                                   std::memory_order_relaxed);
        w.lastScrub = Clock::now();
        if (w.kv->quarantined(0)) {
            w.quarantineLogged = true;
            warn("lp::server shard " + std::to_string(w.index) +
                 " has unrepairable media corruption; serving "
                 "read-only (mutations get Fault)");
        }
    }

    void
    postReply(std::uint64_t connId, Response r)
    {
        {
            std::lock_guard<std::mutex> g(replyMu);
            replies.push_back(
                ReplyMsg{connId, obs::nowNs(), std::move(r)});
        }
        eventfdSignal(wakeFd);
    }

    /** Acknowledge one released mutation (direct op or BATCH part). */
    void
    releaseAck(Worker &w, Worker::Pending &p)
    {
        if (p.txn) {
            // Fast-path TXN: the epoch carrying the whole write-set
            // committed, so the transaction is durable -- reply, then
            // release the locks (held until now so no later
            // transaction could commit against values a crash might
            // still have discarded with the unsealed batch).
            w.commitWaitNs.record(obs::nowNs() - p.tStagedNs);
            Response r;
            r.status = Status::Ok;
            r.id = p.reqId;
            r.body = std::move(p.txnBody);
            postReply(p.connId, std::move(r));
            w.statTxnCommits.fetch_add(1, std::memory_order_relaxed);
            w.txnCommitNs.record(obs::nowNs() - p.txn->tStartNs);
            txn::LockTable::Events ev;
            w.lockTable.releaseAll(
                p.txn->txnid, p.txn->parts[0].lockKeys, ev);
            serviceLockEvents(w, std::move(ev));
            return;
        }
        if (p.connId == 0)
            return;  // internal apply of a committed TXN: no reply
        w.commitWaitNs.record(obs::nowNs() - p.tStagedNs);
        if (p.batch) {
            if (p.batch->remaining.fetch_sub(
                    1, std::memory_order_acq_rel) != 1)
                return;  // not the last sub-op yet
            Response r;
            r.status = p.batch->faulted.load(std::memory_order_acquire)
                           ? Status::Fault
                           : Status::Ok;
            r.id = p.batch->reqId;
            postReply(p.batch->connId, std::move(r));
            return;
        }
        Response r;
        r.status = Status::Ok;
        r.id = p.reqId;
        postReply(p.connId, std::move(r));
    }

    /**
     * Release every pending ack whose epoch has committed, and
     * refresh this worker's stat mirrors from the shard pipeline's
     * counters (the single source of truth for epoch accounting).
     */
    void
    releaseCommitted(Worker &w)
    {
        engine::CommitPipeline &pl = w.kv->pipeline(0);
        const std::uint64_t ce = w.kv->committedEpoch(0);
        const std::size_t n = pl.releaseUpTo(ce);
        for (std::size_t i = 0; i < n; ++i) {
            LP_ASSERT(!w.pending.empty() &&
                          w.pending.front().epoch <= ce,
                      "reply queue out of sync with pipeline acks");
            releaseAck(w, w.pending.front());
            w.pending.pop_front();
        }
        sweepSlotFrees(w);
        const engine::PipelineCounters &c = pl.counters();
        w.statAcks.store(c.acksReleased, std::memory_order_relaxed);
        w.statEpochs.store(c.epochsCommitted,
                           std::memory_order_relaxed);
        w.statFolds.store(c.folds, std::memory_order_relaxed);
        w.statDeadlineCommits.store(c.deadlineCommits,
                                    std::memory_order_relaxed);
        w.statCommittedEpoch.store(ce, std::memory_order_relaxed);
    }

    /// @name Worker-side transaction participant
    /// @{

    void
    postTxnEvent(TxnEvent ev)
    {
        {
            std::lock_guard<std::mutex> g(txnMu);
            txnEvents.push_back(std::move(ev));
        }
        eventfdSignal(wakeFd);
    }

    /** Free applied slots whose marker epoch the shard has made
     *  durable (the lazy-free gate of txn/prepare_log.hh). The gate
     *  is the pipeline's volatile durable watermark: it matches the
     *  superblock's for LP/WAL but, unlike it, also advances for the
     *  eager backend, whose in-place per-op persists never fold. */
    void
    sweepSlotFrees(Worker &w)
    {
        if (w.slotFrees.empty())
            return;
        const std::uint64_t durable =
            w.kv->pipeline(0).foldedEpoch();
        std::erase_if(w.slotFrees, [&](const Worker::SlotFree &f) {
            if (durable < f.epoch)
                return false;
            w.plog->free(w.env, f.slot);
            return true;
        });
    }

    /// Can this kind join Worker::deferred? Single-key Gets bypass
    /// (a point read tears nothing: prepared writes are invisible
    /// until apply), as do the TxnApply/TxnAbort decision fan-outs
    /// that drain the queue.
    static bool
    deferrable(OpItem::Kind k)
    {
        return k == OpItem::Kind::Scan || k == OpItem::Kind::Put ||
               k == OpItem::Kind::Del || k == OpItem::Kind::Txn;
    }

    /**
     * Must @p op wait for a lock-state change before running? Only
     * meaningful when nothing older is queued ahead of it (strict
     * FIFO handles that part).
     */
    bool
    deferNow(Worker &w, const OpItem &op) const
    {
        switch (op.kind) {
          case OpItem::Kind::Scan:
            // A granted write lock may cover a prepared-but-
            // unapplied transaction write; a sub-scan passing
            // through it could hand the k-way merge a half-applied
            // transaction.
            return w.unappliedTxns > 0 &&
                   w.lockTable.anyWriteLockedAtOrAbove(op.key);
          case OpItem::Kind::Put:
          case OpItem::Kind::Del:
            // A plain store between a transaction's resolve and its
            // apply would be clobbered by the apply (lost update).
            return w.unappliedTxns > 0 &&
                   w.lockTable.writeLocked(op.key);
          default:
            // Txn parts always run once they reach the front: lock
            // acquisition itself resolves conflicts (grant, park,
            // or wait-die abort).
            return false;
        }
    }

    /// Run @p op now unless strict FIFO or its own defer condition
    /// says it must queue (see Worker::deferred).
    void
    dispatchOp(Worker &w, OpItem &op)
    {
        if (deferrable(op.kind) &&
            (!w.deferred.empty() || deferNow(w, op))) {
            op.tEnqNs = obs::nowNs();
            w.deferred.push_back(std::move(op));
            return;
        }
        processOp(w, op);
    }

    /**
     * After a lock-state change, drain deferred work from the
     * front, stopping at the first item that must still wait --
     * never past it, or a later scan/part would observe a cut
     * inconsistent with its siblings on other shards.
     */
    void
    retryDeferred(Worker &w)
    {
        while (!w.deferred.empty() &&
               !deferNow(w, w.deferred.front())) {
            OpItem op = std::move(w.deferred.front());
            w.deferred.pop_front();
            processOp(w, op);
        }
    }

    /**
     * Service the fallout of a lock release: resume parked parts the
     * release granted, abort the ones it killed (whose own releases
     * can grant/kill further waiters -- hence the worklist), then
     * retry deferred work.
     */
    void
    serviceLockEvents(Worker &w, txn::LockTable::Events ev)
    {
        while (!ev.granted.empty() || !ev.died.empty()) {
            txn::LockTable::Events next;
            for (const auto id : ev.died)
                abortParked(w, id, next);
            for (const auto id : ev.granted)
                resumeParked(w, id, next);
            ev = std::move(next);
        }
        retryDeferred(w);
    }

    void
    resumeParked(Worker &w, txn::TxnId id, txn::LockTable::Events &ev)
    {
        const auto it = w.parked.find(id);
        if (it == w.parked.end())
            return;
        const Worker::ParkedTxn pk = std::move(it->second);
        w.parked.erase(it);
        // The awaited key (index pk.next) was just granted to us;
        // continue the plan past it.
        if (acquireTxnLocks(w, pk.ctx, pk.part, pk.next + 1, ev))
            prepareTxnPart(w, pk.ctx, pk.part);
    }

    void
    abortParked(Worker &w, txn::TxnId id, txn::LockTable::Events &ev)
    {
        const auto it = w.parked.find(id);
        if (it == w.parked.end())
            return;
        const Worker::ParkedTxn pk = std::move(it->second);
        w.parked.erase(it);
        const TxnCtx::Part &part = pk.ctx->parts[pk.part];
        // Keys before the awaited index are held; drop them. (The
        // lock table already removed the killed waiter entry.)
        w.lockTable.releaseAll(
            id,
            {part.lockKeys.begin(),
             part.lockKeys.begin() + std::ptrdiff_t(pk.next)},
            ev);
        abortTxnPart(w, pk.ctx, pk.part, false);
    }

    /**
     * Drive @p partIdx's lock plan from index @p next. True once
     * every lock is held; false when the part parked (resumed by a
     * later grant) or died (already aborted here).
     */
    bool
    acquireTxnLocks(Worker &w, const std::shared_ptr<TxnCtx> &ctx,
                    std::size_t partIdx, std::size_t next,
                    txn::LockTable::Events &ev)
    {
        const TxnCtx::Part &part = ctx->parts[partIdx];
        for (; next < part.lockKeys.size(); ++next) {
            const auto got =
                w.lockTable.acquire(ctx->txnid, part.lockKeys[next],
                                    part.lockModes[next]);
            if (got == txn::Acquire::Granted)
                continue;
            if (got == txn::Acquire::Waiting) {
                w.parked[ctx->txnid] =
                    Worker::ParkedTxn{ctx, partIdx, next};
                return false;
            }
            // Wait-die says die: drop what we hold and abort.
            w.lockTable.releaseAll(
                ctx->txnid,
                {part.lockKeys.begin(),
                 part.lockKeys.begin() + std::ptrdiff_t(next)},
                ev);
            abortTxnPart(w, ctx, partIdx, false);
            return false;
        }
        return true;
    }

    /** This part is out (locks already dropped): reply directly on
     *  the fast path, else vote Aborted to the coordinator. */
    void
    abortTxnPart(Worker &w, const std::shared_ptr<TxnCtx> &ctx,
                 std::size_t partIdx, bool faulted)
    {
        if (faulted)
            ctx->faulted.store(true, std::memory_order_release);
        if (ctx->fastPath) {
            w.statTxnAborts.fetch_add(1, std::memory_order_relaxed);
            w.txnAbortNs.record(obs::nowNs() - ctx->tStartNs);
            postReply(ctx->connId,
                      statusReply(faulted ? Status::Fault
                                          : Status::Aborted,
                                  ctx->reqId));
            return;
        }
        ctx->abortedParts.fetch_add(1, std::memory_order_relaxed);
        postTxnEvent(
            TxnEvent{TxnEvent::Kind::Aborted, partIdx, ctx});
    }

    /**
     * Locks held: resolve this part's ops in wire order against an
     * overlay (read-your-writes; Add deltas become concrete values;
     * last write per key wins, first-write order), fill the
     * transaction's read slots, then run the single-shard fast path
     * or publish the PREPARE vote.
     */
    void
    prepareTxnPart(Worker &w, const std::shared_ptr<TxnCtx> &ctx,
                   std::size_t partIdx)
    {
        TxnCtx::Part &part = ctx->parts[partIdx];

        // Quarantine backstop on the owning thread (the acceptor's
        // precheck can race with a scrub discovering corruption).
        if (part.hasWrites && w.kv->quarantined(0)) {
            txn::LockTable::Events ev;
            w.lockTable.releaseAll(ctx->txnid, part.lockKeys, ev);
            abortTxnPart(w, ctx, partIdx, true);
            serviceLockEvents(w, std::move(ev));
            return;
        }

        std::unordered_map<std::uint64_t,
                           std::optional<std::uint64_t>>
            overlay;
        std::vector<std::uint64_t> writeOrder;
        const auto current =
            [&](std::uint64_t key) -> std::optional<std::uint64_t> {
            const auto it = overlay.find(key);
            if (it != overlay.end())
                return it->second;
            return w.kv->get(w.env, key);
        };
        const auto noteWrite = [&](std::uint64_t key) {
            if (overlay.find(key) == overlay.end())
                writeOrder.push_back(key);
        };
        for (const auto opIdx : part.ops) {
            const TxnOp &op = ctx->ops[opIdx];
            switch (op.kind) {
              case TxnOp::Kind::Get: {
                const auto v = current(op.key);
                ctx->reads[std::size_t(ctx->readSlot[opIdx])] =
                    TxnRead{v.has_value(), v.value_or(0)};
                break;
              }
              case TxnOp::Kind::Put:
                noteWrite(op.key);
                overlay[op.key] = op.value;
                break;
              case TxnOp::Kind::Del:
                noteWrite(op.key);
                overlay[op.key] = std::nullopt;
                break;
              case TxnOp::Kind::Add: {
                const auto v = current(op.key);
                noteWrite(op.key);
                overlay[op.key] = v.value_or(0) + op.value;
                break;
              }
            }
        }
        part.writes.clear();
        for (const auto key : writeOrder) {
            const auto &val = overlay[key];
            part.writes.push_back(txn::WriteOp{key, val.value_or(0),
                                               !val.has_value()});
        }

        if (ctx->fastPath) {
            commitTxnFast(w, ctx, part);
            return;
        }

        if (!part.writes.empty()) {
            std::size_t slot = w.plog->alloc(w.env);
            if (slot ==
                txn::PrepareLog<kernels::NativeEnv>::npos) {
                // Pressure valve: a checkpoint makes every gated
                // free eligible; then retry once.
                w.kv->checkpoint(w.env);
                sweepSlotFrees(w);
                slot = w.plog->alloc(w.env);
            }
            if (slot ==
                txn::PrepareLog<kernels::NativeEnv>::npos) {
                txn::LockTable::Events ev;
                w.lockTable.releaseAll(ctx->txnid, part.lockKeys,
                                       ev);
                abortTxnPart(w, ctx, partIdx, false);
                serviceLockEvents(w, std::move(ev));
                return;
            }
            w.plog->publish(w.env, slot, ctx->txnid,
                            part.writes.data(), part.writes.size());
            part.slot = slot;
            ++w.unappliedTxns;
        }
        part.prepared = true;
        postTxnEvent(
            TxnEvent{TxnEvent::Kind::Prepared, partIdx, ctx});
    }

    /**
     * Single-shard fast path: stage the whole write-set as one epoch
     * -- the backend's epoch atomicity (LP discards unsealed batches,
     * WAL rolls back incomplete ones) is then the transaction
     * atomicity, with no prepare slot, no decision record, and no
     * eager protocol flush. This is where LP's commit-latency win
     * over WAL must survive. The reply and the lock release both
     * wait for the epoch commit (releaseAck).
     */
    void
    commitTxnFast(Worker &w, const std::shared_ptr<TxnCtx> &ctx,
                  TxnCtx::Part &part)
    {
        std::string body = encodeTxnReadsBody(ctx->reads);
        if (part.writes.empty()) {
            // Read-only: nothing to persist, reply straight away.
            txn::LockTable::Events ev;
            w.lockTable.releaseAll(ctx->txnid, part.lockKeys, ev);
            Response r;
            r.status = Status::Ok;
            r.id = ctx->reqId;
            r.body = std::move(body);
            postReply(ctx->connId, std::move(r));
            w.statTxnCommits.fetch_add(1, std::memory_order_relaxed);
            w.txnCommitNs.record(obs::nowNs() - ctx->tStartNs);
            serviceLockEvents(w, std::move(ev));
            return;
        }
        // Pre-flush so the write-set cannot straddle an epoch seal
        // (stage() auto-commits WITH the filling op included, so
        // staged + writes <= batchOps keeps us in one epoch).
        engine::CommitPipeline &pl = w.kv->pipeline(0);
        if (pl.stagedOps() > 0 &&
            pl.stagedOps() + part.writes.size() >
                std::size_t(cfg.batchOps))
            w.kv->commitBatches(w.env);
        std::uint64_t epoch = 0;
        for (const auto &wr : part.writes) {
            epoch = wr.del ? w.kv->del(w.env, wr.key)
                           : w.kv->put(w.env, wr.key, wr.value);
            w.statMuts.fetch_add(1, std::memory_order_relaxed);
        }
        Worker::Pending p;
        p.connId = ctx->connId;
        p.reqId = ctx->reqId;
        p.epoch = epoch;
        p.tStagedNs = obs::nowNs();
        p.txn = ctx;
        p.txnBody = std::move(body);
        w.pending.push_back(std::move(p));
        w.kv->pipeline(0).notePending(epoch, Clock::now());
    }
    /// @}

    void
    processOp(Worker &w, OpItem &op)
    {
        w.queueNs.record(obs::nowNs() - op.tEnqNs);
        switch (op.kind) {
          case OpItem::Kind::Get: {
            const auto v = w.kv->get(w.env, op.key);
            w.statGets.fetch_add(1, std::memory_order_relaxed);
            Response r;
            r.status = v ? Status::Ok : Status::NotFound;
            r.id = op.reqId;
            r.hasValue = v.has_value();
            r.value = v.value_or(0);
            postReply(op.connId, std::move(r));
            return;
          }
          case OpItem::Kind::Scan: {
            // Defer conditions were checked by dispatchOp /
            // retryDeferred; by the time a sub-scan runs here, no
            // prepared-but-unapplied transaction write can be under
            // its range.
            // Sub-scan of this worker's shard. KvStore::scan records
            // the per-shard scan latency/length histograms itself
            // (single-shard store: shard 0 is exactly this shard).
            const auto recs = w.kv->scan(w.env, op.key,
                                         std::size_t(op.value));
            w.statScans.fetch_add(1, std::memory_order_relaxed);
            ScanCtx &ctx = *op.scan;
            auto &slot = ctx.parts[std::size_t(w.index)];
            slot.reserve(recs.size());
            for (const auto &[k, v] : recs)
                slot.push_back(ScanRecord{k, v});
            if (ctx.remaining.fetch_sub(
                    1, std::memory_order_acq_rel) != 1)
                return;  // other shards still scanning
            // Last sub-scan: k-way merge the sorted partials (shards
            // partition the key space, so popping the minimum head
            // yields global order) and post the single reply.
            std::vector<ScanRecord> merged;
            merged.reserve(ctx.limit);
            std::vector<std::size_t> at(ctx.parts.size(), 0);
            while (merged.size() < ctx.limit) {
                int best = -1;
                for (std::size_t s = 0; s < ctx.parts.size(); ++s) {
                    if (at[s] >= ctx.parts[s].size())
                        continue;
                    if (best < 0 ||
                        ctx.parts[s][at[s]].key <
                            ctx.parts[std::size_t(best)]
                                     [at[std::size_t(best)]].key)
                        best = int(s);
                }
                if (best < 0)
                    break;
                merged.push_back(
                    ctx.parts[std::size_t(best)]
                             [at[std::size_t(best)]++]);
            }
            Response r;
            r.status = Status::Ok;
            r.id = ctx.reqId;
            r.body = encodeScanBody(merged);
            postReply(ctx.connId, std::move(r));
            return;
          }
          case OpItem::Kind::Put:
          case OpItem::Kind::Del: {
            // Worker-side quarantine backstop: the acceptor's
            // fast-path check can race with a scrub discovering
            // corruption, so the authoritative refusal lives here,
            // on the thread that owns the shard.
            if (w.kv->quarantined(0)) {
                if (op.batch) {
                    op.batch->faulted.store(
                        true, std::memory_order_release);
                    if (op.batch->remaining.fetch_sub(
                            1, std::memory_order_acq_rel) == 1)
                        postReply(op.batch->connId,
                                  statusReply(Status::Fault,
                                              op.batch->reqId));
                    return;
                }
                postReply(op.connId,
                          statusReply(Status::Fault, op.reqId));
                return;
            }
            const std::uint64_t epoch =
                op.kind == OpItem::Kind::Put
                    ? w.kv->put(w.env, op.key, op.value)
                    : w.kv->del(w.env, op.key);
            w.statMuts.fetch_add(1, std::memory_order_relaxed);
            // Every mutation waits for its epoch to commit; the
            // following releaseCommitted() releases it the same round
            // for backends that commit per op (eager, and WAL when the
            // op filled its batch).
            w.pending.push_back(Worker::Pending{
                op.connId, op.reqId, epoch, obs::nowNs(), op.batch});
            w.kv->pipeline(0).notePending(epoch, Clock::now());
            return;
          }
          case OpItem::Kind::Txn: {
            txn::LockTable::Events ev;
            if (acquireTxnLocks(w, op.txn, op.part, 0, ev))
                prepareTxnPart(w, op.txn, op.part);
            serviceLockEvents(w, std::move(ev));
            return;
          }
          case OpItem::Kind::TxnApply: {
            // Coordinator decided commit: apply this part's write-set
            // lazily (the decision record makes it recoverable), then
            // persist the applied marker BEFORE releasing the locks --
            // once unlocked keys are externally visible, a crash must
            // roll forward, never re-run a half-superseded apply.
            TxnCtx::Part &part = op.txn->parts[op.part];
            std::uint64_t epoch = 0;
            for (const auto &wr : part.writes) {
                epoch = wr.del ? w.kv->del(w.env, wr.key)
                               : w.kv->put(w.env, wr.key, wr.value);
                w.statMuts.fetch_add(1, std::memory_order_relaxed);
                w.pending.push_back(Worker::Pending{
                    0, 0, epoch, obs::nowNs(), nullptr});
                w.kv->pipeline(0).notePending(epoch, Clock::now());
            }
            if (!part.writes.empty()) {
                w.plog->markApplied(w.env, part.slot, epoch);
                w.slotFrees.push_back(
                    Worker::SlotFree{part.slot, epoch});
                --w.unappliedTxns;
            }
            txn::LockTable::Events ev;
            w.lockTable.releaseAll(op.txn->txnid, part.lockKeys, ev);
            serviceLockEvents(w, std::move(ev));
            return;
          }
          case OpItem::Kind::TxnAbort: {
            // Coordinator decided abort and this part had prepared:
            // freeing the undecided vote IS the roll-back. The free
            // is lazy on purpose -- if it tears, recovery still sees
            // prepared-with-no-decision and rolls back again.
            TxnCtx::Part &part = op.txn->parts[op.part];
            if (!part.writes.empty()) {
                w.plog->free(w.env, part.slot);
                --w.unappliedTxns;
            }
            txn::LockTable::Events ev;
            w.lockTable.releaseAll(op.txn->txnid, part.lockKeys, ev);
            serviceLockEvents(w, std::move(ev));
            return;
          }
          case OpItem::Kind::TxnRecover: {
            // Startup phase 2 (after every shard's own recovery and
            // the coordinator's decision-log scan): replay this
            // shard's prepare table against the decision index.
            const std::vector<txn::PrepareLog<kernels::NativeEnv> *>
                pls{w.plog.get()};
            const std::vector<std::uint64_t> marks{
                w.kv->committedEpoch(0)};
            w.txnReport = txn::recoverTxns(w.env, *w.kv, pls, marks,
                                           dlog->index());
            {
                std::lock_guard<std::mutex> g(readyMu);
                ++txnReadyCount;
            }
            readyCv.notify_all();
            return;
          }
        }
    }

    void
    workerMain(Worker &w)
    {
        openStore(w);
        {
            std::lock_guard<std::mutex> g(readyMu);
            ++readyCount;
        }
        readyCv.notify_all();

        std::vector<OpItem> local;
        for (;;) {
            bool stopping = false;
            local.clear();
            {
                std::unique_lock<std::mutex> lk(w.mu);
                const auto woken = [&] {
                    return w.stopFlag || !w.q.empty();
                };
                if (w.q.empty() && !w.stopFlag) {
                    engine::CommitPipeline &pl = w.kv->pipeline(0);
                    if (pl.hasPending())
                        w.cv.wait_until(lk, pl.ackDeadline(), woken);
                    else if (cfg.scrubIntervalMs > 0)
                        // Wake for the next scrub step even with no
                        // traffic: an idle server still patrols.
                        w.cv.wait_until(
                            lk,
                            w.lastScrub + std::chrono::milliseconds(
                                              cfg.scrubIntervalMs),
                            woken);
                    else
                        w.cv.wait(lk, woken);
                }
                while (!w.q.empty() && local.size() < 128) {
                    local.push_back(std::move(w.q.front()));
                    w.q.pop_front();
                }
                stopping = w.stopFlag && w.q.empty();
                w.statQueueDepth.store(w.q.size(),
                                       std::memory_order_relaxed);
            }

            for (OpItem &op : local)
                dispatchOp(w, op);

            // Deadline flush: commit an underfilled batch rather than
            // keep its acks hostage to future traffic. The pipeline
            // owns the deadline bookkeeping (engine/commit_pipeline.hh).
            {
                engine::CommitPipeline &pl = w.kv->pipeline(0);
                const bool due = pl.commitDue(Clock::now());
                if (pl.hasPending() && (stopping || due)) {
                    if (due) {
                        pl.noteDeadlineCommit();
                        obs::traceInstant(w.ring, "deadline_commit",
                                          pl.lastCommitted() + 1);
                    }
                    w.kv->commitBatches(w.env);
                }
            }
            releaseCommitted(w);

            // Online scrub: strictly off the request path (only on
            // rounds whose queue drained empty) and rate-limited, so
            // foreground latency never pays for media patrol.
            if (!stopping && local.empty() &&
                cfg.scrubIntervalMs > 0) {
                const auto now = Clock::now();
                if (now - w.lastScrub >=
                    std::chrono::milliseconds(cfg.scrubIntervalMs)) {
                    w.kv->scrubStep(w.env, 0, cfg.scrubRegions);
                    w.lastScrub = now;
                    if (!w.quarantineLogged && w.kv->quarantined(0)) {
                        w.quarantineLogged = true;
                        warn("lp::server shard " +
                             std::to_string(w.index) +
                             " quarantined by scrub: unrepairable "
                             "media corruption; serving read-only");
                    }
                }
            }

            if (stopping) {
                // Parked, deferred, and prepared-but-undecided
                // transaction work dies with the connections -- to a
                // client an unacked request lost at shutdown is
                // indistinguishable from one lost in flight. Prepared
                // slots stay durable; the next startup's decision
                // replay rolls them back (or forward).
                w.parked.clear();
                w.deferred.clear();
                // Graceful drain: everything committed and folded, so
                // a restart recovers instantly. The clean-shutdown
                // mark switches the next recovery into strict mode,
                // where a validation failure is a media fault (repair
                // or quarantine) rather than a crash tear. A
                // quarantined shard keeps its pre-fault superblock
                // untouched so the restart re-detects the quarantine.
                if (!w.kv->quarantined(0))
                    w.kv->checkpoint(w.env);
                w.kv->markClean(w.env);
                w.arena->persistAll();
                releaseCommitted(w);
                LP_ASSERT(w.pending.empty(),
                          "worker drained with unreleased acks");
                break;
            }
        }
        workersExited.fetch_add(1, std::memory_order_release);
        eventfdSignal(wakeFd);  // let the acceptor notice the exit
    }

    void
    enqueue(int shard, OpItem &&op)
    {
        Worker &w = *workers[shard];
        {
            std::lock_guard<std::mutex> g(w.mu);
            w.q.push_back(std::move(op));
        }
        w.cv.notify_one();
    }
    /// @}

    /// @name Acceptor side
    /// @{

    void
    epollAdd(int fd, std::uint64_t ud, std::uint32_t events)
    {
        epoll_event ev{};
        ev.events = events;
        ev.data.u64 = ud;
        LP_ASSERT(::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) == 0,
                  "epoll_ctl(ADD) failed");
    }

    void
    connUpdateEvents(Conn &c, bool wantWrite)
    {
        if (c.wantWrite == wantWrite)
            return;
        epoll_event ev{};
        ev.events = EPOLLIN | (wantWrite ? EPOLLOUT : 0u);
        ev.data.u64 = c.id;
        if (::epoll_ctl(epfd, EPOLL_CTL_MOD, c.fd, &ev) == 0)
            c.wantWrite = wantWrite;
    }

    void
    closeConn(std::uint64_t id)
    {
        auto it = conns.find(id);
        if (it == conns.end())
            return;
        if (acceptRing && it->second.tOpenNs)
            acceptRing->push({"conn", acceptRing->tid(),
                              it->second.tOpenNs,
                              obs::nowNs() - it->second.tOpenNs, id});
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, it->second.fd, nullptr);
        ::close(it->second.fd);
        conns.erase(it);
        statConns.store(conns.size(), std::memory_order_relaxed);
    }

    /** Write as much of c.out as the socket accepts. */
    bool
    flushConn(Conn &c)
    {
        while (c.outAt < c.out.size()) {
            const ssize_t n = ::write(c.fd, c.out.data() + c.outAt,
                                      c.out.size() - c.outAt);
            if (n > 0) {
                c.outAt += std::size_t(n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                connUpdateEvents(c, true);
                return true;
            }
            return false;  // peer gone
        }
        c.out.clear();
        c.outAt = 0;
        connUpdateEvents(c, false);
        return true;
    }

    void
    localReply(Conn &c, Response r)
    {
        encodeResponse(r, c.out);
        if (!flushConn(c))
            closeConn(c.id);
    }

    std::string
    statsJsonNow() const
    {
        using stats::JsonValue;
        JsonValue::Object o;
        o["backend"] = store::backendName(cfg.backend);
        o["shards"] = std::uint64_t(cfg.shards);
        o["connections"] = statConns.load(std::memory_order_relaxed);
        o["accepted"] = statAccepted.load(std::memory_order_relaxed);
        o["retries"] = statRetries.load(std::memory_order_relaxed);
        o["errors"] = statErrs.load(std::memory_order_relaxed);
        o["faults"] = statFaults.load(std::memory_order_relaxed);
        namespace sn = engine::statname;
        // Latency keys carry the canonical "_ns" base plus percentile
        // suffixes; values are nanoseconds (bucket midpoints).
        const auto addLat = [](JsonValue::Object &dst, const char *base,
                               const obs::Histogram &h) {
            const obs::Histogram::Summary m = h.summary();
            const std::string b(base);
            dst[b + "_count"] = m.count;
            dst[b + "_p50"] = m.p50Ns;
            dst[b + "_p90"] = m.p90Ns;
            dst[b + "_p99"] = m.p99Ns;
            dst[b + "_p999"] = m.p999Ns;
        };
        std::uint64_t gets = 0, muts = 0, acks = 0, scans = 0;
        std::uint64_t epochs = 0, folds = 0, deadlines = 0;
        std::uint64_t mediaRepaired = 0, mediaUnrepairable = 0;
        // Txn commits/aborts split across owners: fast path on the
        // shard worker, general path on the acceptor (coordinator).
        std::uint64_t txnC =
            statTxnCommits.load(std::memory_order_relaxed);
        std::uint64_t txnA =
            statTxnAborts.load(std::memory_order_relaxed);
        obs::Histogram txnCommitAll, txnAbortAll;
        txnCommitAll.merge(txnCommitNs);
        txnAbortAll.merge(txnAbortNs);
        JsonValue::Object shards;
        for (const auto &wp : workers) {
            const auto &w = *wp;
            JsonValue::Object s;
            const std::uint64_t g =
                w.statGets.load(std::memory_order_relaxed);
            const std::uint64_t m =
                w.statMuts.load(std::memory_order_relaxed);
            const std::uint64_t sc =
                w.statScans.load(std::memory_order_relaxed);
            const std::uint64_t a =
                w.statAcks.load(std::memory_order_relaxed);
            const std::uint64_t e =
                w.statEpochs.load(std::memory_order_relaxed);
            const std::uint64_t f =
                w.statFolds.load(std::memory_order_relaxed);
            const std::uint64_t d =
                w.statDeadlineCommits.load(std::memory_order_relaxed);
            const std::uint64_t tc =
                w.statTxnCommits.load(std::memory_order_relaxed);
            const std::uint64_t ta =
                w.statTxnAborts.load(std::memory_order_relaxed);
            s[sn::gets] = g;
            s[sn::mutations] = m;
            s[sn::scans] = sc;
            s[sn::txnCommits] = tc;
            s[sn::txnAborts] = ta;
            s[sn::acksReleased] = a;
            s[sn::epochsCommitted] = e;
            s[sn::folds] = f;
            s[sn::deadlineCommits] = d;
            s[sn::committedEpoch] =
                w.statCommittedEpoch.load(std::memory_order_relaxed);
            s[sn::queueDepth] =
                w.statQueueDepth.load(std::memory_order_relaxed);
            // Recovery counters: written once by the worker before
            // the readiness latch, so the acceptor's reads are
            // ordered-after by start()'s latch acquire.
            s[sn::recoveryAttached] =
                std::uint64_t(w.attached ? 1 : 0);
            s[sn::batchesReplayed] = w.report.batchesReplayed;
            s[sn::entriesReplayed] = w.report.entriesReplayed;
            s[sn::batchesDiscarded] = w.report.batchesDiscarded;
            s[sn::walUndone] =
                std::uint64_t(w.report.walUndone ? 1 : 0);
            // Media-fault counters: the store's own atomics, safe to
            // read cross-thread like the histogram mirrors.
            const store::MediaCounters &mc = w.kv->mediaCounters(0);
            const std::uint64_t mr =
                mc.repaired.load(std::memory_order_relaxed);
            const std::uint64_t mu =
                mc.unrepairable.load(std::memory_order_relaxed);
            s[sn::mediaRepaired] = mr;
            s[sn::mediaUnrepairable] = mu;
            s[sn::scrubRegions] =
                mc.scrubRegions.load(std::memory_order_relaxed);
            s[sn::scrubPasses] =
                mc.scrubPasses.load(std::memory_order_relaxed);
            s[sn::quarantined] =
                std::uint64_t(w.kv->quarantined(0) ? 1 : 0);
            mediaRepaired += mr;
            mediaUnrepairable += mu;
            // Ordered-index gauges: the worker's kv atomics, safe to
            // read cross-thread like the histogram mirrors.
            s[sn::indexEntries] = w.kv->indexEntries(0);
            s[sn::indexBytes] = w.kv->indexBytes(0);
            const obs::ShardObs &ob = w.kv->shardObs(0);
            addLat(s, sn::stageLatNs, ob.stageNs);
            addLat(s, sn::commitLatNs, ob.commitNs);
            addLat(s, sn::foldLatNs, ob.foldNs);
            addLat(s, sn::recoverLatNs, ob.recoverNs);
            addLat(s, sn::scanLatNs, ob.scanNs);
            addLat(s, sn::scanLen, ob.scanLen);
            addLat(s, sn::scrubLatNs, ob.scrubNs);
            addLat(s, sn::reqQueueNs, w.queueNs);
            addLat(s, sn::reqCommitWaitNs, w.commitWaitNs);
            shards[std::to_string(w.index)] = std::move(s);
            gets += g;
            muts += m;
            scans += sc;
            txnC += tc;
            txnA += ta;
            acks += a;
            epochs += e;
            folds += f;
            deadlines += d;
            txnCommitAll.merge(w.txnCommitNs);
            txnAbortAll.merge(w.txnAbortNs);
        }
        o[sn::gets] = gets;
        o[sn::mutations] = muts;
        o[sn::scans] = scans;
        o[sn::acksReleased] = acks;
        o[sn::epochsCommitted] = epochs;
        o[sn::folds] = folds;
        o[sn::deadlineCommits] = deadlines;
        o[sn::mediaRepaired] = mediaRepaired;
        o[sn::mediaUnrepairable] = mediaUnrepairable;
        o[sn::txnCommits] = txnC;
        o[sn::txnAborts] = txnA;
        addLat(o, sn::reqParseNs, parseNs);
        addLat(o, sn::reqAckNs, ackNs);
        addLat(o, sn::txnCommitLatNs, txnCommitAll);
        addLat(o, sn::txnAbortLatNs, txnAbortAll);
        o["shard"] = std::move(shards);
        return JsonValue(std::move(o)).render();
    }

    /**
     * The METRICS-op body: Prometheus text exposition of the same
     * counters plus full latency histogram bucket series, labelled
     * shard="i". Latency metric names rewrite the canonical "_ns"
     * tail to "_seconds" (Prometheus base units).
     */
    std::string
    metricsTextNow() const
    {
        namespace sn = engine::statname;
        const auto rel = [](const std::atomic<std::uint64_t> &a) {
            return double(a.load(std::memory_order_relaxed));
        };
        const auto promName = [](const char *base) {
            std::string n = std::string("lp_") + base;
            if (n.size() >= 3 && n.compare(n.size() - 3, 3, "_ns") == 0)
                n.replace(n.size() - 3, 3, "_seconds");
            return n;
        };
        obs::MetricsText mt;
        mt.gauge("lp_connections", "", rel(statConns));
        mt.counter("lp_accepted", "", rel(statAccepted));
        mt.counter("lp_retries", "", rel(statRetries));
        mt.counter("lp_errors", "", rel(statErrs));
        mt.counter("lp_faults", "", rel(statFaults));
        mt.counter("lp_malformed", "", rel(statMalformed));
        for (const auto &wp : workers) {
            const auto &w = *wp;
            const std::string lab =
                "shard=\"" + std::to_string(w.index) + "\"";
            mt.counter(promName(sn::gets), lab, rel(w.statGets));
            mt.counter(promName(sn::mutations), lab, rel(w.statMuts));
            mt.counter(promName(sn::scans), lab, rel(w.statScans));
            mt.counter(promName(sn::txnCommits), lab,
                       rel(w.statTxnCommits));
            mt.counter(promName(sn::txnAborts), lab,
                       rel(w.statTxnAborts));
            mt.gauge(promName(sn::indexEntries), lab,
                     double(w.kv->indexEntries(0)));
            mt.gauge(promName(sn::indexBytes), lab,
                     double(w.kv->indexBytes(0)));
            mt.counter(promName(sn::acksReleased), lab,
                       rel(w.statAcks));
            mt.counter(promName(sn::epochsCommitted), lab,
                       rel(w.statEpochs));
            mt.counter(promName(sn::folds), lab, rel(w.statFolds));
            mt.counter(promName(sn::deadlineCommits), lab,
                       rel(w.statDeadlineCommits));
            mt.gauge(promName(sn::committedEpoch), lab,
                     rel(w.statCommittedEpoch));
            mt.gauge(promName(sn::queueDepth), lab,
                     rel(w.statQueueDepth));
            mt.counter(promName(sn::recoveryAttached), lab,
                       w.attached ? 1.0 : 0.0);
            mt.counter(promName(sn::batchesReplayed), lab,
                       double(w.report.batchesReplayed));
            mt.counter(promName(sn::entriesReplayed), lab,
                       double(w.report.entriesReplayed));
            mt.counter(promName(sn::batchesDiscarded), lab,
                       double(w.report.batchesDiscarded));
            mt.counter(promName(sn::walUndone), lab,
                       w.report.walUndone ? 1.0 : 0.0);
            const store::MediaCounters &mc = w.kv->mediaCounters(0);
            const auto mcrel = [](const std::atomic<std::uint64_t> &a) {
                return double(a.load(std::memory_order_relaxed));
            };
            mt.counter("lp_media_repaired_total", lab,
                       mcrel(mc.repaired));
            mt.counter("lp_media_unrepairable_total", lab,
                       mcrel(mc.unrepairable));
            mt.counter(promName(sn::scrubRegions), lab,
                       mcrel(mc.scrubRegions));
            mt.counter(promName(sn::scrubPasses), lab,
                       mcrel(mc.scrubPasses));
            mt.gauge(promName(sn::quarantined), lab,
                     w.kv->quarantined(0) ? 1.0 : 0.0);
            const obs::ShardObs &ob = w.kv->shardObs(0);
            mt.histogramNs(promName(sn::stageLatNs), lab, ob.stageNs);
            mt.histogramNs(promName(sn::commitLatNs), lab,
                           ob.commitNs);
            mt.histogramNs(promName(sn::foldLatNs), lab, ob.foldNs);
            mt.histogramNs(promName(sn::recoverLatNs), lab,
                           ob.recoverNs);
            mt.histogramNs(promName(sn::scanLatNs), lab, ob.scanNs);
            mt.histogramNs(promName(sn::scrubLatNs), lab, ob.scrubNs);
            mt.histogramNs(promName(sn::reqQueueNs), lab, w.queueNs);
            mt.histogramNs(promName(sn::reqCommitWaitNs), lab,
                           w.commitWaitNs);
        }
        mt.histogramNs(promName(sn::reqParseNs), "", parseNs);
        mt.histogramNs(promName(sn::reqAckNs), "", ackNs);
        // Unlabelled totals: both commit paths summed. Scrapers (and
        // lazyper_cli top's vintage gate) key on lp_txn_commits.
        std::uint64_t txnC =
            statTxnCommits.load(std::memory_order_relaxed);
        std::uint64_t txnA =
            statTxnAborts.load(std::memory_order_relaxed);
        obs::Histogram txnCommitAll, txnAbortAll;
        txnCommitAll.merge(txnCommitNs);
        txnAbortAll.merge(txnAbortNs);
        for (const auto &wp : workers) {
            txnC += wp->statTxnCommits.load(std::memory_order_relaxed);
            txnA += wp->statTxnAborts.load(std::memory_order_relaxed);
            txnCommitAll.merge(wp->txnCommitNs);
            txnAbortAll.merge(wp->txnAbortNs);
        }
        mt.counter(promName(sn::txnCommits), "", double(txnC));
        mt.counter(promName(sn::txnAborts), "", double(txnA));
        mt.histogramNs(promName(sn::txnCommitLatNs), "", txnCommitAll);
        mt.histogramNs(promName(sn::txnAbortLatNs), "", txnAbortAll);
        return mt.str();
    }

    /** Dispatch one decoded request (may close the connection). */
    void
    handleRequest(Conn &c, Request &req, bool &wantShutdown)
    {
        switch (req.op) {
          case Op::Get:
          case Op::Put:
          case Op::Del: {
            if (req.key > store::maxUserKey) {
                statErrs.fetch_add(1, std::memory_order_relaxed);
                localReply(c, statusReply(Status::Err, req.id));
                return;
            }
            // Quarantine fast path: refuse mutations to a read-only
            // shard before they queue (the worker re-checks; this
            // mirror read just saves the round trip). GETs pass.
            if (req.op != Op::Get &&
                workers[std::size_t(routeShard(
                           req.key, cfg.shards))]->kv->quarantined(0)) {
                statFaults.fetch_add(1, std::memory_order_relaxed);
                localReply(c, statusReply(Status::Fault, req.id));
                return;
            }
            if (c.inflight >= cfg.maxInflightPerConn) {
                statRetries.fetch_add(1, std::memory_order_relaxed);
                localReply(c, statusReply(Status::Retry, req.id));
                return;
            }
            ++c.inflight;
            OpItem it;
            it.kind = req.op == Op::Get   ? OpItem::Kind::Get
                      : req.op == Op::Put ? OpItem::Kind::Put
                                          : OpItem::Kind::Del;
            it.connId = c.id;
            it.reqId = req.id;
            it.key = req.key;
            it.value = req.value;
            it.tEnqNs = obs::nowNs();
            enqueue(routeShard(req.key, cfg.shards), std::move(it));
            return;
          }
          case Op::Scan: {
            // A start key beyond maxUserKey is legal (empty result),
            // unlike point ops: the range [start, ~0] simply holds no
            // user keys. The decoder already enforced the limit range.
            if (c.inflight >= cfg.maxInflightPerConn) {
                statRetries.fetch_add(1, std::memory_order_relaxed);
                localReply(c, statusReply(Status::Retry, req.id));
                return;
            }
            ++c.inflight;
            auto ctx = std::make_shared<ScanCtx>(cfg.shards, c.id,
                                                 req.id, req.limit);
            const std::uint64_t tEnq = obs::nowNs();
            for (int s = 0; s < cfg.shards; ++s) {
                OpItem it;
                it.kind = OpItem::Kind::Scan;
                it.connId = c.id;
                it.reqId = req.id;
                it.key = req.key;
                it.value = req.limit;
                it.tEnqNs = tEnq;
                it.scan = ctx;
                enqueue(s, std::move(it));
            }
            return;
          }
          case Op::Batch: {
            if (req.batch.empty()) {
                localReply(c, statusReply(Status::Ok, req.id));
                return;
            }
            for (const BatchOp &b : req.batch) {
                if (b.key > store::maxUserKey) {
                    statErrs.fetch_add(1, std::memory_order_relaxed);
                    localReply(c, statusReply(Status::Err, req.id));
                    return;
                }
            }
            // All-or-nothing quarantine check: refuse the whole
            // BATCH before enqueueing anything if any target shard
            // is read-only, so a Fault reply means no sub-op
            // applied. (A scrub racing in after this check can still
            // fault individual sub-ops; the reply is then Fault but
            // sub-ops on healthy shards have applied -- BATCH is not
            // transactional across shards.)
            for (const BatchOp &b : req.batch) {
                if (workers[std::size_t(routeShard(
                               b.key, cfg.shards))]
                        ->kv->quarantined(0)) {
                    statFaults.fetch_add(1, std::memory_order_relaxed);
                    localReply(c, statusReply(Status::Fault, req.id));
                    return;
                }
            }
            if (c.inflight >= cfg.maxInflightPerConn) {
                statRetries.fetch_add(1, std::memory_order_relaxed);
                localReply(c, statusReply(Status::Retry, req.id));
                return;
            }
            ++c.inflight;
            auto ctx = std::make_shared<BatchCtx>(
                std::uint32_t(req.batch.size()), c.id, req.id);
            const std::uint64_t tEnq = obs::nowNs();
            for (const BatchOp &b : req.batch) {
                OpItem it;
                it.kind = b.isPut ? OpItem::Kind::Put
                                  : OpItem::Kind::Del;
                it.connId = c.id;
                it.reqId = req.id;
                it.key = b.key;
                it.value = b.value;
                it.tEnqNs = tEnq;
                it.batch = ctx;
                enqueue(routeShard(b.key, cfg.shards), std::move(it));
            }
            return;
          }
          case Op::Txn: {
            for (const TxnOp &t : req.txn) {
                if (t.key > store::maxUserKey) {
                    statErrs.fetch_add(1, std::memory_order_relaxed);
                    localReply(c, statusReply(Status::Err, req.id));
                    return;
                }
            }
            // Quarantine precheck. Unlike BATCH (per-op Fault votes)
            // the worker-side backstop aborts the WHOLE transaction,
            // so this mirror read just refuses early.
            for (const TxnOp &t : req.txn) {
                if (t.kind != TxnOp::Kind::Get &&
                    workers[std::size_t(routeShard(
                               t.key, cfg.shards))]
                        ->kv->quarantined(0)) {
                    statFaults.fetch_add(1, std::memory_order_relaxed);
                    localReply(c, statusReply(Status::Fault, req.id));
                    return;
                }
            }
            if (c.inflight >= cfg.maxInflightPerConn) {
                statRetries.fetch_add(1, std::memory_order_relaxed);
                localReply(c, statusReply(Status::Retry, req.id));
                return;
            }
            ++c.inflight;
            auto ctx = std::make_shared<TxnCtx>();
            ctx->txnid = nextTxnId++;
            ctx->connId = c.id;
            ctx->reqId = req.id;
            ctx->tStartNs = obs::nowNs();
            ctx->ops = std::move(req.txn);
            ctx->readSlot.assign(ctx->ops.size(), -1);
            // Split ops by shard into parts (wire order preserved
            // within a part) and count writes for the path choice.
            std::unordered_map<int, std::size_t> partOf;
            std::size_t nWrites = 0;
            for (std::size_t i = 0; i < ctx->ops.size(); ++i) {
                const TxnOp &t = ctx->ops[i];
                const int shard = routeShard(t.key, cfg.shards);
                const auto [pit, fresh] =
                    partOf.try_emplace(shard, ctx->parts.size());
                if (fresh) {
                    ctx->parts.emplace_back();
                    ctx->parts.back().shard = shard;
                }
                TxnCtx::Part &part = ctx->parts[pit->second];
                part.ops.push_back(std::uint32_t(i));
                if (t.kind == TxnOp::Kind::Get) {
                    ctx->readSlot[i] = int(ctx->reads.size());
                    ctx->reads.emplace_back();
                } else {
                    part.hasWrites = true;
                    ++nWrites;
                }
            }
            // Lock plan per part: keys sorted ascending, mode = max
            // over the part's ops on that key (ordered map dedups).
            for (auto &part : ctx->parts) {
                std::map<std::uint64_t, txn::LockMode> modes;
                for (const auto opIdx : part.ops) {
                    const TxnOp &t = ctx->ops[opIdx];
                    txn::LockMode &m = modes[t.key];
                    if (t.kind != TxnOp::Kind::Get)
                        m = txn::LockMode::Write;
                }
                for (const auto &[key, mode] : modes) {
                    part.lockKeys.push_back(key);
                    part.lockModes.push_back(mode);
                }
            }
            // Fast path: single shard, and the write-set fits one
            // epoch of a batching backend (eager persists per op, so
            // it can never make a multi-write set crash-atomic
            // without the prepare/decision protocol).
            ctx->fastPath =
                ctx->parts.size() == 1 &&
                (nWrites == 0 ||
                 (cfg.backend != store::Backend::EagerPerOp &&
                  nWrites <= std::size_t(cfg.batchOps)));
            ctx->votesLeft.store(int(ctx->parts.size()),
                                 std::memory_order_relaxed);
            const std::uint64_t tEnq = obs::nowNs();
            for (std::size_t i = 0; i < ctx->parts.size(); ++i) {
                OpItem it;
                it.kind = OpItem::Kind::Txn;
                it.connId = c.id;
                it.reqId = req.id;
                it.tEnqNs = tEnq;
                it.txn = ctx;
                it.part = i;
                enqueue(ctx->parts[i].shard, std::move(it));
            }
            return;
          }
          case Op::Stats: {
            Response r;
            r.status = Status::Ok;
            r.id = req.id;
            r.body = statsJsonNow();
            localReply(c, std::move(r));
            return;
          }
          case Op::Metrics: {
            Response r;
            r.status = Status::Ok;
            r.id = req.id;
            r.body = metricsTextNow();
            localReply(c, std::move(r));
            return;
          }
          case Op::Shutdown:
            localReply(c, statusReply(Status::Ok, req.id));
            wantShutdown = true;
            return;
        }
        statMalformed.fetch_add(1, std::memory_order_relaxed);
        closeConn(c.id);
    }

    /** Returns false if the connection was closed. */
    void
    readable(std::uint64_t connId, bool &wantShutdown)
    {
        auto it = conns.find(connId);
        if (it == conns.end())
            return;
        Conn &c = it->second;
        std::uint8_t buf[64 * 1024];
        for (;;) {
            const ssize_t n = ::read(c.fd, buf, sizeof(buf));
            if (n > 0) {
                c.in.insert(c.in.end(), buf, buf + n);
                if (n == ssize_t(sizeof(buf)))
                    continue;
                break;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            closeConn(connId);  // EOF or hard error
            return;
        }
        std::size_t at = 0;
        while (conns.count(connId)) {
            Request req;
            std::size_t used = 0;
            const std::uint64_t t0 = obs::nowNs();
            const Decode d = decodeRequest(c.in.data() + at,
                                           c.in.size() - at, used, req);
            if (d == Decode::NeedMore)
                break;
            if (d == Decode::Malformed) {
                statMalformed.fetch_add(1, std::memory_order_relaxed);
                closeConn(connId);
                return;
            }
            parseNs.record(obs::nowNs() - t0);
            at += used;
            handleRequest(c, req, wantShutdown);
        }
        if (conns.count(connId) && at > 0)
            c.in.erase(c.in.begin(),
                       c.in.begin() + std::ptrdiff_t(at));
    }

    void
    acceptPending()
    {
        for (;;) {
            const int fd =
                ::accept4(listenFd, nullptr, nullptr, SOCK_NONBLOCK);
            if (fd < 0)
                return;
            if (int(conns.size()) >= cfg.maxConns) {
                ::close(fd);
                continue;
            }
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            Conn c;
            c.fd = fd;
            c.id = nextConnId++;
            c.tOpenNs = obs::nowNs();
            epollAdd(fd, c.id, EPOLLIN);
            conns.emplace(c.id, std::move(c));
            statAccepted.fetch_add(1, std::memory_order_relaxed);
            statConns.store(conns.size(), std::memory_order_relaxed);
        }
    }

    void
    drainReplies()
    {
        std::vector<ReplyMsg> local;
        {
            std::lock_guard<std::mutex> g(replyMu);
            local.swap(replies);
        }
        std::vector<std::uint64_t> touched;
        for (ReplyMsg &m : local) {
            auto it = conns.find(m.connId);
            if (it == conns.end())
                continue;  // client left before its reply
            Conn &c = it->second;
            if (c.inflight > 0)
                --c.inflight;
            encodeResponse(m.resp, c.out);
            ackNs.record(obs::nowNs() - m.tPostNs);
            touched.push_back(m.connId);
        }
        for (const std::uint64_t id : touched) {
            auto it = conns.find(id);
            if (it != conns.end() && !flushConn(it->second))
                closeConn(id);
        }
    }

    /** Collect participant votes; the last vote decides the txn. */
    void
    drainTxnEvents()
    {
        std::vector<TxnEvent> local;
        {
            std::lock_guard<std::mutex> g(txnMu);
            local.swap(txnEvents);
        }
        for (TxnEvent &ev : local) {
            if (ev.ctx->votesLeft.fetch_sub(
                    1, std::memory_order_acq_rel) != 1)
                continue;
            finishTxn(ev.ctx);
        }
    }

    /**
     * Every participant voted (general path only; the fast path never
     * posts events). Unanimous PREPARE commits; any Aborted vote
     * aborts. Either way every part gets a follow-up op -- read-only
     * parts included, since they hold locks to release.
     */
    void
    finishTxn(const std::shared_ptr<TxnCtx> &ctx)
    {
        const std::uint64_t tEnq = obs::nowNs();
        if (ctx->abortedParts.load(std::memory_order_acquire) > 0) {
            for (std::size_t i = 0; i < ctx->parts.size(); ++i) {
                if (!ctx->parts[i].prepared)
                    continue;
                OpItem it;
                it.kind = OpItem::Kind::TxnAbort;
                it.tEnqNs = tEnq;
                it.txn = ctx;
                it.part = i;
                enqueue(ctx->parts[i].shard, std::move(it));
            }
            const bool faulted =
                ctx->faulted.load(std::memory_order_acquire);
            if (faulted)
                statFaults.fetch_add(1, std::memory_order_relaxed);
            statTxnAborts.fetch_add(1, std::memory_order_relaxed);
            txnAbortNs.record(obs::nowNs() - ctx->tStartNs);
            postReply(ctx->connId,
                      statusReply(faulted ? Status::Fault
                                          : Status::Aborted,
                                  ctx->reqId));
            return;
        }
        bool anyWrites = false;
        for (const auto &part : ctx->parts)
            if (!part.writes.empty())
                anyWrites = true;
        // The decision append (store + flush + fence) IS the commit:
        // with every vote durable, the record makes the outcome
        // recoverable, so the client reply goes out now and the
        // applies stay lazy.
        if (anyWrites)
            dlog->append(txnEnv, ctx->txnid);
        Response r;
        r.status = Status::Ok;
        r.id = ctx->reqId;
        r.body = encodeTxnReadsBody(ctx->reads);
        postReply(ctx->connId, std::move(r));
        statTxnCommits.fetch_add(1, std::memory_order_relaxed);
        txnCommitNs.record(obs::nowNs() - ctx->tStartNs);
        for (std::size_t i = 0; i < ctx->parts.size(); ++i) {
            OpItem it;
            it.kind = OpItem::Kind::TxnApply;
            it.tEnqNs = tEnq;
            it.txn = ctx;
            it.part = i;
            enqueue(ctx->parts[i].shard, std::move(it));
        }
    }

    void
    acceptorMain()
    {
        bool wantShutdown = false;
        epoll_event evs[64];
        while (!wantShutdown) {
            const int n = ::epoll_wait(epfd, evs, 64, -1);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                break;
            }
            for (int i = 0; i < n; ++i) {
                const std::uint64_t ud = evs[i].data.u64;
                if (ud == udListen) {
                    acceptPending();
                } else if (ud == udWake) {
                    eventfdDrain(wakeFd);
                    drainTxnEvents();
                    drainReplies();
                } else if (ud == udStop) {
                    eventfdDrain(stopFd);
                    wantShutdown = true;
                } else {
                    if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
                        closeConn(ud);
                        continue;
                    }
                    if (evs[i].events & EPOLLIN)
                        readable(ud, wantShutdown);
                    if (evs[i].events & EPOLLOUT) {
                        auto it = conns.find(ud);
                        if (it != conns.end() &&
                            !flushConn(it->second))
                            closeConn(ud);
                    }
                }
            }
        }
        shutdownSequence();
    }

    /**
     * Graceful shutdown: stop accepting, drain the workers (they
     * checkpoint their shards), keep delivering replies until every
     * worker exited and the reply queue is dry, then flush and close.
     */
    void
    shutdownSequence()
    {
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, listenFd, nullptr);
        ::close(listenFd);
        listenFd = -1;

        for (auto &wp : workers) {
            {
                std::lock_guard<std::mutex> g(wp->mu);
                wp->stopFlag = true;
            }
            wp->cv.notify_one();
        }

        // Bounded drain loop: replies may still arrive while workers
        // commit their final batches.
        const auto deadline = Clock::now() + std::chrono::seconds(10);
        epoll_event evs[64];
        for (;;) {
            drainTxnEvents();
            drainReplies();
            const bool allOut =
                workersExited.load(std::memory_order_acquire) ==
                int(workers.size());
            bool queued = false;
            {
                std::lock_guard<std::mutex> g(replyMu);
                queued = !replies.empty();
            }
            bool unflushed = false;
            for (auto &[id, c] : conns)
                if (c.outAt < c.out.size())
                    unflushed = true;
            if ((allOut && !queued && !unflushed) ||
                Clock::now() >= deadline)
                break;
            const int n = ::epoll_wait(epfd, evs, 64, 50);
            for (int i = 0; i < n; ++i) {
                const std::uint64_t ud = evs[i].data.u64;
                if (ud == udWake) {
                    eventfdDrain(wakeFd);
                } else if (ud == udStop) {
                    eventfdDrain(stopFd);
                } else if (ud >= firstConnId) {
                    auto it = conns.find(ud);
                    if (it == conns.end())
                        continue;
                    if (evs[i].events & (EPOLLHUP | EPOLLERR))
                        closeConn(ud);
                    else if (evs[i].events & EPOLLOUT)
                        if (!flushConn(it->second))
                            closeConn(ud);
                }
            }
        }

        for (auto &wp : workers)
            if (wp->th.joinable())
                wp->th.join();
        while (!conns.empty())
            closeConn(conns.begin()->first);
        // Producers have quiesced (workers joined, acceptor is this
        // thread): safe to drain the rings and write the trace.
        if (trace) {
            if (!trace->writeChromeTrace(cfg.traceOut))
                warn("lp::server could not write trace file " +
                     cfg.traceOut);
            else if (!cfg.quiet)
                inform("lp::server wrote trace " + cfg.traceOut +
                       " (" + std::to_string(trace->totalDropped()) +
                       " events dropped)");
        }
        finished.store(true, std::memory_order_release);
    }
    /// @}

    /**
     * Map (or create) the coordinator's decision log and scan it.
     * Runs on the start() thread before the acceptor spawns; the
     * thread-creation fence publishes dlog to the acceptor, and the
     * readiness latch orders the scan before any worker's TxnRecover.
     */
    void
    openTxnLog()
    {
        const std::string path = cfg.dataDir + "/txnlog.lpdb";
        struct stat st{};
        const bool attach =
            ::stat(path.c_str(), &st) == 0 && st.st_size > 0;
        txnArena = std::make_unique<pmem::PersistentArena>(
            txn::decisionLogBytes(cfg.txnDecisionEntries), path);
        dlog = std::make_unique<txn::DecisionLog<kernels::NativeEnv>>(
            *txnArena, cfg.txnDecisionEntries, attach);
        if (!attach)
            txnArena->persistAll();
        dlogMaxTxnId = dlog->scan(txnEnv);
    }

    void
    writePortFile()
    {
        const std::string path = cfg.dataDir + "/PORT";
        const std::string tmp = path + ".tmp";
        FILE *f = std::fopen(tmp.c_str(), "w");
        LP_ASSERT(f != nullptr, "cannot write PORT file");
        std::fprintf(f, "%d\n", port_);
        std::fclose(f);
        LP_ASSERT(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "cannot publish PORT file");
    }

    void
    start()
    {
        LP_ASSERT(!started, "Server::start() called twice");
        LP_ASSERT(cfg.shards >= 1, "need at least one shard worker");
        ::mkdir(cfg.dataDir.c_str(), 0755);  // EEXIST is fine

        wakeFd = ::eventfd(0, EFD_NONBLOCK);
        stopFd = ::eventfd(0, EFD_NONBLOCK);
        epfd = ::epoll_create1(0);
        LP_ASSERT(wakeFd >= 0 && stopFd >= 0 && epfd >= 0,
                  "eventfd/epoll setup failed");

        // Trace rings must exist before worker threads spawn so the
        // pointers are published by the thread-creation fence.
        if (!cfg.traceOut.empty()) {
            trace = std::make_unique<obs::TraceCollector>();
            acceptRing = trace->ring("acceptor", 1000,
                                     cfg.traceRingCapacity);
        }

        // Recovery happens on the worker threads, before the port
        // binds: no request can ever observe pre-recovery state.
        workers.reserve(std::size_t(cfg.shards));
        for (int i = 0; i < cfg.shards; ++i) {
            auto w = std::make_unique<Worker>();
            w->index = i;
            w->srv = this;
            if (trace)
                w->ring = trace->ring("shard-" + std::to_string(i),
                                      std::uint32_t(i),
                                      cfg.traceRingCapacity);
            workers.push_back(std::move(w));
        }
        for (auto &wp : workers) {
            Worker *w = wp.get();
            w->th = std::thread([this, w] { workerMain(*w); });
        }
        {
            std::unique_lock<std::mutex> lk(readyMu);
            readyCv.wait(lk, [this] {
                return readyCount == int(workers.size());
            });
        }
        for (const auto &wp : workers) {
            if (!wp->attached)
                continue;
            ++recov.shardsAttached;
            recov.batchesReplayed += wp->report.batchesReplayed;
            recov.entriesReplayed += wp->report.entriesReplayed;
            recov.batchesDiscarded += wp->report.batchesDiscarded;
            recov.walUndone += wp->report.walUndone ? 1 : 0;
            recov.mediaRepaired += wp->report.mediaRepaired;
            recov.mediaUnrepairable += wp->report.mediaUnrepairable;
        }

        // Transaction recovery, phase 2: the decision index must
        // exist before any shard replays its prepare table, and both
        // must finish before the port binds -- a request must never
        // observe a committed-but-unapplied transaction write-set.
        openTxnLog();
        for (auto &wp : workers) {
            OpItem it;
            it.kind = OpItem::Kind::TxnRecover;
            it.tEnqNs = obs::nowNs();
            enqueue(wp->index, std::move(it));
        }
        {
            std::unique_lock<std::mutex> lk(readyMu);
            readyCv.wait(lk, [this] {
                return txnReadyCount == int(workers.size());
            });
        }
        std::uint64_t maxTxnSeen = dlogMaxTxnId;
        for (const auto &wp : workers) {
            recov.txnRolledForward += wp->txnReport.rolledForward;
            recov.txnRolledBack += wp->txnReport.rolledBack;
            recov.txnSkipped += wp->txnReport.skipped;
            maxTxnSeen = std::max(maxTxnSeen, wp->txnReport.maxTxnId);
        }
        nextTxnId = maxTxnSeen + 1;

        listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        LP_ASSERT(listenFd >= 0, "socket() failed");
        const int one = 1;
        ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(std::uint16_t(cfg.port));
        LP_ASSERT(::inet_pton(AF_INET, cfg.host.c_str(),
                              &addr.sin_addr) == 1,
                  "bad listen host " + cfg.host);
        if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0)
            fatal("lp::server cannot bind " + cfg.host + ":" +
                  std::to_string(cfg.port) + ": " +
                  std::strerror(errno));
        LP_ASSERT(::listen(listenFd, 128) == 0, "listen() failed");
        sockaddr_in bound{};
        socklen_t blen = sizeof(bound);
        LP_ASSERT(::getsockname(listenFd,
                                reinterpret_cast<sockaddr *>(&bound),
                                &blen) == 0,
                  "getsockname() failed");
        port_ = int(ntohs(bound.sin_port));
        setNonBlocking(listenFd);
        writePortFile();

        epollAdd(listenFd, udListen, EPOLLIN);
        epollAdd(wakeFd, udWake, EPOLLIN);
        epollAdd(stopFd, udStop, EPOLLIN);

        if (!cfg.quiet) {
            inform("lp::server listening on " + cfg.host + ":" +
                   std::to_string(port_) + " (" +
                   store::backendName(cfg.backend) + ", " +
                   std::to_string(cfg.shards) + " shards, " +
                   std::to_string(recov.shardsAttached) +
                   " attached, " +
                   std::to_string(recov.batchesReplayed) +
                   " batches replayed)");
        }
        acceptorTh = std::thread([this] { acceptorMain(); });
        started = true;
    }

    void
    join()
    {
        if (acceptorTh.joinable())
            acceptorTh.join();
        for (auto &wp : workers)
            if (wp->th.joinable())
                wp->th.join();
        if (!cfg.quiet && started && !shutdownInformed) {
            shutdownInformed = true;
            inform("lp::server on port " + std::to_string(port_) +
                   " shut down cleanly");
        }
    }

    ~Impl()
    {
        if (started && !finished.load(std::memory_order_acquire))
            eventfdSignal(stopFd);
        join();
        if (epfd >= 0)
            ::close(epfd);
        if (wakeFd >= 0)
            ::close(wakeFd);
        if (stopFd >= 0)
            ::close(stopFd);
        if (listenFd >= 0)
            ::close(listenFd);
    }
};

Server::Server(ServerConfig cfg)
    : impl(std::make_unique<Impl>(std::move(cfg)))
{
}

Server::~Server() = default;

void
Server::start()
{
    impl->start();
}

void
Server::requestStop()
{
    eventfdSignal(impl->stopFd);
}

void
Server::join()
{
    impl->join();
}

void
Server::stop()
{
    requestStop();
    join();
}

int
Server::port() const
{
    return impl->port_;
}

const ServerRecovery &
Server::recovery() const
{
    return impl->recov;
}

void
Server::installSignalHandlers()
{
    signalStopFd.store(impl->stopFd, std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

std::string
Server::statsJson() const
{
    return impl->statsJsonNow();
}

std::string
Server::metricsText() const
{
    return impl->metricsTextNow();
}

} // namespace lp::server
