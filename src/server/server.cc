/**
 * @file
 * Server lifecycle and the acceptor's datapath, rebuilt on lp::net:
 * one edge-triggered EventLoop drives accept, per-connection
 * FrameCursor decoding, and gathered-writev reply flushing through
 * net::Connection. Worker, transaction, and stats logic live in
 * their own translation units (see server_impl.hh).
 */

#include "server/server_impl.hh"

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "base/logging.hh"
#include "obs/metrics.hh"

namespace lp::server
{

namespace
{

std::atomic<int> signalStopFd{-1};

void
onStopSignal(int)
{
    const int fd = signalStopFd.load(std::memory_order_relaxed);
    if (fd < 0)
        return;
    // The only async-signal-safe work we do: one eventfd write.
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

} // namespace

void
Server::Impl::postReply(std::uint64_t connId, Response r)
{
    bool wasEmpty;
    {
        std::lock_guard<std::mutex> g(replyMu);
        wasEmpty = replies.empty();
        replies.push_back(ReplyMsg{connId, obs::nowNs(), std::move(r)});
    }
    // Ring the acceptor only on the empty->nonempty edge: one wake
    // drains the whole queue, so followers piggyback for free.
    if (wasEmpty)
        wakeFd.signal();
}

void
Server::Impl::closeConn(std::uint64_t id)
{
    auto it = conns.find(id);
    if (it == conns.end())
        return;
    Conn &c = *it->second;
    if (acceptRing && c.tOpenNs)
        acceptRing->push({"conn", acceptRing->tid(), c.tOpenNs,
                          obs::nowNs() - c.tOpenNs, id});
    loop.del(c.nc.fd());
    conns.erase(it);  // ~Connection closes the fd, releases outbuf
    statConns.store(conns.size(), std::memory_order_relaxed);
}

/**
 * Flush @p c's queued replies, keep its EPOLLOUT interest in sync,
 * and lift the backpressure read-pause once the outbuf drains below
 * the low watermark. Returns false if the connection died (already
 * closed here). Callers that observe the pause lifting must re-run
 * readable(): the edge-triggered loop never re-reports bytes that
 * arrived during the pause.
 */
bool
Server::Impl::flushDatapath(Conn &c)
{
    const auto fr = c.nc.flush();
    if (fr == net::Connection::Flush::Closed) {
        closeConn(c.id);
        return false;
    }
    const bool ww = (fr == net::Connection::Flush::Blocked);
    if (ww != c.wantWrite &&
        loop.mod(c.nc.fd(), c.id,
                 net::kReadable | net::kEdge |
                     (ww ? net::kWritable : 0u)))
        c.wantWrite = ww;
    if (c.readPaused &&
        c.nc.outBytes() <= std::uint64_t(cfg.outbufLimitBytes) / 2)
        c.readPaused = false;
    return true;
}

/** Queue an acceptor-local reply; readable()'s final flush sends it. */
void
Server::Impl::localReply(Conn &c, Response r)
{
    encodeResponse(r, c.nc.frameBuf());
    c.nc.queueFrame();
}

/** Dispatch one decoded request (may close the connection). */
void
Server::Impl::handleRequest(Conn &c, Request &req)
{
    // Every worker-routed request gets a trace id derived from what
    // is already on the wire (connection id + request id), so the
    // same id is re-derivable at every hop -- including the ack path,
    // which only sees the reply -- without widening any queue entry
    // beyond one word. It threads parse/queue/stage/commit-wait/ack
    // spans (and the epoch commit that made the op durable) into one
    // flow arc in the Chrome trace, and feeds latency exemplars.
    const std::uint64_t traceId = obs::traceIdOf(c.id, req.id);
    switch (req.op) {
      case Op::Get:
      case Op::Put:
      case Op::Del: {
        if (req.key > store::maxUserKey) {
            statErrs.fetch_add(1, std::memory_order_relaxed);
            localReply(c, statusReply(Status::Err, req.id));
            return;
        }
        // Quarantine fast path: refuse mutations to a read-only
        // shard before they queue (the worker re-checks; this
        // mirror read just saves the round trip). GETs pass.
        if (req.op != Op::Get &&
            workers[std::size_t(routeShard(
                       req.key, cfg.shards))]->kv->quarantined(0)) {
            statFaults.fetch_add(1, std::memory_order_relaxed);
            localReply(c, statusReply(Status::Fault, req.id));
            return;
        }
        if (c.inflight >= cfg.maxInflightPerConn) {
            statRetries.fetch_add(1, std::memory_order_relaxed);
            localReply(c, statusReply(Status::Retry, req.id));
            return;
        }
        ++c.inflight;
        OpItem it;
        it.kind = req.op == Op::Get   ? OpItem::Kind::Get
                  : req.op == Op::Put ? OpItem::Kind::Put
                                      : OpItem::Kind::Del;
        it.connId = c.id;
        it.reqId = req.id;
        it.key = req.key;
        it.value = req.value;
        it.tEnqNs = obs::nowNs();
        it.traceId = traceId;
        enqueue(routeShard(req.key, cfg.shards), std::move(it));
        return;
      }
      case Op::Scan: {
        // A start key beyond maxUserKey is legal (empty result),
        // unlike point ops: the range [start, ~0] simply holds no
        // user keys. The decoder already enforced the limit range.
        if (c.inflight >= cfg.maxInflightPerConn) {
            statRetries.fetch_add(1, std::memory_order_relaxed);
            localReply(c, statusReply(Status::Retry, req.id));
            return;
        }
        ++c.inflight;
        auto ctx = std::make_shared<ScanCtx>(cfg.shards, c.id,
                                             req.id, req.limit,
                                             traceId);
        const std::uint64_t tEnq = obs::nowNs();
        for (int s = 0; s < cfg.shards; ++s) {
            OpItem it;
            it.kind = OpItem::Kind::Scan;
            it.connId = c.id;
            it.reqId = req.id;
            it.key = req.key;
            it.value = req.limit;
            it.tEnqNs = tEnq;
            it.traceId = traceId;
            it.scan = ctx;
            enqueue(s, std::move(it));
        }
        return;
      }
      case Op::Batch: {
        if (req.batch.empty()) {
            localReply(c, statusReply(Status::Ok, req.id));
            return;
        }
        for (const BatchOp &b : req.batch) {
            if (b.key > store::maxUserKey) {
                statErrs.fetch_add(1, std::memory_order_relaxed);
                localReply(c, statusReply(Status::Err, req.id));
                return;
            }
        }
        // All-or-nothing quarantine check: refuse the whole
        // BATCH before enqueueing anything if any target shard
        // is read-only, so a Fault reply means no sub-op
        // applied. (A scrub racing in after this check can still
        // fault individual sub-ops; the reply is then Fault but
        // sub-ops on healthy shards have applied -- BATCH is not
        // transactional across shards.)
        for (const BatchOp &b : req.batch) {
            if (workers[std::size_t(routeShard(b.key, cfg.shards))]
                    ->kv->quarantined(0)) {
                statFaults.fetch_add(1, std::memory_order_relaxed);
                localReply(c, statusReply(Status::Fault, req.id));
                return;
            }
        }
        if (c.inflight >= cfg.maxInflightPerConn) {
            statRetries.fetch_add(1, std::memory_order_relaxed);
            localReply(c, statusReply(Status::Retry, req.id));
            return;
        }
        ++c.inflight;
        auto ctx = std::make_shared<BatchCtx>(
            std::uint32_t(req.batch.size()), c.id, req.id, traceId);
        const std::uint64_t tEnq = obs::nowNs();
        for (const BatchOp &b : req.batch) {
            OpItem it;
            it.kind = b.isPut ? OpItem::Kind::Put
                              : OpItem::Kind::Del;
            it.connId = c.id;
            it.reqId = req.id;
            it.key = b.key;
            it.value = b.value;
            it.tEnqNs = tEnq;
            it.traceId = traceId;
            it.batch = ctx;
            enqueue(routeShard(b.key, cfg.shards), std::move(it));
        }
        return;
      }
      case Op::Txn:
        routeTxn(c, req);  // coordinator entry (server_txn.cc)
        return;
      case Op::Stats: {
        Response r;
        r.status = Status::Ok;
        r.id = req.id;
        r.body = statsJsonNow();
        localReply(c, std::move(r));
        return;
      }
      case Op::Metrics: {
        Response r;
        r.status = Status::Ok;
        r.id = req.id;
        r.body = metricsTextNow();
        localReply(c, std::move(r));
        return;
      }
      case Op::Shutdown:
        localReply(c, statusReply(Status::Ok, req.id));
        wantShutdown_ = true;
        return;
    }
    statMalformed.fetch_add(1, std::memory_order_relaxed);
    closeConn(c.id);
}

void
Server::Impl::readable(std::uint64_t connId)
{
    auto it = conns.find(connId);
    if (it == conns.end())
        return;
    Conn &c = *it->second;
    bool drained = false;
    while (!drained) {
        if (c.readPaused) {
            // Backpressure: flushing is the only way forward. If
            // the socket still won't take the outbuf, park until
            // EPOLLOUT re-enters through writable().
            if (!flushDatapath(c))
                return;
            if (c.readPaused)
                return;
        }
        const auto io = c.nc.fill(kReadBudget);
        if (io == net::Connection::Io::Closed) {
            closeConn(connId);
            return;
        }
        drained = (io == net::Connection::Io::Drained);
        // Decode every complete frame buffered so far.
        for (;;) {
            net::FrameCursor &in = c.nc.in();
            Request req;
            std::size_t used = 0;
            const std::uint64_t t0 = obs::nowNs();
            const Decode d =
                decodeRequest(in.data(), in.size(), used, req);
            if (d == Decode::NeedMore)
                break;
            if (d == Decode::Malformed) {
                statMalformed.fetch_add(1, std::memory_order_relaxed);
                closeConn(connId);
                return;
            }
            parseNs.record(obs::nowNs() - t0);
            // Parse span: bytes on the wire (this fill) -> decoded.
            // Its flow id opens the request's trace arc; the queue,
            // stage, epoch-commit, and ack spans continue it.
            obs::traceSpanFrom(
                acceptRing, "parse",
                c.nc.lastFillNs() ? c.nc.lastFillNs() : t0, req.id,
                obs::traceIdOf(c.id, req.id));
            in.consume(used);
            handleRequest(c, req);
            if (conns.find(connId) == conns.end())
                return;  // handleRequest closed it
            if (c.nc.outBytes() >=
                std::uint64_t(cfg.outbufLimitBytes)) {
                c.readPaused = true;
                drained = false;  // buffered frames may remain
                break;
            }
        }
    }
    flushDatapath(c);
}

/** EPOLLOUT: resume the flush, then the decode loop if it unparked. */
void
Server::Impl::writable(std::uint64_t connId)
{
    auto it = conns.find(connId);
    if (it == conns.end())
        return;
    Conn &c = *it->second;
    const bool paused = c.readPaused;
    if (!flushDatapath(c))
        return;
    if (paused && !c.readPaused)
        readable(connId);
}

void
Server::Impl::acceptPending()
{
    for (;;) {
        const int fd =
            ::accept4(listenFd, nullptr, nullptr, SOCK_NONBLOCK);
        if (fd < 0)
            return;
        if (int(conns.size()) >= cfg.maxConns) {
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        auto c = std::make_unique<Conn>(fd, &netStats);
        c->id = nextConnId++;
        c->tOpenNs = obs::nowNs();
        loop.add(fd, c->id, net::kReadable | net::kEdge);
        conns.emplace(c->id, std::move(c));
        statAccepted.fetch_add(1, std::memory_order_relaxed);
        statConns.store(conns.size(), std::memory_order_relaxed);
    }
}

void
Server::Impl::drainReplies()
{
    std::vector<ReplyMsg> local;
    {
        std::lock_guard<std::mutex> g(replyMu);
        local.swap(replies);
    }
    // Encode everything first, flush each touched connection once:
    // a burst of worker replies to one connection becomes a single
    // gathered writev instead of one blocking write per frame.
    std::vector<std::uint64_t> touched;
    for (ReplyMsg &m : local) {
        auto it = conns.find(m.connId);
        if (it == conns.end())
            continue;  // client left before its reply
        Conn &c = *it->second;
        if (c.inflight > 0)
            --c.inflight;
        encodeResponse(m.resp, c.nc.frameBuf());
        c.nc.queueFrame();
        const std::uint64_t ackDt = obs::nowNs() - m.tPostNs;
        ackNs.record(ackDt);
        // Ack span: the trace id is re-derived from the reply's own
        // (connId, reqId) -- the whole point of deriving ids from
        // wire-visible fields -- so the ack leg joins the request's
        // flow arc without the ReplyMsg carrying anything extra.
        const std::uint64_t ackTrace =
            obs::traceIdOf(m.connId, m.resp.id);
        obs::traceSpanFrom(acceptRing, "ack", m.tPostNs,
                           m.resp.id, ackTrace);
        ackNs.recordExemplar(ackDt, ackTrace);
        if (touched.empty() || touched.back() != m.connId)
            touched.push_back(m.connId);
    }
    for (const std::uint64_t id : touched) {
        auto it = conns.find(id);
        if (it == conns.end())
            continue;
        Conn &c = *it->second;
        const bool paused = c.readPaused;
        if (!flushDatapath(c))
            continue;
        if (paused && !c.readPaused)
            readable(id);
    }
}

void
Server::Impl::acceptorMain()
{
    while (!wantShutdown_) {
        const int n = loop.wait(-1);
        for (int i = 0; i < n; ++i) {
            const std::uint64_t ud = loop.data(i);
            if (ud == udListen) {
                acceptPending();
            } else if (ud == udWake) {
                wakeFd.drain();
                drainTxnEvents();
                drainReplies();
            } else if (ud == udStop) {
                stopFd.drain();
                wantShutdown_ = true;
            } else {
                const std::uint32_t ev = loop.events(i);
                if (ev & net::kHangup) {
                    closeConn(ud);
                    continue;
                }
                if (ev & net::kReadable)
                    readable(ud);
                if (ev & net::kWritable)
                    writable(ud);
            }
        }
    }
    shutdownSequence();
}

/**
 * Graceful shutdown: stop accepting, drain the workers (they
 * checkpoint their shards), keep delivering replies until every
 * worker exited and the reply queue is dry, then flush and close.
 */
void
Server::Impl::shutdownSequence()
{
    loop.del(listenFd);
    ::close(listenFd);
    listenFd = -1;

    for (auto &wp : workers) {
        {
            std::lock_guard<std::mutex> g(wp->mu);
            wp->stopFlag = true;
        }
        wp->cv.notify_one();
    }

    // Bounded drain loop: replies may still arrive while workers
    // commit their final batches.
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    for (;;) {
        drainTxnEvents();
        drainReplies();
        const bool allOut =
            workersExited.load(std::memory_order_acquire) ==
            int(workers.size());
        bool queued = false;
        {
            std::lock_guard<std::mutex> g(replyMu);
            queued = !replies.empty();
        }
        bool unflushed = false;
        for (auto &[id, c] : conns)
            if (c->nc.wantWrite())
                unflushed = true;
        if ((allOut && !queued && !unflushed) ||
            Clock::now() >= deadline)
            break;
        const int n = loop.wait(50);
        for (int i = 0; i < n; ++i) {
            const std::uint64_t ud = loop.data(i);
            if (ud == udWake) {
                wakeFd.drain();
            } else if (ud == udStop) {
                stopFd.drain();
            } else if (ud >= firstConnId) {
                auto it = conns.find(ud);
                if (it == conns.end())
                    continue;
                if (loop.events(i) & net::kHangup)
                    closeConn(ud);
                else if (loop.events(i) & net::kWritable)
                    flushDatapath(*it->second);
            }
        }
    }

    for (auto &wp : workers)
        if (wp->th.joinable())
            wp->th.join();
    while (!conns.empty())
        closeConn(conns.begin()->first);
    // Producers have quiesced (workers joined, acceptor is this
    // thread): safe to drain the rings and write the trace.
    if (trace && !cfg.traceOut.empty()) {
        if (!trace->writeChromeTrace(cfg.traceOut))
            warn("lp::server could not write trace file " +
                 cfg.traceOut);
        else if (!cfg.quiet)
            inform("lp::server wrote trace " + cfg.traceOut +
                   " (" + std::to_string(trace->totalDropped()) +
                   " events dropped)");
    }
    finished.store(true, std::memory_order_release);
}

void
Server::Impl::writePortFile()
{
    const std::string path = cfg.dataDir + "/PORT";
    const std::string tmp = path + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "w");
    LP_ASSERT(f != nullptr, "cannot write PORT file");
    std::fprintf(f, "%d\n", port_);
    std::fclose(f);
    LP_ASSERT(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot publish PORT file");
}

void
Server::Impl::start()
{
    LP_ASSERT(!started, "Server::start() called twice");
    LP_ASSERT(cfg.shards >= 1, "need at least one shard worker");
    ::mkdir(cfg.dataDir.c_str(), 0755);  // EEXIST is fine

    // Trace rings must exist before worker threads spawn so the
    // pointers are published by the thread-creation fence. The
    // collector is ALWAYS created now, not only under cfg.traceOut:
    // the rings feed each worker's crash-persistent flight recorder
    // (teed in openStore) and the lp_trace_drops_total counters, and
    // recording is allocation-free relaxed stores. The Chrome trace
    // JSON itself is still written only when traceOut names a file.
    trace = std::make_unique<obs::TraceCollector>();
    acceptRing = trace->ring("acceptor", 1000,
                             cfg.traceRingCapacity);

    // Recovery happens on the worker threads, before the port
    // binds: no request can ever observe pre-recovery state.
    workers.reserve(std::size_t(cfg.shards));
    for (int i = 0; i < cfg.shards; ++i) {
        auto w = std::make_unique<Worker>();
        w->index = i;
        w->srv = this;
        w->ring = trace->ring("shard-" + std::to_string(i),
                              std::uint32_t(i),
                              cfg.traceRingCapacity);
        workers.push_back(std::move(w));
    }
    for (auto &wp : workers) {
        Worker *w = wp.get();
        w->th = std::thread([this, w] { workerMain(*w); });
    }
    {
        std::unique_lock<std::mutex> lk(readyMu);
        readyCv.wait(lk, [this] {
            return readyCount == int(workers.size());
        });
    }
    for (const auto &wp : workers) {
        if (!wp->attached)
            continue;
        ++recov.shardsAttached;
        recov.batchesReplayed += wp->report.batchesReplayed;
        recov.entriesReplayed += wp->report.entriesReplayed;
        recov.batchesDiscarded += wp->report.batchesDiscarded;
        recov.walUndone += wp->report.walUndone ? 1 : 0;
        recov.mediaRepaired += wp->report.mediaRepaired;
        recov.mediaUnrepairable += wp->report.mediaUnrepairable;
    }

    // Transaction recovery, phase 2: the decision index must
    // exist before any shard replays its prepare table, and both
    // must finish before the port binds -- a request must never
    // observe a committed-but-unapplied transaction write-set.
    openTxnLog();
    for (auto &wp : workers) {
        OpItem it;
        it.kind = OpItem::Kind::TxnRecover;
        it.tEnqNs = obs::nowNs();
        enqueue(wp->index, std::move(it));
    }
    {
        std::unique_lock<std::mutex> lk(readyMu);
        readyCv.wait(lk, [this] {
            return txnReadyCount == int(workers.size());
        });
    }
    std::uint64_t maxTxnSeen = dlogMaxTxnId;
    for (const auto &wp : workers) {
        recov.txnRolledForward += wp->txnReport.rolledForward;
        recov.txnRolledBack += wp->txnReport.rolledBack;
        recov.txnSkipped += wp->txnReport.skipped;
        maxTxnSeen = std::max(maxTxnSeen, wp->txnReport.maxTxnId);
    }
    nextTxnId = maxTxnSeen + 1;

    listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    LP_ASSERT(listenFd >= 0, "socket() failed");
    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(std::uint16_t(cfg.port));
    LP_ASSERT(::inet_pton(AF_INET, cfg.host.c_str(),
                          &addr.sin_addr) == 1,
              "bad listen host " + cfg.host);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("lp::server cannot bind " + cfg.host + ":" +
              std::to_string(cfg.port) + ": " +
              std::strerror(errno));
    LP_ASSERT(::listen(listenFd, 1024) == 0, "listen() failed");
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    LP_ASSERT(::getsockname(listenFd,
                            reinterpret_cast<sockaddr *>(&bound),
                            &blen) == 0,
              "getsockname() failed");
    port_ = int(ntohs(bound.sin_port));
    net::setNonBlocking(listenFd);
    writePortFile();

    loop.add(listenFd, udListen, net::kReadable);
    loop.add(wakeFd.fd(), udWake, net::kReadable);
    loop.add(stopFd.fd(), udStop, net::kReadable);

    if (!cfg.quiet) {
        inform("lp::server listening on " + cfg.host + ":" +
               std::to_string(port_) + " (" +
               store::backendName(cfg.backend) + ", " +
               std::to_string(cfg.shards) + " shards, " +
               std::to_string(recov.shardsAttached) +
               " attached, " +
               std::to_string(recov.batchesReplayed) +
               " batches replayed)");
    }
    acceptorTh = std::thread([this] { acceptorMain(); });
    started = true;
}

void
Server::Impl::join()
{
    if (acceptorTh.joinable())
        acceptorTh.join();
    for (auto &wp : workers)
        if (wp->th.joinable())
            wp->th.join();
    if (!cfg.quiet && started && !shutdownInformed) {
        shutdownInformed = true;
        inform("lp::server on port " + std::to_string(port_) +
               " shut down cleanly");
    }
}

Server::Impl::~Impl()
{
    if (started && !finished.load(std::memory_order_acquire))
        stopFd.signal();
    join();
    if (listenFd >= 0)
        ::close(listenFd);
}

Server::Server(ServerConfig cfg)
    : impl(std::make_unique<Impl>(std::move(cfg)))
{
}

Server::~Server() = default;

void
Server::start()
{
    impl->start();
}

void
Server::requestStop()
{
    impl->stopFd.signal();
}

void
Server::join()
{
    impl->join();
}

void
Server::stop()
{
    requestStop();
    join();
}

int
Server::port() const
{
    return impl->port_;
}

const ServerRecovery &
Server::recovery() const
{
    return impl->recov;
}

void
Server::installSignalHandlers()
{
    signalStopFd.store(impl->stopFd.fd(), std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

std::string
Server::statsJson() const
{
    return impl->statsJsonNow();
}

std::string
Server::metricsText() const
{
    return impl->metricsTextNow();
}

} // namespace lp::server
