#include "server/protocol.hh"

#include <cstring>

namespace lp::server
{

namespace
{

void
put8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Patch the length field once the payload size is known. */
void
fixupLen(std::vector<std::uint8_t> &out, std::size_t lenAt)
{
    const std::uint32_t len =
        static_cast<std::uint32_t>(out.size() - lenAt - 4);
    for (int i = 0; i < 4; ++i)
        out[lenAt + i] = static_cast<std::uint8_t>(len >> (8 * i));
}

/**
 * Common framing checks. Returns NeedMore/Malformed, or Ok with
 * @p payload / @p len pointing at the complete payload.
 */
Decode
frame(const std::uint8_t *buf, std::size_t n, const std::uint8_t *&payload,
      std::size_t &len, std::size_t &consumed)
{
    if (n < 4)
        return Decode::NeedMore;
    len = get32(buf);
    if (len < 9 || len > maxFrameBytes)
        return Decode::Malformed;  // every payload has op + id
    if (n < 4 + len)
        return Decode::NeedMore;
    payload = buf + 4;
    consumed = 4 + len;
    return Decode::Ok;
}

} // namespace

void
encodeRequest(const Request &r, std::vector<std::uint8_t> &out)
{
    const std::size_t lenAt = out.size();
    put32(out, 0);
    put8(out, static_cast<std::uint8_t>(r.op));
    put64(out, r.id);
    switch (r.op) {
      case Op::Get:
      case Op::Del:
        put64(out, r.key);
        break;
      case Op::Put:
        put64(out, r.key);
        put64(out, r.value);
        break;
      case Op::Batch:
        put32(out, static_cast<std::uint32_t>(r.batch.size()));
        for (const BatchOp &b : r.batch) {
            put8(out, static_cast<std::uint8_t>(b.isPut ? Op::Put
                                                        : Op::Del));
            put64(out, b.key);
            if (b.isPut)
                put64(out, b.value);
        }
        break;
      case Op::Scan:
        put64(out, r.key);
        put32(out, r.limit);
        break;
      case Op::Txn:
        put32(out, static_cast<std::uint32_t>(r.txn.size()));
        for (const TxnOp &t : r.txn) {
            put8(out, static_cast<std::uint8_t>(t.kind));
            put64(out, t.key);
            if (t.kind == TxnOp::Kind::Put ||
                t.kind == TxnOp::Kind::Add)
                put64(out, t.value);
        }
        break;
      case Op::Stats:
      case Op::Shutdown:
      case Op::Metrics:
        break;
    }
    fixupLen(out, lenAt);
}

void
encodeResponse(const Response &r, std::vector<std::uint8_t> &out)
{
    const std::size_t lenAt = out.size();
    put32(out, 0);
    put8(out, static_cast<std::uint8_t>(r.status));
    put64(out, r.id);
    if (r.hasValue)
        put64(out, r.value);
    for (const char c : r.body)
        put8(out, static_cast<std::uint8_t>(c));
    fixupLen(out, lenAt);
}

Decode
decodeRequest(const std::uint8_t *buf, std::size_t n,
              std::size_t &consumed, Request &out)
{
    const std::uint8_t *p = nullptr;
    std::size_t len = 0;
    const Decode d = frame(buf, n, p, len, consumed);
    if (d != Decode::Ok)
        return d;

    out = Request{};
    out.op = static_cast<Op>(p[0]);
    out.id = get64(p + 1);
    switch (out.op) {
      case Op::Get:
      case Op::Del:
        if (len != 17)
            return Decode::Malformed;
        out.key = get64(p + 9);
        return Decode::Ok;
      case Op::Put:
        if (len != 25)
            return Decode::Malformed;
        out.key = get64(p + 9);
        out.value = get64(p + 17);
        return Decode::Ok;
      case Op::Batch: {
        if (len < 13)
            return Decode::Malformed;
        const std::uint32_t count = get32(p + 9);
        if (count > maxBatchOps)
            return Decode::Malformed;
        std::size_t at = 13;
        out.batch.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            if (at + 9 > len)
                return Decode::Malformed;
            const Op sub = static_cast<Op>(p[at]);
            if (sub != Op::Put && sub != Op::Del)
                return Decode::Malformed;
            BatchOp b;
            b.isPut = sub == Op::Put;
            b.key = get64(p + at + 1);
            at += 9;
            if (b.isPut) {
                if (at + 8 > len)
                    return Decode::Malformed;
                b.value = get64(p + at);
                at += 8;
            } else {
                b.value = 0;
            }
            out.batch.push_back(b);
        }
        if (at != len)
            return Decode::Malformed;  // trailing garbage
        return Decode::Ok;
      }
      case Op::Scan:
        if (len != 21)
            return Decode::Malformed;
        out.key = get64(p + 9);
        out.limit = get32(p + 17);
        // A zero limit asks for nothing and a huge one asks for more
        // than any response frame may carry: both are protocol
        // violations, rejected here so the server never sees them.
        if (out.limit == 0 || out.limit > maxScanRecords)
            return Decode::Malformed;
        return Decode::Ok;
      case Op::Txn: {
        if (len < 13)
            return Decode::Malformed;
        const std::uint32_t count = get32(p + 9);
        if (count == 0 || count > maxTxnOps)
            return Decode::Malformed;
        std::size_t at = 13;
        out.txn.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            if (at + 9 > len)
                return Decode::Malformed;
            const auto kind = static_cast<TxnOp::Kind>(p[at]);
            if (kind != TxnOp::Kind::Get &&
                kind != TxnOp::Kind::Put &&
                kind != TxnOp::Kind::Del && kind != TxnOp::Kind::Add)
                return Decode::Malformed;
            TxnOp t;
            t.kind = kind;
            t.key = get64(p + at + 1);
            at += 9;
            if (kind == TxnOp::Kind::Put ||
                kind == TxnOp::Kind::Add) {
                if (at + 8 > len)
                    return Decode::Malformed;
                t.value = get64(p + at);
                at += 8;
            }
            out.txn.push_back(t);
        }
        if (at != len)
            return Decode::Malformed;  // trailing garbage
        return Decode::Ok;
      }
      case Op::Stats:
      case Op::Shutdown:
      case Op::Metrics:
        if (len != 9)
            return Decode::Malformed;
        return Decode::Ok;
    }
    return Decode::Malformed;  // unknown opcode
}

Decode
decodeResponse(const std::uint8_t *buf, std::size_t n,
               std::size_t &consumed, Response &out)
{
    const std::uint8_t *p = nullptr;
    std::size_t len = 0;
    const Decode d = frame(buf, n, p, len, consumed);
    if (d != Decode::Ok)
        return d;

    out = Response{};
    const std::uint8_t status = p[0];
    if (status > static_cast<std::uint8_t>(Status::Aborted))
        return Decode::Malformed;
    out.status = static_cast<Status>(status);
    out.id = get64(p + 1);
    if (len == 17 && out.status == Status::Ok) {
        out.hasValue = true;
        out.value = get64(p + 9);
        return Decode::Ok;
    }
    if (len > 9) {
        // Any other payload is an opaque text body (STATS).
        out.body.assign(reinterpret_cast<const char *>(p + 9), len - 9);
    }
    return Decode::Ok;
}

std::string
encodeScanBody(const std::vector<ScanRecord> &records)
{
    std::vector<std::uint8_t> buf;
    buf.reserve(4 + 16 * records.size());
    put32(buf, static_cast<std::uint32_t>(records.size()));
    for (const ScanRecord &r : records) {
        put64(buf, r.key);
        put64(buf, r.value);
    }
    return std::string(reinterpret_cast<const char *>(buf.data()),
                       buf.size());
}

bool
decodeScanBody(const std::string &body, std::vector<ScanRecord> &out)
{
    out.clear();
    if (body.size() < 4)
        return false;
    const auto *p = reinterpret_cast<const std::uint8_t *>(body.data());
    const std::uint32_t count = get32(p);
    if (count > maxScanRecords ||
        body.size() != 4 + std::size_t(count) * 16)
        return false;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        ScanRecord r;
        r.key = get64(p + 4 + std::size_t(i) * 16);
        r.value = get64(p + 4 + std::size_t(i) * 16 + 8);
        out.push_back(r);
    }
    return true;
}

std::string
encodeTxnReadsBody(const std::vector<TxnRead> &reads)
{
    std::vector<std::uint8_t> buf;
    buf.reserve(4 + 9 * reads.size());
    put32(buf, static_cast<std::uint32_t>(reads.size()));
    for (const TxnRead &r : reads) {
        put8(buf, r.found ? 1 : 0);
        put64(buf, r.value);
    }
    return std::string(reinterpret_cast<const char *>(buf.data()),
                       buf.size());
}

bool
decodeTxnReadsBody(const std::string &body, std::vector<TxnRead> &out)
{
    out.clear();
    if (body.size() < 4)
        return false;
    const auto *p = reinterpret_cast<const std::uint8_t *>(body.data());
    const std::uint32_t count = get32(p);
    if (count > maxTxnOps ||
        body.size() != 4 + std::size_t(count) * 9)
        return false;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t found = p[4 + std::size_t(i) * 9];
        if (found > 1)
            return false;
        TxnRead r;
        r.found = found == 1;
        r.value = get64(p + 4 + std::size_t(i) * 9 + 1);
        out.push_back(r);
    }
    return true;
}

std::string
statusName(Status s)
{
    switch (s) {
      case Status::Ok:       return "ok";
      case Status::NotFound: return "not-found";
      case Status::Retry:    return "retry";
      case Status::Err:      return "err";
      case Status::Fault:    return "fault";
      case Status::Aborted:  return "aborted";
    }
    return "?";
}

} // namespace lp::server
