/**
 * @file
 * Error reporting helpers in the gem5 idiom.
 *
 * panic()  - an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits cleanly.
 * warn()   - something is modelled approximately; execution continues.
 * inform() - plain status output.
 */

#ifndef LP_BASE_LOGGING_HH
#define LP_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace lp
{

/** Print a formatted message with a severity prefix to stderr. */
void logMessage(const char *prefix, const std::string &msg);

/** Report an internal bug and abort. */
[[noreturn]] void panic(const std::string &msg);

/** Report an unrecoverable user error and exit(1). */
[[noreturn]] void fatal(const std::string &msg);

/** Report a modelling approximation or suspicious condition. */
void warn(const std::string &msg);

/** Report ordinary status. */
void inform(const std::string &msg);

/**
 * Assert a library invariant; calls panic() with location info when the
 * condition is false. Enabled in all build types: the simulator is a
 * measurement instrument and silent corruption would invalidate results.
 */
#define LP_ASSERT(cond, msg)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::lp::panic(std::string(__FILE__) + ":" +                      \
                        std::to_string(__LINE__) + ": " + (msg));          \
        }                                                                  \
    } while (0)

} // namespace lp

#endif // LP_BASE_LOGGING_HH
