/**
 * @file
 * Fundamental type aliases and constants shared by every subsystem.
 *
 * The simulator models a byte-addressable persistent address space.
 * Addresses are plain 64-bit offsets into a PersistentArena; they are
 * never host pointers. Cycle counts are 64-bit and monotonically
 * increasing per core.
 */

#ifndef LP_BASE_TYPES_HH
#define LP_BASE_TYPES_HH

#include <cstdint>
#include <limits>

namespace lp
{

/** A simulated physical address (offset into the persistent space). */
using Addr = std::uint64_t;

/** A duration or timestamp in core clock cycles. */
using Cycles = std::uint64_t;

/** Identifier of a simulated core / software thread (0-based). */
using CoreId = int;

/** An invalid address sentinel. Address 0 is never allocated. */
inline constexpr Addr invalidAddr = 0;

/** Cache block (line) size in bytes. Fixed at 64B, as in the paper. */
inline constexpr unsigned blockBytes = 64;

/** log2 of the block size, for address arithmetic. */
inline constexpr unsigned blockShift = 6;

static_assert((1u << blockShift) == blockBytes);

/** Round an address down to the containing block boundary. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(blockBytes - 1);
}

/** Extract the block number of an address. */
constexpr Addr
blockNumber(Addr a)
{
    return a >> blockShift;
}

/** Offset of an address within its block. */
constexpr unsigned
blockOffset(Addr a)
{
    return static_cast<unsigned>(a & (blockBytes - 1));
}

} // namespace lp

#endif // LP_BASE_TYPES_HH
