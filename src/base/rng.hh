/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * A xoshiro256** generator with an explicit seed. Used for fault
 * injection (crash points), checksum accuracy experiments, and
 * randomized property tests. Determinism matters: every experiment in
 * EXPERIMENTS.md must be exactly reproducible from its seed.
 */

#ifndef LP_BASE_RNG_HH
#define LP_BASE_RNG_HH

#include <cstdint>

namespace lp
{

/** Deterministic xoshiro256** PRNG. */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly random bits. */
    std::uint64_t
    next64()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free Lemire reduction is overkill here; modulo bias
        // is negligible for our bounds (<< 2^32).
        return next64() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace lp

#endif // LP_BASE_RNG_HH
