/**
 * @file
 * Small integer math helpers used throughout the simulator.
 */

#ifndef LP_BASE_INTMATH_HH
#define LP_BASE_INTMATH_HH

#include <cstdint>

namespace lp
{

/** True iff @p n is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(n); n must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned l = 0;
    while (n >>= 1)
        ++l;
    return l;
}

/** Ceiling of a / b for positive integers. */
constexpr std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p v up to the next multiple of @p align (a power of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of @p align (a power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

} // namespace lp

#endif // LP_BASE_INTMATH_HH
