/**
 * @file
 * txn::LockTable -- a per-shard, single-threaded two-phase-locking
 * table with wait-die deadlock avoidance.
 *
 * Transactions are identified by a monotonically increasing TxnId
 * that doubles as the wait-die timestamp: a smaller id is an *older*
 * transaction. The table enforces one invariant at all times:
 *
 *     every queued waiter is older than every current holder
 *     (of the same key, excluding itself for upgrades).
 *
 * All wait-for edges therefore point old -> young, so the global
 * wait-for graph is acyclic and deadlock is impossible -- including
 * across shards, because ids are issued globally and every shard's
 * table enforces the same direction. The price is aborts: a requester
 * younger than a holder dies instead of waiting (Acquire::Die), and a
 * waiter is killed when a grant would leave it younger than a new
 * holder. Killed transactions surface Status::Aborted to the client,
 * which retries with a fresh (younger... larger) id -- this is the
 * classic wait-die approximation of 2PLSF's starvation-freedom:
 * bounded retry with jittered backoff rather than a strict FIFO
 * guarantee.
 *
 * Grant policy on release: waiters are granted in timestamp order
 * (oldest first) while compatible. FIFO order is NOT used -- granting
 * a younger waiter ahead of an older one can recreate the deadlock
 * wait-die exists to prevent (the older waiter would then be waiting
 * on a younger holder).
 *
 * Concurrency: none. A LockTable is owned by exactly one shard worker
 * (single-writer-per-shard contract, kernels/env.hh); cross-shard
 * transactions reach it only via the owning worker's queue.
 */

#ifndef LP_TXN_LOCK_TABLE_HH
#define LP_TXN_LOCK_TABLE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lp::txn
{

/** Transaction id == wait-die timestamp. 0 is reserved (invalid). */
using TxnId = std::uint64_t;

enum class LockMode : std::uint8_t
{
    Read,
    Write,
};

/** Outcome of an acquire attempt. */
enum class Acquire : std::uint8_t
{
    Granted,  ///< lock held; proceed
    Waiting,  ///< queued; resume on a later release's granted list
    Die,      ///< wait-die says abort (younger than a holder/waiter)
};

class LockTable
{
  public:
    /**
     * Transactions unblocked (granted) or killed (died) by a
     * release. The caller resumes / aborts them; the table has
     * already updated its own state.
     */
    struct Events
    {
        std::vector<TxnId> granted;
        std::vector<TxnId> died;
    };

    /**
     * Request @p key in mode @p m for transaction @p t. Re-acquiring
     * a held lock is a no-op (Granted); a sole reader upgrades to
     * writer in place. Waiting requesters are queued and will appear
     * in a later Events::granted (or Events::died) list.
     */
    Acquire
    acquire(TxnId t, std::uint64_t key, LockMode m)
    {
        Entry &e = locks_[key];
        if (e.writer == t)
            return Acquire::Granted;
        const bool reads = holdsRead(e, t);
        if (reads && m == LockMode::Read)
            return Acquire::Granted;
        if (reads) {
            // Upgrade request.
            if (e.writer == 0 && e.readers.size() == 1) {
                e.readers.clear();
                e.writer = t;
                return Acquire::Granted;
            }
            if (olderThanHolders(e, t)) {
                enqueue(e, t, LockMode::Write);
                return Acquire::Waiting;
            }
            return Acquire::Die;
        }
        const bool holderOk =
            m == LockMode::Read
                ? e.writer == 0
                : e.writer == 0 && e.readers.empty();
        if (holderOk && youngerThanWaiters(e, t)) {
            grantHolder(e, t, m);
            return Acquire::Granted;
        }
        // Conflicts with a holder, or would jump ahead of an older
        // waiter: wait-die against the holders.
        if (olderThanHolders(e, t)) {
            enqueue(e, t, m);
            return Acquire::Waiting;
        }
        return Acquire::Die;
    }

    /**
     * Drop whatever @p t holds or awaits on @p key, then run a grant
     * round; unblocked and killed waiters accumulate into @p ev.
     */
    void
    release(TxnId t, std::uint64_t key, Events &ev)
    {
        const auto it = locks_.find(key);
        if (it == locks_.end())
            return;
        Entry &e = it->second;
        if (e.writer == t)
            e.writer = 0;
        std::erase(e.readers, t);
        std::erase_if(e.waiters,
                      [t](const Waiter &w) { return w.txn == t; });
        grantRound(e, ev);
        if (e.writer == 0 && e.readers.empty() && e.waiters.empty())
            locks_.erase(it);
    }

    /** release() over a key list (a transaction's lock set). */
    void
    releaseAll(TxnId t, const std::vector<std::uint64_t> &keys,
               Events &ev)
    {
        for (const auto k : keys)
            release(t, k, ev);
    }

    /**
     * True when some key >= @p start is write-locked. Scans defer on
     * this: a granted write lock may cover an applied-but-unreleased
     * transaction write, which a k-way merge must not half-observe.
     * (Waiting writers have written nothing anywhere -- applies only
     * start after every participant prepared, which requires the
     * grant -- so only granted writers matter.)
     */
    bool
    anyWriteLockedAtOrAbove(std::uint64_t start) const
    {
        for (const auto &[key, e] : locks_)
            if (e.writer != 0 && key >= start)
                return true;
        return false;
    }

    /** Keys with any holder or waiter (diagnostics/tests). */
    std::size_t lockedKeys() const { return locks_.size(); }

    /**
     * True when some transaction holds the write lock on @p key.
     * Plain (non-transactional) mutations defer on this while a
     * prepared-but-unapplied transaction exists: its write-set was
     * resolved under the lock, so a plain store slipping in before
     * the apply would be silently clobbered (a lost update).
     */
    bool
    writeLocked(std::uint64_t key) const
    {
        const auto it = locks_.find(key);
        return it != locks_.end() && it->second.writer != 0;
    }

    bool
    holdsWrite(TxnId t, std::uint64_t key) const
    {
        const auto it = locks_.find(key);
        return it != locks_.end() && it->second.writer == t;
    }

  private:
    struct Waiter
    {
        TxnId txn;
        LockMode mode;
    };

    struct Entry
    {
        TxnId writer = 0;                ///< 0 = no writer
        std::vector<TxnId> readers;
        std::vector<Waiter> waiters;     ///< ascending TxnId (oldest first)
    };

    static bool
    holdsRead(const Entry &e, TxnId t)
    {
        return std::find(e.readers.begin(), e.readers.end(), t) !=
               e.readers.end();
    }

    /** t older (smaller) than every holder, excluding t itself. */
    static bool
    olderThanHolders(const Entry &e, TxnId t)
    {
        if (e.writer != 0 && e.writer != t && e.writer < t)
            return false;
        for (const auto r : e.readers)
            if (r != t && r < t)
                return false;
        return true;
    }

    /** t younger (larger) than every waiter: granting t now keeps
     *  the waiter-older-than-holder invariant. */
    static bool
    youngerThanWaiters(const Entry &e, TxnId t)
    {
        for (const auto &w : e.waiters)
            if (w.txn > t)
                return false;
        return true;
    }

    static void
    grantHolder(Entry &e, TxnId t, LockMode m)
    {
        if (m == LockMode::Write)
            e.writer = t;
        else
            e.readers.push_back(t);
    }

    static void
    enqueue(Entry &e, TxnId t, LockMode m)
    {
        const auto pos = std::lower_bound(
            e.waiters.begin(), e.waiters.end(), t,
            [](const Waiter &w, TxnId id) { return w.txn < id; });
        e.waiters.insert(pos, Waiter{t, m});
    }

    /**
     * Grant waiters oldest-first while compatible, then kill every
     * remaining waiter younger than a (new) holder -- restoring the
     * invariant the grants may have broken.
     */
    static void
    grantRound(Entry &e, Events &ev)
    {
        while (!e.waiters.empty()) {
            const Waiter w = e.waiters.front();
            bool ok;
            if (w.mode == LockMode::Read) {
                ok = e.writer == 0;
            } else {
                const bool soleSelfReader =
                    e.readers.size() == 1 && e.readers[0] == w.txn;
                ok = e.writer == 0 &&
                     (e.readers.empty() || soleSelfReader);
                if (ok && soleSelfReader)
                    e.readers.clear();  // upgrade in place
            }
            if (!ok)
                break;
            e.waiters.erase(e.waiters.begin());
            grantHolder(e, w.txn, w.mode);
            ev.granted.push_back(w.txn);
        }
        std::erase_if(e.waiters, [&](const Waiter &w) {
            const bool dies = !olderThanHolders(e, w.txn);
            if (dies)
                ev.died.push_back(w.txn);
            return dies;
        });
    }

    std::unordered_map<std::uint64_t, Entry> locks_;
};

} // namespace lp::txn

#endif // LP_TXN_LOCK_TABLE_HH
