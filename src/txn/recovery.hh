/**
 * @file
 * txn recovery -- replaying the commit-protocol decision after a
 * crash.
 *
 * Runs after the store's own journal recovery, which leaves each
 * shard at a durable watermark W (every epoch <= W replayed, later
 * epochs discarded). For every PREPARE slot the rules are:
 *
 *   slot checksum invalid ............................ ROLL BACK
 *       (a torn vote: the shard never finished preparing)
 *   valid, no decision record ........................ ROLL BACK
 *       (coordinator never committed; the client was not acked)
 *   valid, decision, marker valid and epoch <= W ..... SKIP
 *       (the applies survived replay; re-applying would clobber any
 *        *later* committed plain put to the same keys, which journal
 *        replay already restored)
 *   valid, decision, no marker or epoch > W .......... ROLL FORWARD
 *       (committed but the lazy applies were lost)
 *
 * Roll-forwards are re-applied in decision-sequence order -- commit
 * order. Two committed transactions can only overlap if the second
 * locked after the first released, and release happens after the
 * decision, so decision order is the correct last-writer-wins order.
 *
 * After re-applying, the store is checkpointed (making the applies
 * durable) and only then are slots freed; the frees themselves are
 * lazy, which is safe because a re-crash that loses a free simply
 * re-runs the (idempotent) skip/roll-forward analysis.
 */

#ifndef LP_TXN_RECOVERY_HH
#define LP_TXN_RECOVERY_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "store/kv_store.hh"
#include "txn/decision_log.hh"
#include "txn/prepare_log.hh"

namespace lp::txn
{

struct TxnRecoveryReport
{
    std::uint64_t slotsScanned = 0;
    std::uint64_t rolledForward = 0;  ///< committed, applies re-done
    std::uint64_t rolledBack = 0;     ///< undecided or torn votes freed
    std::uint64_t skipped = 0;        ///< committed and already durable
    std::uint64_t opsReplayed = 0;    ///< individual writes re-applied
    std::uint64_t maxTxnId = 0;       ///< for reseeding the id counter

    void
    merge(const TxnRecoveryReport &o)
    {
        slotsScanned += o.slotsScanned;
        rolledForward += o.rolledForward;
        rolledBack += o.rolledBack;
        skipped += o.skipped;
        opsReplayed += o.opsReplayed;
        maxTxnId = std::max(maxTxnId, o.maxTxnId);
    }
};

/**
 * Apply the decision rules over @p plogs (one per shard of @p kv;
 * entries may be null for shards without a prepare table).
 * @p watermarks are the per-shard committed epochs journal recovery
 * reported. @p dec is the coordinator's rebuilt decision index.
 * Ends with a checkpoint when anything was re-applied, then frees
 * resolved slots.
 */
template <typename Env>
TxnRecoveryReport
recoverTxns(Env &env, store::KvStore<Env> &kv,
            const std::vector<PrepareLog<Env> *> &plogs,
            const std::vector<std::uint64_t> &watermarks,
            const DecisionIndex &dec)
{
    TxnRecoveryReport rep;
    struct Pending
    {
        std::uint64_t seq;
        int shard;
        std::size_t slot;
        std::size_t nOps;
    };
    std::vector<Pending> forward;
    std::vector<std::pair<int, std::size_t>> resolved;

    for (int s = 0; s < int(plogs.size()); ++s) {
        PrepareLog<Env> *pl = plogs[std::size_t(s)];
        if (pl == nullptr)
            continue;
        const std::uint64_t w = watermarks[std::size_t(s)];
        for (std::size_t i = 0; i < pl->size(); ++i) {
            const auto v = pl->inspect(env, i);
            if (v.txnid == 0)
                continue;
            ++rep.slotsScanned;
            if (!v.valid) {
                pl->free(env, i);  // torn vote
                ++rep.rolledBack;
                continue;
            }
            rep.maxTxnId = std::max(rep.maxTxnId, v.txnid);
            const auto it = dec.seqOf.find(v.txnid);
            if (it == dec.seqOf.end()) {
                pl->free(env, i);  // prepared, never decided
                ++rep.rolledBack;
                continue;
            }
            if (v.applied && v.appliedEpoch <= w) {
                ++rep.skipped;
                resolved.emplace_back(s, i);
                continue;
            }
            forward.push_back(Pending{it->second, s, i, v.nOps});
        }
    }

    std::sort(forward.begin(), forward.end(),
              [](const Pending &a, const Pending &b) {
                  return a.seq < b.seq;
              });
    for (const auto &p : forward) {
        PrepareLog<Env> &pl = *plogs[std::size_t(p.shard)];
        std::uint64_t epoch = 0;
        for (std::size_t i = 0; i < p.nOps; ++i) {
            const WriteOp op = pl.op(env, p.slot, i);
            epoch = op.del ? kv.del(env, op.key)
                           : kv.put(env, op.key, op.value);
            ++rep.opsReplayed;
        }
        pl.markApplied(env, p.slot, epoch);
        resolved.emplace_back(p.shard, p.slot);
        ++rep.rolledForward;
    }
    if (!forward.empty())
        kv.checkpoint(env);
    for (const auto &[s, i] : resolved)
        plogs[std::size_t(s)]->free(env, i);
    return rep;
}

} // namespace lp::txn

#endif // LP_TXN_RECOVERY_HH
