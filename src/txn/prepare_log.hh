/**
 * @file
 * txn::PrepareLog -- the per-shard persistent PREPARE record table of
 * the cross-shard commit protocol.
 *
 * A participant shard publishes one slot per in-flight transaction:
 * the transaction id, the shard's fully-resolved write-set (Add
 * deltas are resolved to concrete values under locks before
 * publishing, so replay is deterministic), and a mix64 chain checksum
 * over all of it. Publishing is eager (flush + one fence): the slot
 * is the shard's durable vote, and a torn slot simply fails its
 * checksum and reads as "never prepared" -- exactly the roll-back
 * answer recovery wants for a vote that never finished.
 *
 * After the coordinator's decision, the worker applies the write-set
 * through the ordinary (lazy) store path and then writes an *applied
 * marker* into the slot: the epoch the writes landed in plus a
 * second checksum. The marker is flushed and fenced before the
 * transaction's locks are released, which recovery relies on: if the
 * marker says epoch e and the shard's replayed watermark W >= e, the
 * writes survived and the slot must NOT be re-applied (a later
 * committed plain put to the same key would be clobbered).
 *
 * Slot lifetime: a slot may be freed only once the shard's durable
 * epoch has reached the marker epoch. Freeing earlier is unsound --
 * the free store (txnid = 0) is itself a lazy store that may persist
 * *before* the applies it covers, making a crash look like
 * "decision + no slot = nothing to do" while the applies are lost.
 * Callers keep a pending-free list gated on durableEpoch() and use
 * checkpoint() as the pressure valve when the table fills.
 *
 * Concurrency: single-writer-per-shard, like everything behind an
 * Env. Allocation is a linear scan (tables are small, <= a few
 * hundred slots).
 */

#ifndef LP_TXN_PREPARE_LOG_HH
#define LP_TXN_PREPARE_LOG_HH

#include <cstddef>
#include <cstdint>

#include "base/logging.hh"
#include "pmem/arena.hh"
#include "repair/repair.hh"

namespace lp::txn
{

/** Write-set cap per (shard, transaction); matches protocol's
 *  maxTxnOps so any wire transaction fits one slot per shard. */
inline constexpr std::size_t maxTxnWriteOps = 32;

/** One resolved write of a transaction's write-set. */
struct WriteOp
{
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    bool del = false;
};

/**
 * One PREPARE slot: a 64-byte header plus the resolved write-set as
 * key/value pairs. 576 bytes = 9 cache lines, 64-byte aligned via
 * the arena.
 */
struct PrepareSlot
{
    std::uint64_t txnid;         ///< 0 = slot free
    std::uint64_t nOps;
    std::uint64_t delMask;       ///< bit i: op i is a delete
    std::uint64_t check;         ///< chain over txnid/nOps/delMask/ops
    std::uint64_t appliedEpoch;  ///< marker: epoch the applies landed in
    std::uint64_t appliedCheck;  ///< marker checksum; 0 = not applied
    std::uint64_t pad[2];
    std::uint64_t ops[2 * maxTxnWriteOps];  ///< key,value per op
};

static_assert(sizeof(PrepareSlot) == 576, "slot layout drifted");

inline constexpr std::uint64_t kPrepareSalt = 0x9e1779b97f4a7c15ull;
inline constexpr std::uint64_t kAppliedSalt = 0xc2b2ae3d27d4eb4full;

/** Bytes a PrepareLog of @p slots consumes from the shard arena. */
inline std::size_t
prepareLogBytes(std::size_t slots)
{
    return slots * sizeof(PrepareSlot) + 64;
}

template <typename Env>
class PrepareLog
{
  public:
    static constexpr std::size_t npos = ~std::size_t{0};

    /**
     * Allocate @p slots slots from @p arena. With @p attach false the
     * table is formatted free via plain writes (the caller persists,
     * same convention as KvStore); with @p attach true the existing
     * contents are kept for recovery to inspect.
     */
    PrepareLog(pmem::PersistentArena &arena, std::size_t slots,
               bool attach)
        : slots_(arena.alloc<PrepareSlot>(slots)), n_(slots)
    {
        if (!attach) {
            for (std::size_t i = 0; i < n_; ++i) {
                slots_[i].txnid = 0;
                slots_[i].appliedCheck = 0;
            }
        }
    }

    std::size_t size() const { return n_; }

    /** Index of a free slot, or npos when the table is full. */
    std::size_t
    alloc(Env &env)
    {
        for (std::size_t i = 0; i < n_; ++i) {
            const std::size_t at = (cursor_ + i) % n_;
            if (env.ld(&slots_[at].txnid) == 0) {
                cursor_ = (at + 1) % n_;
                return at;
            }
        }
        return npos;
    }

    /**
     * Durably publish slot @p idx as transaction @p txnid's vote with
     * resolved write-set @p ops (n in [1, maxTxnWriteOps]). All
     * fields are stored, every line flushed, then one fence.
     */
    void
    publish(Env &env, std::size_t idx, std::uint64_t txnid,
            const WriteOp *ops, std::size_t n)
    {
        LP_ASSERT(idx < n_ && n >= 1 && n <= maxTxnWriteOps,
                  "prepare publish out of range");
        LP_ASSERT(txnid != 0, "txnid 0 is reserved for free slots");
        PrepareSlot &s = slots_[idx];
        std::uint64_t mask = 0;
        std::uint64_t h = repair::mix64(txnid ^ kPrepareSalt);
        h = repair::mix64(h ^ std::uint64_t(n));
        for (std::size_t i = 0; i < n; ++i) {
            if (ops[i].del)
                mask |= std::uint64_t(1) << i;
            env.st(&s.ops[2 * i], ops[i].key);
            env.st(&s.ops[2 * i + 1], ops[i].value);
        }
        h = repair::mix64(h ^ mask);
        for (std::size_t i = 0; i < 2 * n; ++i)
            h = repair::mix64(h ^ s.ops[i]);
        env.st(&s.nOps, std::uint64_t(n));
        env.st(&s.delMask, mask);
        env.st(&s.check, h);
        env.st(&s.appliedEpoch, std::uint64_t{0});
        env.st(&s.appliedCheck, std::uint64_t{0});
        env.st(&s.txnid, txnid);
        flushSlot(env, s, n);
        env.sfence();
    }

    /**
     * Durably mark slot @p idx applied at @p epoch. Must complete
     * (including the fence) before the transaction's locks on this
     * shard are released.
     */
    void
    markApplied(Env &env, std::size_t idx, std::uint64_t epoch)
    {
        PrepareSlot &s = slots_[idx];
        const std::uint64_t id = env.ld(&s.txnid);
        env.st(&s.appliedEpoch, epoch);
        env.st(&s.appliedCheck, appliedCheck(id, epoch));
        env.clflushopt(&s);
        env.sfence();
    }

    /**
     * Free slot @p idx (lazy store -- the caller has already gated
     * this on the shard's durable epoch covering the applies).
     */
    void
    free(Env &env, std::size_t idx)
    {
        PrepareSlot &s = slots_[idx];
        env.st(&s.txnid, std::uint64_t{0});
        env.st(&s.appliedCheck, std::uint64_t{0});
    }

    /** What recovery sees in one slot. */
    struct View
    {
        bool valid = false;      ///< checksum-complete vote
        std::uint64_t txnid = 0;
        std::size_t nOps = 0;
        std::uint64_t delMask = 0;
        bool applied = false;    ///< marker present and self-consistent
        std::uint64_t appliedEpoch = 0;
    };

    /** Validate slot @p idx from the durable image. */
    View
    inspect(Env &env, std::size_t idx)
    {
        View v;
        const PrepareSlot &s = slots_[idx];
        v.txnid = env.ld(&s.txnid);
        if (v.txnid == 0)
            return v;
        const std::uint64_t n = env.ld(&s.nOps);
        const std::uint64_t mask = env.ld(&s.delMask);
        if (n < 1 || n > maxTxnWriteOps)
            return v;
        std::uint64_t h = repair::mix64(v.txnid ^ kPrepareSalt);
        h = repair::mix64(h ^ n);
        h = repair::mix64(h ^ mask);
        for (std::size_t i = 0; i < 2 * n; ++i)
            h = repair::mix64(h ^ env.ld(&s.ops[i]));
        if (h != env.ld(&s.check))
            return v;  // torn vote: reads as never-prepared
        v.valid = true;
        v.nOps = std::size_t(n);
        v.delMask = mask;
        const std::uint64_t ac = env.ld(&s.appliedCheck);
        const std::uint64_t ae = env.ld(&s.appliedEpoch);
        if (ac != 0 && ac == appliedCheck(v.txnid, ae)) {
            v.applied = true;
            v.appliedEpoch = ae;
        }
        return v;
    }

    /** Op @p i of a validated slot (recovery roll-forward). */
    WriteOp
    op(Env &env, std::size_t idx, std::size_t i) const
    {
        const PrepareSlot &s = slots_[idx];
        WriteOp w;
        w.key = env.ld(&s.ops[2 * i]);
        w.value = env.ld(&s.ops[2 * i + 1]);
        w.del = (env.ld(&s.delMask) >> i) & 1;
        return w;
    }

  private:
    static std::uint64_t
    appliedCheck(std::uint64_t txnid, std::uint64_t epoch)
    {
        const std::uint64_t h = repair::mix64(
            txnid ^ repair::mix64(epoch ^ kAppliedSalt));
        return h ? h : 1;
    }

    void
    flushSlot(Env &env, const PrepareSlot &s, std::size_t n)
    {
        const auto *base = reinterpret_cast<const char *>(&s);
        const std::size_t bytes =
            sizeof(PrepareSlot) -
            (maxTxnWriteOps - n) * 2 * sizeof(std::uint64_t);
        for (std::size_t off = 0; off < bytes; off += 64)
            env.clflushopt(base + off);
    }

    PrepareSlot *slots_;
    std::size_t n_;
    std::size_t cursor_ = 0;
};

} // namespace lp::txn

#endif // LP_TXN_PREPARE_LOG_HH
