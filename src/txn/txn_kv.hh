/**
 * @file
 * txn::TxnKv -- the embedded (single-threaded) transactional facade
 * over a multi-shard KvStore, running the full cross-shard commit
 * protocol inline: lock acquisition, Add-delta resolution, PREPARE
 * publication, the DecisionLog append (the durability point), lazy
 * applies, applied markers, and gated slot frees.
 *
 * This is the same protocol lp::server's acceptor/worker split runs
 * across threads, collapsed into one call stack so the crash matrix
 * can kill it at every named step (the Hook) and the sim can account
 * every persistent store. Two commit paths:
 *
 *  - Fast path (single participant shard, batching backend, write
 *    count fits one epoch): writes are staged as one epoch, which the
 *    backend already makes crash-atomic (LP discards unsealed
 *    batches, WAL rolls back incomplete ones). No prepare, no
 *    decision record: commit latency is one lazy stage -- this is
 *    where LP's latency win over WAL must survive, so single-shard
 *    transactions must not pay eager protocol writes.
 *  - General path (cross-shard, forced, or the eager backend, whose
 *    per-op persists have no batch atomicity): PREPARE per
 *    participant, one DecisionLog append, then lazy applies.
 *
 * Read semantics: ops execute in order against an overlay, so a Get
 * after a Put/Add in the same transaction sees the transaction's own
 * write; Gets before it see pre-transaction state. Locks make the
 * whole transaction atomic against concurrent transactions (in the
 * server); here they mostly exercise the same code paths.
 *
 * After a crash (CrashException from the hook or the sim), callers
 * MUST recover() before using the instance again, mirroring the
 * KvStore contract.
 */

#ifndef LP_TXN_TXN_KV_HH
#define LP_TXN_TXN_KV_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "store/kv_store.hh"
#include "store/layout.hh"
#include "txn/decision_log.hh"
#include "txn/lock_table.hh"
#include "txn/prepare_log.hh"
#include "txn/recovery.hh"

namespace lp::txn
{

template <typename Env>
class TxnKv
{
  public:
    struct Config
    {
        store::StoreConfig store;
        std::size_t prepareSlots = 64;     ///< per shard
        std::size_t decisionEntries = 1024;
    };

    /** Arena budget: store + per-shard prepare tables + decision
     *  ring, in the exact allocation order the constructor uses. */
    static std::size_t
    arenaBytes(const Config &c)
    {
        return store::storeArenaBytes(c.store) +
               std::size_t(c.store.shards) *
                   prepareLogBytes(c.prepareSlots) +
               decisionLogBytes(c.decisionEntries);
    }

    /** Commit-protocol steps the crash hook fires at. */
    enum class Step
    {
        PrePrepare,    ///< locks held, writes resolved, nothing durable
        MidPrepare,    ///< first participant prepared, others not
        PostPrepare,   ///< all votes durable, no decision
        PostDecision,  ///< decision durable, nothing applied
        MidApply,      ///< first write applied (lazily)
        PreMarker,     ///< all writes applied, no marker
        PostMarker,    ///< all markers durable
    };

    /** May throw pmem::CrashException to simulate dying there. */
    using Hook = std::function<void(Step)>;

    struct Op
    {
        enum class Kind : std::uint8_t
        {
            Get,
            Put,
            Del,
            Add,  ///< value is a two's-complement delta; absent = 0
        };
        Kind kind = Kind::Get;
        std::uint64_t key = 0;
        std::uint64_t value = 0;
    };

    struct Result
    {
        bool committed = false;
        /** One {found, value} per Get, in op order. */
        std::vector<std::pair<bool, std::uint64_t>> reads;
    };

    TxnKv(pmem::PersistentArena &arena, const Config &cfg,
          store::Backend backend, bool attach = false)
        : cfg_(cfg), kv_(arena, cfg.store, backend, attach),
          backend_(backend)
    {
        for (int s = 0; s < cfg.store.shards; ++s)
            plogs_.emplace_back(arena, cfg.prepareSlots, attach);
        dlog_.emplace(arena, cfg.decisionEntries, attach);
        locks_.resize(std::size_t(cfg.store.shards));
    }

    store::KvStore<Env> &kv() { return kv_; }
    const Config &config() const { return cfg_; }
    std::uint64_t nextTxnId() const { return nextTxn_; }

    /**
     * Execute one transaction. @p forceGeneral routes even
     * single-shard transactions through prepare/decision (the crash
     * matrix uses this to reach every protocol step).
     */
    Result
    run(Env &env, const std::vector<Op> &ops, const Hook &hook = {},
        bool forceGeneral = false)
    {
        LP_ASSERT(!ops.empty() && ops.size() <= maxTxnWriteOps,
                  "transaction op count out of range");
        const TxnId id = nextTxn_++;
        Result res;

        // Lock set: one mode per distinct key, write if any mutation.
        std::map<std::uint64_t, LockMode> modes;
        for (const auto &op : ops) {
            auto &m = modes[op.key];
            if (op.kind != Op::Kind::Get)
                m = LockMode::Write;
        }
        std::vector<std::uint64_t> held;
        for (const auto &[key, mode] : modes) {
            const auto got =
                lockTable(key).acquire(id, key, mode);
            LP_ASSERT(got == Acquire::Granted,
                      "embedded txn lock conflict (single-threaded)");
            held.push_back(key);
        }

        // Resolve ops in order against an overlay: read-your-writes,
        // Add deltas become concrete values, last write per key wins.
        std::unordered_map<std::uint64_t,
                           std::optional<std::uint64_t>>
            overlay;
        std::vector<std::uint64_t> writeOrder;  // first-write order
        const auto current =
            [&](std::uint64_t key) -> std::optional<std::uint64_t> {
            const auto it = overlay.find(key);
            if (it != overlay.end())
                return it->second;
            return kv_.get(env, key);
        };
        const auto noteWrite = [&](std::uint64_t key) {
            if (overlay.find(key) == overlay.end())
                writeOrder.push_back(key);
        };
        for (const auto &op : ops) {
            switch (op.kind) {
              case Op::Kind::Get: {
                const auto v = current(op.key);
                res.reads.emplace_back(v.has_value(),
                                       v.value_or(0));
                break;
              }
              case Op::Kind::Put:
                noteWrite(op.key);
                overlay[op.key] = op.value;
                break;
              case Op::Kind::Del:
                noteWrite(op.key);
                overlay[op.key] = std::nullopt;
                break;
              case Op::Kind::Add: {
                const auto v = current(op.key);
                noteWrite(op.key);
                overlay[op.key] = v.value_or(0) + op.value;
                break;
              }
            }
        }

        // Per-shard resolved write-sets, keys in first-write order.
        std::map<int, std::vector<WriteOp>> writes;
        std::size_t nWrites = 0;
        for (const auto key : writeOrder) {
            const auto &val = overlay[key];
            WriteOp w;
            w.key = key;
            w.del = !val.has_value();
            w.value = val.value_or(0);
            writes[kv_.shardOf(key)].push_back(w);
            ++nWrites;
        }

        if (hook)
            hook(Step::PrePrepare);

        if (writes.empty()) {
            releaseLocks(id, held);
            res.committed = true;
            return res;
        }

        const bool fastPath =
            !forceGeneral && writes.size() == 1 &&
            backend_ != store::Backend::EagerPerOp &&
            nWrites <= std::size_t(cfg_.store.batchOps);
        if (fastPath) {
            commitFast(env, writes.begin()->first,
                       writes.begin()->second);
        } else {
            commitGeneral(env, id, writes, hook);
        }
        res.committed = true;
        releaseLocks(id, held);
        sweepFrees(env);
        return res;
    }

    /**
     * Recover after a crash: journal replay, decision-index rebuild,
     * the txn decision rules, and a reset of all volatile protocol
     * state (locks, pending frees, id counter).
     */
    TxnRecoveryReport
    recover(Env &env)
    {
        const auto kvRep = kv_.recover(env);
        locks_.assign(std::size_t(cfg_.store.shards), LockTable{});
        pendingFrees_.clear();
        const std::uint64_t decMax = dlog_->scan(env);
        std::vector<PrepareLog<Env> *> pls;
        for (auto &pl : plogs_)
            pls.push_back(&pl);
        auto rep = recoverTxns(env, kv_, pls, kvRep.committedEpochs,
                               dlog_->index());
        rep.maxTxnId = std::max(rep.maxTxnId, decMax);
        nextTxn_ = rep.maxTxnId + 1;
        return rep;
    }

    /** Full durability plus a pending-slot-free sweep. */
    void
    checkpoint(Env &env)
    {
        kv_.checkpoint(env);
        sweepFrees(env);
    }

    /** Prepare slots awaiting their durability gate (tests). */
    std::size_t pendingSlotFrees() const { return pendingFrees_.size(); }

  private:
    void
    commitFast(Env &env, int shard, const std::vector<WriteOp> &ws)
    {
        // Pre-flush so the whole write-set lands in ONE epoch: the
        // backend's per-epoch atomicity is then the txn atomicity.
        auto &pl = kv_.pipeline(shard);
        if (pl.stagedOps() > 0 &&
            pl.stagedOps() + ws.size() >
                std::size_t(cfg_.store.batchOps))
            kv_.commitBatches(env);
        for (const auto &w : ws) {
            if (w.del)
                kv_.del(env, w.key);
            else
                kv_.put(env, w.key, w.value);
        }
    }

    void
    commitGeneral(Env &env, TxnId id,
                  const std::map<int, std::vector<WriteOp>> &writes,
                  const Hook &hook)
    {
        std::vector<std::pair<int, std::size_t>> slots;
        bool first = true;
        for (const auto &[shard, ws] : writes) {
            const std::size_t slot = allocSlot(env, shard);
            plogs_[std::size_t(shard)].publish(env, slot, id,
                                               ws.data(), ws.size());
            slots.emplace_back(shard, slot);
            if (first && writes.size() > 1 && hook)
                hook(Step::MidPrepare);
            first = false;
        }
        if (hook)
            hook(Step::PostPrepare);

        dlog_->append(env, id);  // THE commit point
        if (hook)
            hook(Step::PostDecision);

        std::vector<std::uint64_t> epochs;
        bool firstApply = true;
        for (const auto &[shard, ws] : writes) {
            std::uint64_t e = 0;
            for (const auto &w : ws) {
                e = w.del ? kv_.del(env, w.key)
                          : kv_.put(env, w.key, w.value);
                if (firstApply && hook)
                    hook(Step::MidApply);
                firstApply = false;
            }
            epochs.push_back(e);
        }
        if (hook)
            hook(Step::PreMarker);
        for (std::size_t i = 0; i < slots.size(); ++i) {
            const auto [shard, slot] = slots[i];
            plogs_[std::size_t(shard)].markApplied(env, slot,
                                                   epochs[i]);
            pendingFrees_.push_back(
                PendingFree{shard, slot, epochs[i]});
        }
        if (hook)
            hook(Step::PostMarker);
    }

    std::size_t
    allocSlot(Env &env, int shard)
    {
        auto &pl = plogs_[std::size_t(shard)];
        std::size_t slot = pl.alloc(env);
        if (slot == PrepareLog<Env>::npos) {
            // Pressure valve: advance the durable watermark so gated
            // frees become eligible, then retry.
            kv_.checkpoint(env);
            sweepFrees(env);
            slot = pl.alloc(env);
        }
        LP_ASSERT(slot != PrepareLog<Env>::npos,
                  "prepare table exhausted");
        return slot;
    }

    void
    releaseLocks(TxnId id, const std::vector<std::uint64_t> &keys)
    {
        LockTable::Events ev;
        for (const auto k : keys)
            lockTable(k).release(id, k, ev);
        LP_ASSERT(ev.granted.empty() && ev.died.empty(),
                  "embedded txn released onto waiters");
    }

    /**
     * Free applied slots whose epoch the shard has made durable.
     * The gate reads the pipeline's volatile durable watermark, not
     * the superblock's: the two agree for LP/WAL (the volatile one
     * advances only after the meta persist), and for the eager
     * backend -- which persists ops in place and never folds, so its
     * superblock watermark is pinned at 0 -- only the pipeline knows
     * every committed op is already durable.
     */
    void
    sweepFrees(Env &env)
    {
        std::erase_if(pendingFrees_, [&](const PendingFree &f) {
            if (kv_.pipeline(f.shard).foldedEpoch() < f.epoch)
                return false;
            plogs_[std::size_t(f.shard)].free(env, f.slot);
            return true;
        });
    }

    LockTable &
    lockTable(std::uint64_t key)
    {
        return locks_[std::size_t(kv_.shardOf(key))];
    }

    struct PendingFree
    {
        int shard;
        std::size_t slot;
        std::uint64_t epoch;
    };

    Config cfg_;
    store::KvStore<Env> kv_;
    store::Backend backend_;
    std::deque<PrepareLog<Env>> plogs_;
    std::optional<DecisionLog<Env>> dlog_;
    std::vector<LockTable> locks_;
    std::vector<PendingFree> pendingFrees_;
    TxnId nextTxn_ = 1;
};

} // namespace lp::txn

#endif // LP_TXN_TXN_KV_HH
