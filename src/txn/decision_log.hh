/**
 * @file
 * txn::DecisionLog -- the coordinator's persistent COMMIT record
 * ring: the linearization and durability point of every cross-shard
 * transaction.
 *
 * One 32-byte entry per committed transaction: a monotonically
 * increasing sequence number, the transaction id, and a mix64
 * checksum binding the two. Appending an entry (store + flush + one
 * fence) IS the commit: before it, recovery rolls every prepared
 * participant back; after it, recovery rolls them forward. Entries
 * never span a 64-byte block, so a torn append fails its checksum
 * and reads as "no decision" -- the safe answer, because the
 * coordinator only acknowledges the client after the fence.
 *
 * The ring overwrites oldest-first. That is sound because a decision
 * record only matters while some participant still holds the
 * transaction's PREPARE slot; slots are freed once the applies are
 * durably folded, and the ring (4096 entries by default) is sized
 * orders of magnitude above the prepare tables' combined capacity
 * (<= a few hundred slots), so an overwritten decision is always for
 * a transaction no shard can still ask about.
 *
 * The sequence number doubles as the roll-forward order: when
 * recovery finds several committed-but-unapplied transactions on one
 * shard, it must re-apply them in decision order (= commit order,
 * since a later transaction can only have touched the same key after
 * the earlier one's locks were released, which happens after its
 * decision).
 *
 * Volatile side: a txnid -> seq index for O(1) decision lookups,
 * rebuilt by scan() after attach or crash.
 *
 * Concurrency: owned by the coordinator (the server acceptor, or the
 * embedded TxnKv); nothing else touches it.
 */

#ifndef LP_TXN_DECISION_LOG_HH
#define LP_TXN_DECISION_LOG_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "base/logging.hh"
#include "pmem/arena.hh"
#include "repair/repair.hh"

namespace lp::txn
{

/** One COMMIT record. 32 bytes: two per cache block, never torn
 *  across blocks. */
struct DecisionEntry
{
    std::uint64_t seq;    ///< 1-based, monotonic; 0 = never written
    std::uint64_t txnid;
    std::uint64_t check;  ///< binds seq+txnid; mismatch = no decision
    std::uint64_t pad;
};

static_assert(sizeof(DecisionEntry) == 32, "entry layout drifted");

inline constexpr std::uint64_t kDecisionSalt = 0xd6e8feb86659fd93ull;

/** Bytes a DecisionLog of @p entries consumes from its arena. */
inline std::size_t
decisionLogBytes(std::size_t entries)
{
    return entries * sizeof(DecisionEntry) + 64;
}

/**
 * The volatile decision index handed to shard workers during
 * recovery: txnid -> decision sequence number. Read-only once built
 * (ownership transfer through the worker queues synchronizes).
 */
struct DecisionIndex
{
    std::unordered_map<std::uint64_t, std::uint64_t> seqOf;

    bool
    committed(std::uint64_t txnid) const
    {
        return seqOf.find(txnid) != seqOf.end();
    }
};

template <typename Env>
class DecisionLog
{
  public:
    /**
     * Allocate a ring of @p entries from @p arena. With @p attach
     * false the ring is formatted empty via plain writes (caller
     * persists); with @p attach true call scan() to rebuild the
     * volatile index before use.
     */
    DecisionLog(pmem::PersistentArena &arena, std::size_t entries,
                bool attach)
        : ring_(arena.alloc<DecisionEntry>(entries)), cap_(entries)
    {
        LP_ASSERT(cap_ >= 2, "decision ring too small");
        if (!attach) {
            for (std::size_t i = 0; i < cap_; ++i) {
                ring_[i].seq = 0;
                ring_[i].check = 0;
            }
        }
    }

    std::size_t capacity() const { return cap_; }

    /**
     * Rebuild head/index from the durable image (attach and
     * post-crash recovery). Returns the largest txnid seen, for
     * seeding the id counter.
     */
    std::uint64_t
    scan(Env &env)
    {
        index_.seqOf.clear();
        nextSeq_ = 1;
        std::uint64_t maxId = 0;
        for (std::size_t i = 0; i < cap_; ++i) {
            const std::uint64_t seq = env.ld(&ring_[i].seq);
            const std::uint64_t id = env.ld(&ring_[i].txnid);
            if (seq == 0 ||
                env.ld(&ring_[i].check) != entryCheck(seq, id))
                continue;  // empty or torn: no decision here
            index_.seqOf[id] = seq;
            if (seq >= nextSeq_)
                nextSeq_ = seq + 1;
            if (id > maxId)
                maxId = id;
        }
        return maxId;
    }

    /**
     * Durably commit @p txnid. Returns the decision sequence number.
     * This is the transaction's durability point: flush + fence
     * complete before this returns.
     */
    std::uint64_t
    append(Env &env, std::uint64_t txnid)
    {
        LP_ASSERT(txnid != 0, "txnid 0 is reserved");
        const std::uint64_t seq = nextSeq_++;
        DecisionEntry &e = ring_[(seq - 1) % cap_];
        // Drop the overwritten entry from the volatile index.
        const std::uint64_t oldSeq = e.seq;
        const std::uint64_t oldId = e.txnid;
        if (oldSeq != 0) {
            const auto it = index_.seqOf.find(oldId);
            if (it != index_.seqOf.end() && it->second == oldSeq)
                index_.seqOf.erase(it);
        }
        env.st(&e.txnid, txnid);
        env.st(&e.check, entryCheck(seq, txnid));
        env.st(&e.seq, seq);
        env.clflushopt(&e);
        env.sfence();
        index_.seqOf[txnid] = seq;
        return seq;
    }

    const DecisionIndex &index() const { return index_; }

    bool
    committed(std::uint64_t txnid) const
    {
        return index_.committed(txnid);
    }

  private:
    static std::uint64_t
    entryCheck(std::uint64_t seq, std::uint64_t txnid)
    {
        const std::uint64_t h =
            repair::mix64(seq ^ repair::mix64(txnid ^ kDecisionSalt));
        return h ? h : 1;
    }

    DecisionEntry *ring_;
    std::size_t cap_;
    std::uint64_t nextSeq_ = 1;
    DecisionIndex index_;
};

} // namespace lp::txn

#endif // LP_TXN_DECISION_LOG_HH
