/**
 * @file
 * obs::ShardObs -- the per-shard observability bundle every
 * CommitPipeline consumer carries.
 *
 * One instance per shard, owned by the shard's owner (KvStore, a
 * server worker) and attached to that shard's engine::CommitPipeline
 * so the persistency backends can reach it from the pipeline they
 * already hold. The histograms are always on (recording is two
 * relaxed atomic adds); the trace ring is null unless a
 * TraceCollector was attached.
 *
 * Threading follows the histogram/ring contracts: the shard's single
 * writer records; any thread may read the histograms (the server's
 * acceptor does, for STATS/METRICS).
 */

#ifndef LP_OBS_SHARD_OBS_HH
#define LP_OBS_SHARD_OBS_HH

#include "obs/histogram.hh"
#include "obs/trace.hh"

namespace lp::obs
{

struct ShardObs
{
    Histogram stageNs;   ///< backend stage(): per-mutation latency
    Histogram commitNs;  ///< backend commitEpoch() duration
    Histogram foldNs;    ///< backend fold / checkpoint duration
    Histogram recoverNs; ///< backend recover() duration
    Histogram scanNs;    ///< whole-scan latency (index + value reads)
    Histogram scanLen;   ///< records returned per scan (a count, not ns)
    Histogram scrubNs;   ///< online-scrub step duration

    TraceRing *ring = nullptr; ///< null = tracing off for this shard
};

/** The bundle's ring when one is attached; null-safe on both levels. */
inline TraceRing *
ringOf(ShardObs *o)
{
    return o ? o->ring : nullptr;
}

} // namespace lp::obs

#endif // LP_OBS_SHARD_OBS_HH
