/**
 * @file
 * obs::TraceRing / obs::TraceCollector -- bounded lock-free event
 * tracing with Chrome trace-event JSON output.
 *
 * Each traced thread owns one SPSC ring: the owner pushes fixed-size
 * TraceEvents (static-string name, timestamps from obs::nowNs()) with
 * two relaxed/release atomic ops and no allocation; when the ring is
 * full the event is dropped and counted rather than blocking the hot
 * path. The collector registers rings under a mutex (setup/teardown
 * only), drains them from the consumer side, and writes a single
 * Chrome trace-event JSON file -- loadable in Perfetto or
 * chrome://tracing -- with one named track per ring plus the drop
 * counts in otherData.
 *
 * Tracing is opt-in per shard/thread by handing out a ring pointer;
 * every emit helper is null-safe, so "tracing off" costs one branch.
 */

#ifndef LP_OBS_TRACE_HH
#define LP_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/time.hh"

namespace lp::obs
{

/**
 * One trace record. @c name must be a string literal (or otherwise
 * outlive the collector); events are fixed-size so the ring never
 * allocates after construction.
 */
struct TraceEvent
{
    const char *name = nullptr;
    std::uint32_t tid = 0;   ///< track id (shard index, acceptor...)
    std::uint64_t tsNs = 0;  ///< span start, from obs::nowNs()
    std::uint64_t durNs = 0; ///< span length; 0 = instant event
    std::uint64_t arg = 0;   ///< payload (epoch number, conn id...)
    std::uint64_t flowId = 0; ///< request flow binding; 0 = none
};

/**
 * Per-request trace id, derived from what is already on the wire:
 * the connection id and the client's request id. splitmix64-style
 * finalizer so nearby (conn, req) pairs land far apart; never zero,
 * because 0 means "no flow" everywhere downstream.
 */
inline std::uint64_t
traceIdOf(std::uint64_t connId, std::uint64_t reqId)
{
    std::uint64_t z = (connId << 32) ^ reqId;
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return z | 1;
}

/**
 * Consumer of every event pushed to a TraceRing, in producer order.
 * The one implementation is obs::FlightRing (flight.hh), which
 * persists a wrapping copy of the event stream into the pmem arena;
 * the seam keeps trace.hh free of pmem dependencies. record() runs
 * on the ring's producer thread and must not allocate.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const TraceEvent &e) = 0;
};

/**
 * Single-producer single-consumer bounded ring. The producer is the
 * traced thread; the consumer is whoever drains (the collector at
 * write time, after producers have quiesced, or a live drainer).
 */
class TraceRing
{
  public:
    /** @p capacity is rounded up to a power of two, minimum 8. */
    explicit TraceRing(std::size_t capacity = 4096)
    {
        std::size_t cap = 8;
        while (cap < capacity)
            cap <<= 1;
        buf_.resize(cap);
        mask_ = cap - 1;
    }

    std::size_t capacity() const { return buf_.size(); }

    /** Track id stamped by the emit helpers below. */
    std::uint32_t tid() const { return tid_; }
    void setTid(std::uint32_t tid) { tid_ = tid; }

    /**
     * Tee every future push into @p sink (the crash-persistent
     * flight recorder). Producer-thread only; the sink sees events
     * even when the volatile ring itself is full, so the persistent
     * copy keeps wrapping after the in-memory one has stopped
     * accepting.
     */
    void attachSink(TraceSink *sink) { sink_ = sink; }

    /**
     * Producer side: enqueue @p e; false (and a drop is counted)
     * when the ring is full. Never allocates.
     */
    bool
    push(const TraceEvent &e)
    {
        if (sink_)
            sink_->record(e);
        const auto head = head_.load(std::memory_order_relaxed);
        const auto tail = tail_.load(std::memory_order_acquire);
        if (head - tail >= buf_.size()) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        buf_[head & mask_] = e;
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: dequeue the oldest event; false when empty. */
    bool
    pop(TraceEvent &e)
    {
        const auto tail = tail_.load(std::memory_order_relaxed);
        const auto head = head_.load(std::memory_order_acquire);
        if (tail == head)
            return false;
        e = buf_[tail & mask_];
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /** Events discarded because the ring was full. */
    std::uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<TraceEvent> buf_;
    std::size_t mask_ = 0;
    std::uint32_t tid_ = 0;
    TraceSink *sink_ = nullptr;
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/** Emit an instant event; no-op when @p ring is null. */
inline void
traceInstant(TraceRing *ring, const char *name, std::uint64_t arg = 0,
             std::uint64_t flowId = 0)
{
    if (ring)
        ring->push({name, ring->tid(), nowNs(), 0, arg, flowId});
}

/**
 * Emit a complete span whose start time the caller measured itself
 * (a queue-wait or commit-wait whose t0 predates this thread seeing
 * the work); no-op when @p ring is null.
 */
inline void
traceSpanFrom(TraceRing *ring, const char *name, std::uint64_t t0Ns,
              std::uint64_t arg = 0, std::uint64_t flowId = 0)
{
    if (ring)
        ring->push({name, ring->tid(), t0Ns, nowNs() - t0Ns, arg,
                    flowId});
}

/**
 * RAII span: records [construction, destruction) as a complete event
 * on @p ring; no-op (one branch) when @p ring is null. A nonzero
 * @p flowId ties the span into its request's flow arc.
 */
class Span
{
  public:
    Span(TraceRing *ring, const char *name, std::uint64_t arg = 0,
         std::uint64_t flowId = 0)
        : ring_(ring), name_(name), arg_(arg), flowId_(flowId),
          t0_(ring ? nowNs() : 0)
    {
    }

    ~Span()
    {
        if (ring_)
            ring_->push({name_, ring_->tid(), t0_, nowNs() - t0_,
                         arg_, flowId_});
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    TraceRing *ring_;
    const char *name_;
    std::uint64_t arg_;
    std::uint64_t flowId_;
    std::uint64_t t0_;
};

/**
 * Owns the rings of all traced threads and serializes their events
 * into one Chrome trace-event JSON file.
 */
class TraceCollector
{
  public:
    TraceCollector();

    /**
     * Register (and own) a new ring rendered as track @p tid named
     * @p threadName. The returned pointer stays valid for the
     * collector's lifetime. Thread-safe.
     */
    TraceRing *ring(const std::string &threadName, std::uint32_t tid,
                    std::size_t capacity = 4096);

    /**
     * Drain every ring and write the Chrome trace JSON to @p path.
     * Call after producers have quiesced (or accept losing events
     * pushed mid-write). False on I/O failure.
     */
    bool writeChromeTrace(const std::string &path);

    /** Total events dropped across all rings. */
    std::uint64_t totalDropped() const;

  private:
    struct Track
    {
        std::string name;
        std::unique_ptr<TraceRing> ring;
    };

    mutable std::mutex mu_;
    std::vector<Track> tracks_;
};

} // namespace lp::obs

#endif // LP_OBS_TRACE_HH
