#include "obs/metrics.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace lp::obs
{

namespace
{

/** Integers print exactly; everything else gets shortest-round-trip. */
std::string
formatValue(double v)
{
    char buf[40];
    if (v == std::floor(v) && std::fabs(v) < 9.2e18) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
    }
    return buf;
}

std::string
joinLabels(const std::string &labels, const std::string &extra)
{
    if (labels.empty())
        return extra;
    if (extra.empty())
        return labels;
    return labels + "," + extra;
}

} // namespace

void
MetricsText::typeLine(const std::string &name, const char *type)
{
    if (typed_.insert(name).second)
        out_ += "# TYPE " + name + " " + type + "\n";
}

void
MetricsText::sample(const std::string &name, const std::string &labels,
                    double v)
{
    out_ += name;
    if (!labels.empty())
        out_ += "{" + labels + "}";
    out_ += " " + formatValue(v) + "\n";
}

/**
 * Bucket line with an OpenMetrics exemplar suffix: the freshest
 * trace id that landed in this bucket's octave, with the value
 * reconstructed as the octave midpoint (the id is a single atomic
 * word in the histogram, so a concurrent scrape can never see a
 * torn id -- see Histogram::recordExemplar).
 */
void
MetricsText::bucketSample(const std::string &name,
                          const std::string &labels, double v,
                          std::uint64_t exemplarId,
                          double exemplarValue)
{
    out_ += name;
    if (!labels.empty())
        out_ += "{" + labels + "}";
    out_ += " " + formatValue(v);
    if (exemplarId != 0) {
        char ex[64];
        std::snprintf(ex, sizeof(ex),
                      " # {trace_id=\"%016llx\"} ",
                      static_cast<unsigned long long>(exemplarId));
        out_ += ex;
        out_ += formatValue(exemplarValue);
    }
    out_ += "\n";
}

void
MetricsText::counter(const std::string &name,
                     const std::string &labels, double v)
{
    typeLine(name, "counter");
    sample(name, labels, v);
}

void
MetricsText::gauge(const std::string &name, const std::string &labels,
                   double v)
{
    typeLine(name, "gauge");
    sample(name, labels, v);
}

void
MetricsText::histogramScaled(const std::string &name,
                             const std::string &labels,
                             const Histogram &h, double scale)
{
    typeLine(name, "histogram");
    const std::uint64_t total = h.count();
    const std::uint64_t tracked = total - h.overflow();

    std::uint64_t cum = 0;
    std::size_t i = 0;
    int lastK = 0;
    for (int k = Histogram::kSubBits + 1; k <= Histogram::kMaxBit + 1;
         ++k) {
        // Buckets below this index hold values < 2^k exactly.
        const std::size_t boundIdx =
            2 * Histogram::kSub +
            std::size_t(k - Histogram::kSubBits - 1) * Histogram::kSub;
        while (i < boundIdx)
            cum += h.bucketCount(i++);
        char le[48];
        std::snprintf(le, sizeof(le), "le=\"%.10g\"",
                      double(std::uint64_t(1) << k) * scale);
        // This bucket's own octave is [2^(k-1), 2^k) -- exemplar
        // slot k - kSubBits - 1 -- reconstructed at the octave
        // midpoint (the first bucket covers the whole linear region,
        // midpoint 2^kSubBits).
        const std::size_t ex = std::size_t(k - Histogram::kSubBits - 1);
        const double mid =
            k == Histogram::kSubBits + 1
                ? double(std::uint64_t(1) << Histogram::kSubBits)
                : 1.5 * double(std::uint64_t(1) << (k - 1));
        bucketSample(name + "_bucket", joinLabels(labels, le),
                     double(cum), h.exemplar(ex), mid * scale);
        lastK = k;
        if (cum >= tracked)
            break;
    }
    // Overflow saturation: when samples exceeded the trackable range,
    // close the finite series at the 2^(kMaxBit+1) bound so a
    // quantile that lands in the overflow saturates to the trackable
    // max (matching Histogram::percentile) instead of whatever octave
    // the tracked samples happened to stop at.
    if (h.overflow() > 0 && lastK < Histogram::kMaxBit + 1) {
        char le[48];
        std::snprintf(
            le, sizeof(le), "le=\"%.10g\"",
            double(std::uint64_t(1) << (Histogram::kMaxBit + 1)) *
                scale);
        sample(name + "_bucket", joinLabels(labels, le),
               double(tracked));
    }
    bucketSample(name + "_bucket", joinLabels(labels, "le=\"+Inf\""),
                 double(total),
                 h.exemplar(Histogram::kExemplars - 1),
                 double(Histogram::maxTrackable()) * scale);
    sample(name + "_sum", labels, double(h.sum()) * scale);
    sample(name + "_count", labels, double(total));
}

void
MetricsText::histogramNs(const std::string &name,
                         const std::string &labels,
                         const Histogram &h)
{
    histogramScaled(name, labels, h, 1e-9);
}

void
MetricsText::histogramRaw(const std::string &name,
                          const std::string &labels,
                          const Histogram &h)
{
    histogramScaled(name, labels, h, 1.0);
}

bool
parseExposition(const std::string &text, stats::Snapshot &out)
{
    std::istringstream in(text);
    std::string line;
    bool ok = true;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        // Strip an OpenMetrics exemplar suffix (" # {...} value")
        // before splitting on the last space -- the exemplar's value
        // would otherwise be parsed as the sample.
        const std::size_t ex = line.find(" # ");
        if (ex != std::string::npos)
            line.erase(ex);
        const std::size_t sp = line.find_last_of(' ');
        if (sp == std::string::npos || sp == 0 ||
            sp + 1 >= line.size()) {
            ok = false;
            continue;
        }
        const std::string key = line.substr(0, sp);
        const std::string val = line.substr(sp + 1);
        char *end = nullptr;
        const double v = std::strtod(val.c_str(), &end);
        if (end == val.c_str() || *end != '\0') {
            ok = false;
            continue;
        }
        out[key] = v;
    }
    return ok;
}

double
quantileFromBuckets(const std::map<double, double> &lesToCum, double p)
{
    if (lesToCum.empty())
        return 0.0;
    const double total = lesToCum.rbegin()->second;
    if (total <= 0.0)
        return 0.0;
    const double target = p * total;
    double lastFinite = 0.0;
    for (const auto &[le, cum] : lesToCum) {
        if (std::isinf(le))
            break;
        lastFinite = le;
        if (cum >= target)
            return le;
    }
    return lastFinite;
}

} // namespace lp::obs
