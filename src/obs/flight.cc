#include "obs/flight.hh"

#include <atomic>
#include <cstring>
#include <ctime>

namespace lp::obs
{

namespace
{

/** splitmix64 finalizer; the repo's standard cheap mixer. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
wallNs()
{
    struct timespec ts{};
    ::clock_gettime(CLOCK_REALTIME, &ts);
    return std::uint64_t(ts.tv_sec) * 1000000000ULL +
           std::uint64_t(ts.tv_nsec);
}

} // namespace

std::uint32_t
FlightRing::roundEvents(std::uint32_t events)
{
    std::uint32_t cap = kMinEvents;
    while (cap < events)
        cap <<= 1;
    return cap;
}

std::uint64_t
FlightRing::slotCksum(const FlightSlot &s)
{
    std::uint64_t h = mix64(s.seq);
    h = mix64(h ^ s.tsNs);
    h = mix64(h ^ s.durNs);
    h = mix64(h ^ s.arg);
    h = mix64(h ^ s.flowId);
    h = mix64(h ^ (std::uint64_t(s.nameId) << 32 | s.tid));
    return h;
}

std::uint64_t
FlightRing::headerCksum(const FlightHeader &h)
{
    std::uint64_t c = mix64(h.magic);
    c = mix64(c ^ h.gen);
    c = mix64(c ^ h.sealedSeq);
    c = mix64(c ^ h.tsAnchorNs);
    c = mix64(c ^ h.wallAnchorNs);
    c = mix64(c ^ (std::uint64_t(h.tid) << 32 | h.capacity));
    return c;
}

FlightRing::FlightRing(pmem::PersistentArena &arena,
                       std::uint32_t events, std::uint32_t tid)
    : tid_(tid)
{
    cap_ = roundEvents(events);
    mask_ = cap_ - 1;
    hdr_ = static_cast<FlightHeader *>(arena.allocRaw(bytesFor(cap_)));
    slots_ = reinterpret_cast<FlightSlot *>(hdr_ + 2);
    // Adopt the highest valid prior generation so this incarnation's
    // seals always win the recovery arbitration, then claim the ring
    // with an empty seal: a crash before our first real seal must
    // recover "nothing sealed this run", never a splice of two runs.
    for (int i = 0; i < 2; ++i) {
        const FlightHeader &h = hdr_[i];
        if (h.magic == kMagic && h.cksum == headerCksum(h) &&
            h.gen > gen_)
            gen_ = h.gen;
    }
    seal();
}

std::uint32_t
FlightRing::nameIdOf(const char *name)
{
    if (name == nullptr)
        return 0;
    for (std::uint32_t i = 0; i < memoUsed_; ++i)
        if (memo_[i].ptr == name)
            return memo_[i].id;
    std::uint32_t id = 0;
    for (std::uint32_t i = 1; i < kFlightNameCount; ++i) {
        if (std::strcmp(kFlightNames[i], name) == 0) {
            id = i;
            break;
        }
    }
    if (memoUsed_ < kFlightNameCount)
        memo_[memoUsed_++] = {name, id};
    return id;
}

void
FlightRing::record(const TraceEvent &e)
{
    FlightSlot &s = slots_[seq_ & mask_];
    s.seq = seq_;
    s.tsNs = e.tsNs;
    s.durNs = e.durNs;
    s.arg = e.arg;
    s.flowId = e.flowId;
    s.nameId = nameIdOf(e.name);
    s.tid = e.tid;
    s.cksum = slotCksum(s);
    ++seq_;
}

void
FlightRing::seal()
{
    // Compiler barrier only: under SIGKILL every store the thread
    // executed is coherent in the shared mapping, so ordering the
    // header after the slots in the instruction stream is all the
    // watermark needs. (Power-loss would need clwb+sfence here.)
    std::atomic_signal_fence(std::memory_order_release);
    FlightHeader &h = hdr_[(gen_ + 1) & 1];
    h.magic = kMagic;
    h.gen = gen_ + 1;
    h.sealedSeq = seq_;
    h.tsAnchorNs = nowNs();
    h.wallAnchorNs = wallNs();
    h.tid = tid_;
    h.capacity = cap_;
    h.cksum = headerCksum(h);
    ++gen_;
}

FlightRecovered
FlightRing::recover(const std::uint8_t *base, std::size_t bytes)
{
    FlightRecovered out;
    if (base == nullptr || bytes < 2 * sizeof(FlightHeader))
        return out;
    FlightHeader hdr[2];
    std::memcpy(hdr, base, sizeof(hdr));
    const FlightHeader *best = nullptr;
    for (const FlightHeader &h : hdr) {
        if (h.magic != kMagic || h.cksum != headerCksum(h))
            continue;
        if (h.capacity < kMinEvents ||
            (h.capacity & (h.capacity - 1)) != 0)
            continue;
        if (bytes < (2 + std::size_t(h.capacity)) * sizeof(FlightSlot))
            continue;
        if (best == nullptr || h.gen > best->gen)
            best = &h;
    }
    if (best == nullptr)
        return out;
    out.valid = true;
    out.gen = best->gen;
    out.sealedSeq = best->sealedSeq;
    out.tsAnchorNs = best->tsAnchorNs;
    out.wallAnchorNs = best->wallAnchorNs;
    out.tid = best->tid;
    out.capacity = best->capacity;

    const auto *slots =
        reinterpret_cast<const FlightSlot *>(base) + 2;
    const std::uint64_t cap = best->capacity;
    const std::uint64_t hi = best->sealedSeq;
    const std::uint64_t lo = hi > cap ? hi - cap : 0;
    out.events.reserve(std::size_t(hi - lo));
    for (std::uint64_t seq = lo; seq < hi; ++seq) {
        FlightSlot s;
        std::memcpy(&s, &slots[seq & (cap - 1)], sizeof(s));
        // Two independent gates: the embedded sequence pins the slot
        // to this exact position of this exact generation of the
        // ring (a wrap victim or a previous incarnation's leftover
        // carries a different seq), and the checksum rejects torn
        // writes.
        if (s.seq != seq || s.cksum != slotCksum(s)) {
            ++out.rejected;
            continue;
        }
        const char *name =
            s.nameId < kFlightNameCount ? kFlightNames[s.nameId]
                                        : kFlightNames[0];
        out.events.push_back(
            {name, s.tid, s.tsNs, s.durNs, s.arg, s.flowId});
    }
    return out;
}

} // namespace lp::obs
