#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <map>

namespace lp::obs
{

TraceCollector::TraceCollector()
{
    nowNs(); // pin the process clock epoch before any producer runs
}

TraceRing *
TraceCollector::ring(const std::string &threadName, std::uint32_t tid,
                     std::size_t capacity)
{
    std::lock_guard<std::mutex> lk(mu_);
    tracks_.push_back({threadName, std::make_unique<TraceRing>(capacity)});
    tracks_.back().ring->setTid(tid);
    return tracks_.back().ring.get();
}

std::uint64_t
TraceCollector::totalDropped() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t n = 0;
    for (const Track &t : tracks_)
        n += t.ring->dropped();
    return n;
}

bool
TraceCollector::writeChromeTrace(const std::string &path)
{
    std::lock_guard<std::mutex> lk(mu_);

    std::vector<TraceEvent> events;
    for (Track &t : tracks_) {
        TraceEvent e;
        while (t.ring->pop(e))
            events.push_back(e);
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.tsNs < b.tsNs;
              });

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;

    std::fputs("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [",
               f);
    bool first = true;
    const auto sep = [&] {
        std::fputs(first ? "\n" : ",\n", f);
        first = false;
    };
    for (const Track &t : tracks_) {
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                     "\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"%s\"}}",
                     t.ring->tid(), t.name.c_str());
    }
    for (const TraceEvent &e : events) {
        sep();
        // Chrome trace timestamps are microseconds; three decimals
        // keep the original nanosecond resolution.
        if (e.durNs == 0) {
            std::fprintf(f,
                         "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,"
                         "\"ts\":%.3f,\"s\":\"t\",\"name\":\"%s\","
                         "\"args\":{\"v\":%llu}}",
                         e.tid, double(e.tsNs) / 1e3, e.name,
                         static_cast<unsigned long long>(e.arg));
        } else {
            std::fprintf(f,
                         "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                         "\"ts\":%.3f,\"dur\":%.3f,\"name\":\"%s\","
                         "\"args\":{\"v\":%llu}}",
                         e.tid, double(e.tsNs) / 1e3,
                         double(e.durNs) / 1e3, e.name,
                         static_cast<unsigned long long>(e.arg));
        }
    }
    // Flow events: every group of >= 2 events sharing a nonzero
    // flowId becomes one s -> t* -> f arc named "req", so a
    // request's parse -> queue -> commit-wait -> ack path renders as
    // a connected line across thread tracks in Perfetto. Each flow
    // point is timestamped at the midpoint of the span it binds to,
    // which is how Perfetto associates the arrow with that slice.
    // Emitting from complete groups only -- never a lone "s" -- keeps
    // begin/end pairing intact even when ring overflow dropped part
    // of a request's spans.
    {
        std::map<std::uint64_t, std::vector<const TraceEvent *>> flows;
        for (const TraceEvent &e : events)
            if (e.flowId != 0)
                flows[e.flowId].push_back(&e);
        for (const auto &[id, evs] : flows) {
            if (evs.size() < 2)
                continue;
            for (std::size_t i = 0; i < evs.size(); ++i) {
                const TraceEvent &e = *evs[i];
                const double ts =
                    (double(e.tsNs) + double(e.durNs) / 2.0) / 1e3;
                const char *ph = i == 0 ? "s"
                                 : i + 1 == evs.size() ? "f"
                                                       : "t";
                sep();
                std::fprintf(
                    f,
                    "{\"ph\":\"%s\",\"pid\":1,\"tid\":%u,"
                    "\"ts\":%.3f,\"cat\":\"req\",\"name\":\"req\","
                    "\"id\":\"0x%llx\"%s}",
                    ph, e.tid, ts,
                    static_cast<unsigned long long>(id),
                    ph[0] == 'f' ? ",\"bp\":\"e\"" : "");
            }
        }
    }
    std::fputs("\n],\n\"otherData\": {", f);
    first = true;
    for (const Track &t : tracks_) {
        sep();
        std::fprintf(f, "\"dropped_%s\": %llu", t.name.c_str(),
                     static_cast<unsigned long long>(
                         t.ring->dropped()));
    }
    std::fputs("\n}\n}\n", f);
    return std::fclose(f) == 0;
}

} // namespace lp::obs
