#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>

namespace lp::obs
{

TraceCollector::TraceCollector()
{
    nowNs(); // pin the process clock epoch before any producer runs
}

TraceRing *
TraceCollector::ring(const std::string &threadName, std::uint32_t tid,
                     std::size_t capacity)
{
    std::lock_guard<std::mutex> lk(mu_);
    tracks_.push_back({threadName, std::make_unique<TraceRing>(capacity)});
    tracks_.back().ring->setTid(tid);
    return tracks_.back().ring.get();
}

std::uint64_t
TraceCollector::totalDropped() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t n = 0;
    for (const Track &t : tracks_)
        n += t.ring->dropped();
    return n;
}

bool
TraceCollector::writeChromeTrace(const std::string &path)
{
    std::lock_guard<std::mutex> lk(mu_);

    std::vector<TraceEvent> events;
    for (Track &t : tracks_) {
        TraceEvent e;
        while (t.ring->pop(e))
            events.push_back(e);
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.tsNs < b.tsNs;
              });

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;

    std::fputs("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [",
               f);
    bool first = true;
    const auto sep = [&] {
        std::fputs(first ? "\n" : ",\n", f);
        first = false;
    };
    for (const Track &t : tracks_) {
        sep();
        std::fprintf(f,
                     "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                     "\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"%s\"}}",
                     t.ring->tid(), t.name.c_str());
    }
    for (const TraceEvent &e : events) {
        sep();
        // Chrome trace timestamps are microseconds; three decimals
        // keep the original nanosecond resolution.
        if (e.durNs == 0) {
            std::fprintf(f,
                         "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,"
                         "\"ts\":%.3f,\"s\":\"t\",\"name\":\"%s\","
                         "\"args\":{\"v\":%llu}}",
                         e.tid, double(e.tsNs) / 1e3, e.name,
                         static_cast<unsigned long long>(e.arg));
        } else {
            std::fprintf(f,
                         "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                         "\"ts\":%.3f,\"dur\":%.3f,\"name\":\"%s\","
                         "\"args\":{\"v\":%llu}}",
                         e.tid, double(e.tsNs) / 1e3,
                         double(e.durNs) / 1e3, e.name,
                         static_cast<unsigned long long>(e.arg));
        }
    }
    std::fputs("\n],\n\"otherData\": {", f);
    first = true;
    for (const Track &t : tracks_) {
        sep();
        std::fprintf(f, "\"dropped_%s\": %llu", t.name.c_str(),
                     static_cast<unsigned long long>(
                         t.ring->dropped()));
    }
    std::fputs("\n}\n}\n", f);
    return std::fclose(f) == 0;
}

} // namespace lp::obs
