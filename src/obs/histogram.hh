/**
 * @file
 * obs::Histogram -- a log-linear latency histogram (HdrHistogram
 * style) sized for nanosecond samples.
 *
 * Bucket layout: values below 64 get one exact bucket each (the
 * linear region); above that, every power-of-two octave is split into
 * 32 equal sub-buckets. Reconstructing a sample as its bucket
 * midpoint is therefore off by at most half a sub-bucket width,
 * i.e. a relative error of at most 1/64 = 1.5625%, comfortably inside
 * the 2.5% budget the benches quote percentiles under. Values at or
 * above 2^48 ns (~3.2 days) land in a single overflow bucket.
 *
 * The record path is two relaxed fetch_adds into fixed-size atomic
 * arrays -- no allocation, no locks, no branches beyond the bucket
 * index math -- so histograms stay on in production builds (FliT
 * makes the same always-on argument for persistency instrumentation).
 *
 * Concurrency: writers use relaxed atomic increments, so a single
 * writer is race-free and any other thread may concurrently read
 * (merge(), percentile(), the server's METRICS scrape) and observe a
 * consistent-enough snapshot: counts never tear, though a reader
 * racing a writer may see a sample in count() before its bucket.
 * Histograms are fixed-size and non-copyable; owners that need N of
 * them use a std::deque or construct-in-place container.
 */

#ifndef LP_OBS_HISTOGRAM_HH
#define LP_OBS_HISTOGRAM_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "obs/time.hh"

namespace lp::obs
{

class Histogram
{
  public:
    /** Sub-buckets per octave: 2^5 = 32 -> <=1.5625% midpoint error. */
    static constexpr int kSubBits = 5;
    static constexpr std::size_t kSub = std::size_t(1) << kSubBits;

    /** Highest tracked bit: values >= 2^48 ns go to the overflow. */
    static constexpr int kMaxBit = 47;

    /** Exact buckets 0..63, then 32 per octave for bits 6..47. */
    static constexpr std::size_t kBuckets =
        2 * kSub + std::size_t(kMaxBit - kSubBits) * kSub;

    static constexpr std::uint64_t
    maxTrackable()
    {
        return (std::uint64_t(1) << (kMaxBit + 1)) - 1;
    }

    /**
     * Exemplar octaves: one slot per power-of-two value range
     * (octave k holds values with bit_width k, i.e. [2^(k-1), 2^k)),
     * plus slot 0 for the linear region and a last slot for
     * overflow. One octave maps onto one exposition bucket bound, so
     * a scraped `le="2^k"` line can carry the freshest trace id that
     * landed under it.
     */
    static constexpr std::size_t kExemplars =
        std::size_t(kMaxBit) + 3;

    /** Exemplar slot for value @p v. */
    static std::size_t
    exemplarIndexOf(std::uint64_t v)
    {
        if (v > maxTrackable())
            return kExemplars - 1;
        const int w = std::bit_width(v);
        return w <= kSubBits + 1 ? 0 : std::size_t(w - kSubBits - 1);
    }

    Histogram() = default;
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one sample (nanoseconds). Never allocates. */
    void
    record(std::uint64_t v)
    {
        sum_.fetch_add(v, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        if (v > maxTrackable()) {
            overflow_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        buckets_[indexOf(v)].fetch_add(1, std::memory_order_relaxed);
    }

    /**
     * Keep @p traceId as the freshest exemplar for @p v's octave.
     * One relaxed store into a single atomic word: a concurrent
     * scrape reads either the old id or the new one, never a torn
     * splice -- which is why the exemplar is the trace id alone and
     * the scrape reconstructs the value as the bucket bound (a pair
     * would need a seqlock to avoid tearing). Call after record(),
     * only when a trace id exists; ids are never zero (traceIdOf),
     * so zero means "no exemplar yet".
     */
    void
    recordExemplar(std::uint64_t v, std::uint64_t traceId)
    {
        exemplars_[exemplarIndexOf(v)].store(
            traceId, std::memory_order_relaxed);
    }

    /** Latest trace id for exemplar slot @p i; 0 = none. */
    std::uint64_t
    exemplar(std::size_t i) const
    {
        return i < kExemplars
                   ? exemplars_[i].load(std::memory_order_relaxed)
                   : 0;
    }

    /** Add @p other's counts into this histogram. */
    void
    merge(const Histogram &other)
    {
        for (std::size_t i = 0; i < kBuckets; ++i) {
            const auto n =
                other.buckets_[i].load(std::memory_order_relaxed);
            if (n)
                buckets_[i].fetch_add(n, std::memory_order_relaxed);
        }
        sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        overflow_.fetch_add(
            other.overflow_.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        for (std::size_t i = 0; i < kExemplars; ++i) {
            const auto id =
                other.exemplars_[i].load(std::memory_order_relaxed);
            if (id)
                exemplars_[i].store(id, std::memory_order_relaxed);
        }
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    overflow() const
    {
        return overflow_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bucketCount(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Inclusive lower bound of bucket @p i. */
    static std::uint64_t
    bucketLower(std::size_t i)
    {
        if (i < 2 * kSub)
            return i;
        const int bit = int((i - 2 * kSub) / kSub) + kSubBits + 1;
        const std::uint64_t sub = (i - 2 * kSub) % kSub;
        return (std::uint64_t(1) << bit) +
               (sub << (bit - kSubBits));
    }

    /** Width of bucket @p i (its value range covers [lower, lower+width)). */
    static std::uint64_t
    bucketWidth(std::size_t i)
    {
        if (i < 2 * kSub)
            return 1;
        const int bit = int((i - 2 * kSub) / kSub) + kSubBits + 1;
        return std::uint64_t(1) << (bit - kSubBits);
    }

    /**
     * The value below which a fraction @p p of samples fall,
     * reconstructed as the containing bucket's midpoint (overflow
     * samples report maxTrackable()). @p p in [0, 1].
     */
    double
    percentile(double p) const
    {
        const std::uint64_t total = count();
        if (total == 0)
            return 0.0;
        std::uint64_t target =
            static_cast<std::uint64_t>(p * double(total) + 0.5);
        if (target < 1)
            target = 1;
        if (target > total)
            target = total;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            cum += buckets_[i].load(std::memory_order_relaxed);
            if (cum >= target)
                return double(bucketLower(i)) +
                       double(bucketWidth(i)) / 2.0;
        }
        return double(maxTrackable());
    }

    /** Percentile digest for reports (all values in nanoseconds). */
    struct Summary
    {
        std::uint64_t count = 0;
        double meanNs = 0.0;
        double p50Ns = 0.0;
        double p90Ns = 0.0;
        double p99Ns = 0.0;
        double p999Ns = 0.0;
    };

    Summary
    summary() const
    {
        Summary s;
        s.count = count();
        s.meanNs = s.count ? double(sum()) / double(s.count) : 0.0;
        s.p50Ns = percentile(0.50);
        s.p90Ns = percentile(0.90);
        s.p99Ns = percentile(0.99);
        s.p999Ns = percentile(0.999);
        return s;
    }

  private:
    /** Bucket index of a trackable value. */
    static std::size_t
    indexOf(std::uint64_t v)
    {
        if (v < 2 * kSub)
            return std::size_t(v);
        const int bit = std::bit_width(v) - 1;
        const std::uint64_t sub =
            (v >> (bit - kSubBits)) & (kSub - 1);
        return 2 * kSub +
               std::size_t(bit - kSubBits - 1) * kSub +
               std::size_t(sub);
    }

    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::array<std::atomic<std::uint64_t>, kExemplars> exemplars_{};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> overflow_{0};
};

/**
 * RAII timer: records nowNs() elapsed into a histogram on scope
 * exit. Null-safe so call sites whose obs bundle may be absent pay
 * one branch instead of needing their own guard.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram *h) : h_(h), t0_(h ? nowNs() : 0)
    {
    }

    explicit ScopedTimer(Histogram &h) : ScopedTimer(&h) {}

    ~ScopedTimer()
    {
        if (h_)
            h_->record(nowNs() - t0_);
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram *h_;
    std::uint64_t t0_;
};

} // namespace lp::obs

#endif // LP_OBS_HISTOGRAM_HH
