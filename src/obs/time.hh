/**
 * @file
 * Process-relative monotonic clock for the observability layer.
 *
 * Every timestamp obs records -- histogram samples, trace-span
 * begin/end, server request stage marks -- comes from this one
 * function so that values from different threads land on a shared
 * timeline. The epoch is the first call in the process (a magic
 * static), which keeps the numbers small enough that a trace file's
 * microsecond doubles never lose nanosecond precision.
 */

#ifndef LP_OBS_TIME_HH
#define LP_OBS_TIME_HH

#include <chrono>
#include <cstdint>

namespace lp::obs
{

/** Monotonic nanoseconds since the first call in this process. */
inline std::uint64_t
nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - epoch)
            .count());
}

} // namespace lp::obs

#endif // LP_OBS_TIME_HH
