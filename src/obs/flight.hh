/**
 * @file
 * obs::FlightRing -- a crash-persistent flight recorder: a bounded,
 * wrapping event ring carved out of the shard's pmem arena and
 * written with the repo's own Lazy Persistency discipline.
 *
 * Hot path: record() copies one TraceEvent into the next 64B slot
 * with PLAIN STORES -- no flush, no fence, no allocation -- and seals
 * nothing. Each slot carries its sequence number and a mix64
 * checksum over its payload, exactly the journal-record idiom of
 * store/backend_lp.hh. Durability rides the page cache: under the
 * repo's process-crash (SIGKILL) failure envelope the MAP_SHARED
 * mapping IS the persistence domain, so everything the thread stored
 * before dying is recoverable. (A power-loss envelope would need a
 * clwb per slot line plus an sfence before each seal; the seal hook
 * is where that would go.)
 *
 * Seal: periodically -- the server does it when a shard's committed
 * epoch advances -- seal() publishes a watermark header naming the
 * sealed sequence prefix plus wall-clock/steady-clock anchors. The
 * two header copies alternate by generation parity, so a crash that
 * tears one seal always leaves the previous one intact.
 *
 * Recovery (postmortem, after SIGKILL): recover() validates the
 * header pair, picks the newest valid seal, and accepts exactly the
 * slots whose embedded sequence matches the position implied by the
 * sealed watermark and whose checksum validates. Slots from the torn
 * unsealed tail, half-overwritten wrap victims, and stale bytes from
 * an earlier incarnation all fail one of the two tests and are
 * counted, not returned.
 *
 * Placement contract: the server allocates the FlightRing FIRST in
 * each shard arena, so in every shard-N.lpdb file the region starts
 * at the arena's base offset (64). `lazyper_cli postmortem` depends
 * on this: it can find and decode the ring from the raw file alone,
 * with no knowledge of the store's backend or capacity configuration
 * (the ring's own header records its slot count).
 *
 * Event names cross the crash as small ids resolved against the
 * fixed kFlightNames table -- a const char* from a dead process
 * would be meaningless.
 */

#ifndef LP_OBS_FLIGHT_HH
#define LP_OBS_FLIGHT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace.hh"
#include "pmem/arena.hh"

namespace lp::obs
{

/**
 * Span/instant names that survive a crash. Appending is fine; never
 * reorder or remove -- recovered nameIds index this table. Id 0
 * renders unknown names.
 */
constexpr const char *kFlightNames[] = {
    "?",           "parse",        "queue",
    "commit_wait", "ack",          "epoch_commit",
    "fold",        "scrub",        "recover_shard",
    "deadline_commit",             "wal_commit",
    "crash",       "conn",         "txn_commit",
    "stage",       "drain",
};
constexpr std::uint32_t kFlightNameCount =
    sizeof(kFlightNames) / sizeof(kFlightNames[0]);

/** One persistent event slot; exactly one cache block. */
struct FlightSlot
{
    std::uint64_t seq;
    std::uint64_t tsNs;
    std::uint64_t durNs;
    std::uint64_t arg;
    std::uint64_t flowId;
    std::uint32_t nameId;
    std::uint32_t tid;
    std::uint64_t cksum;
    std::uint64_t pad;
};
static_assert(sizeof(FlightSlot) == 64, "slot must be one block");

/** Seal watermark; two copies alternate by generation parity. */
struct FlightHeader
{
    std::uint64_t magic;
    std::uint64_t gen;          ///< seal generation, monotonic
    std::uint64_t sealedSeq;    ///< slots with seq < this are sealed
    std::uint64_t tsAnchorNs;   ///< obs::nowNs() at seal
    std::uint64_t wallAnchorNs; ///< CLOCK_REALTIME ns at seal
    std::uint32_t tid;
    std::uint32_t capacity;     ///< slot count (power of two)
    std::uint64_t cksum;
    std::uint64_t pad;
};
static_assert(sizeof(FlightHeader) == 64, "header must be one block");

/** What recover() salvaged from a dead ring. */
struct FlightRecovered
{
    bool valid = false;         ///< a checksum-clean seal was found
    std::uint64_t gen = 0;
    std::uint64_t sealedSeq = 0;
    std::uint64_t tsAnchorNs = 0;
    std::uint64_t wallAnchorNs = 0;
    std::uint32_t tid = 0;
    std::uint32_t capacity = 0;
    std::uint64_t rejected = 0; ///< torn/stale slots discarded
    /// Checksum-clean sealed events, names resolved via kFlightNames.
    std::vector<TraceEvent> events;
};

class FlightRing : public TraceSink
{
  public:
    static constexpr std::uint64_t kMagic = 0x4c50464c54303156ULL;
    static constexpr std::uint32_t kMinEvents = 8;

    /** Slot count after power-of-two rounding (minimum 8). */
    static std::uint32_t roundEvents(std::uint32_t events);

    /** Arena bytes the ring occupies: two headers + the slots. */
    static std::size_t
    bytesFor(std::uint32_t events)
    {
        return (2 + std::size_t(roundEvents(events))) *
               sizeof(FlightSlot);
    }

    /**
     * Carve the ring out of @p arena (the next allocation) and start
     * a fresh generation: any valid prior seal's generation is read
     * first, then an empty seal at gen+1 claims the ring for this
     * incarnation. Run `postmortem` BEFORE restarting a crashed
     * store -- reconstruction overwrites the ring.
     */
    FlightRing(pmem::PersistentArena &arena, std::uint32_t events,
               std::uint32_t tid);

    /** TraceSink: persist one event. Plain stores, never allocates. */
    void record(const TraceEvent &e) override;

    /**
     * Publish the watermark covering everything record()ed so far.
     * One header write; rides the epoch-commit cadence.
     */
    void seal();

    std::uint64_t recorded() const { return seq_; }
    std::uint32_t capacity() const { return cap_; }
    const void *raw() const { return hdr_; }

    /**
     * Decode a (possibly dead) ring image from raw bytes: @p base
     * must point at the two headers (arena offset 64 in a shard
     * file); @p bytes bounds the readable region.
     */
    static FlightRecovered recover(const std::uint8_t *base,
                                   std::size_t bytes);

    /** Checksums, shared with recover() and the tests. */
    static std::uint64_t slotCksum(const FlightSlot &s);
    static std::uint64_t headerCksum(const FlightHeader &h);

  private:
    std::uint32_t nameIdOf(const char *name);

    FlightHeader *hdr_;  ///< two headers, [gen & 1] is next
    FlightSlot *slots_;
    std::uint32_t cap_ = 0;
    std::uint32_t tid_ = 0;
    std::uint64_t mask_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t gen_ = 0;

    /// Pointer-identity memo for name lookups: span names are
    /// string literals, so after the first strcmp resolution a
    /// pointer compare suffices.
    struct NameMemo
    {
        const char *ptr = nullptr;
        std::uint32_t id = 0;
    };
    NameMemo memo_[kFlightNameCount];
    std::uint32_t memoUsed_ = 0;
};

} // namespace lp::obs

#endif // LP_OBS_FLIGHT_HH
