/**
 * @file
 * Prometheus text exposition: builder and parser.
 *
 * MetricsText renders counters, gauges, and obs::Histogram bucket
 * series in the Prometheus text format (one "# TYPE" line per metric
 * name, cumulative "le" buckets in seconds plus +Inf/_sum/_count for
 * histograms). The server answers the METRICS protocol op with this
 * text; parseExposition is the inverse used by `lp top` and the
 * integration tests, flattening an exposition back into a
 * stats::Snapshot keyed by `name{labels}`.
 */

#ifndef LP_OBS_METRICS_HH
#define LP_OBS_METRICS_HH

#include <set>
#include <string>

#include "obs/histogram.hh"
#include "stats/stats.hh"

namespace lp::obs
{

class MetricsText
{
  public:
    /** Append `name{labels} v`; @p labels like `shard="0"`, may be empty. */
    void counter(const std::string &name, const std::string &labels,
                 double v);
    void gauge(const std::string &name, const std::string &labels,
               double v);

    /**
     * Append a histogram of nanosecond samples as `<name>_bucket`
     * cumulative octave buckets (le in SECONDS), `<name>_sum`
     * (seconds) and `<name>_count`. Only octaves up to the highest
     * non-empty one are emitted; `le="+Inf"` always equals _count.
     * When the histogram recorded overflow samples (>= 2^48 ns) the
     * finite series is closed at the 2^48 bound so bucket quantiles
     * saturate at the trackable max. Buckets whose octave holds an
     * exemplar trace id carry an OpenMetrics exemplar suffix
     * (`# {trace_id="<16 hex>"} <octave midpoint>`).
     */
    void histogramNs(const std::string &name,
                     const std::string &labels, const Histogram &h);

    /**
     * Like histogramNs but for unitless samples (iovec counts,
     * record counts): le bounds and _sum stay in the recorded
     * units instead of being scaled to seconds.
     */
    void histogramRaw(const std::string &name,
                      const std::string &labels, const Histogram &h);

    const std::string &str() const { return out_; }

  private:
    void histogramScaled(const std::string &name,
                         const std::string &labels,
                         const Histogram &h, double scale);
    void typeLine(const std::string &name, const char *type);
    void sample(const std::string &name, const std::string &labels,
                double v);
    void bucketSample(const std::string &name,
                      const std::string &labels, double v,
                      std::uint64_t exemplarId, double exemplarValue);

    std::string out_;
    std::set<std::string> typed_;
};

/**
 * Parse a text exposition into @p out, keyed `name{labels}` (or bare
 * `name`). Comment/blank lines are skipped; OpenMetrics exemplar
 * suffixes (" # {...} v") are stripped. False if any remaining line
 * is not `<key> <number>`.
 */
bool parseExposition(const std::string &text, stats::Snapshot &out);

/**
 * Quantile from a parsed `_bucket` series: @p lesToCum maps each
 * bucket's le bound to its cumulative count (+Inf as infinity).
 * Returns the smallest le bound covering fraction @p p, i.e. an
 * upper bound on the quantile. A quantile that lands past the last
 * finite bound (overflow samples, >= 2^48 ns) saturates to that
 * last finite bound -- the trackable max when the exposition came
 * from MetricsText. 0 when empty.
 */
double quantileFromBuckets(
    const std::map<double, double> &lesToCum, double p);

} // namespace lp::obs

#endif // LP_OBS_METRICS_HH
