#include "stats/table.hh"

#include <cstdio>
#include <sstream>

namespace lp::stats
{

Table::Table(std::vector<std::string> hdrs)
    : headers(std::move(hdrs))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(headers.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

std::string
Table::ratio(double v, int precision)
{
    return num(v, precision) + "x";
}

std::string
Table::percent(double v, int precision)
{
    return num(v * 100.0, precision) + "%";
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "  " << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << '\n';
    };

    emit_row(headers);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
    for (const auto &row : rows)
        emit_row(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace lp::stats
