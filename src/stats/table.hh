/**
 * @file
 * Fixed-width text table printer used by the bench harness.
 *
 * Every bench binary prints the rows of the paper table/figure it
 * reproduces; this formatter keeps their output uniform and legible.
 */

#ifndef LP_STATS_TABLE_HH
#define LP_STATS_TABLE_HH

#include <string>
#include <vector>

namespace lp::stats
{

/** Builds and prints a simple aligned text table. */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; cells beyond the header count are dropped. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 3);

    /** Convenience: format a ratio as "1.23x". */
    static std::string ratio(double v, int precision = 3);

    /** Convenience: format a fraction as a percentage "4.5%". */
    static std::string percent(double v, int precision = 1);

    /** Render the table to a string (trailing newline included). */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace lp::stats

#endif // LP_STATS_TABLE_HH
