/**
 * @file
 * Minimal JSON emission for statistics snapshots.
 *
 * Benches and the CLI can dump machine snapshots as JSON so external
 * tooling (plotting scripts, regression dashboards) can consume runs
 * without parsing the human-readable tables. Only the subset needed
 * for that is implemented: objects of string -> (number | string |
 * array | nested object), with correct string escaping and
 * locale-proof number formatting.
 */

#ifndef LP_STATS_JSON_HH
#define LP_STATS_JSON_HH

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "stats/stats.hh"

namespace lp::stats
{

/** A JSON value: number, string, array, or object. */
class JsonValue
{
  public:
    using Object = std::map<std::string, JsonValue>;
    using Array = std::vector<JsonValue>;

    JsonValue() : value(0.0) {}
    JsonValue(double v) : value(v) {}
    JsonValue(int v) : value(static_cast<double>(v)) {}
    JsonValue(std::uint64_t v) : value(static_cast<double>(v)) {}
    JsonValue(bool v) : value(v ? 1.0 : 0.0) {}
    JsonValue(const char *v) : value(std::string(v)) {}
    JsonValue(std::string v) : value(std::move(v)) {}
    JsonValue(Object v) : value(std::move(v)) {}
    JsonValue(Array v) : value(std::move(v)) {}

    /**
     * Wrap already-rendered JSON text so it splices into the output
     * verbatim instead of being escaped as a string. The caller
     * vouches that @p text is well-formed JSON (e.g. another
     * component's rendered stats report).
     */
    static JsonValue
    raw(std::string text)
    {
        JsonValue v;
        v.value = Raw{std::move(text)};
        return v;
    }

    /** Render to compact JSON text. */
    std::string render() const;

    /** Escape a string per RFC 8259. */
    static std::string escape(const std::string &s);

    /** Locale-independent number rendering. */
    static std::string number(double v);

  private:
    struct Raw
    {
        std::string text;
    };

    std::variant<double, std::string, Object, Array, Raw> value;
};

/** Convert a stats snapshot into a JSON object value. */
JsonValue::Object toJson(const Snapshot &snap);

} // namespace lp::stats

#endif // LP_STATS_JSON_HH
