/**
 * @file
 * Lightweight statistics primitives.
 *
 * The simulator exposes its measurements as plain named counters and
 * scalar trackers collected into a Snapshot. Benches take snapshots
 * before/after a run and print deltas; tests assert on them directly.
 */

#ifndef LP_STATS_STATS_HH
#define LP_STATS_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace lp::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator+=(std::uint64_t n) { value_ += n; }
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Tracks the maximum of a stream of samples. */
class Maximum
{
  public:
    void
    sample(std::uint64_t v)
    {
        if (v > value_)
            value_ = v;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulates a sum and a count, exposing the mean. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** A named bag of scalar values, used to diff runs in benches/tests. */
using Snapshot = std::map<std::string, double>;

/**
 * Per-key difference @p after - @p before for delta printing.
 *
 * Keys that went BACKWARDS are skipped entirely: the emitters only
 * ever diff monotonic counters, so a negative delta means the source
 * was reset between snapshots (server restart, stats reset) and any
 * "delta" would be the nonsense difference of two unrelated epochs --
 * the unsigned-arithmetic version of this bug printed 2^64-ish
 * values. Keys new in @p after diff against zero.
 */
inline Snapshot
snapshotDelta(const Snapshot &before, const Snapshot &after)
{
    Snapshot delta;
    for (const auto &[key, now] : after) {
        const auto it = before.find(key);
        const double prev = it == before.end() ? 0.0 : it->second;
        if (now < prev)
            continue; // counter reset between snapshots
        delta[key] = now - prev;
    }
    return delta;
}

} // namespace lp::stats

#endif // LP_STATS_STATS_HH
