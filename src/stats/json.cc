#include "stats/json.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace lp::stats
{

std::string
JsonValue::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char ch : s) {
        switch (ch) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n";  break;
          case '\r': out += "\\r";  break;
          case '\t': out += "\\t";  break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
JsonValue::number(double v)
{
    if (!std::isfinite(v))
        return "null";  // JSON has no NaN/Inf
    // Integers print without a fraction; everything else with enough
    // digits to round-trip.
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
JsonValue::render() const
{
    struct Visitor
    {
        std::string
        operator()(double v) const
        {
            return number(v);
        }

        std::string
        operator()(const std::string &s) const
        {
            return "\"" + escape(s) + "\"";
        }

        std::string
        operator()(const Raw &r) const
        {
            return r.text;
        }

        std::string
        operator()(const Array &arr) const
        {
            std::ostringstream os;
            os << '[';
            bool first = true;
            for (const auto &val : arr) {
                if (!first)
                    os << ',';
                first = false;
                os << val.render();
            }
            os << ']';
            return os.str();
        }

        std::string
        operator()(const Object &obj) const
        {
            std::ostringstream os;
            os << '{';
            bool first = true;
            for (const auto &[key, val] : obj) {
                if (!first)
                    os << ',';
                first = false;
                os << '"' << escape(key) << "\":" << val.render();
            }
            os << '}';
            return os.str();
        }
    };
    return std::visit(Visitor{}, value);
}

JsonValue::Object
toJson(const Snapshot &snap)
{
    JsonValue::Object obj;
    for (const auto &[key, val] : snap)
        obj.emplace(key, JsonValue(val));
    return obj;
}

} // namespace lp::stats
