#include "repair/repair.hh"

namespace lp::repair
{

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::size_t
parityRegionCount(std::size_t dataBytes)
{
    return dataBytes / regionBytes;
}

std::size_t
parityGroupCount(std::size_t regions)
{
    return (regions + groupRegions - 1) / groupRegions;
}

std::size_t
parityArenaBytes(std::size_t dataBytes)
{
    const std::size_t regions = parityRegionCount(dataBytes);
    return regions * sizeof(std::uint64_t) +          // fingerprints
           parityGroupCount(regions) * regionBytes +  // parity blocks
           regionBytes;                               // header block
}

namespace
{

std::uint64_t
neverZero(std::uint64_t w)
{
    return w == 0 ? 1 : w;
}

} // namespace

std::uint64_t
parityHeaderCheck(std::uint64_t covered, std::uint64_t lastSealed)
{
    return neverZero(
        mix64(covered ^ mix64(lastSealed ^ 0x7061726974796864ull)));
}

std::uint64_t
shardMetaCheck(std::uint64_t foldedEpoch, std::uint64_t flags)
{
    return neverZero(
        mix64(foldedEpoch ^ mix64(flags ^ 0x73686172646d6574ull)));
}

} // namespace lp::repair
