/**
 * @file
 * lp::repair::RegionParity -- incremental XOR parity plus per-region
 * fingerprints over one append-only persistent buffer.
 *
 * Pangolin (PAPERS.md) turns media-fault *detection* into *repair* by
 * keeping parity pages over data it can restore; this class is that
 * idea specialized to the store's batch journals, whose two
 * properties make incremental parity cheap and crash-safe:
 *
 *  - the buffer is APPEND-ONLY within a generation (the journal
 *    restarts at offset 0 on every fold), so each 64B region is
 *    covered exactly once, when the sealed prefix first passes its
 *    end -- no read-modify-write of parity for data overwrites, ever;
 *  - coverage is a strict PREFIX watermark, so "which bytes the
 *    parity vouches for" is a single counter.
 *
 * Every 8 regions share one XOR parity block (~12.5% space) and each
 * region gets an 8-byte fingerprint (repair/repair.hh mix64 chain).
 * A reconstruction is accepted ONLY when it reproduces the stored
 * fingerprint, so stale parity left by a crash can never fabricate
 * data: a failed check falls back to the caller's pre-parity
 * semantics (epoch discard). All cover-time writes are PLAIN stores
 * through the Env -- they drain lazily with the journal lines they
 * protect, keeping the Lazy Persistency discipline intact; repairs
 * (recovery/scrub, both eager phases) store + flush and let the
 * caller fence.
 *
 * Verification reads (fingerprint checks, reconstruction, parity
 * scrub) are STREAMING loads (Env::ldStream): a cached copy is used
 * -- required for correctness, since fingerprints cover the eventual
 * durable content and a sealed line may still be cache-dirty -- but a
 * miss reads NVMM without installing a line. An allocating sweep
 * would cycle the small LLC and evict exactly the dirty coalescing
 * lines Lazy Persistency's write efficiency comes from; real
 * scrubbers use non-temporal reads for the same reason.
 *
 * The header block records (coveredRegions, lastSealedEpoch) under a
 * check word. After a crash the durable header may be stale-small --
 * that is the safe direction (fewer regions claimed repairable); an
 * invalid check word degrades to zero coverage, i.e. exactly the
 * store's historical crash semantics.
 */

#ifndef LP_REPAIR_PARITY_HH
#define LP_REPAIR_PARITY_HH

#include <cstddef>
#include <cstdint>

#include "base/logging.hh"
#include "pmem/arena.hh"
#include "repair/repair.hh"

namespace lp::repair
{

/** Outcome of one region validation/repair attempt. */
enum class RegionState
{
    Clean,         ///< fingerprint already matches the content
    Repaired,      ///< reconstruction matched and was written back
    Unrepairable,  ///< reconstruction failed the fingerprint check
};

/** Totals of one repair sweep over the covered prefix. */
struct SweepResult
{
    std::uint64_t repaired = 0;
    std::uint64_t unrepairable = 0;
};

template <typename Env>
class RegionParity
{
  public:
    /**
     * Protect @p dataBytes bytes at @p data (64B-aligned, arena
     * memory). Allocates, in deterministic order: the fingerprint
     * array, the parity blocks, the header block. With @p attach the
     * allocations re-derive an existing image; call loadDurable()
     * before trusting coverage.
     */
    RegionParity(pmem::PersistentArena &arena, const void *data,
                 std::size_t dataBytes, bool attach)
        : words_(static_cast<const std::uint64_t *>(data)),
          regions_(parityRegionCount(dataBytes)),
          groups_(parityGroupCount(regions_))
    {
        hash_ = arena.alloc<std::uint64_t>(regions_ ? regions_ : 1);
        parity_ = arena.alloc<std::uint64_t>(
            (groups_ ? groups_ : 1) * regionWords);
        hdr_ = arena.alloc<Header>(1);
        if (!attach) {
            hdr_->covered = 0;
            hdr_->lastSealed = 0;
            hdr_->check = parityHeaderCheck(0, 0);
        }
    }

    std::size_t regions() const { return regions_; }
    std::size_t coveredRegions() const { return covered_; }
    std::size_t coveredBytes() const { return covered_ * regionBytes; }
    std::uint64_t lastSealedEpoch() const { return lastSealed_; }

    /**
     * Adopt the durable header: true and coverage restored when its
     * check word validates, false (and zero coverage -- plain crash
     * semantics) when it does not. Recovery calls this first.
     */
    bool
    loadDurable(Env &env)
    {
        const std::uint64_t cov = env.ld(&hdr_->covered);
        const std::uint64_t seal = env.ld(&hdr_->lastSealed);
        const std::uint64_t chk = env.ld(&hdr_->check);
        env.tick(4);
        if (chk == parityHeaderCheck(cov, seal) && cov <= regions_) {
            covered_ = std::size_t(cov);
            lastSealed_ = seal;
            return true;
        }
        covered_ = 0;
        lastSealed_ = 0;
        return false;
    }

    /**
     * Extend coverage to the sealed prefix (@p sealedBytes) after the
     * commit of @p epoch: fingerprint and XOR-fold every newly
     * completed region, then restate the header. Plain stores only.
     */
    void
    cover(Env &env, std::uint64_t epoch, std::size_t sealedBytes)
    {
        std::size_t newCov = sealedBytes / regionBytes;
        if (newCov > regions_)
            newCov = regions_;
        for (std::size_t r = covered_; r < newCov; ++r) {
            env.st(&hash_[r], fingerprint(env, r));
            std::uint64_t *par = groupParity(r / groupRegions);
            const bool first = r % groupRegions == 0;
            for (std::size_t w = 0; w < regionWords; ++w) {
                const std::uint64_t v =
                    env.ld(&words_[r * regionWords + w]);
                env.st(&par[w], first ? v : env.ld(&par[w]) ^ v);
            }
            env.tick(2 * regionWords);
        }
        covered_ = newCov;
        lastSealed_ = epoch;
        storeHeader(env);
    }

    /**
     * Start a new generation (fold, recovery end): zero coverage,
     * remember @p epoch as the last sealed watermark. Stores + flush;
     * the caller's phase fence orders it.
     */
    void
    resetGeneration(Env &env, std::uint64_t epoch)
    {
        covered_ = 0;
        lastSealed_ = epoch;
        storeHeader(env);
        env.clflushopt(hdr_);
    }

    /** Does region @p r's content still match its fingerprint? */
    bool
    verifyRegion(Env &env, std::size_t r)
    {
        return fingerprint(env, r) == env.ldStream(&hash_[r]);
    }

    /**
     * Validate region @p r (< coveredRegions()) and, on a fingerprint
     * mismatch, reconstruct it from its group parity and covered
     * peers. The write-back is store + flush; the caller fences.
     */
    RegionState
    repairRegion(Env &env, std::size_t r)
    {
        LP_ASSERT(r < covered_, "repair outside the covered prefix");
        if (verifyRegion(env, r))
            return RegionState::Clean;
        const std::size_t g = r / groupRegions;
        std::uint64_t rec[regionWords];
        const std::uint64_t *par = groupParity(g);
        for (std::size_t w = 0; w < regionWords; ++w)
            rec[w] = env.ldStream(&par[w]);
        const std::size_t lo = g * groupRegions;
        const std::size_t hi =
            lo + groupRegions < covered_ ? lo + groupRegions : covered_;
        for (std::size_t peer = lo; peer < hi; ++peer) {
            if (peer == r)
                continue;
            for (std::size_t w = 0; w < regionWords; ++w)
                rec[w] ^= env.ldStream(&words_[peer * regionWords + w]);
            env.tick(regionWords);
        }
        if (fingerprintOf(r, rec) != env.ldStream(&hash_[r]))
            return RegionState::Unrepairable;
        auto *dst = const_cast<std::uint64_t *>(
            &words_[r * regionWords]);
        for (std::size_t w = 0; w < regionWords; ++w)
            env.st(&dst[w], rec[w]);
        env.clflushopt(dst);
        return RegionState::Repaired;
    }

    /**
     * One pass over the whole covered prefix: repair every region
     * that fails its fingerprint. Recovery's repair hook; the caller
     * fences after and decides what an unrepairable region means.
     */
    SweepResult
    repairCovered(Env &env)
    {
        SweepResult res;
        for (std::size_t r = 0; r < covered_; ++r) {
            switch (repairRegion(env, r)) {
              case RegionState::Repaired:    ++res.repaired; break;
              case RegionState::Unrepairable: ++res.unrepairable; break;
              case RegionState::Clean:        break;
            }
        }
        return res;
    }

    /**
     * Scrub aid: recompute group @p g's parity over its covered
     * regions and rewrite the parity block if it diverged (the
     * "parity page itself is the corrupt one" case -- only call when
     * the group's covered regions verified clean, so the divergence
     * is provably the parity's). Returns true when rewritten.
     */
    bool
    scrubGroupParity(Env &env, std::size_t g)
    {
        const std::size_t lo = g * groupRegions;
        const std::size_t hi =
            lo + groupRegions < covered_ ? lo + groupRegions : covered_;
        if (lo >= hi)
            return false;
        std::uint64_t want[regionWords] = {};
        for (std::size_t peer = lo; peer < hi; ++peer) {
            for (std::size_t w = 0; w < regionWords; ++w)
                want[w] ^= env.ldStream(&words_[peer * regionWords + w]);
            env.tick(regionWords);
        }
        std::uint64_t *par = groupParity(g);
        bool diff = false;
        for (std::size_t w = 0; w < regionWords; ++w)
            if (env.ldStream(&par[w]) != want[w])
                diff = true;
        if (!diff)
            return false;
        for (std::size_t w = 0; w < regionWords; ++w)
            env.st(&par[w], want[w]);
        env.clflushopt(par);
        return true;
    }

    /// @name Introspection for fault injection (store FaultSurface).
    /// @{
    const void *hashes() const { return hash_; }
    std::size_t hashBytes() const
    {
        return regions_ * sizeof(std::uint64_t);
    }
    const void *parityBlocks() const { return parity_; }
    std::size_t parityBytes() const
    {
        return groups_ * regionBytes;
    }
    const void *header() const { return hdr_; }
    /// @}

  private:
    struct Header
    {
        std::uint64_t covered;
        std::uint64_t lastSealed;
        std::uint64_t check;
        std::uint64_t pad[5];
    };
    static_assert(sizeof(Header) == regionBytes);

    std::uint64_t *
    groupParity(std::size_t g)
    {
        return &parity_[g * regionWords];
    }

    /**
     * Fingerprint of region @p r's current content. Streaming loads:
     * on the cover path the region's lines are cache-hot (just
     * written) so a hit behaves like a normal load; on the scrub path
     * a miss must not displace workload lines.
     */
    std::uint64_t
    fingerprint(Env &env, std::size_t r)
    {
        std::uint64_t h = mix64(r + 1);
        for (std::size_t w = 0; w < regionWords; ++w)
            h = mix64(h ^ env.ldStream(&words_[r * regionWords + w]));
        env.tick(2 * regionWords);
        return h;
    }

    /** Fingerprint of candidate content @p w8 for region @p r. */
    static std::uint64_t
    fingerprintOf(std::size_t r, const std::uint64_t *w8)
    {
        std::uint64_t h = mix64(r + 1);
        for (std::size_t w = 0; w < regionWords; ++w)
            h = mix64(h ^ w8[w]);
        return h;
    }

    void
    storeHeader(Env &env)
    {
        env.st(&hdr_->covered, std::uint64_t(covered_));
        env.st(&hdr_->lastSealed, lastSealed_);
        env.st(&hdr_->check,
               parityHeaderCheck(covered_, lastSealed_));
        env.tick(3);
    }

    const std::uint64_t *words_;
    std::size_t regions_;
    std::size_t groups_;
    std::uint64_t *hash_ = nullptr;
    std::uint64_t *parity_ = nullptr;
    Header *hdr_ = nullptr;

    std::size_t covered_ = 0;
    std::uint64_t lastSealed_ = 0;
};

} // namespace lp::repair

#endif // LP_REPAIR_PARITY_HH
