/**
 * @file
 * Non-template helpers of lp::repair: the mixing hash behind region
 * fingerprints and metadata check words, and the parity geometry
 * shared between RegionParity (repair/parity.hh) and the store's
 * arena budget (store/store.cc).
 *
 * Geometry: the protected buffer is cut into 64-byte REGIONS (one
 * cache block, the unit the simulated NVMM persists atomically) and
 * every 8 consecutive regions form a GROUP sharing one 64-byte XOR
 * parity block -- Pangolin's parity scheme at ~12.5% space, plus one
 * 8-byte fingerprint per region so a reconstruction is accepted only
 * when it provably reproduces the committed bytes.
 */

#ifndef LP_REPAIR_REPAIR_HH
#define LP_REPAIR_REPAIR_HH

#include <cstddef>
#include <cstdint>

namespace lp::repair
{

/** Bytes per protected region: one cache block. */
inline constexpr std::size_t regionBytes = 64;

/** 64-bit words per region. */
inline constexpr std::size_t regionWords =
    regionBytes / sizeof(std::uint64_t);

/** Regions sharing one XOR parity block. */
inline constexpr std::size_t groupRegions = 8;

/** splitmix64 finalizer: the avalanche mixer behind every check word. */
std::uint64_t mix64(std::uint64_t x);

/** Whole regions a buffer of @p dataBytes holds (floor). */
std::size_t parityRegionCount(std::size_t dataBytes);

/** Parity groups covering @p regions regions (ceil). */
std::size_t parityGroupCount(std::size_t regions);

/**
 * Arena bytes RegionParity allocates for a @p dataBytes buffer
 * (fingerprints + parity blocks + header), before per-allocation
 * block-alignment padding.
 */
std::size_t parityArenaBytes(std::size_t dataBytes);

/**
 * Check word sealing a (coveredRegions, lastSealedEpoch) header pair.
 * Never zero, so an all-zero (freshly formatted or dead) header block
 * always reads as invalid.
 */
std::uint64_t parityHeaderCheck(std::uint64_t covered,
                                std::uint64_t lastSealed);

/**
 * Check word sealing a shard superblock's (foldedEpoch, flags) pair;
 * same never-zero guarantee as parityHeaderCheck.
 */
std::uint64_t shardMetaCheck(std::uint64_t foldedEpoch,
                             std::uint64_t flags);

} // namespace lp::repair

#endif // LP_REPAIR_REPAIR_HH
