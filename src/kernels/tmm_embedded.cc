#include "kernels/tmm_embedded.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "ep/pmem_ops.hh"
#include "kernels/env.hh"
#include "pmem/crash.hh"

namespace lp::kernels
{

namespace
{

/** Everything one embedded run owns. */
struct EmbRun
{
    EmbRun(const KernelParams &params, const sim::MachineConfig &cfg)
        : p(params),
          ctx(cfg, arenaBytesFor(KernelId::Tmm, params) +
                       static_cast<std::size_t>(params.n) *
                           (params.n / params.bsize) *
                           sizeof(double))
    {
        LP_ASSERT(p.n % p.bsize == 0, "n must be a multiple of bsize");
        stages = p.n / p.bsize;
        bands = p.n / p.bsize;
        const int stride = p.n + stages;

        const std::size_t elems = static_cast<std::size_t>(p.n) * p.n;
        double *a = ctx.arena.alloc<double>(elems);
        double *b = ctx.arena.alloc<double>(elems);
        double *c = ctx.arena.alloc<double>(
            static_cast<std::size_t>(p.n) * stride);
        v = TmmEmbView{a, b, c, p.n, p.bsize, stride};

        Rng rng(p.seed);
        for (std::size_t i = 0; i < elems; ++i)
            a[i] = rng.uniform(0.0, 1.0);
        for (std::size_t i = 0; i < elems; ++i)
            b[i] = rng.uniform(0.0, 1.0);
        std::fill(c, c + static_cast<std::size_t>(p.n) * stride, 0.0);
        // Digest cells start as the NaN sentinel (Section IV).
        for (int band = 0; band < bands; ++band)
            for (int s = 0; s < stages; ++s)
                *embDigestCell(v, band, s) =
                    std::bit_cast<double>(core::invalidDigest);

        golden.assign(elems, 0.0);
        for (int i = 0; i < p.n; ++i) {
            for (int k = 0; k < p.n; ++k) {
                const double aik =
                    a[static_cast<std::size_t>(i) * p.n + k];
                for (int j = 0; j < p.n; ++j) {
                    golden[static_cast<std::size_t>(i) * p.n + j] +=
                        aik * b[static_cast<std::size_t>(k) * p.n + j];
                }
            }
        }
        ctx.arena.persistAll();
    }

    /** Queue regions for bands resuming at resume[band]. */
    void
    schedule(const std::vector<int> &resume)
    {
        for (int t = 0; t < p.threads; ++t) {
            for (int s = 0; s < stages; ++s) {
                for (int band = t; band < bands; band += p.threads) {
                    if (s < resume[band])
                        continue;
                    ctx.sched.add(t, [this, t, band, s] {
                        SimEnv env(ctx.machine, ctx.arena, t,
                                   &ctx.crash);
                        tmmEmbRegionLp(env, v, s, band, p.checksum);
                    });
                }
            }
        }
    }

    /** Per-band Figure 9 recovery on the embedded digests. */
    void
    recoverAndResume(TmmEmbeddedOutcome &out)
    {
        SimEnv env(ctx.machine, ctx.arena, 0, &ctx.crash);
        std::vector<int> resume(bands, 0);
        for (int band = 0; band < bands; ++band) {
            const std::uint64_t current =
                tmmEmbBandChecksum(env, v, band, p.checksum);
            int found = -1;
            for (int s = stages - 1; s >= 0; --s) {
                const std::uint64_t stored = std::bit_cast<
                    std::uint64_t>(*embDigestCell(v, band, s));
                if (stored == core::invalidDigest)
                    continue;
                if (stored == current) {
                    found = s;
                    break;
                }
            }
            if (found < 0) {
                // Zero the band eagerly; accumulation restarts.
                for (int i = band * p.bsize;
                     i < (band + 1) * p.bsize; ++i) {
                    for (int j = 0; j < p.n; ++j) {
                        env.st(&v.c[static_cast<std::size_t>(i) *
                                    v.stride + j],
                               0.0);
                    }
                    ep::flushRange(
                        env,
                        &v.c[static_cast<std::size_t>(i) * v.stride],
                        static_cast<std::size_t>(p.n) *
                            sizeof(double));
                }
                ++out.bandsRebuilt;
            } else {
                ++out.bandsMatched;
            }
            resume[band] = found + 1;
            for (int s = resume[band]; s < stages; ++s) {
                double *cell = embDigestCell(v, band, s);
                env.st(cell,
                       std::bit_cast<double>(core::invalidDigest));
                env.clflushopt(cell);
            }
        }
        env.sfence();
        schedule(resume);
        ctx.sched.run();
    }

    double
    maxAbsError() const
    {
        double worst = 0.0;
        for (int i = 0; i < p.n; ++i) {
            for (int j = 0; j < p.n; ++j) {
                worst = std::max(
                    worst,
                    std::fabs(v.c[static_cast<std::size_t>(i) *
                                  v.stride + j] -
                              golden[static_cast<std::size_t>(i) *
                                     p.n + j]));
            }
        }
        return worst;
    }

    KernelParams p;
    SimContext ctx;
    TmmEmbView v;
    int stages;
    int bands;
    std::vector<double> golden;
};

} // namespace

TmmEmbeddedOutcome
runTmmEmbedded(const KernelParams &params,
               const sim::MachineConfig &cfg,
               std::uint64_t crash_after_stores)
{
    EmbRun run(params, cfg);
    TmmEmbeddedOutcome out;
    out.embeddedBytes = static_cast<std::size_t>(params.n) *
                        run.stages * sizeof(double);

    if (crash_after_stores > 0)
        run.ctx.crash.armAfterStores(crash_after_stores);
    try {
        run.schedule(std::vector<int>(run.bands, 0));
        run.ctx.sched.run();
    } catch (const pmem::CrashException &) {
        out.crashed = true;
        run.ctx.crash.disarm();
        run.ctx.sched.clear();
        run.ctx.machine.loseVolatileState();
        run.ctx.arena.crashRestore();
        run.recoverAndResume(out);
    }

    out.execCycles =
        static_cast<double>(run.ctx.machine.execCycles());
    out.nvmmWrites = static_cast<double>(
        run.ctx.machine.machineStats().nvmmWrites.value());
    out.maxAbsError = run.maxAbsError();
    out.verified = out.maxAbsError <= 1e-6;
    return out;
}

} // namespace lp::kernels
