/**
 * @file
 * Gaussian elimination (in-place Doolittle LU, no pivoting -- the
 * input is made diagonally dominant), the paper's Gauss benchmark.
 *
 * Stage k eliminates column k: every row i > k stores its multiplier
 * into m[i][k] and updates m[i][k+1..n). LP regions are row bands
 * within a stage, plus one tiny "pivot-final" region per stage that
 * checksums pivot row k, which became final when stage k-1 completed
 * and is never written again.
 *
 * Because the trailing matrix is updated in place, checksums of old
 * stages go stale; recovery therefore uses a per-band newest-match
 * scan (like TMM's Figure 9 refinement) for the in-flight rows, and
 * the pivot-final digests to validate (or rebuild from the immutable
 * input) each finalized row, in ascending row order so rebuilt pivot
 * rows feed later rebuilds. See recoverAndResume() for the full
 * procedure.
 */

#ifndef LP_KERNELS_GAUSS_HH
#define LP_KERNELS_GAUSS_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ep/eager_recompute.hh"
#include "ep/pmem_ops.hh"
#include "lp/checksum.hh"
#include "lp/checksum_table.hh"
#include "lp/recovery.hh"
#include "lp/runtime.hh"
#include "kernels/workload.hh"

namespace lp::kernels
{

class SimEnv;

/** Pointers into the elimination's persistent state. */
struct GaussView
{
    const double *a;  ///< immutable input matrix
    double *m;        ///< working matrix (becomes L\\U in place)
    int n;
    int bsize;        ///< rows per band
};

/**
 * Eliminate column @p k in rows [row0, row1) (rows <= k are skipped).
 * Stores multipliers in column k. Folds stored values into
 * @p region when non-null.
 */
template <typename Env>
void
gaussBandBody(Env &env, const GaussView &v, int k, int row0, int row1,
              core::LpRegion *region)
{
    const int n = v.n;
    for (int i = std::max(row0, k + 1); i < row1; ++i) {
        const double piv =
            env.ld(&v.m[static_cast<std::size_t>(k) * n + k]);
        const double mult =
            env.ld(&v.m[static_cast<std::size_t>(i) * n + k]) / piv;
        env.tick(6);
        env.st(&v.m[static_cast<std::size_t>(i) * n + k], mult);
        if (region)
            region->update(env, mult);
        for (int j = k + 1; j < n; ++j) {
            const double val =
                env.ld(&v.m[static_cast<std::size_t>(i) * n + j]) -
                mult *
                    env.ld(&v.m[static_cast<std::size_t>(k) * n + j]);
            env.tick(2);
            env.st(&v.m[static_cast<std::size_t>(i) * n + j], val);
            if (region)
                region->update(env, val);
        }
    }
}

/**
 * Checksum of the values the (k, band) region stored, recomputed
 * from the current matrix in the body's traversal order.
 */
template <typename Env>
std::uint64_t
gaussBandChecksum(Env &env, const GaussView &v, int k, int row0,
                  int row1, core::ChecksumKind kind)
{
    const int n = v.n;
    core::ChecksumAcc acc(kind);
    const std::uint64_t cost = core::ChecksumAcc::updateCost(kind);
    for (int i = std::max(row0, k + 1); i < row1; ++i) {
        for (int j = k; j < n; ++j) {
            acc.add(
                env.ld(&v.m[static_cast<std::size_t>(i) * n + j]));
            env.tick(cost);
        }
    }
    return acc.value();
}

/** Checksum of (full) row @p k's current contents. */
template <typename Env>
std::uint64_t
gaussRowChecksum(Env &env, const GaussView &v, int k,
                 core::ChecksumKind kind)
{
    core::ChecksumAcc acc(kind);
    const std::uint64_t cost = core::ChecksumAcc::updateCost(kind);
    for (int j = 0; j < v.n; ++j) {
        acc.add(env.ld(&v.m[static_cast<std::size_t>(k) * v.n + j]));
        env.tick(cost);
    }
    return acc.value();
}

/** The simulated Gaussian-elimination workload. */
class GaussWorkload : public Workload
{
  public:
    GaussWorkload(const KernelParams &params, SimContext &ctx);

    std::string name() const override { return "gauss"; }
    void run(Scheme scheme) override;
    core::RecoveryResult recoverAndResume() override;
    bool verify(double tol = 1e-6) const override;
    double maxAbsError() const override;
    std::size_t numRegions() const override;

    int numStages() const { return p.n - 1; }
    int numBands() const { return p.n / p.bsize; }

  private:
    /** Key of the (stage k, band) region digest. */
    std::size_t
    bandKey(int k, int band) const
    {
        return static_cast<std::size_t>(k) * numBands() + band;
    }

    /** Key of the pivot-final digest of row @p k. */
    std::size_t
    pivotKey(int k) const
    {
        return static_cast<std::size_t>(numStages()) * numBands() + k;
    }

    /** True iff band has rows to update at stage k. */
    bool
    bandActive(int k, int band) const
    {
        return (band + 1) * p.bsize - 1 > k;
    }

    void runStages(Scheme scheme, int from_stage);

    /** Rebuild row @p i from the input through stage @p through-1. */
    void rebuildRowEager(SimEnv &env, int i, int through);

    /** Advance rows [row0,row1) in place over stages [s0, s1). */
    void advanceRowsEager(SimEnv &env, int row0, int row1, int s0,
                          int s1);

    KernelParams p;
    SimContext &ctx;
    GaussView v;
    std::vector<double> golden;
    std::unique_ptr<core::ChecksumTable> table_;
    std::unique_ptr<ep::ProgressMarkers> markers;
};

} // namespace lp::kernels

#endif // LP_KERNELS_GAUSS_HH
