/**
 * @file
 * Memory environments: the one abstraction kernels are written
 * against.
 *
 * Every kernel loop body is a template over an Env. Two environments
 * exist:
 *
 *  - SimEnv routes every load/store/flush/fence and an instruction
 *    budget through the simulated Machine, operating on data in a
 *    PersistentArena, and fires the CrashController hooks. This is
 *    the gem5-substitute used for all simulator experiments.
 *
 *  - NativeEnv compiles to raw loads/stores with every hook a no-op,
 *    so the identical kernel code runs at full native speed for the
 *    real-machine overhead experiment (Table VII).
 *
 * Both are final concrete types: kernels instantiate per-Env, so the
 * abstraction costs nothing at runtime.
 *
 * CONCURRENCY CONTRACT -- single writer per shard. An Env instance,
 * and every structure driven through it (an LpRegion, a KvStore and
 * each shard inside it), is single-threaded state: neither SimEnv
 * nor NativeEnv performs any synchronization, and NativeEnv's plain
 * loads/stores are NOT atomic. The rules every caller must follow:
 *
 *  1. One owning thread per Env and per shard. Concurrent software
 *     threads each get their own Env (SimEnv: own core id; NativeEnv:
 *     own instance) over disjoint persistent data. The simulator
 *     emulates parallelism by interleaving single-threaded region
 *     work items (RegionScheduler); a native service shards at the
 *     process level -- one single-shard KvStore per worker thread,
 *     as lp::server does -- so no shard is ever touched by two
 *     threads. Debug builds of KvStore assert this on every access.
 *  2. Ownership transfer must synchronize. Handing work or results
 *     between a shard owner and another thread (e.g. lp::server's
 *     acceptor <-> worker queues) must go through a synchronizing
 *     mechanism (mutex, atomic release/acquire); the Env itself
 *     provides no visibility guarantees between host threads.
 *  3. Cross-thread observers read atomics only. Any watermark or
 *     statistic a non-owning thread may poll (e.g. lp::server's
 *     acceptor reading worker progress for STATS) must be mirrored
 *     into std::atomic variables by the owner; peeking at a live
 *     shard's fields from another thread is a data race even when it
 *     "only reads".
 */

#ifndef LP_KERNELS_ENV_HH
#define LP_KERNELS_ENV_HH

#include <cstdint>

#include "base/types.hh"
#include "pmem/arena.hh"
#include "pmem/crash.hh"
#include "sim/machine.hh"

namespace lp::kernels
{

/** Instrumented environment: all traffic goes through the Machine. */
class SimEnv
{
  public:
    /**
     * @param machine the simulated machine
     * @param arena   the persistent arena holding all kernel data
     * @param core    which core (= software thread) this env drives
     * @param crash   optional crash injector (may be nullptr)
     */
    SimEnv(sim::Machine &machine, pmem::PersistentArena &arena,
           CoreId core, pmem::CrashController *crash = nullptr)
        : m(&machine), a(&arena), core_(core), crash(crash)
    {
    }

    static constexpr bool simulated = true;

    /** Load a T through the cache hierarchy. */
    template <typename T>
    T
    ld(const T *p)
    {
        m->read(core_, a->addrOf(p), sizeof(T));
        return *p;
    }

    /**
     * Non-allocating (streaming) load: a cached copy is used, but a
     * miss does not install a line. For bulk verification sweeps
     * (media scrub, recovery validation) that must not displace the
     * workload's dirty coalescing lines. Only valid from the core
     * that owns the data (single-writer-per-shard contract).
     */
    template <typename T>
    T
    ldStream(const T *p)
    {
        m->readStream(core_, a->addrOf(p), sizeof(T));
        return *p;
    }

    /** Store a T through the cache hierarchy. */
    template <typename T>
    void
    st(T *p, T v)
    {
        *p = v;
        m->write(core_, a->addrOf(p), sizeof(T));
        if (crash)
            crash->onStore();
    }

    /** Account @p n non-memory instructions. */
    void tick(std::uint64_t n) { m->tick(core_, n); }

    void
    clflushopt(const void *p)
    {
        m->clflushopt(core_, a->addrOf(p));
    }

    void
    clwb(const void *p)
    {
        m->clwb(core_, a->addrOf(p));
    }

    void sfence() { m->sfence(core_); }

    /** Region-commit hook for region-count crash triggers. */
    void
    onRegionCommit()
    {
        if (crash)
            crash->onRegionCommit();
    }

    CoreId core() const { return core_; }
    sim::Machine &machine() { return *m; }
    pmem::PersistentArena &arena() { return *a; }

  private:
    sim::Machine *m;
    pmem::PersistentArena *a;
    CoreId core_;
    pmem::CrashController *crash;
};

/** Native environment: raw memory, every persistency hook a no-op. */
class NativeEnv
{
  public:
    static constexpr bool simulated = false;

    template <typename T>
    T
    ld(const T *p)
    {
        return *p;
    }

    template <typename T>
    T
    ldStream(const T *p)
    {
        return *p;
    }

    template <typename T>
    void
    st(T *p, T v)
    {
        *p = v;
    }

    void tick(std::uint64_t) {}
    void clflushopt(const void *) {}
    void clwb(const void *) {}
    void sfence() {}
    void onRegionCommit() {}
    CoreId core() const { return 0; }
};

} // namespace lp::kernels

#endif // LP_KERNELS_ENV_HH
