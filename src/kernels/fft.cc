#include "kernels/fft.hh"

#include <algorithm>
#include <cmath>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "ep/eager_recompute.hh"
#include "ep/pmem_ops.hh"
#include "kernels/env.hh"

namespace lp::kernels
{

void
fftGolden(const std::vector<double> &in_re,
          const std::vector<double> &in_im,
          std::vector<double> &out_re, std::vector<double> &out_im)
{
    const int n = static_cast<int>(in_re.size());
    LP_ASSERT(isPowerOf2(static_cast<std::uint64_t>(n)),
              "FFT length must be a power of two");
    const int t = static_cast<int>(floorLog2(n));

    std::vector<double> a_re(n), a_im(n), b_re(n), b_im(n);
    const double *sre = in_re.data();
    const double *sim = in_im.data();
    for (int k = 0; k < t; ++k) {
        double *dre = (k % 2 == 0) ? a_re.data() : b_re.data();
        double *dim = (k % 2 == 0) ? a_im.data() : b_im.data();
        const std::int64_t sk = std::int64_t{1} << k;
        const std::int64_t mk = (std::int64_t{n} >> k) / 2;
        const double theta = -2.0 * M_PI / static_cast<double>(n >> k);
        for (std::int64_t p = 0; p < mk; ++p) {
            const double wre = std::cos(theta * static_cast<double>(p));
            const double wim = std::sin(theta * static_cast<double>(p));
            for (std::int64_t q = 0; q < sk; ++q) {
                const double are = sre[q + sk * p];
                const double aim = sim[q + sk * p];
                const double bre = sre[q + sk * (p + mk)];
                const double bim = sim[q + sk * (p + mk)];
                dre[q + sk * 2 * p] = are + bre;
                dim[q + sk * 2 * p] = aim + bim;
                const double dr = are - bre;
                const double di = aim - bim;
                dre[q + sk * (2 * p + 1)] = dr * wre - di * wim;
                dim[q + sk * (2 * p + 1)] = dr * wim + di * wre;
            }
        }
        sre = dre;
        sim = dim;
    }
    out_re.assign(sre, sre + n);
    out_im.assign(sim, sim + n);
}

FftWorkload::FftWorkload(const KernelParams &params, SimContext &c)
    : p(params), ctx(c)
{
    LP_ASSERT(p.n >= 2 &&
              isPowerOf2(static_cast<std::uint64_t>(p.n)),
              "FFT length must be a power of two >= 2");
    LP_ASSERT(p.threads >= 1 &&
              p.threads <= ctx.machine.config().numCores,
              "more threads than cores");
    stages = static_cast<int>(floorLog2(p.n));
    regions = static_cast<int>(
        std::min<std::int64_t>(p.threads * 2, std::int64_t{p.n} / 2));

    double *in_re = ctx.arena.alloc<double>(p.n);
    double *in_im = ctx.arena.alloc<double>(p.n);
    double *a_re = ctx.arena.alloc<double>(p.n);
    double *a_im = ctx.arena.alloc<double>(p.n);
    double *b_re = ctx.arena.alloc<double>(p.n);
    double *b_im = ctx.arena.alloc<double>(p.n);
    v = FftView{in_re, in_im, a_re, a_im, b_re, b_im, p.n};

    Rng rng(p.seed);
    for (int i = 0; i < p.n; ++i) {
        in_re[i] = rng.uniform(-1.0, 1.0);
        in_im[i] = rng.uniform(-1.0, 1.0);
    }
    std::fill(a_re, a_re + p.n, 0.0);
    std::fill(a_im, a_im + p.n, 0.0);
    std::fill(b_re, b_re + p.n, 0.0);
    std::fill(b_im, b_im + p.n, 0.0);

    fftGolden(std::vector<double>(in_re, in_re + p.n),
              std::vector<double>(in_im, in_im + p.n), goldenRe,
              goldenIm);

    table_ = std::make_unique<core::ChecksumTable>(
        ctx.arena, static_cast<std::size_t>(stages) * regions);
    ctx.arena.persistAll();
}

std::size_t
FftWorkload::numRegions() const
{
    return static_cast<std::size_t>(stages) * regions;
}

void
FftWorkload::chunkBounds(int r, std::int64_t &u0,
                         std::int64_t &u1) const
{
    const std::int64_t half = std::int64_t{p.n} / 2;
    u0 = half * r / regions;
    u1 = half * (r + 1) / regions;
}

void
FftWorkload::runStages(Scheme scheme, int from_stage)
{
    for (int k = from_stage; k < stages; ++k) {
        for (int r = 0; r < regions; ++r) {
            const int t = r % p.threads;
            ctx.sched.add(t, [this, scheme, k, r, t] {
                SimEnv env(ctx.machine, ctx.arena, t, &ctx.crash);
                std::int64_t u0;
                std::int64_t u1;
                chunkBounds(r, u0, u1);
                switch (scheme) {
                  case Scheme::Base:
                    fftChunk(env, v, k, u0, u1, nullptr);
                    break;
                  case Scheme::Lp: {
                      core::LpRegion region(*table_, p.checksum);
                      region.reset(env);
                      fftChunk(env, v, k, u0, u1, &region);
                      region.commit(env, key(k, r));
                      break;
                  }
                  case Scheme::EagerRecompute: {
                      fftChunk(env, v, k, u0, u1, nullptr);
                      // A stride-group-aligned u-range [p0*sk,
                      // p1*sk) writes exactly the contiguous index
                      // range [2*p0*sk, 2*p1*sk); chunk bounds may
                      // split a group, so round outward -- a few
                      // redundant clean-line flushes, never a missed
                      // dirty one.
                      const std::int64_t sk = std::int64_t{1} << k;
                      const std::int64_t lo = (u0 / sk) * sk;
                      const std::int64_t hi = ((u1 + sk - 1) / sk) * sk;
                      const std::size_t bytes =
                          static_cast<std::size_t>(hi - lo) * 2 *
                          sizeof(double);
                      ep::flushRange(env, fftDstRe(v, k) + 2 * lo,
                                     bytes);
                      ep::flushRange(env, fftDstIm(v, k) + 2 * lo,
                                     bytes);
                      env.sfence();
                      env.onRegionCommit();
                      break;
                  }
                  case Scheme::Wal:
                    fatal("WAL is only implemented for tmm "
                          "(Table IV)");
                }
            });
        }
        ctx.sched.barrier();
    }
}

void
FftWorkload::run(Scheme scheme)
{
    runStages(scheme, 0);
}

core::RecoveryResult
FftWorkload::recoverAndResume()
{
    SimEnv env(ctx.machine, ctx.arena, 0, &ctx.crash);

    core::RecoveryCallbacks cb;
    cb.numStages = stages;
    cb.regionsInStage = [this](int) { return regions; };
    cb.matches = [this, &env](int k, int r) {
        if (table_->neverCommitted(key(k, r)))
            return false;
        std::int64_t u0;
        std::int64_t u1;
        chunkBounds(r, u0, u1);
        return fftChunkChecksum(env, v, k, u0, u1, p.checksum) ==
               table_->stored(key(k, r));
    };
    core::RecoveryResult res =
        core::recover(cb, core::ResumePolicy::NewestFullStage);

    for (int k = res.resumeStage; k < stages; ++k) {
        for (int r = 0; r < regions; ++r) {
            std::uint64_t *e = table_->entry(key(k, r));
            env.st(e, core::invalidDigest);
            env.clflushopt(e);
        }
    }
    env.sfence();

    runStages(Scheme::Lp, res.resumeStage);
    return res;
}

bool
FftWorkload::verify(double tol) const
{
    return maxAbsError() <= tol;
}

double
FftWorkload::maxAbsError() const
{
    const double *rre = fftDstRe(v, stages - 1);
    const double *rim = fftDstIm(v, stages - 1);
    double worst = 0.0;
    for (int i = 0; i < p.n; ++i) {
        worst = std::max(worst, std::fabs(rre[i] - goldenRe[i]));
        worst = std::max(worst, std::fabs(rim[i] - goldenIm[i]));
    }
    return worst;
}

} // namespace lp::kernels
