/**
 * @file
 * Workload framework: the pieces shared by all five benchmark kernels
 * (TMM, Cholesky, 2D-convolution, Gauss/LU, FFT).
 *
 * A Workload owns its persistent data (allocated from the context's
 * arena), a golden host-side result for verification, and knows how
 * to run itself under each persistency scheme and how to recover its
 * Lazy Persistency variant after an injected crash.
 */

#ifndef LP_KERNELS_WORKLOAD_HH
#define LP_KERNELS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>

#include "lp/checksum.hh"
#include "lp/recovery.hh"
#include "pmem/arena.hh"
#include "pmem/crash.hh"
#include "sim/machine.hh"
#include "sim/scheduler.hh"

namespace lp::kernels
{

/** The persistency schemes compared in the paper (Table IV). */
enum class Scheme
{
    Base,            ///< no failure safety
    Lp,              ///< Lazy Persistency (this paper)
    EagerRecompute,  ///< Eager Persistency baseline (PACT'17)
    Wal,             ///< durable transactions w/ write-ahead logging
};

/** The five evaluated kernels (Table V). */
enum class KernelId
{
    Tmm,
    Cholesky,
    Conv2d,
    Gauss,
    Fft,
    Spmv,   ///< extension kernel (irregular; uses the keyed table)
};

std::string schemeName(Scheme s);
std::string kernelName(KernelId k);

/** Problem-size and scheme parameters for one workload instance. */
struct KernelParams
{
    /** Matrix dimension (or FFT length; rounded to a power of two). */
    int n = 128;

    /** Tile / band size (Table IV: 16). */
    int bsize = 16;

    /** Worker threads (paper default: 8 workers). */
    int threads = 8;

    /** Outer iterations for the iterated 2D convolution. */
    int iterations = 4;

    /** Checksum kind for LP variants (paper default: modular). */
    core::ChecksumKind checksum = core::ChecksumKind::Modular;

    /** Seed for deterministic input generation. */
    std::uint64_t seed = 12345;
};

/**
 * Everything a simulated workload executes against: one arena, one
 * machine wired to it, a crash controller, and a region scheduler.
 */
struct SimContext
{
    SimContext(const sim::MachineConfig &cfg, std::size_t arena_bytes)
        : arena(arena_bytes), machine(cfg, &arena),
          sched(machine, cfg.numCores)
    {
    }

    pmem::PersistentArena arena;
    sim::Machine machine;
    pmem::CrashController crash;
    sim::RegionScheduler sched;
};

/** Abstract interface each kernel implements. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /**
     * Run the kernel to completion under @p scheme. Requires a fresh
     * durable initial image (the constructor establishes one); a
     * workload instance runs exactly once, plus recovery.
     */
    virtual void run(Scheme scheme) = 0;

    /**
     * After an injected crash of the Lp scheme (the harness has
     * already discarded volatile machine state and restored the
     * durable image): detect damaged regions via checksums, repair
     * them eagerly, and resume normal execution to completion.
     */
    virtual core::RecoveryResult recoverAndResume() = 0;

    /** Compare the persistent result against the golden host result. */
    virtual bool verify(double tol = 1e-6) const = 0;

    /** Largest absolute element error vs. the golden result. */
    virtual double maxAbsError() const = 0;

    /** Total number of LP regions the kernel commits. */
    virtual std::size_t numRegions() const = 0;
};

/** Instantiate a kernel workload bound to @p ctx. */
std::unique_ptr<Workload> makeWorkload(KernelId id,
                                       const KernelParams &params,
                                       SimContext &ctx);

/** Arena bytes ample for any kernel at the given size. */
std::size_t arenaBytesFor(KernelId id, const KernelParams &params);

} // namespace lp::kernels

#endif // LP_KERNELS_WORKLOAD_HH
