/**
 * @file
 * Iterated sparse matrix-vector multiply (CSR), an extension kernel
 * beyond the paper's five.
 *
 * Why it is here: the paper's kernels are dense and regular, so a
 * dense, collision-free checksum table (Figure 7(b)) fits perfectly.
 * SpMV is the canonical *irregular* loop kernel -- per-region work
 * varies with the sparsity pattern, and a program iterating over
 * many sparse operators has no convenient dense region index. It
 * therefore exercises the parts of the library the dense kernels do
 * not: the KeyedChecksumTable (open addressing, collision-safe) and
 * load balancing of uneven regions under the min-clock scheduler.
 *
 * Structure: x_{s+1} = A * x_s for a fixed number of iterations,
 * ping-ponging between two persistent vectors (stage 0 reads the
 * immutable x_0). LP regions are row bands; recovery is
 * NewestFullStage, like the other ping-pong kernels.
 */

#ifndef LP_KERNELS_SPMV_HH
#define LP_KERNELS_SPMV_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "ep/eager_recompute.hh"
#include "lp/checksum.hh"
#include "lp/keyed_table.hh"
#include "lp/recovery.hh"
#include "kernels/workload.hh"

namespace lp::kernels
{

/** Pointers into the persistent CSR operator and vectors. */
struct SpmvView
{
    const std::int32_t *rowPtr;  ///< n + 1 entries
    const std::int32_t *colIdx;  ///< nnz entries
    const double *vals;          ///< nnz entries
    const double *x0;            ///< immutable stage-0 input
    double *bufA;                ///< dst of even stages
    double *bufB;                ///< dst of odd stages
    int n;
    int bsize;                   ///< rows per band
};

inline const double *
spmvSrc(const SpmvView &v, int s)
{
    if (s == 0)
        return v.x0;
    return (s - 1) % 2 == 0 ? v.bufA : v.bufB;
}

inline double *
spmvDst(const SpmvView &v, int s)
{
    return s % 2 == 0 ? v.bufA : v.bufB;
}

/**
 * Compute rows [row0, row1) of stage @p s; fold stored values into
 * @p acc when non-null (region traversal order = ascending row).
 */
template <typename Env>
void
spmvBand(Env &env, const SpmvView &v, int s, int row0, int row1,
         core::ChecksumAcc *acc)
{
    const double *x = spmvSrc(v, s);
    double *y = spmvDst(v, s);
    for (int i = row0; i < row1; ++i) {
        const std::int32_t lo = env.ld(&v.rowPtr[i]);
        const std::int32_t hi = env.ld(&v.rowPtr[i + 1]);
        double sum = 0.0;
        for (std::int32_t e = lo; e < hi; ++e) {
            sum += env.ld(&v.vals[e]) *
                   env.ld(&x[env.ld(&v.colIdx[e])]);
        }
        env.tick(2 * static_cast<std::uint64_t>(hi - lo) + 6);
        env.st(&y[i], sum);
        if (acc) {
            acc->add(sum);
            env.tick(core::ChecksumAcc::updateCost(acc->kind()));
        }
    }
}

/** The iterated SpMV workload. */
class SpmvWorkload : public Workload
{
  public:
    SpmvWorkload(const KernelParams &params, SimContext &ctx);

    std::string name() const override { return "spmv"; }
    void run(Scheme scheme) override;
    core::RecoveryResult recoverAndResume() override;
    bool verify(double tol = 1e-6) const override;
    double maxAbsError() const override;
    std::size_t numRegions() const override;

    int numStages() const { return p.iterations; }
    int numBands() const { return p.n / p.bsize; }

    /** Region key used in the keyed table. */
    static std::uint64_t
    regionKey(int stage, int band)
    {
        return (static_cast<std::uint64_t>(stage) << 20) |
               static_cast<std::uint64_t>(band);
    }

    const core::KeyedChecksumTable &table() const { return *table_; }

  private:
    void runStages(Scheme scheme, int from_stage);

    /** Current digest of (stage, band) from the restored data. */
    std::uint64_t digestOf(class SimEnv &env, int s, int band) const;

    KernelParams p;
    SimContext &ctx;
    SpmvView v;
    std::vector<double> golden;
    std::unique_ptr<core::KeyedChecksumTable> table_;
    std::unique_ptr<ep::ProgressMarkers> markers;
};

} // namespace lp::kernels

#endif // LP_KERNELS_SPMV_HH
