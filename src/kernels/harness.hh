/**
 * @file
 * Experiment harness: one-call entry points used by tests, benches,
 * and examples to run a kernel under a scheme, optionally with
 * injected crashes, and collect machine measurements.
 */

#ifndef LP_KERNELS_HARNESS_HH
#define LP_KERNELS_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lp/recovery.hh"
#include "kernels/workload.hh"
#include "sim/config.hh"
#include "stats/stats.hh"

namespace lp::kernels
{

/** Measurements of one complete run. */
struct RunOutcome
{
    /** Machine counters accumulated over the run. */
    stats::Snapshot stats;

    /** Execution time of the run in core cycles. */
    double execCycles = 0.0;

    /** NVMM writes during the run (all causes). */
    double nvmmWrites = 0.0;

    /** Result correctness vs. the golden host computation. */
    bool verified = false;
    double maxAbsError = 0.0;

    /** Convenience accessor with a 0.0 default. */
    double
    stat(const std::string &name) const
    {
        auto it = stats.find(name);
        return it == stats.end() ? 0.0 : it->second;
    }
};

/** Run @p kernel to completion under @p scheme and measure it. */
RunOutcome runScheme(KernelId kernel, Scheme scheme,
                     const KernelParams &params,
                     const sim::MachineConfig &cfg);

/**
 * Windowed tmm measurement matching the paper's methodology
 * (Section V-C: warm up, then simulate two kk iterations): run
 * @p warm_stages stages, reset statistics, measure @p window_stages
 * stages. Only tmm supports windowing; verification is not
 * meaningful for a partial run, so `verified` reports whether the
 * executed prefix is internally consistent (always true here).
 */
RunOutcome runTmmWindow(Scheme scheme, const KernelParams &params,
                        const sim::MachineConfig &cfg,
                        int warm_stages, int window_stages);

/** Result of a crash-inject / recover / resume experiment. */
struct CrashOutcome
{
    /** Whether the armed crash actually fired. */
    bool crashed = false;

    /** What recovery reported (last recovery if several crashes). */
    core::RecoveryResult recovery;

    /** Number of injected crashes that fired. */
    int crashes = 0;

    /** Final result correctness. */
    bool verified = false;
    double maxAbsError = 0.0;

    /** Core-0 cycles spent inside recovery (checks + repairs). */
    double recoveryCycles = 0.0;
};

/**
 * Run the LP variant of @p kernel, injecting a crash after
 * @p crash_after_stores persistent stores; then restore the durable
 * image, recover, resume, and verify. If the store budget exceeds the
 * run's stores, the run simply completes (crashed = false).
 */
CrashOutcome runLpWithCrash(KernelId kernel, const KernelParams &params,
                            const sim::MachineConfig &cfg,
                            std::uint64_t crash_after_stores);

/**
 * Like runLpWithCrash but injects a *sequence* of crashes: entry i of
 * @p crash_points arms a crash that many stores after the previous
 * resume (so later crashes can hit recovery or resumed execution).
 */
CrashOutcome runLpWithCrashes(KernelId kernel,
                              const KernelParams &params,
                              const sim::MachineConfig &cfg,
                              const std::vector<std::uint64_t> &
                                  crash_points);

} // namespace lp::kernels

#endif // LP_KERNELS_HARNESS_HH
