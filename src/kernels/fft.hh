/**
 * @file
 * Iterative Stockham radix-2 FFT (the paper's FFT benchmark).
 *
 * Stockham's autosort formulation is naturally out-of-place: stage k
 * reads one buffer and writes the other, with no bit-reversal pass.
 * That ping-pong structure is exactly what staged Lazy Persistency
 * recovery wants: stage k+1 fully overwrites the buffer stage k read,
 * so recovery resumes after the newest stage whose regions all
 * persisted (NewestFullStage), and stage 0 reads an immutable
 * persistent input so even a total loss restarts cleanly.
 *
 * Complex data is stored as separate re/im arrays (SoA). LP regions
 * are contiguous chunks of the per-stage butterfly index space.
 */

#ifndef LP_KERNELS_FFT_HH
#define LP_KERNELS_FFT_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "lp/checksum.hh"
#include "lp/checksum_table.hh"
#include "lp/recovery.hh"
#include "lp/runtime.hh"
#include "kernels/workload.hh"

namespace lp::kernels
{

/** Pointers into the FFT's persistent state. */
struct FftView
{
    const double *inRe;  ///< immutable input (stage-0 source)
    const double *inIm;
    double *aRe;         ///< dst of even stages
    double *aIm;
    double *bRe;         ///< dst of odd stages
    double *bIm;
    int n;               ///< length, a power of two
};

/** Source re/im of stage @p k. */
inline const double *
fftSrcRe(const FftView &v, int k)
{
    if (k == 0)
        return v.inRe;
    return (k - 1) % 2 == 0 ? v.aRe : v.bRe;
}

inline const double *
fftSrcIm(const FftView &v, int k)
{
    if (k == 0)
        return v.inIm;
    return (k - 1) % 2 == 0 ? v.aIm : v.bIm;
}

inline double *
fftDstRe(const FftView &v, int k)
{
    return k % 2 == 0 ? v.aRe : v.bRe;
}

inline double *
fftDstIm(const FftView &v, int k)
{
    return k % 2 == 0 ? v.aIm : v.bIm;
}

/**
 * Execute butterflies [u0, u1) of stage @p k; if @p region is
 * non-null, fold every stored value into it.
 *
 * Stage k treats the data as n_k = n>>k interleaved transforms of
 * stride s_k = 1<<k: butterfly u = p*s_k + q combines src[q + s_k*p]
 * and src[q + s_k*(p + m_k)] into dst[q + s_k*2p] (sum) and
 * dst[q + s_k*(2p+1)] (twiddled difference), m_k = n_k / 2.
 */
template <typename Env>
void
fftChunk(Env &env, const FftView &v, int k, std::int64_t u0,
         std::int64_t u1, core::LpRegion *region)
{
    const double *sre = fftSrcRe(v, k);
    const double *sim = fftSrcIm(v, k);
    double *dre = fftDstRe(v, k);
    double *dim = fftDstIm(v, k);

    const std::int64_t sk = std::int64_t{1} << k;
    const std::int64_t mk = (static_cast<std::int64_t>(v.n) >> k) / 2;
    const double theta = -2.0 * M_PI /
                         static_cast<double>(v.n >> k);

    double wre = 1.0;
    double wim = 0.0;
    std::int64_t wp = -1;
    for (std::int64_t u = u0; u < u1; ++u) {
        const std::int64_t p = u >> k;
        const std::int64_t q = u & (sk - 1);
        if (p != wp) {
            wre = std::cos(theta * static_cast<double>(p));
            wim = std::sin(theta * static_cast<double>(p));
            wp = p;
            env.tick(40);
        }
        const double are = env.ld(&sre[q + sk * p]);
        const double aim = env.ld(&sim[q + sk * p]);
        const double bre = env.ld(&sre[q + sk * (p + mk)]);
        const double bim = env.ld(&sim[q + sk * (p + mk)]);

        const double sum_re = are + bre;
        const double sum_im = aim + bim;
        const double dif_re = are - bre;
        const double dif_im = aim - bim;
        const double tw_re = dif_re * wre - dif_im * wim;
        const double tw_im = dif_re * wim + dif_im * wre;
        env.tick(14);

        env.st(&dre[q + sk * 2 * p], sum_re);
        env.st(&dim[q + sk * 2 * p], sum_im);
        env.st(&dre[q + sk * (2 * p + 1)], tw_re);
        env.st(&dim[q + sk * (2 * p + 1)], tw_im);
        if (region) {
            region->update(env, sum_re);
            region->update(env, sum_im);
            region->update(env, tw_re);
            region->update(env, tw_im);
        }
    }
}

/** Checksum of chunk [u0, u1)'s current outputs for stage @p k. */
template <typename Env>
std::uint64_t
fftChunkChecksum(Env &env, const FftView &v, int k, std::int64_t u0,
                 std::int64_t u1, core::ChecksumKind kind)
{
    const double *dre = fftDstRe(v, k);
    const double *dim = fftDstIm(v, k);
    const std::int64_t sk = std::int64_t{1} << k;
    core::ChecksumAcc acc(kind);
    const std::uint64_t cost = core::ChecksumAcc::updateCost(kind);
    for (std::int64_t u = u0; u < u1; ++u) {
        const std::int64_t p = u >> k;
        const std::int64_t q = u & (sk - 1);
        acc.add(env.ld(&dre[q + sk * 2 * p]));
        acc.add(env.ld(&dim[q + sk * 2 * p]));
        acc.add(env.ld(&dre[q + sk * (2 * p + 1)]));
        acc.add(env.ld(&dim[q + sk * (2 * p + 1)]));
        env.tick(4 * cost);
    }
    return acc.value();
}

/** Host reference: the same Stockham FFT on plain arrays. */
void fftGolden(const std::vector<double> &in_re,
               const std::vector<double> &in_im,
               std::vector<double> &out_re,
               std::vector<double> &out_im);

/** The simulated FFT workload. */
class FftWorkload : public Workload
{
  public:
    FftWorkload(const KernelParams &params, SimContext &ctx);

    std::string name() const override { return "fft"; }
    void run(Scheme scheme) override;
    core::RecoveryResult recoverAndResume() override;
    bool verify(double tol = 1e-6) const override;
    double maxAbsError() const override;
    std::size_t numRegions() const override;

    int numStages() const { return stages; }
    int regionsPerStage() const { return regions; }

  private:
    std::size_t
    key(int stage, int r) const
    {
        return static_cast<std::size_t>(stage) * regions + r;
    }

    /** Butterfly range [u0, u1) of region @p r. */
    void chunkBounds(int r, std::int64_t &u0, std::int64_t &u1) const;

    void runStages(Scheme scheme, int from_stage);

    KernelParams p;
    SimContext &ctx;
    FftView v;
    int stages;
    int regions;
    std::vector<double> goldenRe;
    std::vector<double> goldenIm;
    std::unique_ptr<core::ChecksumTable> table_;
};

} // namespace lp::kernels

#endif // LP_KERNELS_FFT_HH
