#include "kernels/spmv.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/rng.hh"
#include "ep/pmem_ops.hh"
#include "kernels/env.hh"

namespace lp::kernels
{

SpmvWorkload::SpmvWorkload(const KernelParams &params, SimContext &c)
    : p(params), ctx(c)
{
    LP_ASSERT(p.n > 0 && p.bsize > 0 && p.n % p.bsize == 0,
              "n must be a multiple of bsize");
    LP_ASSERT(p.iterations >= 1, "need at least one iteration");
    LP_ASSERT(p.threads >= 1 &&
              p.threads <= ctx.machine.config().numCores,
              "more threads than cores");

    // Build a CSR operator with an irregular pattern: row i has
    // 1 + (i % 13) off-diagonal entries at pseudo-random columns,
    // plus a dominant diagonal so iterates stay bounded.
    Rng rng(p.seed);
    std::vector<std::int32_t> row_ptr(p.n + 1, 0);
    std::vector<std::int32_t> col_idx;
    std::vector<double> vals;
    for (int i = 0; i < p.n; ++i) {
        const int off = 1 + (i % 13);
        col_idx.push_back(i);
        vals.push_back(0.5);
        for (int e = 0; e < off; ++e) {
            col_idx.push_back(
                static_cast<std::int32_t>(rng.below(p.n)));
            vals.push_back(rng.uniform(-0.4, 0.4) /
                           static_cast<double>(off));
        }
        row_ptr[i + 1] =
            static_cast<std::int32_t>(col_idx.size());
    }
    const std::size_t nnz = col_idx.size();

    auto *rp = ctx.arena.alloc<std::int32_t>(p.n + 1);
    auto *ci = ctx.arena.alloc<std::int32_t>(nnz);
    auto *va = ctx.arena.alloc<double>(nnz);
    auto *x0 = ctx.arena.alloc<double>(p.n);
    auto *ba = ctx.arena.alloc<double>(p.n);
    auto *bb = ctx.arena.alloc<double>(p.n);
    std::copy(row_ptr.begin(), row_ptr.end(), rp);
    std::copy(col_idx.begin(), col_idx.end(), ci);
    std::copy(vals.begin(), vals.end(), va);
    for (int i = 0; i < p.n; ++i)
        x0[i] = rng.uniform(-1.0, 1.0);
    std::fill(ba, ba + p.n, 0.0);
    std::fill(bb, bb + p.n, 0.0);
    v = SpmvView{rp, ci, va, x0, ba, bb, p.n, p.bsize};

    // Golden: the same iteration on the host.
    std::vector<double> x(x0, x0 + p.n);
    std::vector<double> y(p.n, 0.0);
    for (int s = 0; s < p.iterations; ++s) {
        for (int i = 0; i < p.n; ++i) {
            double sum = 0.0;
            for (std::int32_t e = row_ptr[i]; e < row_ptr[i + 1];
                 ++e) {
                sum += vals[e] * x[col_idx[e]];
            }
            y[i] = sum;
        }
        std::swap(x, y);
    }
    golden = std::move(x);

    // The keyed table sized for ~50% load factor.
    table_ = std::make_unique<core::KeyedChecksumTable>(
        ctx.arena,
        static_cast<std::size_t>(numStages()) * numBands() * 2);
    markers = std::make_unique<ep::ProgressMarkers>(ctx.arena,
                                                    p.threads);
    ctx.arena.persistAll();
}

std::size_t
SpmvWorkload::numRegions() const
{
    return static_cast<std::size_t>(numStages()) * numBands();
}

void
SpmvWorkload::runStages(Scheme scheme, int from_stage)
{
    for (int s = from_stage; s < numStages(); ++s) {
        std::uint64_t idx = 0;
        for (int band = 0; band < numBands(); ++band) {
            const int t = band % p.threads;
            const std::uint64_t my_idx = idx++;
            ctx.sched.add(t, [this, scheme, s, band, t, my_idx] {
                SimEnv env(ctx.machine, ctx.arena, t, &ctx.crash);
                const int row0 = band * p.bsize;
                const int row1 = row0 + p.bsize;
                switch (scheme) {
                  case Scheme::Base:
                    spmvBand(env, v, s, row0, row1, nullptr);
                    break;
                  case Scheme::Lp: {
                      core::ChecksumAcc acc(p.checksum);
                      spmvBand(env, v, s, row0, row1, &acc);
                      // Claim a slot and commit key + digest
                      // lazily through the environment.
                      const std::uint64_t key = regionKey(s, band);
                      const std::size_t slot =
                          table_->claimSlot(key);
                      env.st(table_->keyPtr(slot), key);
                      env.st(table_->digestPtr(slot), acc.value());
                      env.onRegionCommit();
                      break;
                  }
                  case Scheme::EagerRecompute: {
                      spmvBand(env, v, s, row0, row1, nullptr);
                      ep::flushRange(
                          env, spmvDst(v, s) + row0,
                          static_cast<std::size_t>(p.bsize) *
                              sizeof(double));
                      env.sfence();
                      std::uint64_t *m = markers->slot(t);
                      env.st(m, my_idx);
                      env.clflushopt(m);
                      env.sfence();
                      env.onRegionCommit();
                      break;
                  }
                  case Scheme::Wal:
                    fatal("WAL is only implemented for tmm "
                          "(Table IV)");
                }
            });
        }
        ctx.sched.barrier();
    }
}

void
SpmvWorkload::run(Scheme scheme)
{
    runStages(scheme, 0);
}

std::uint64_t
SpmvWorkload::digestOf(SimEnv &env, int s, int band) const
{
    const double *y = spmvDst(v, s);
    core::ChecksumAcc acc(p.checksum);
    const std::uint64_t cost =
        core::ChecksumAcc::updateCost(p.checksum);
    for (int i = band * p.bsize; i < (band + 1) * p.bsize; ++i) {
        acc.add(env.ld(&y[i]));
        env.tick(cost);
    }
    return acc.value();
}

core::RecoveryResult
SpmvWorkload::recoverAndResume()
{
    SimEnv env(ctx.machine, ctx.arena, 0, &ctx.crash);

    core::RecoveryCallbacks cb;
    cb.numStages = numStages();
    cb.regionsInStage = [this](int) { return numBands(); };
    cb.matches = [this, &env](int s, int band) {
        // A torn slot (key persisted without its digest, or vice
        // versa) fails this check and the stage is recomputed.
        return table_->matches(regionKey(s, band),
                               digestOf(env, s, band));
    };
    core::RecoveryResult res =
        core::recover(cb, core::ResumePolicy::NewestFullStage);

    // Invalidate digests of stages about to be re-executed.
    for (int s = res.resumeStage; s < numStages(); ++s) {
        for (int band = 0; band < numBands(); ++band) {
            const std::size_t slot =
                table_->findSlot(regionKey(s, band));
            if (slot == core::KeyedChecksumTable::npos)
                continue;
            env.st(table_->digestPtr(slot), core::invalidDigest);
            env.clflushopt(table_->digestPtr(slot));
        }
    }
    env.sfence();

    runStages(Scheme::Lp, res.resumeStage);
    return res;
}

bool
SpmvWorkload::verify(double tol) const
{
    return maxAbsError() <= tol;
}

double
SpmvWorkload::maxAbsError() const
{
    const double *result =
        p.iterations % 2 == 1 ? v.bufA : v.bufB;
    if (p.iterations == 0)
        result = v.x0;
    double worst = 0.0;
    for (int i = 0; i < p.n; ++i)
        worst = std::max(worst, std::fabs(result[i] - golden[i]));
    return worst;
}

} // namespace lp::kernels
