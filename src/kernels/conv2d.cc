#include "kernels/conv2d.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/rng.hh"
#include "kernels/env.hh"

namespace lp::kernels
{

Conv2dWorkload::Conv2dWorkload(const KernelParams &params,
                               SimContext &c)
    : p(params), ctx(c)
{
    LP_ASSERT(p.n > 0 && p.bsize > 0 && p.n % p.bsize == 0,
              "n must be a multiple of bsize");
    LP_ASSERT(p.iterations >= 1, "need at least one iteration");
    LP_ASSERT(p.threads >= 1 &&
              p.threads <= ctx.machine.config().numCores,
              "more threads than cores");

    const std::size_t elems = static_cast<std::size_t>(p.n) * p.n;
    double *input = ctx.arena.alloc<double>(elems);
    double *w = ctx.arena.alloc<double>(9);
    double *buf_a = ctx.arena.alloc<double>(elems);
    double *buf_b = ctx.arena.alloc<double>(elems);
    v = Conv2dView{input, w, buf_a, buf_b, p.n, p.bsize};

    Rng rng(p.seed);
    for (std::size_t i = 0; i < elems; ++i)
        input[i] = rng.uniform(-1.0, 1.0);
    // A mildly smoothing, non-symmetric stencil.
    const double stencil[9] = {0.05, 0.10, 0.05,
                               0.10, 0.35, 0.12,
                               0.04, 0.11, 0.08};
    std::copy(stencil, stencil + 9, w);
    std::fill(buf_a, buf_a + elems, 0.0);
    std::fill(buf_b, buf_b + elems, 0.0);

    // Golden: apply the same iterated stencil on the host.
    std::vector<double> src(input, input + elems);
    std::vector<double> dst(elems, 0.0);
    for (int s = 0; s < p.iterations; ++s) {
        for (int i = 0; i < p.n; ++i) {
            for (int j = 0; j < p.n; ++j) {
                double acc = 0.0;
                for (int di = -1; di <= 1; ++di) {
                    const int si = i + di;
                    if (si < 0 || si >= p.n)
                        continue;
                    for (int dj = -1; dj <= 1; ++dj) {
                        const int sj = j + dj;
                        if (sj < 0 || sj >= p.n)
                            continue;
                        acc += src[static_cast<std::size_t>(si) * p.n +
                                   sj] *
                               stencil[(di + 1) * 3 + (dj + 1)];
                    }
                }
                dst[static_cast<std::size_t>(i) * p.n + j] = acc;
            }
        }
        std::swap(src, dst);
    }
    golden = std::move(src);

    table_ = std::make_unique<core::ChecksumTable>(
        ctx.arena,
        static_cast<std::size_t>(numStages()) * numBands());
    markers = std::make_unique<ep::ProgressMarkers>(ctx.arena,
                                                    p.threads);
    ctx.arena.persistAll();
}

std::size_t
Conv2dWorkload::numRegions() const
{
    return static_cast<std::size_t>(numStages()) * numBands();
}

const double *
Conv2dWorkload::result() const
{
    return conv2dDst(v, p.iterations - 1);
}

void
Conv2dWorkload::runStages(Scheme scheme, int from_stage)
{
    for (int s = from_stage; s < numStages(); ++s) {
        std::uint64_t idx = 0;
        for (int band = 0; band < numBands(); ++band) {
            const int t = band % p.threads;
            const std::uint64_t my_idx = idx++;
            ctx.sched.add(t, [this, scheme, s, band, t, my_idx] {
                SimEnv env(ctx.machine, ctx.arena, t, &ctx.crash);
                const int row0 = band * p.bsize;
                const int row1 = row0 + p.bsize;
                switch (scheme) {
                  case Scheme::Base:
                    conv2dBandBase(env, v, s, row0, row1);
                    break;
                  case Scheme::Lp: {
                      core::LpRegion region(*table_, p.checksum);
                      conv2dBandLp(env, v, s, row0, row1, region,
                                   key(s, band));
                      break;
                  }
                  case Scheme::EagerRecompute: {
                      conv2dBandBase(env, v, s, row0, row1);
                      std::vector<std::pair<const void *,
                                            std::size_t>> ranges;
                      ranges.emplace_back(
                          conv2dDst(v, s) +
                              static_cast<std::size_t>(row0) * p.n,
                          static_cast<std::size_t>(p.bsize) * p.n *
                              sizeof(double));
                      ep::eagerCommitRegion(env, ranges, *markers, t,
                                            my_idx);
                      break;
                  }
                  case Scheme::Wal:
                    fatal("WAL is only implemented for tmm "
                          "(Table IV)");
                }
            });
        }
        // Data dependence between stages: barrier.
        ctx.sched.barrier();
    }
}

void
Conv2dWorkload::run(Scheme scheme)
{
    runStages(scheme, 0);
}

core::RecoveryResult
Conv2dWorkload::recoverAndResume()
{
    SimEnv env(ctx.machine, ctx.arena, 0, &ctx.crash);

    core::RecoveryCallbacks cb;
    cb.numStages = numStages();
    cb.regionsInStage = [this](int) { return numBands(); };
    cb.matches = [this, &env](int s, int band) {
        if (table_->neverCommitted(key(s, band)))
            return false;
        const int row0 = band * p.bsize;
        const std::uint64_t digest = conv2dBandChecksum(
            env, v, s, row0, row0 + p.bsize, p.checksum);
        return digest == table_->stored(key(s, band));
    };
    core::RecoveryResult res =
        core::recover(cb, core::ResumePolicy::NewestFullStage);

    // Drop stale digests of the stages about to be re-executed so a
    // second crash cannot match a pre-crash digest.
    for (int s = res.resumeStage; s < numStages(); ++s) {
        for (int band = 0; band < numBands(); ++band) {
            std::uint64_t *e = table_->entry(key(s, band));
            env.st(e, core::invalidDigest);
            env.clflushopt(e);
        }
    }
    env.sfence();

    runStages(Scheme::Lp, res.resumeStage);
    return res;
}

bool
Conv2dWorkload::verify(double tol) const
{
    return maxAbsError() <= tol;
}

double
Conv2dWorkload::maxAbsError() const
{
    const double *r = result();
    double worst = 0.0;
    const std::size_t elems = static_cast<std::size_t>(p.n) * p.n;
    for (std::size_t i = 0; i < elems; ++i)
        worst = std::max(worst, std::fabs(r[i] - golden[i]));
    return worst;
}

} // namespace lp::kernels
