/**
 * @file
 * The *embedded* checksum organization of Figure 7(a): checksums are
 * stored in extra columns appended to the output matrix itself,
 * instead of a standalone table (Figure 7(b), the library default).
 *
 * The paper considers this design and rejects it: the space overhead
 * is N^2*P/bsize (one full column per kk stage) vs. the table's
 * N^2*P/bsize^2 entries, the data layout changes (row stride grows,
 * upsetting alignment and compiler assumptions), and programming
 * complexity rises. This module implements it faithfully so the
 * tradeoff can be *measured* (bench_embedded_checksums) and its
 * recovery tested: digests initialize to the NaN bit pattern, the
 * paper's suggested "never a real value" sentinel (Section IV).
 *
 * The output matrix is allocated with row stride n + numStages; the
 * digest of region (band, kk) lives at row band*bsize, column
 * n + kkIdx, as a bit-cast double.
 */

#ifndef LP_KERNELS_TMM_EMBEDDED_HH
#define LP_KERNELS_TMM_EMBEDDED_HH

#include <bit>
#include <cstdint>

#include "lp/checksum.hh"
#include "kernels/workload.hh"

namespace lp::kernels
{

/** Views over the stride-extended matrices of the embedded layout. */
struct TmmEmbView
{
    const double *a;
    const double *b;
    double *c;        ///< n rows x stride columns
    int n;
    int bsize;
    int stride;       ///< n + numStages
};

/** Digest cell of region (band, stage). */
inline double *
embDigestCell(const TmmEmbView &v, int band, int stage)
{
    return &v.c[static_cast<std::size_t>(band) * v.bsize * v.stride +
                v.n + stage];
}

/** One LP region with the embedded organization. */
template <typename Env>
void
tmmEmbRegionLp(Env &env, const TmmEmbView &v, int stage, int band,
               core::ChecksumKind kind)
{
    const int n = v.n;
    const int b = v.bsize;
    const int kk = stage * b;
    const int ii = band * b;
    core::ChecksumAcc acc(kind);
    const std::uint64_t cost = core::ChecksumAcc::updateCost(kind);
    for (int jj = 0; jj < n; jj += b) {
        for (int i = ii; i < ii + b; ++i) {
            for (int j = jj; j < jj + b; ++j) {
                double sum =
                    env.ld(&v.c[static_cast<std::size_t>(i) *
                                v.stride + j]);
                for (int k = kk; k < kk + b; ++k) {
                    sum += env.ld(&v.a[static_cast<std::size_t>(i) *
                                       n + k]) *
                           env.ld(&v.b[static_cast<std::size_t>(k) *
                                       n + j]);
                }
                env.tick(2 * b + 4);
                env.st(&v.c[static_cast<std::size_t>(i) * v.stride +
                            j],
                       sum);
                acc.add(sum);
                env.tick(cost);
            }
        }
    }
    env.st(embDigestCell(const_cast<TmmEmbView &>(v), band, stage),
           std::bit_cast<double>(acc.value()));
    env.onRegionCommit();
}

/** Current checksum of a band (region traversal order). */
template <typename Env>
std::uint64_t
tmmEmbBandChecksum(Env &env, const TmmEmbView &v, int band,
                   core::ChecksumKind kind)
{
    const int n = v.n;
    const int b = v.bsize;
    const int ii = band * b;
    core::ChecksumAcc acc(kind);
    const std::uint64_t cost = core::ChecksumAcc::updateCost(kind);
    for (int jj = 0; jj < n; jj += b) {
        for (int i = ii; i < ii + b; ++i) {
            for (int j = jj; j < jj + b; ++j) {
                acc.add(env.ld(&v.c[static_cast<std::size_t>(i) *
                                    v.stride + j]));
                env.tick(cost);
            }
        }
    }
    return acc.value();
}

/** Outcome of one embedded-organization run. */
struct TmmEmbeddedOutcome
{
    double execCycles = 0.0;
    double nvmmWrites = 0.0;
    bool verified = false;
    double maxAbsError = 0.0;

    /** Extra persistent bytes the embedding added to the matrix. */
    std::size_t embeddedBytes = 0;

    /** Whether the injected crash fired (crash runs only). */
    bool crashed = false;

    /** Bands recovered by checksum match / by recomputation. */
    int bandsMatched = 0;
    int bandsRebuilt = 0;
};

/**
 * Run tmm+LP with embedded checksums on a fresh simulated machine;
 * when @p crash_after_stores is nonzero, inject a crash, recover
 * (per-band Figure 9, reading digests from the matrix columns),
 * resume, and verify.
 */
TmmEmbeddedOutcome runTmmEmbedded(const KernelParams &params,
                                  const sim::MachineConfig &cfg,
                                  std::uint64_t crash_after_stores = 0);

} // namespace lp::kernels

#endif // LP_KERNELS_TMM_EMBEDDED_HH
