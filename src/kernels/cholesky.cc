#include "kernels/cholesky.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/rng.hh"
#include "ep/eager_recompute.hh"
#include "kernels/env.hh"

namespace lp::kernels
{

CholeskyWorkload::CholeskyWorkload(const KernelParams &params,
                                   SimContext &c)
    : p(params), ctx(c)
{
    LP_ASSERT(p.n > 0 && p.bsize > 0 && p.n % p.bsize == 0,
              "n must be a multiple of bsize");
    LP_ASSERT(p.threads >= 1 &&
              p.threads <= ctx.machine.config().numCores,
              "more threads than cores");

    const std::size_t elems = static_cast<std::size_t>(p.n) * p.n;
    double *a = ctx.arena.alloc<double>(elems);
    double *l = ctx.arena.alloc<double>(elems);
    v = CholView{a, l, p.n, p.bsize};

    // Symmetric, diagonally dominant => positive definite.
    Rng rng(p.seed);
    for (int i = 0; i < p.n; ++i) {
        for (int j = 0; j <= i; ++j) {
            const double x = rng.uniform(0.0, 1.0);
            a[static_cast<std::size_t>(i) * p.n + j] = x;
            a[static_cast<std::size_t>(j) * p.n + i] = x;
        }
        a[static_cast<std::size_t>(i) * p.n + i] += p.n;
    }
    std::fill(l, l + elems, 0.0);

    // Golden: plain host Cholesky (lower).
    golden.assign(a, a + elems);
    for (int j = 0; j < p.n; ++j) {
        double d = golden[static_cast<std::size_t>(j) * p.n + j];
        for (int t = 0; t < j; ++t) {
            const double x = golden[static_cast<std::size_t>(j) * p.n +
                                    t];
            d -= x * x;
        }
        const double diag = std::sqrt(d);
        golden[static_cast<std::size_t>(j) * p.n + j] = diag;
        for (int i = j + 1; i < p.n; ++i) {
            double x = golden[static_cast<std::size_t>(i) * p.n + j];
            for (int t = 0; t < j; ++t) {
                x -= golden[static_cast<std::size_t>(i) * p.n + t] *
                     golden[static_cast<std::size_t>(j) * p.n + t];
            }
            golden[static_cast<std::size_t>(i) * p.n + j] = x / diag;
        }
    }
    // Zero the upper triangle of the golden factor to match l.
    for (int i = 0; i < p.n; ++i)
        for (int j = i + 1; j < p.n; ++j)
            golden[static_cast<std::size_t>(i) * p.n + j] = 0.0;

    // Key layout: stage jb owns a contiguous range of
    // regionsInStage(jb) entries.
    stageKeyBase.resize(numStages() + 1);
    stageKeyBase[0] = 0;
    for (int jb = 0; jb < numStages(); ++jb)
        stageKeyBase[jb + 1] = stageKeyBase[jb] + regionsInStage(jb);
    table_ = std::make_unique<core::ChecksumTable>(
        ctx.arena, stageKeyBase[numStages()]);
    markers = std::make_unique<ep::ProgressMarkers>(ctx.arena,
                                                    p.threads);
    ctx.arena.persistAll();
}

void
CholeskyWorkload::runRegion(SimEnv &env, Scheme scheme, int jb, int r)
{
    switch (scheme) {
      case Scheme::Base:
        cholBlock(env, v, jb, jb + r, nullptr, /*eager=*/false);
        break;
      case Scheme::Lp: {
          core::LpRegion region(*table_, p.checksum);
          region.reset(env);
          cholBlock(env, v, jb, jb + r, &region, /*eager=*/false);
          region.commit(env, key(jb, r));
          break;
      }
      case Scheme::EagerRecompute: {
          cholBlock(env, v, jb, jb + r, nullptr, /*eager=*/true);
          // Marker value: the region's global key (monotonic per
          // thread under the round-robin assignment).
          std::uint64_t *m = markers->slot(env.core());
          env.st(m, static_cast<std::uint64_t>(key(jb, r)));
          env.clflushopt(m);
          env.sfence();
          env.onRegionCommit();
          break;
      }
      case Scheme::Wal:
        fatal("WAL is only implemented for tmm (Table IV)");
    }
}

std::size_t
CholeskyWorkload::key(int jb, int r) const
{
    return stageKeyBase[jb] + static_cast<std::size_t>(r);
}

std::size_t
CholeskyWorkload::numRegions() const
{
    return stageKeyBase[numStages()];
}

void
CholeskyWorkload::runStages(Scheme scheme, int from_stage)
{
    for (int jb = from_stage; jb < numStages(); ++jb) {
        // Region 0: the diagonal block must finish before the panel.
        const int diag_thread = jb % p.threads;
        ctx.sched.add(diag_thread, [this, scheme, jb, diag_thread] {
            SimEnv env(ctx.machine, ctx.arena, diag_thread,
                       &ctx.crash);
            runRegion(env, scheme, jb, 0);
        });
        ctx.sched.barrier();

        for (int r = 1; r < regionsInStage(jb); ++r) {
            const int t = r % p.threads;
            ctx.sched.add(t, [this, scheme, jb, r, t] {
                SimEnv env(ctx.machine, ctx.arena, t, &ctx.crash);
                runRegion(env, scheme, jb, r);
            });
        }
        ctx.sched.barrier();
    }
}

void
CholeskyWorkload::run(Scheme scheme)
{
    runStages(scheme, 0);
}

core::RecoveryResult
CholeskyWorkload::recoverAndResume()
{
    SimEnv env(ctx.machine, ctx.arena, 0, &ctx.crash);

    core::RecoveryCallbacks cb;
    cb.numStages = numStages();
    cb.regionsInStage = [this](int jb) { return regionsInStage(jb); };
    cb.matches = [this, &env](int jb, int r) {
        if (table_->neverCommitted(key(jb, r)))
            return false;
        return cholBlockChecksum(env, v, jb, jb + r, p.checksum) ==
               table_->stored(key(jb, r));
    };
    cb.repair = [this, &env](int jb, int r) {
        core::LpRegion region(*table_, p.checksum);
        region.reset(env);
        cholBlock(env, v, jb, jb + r, &region, /*eager=*/true);
        region.commitEager(env, key(jb, r));
    };
    core::RecoveryResult res =
        core::recover(cb, core::ResumePolicy::ValidateAllUpTo);

    for (int jb = res.resumeStage; jb < numStages(); ++jb) {
        for (int r = 0; r < regionsInStage(jb); ++r) {
            std::uint64_t *e = table_->entry(key(jb, r));
            env.st(e, core::invalidDigest);
            env.clflushopt(e);
        }
    }
    env.sfence();

    runStages(Scheme::Lp, res.resumeStage);
    return res;
}

bool
CholeskyWorkload::verify(double tol) const
{
    return maxAbsError() <= tol;
}

double
CholeskyWorkload::maxAbsError() const
{
    double worst = 0.0;
    const std::size_t elems = static_cast<std::size_t>(p.n) * p.n;
    for (std::size_t i = 0; i < elems; ++i)
        worst = std::max(worst, std::fabs(v.l[i] - golden[i]));
    return worst;
}

} // namespace lp::kernels
