#include "kernels/tmm.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/rng.hh"
#include "kernels/env.hh"

namespace lp::kernels
{

TmmWorkload::TmmWorkload(const KernelParams &params, SimContext &c)
    : p(params), ctx(c)
{
    LP_ASSERT(p.n > 0 && p.bsize > 0 && p.n % p.bsize == 0,
              "n must be a multiple of bsize");
    LP_ASSERT(p.threads >= 1 &&
              p.threads <= ctx.machine.config().numCores,
              "more threads than cores");

    const std::size_t elems = static_cast<std::size_t>(p.n) * p.n;
    double *a = ctx.arena.alloc<double>(elems);
    double *b = ctx.arena.alloc<double>(elems);
    double *cm = ctx.arena.alloc<double>(elems);
    v = TmmView{a, b, cm, p.n, p.bsize};

    Rng rng(p.seed);
    for (std::size_t i = 0; i < elems; ++i)
        a[i] = rng.uniform(0.0, 1.0);
    for (std::size_t i = 0; i < elems; ++i)
        b[i] = rng.uniform(0.0, 1.0);
    std::fill(cm, cm + elems, 0.0);

    // Golden result on the host (untiled i/k/j loop).
    golden.assign(elems, 0.0);
    for (int i = 0; i < p.n; ++i) {
        for (int k = 0; k < p.n; ++k) {
            const double aik = a[static_cast<std::size_t>(i) * p.n + k];
            for (int j = 0; j < p.n; ++j) {
                golden[static_cast<std::size_t>(i) * p.n + j] +=
                    aik * b[static_cast<std::size_t>(k) * p.n + j];
            }
        }
    }

    table_ = std::make_unique<core::ChecksumTable>(
        ctx.arena,
        static_cast<std::size_t>(numBands()) * numStages() *
            p.threads);
    markers = std::make_unique<ep::ProgressMarkers>(ctx.arena,
                                                    p.threads);
    walAreas.reserve(p.threads);
    for (int t = 0; t < p.threads; ++t) {
        walAreas.push_back(std::make_unique<ep::WalArea>(
            ctx.arena,
            static_cast<std::size_t>(p.bsize) * p.n));
    }

    // The paper assumes inputs (and zeroed outputs) are already
    // persistent when the kernel starts.
    ctx.arena.persistAll();
}

std::size_t
TmmWorkload::numRegions() const
{
    return static_cast<std::size_t>(numBands()) * numStages();
}

void
TmmWorkload::scheduleLp(const std::vector<int> &resume_stage,
                        int end_stage)
{
    // kk-major order, as in Figure 8's loop nest.
    for (int t = 0; t < p.threads; ++t) {
        for (int s = 0; s < end_stage; ++s) {
            for (int band = t; band < numBands(); band += p.threads) {
                if (s < resume_stage[band])
                    continue;
                ctx.sched.add(t, [this, t, band, s] {
                    SimEnv env(ctx.machine, ctx.arena, t, &ctx.crash);
                    core::LpRegion region(*table_, p.checksum);
                    tmmRegionLp(env, v, s * p.bsize, band * p.bsize,
                                region, key(band, s));
                });
            }
        }
    }
}

void
TmmWorkload::scheduleUniform(Scheme scheme, int from_stage,
                             int end_stage)
{
    for (int t = 0; t < p.threads; ++t) {
        std::uint64_t idx = 0;
        for (int s = 0; s < end_stage; ++s) {
            for (int band = t; band < numBands(); band += p.threads) {
                const std::uint64_t my_idx = idx++;
                if (s < from_stage)
                    continue;
                ctx.sched.add(t, [this, t, band, s, scheme, my_idx] {
                    SimEnv env(ctx.machine, ctx.arena, t, &ctx.crash);
                    const int kk = s * p.bsize;
                    const int ii = band * p.bsize;
                    switch (scheme) {
                      case Scheme::Base:
                        tmmRegionBase(env, v, kk, ii);
                        break;
                      case Scheme::EagerRecompute:
                        tmmRegionEager(env, v, kk, ii, *markers, t,
                                       my_idx);
                        break;
                      case Scheme::Wal:
                        tmmRegionWal(env, v, kk, ii, *walAreas[t]);
                        break;
                      case Scheme::Lp:
                        panic("LP goes through scheduleLp");
                    }
                });
            }
        }
    }
}

void
TmmWorkload::run(Scheme scheme)
{
    if (scheme == Scheme::Lp) {
        scheduleLp(std::vector<int>(numBands(), 0), numStages());
    } else {
        scheduleUniform(scheme, 0, numStages());
    }
    ctx.sched.run();
}

void
TmmWorkload::runWindow(Scheme scheme, int warm_stages,
                       int window_stages)
{
    LP_ASSERT(warm_stages >= 0 && window_stages > 0 &&
              warm_stages + window_stages <= numStages(),
              "window exceeds the stage count");
    auto schedule = [&](int from, int to) {
        if (scheme == Scheme::Lp) {
            scheduleLp(std::vector<int>(numBands(), from), to);
        } else {
            scheduleUniform(scheme, from, to);
        }
    };
    if (warm_stages > 0) {
        schedule(0, warm_stages);
        ctx.sched.run();
        ctx.machine.syncAllCores();
    }
    ctx.machine.resetStats();
    schedule(warm_stages, warm_stages + window_stages);
    ctx.sched.run();
}

void
TmmWorkload::rebuildBandEager(int band, int through)
{
    SimEnv env(ctx.machine, ctx.arena, 0, &ctx.crash);
    const int ii = band * p.bsize;
    for (int i = ii; i < ii + p.bsize; ++i)
        for (int j = 0; j < p.n; ++j)
            env.st(&v.c[static_cast<std::size_t>(i) * p.n + j], 0.0);
    for (int s = 0; s < through; ++s)
        tmmRegionBase(env, v, s * p.bsize, ii);
    for (int i = ii; i < ii + p.bsize; ++i) {
        ep::flushRange(env, v.c + static_cast<std::size_t>(i) * p.n,
                       static_cast<std::size_t>(p.n) * sizeof(double));
    }
    env.sfence();
}

core::RecoveryResult
TmmWorkload::recoverAndResume()
{
    // Runs on the restored durable image. Per-band Figure 9: each
    // band independently finds the newest stage whose stored digest
    // matches the band's current (durable) contents.
    SimEnv env(ctx.machine, ctx.arena, 0, &ctx.crash);
    core::RecoveryResult res;
    std::vector<int> resume(numBands(), 0);

    for (int band = 0; band < numBands(); ++band) {
        const std::uint64_t current =
            tmmBandChecksum(env, v, band * p.bsize, p.checksum);
        int found = -1;
        for (int s = numStages() - 1; s >= 0; --s) {
            ++res.checked;
            if (table_->neverCommitted(key(band, s)))
                continue;
            if (table_->stored(key(band, s)) == current) {
                found = s;
                break;
            }
        }
        if (found < 0) {
            // No stage matches: the band may hold partial stage-0
            // writes. Repair = zero it eagerly; accumulation restarts
            // from stage 0.
            rebuildBandEager(band, 0);
            ++res.repaired;
        } else {
            ++res.matched;
        }
        resume[band] = found + 1;

        // Drop stale digests of stages this band will re-execute, so
        // a second crash cannot match a pre-crash digest.
        for (int s = resume[band]; s < numStages(); ++s) {
            std::uint64_t *e = table_->entry(key(band, s));
            env.st(e, core::invalidDigest);
            env.clflushopt(e);
        }
    }
    env.sfence();

    res.resumeStage = *std::min_element(resume.begin(), resume.end());
    scheduleLp(resume, numStages());
    ctx.sched.run();
    return res;
}

void
TmmWorkload::recoverEagerAndResume()
{
    // Marker-driven EagerRecompute recovery: everything up to and
    // including marker is durable; the marker+1 region may be
    // partially persisted and its band is rebuilt from the inputs.
    const int owned_base = numBands() / p.threads;
    std::vector<std::uint64_t> done(p.threads, 0);
    for (int t = 0; t < p.threads; ++t) {
        int owned = owned_base + (t < numBands() % p.threads ? 1 : 0);
        const std::uint64_t total =
            static_cast<std::uint64_t>(owned) * numStages();
        const std::uint64_t m = markers->value(t);
        done[t] = (m == ep::ProgressMarkers::none) ? 0 : m + 1;
        if (done[t] >= total || owned == 0)
            continue;
        const int s = static_cast<int>(done[t] / owned);
        const int pos = static_cast<int>(done[t] % owned);
        const int band = t + pos * p.threads;
        rebuildBandEager(band, s);
    }
    // Resume each thread at its first unexecuted region. Schedule all
    // threads with a shared skip is incorrect when counts differ, so
    // queue per thread.
    for (int t = 0; t < p.threads; ++t) {
        std::uint64_t idx = 0;
        for (int s = 0; s < numStages(); ++s) {
            for (int band = t; band < numBands(); band += p.threads) {
                const std::uint64_t my_idx = idx++;
                if (my_idx < done[t])
                    continue;
                ctx.sched.add(t, [this, t, band, s, my_idx] {
                    SimEnv env(ctx.machine, ctx.arena, t, &ctx.crash);
                    tmmRegionEager(env, v, s * p.bsize,
                                   band * p.bsize, *markers, t,
                                   my_idx);
                });
            }
        }
    }
    ctx.sched.run();
}

bool
TmmWorkload::verify(double tol) const
{
    return maxAbsError() <= tol;
}

double
TmmWorkload::maxAbsError() const
{
    double worst = 0.0;
    const std::size_t elems = static_cast<std::size_t>(p.n) * p.n;
    for (std::size_t i = 0; i < elems; ++i)
        worst = std::max(worst, std::fabs(v.c[i] - golden[i]));
    return worst;
}

} // namespace lp::kernels
