#include "kernels/workload.hh"

#include "base/logging.hh"
#include "kernels/cholesky.hh"
#include "kernels/conv2d.hh"
#include "kernels/fft.hh"
#include "kernels/gauss.hh"
#include "kernels/spmv.hh"
#include "kernels/tmm.hh"

namespace lp::kernels
{

std::string
schemeName(Scheme s)
{
    switch (s) {
      case Scheme::Base:           return "base";
      case Scheme::Lp:             return "LP";
      case Scheme::EagerRecompute: return "EP";
      case Scheme::Wal:            return "WAL";
    }
    return "unknown";
}

std::string
kernelName(KernelId k)
{
    switch (k) {
      case KernelId::Tmm:      return "tmm";
      case KernelId::Cholesky: return "cholesky";
      case KernelId::Conv2d:   return "2d-conv";
      case KernelId::Gauss:    return "gauss";
      case KernelId::Fft:      return "fft";
      case KernelId::Spmv:     return "spmv";
    }
    return "unknown";
}

std::unique_ptr<Workload>
makeWorkload(KernelId id, const KernelParams &params, SimContext &ctx)
{
    switch (id) {
      case KernelId::Tmm:
        return std::make_unique<TmmWorkload>(params, ctx);
      case KernelId::Cholesky:
        return std::make_unique<CholeskyWorkload>(params, ctx);
      case KernelId::Conv2d:
        return std::make_unique<Conv2dWorkload>(params, ctx);
      case KernelId::Gauss:
        return std::make_unique<GaussWorkload>(params, ctx);
      case KernelId::Fft:
        return std::make_unique<FftWorkload>(params, ctx);
      case KernelId::Spmv:
        return std::make_unique<SpmvWorkload>(params, ctx);
    }
    panic("unknown kernel id");
}

std::size_t
arenaBytesFor(KernelId id, const KernelParams &params)
{
    const std::size_t n = static_cast<std::size_t>(params.n);
    std::size_t data = 0;
    switch (id) {
      case KernelId::Tmm:
      case KernelId::Cholesky:
      case KernelId::Gauss:
        data = 2 * n * n * sizeof(double);
        break;
      case KernelId::Conv2d:
        data = 3 * n * n * sizeof(double);
        break;
      case KernelId::Fft:
        data = 6 * n * sizeof(double);
        break;
      case KernelId::Spmv:
        // CSR arrays (~14 nnz/row) + three vectors + keyed table.
        data = n * 14 * (sizeof(double) + 4) + 8 * n * sizeof(double);
        break;
    }
    if (id == KernelId::Tmm)
        data += n * n * sizeof(double);  // the third matrix
    // Checksum tables, markers, WAL logs, per-allocation block
    // padding: a generous fixed + proportional reserve.
    return data + data / 2 + (1u << 20);
}

} // namespace lp::kernels
