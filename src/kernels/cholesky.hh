/**
 * @file
 * Blocked left-looking Cholesky factorization (the paper's Cholesky
 * benchmark).
 *
 * A = L * L^T with A symmetric positive definite. The left-looking
 * (lazy) variant computes one block column of L per stage from the
 * original matrix and previously finished columns; no block is ever
 * rewritten, which makes every LP region idempotent given earlier
 * stages -- repair simply recomputes the block (Section III-E's
 * idempotent special case).
 *
 * Stage jb has one region per row block i >= jb. Region 0 is the
 * diagonal block (factor); regions 1.. are the panel blocks
 * (triangular solve), which depend on the diagonal, so the schedule
 * barriers after region 0 and recovery repairs in region order
 * (lp::core::recover guarantees increasing-region repair).
 *
 * Recovery policy: ValidateAllUpTo.
 */

#ifndef LP_KERNELS_CHOLESKY_HH
#define LP_KERNELS_CHOLESKY_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ep/eager_recompute.hh"
#include "ep/pmem_ops.hh"
#include "lp/checksum.hh"
#include "lp/checksum_table.hh"
#include "lp/recovery.hh"
#include "lp/runtime.hh"
#include "kernels/workload.hh"

namespace lp::kernels
{

class SimEnv;

/** Pointers into the factorization's persistent state. */
struct CholView
{
    const double *a;  ///< immutable SPD input
    double *l;        ///< output factor (lower triangular)
    int n;
    int bsize;
};

/**
 * Compute block (row block @p rblk, column block @p jb) of L.
 *
 * If @p region is non-null, every stored value is folded into it in
 * store order. If @p eager is true the block is flushed and fenced
 * after computation (used by repair and by the EagerRecompute
 * scheme's body; the marker handling differs between the two and is
 * done by the caller).
 */
template <typename Env>
void cholBlock(Env &env, const CholView &v, int jb, int rblk,
               core::LpRegion *region, bool eager);

/** Checksum of the block's current contents, in store order. */
template <typename Env>
std::uint64_t cholBlockChecksum(Env &env, const CholView &v, int jb,
                                int rblk, core::ChecksumKind kind);

/** The simulated Cholesky workload. */
class CholeskyWorkload : public Workload
{
  public:
    CholeskyWorkload(const KernelParams &params, SimContext &ctx);

    std::string name() const override { return "cholesky"; }
    void run(Scheme scheme) override;
    core::RecoveryResult recoverAndResume() override;
    bool verify(double tol = 1e-6) const override;
    double maxAbsError() const override;
    std::size_t numRegions() const override;

    int numStages() const { return p.n / p.bsize; }

    /** Regions in stage @p jb: one per row block >= jb. */
    int
    regionsInStage(int jb) const
    {
        return numStages() - jb;
    }

  private:
    std::size_t key(int jb, int r) const;

    void runStages(Scheme scheme, int from_stage);

    /** Execute one region under the given scheme. */
    void runRegion(SimEnv &env, Scheme scheme, int jb, int r);

    KernelParams p;
    SimContext &ctx;
    CholView v;
    std::vector<double> golden;
    std::unique_ptr<core::ChecksumTable> table_;
    std::unique_ptr<ep::ProgressMarkers> markers;
    std::vector<std::size_t> stageKeyBase;
};

// --- template definitions -------------------------------------------

template <typename Env>
void
cholBlock(Env &env, const CholView &v, int jb, int rblk,
          core::LpRegion *region, bool eager)
{
    const int n = v.n;
    const int b = v.bsize;
    const int i0 = rblk * b;
    const int j0 = jb * b;
    const bool diag = (rblk == jb);

    // tmp = A(i-block, j-block) - L(i-block, 0:j0) * L(j-block, 0:j0)^T
    std::vector<double> tmp(static_cast<std::size_t>(b) * b, 0.0);
    for (int ci = 0; ci < b; ++ci) {
        const int i = i0 + ci;
        for (int cj = 0; cj < b; ++cj) {
            if (diag && cj > ci)
                continue;
            const int j = j0 + cj;
            double acc = env.ld(&v.a[static_cast<std::size_t>(i) * n +
                                     j]);
            for (int t = 0; t < j0; ++t) {
                acc -= env.ld(&v.l[static_cast<std::size_t>(i) * n +
                                   t]) *
                       env.ld(&v.l[static_cast<std::size_t>(j) * n +
                                   t]);
            }
            env.tick(2 * static_cast<std::uint64_t>(j0) + 4);
            tmp[static_cast<std::size_t>(ci) * b + cj] = acc;
        }
    }

    if (diag) {
        // Dense Cholesky of tmp (lower part), then store.
        for (int q = 0; q < b; ++q) {
            double d = tmp[static_cast<std::size_t>(q) * b + q];
            for (int t = 0; t < q; ++t) {
                const double x =
                    tmp[static_cast<std::size_t>(q) * b + t];
                d -= x * x;
            }
            tmp[static_cast<std::size_t>(q) * b + q] = std::sqrt(d);
            env.tick(2 * static_cast<std::uint64_t>(q) + 20);
            for (int r2 = q + 1; r2 < b; ++r2) {
                double x = tmp[static_cast<std::size_t>(r2) * b + q];
                for (int t = 0; t < q; ++t) {
                    x -= tmp[static_cast<std::size_t>(r2) * b + t] *
                         tmp[static_cast<std::size_t>(q) * b + t];
                }
                x /= tmp[static_cast<std::size_t>(q) * b + q];
                tmp[static_cast<std::size_t>(r2) * b + q] = x;
                env.tick(2 * static_cast<std::uint64_t>(q) + 8);
            }
        }
        for (int ci = 0; ci < b; ++ci) {
            for (int cj = 0; cj <= ci; ++cj) {
                const double val =
                    tmp[static_cast<std::size_t>(ci) * b + cj];
                env.st(&v.l[static_cast<std::size_t>(i0 + ci) * n +
                            j0 + cj],
                       val);
                if (region)
                    region->update(env, val);
            }
        }
    } else {
        // Triangular solve: X * L(jb,jb)^T = tmp, row by row.
        for (int ci = 0; ci < b; ++ci) {
            std::vector<double> row(b);
            for (int cj = 0; cj < b; ++cj) {
                double x = tmp[static_cast<std::size_t>(ci) * b + cj];
                for (int t = 0; t < cj; ++t) {
                    x -= row[t] *
                         env.ld(&v.l[static_cast<std::size_t>(j0 + cj) *
                                     n + j0 + t]);
                }
                x /= env.ld(&v.l[static_cast<std::size_t>(j0 + cj) * n +
                                 j0 + cj]);
                row[cj] = x;
                env.tick(2 * static_cast<std::uint64_t>(cj) + 8);
            }
            for (int cj = 0; cj < b; ++cj) {
                env.st(&v.l[static_cast<std::size_t>(i0 + ci) * n +
                            j0 + cj],
                       row[cj]);
                if (region)
                    region->update(env, row[cj]);
            }
        }
    }

    if (eager) {
        // The diagonal block stores only the lower part, but the rest
        // of each row segment is untouched (clean), so a full-width
        // flush is harmless and simpler.
        for (int ci = 0; ci < b; ++ci) {
            ep::flushRange(
                env,
                &v.l[static_cast<std::size_t>(i0 + ci) * n + j0],
                static_cast<std::size_t>(b) * sizeof(double));
        }
        env.sfence();
    }
}

template <typename Env>
std::uint64_t
cholBlockChecksum(Env &env, const CholView &v, int jb, int rblk,
                  core::ChecksumKind kind)
{
    const int n = v.n;
    const int b = v.bsize;
    const int i0 = rblk * b;
    const int j0 = jb * b;
    const bool diag = (rblk == jb);
    core::ChecksumAcc acc(kind);
    const std::uint64_t cost = core::ChecksumAcc::updateCost(kind);
    for (int ci = 0; ci < b; ++ci) {
        const int hi = diag ? ci + 1 : b;
        for (int cj = 0; cj < hi; ++cj) {
            acc.add(env.ld(&v.l[static_cast<std::size_t>(i0 + ci) * n +
                                j0 + cj]));
            env.tick(cost);
        }
    }
    return acc.value();
}

} // namespace lp::kernels

#endif // LP_KERNELS_CHOLESKY_HH
