/**
 * @file
 * Tiled matrix multiplication (Figures 3, 4, 8, 9 of the paper).
 *
 * The 6-loop tiling of Figure 4 computes c += a * b tile by tile. The
 * LP region is one ii iteration inside a kk iteration (the paper's
 * chosen granularity, Table IV): it updates a band of bsize rows of c
 * across all columns, accumulating the contribution of columns
 * [kk, kk+bsize) of a.
 *
 * Region bodies are templates over the memory environment so the same
 * code runs simulated (SimEnv) and native (NativeEnv, Table VII).
 *
 * Recovery follows Figure 9, refined per band: bands are row-disjoint,
 * so each band independently scans its checksums newest-first for the
 * stage its durable data matches, repairs (zeroes) bands with no match
 * at all, and resumes accumulation from the matched stage + 1.
 */

#ifndef LP_KERNELS_TMM_HH
#define LP_KERNELS_TMM_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "ep/eager_recompute.hh"
#include "ep/pmem_ops.hh"
#include "ep/wal.hh"
#include "lp/checksum.hh"
#include "lp/checksum_table.hh"
#include "lp/runtime.hh"
#include "kernels/workload.hh"

namespace lp::kernels
{

/** Plain pointers into the three persistent matrices. */
struct TmmView
{
    const double *a;
    const double *b;
    double *c;
    int n;
    int bsize;
};

/**
 * One base (not failure-safe) region: band @p ii at stage @p kk.
 * This is Figure 4's j/i/k nest for a fixed (kk, ii).
 */
template <typename Env>
void
tmmRegionBase(Env &env, const TmmView &v, int kk, int ii)
{
    const int n = v.n;
    const int b = v.bsize;
    for (int jj = 0; jj < n; jj += b) {
        for (int i = ii; i < ii + b; ++i) {
            for (int j = jj; j < jj + b; ++j) {
                double sum = env.ld(&v.c[i * n + j]);
                for (int k = kk; k < kk + b; ++k) {
                    sum += env.ld(&v.a[i * n + k]) *
                           env.ld(&v.b[k * n + j]);
                }
                env.tick(2 * b + 4);
                env.st(&v.c[i * n + j], sum);
            }
        }
    }
}

/**
 * One Lazy Persistency region (Figure 8): the base body plus
 * reset / update / commit of the region checksum.
 */
template <typename Env>
void
tmmRegionLp(Env &env, const TmmView &v, int kk, int ii,
            core::LpRegion &region, std::size_t key,
            bool eager_commit = false)
{
    const int n = v.n;
    const int b = v.bsize;
    region.reset(env);
    for (int jj = 0; jj < n; jj += b) {
        for (int i = ii; i < ii + b; ++i) {
            for (int j = jj; j < jj + b; ++j) {
                double sum = env.ld(&v.c[i * n + j]);
                for (int k = kk; k < kk + b; ++k) {
                    sum += env.ld(&v.a[i * n + k]) *
                           env.ld(&v.b[k * n + j]);
                }
                env.tick(2 * b + 4);
                env.st(&v.c[i * n + j], sum);
                region.update(env, sum);
            }
        }
    }
    if (eager_commit)
        region.commitEager(env, key);
    else
        region.commit(env, key);
}

/**
 * Checksum of band @p ii's *current* contents, traversed in exactly
 * the order the region body updates it (Adler-32 is order-sensitive).
 * Recovery compares this against stored digests.
 */
template <typename Env>
std::uint64_t
tmmBandChecksum(Env &env, const TmmView &v, int ii,
                core::ChecksumKind kind)
{
    const int n = v.n;
    const int b = v.bsize;
    core::ChecksumAcc acc(kind);
    const std::uint64_t cost = core::ChecksumAcc::updateCost(kind);
    for (int jj = 0; jj < n; jj += b) {
        for (int i = ii; i < ii + b; ++i) {
            for (int j = jj; j < jj + b; ++j) {
                acc.add(env.ld(&v.c[i * n + j]));
                env.tick(cost);
            }
        }
    }
    return acc.value();
}

/**
 * One EagerRecompute region: the base body, then flush every modified
 * range, fence, and persist the progress marker (two fences total).
 */
template <typename Env>
void
tmmRegionEager(Env &env, const TmmView &v, int kk, int ii,
               ep::ProgressMarkers &markers, int thread,
               std::uint64_t marker_value)
{
    tmmRegionBase(env, v, kk, ii);
    std::vector<std::pair<const void *, std::size_t>> ranges;
    ranges.reserve(v.bsize);
    for (int i = ii; i < ii + v.bsize; ++i) {
        ranges.emplace_back(v.c + static_cast<std::size_t>(i) * v.n,
                            static_cast<std::size_t>(v.n) *
                                sizeof(double));
    }
    ep::eagerCommitRegion(env, ranges, markers, thread, marker_value);
}

/**
 * One WAL region: a durable transaction (Figure 2) logging the
 * pre-image of every word the region modifies, with four fences.
 */
template <typename Env>
void
tmmRegionWal(Env &env, const TmmView &v, int kk, int ii,
             ep::WalArea &log)
{
    ep::WalTx<Env> tx(env, log);
    for (int i = ii; i < ii + v.bsize; ++i)
        for (int j = 0; j < v.n; ++j)
            tx.logWord(&v.c[i * v.n + j]);
    tx.seal();
    tmmRegionBase(env, v, kk, ii);
    tx.commit();
}

/** The simulated TMM workload (all four schemes + both recoveries). */
class TmmWorkload : public Workload
{
  public:
    TmmWorkload(const KernelParams &params, SimContext &ctx);

    std::string name() const override { return "tmm"; }
    void run(Scheme scheme) override;
    core::RecoveryResult recoverAndResume() override;
    bool verify(double tol = 1e-6) const override;
    double maxAbsError() const override;
    std::size_t numRegions() const override;

    /** EagerRecompute recovery: marker-driven recompute (tests). */
    void recoverEagerAndResume();

    /**
     * Windowed execution matching the paper's methodology
     * (Section V-C): run @p warm_stages kk stages as warm-up, reset
     * the machine statistics, then run @p window_stages more. The
     * paper warms up ~250M instructions and measures two kk
     * iterations; measuring a window (instead of the whole run)
     * leaves the tail of the output dirty in the cache, which is
     * precisely why eager flushing shows up as write amplification.
     * The run stops after the window, so verify() does not apply.
     */
    void runWindow(Scheme scheme, int warm_stages, int window_stages);

    const TmmView &view() const { return v; }
    core::ChecksumTable &table() { return *table_; }
    int numBands() const { return p.n / p.bsize; }
    int numStages() const { return p.n / p.bsize; }

  private:
    /**
     * Hash-table key per the paper (Section III-D): ii, kk, and the
     * thread id, collision-free, table size (N/bsize)^2 * P. The
     * thread dimension is redundant under our band partitioning but
     * is kept for fidelity -- it reproduces the paper's "table is 1%
     * of the matrices" space overhead and its cache footprint.
     */
    std::size_t
    key(int band, int stage) const
    {
        return (static_cast<std::size_t>(band) * numStages() + stage) *
                   p.threads +
               bandThread(band);
    }

    int bandThread(int band) const { return band % p.threads; }

    /**
     * Queue LP regions: band @p band runs stages
     * [resume_stage[band], end_stage).
     */
    void scheduleLp(const std::vector<int> &resume_stage,
                    int end_stage);

    /**
     * Queue Base / EagerRecompute / WAL regions for stages
     * [from_stage, end_stage) in kk-major order.
     */
    void scheduleUniform(Scheme scheme, int from_stage,
                         int end_stage);

    /** Zero band @p band and re-accumulate stages [0,@p through) EP. */
    void rebuildBandEager(int band, int through);

    KernelParams p;
    SimContext &ctx;
    TmmView v;
    std::vector<double> golden;
    std::unique_ptr<core::ChecksumTable> table_;
    std::unique_ptr<ep::ProgressMarkers> markers;
    std::vector<std::unique_ptr<ep::WalArea>> walAreas;
};

} // namespace lp::kernels

#endif // LP_KERNELS_TMM_HH
