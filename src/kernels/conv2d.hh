/**
 * @file
 * Iterated 2D convolution (the paper's 2D-conv benchmark, run for a
 * number of outer iterations as in Section V-C).
 *
 * Each outer iteration applies a 3x3 stencil with zero padding,
 * reading one buffer and writing the other (ping-pong). Stage 0 reads
 * an immutable persistent input, so a worst-case recovery can always
 * restart from scratch. LP regions are row bands of the output; a
 * band is idempotent given the previous buffer, which makes repair
 * trivial (Section III-E's idempotent-region special case).
 *
 * Recovery policy: NewestFullStage (see lp/recovery.hh) -- stage s+1
 * fully overwrites the buffer stage s read, so execution resumes
 * after the newest stage whose regions all persisted.
 */

#ifndef LP_KERNELS_CONV2D_HH
#define LP_KERNELS_CONV2D_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "ep/eager_recompute.hh"
#include "ep/pmem_ops.hh"
#include "lp/checksum.hh"
#include "lp/checksum_table.hh"
#include "lp/recovery.hh"
#include "lp/runtime.hh"
#include "kernels/workload.hh"

namespace lp::kernels
{

/** Pointers into the convolution's persistent state. */
struct Conv2dView
{
    const double *input;  ///< immutable stage-0 source
    const double *w;      ///< the 3x3 stencil
    double *bufA;         ///< dst of even stages
    double *bufB;         ///< dst of odd stages
    int n;
    int bsize;            ///< rows per band
};

/** Source buffer of stage @p s. */
inline const double *
conv2dSrc(const Conv2dView &v, int s)
{
    if (s == 0)
        return v.input;
    return (s - 1) % 2 == 0 ? v.bufA : v.bufB;
}

/** Destination buffer of stage @p s. */
inline double *
conv2dDst(const Conv2dView &v, int s)
{
    return s % 2 == 0 ? v.bufA : v.bufB;
}

/** Convolve one row band (rows [row0, row1)) of stage @p s. */
template <typename Env>
void
conv2dBandBase(Env &env, const Conv2dView &v, int s, int row0, int row1)
{
    const int n = v.n;
    const double *src = conv2dSrc(v, s);
    double *dst = conv2dDst(v, s);
    for (int i = row0; i < row1; ++i) {
        for (int j = 0; j < n; ++j) {
            double acc = 0.0;
            for (int di = -1; di <= 1; ++di) {
                const int si = i + di;
                if (si < 0 || si >= n)
                    continue;
                for (int dj = -1; dj <= 1; ++dj) {
                    const int sj = j + dj;
                    if (sj < 0 || sj >= n)
                        continue;
                    acc += env.ld(&src[static_cast<std::size_t>(si) *
                                       n + sj]) *
                           env.ld(&v.w[(di + 1) * 3 + (dj + 1)]);
                }
            }
            env.tick(24);
            env.st(&dst[static_cast<std::size_t>(i) * n + j], acc);
        }
    }
}

/** LP variant of one band: base body plus checksum maintenance. */
template <typename Env>
void
conv2dBandLp(Env &env, const Conv2dView &v, int s, int row0, int row1,
             core::LpRegion &region, std::size_t key,
             bool eager_commit = false)
{
    const int n = v.n;
    const double *src = conv2dSrc(v, s);
    double *dst = conv2dDst(v, s);
    region.reset(env);
    for (int i = row0; i < row1; ++i) {
        for (int j = 0; j < n; ++j) {
            double acc = 0.0;
            for (int di = -1; di <= 1; ++di) {
                const int si = i + di;
                if (si < 0 || si >= n)
                    continue;
                for (int dj = -1; dj <= 1; ++dj) {
                    const int sj = j + dj;
                    if (sj < 0 || sj >= n)
                        continue;
                    acc += env.ld(&src[static_cast<std::size_t>(si) *
                                       n + sj]) *
                           env.ld(&v.w[(di + 1) * 3 + (dj + 1)]);
                }
            }
            env.tick(24);
            env.st(&dst[static_cast<std::size_t>(i) * n + j], acc);
            region.update(env, acc);
        }
    }
    if (eager_commit)
        region.commitEager(env, key);
    else
        region.commit(env, key);
}

/** Checksum of a band's current contents (region traversal order). */
template <typename Env>
std::uint64_t
conv2dBandChecksum(Env &env, const Conv2dView &v, int s, int row0,
                   int row1, core::ChecksumKind kind)
{
    const double *dst = conv2dDst(v, s);
    core::ChecksumAcc acc(kind);
    const std::uint64_t cost = core::ChecksumAcc::updateCost(kind);
    for (int i = row0; i < row1; ++i) {
        for (int j = 0; j < v.n; ++j) {
            acc.add(env.ld(&dst[static_cast<std::size_t>(i) * v.n + j]));
            env.tick(cost);
        }
    }
    return acc.value();
}

/** The simulated iterated-convolution workload. */
class Conv2dWorkload : public Workload
{
  public:
    Conv2dWorkload(const KernelParams &params, SimContext &ctx);

    std::string name() const override { return "2d-conv"; }
    void run(Scheme scheme) override;
    core::RecoveryResult recoverAndResume() override;
    bool verify(double tol = 1e-6) const override;
    double maxAbsError() const override;
    std::size_t numRegions() const override;

    int numBands() const { return p.n / p.bsize; }
    int numStages() const { return p.iterations; }

  private:
    std::size_t
    key(int stage, int band) const
    {
        return static_cast<std::size_t>(stage) * numBands() + band;
    }

    /** Queue one stage's regions and run them to a barrier. */
    void runStages(Scheme scheme, int from_stage);

    const double *result() const;

    KernelParams p;
    SimContext &ctx;
    Conv2dView v;
    std::vector<double> golden;
    std::unique_ptr<core::ChecksumTable> table_;
    std::unique_ptr<ep::ProgressMarkers> markers;
};

} // namespace lp::kernels

#endif // LP_KERNELS_CONV2D_HH
