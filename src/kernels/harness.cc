#include "kernels/harness.hh"

#include "base/logging.hh"
#include "kernels/tmm.hh"
#include "pmem/crash.hh"

namespace lp::kernels
{

RunOutcome
runScheme(KernelId kernel, Scheme scheme, const KernelParams &params,
          const sim::MachineConfig &cfg)
{
    SimContext ctx(cfg, arenaBytesFor(kernel, params));
    auto w = makeWorkload(kernel, params, ctx);

    w->run(scheme);

    RunOutcome out;
    out.stats = ctx.machine.snapshot();
    out.execCycles = static_cast<double>(ctx.machine.execCycles());
    out.nvmmWrites =
        static_cast<double>(ctx.machine.machineStats().nvmmWrites
                                .value());
    out.maxAbsError = w->maxAbsError();
    out.verified = w->verify();
    return out;
}

RunOutcome
runTmmWindow(Scheme scheme, const KernelParams &params,
             const sim::MachineConfig &cfg, int warm_stages,
             int window_stages)
{
    SimContext ctx(cfg, arenaBytesFor(KernelId::Tmm, params));
    TmmWorkload w(params, ctx);

    // runWindow resets statistics after the warm-up; the snapshot's
    // exec_cycles is the current stats epoch, i.e. the window only.
    w.runWindow(scheme, warm_stages, window_stages);
    const auto snap = ctx.machine.snapshot();

    RunOutcome out;
    out.stats = snap;
    out.execCycles = snap.at("exec_cycles");
    out.nvmmWrites = snap.at("nvmm_writes");
    out.maxAbsError = 0.0;
    out.verified = true;
    return out;
}

CrashOutcome
runLpWithCrash(KernelId kernel, const KernelParams &params,
               const sim::MachineConfig &cfg,
               std::uint64_t crash_after_stores)
{
    return runLpWithCrashes(kernel, params, cfg,
                            {crash_after_stores});
}

CrashOutcome
runLpWithCrashes(KernelId kernel, const KernelParams &params,
                 const sim::MachineConfig &cfg,
                 const std::vector<std::uint64_t> &crash_points)
{
    SimContext ctx(cfg, arenaBytesFor(kernel, params));
    auto w = makeWorkload(kernel, params, ctx);

    CrashOutcome out;
    std::size_t next_point = 0;
    bool in_recovery = false;

    if (next_point < crash_points.size())
        ctx.crash.armAfterStores(crash_points[next_point++]);

    for (;;) {
        try {
            if (!in_recovery) {
                w->run(Scheme::Lp);
            } else {
                const Cycles rec_start = ctx.machine.coreCycles(0);
                out.recovery = w->recoverAndResume();
                out.recoveryCycles +=
                    static_cast<double>(ctx.machine.coreCycles(0) -
                                        rec_start);
            }
            break;  // completed
        } catch (const pmem::CrashException &) {
            out.crashed = true;
            ++out.crashes;
            ctx.crash.disarm();
            ctx.sched.clear();
            ctx.machine.loseVolatileState();
            ctx.arena.crashRestore();
            if (next_point < crash_points.size())
                ctx.crash.armAfterStores(crash_points[next_point++]);
            in_recovery = true;
        }
    }

    out.maxAbsError = w->maxAbsError();
    out.verified = w->verify();
    return out;
}

} // namespace lp::kernels
