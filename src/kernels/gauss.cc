#include "kernels/gauss.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/rng.hh"
#include "kernels/env.hh"

namespace lp::kernels
{

GaussWorkload::GaussWorkload(const KernelParams &params, SimContext &c)
    : p(params), ctx(c)
{
    LP_ASSERT(p.n >= 2 && p.bsize > 0 && p.n % p.bsize == 0,
              "n must be a multiple of bsize");
    LP_ASSERT(p.threads >= 1 &&
              p.threads <= ctx.machine.config().numCores,
              "more threads than cores");

    const std::size_t elems = static_cast<std::size_t>(p.n) * p.n;
    double *a = ctx.arena.alloc<double>(elems);
    double *m = ctx.arena.alloc<double>(elems);
    v = GaussView{a, m, p.n, p.bsize};

    // Diagonally dominant so elimination needs no pivoting.
    Rng rng(p.seed);
    for (int i = 0; i < p.n; ++i) {
        for (int j = 0; j < p.n; ++j) {
            a[static_cast<std::size_t>(i) * p.n + j] =
                rng.uniform(-1.0, 1.0);
        }
        a[static_cast<std::size_t>(i) * p.n + i] += p.n;
    }
    std::copy(a, a + elems, m);

    // Golden: the same in-place elimination on the host.
    golden.assign(a, a + elems);
    for (int k = 0; k < p.n - 1; ++k) {
        const double piv = golden[static_cast<std::size_t>(k) * p.n +
                                  k];
        for (int i = k + 1; i < p.n; ++i) {
            const double mult =
                golden[static_cast<std::size_t>(i) * p.n + k] / piv;
            golden[static_cast<std::size_t>(i) * p.n + k] = mult;
            for (int j = k + 1; j < p.n; ++j) {
                golden[static_cast<std::size_t>(i) * p.n + j] -=
                    mult *
                    golden[static_cast<std::size_t>(k) * p.n + j];
            }
        }
    }

    table_ = std::make_unique<core::ChecksumTable>(
        ctx.arena,
        static_cast<std::size_t>(numStages()) * numBands() +
            numStages());
    markers = std::make_unique<ep::ProgressMarkers>(ctx.arena,
                                                    p.threads);
    ctx.arena.persistAll();
}

std::size_t
GaussWorkload::numRegions() const
{
    std::size_t n_regions = numStages();  // pivot-final regions
    for (int k = 0; k < numStages(); ++k)
        for (int band = 0; band < numBands(); ++band)
            if (bandActive(k, band))
                ++n_regions;
    return n_regions;
}

void
GaussWorkload::runStages(Scheme scheme, int from_stage)
{
    for (int k = from_stage; k < numStages(); ++k) {
        // Pivot-final region: checksum the now-final row k.
        if (scheme == Scheme::Lp) {
            const int pt = k % p.threads;
            ctx.sched.add(pt, [this, k, pt] {
                SimEnv env(ctx.machine, ctx.arena, pt, &ctx.crash);
                core::LpRegion region(*table_, p.checksum);
                region.reset(env);
                for (int j = 0; j < p.n; ++j) {
                    region.update(
                        env,
                        env.ld(&v.m[static_cast<std::size_t>(k) *
                                    p.n + j]));
                }
                region.commit(env, pivotKey(k));
            });
        }
        for (int band = 0; band < numBands(); ++band) {
            if (!bandActive(k, band))
                continue;
            const int t = band % p.threads;
            ctx.sched.add(t, [this, scheme, k, band, t] {
                SimEnv env(ctx.machine, ctx.arena, t, &ctx.crash);
                const int row0 = band * p.bsize;
                const int row1 = row0 + p.bsize;
                switch (scheme) {
                  case Scheme::Base:
                    gaussBandBody(env, v, k, row0, row1, nullptr);
                    break;
                  case Scheme::Lp: {
                      core::LpRegion region(*table_, p.checksum);
                      region.reset(env);
                      gaussBandBody(env, v, k, row0, row1, &region);
                      region.commit(env, bandKey(k, band));
                      break;
                  }
                  case Scheme::EagerRecompute: {
                      gaussBandBody(env, v, k, row0, row1, nullptr);
                      for (int i = std::max(row0, k + 1); i < row1;
                           ++i) {
                          ep::flushRange(
                              env,
                              &v.m[static_cast<std::size_t>(i) * p.n +
                                   k],
                              static_cast<std::size_t>(p.n - k) *
                                  sizeof(double));
                      }
                      env.sfence();
                      std::uint64_t *mk = markers->slot(t);
                      env.st(mk, static_cast<std::uint64_t>(
                                     bandKey(k, band)));
                      env.clflushopt(mk);
                      env.sfence();
                      env.onRegionCommit();
                      break;
                  }
                  case Scheme::Wal:
                    fatal("WAL is only implemented for tmm "
                          "(Table IV)");
                }
            });
        }
        ctx.sched.barrier();
    }
}

void
GaussWorkload::run(Scheme scheme)
{
    runStages(scheme, 0);
}

void
GaussWorkload::rebuildRowEager(SimEnv &env, int i, int through)
{
    // Replay row i from the immutable input through stage
    // min(through, i) - 1, reading pivot rows from the (already
    // validated or rebuilt) working matrix.
    const int n = p.n;
    std::vector<double> row(n);
    for (int j = 0; j < n; ++j)
        row[j] = env.ld(&v.a[static_cast<std::size_t>(i) * n + j]);
    const int last = std::min(through, i);
    for (int s = 0; s < last; ++s) {
        const double piv =
            env.ld(&v.m[static_cast<std::size_t>(s) * n + s]);
        const double mult = row[s] / piv;
        row[s] = mult;
        env.tick(6);
        for (int j = s + 1; j < n; ++j) {
            row[j] -= mult *
                      env.ld(&v.m[static_cast<std::size_t>(s) * n +
                                  j]);
            env.tick(2);
        }
    }
    for (int j = 0; j < n; ++j)
        env.st(&v.m[static_cast<std::size_t>(i) * n + j], row[j]);
    ep::flushRange(env, &v.m[static_cast<std::size_t>(i) * n],
                   static_cast<std::size_t>(n) * sizeof(double));
    env.sfence();
}

void
GaussWorkload::advanceRowsEager(SimEnv &env, int row0, int row1,
                                int s0, int s1)
{
    for (int s = s0; s < s1; ++s)
        gaussBandBody(env, v, s, row0, row1, nullptr);
    for (int i = row0; i < row1; ++i) {
        ep::flushRange(env, &v.m[static_cast<std::size_t>(i) * p.n],
                       static_cast<std::size_t>(p.n) * sizeof(double));
    }
    env.sfence();
}

core::RecoveryResult
GaussWorkload::recoverAndResume()
{
    SimEnv env(ctx.machine, ctx.arena, 0, &ctx.crash);
    core::RecoveryResult res;
    const int B = numBands();
    const int S = numStages();

    // 1. Per-band newest-match scan over the in-place band digests.
    std::vector<int> found(B, -1);
    for (int band = 0; band < B; ++band) {
        const int row0 = band * p.bsize;
        const int row1 = row0 + p.bsize;
        for (int k = S - 1; k >= 0; --k) {
            if (!bandActive(k, band))
                continue;
            ++res.checked;
            if (table_->neverCommitted(bandKey(k, band)))
                continue;
            if (gaussBandChecksum(env, v, k, row0, row1, p.checksum) ==
                table_->stored(bandKey(k, band))) {
                found[band] = k;
                break;
            }
        }
    }
    int resume = 0;
    for (int band = 0; band < B; ++band)
        resume = std::max(resume, found[band] + 1);
    res.resumeStage = resume;

    // 2a. Validate or rebuild finalized pivot rows, ascending, so a
    // rebuilt row feeds the rebuilds of later rows.
    for (int k = 0; k < resume; ++k) {
        ++res.checked;
        const bool ok =
            !table_->neverCommitted(pivotKey(k)) &&
            gaussRowChecksum(env, v, k, p.checksum) ==
                table_->stored(pivotKey(k));
        if (ok) {
            ++res.matched;
            continue;
        }
        rebuildRowEager(env, k, k);
        core::LpRegion region(*table_, p.checksum);
        region.reset(env);
        for (int j = 0; j < p.n; ++j) {
            region.update(env,
                          env.ld(&v.m[static_cast<std::size_t>(k) *
                                      p.n + j]));
        }
        region.commitEager(env, pivotKey(k));
        ++res.repaired;
    }

    // 2b. Bring every band's non-finalized rows (index >= resume) to
    // the post-(resume-1) state.
    for (int band = 0; band < B; ++band) {
        const int lo = std::max(band * p.bsize, resume);
        const int hi = (band + 1) * p.bsize;
        if (lo >= hi)
            continue;
        if (found[band] == resume - 1) {
            ++res.matched;
        } else if (found[band] >= 0) {
            advanceRowsEager(env, lo, hi, found[band] + 1, resume);
            ++res.repaired;
        } else {
            for (int i = lo; i < hi; ++i)
                rebuildRowEager(env, i, resume);
            ++res.repaired;
        }
    }

    // 2c. Drop digests that are stale or about to be re-created.
    for (int band = 0; band < B; ++band) {
        for (int k = found[band] + 1; k < S; ++k) {
            if (!bandActive(k, band))
                continue;
            std::uint64_t *e = table_->entry(bandKey(k, band));
            env.st(e, core::invalidDigest);
            env.clflushopt(e);
        }
    }
    for (int k = resume; k < S; ++k) {
        std::uint64_t *e = table_->entry(pivotKey(k));
        env.st(e, core::invalidDigest);
        env.clflushopt(e);
    }
    env.sfence();

    // 3. Resume normal (lazy) execution.
    runStages(Scheme::Lp, resume);
    return res;
}

bool
GaussWorkload::verify(double tol) const
{
    return maxAbsError() <= tol;
}

double
GaussWorkload::maxAbsError() const
{
    double worst = 0.0;
    const std::size_t elems = static_cast<std::size_t>(p.n) * p.n;
    for (std::size_t i = 0; i < elems; ++i)
        worst = std::max(worst, std::fabs(v.m[i] - golden[i]));
    return worst;
}

} // namespace lp::kernels
