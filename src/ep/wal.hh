/**
 * @file
 * Durable transactions via write-ahead (undo) logging, the tmm+WAL
 * baseline (Figure 2 of the paper).
 *
 * A WalArea is a persistent log buffer plus a status word. A WalTx
 * runs the four-fence protocol of Figure 2:
 *
 *   1. append undo entries (address, old value) for every word the
 *      transaction will modify; flush them; fence
 *   2. set status = armed; flush; fence
 *   3. (caller mutates the data) flush the data; fence
 *   4. set status = idle; flush; fence
 *
 * On a crash with status == armed, applyUndo() restores the logged old
 * values (eagerly), returning the data to its pre-transaction state.
 */

#ifndef LP_EP_WAL_HH
#define LP_EP_WAL_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "ep/pmem_ops.hh"
#include "pmem/arena.hh"

namespace lp::ep
{

/** One undo-log record: where and what the old value was. */
struct WalEntry
{
    std::uint64_t addr;   ///< arena address of the logged word
    std::uint64_t old;    ///< value before the transaction
};

/** Persistent storage for one thread's undo log. */
class WalArea
{
  public:
    /**
     * Allocate a log able to hold @p capacity entries in @p arena.
     * Each thread uses a private WalArea, as PMEM-style software
     * logging does, to avoid synchronizing on the log tail.
     *
     * @p attach: keep the existing bytes (a re-mapped durable image
     * after a process restart) instead of zeroing count and status,
     * so an armed-but-uncommitted transaction from the previous
     * incarnation is still visible to applyUndo().
     */
    WalArea(pmem::PersistentArena &arena, std::size_t capacity,
            bool attach = false)
        : arena_(&arena),
          entries_(arena.alloc<WalEntry>(capacity)),
          count_(arena.alloc<std::uint64_t>(1)),
          status_(arena.alloc<std::uint64_t>(1)),
          capacity_(capacity)
    {
        if (!attach) {
            *count_ = 0;
            *status_ = 0;
        }
    }

    pmem::PersistentArena &arena() { return *arena_; }
    WalEntry *entries() { return entries_; }
    std::uint64_t *count() { return count_; }
    std::uint64_t *status() { return status_; }
    std::size_t capacity() const { return capacity_; }

    /** True iff a transaction was armed but never committed. */
    bool
    interrupted() const
    {
        return *status_ != 0;
    }

  private:
    pmem::PersistentArena *arena_;
    WalEntry *entries_;
    std::uint64_t *count_;
    std::uint64_t *status_;
    std::size_t capacity_;
};

/**
 * One durable transaction over a WalArea. Templated on the memory
 * environment like all instrumented code.
 */
template <typename Env>
class WalTx
{
  public:
    WalTx(Env &env, WalArea &area)
        : env(env), area(area)
    {
        env.st(area.count(), std::uint64_t{0});
    }

    /** Log the current (pre-image) value of one 64-bit word. */
    void
    logWord(const void *p)
    {
        logKnown(p,
                 env.template ld<std::uint64_t>(
                     static_cast<const std::uint64_t *>(p)));
    }

    /**
     * Log an explicit pre-image for @p p without re-reading it.
     * Callers that plan a whole batch of mutations before arming the
     * transaction (e.g. the KV store's WAL backend, which resolves
     * open-addressing probe targets op by op on a scratch view of the
     * table) already hold the pre-images; re-reading would observe
     * the planned post-state instead.
     */
    void
    logKnown(const void *p, std::uint64_t old_value)
    {
        std::uint64_t *cnt = area.count();
        LP_ASSERT(*cnt < area.capacity(), "WAL log overflow");
        WalEntry &e = area.entries()[*cnt];
        env.st(&e.addr, area.arena().addrOf(p));
        env.st(&e.old, old_value);
        env.st(cnt, *cnt + 1);
        dataPtrs.push_back(p);
    }

    /**
     * Persist the log and arm the status word (steps 1-2). After this
     * returns, the transaction may mutate the logged words.
     */
    void
    seal()
    {
        const std::uint64_t n = *area.count();
        flushRange(env, area.entries(), n * sizeof(WalEntry));
        flushRange(env, area.count(), sizeof(std::uint64_t));
        env.sfence();
        env.st(area.status(), std::uint64_t{1});
        env.clflushopt(area.status());
        env.sfence();
    }

    /**
     * Persist the mutated data (step 3) and retire the log (step 4).
     */
    void
    commit()
    {
        for (const void *p : dataPtrs)
            flushRange(env, p, sizeof(std::uint64_t));
        env.sfence();
        env.st(area.status(), std::uint64_t{0});
        env.clflushopt(area.status());
        env.sfence();
    }

  private:
    Env &env;
    WalArea &area;
    std::vector<const void *> dataPtrs;
};

/**
 * Crash recovery for WAL: if a transaction was armed, restore the
 * pre-images eagerly. Runs on the restored durable image.
 */
template <typename Env>
bool
applyUndo(Env &env, WalArea &area)
{
    if (!area.interrupted())
        return false;
    const std::uint64_t n = *area.count();
    for (std::uint64_t i = 0; i < n; ++i) {
        const WalEntry &e = area.entries()[i];
        auto *word = area.arena().template ptr<std::uint64_t>(e.addr);
        env.st(word, e.old);
        env.clflushopt(word);
    }
    env.sfence();
    env.st(area.status(), std::uint64_t{0});
    env.clflushopt(area.status());
    env.sfence();
    return true;
}

} // namespace lp::ep

#endif // LP_EP_WAL_HH
