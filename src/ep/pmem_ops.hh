/**
 * @file
 * Eager Persistency primitives in the Intel PMEM style (Section II-A).
 *
 * These helpers wrap the environment's clflushopt/sfence to persist
 * ranges of memory. clflushopt is weakly ordered, so a range persist
 * issues all flushes back-to-back and orders them with a single
 * sfence -- the cheapest correct PMEM idiom, which both Eager baseline
 * schemes use.
 */

#ifndef LP_EP_PMEM_OPS_HH
#define LP_EP_PMEM_OPS_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace lp::ep
{

/**
 * Issue clflushopt for every cache block overlapping
 * [@p p, @p p + @p bytes). Does not fence.
 */
template <typename Env>
void
flushRange(Env &env, const void *p, std::size_t bytes)
{
    auto addr = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t first = addr & ~std::uintptr_t(blockBytes - 1);
    const std::uintptr_t last =
        (addr + (bytes ? bytes - 1 : 0)) & ~std::uintptr_t(blockBytes - 1);
    for (std::uintptr_t b = first; b <= last; b += blockBytes)
        env.clflushopt(reinterpret_cast<const void *>(b));
}

/** Flush a range and fence: on return the range is durable. */
template <typename Env>
void
persistRange(Env &env, const void *p, std::size_t bytes)
{
    flushRange(env, p, bytes);
    env.sfence();
}

/** Persist a single object (store must already have executed). */
template <typename Env, typename T>
void
persistObject(Env &env, const T *p)
{
    persistRange(env, p, sizeof(T));
}

/** Host cache-block index of @p p. */
inline std::uintptr_t
blockIndexOf(const void *p)
{
    return reinterpret_cast<std::uintptr_t>(p) / blockBytes;
}

/**
 * Flush every distinct cache block in @p blocks once (no fence) and
 * clear the vector. Bulk phases (the LP fold, recovery replay) touch
 * many words that share blocks (4 table slots or checksum slots per
 * block); interleaving store and flush per word re-dirties a block
 * right after flushing it and pays a second NVMM write for the same
 * line. Batching all of a phase's stores before one deduplicated
 * flush pass is equally crash-safe -- the phase's trailing sfence is
 * the only ordering point -- and strictly write-cheaper.
 */
template <typename Env>
void
flushBlocksOnce(Env &env, std::vector<std::uintptr_t> &blocks)
{
    std::sort(blocks.begin(), blocks.end());
    blocks.erase(std::unique(blocks.begin(), blocks.end()),
                 blocks.end());
    for (const std::uintptr_t b : blocks)
        env.clflushopt(reinterpret_cast<const void *>(b * blockBytes));
    blocks.clear();
}

} // namespace lp::ep

#endif // LP_EP_PMEM_OPS_HH
