/**
 * @file
 * The EagerRecompute baseline (Elnawawy et al., PACT 2017), the
 * state-of-the-art Eager Persistency scheme the paper compares
 * against (Section V-C).
 *
 * EagerRecompute is application-level in-place checkpointing: a
 * transaction covers one region (a tile); the program persists results
 * in place as it goes (no logging), then waits at the end of the
 * region until everything modified is durable, and finally persists a
 * progress marker. There is no guarantee of a precisely consistent
 * state *during* a region; on failure, recovery rolls back to the last
 * persisted marker and recomputes everything after it.
 *
 * The pieces here are the per-thread progress markers and the region
 * commit helper; the recompute recovery itself is kernel logic (each
 * kernel knows how to redo work after a marker).
 */

#ifndef LP_EP_EAGER_RECOMPUTE_HH
#define LP_EP_EAGER_RECOMPUTE_HH

#include <cstdint>

#include "base/logging.hh"
#include "ep/pmem_ops.hh"
#include "pmem/arena.hh"

namespace lp::ep
{

/**
 * Per-thread persistent progress markers. Each marker occupies its
 * own cache block so threads never contend on a line and a marker
 * flush persists exactly one marker.
 */
class ProgressMarkers
{
  public:
    /** Marker value meaning "no region completed yet". */
    static constexpr std::uint64_t none = ~0ull;

    ProgressMarkers(pmem::PersistentArena &arena, int num_threads)
        : numThreads(num_threads)
    {
        LP_ASSERT(num_threads > 0, "need at least one thread");
        // One block per marker to avoid false sharing.
        slots = static_cast<std::uint64_t *>(
            arena.allocRaw(static_cast<std::size_t>(num_threads) *
                           blockBytes));
        for (int t = 0; t < num_threads; ++t)
            *slot(t) = none;
    }

    /** Host pointer to thread @p t's marker word. */
    std::uint64_t *
    slot(int t)
    {
        LP_ASSERT(t >= 0 && t < numThreads, "bad thread id");
        return slots + static_cast<std::size_t>(t) *
                           (blockBytes / sizeof(std::uint64_t));
    }

    /** Uninstrumented read for recovery on the restored image. */
    std::uint64_t
    value(int t)
    {
        return *slot(t);
    }

  private:
    std::uint64_t *slots;
    int numThreads;
};

/**
 * Commit one EagerRecompute region: flush every range the region
 * modified, fence, then persist the progress marker. Two fences per
 * region -- the scheme's fundamental cost (vs. four for WAL and zero
 * for Lazy Persistency).
 *
 * @param ranges  (pointer, bytes) pairs covering the region's stores
 */
template <typename Env, typename Ranges>
void
eagerCommitRegion(Env &env, const Ranges &ranges,
                  ProgressMarkers &markers, int thread,
                  std::uint64_t marker_value)
{
    for (const auto &[p, bytes] : ranges)
        flushRange(env, p, bytes);
    env.sfence();
    std::uint64_t *m = markers.slot(thread);
    env.st(m, marker_value);
    env.clflushopt(m);
    env.sfence();
    env.onRegionCommit();
}

} // namespace lp::ep

#endif // LP_EP_EAGER_RECOMPUTE_HH
