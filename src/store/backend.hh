/**
 * @file
 * The persistency-backend contract of the `lp::store` key-value
 * store (docs/engine_design.md is the narrative version).
 *
 * A backend is the policy that makes mutations durable. It owns the
 * per-shard persistent structures its discipline needs (journal,
 * checksum digests, WAL, metadata blocks) and mutates the shared
 * SlotTable through the StoreContext; epoch numbering and
 * batch/fold/deadline accounting are delegated to the per-shard
 * engine::CommitPipeline so the same scheduling drives the store and
 * lp::server.
 *
 * Hook contract (all per shard; see each backend for its story):
 *
 *  - stage(op): admit one mutation into the open epoch, committing
 *    (and folding) when the pipeline says the period elapsed; returns
 *    the epoch the op landed in.
 *  - commitEpoch(): close and commit the open epoch even if
 *    underfilled (group-commit deadline, checkpoint).
 *  - fold(): eager checkpoint -- make every committed epoch durable
 *    in the table. No-op for backends whose commit is already
 *    durable (eager, WAL).
 *  - recover(): rebuild from the durable image after a crash; must
 *    leave the shard ready for new mutations and the pipeline
 *    rebased to the committed watermark. Attempts media-fault repair
 *    (parity reconstruction, superblock replicas) before falling
 *    back to epoch discard, and quarantines on provable-but-
 *    unrepairable corruption (docs/repair_design.md).
 *  - verify(): non-mutating audit of the backend's own invariants
 *    (committed digests still validate; no armed WAL). A debugging /
 *    test aid: it reads through the Env and thus perturbs the
 *    simulated caches like any other access.
 *  - scrub(): incremental online validate-and-repair walk over the
 *    backend's sealed media-protected structures; bounded work per
 *    call so the caller (the server's idle loop) can rate-limit it.
 *  - staged()/mergeStaged(): read-your-writes over mutations that
 *    are staged but not yet applied to the table.
 *
 * Media-fault tolerance plumbing shared by ALL backends lives here:
 * every shard's superblock (ShardMeta) is kept in TWO copies sealed
 * by a check word, so recovery can prove corruption (a crash leaves
 * each block-atomic copy self-consistent) and repair from the twin.
 * Per-shard MediaCounters record repairs/unrepairable faults for
 * STATS/METRICS; unrepairable > 0 means the shard is QUARANTINED
 * (callers must stop mutating it; lp::server serves it read-only).
 *
 * Allocation-order determinism: a backend's constructor must
 * allocate its arena structures in a fixed order (globals first,
 * then per shard), because attach mode re-derives offsets purely by
 * re-running the same allocation sequence over the existing image.
 * allocMeta() allocates the superblock replica immediately after the
 * primary, preserving that order for all three backends.
 */

#ifndef LP_STORE_BACKEND_HH
#define LP_STORE_BACKEND_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "engine/commit_pipeline.hh"
#include "pmem/arena.hh"
#include "repair/repair.hh"
#include "store/journal.hh"
#include "store/layout.hh"

namespace lp::store
{

/** Coalesced effect of one staged-but-unapplied mutation. */
struct DeltaVal
{
    bool isPut;
    std::uint64_t value;
};

/** What a backend borrows from the KvStore that owns it. */
template <typename Env>
struct StoreContext
{
    pmem::PersistentArena *arena;
    const StoreConfig *cfg;
    SlotTable<Env> *table;
    std::vector<engine::CommitPipeline> *pipelines;
};

/** CommitPolicy a store pipeline runs under @p backend and @p cfg. */
engine::CommitPolicy commitPolicyFor(Backend backend,
                                     const StoreConfig &cfg);

/**
 * Cumulative media-fault counters of one shard. The shard's single
 * writer updates them (recovery, scrub); any thread may read (the
 * server's acceptor exports them in STATS/METRICS), hence atomics.
 */
struct MediaCounters
{
    std::atomic<std::uint64_t> repaired{0};
    std::atomic<std::uint64_t> unrepairable{0};
    std::atomic<std::uint64_t> scrubRegions{0};
    std::atomic<std::uint64_t> scrubPasses{0};
};

/**
 * Host-pointer map of one shard's media-protected structures, for
 * fault injection (pmem/fault.hh, `lazyper_cli inject`) and the
 * corruption-matrix tests. Null / zero fields simply do not exist
 * for the backend (only LP has a journal and parity).
 */
struct FaultSurface
{
    const void *metaPrimary = nullptr;   ///< 64B shard superblock
    const void *metaReplica = nullptr;   ///< its 64B replica
    const void *journal = nullptr;       ///< journal record buffer
    std::size_t journalBytes = 0;
    std::size_t sealedBytes = 0;         ///< sealed journal prefix
    const void *digests = nullptr;       ///< primary checksum table
    std::size_t digestBytes = 0;
    const void *digestReplica = nullptr; ///< replica checksum table
    std::size_t digestReplicaBytes = 0;
    const void *parity = nullptr;        ///< XOR parity blocks
    std::size_t parityBytes = 0;
    const void *parityHashes = nullptr;  ///< region fingerprints
    std::size_t parityHashBytes = 0;
    const void *parityHeader = nullptr;  ///< coverage header block
};

/**
 * One persistency policy; see the file comment for the hook
 * contract. A backend instance serves every shard of its store (the
 * per-shard state lives in its own vectors), and is driven only by
 * the owning KvStore.
 */
template <typename Env>
class PersistencyBackend
{
  public:
    explicit PersistencyBackend(const StoreContext<Env> &ctx)
        : ctx_(ctx)
    {
    }

    virtual ~PersistencyBackend() = default;

    PersistencyBackend(const PersistencyBackend &) = delete;
    PersistencyBackend &operator=(const PersistencyBackend &) = delete;

    /** Admit one mutation; returns the epoch it landed in. */
    virtual std::uint64_t stage(Env &env, int shard, JOp op,
                                std::uint64_t key,
                                std::uint64_t value) = 0;

    /** Commit the shard's open epoch, if any (may be underfilled). */
    virtual void commitEpoch(Env &env, int shard) = 0;

    /** Eager checkpoint; default no-op for durable-on-commit backends. */
    virtual void
    fold(Env &env, int shard)
    {
        (void)env;
        (void)shard;
    }

    /** Crash recovery of one shard (see the hook contract). */
    virtual void recover(Env &env, int shard,
                         RecoveryReport &rep) = 0;

    /** Non-mutating audit of the backend's durability invariants. */
    virtual bool verify(Env &env, int shard) = 0;

    /**
     * Online scrub step: validate (and repair) up to @p maxRegions
     * regions of the shard's sealed media-protected structures.
     * Returns regions actually examined (0 when there is nothing to
     * scrub or the shard is quarantined). The base implementation
     * audits the superblock pair -- the only media-protected
     * structure the eager and WAL backends own -- and counts a scrub
     * pass; the LP backend extends it over journal parity.
     */
    virtual std::size_t
    scrub(Env &env, int shard, std::size_t maxRegions)
    {
        (void)maxRegions;
        if (quarantined(shard))
            return 0;
        auditMeta(env, shard, nullptr);
        media_[std::size_t(shard)].scrubPasses.fetch_add(
            1, std::memory_order_relaxed);
        return 0;
    }

    /**
     * Read-your-writes lookup over staged-but-unapplied mutations;
     * std::nullopt (and no Env effect) when the key is not staged or
     * the backend applies in place.
     */
    virtual std::optional<DeltaVal>
    staged(Env &env, int shard, std::uint64_t key)
    {
        (void)env;
        (void)shard;
        (void)key;
        return std::nullopt;
    }

    /** Overlay staged mutations onto a host-side snapshot. */
    virtual void
    mergeStaged(int shard,
                std::map<std::uint64_t, std::uint64_t> &out) const
    {
        (void)shard;
        (void)out;
    }

    /**
     * Address of the PRIMARY digest slot holding (@p shard,
     * @p epoch)'s batch checksum, or null for backends without one.
     * Fault-injection aid: lets the corruption matrix rot exactly
     * one epoch's digest instead of spraying the table.
     */
    virtual const void *
    digestSlotAddr(int shard, std::uint64_t epoch) const
    {
        (void)shard;
        (void)epoch;
        return nullptr;
    }

    /** Where this shard's media-protected structures live. */
    virtual FaultSurface
    faultSurface(int shard) const
    {
        FaultSurface fs;
        fs.metaPrimary = metas_[std::size_t(shard)];
        fs.metaReplica = replicas_[std::size_t(shard)];
        return fs;
    }

    /** Durable (shadow) epoch watermark of one shard. */
    std::uint64_t
    durableEpoch(int shard) const
    {
        return ctx_.arena->peekDurable(&metas_[shard]->foldedEpoch);
    }

    /** This shard's cumulative media-fault counters (any thread). */
    const MediaCounters &
    mediaCounters(int shard) const
    {
        return media_[std::size_t(shard)];
    }

    /**
     * True when the shard hit provable-but-unrepairable corruption:
     * callers must stop mutating it (reads over the recovered prefix
     * stay safe -- nothing invalid was ever applied to the table).
     */
    bool
    quarantined(int shard) const
    {
        return media_[std::size_t(shard)].unrepairable.load(
                   std::memory_order_relaxed) > 0;
    }

    /**
     * Durably mark the shard cleanly shut down. Call only when every
     * committed byte has drained (after checkpoint + persistAll /
     * msync): the flag switches the NEXT recovery into strict mode,
     * where validation failures are media faults, not crash tears.
     */
    void
    markClean(Env &env, int shard)
    {
        const std::uint64_t epoch =
            env.ld(&metas_[std::size_t(shard)]->foldedEpoch);
        persistMeta(env, shard, epoch, shardCleanShutdown);
        env.sfence();
    }

  protected:
    /**
     * Allocate one shard's superblock pair in arena order (replica
     * immediately after the primary -- part of the deterministic
     * allocation sequence attach mode replays).
     */
    ShardMeta *
    allocMeta(bool attach)
    {
        pmem::PersistentArena &arena = *ctx_.arena;
        ShardMeta *m = arena.alloc<ShardMeta>(1);
        ShardMeta *r = arena.alloc<ShardMeta>(1);
        if (!attach) {
            for (ShardMeta *c : {m, r}) {
                c->foldedEpoch = 0;
                c->flags = 0;
                c->check = repair::shardMetaCheck(0, 0);
            }
        }
        metas_.push_back(m);
        replicas_.push_back(r);
        media_.emplace_back();
        return m;
    }

    /**
     * Store (@p epoch, @p flags) + check word into both superblock
     * copies and flush them; the caller's fence orders the pair.
     */
    void
    persistMeta(Env &env, int shard, std::uint64_t epoch,
                std::uint64_t flags)
    {
        const std::uint64_t check =
            repair::shardMetaCheck(epoch, flags);
        for (ShardMeta *c : {metas_[std::size_t(shard)],
                             replicas_[std::size_t(shard)]}) {
            env.st(&c->foldedEpoch, epoch);
            env.st(&c->flags, flags);
            env.st(&c->check, check);
            env.clflushopt(c);
        }
        env.tick(6);
    }

    /** What auditMeta() concluded about a superblock pair. */
    struct MetaState
    {
        std::uint64_t epoch = 0;
        bool clean = false;  ///< strict recovery mode earned
        bool ok = false;     ///< at least one copy validated
    };

    /**
     * Validate the superblock pair, repairing a check-invalid copy
     * from its valid twin (a media fault by the block-atomicity
     * argument in layout.hh). Both copies valid but divergent is
     * crash-normal (one drained, one did not): adopt the higher
     * epoch, silently resync the other, count nothing. Both copies
     * invalid is unrepairable: quarantine. Strict (clean-shutdown)
     * mode is granted only when it is provable: both copies valid
     * and flagged clean at the same epoch, or one copy rotted but
     * the surviving valid copy is flagged clean.
     */
    MetaState
    auditMeta(Env &env, int shard, RecoveryReport *rep)
    {
        ShardMeta *p = metas_[std::size_t(shard)];
        ShardMeta *r = replicas_[std::size_t(shard)];
        const std::uint64_t pe = env.ld(&p->foldedEpoch);
        const std::uint64_t pf = env.ld(&p->flags);
        const bool pOk =
            env.ld(&p->check) == repair::shardMetaCheck(pe, pf);
        const std::uint64_t re = env.ld(&r->foldedEpoch);
        const std::uint64_t rf = env.ld(&r->flags);
        const bool rOk =
            env.ld(&r->check) == repair::shardMetaCheck(re, rf);
        env.tick(8);
        MetaState st;
        if (pOk && rOk) {
            st.ok = true;
            if (pe == re) {
                st.epoch = pe;
                st.clean = (pf & rf & shardCleanShutdown) != 0;
            } else {
                // Crash between the copies' drains: the fold's data
                // fence precedes the meta store, so the higher epoch
                // is safe (and replaying from the lower would be,
                // too -- replay is idempotent). Resync silently.
                st.epoch = pe > re ? pe : re;
                st.clean = false;
                persistMeta(env, shard, st.epoch, 0);
                env.sfence();
            }
            return st;
        }
        if (pOk != rOk) {
            // One copy rotted (an invalid check cannot come from a
            // crash): restore it from the valid twin.
            const std::uint64_t e = pOk ? pe : re;
            const std::uint64_t f = pOk ? pf : rf;
            persistMeta(env, shard, e, f);
            env.sfence();
            noteRepaired(shard, rep, 1);
            st.ok = true;
            st.epoch = e;
            st.clean = (f & shardCleanShutdown) != 0;
            return st;
        }
        // Both copies rotted: nothing to trust.
        noteUnrepairable(shard, rep, 1);
        return st;
    }

    /** Count @p n repaired media faults (counters + report). */
    void
    noteRepaired(int shard, RecoveryReport *rep, std::uint64_t n)
    {
        media_[std::size_t(shard)].repaired.fetch_add(
            n, std::memory_order_relaxed);
        if (rep)
            rep->mediaRepaired += n;
    }

    /** Count @p n unrepairable faults (quarantines the shard). */
    void
    noteUnrepairable(int shard, RecoveryReport *rep, std::uint64_t n)
    {
        media_[std::size_t(shard)].unrepairable.fetch_add(
            n, std::memory_order_relaxed);
        if (rep)
            rep->mediaUnrepairable += n;
    }

    const StoreConfig &cfg() const { return *ctx_.cfg; }
    SlotTable<Env> &table() { return *ctx_.table; }

    engine::CommitPipeline &
    pipeline(int shard)
    {
        return (*ctx_.pipelines)[std::size_t(shard)];
    }

    StoreContext<Env> ctx_;
    std::vector<ShardMeta *> metas_;
    std::vector<ShardMeta *> replicas_;
    /// Deque: atomics must never relocate (acceptor threads read).
    std::deque<MediaCounters> media_;
};

} // namespace lp::store

#endif // LP_STORE_BACKEND_HH
