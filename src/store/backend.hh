/**
 * @file
 * The persistency-backend contract of the `lp::store` key-value
 * store (docs/engine_design.md is the narrative version).
 *
 * A backend is the policy that makes mutations durable. It owns the
 * per-shard persistent structures its discipline needs (journal,
 * checksum digests, WAL, metadata blocks) and mutates the shared
 * SlotTable through the StoreContext; epoch numbering and
 * batch/fold/deadline accounting are delegated to the per-shard
 * engine::CommitPipeline so the same scheduling drives the store and
 * lp::server.
 *
 * Hook contract (all per shard; see each backend for its story):
 *
 *  - stage(op): admit one mutation into the open epoch, committing
 *    (and folding) when the pipeline says the period elapsed; returns
 *    the epoch the op landed in.
 *  - commitEpoch(): close and commit the open epoch even if
 *    underfilled (group-commit deadline, checkpoint).
 *  - fold(): eager checkpoint -- make every committed epoch durable
 *    in the table. No-op for backends whose commit is already
 *    durable (eager, WAL).
 *  - recover(): rebuild from the durable image after a crash; must
 *    leave the shard ready for new mutations and the pipeline
 *    rebased to the committed watermark.
 *  - verify(): non-mutating audit of the backend's own invariants
 *    (committed digests still validate; no armed WAL). A debugging /
 *    test aid: it reads through the Env and thus perturbs the
 *    simulated caches like any other access.
 *  - staged()/mergeStaged(): read-your-writes over mutations that
 *    are staged but not yet applied to the table.
 *
 * Allocation-order determinism: a backend's constructor must
 * allocate its arena structures in a fixed order (globals first,
 * then per shard), because attach mode re-derives offsets purely by
 * re-running the same allocation sequence over the existing image.
 */

#ifndef LP_STORE_BACKEND_HH
#define LP_STORE_BACKEND_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "engine/commit_pipeline.hh"
#include "pmem/arena.hh"
#include "store/journal.hh"
#include "store/layout.hh"

namespace lp::store
{

/** Coalesced effect of one staged-but-unapplied mutation. */
struct DeltaVal
{
    bool isPut;
    std::uint64_t value;
};

/** What a backend borrows from the KvStore that owns it. */
template <typename Env>
struct StoreContext
{
    pmem::PersistentArena *arena;
    const StoreConfig *cfg;
    SlotTable<Env> *table;
    std::vector<engine::CommitPipeline> *pipelines;
};

/** CommitPolicy a store pipeline runs under @p backend and @p cfg. */
engine::CommitPolicy commitPolicyFor(Backend backend,
                                     const StoreConfig &cfg);

/**
 * One persistency policy; see the file comment for the hook
 * contract. A backend instance serves every shard of its store (the
 * per-shard state lives in its own vectors), and is driven only by
 * the owning KvStore.
 */
template <typename Env>
class PersistencyBackend
{
  public:
    explicit PersistencyBackend(const StoreContext<Env> &ctx)
        : ctx_(ctx)
    {
    }

    virtual ~PersistencyBackend() = default;

    PersistencyBackend(const PersistencyBackend &) = delete;
    PersistencyBackend &operator=(const PersistencyBackend &) = delete;

    /** Admit one mutation; returns the epoch it landed in. */
    virtual std::uint64_t stage(Env &env, int shard, JOp op,
                                std::uint64_t key,
                                std::uint64_t value) = 0;

    /** Commit the shard's open epoch, if any (may be underfilled). */
    virtual void commitEpoch(Env &env, int shard) = 0;

    /** Eager checkpoint; default no-op for durable-on-commit backends. */
    virtual void
    fold(Env &env, int shard)
    {
        (void)env;
        (void)shard;
    }

    /** Crash recovery of one shard (see the hook contract). */
    virtual void recover(Env &env, int shard,
                         RecoveryReport &rep) = 0;

    /** Non-mutating audit of the backend's durability invariants. */
    virtual bool verify(Env &env, int shard) = 0;

    /**
     * Read-your-writes lookup over staged-but-unapplied mutations;
     * std::nullopt (and no Env effect) when the key is not staged or
     * the backend applies in place.
     */
    virtual std::optional<DeltaVal>
    staged(Env &env, int shard, std::uint64_t key)
    {
        (void)env;
        (void)shard;
        (void)key;
        return std::nullopt;
    }

    /** Overlay staged mutations onto a host-side snapshot. */
    virtual void
    mergeStaged(int shard,
                std::map<std::uint64_t, std::uint64_t> &out) const
    {
        (void)shard;
        (void)out;
    }

    /** Durable (shadow) epoch watermark of one shard. */
    std::uint64_t
    durableEpoch(int shard) const
    {
        return ctx_.arena->peekDurable(&metas_[shard]->foldedEpoch);
    }

  protected:
    /** Allocate one shard's metadata block in arena order. */
    ShardMeta *
    allocMeta(bool attach)
    {
        pmem::PersistentArena &arena = *ctx_.arena;
        ShardMeta *m = arena.alloc<ShardMeta>(1);
        if (!attach)
            m->foldedEpoch = 0;
        metas_.push_back(m);
        return m;
    }

    const StoreConfig &cfg() const { return *ctx_.cfg; }
    SlotTable<Env> &table() { return *ctx_.table; }

    engine::CommitPipeline &
    pipeline(int shard)
    {
        return (*ctx_.pipelines)[std::size_t(shard)];
    }

    StoreContext<Env> ctx_;
    std::vector<ShardMeta *> metas_;
};

} // namespace lp::store

#endif // LP_STORE_BACKEND_HH
