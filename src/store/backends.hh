/**
 * @file
 * The one place that maps the Backend enum to a policy class. All
 * runtime backend dispatch in the store happens through the virtual
 * PersistencyBackend interface; this factory is the single
 * enum-switch that picks the implementation at construction time.
 */

#ifndef LP_STORE_BACKENDS_HH
#define LP_STORE_BACKENDS_HH

#include <memory>

#include "store/backend_eager.hh"
#include "store/backend_lp.hh"
#include "store/backend_wal.hh"

namespace lp::store
{

template <typename Env>
std::unique_ptr<PersistencyBackend<Env>>
makeBackend(Backend b, const StoreContext<Env> &ctx, bool attach)
{
    switch (b) {
      case Backend::Lp:
        return std::make_unique<LpBackend<Env>>(ctx, attach);
      case Backend::EagerPerOp:
        return std::make_unique<EagerBackend<Env>>(ctx, attach);
      case Backend::Wal:
        return std::make_unique<WalBackend<Env>>(ctx, attach);
    }
    fatal("unknown store backend");
}

} // namespace lp::store

#endif // LP_STORE_BACKENDS_HH
